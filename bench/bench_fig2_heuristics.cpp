// Reproduces Fig 2(b): query accuracy vs statistic budget for the three 2-D
// statistic selection heuristics (ZERO / LARGE / COMPOSITE).
//
// Setup follows Sec 4.3: flights restricted to (fl_date, fl_time, distance);
// 2-D statistics gathered on (fl_time, distance) with budgets {500, 1000,
// 2000}; accuracy measured on 100 heavy hitters (b.i), 200 nonexistent
// values (b.ii), and 100 light hitters (b.iii) of the pair.

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Fig 2(b): selection heuristic vs budget, flights (FD,ET,DT)");

  FlightsConfig cfg;
  cfg.num_rows = scale.flights_rows;
  cfg.seed = 42;
  auto full = FlightsGenerator::Generate(cfg);
  if (!full.ok()) {
    std::fprintf(stderr, "%s\n", full.status().ToString().c_str());
    return 1;
  }
  FlightsPairs pairs = ResolveFlightsPairs(**full);
  auto table =
      ProjectTable(**full, {pairs.date, pairs.time, pairs.distance});
  const AttrId kTime = 1, kDist = 2;

  // There are 62 * 81 = 5022 possible (fl_time, distance) cells (Sec 4.3).
  ExactEvaluator exact(*table);
  auto hist2d = exact.Histogram2D(kTime, kDist);
  size_t existing = 0;
  for (auto c : hist2d) existing += (c > 0) ? 1 : 0;
  std::printf("possible 2-D cells: %zu, existing: %zu (paper: 5022 / 1334)\n",
              hist2d.size(), existing);

  WorkloadConfig wcfg;
  wcfg.num_heavy = 100;
  wcfg.num_light = 100;
  wcfg.num_nonexistent = 200;
  auto w = SelectWorkload(*table, {kTime, kDist}, wcfg);
  if (!w.ok()) {
    std::fprintf(stderr, "%s\n", w.status().ToString().c_str());
    return 1;
  }

  const size_t budgets[] = {500, 1000, 2000};
  const SelectionHeuristic heuristics[] = {
      SelectionHeuristic::kZeroSingleCell,
      SelectionHeuristic::kLargeSingleCell, SelectionHeuristic::kComposite};

  std::printf("\n%-10s %-10s %14s %14s %14s\n", "heuristic", "budget",
              "heavy_err(i)", "nonexist(ii)", "light_err(iii)");
  for (auto h : heuristics) {
    for (size_t budget : budgets) {
      StatisticSelector sel(h);
      auto stats = sel.Select(*table, kTime, kDist, budget);
      auto summary = EntropySummary::Build(*table, stats);
      if (!summary.ok()) {
        std::fprintf(stderr, "build %s/%zu: %s\n", SelectionHeuristicName(h),
                     budget, summary.status().ToString().c_str());
        return 1;
      }
      Method m = SummaryMethod(SelectionHeuristicName(h), *summary);
      double heavy = AvgErrorOn(m, 3, w->attrs, w->heavy);
      double nulls = AvgErrorOn(m, 3, w->attrs, w->nonexistent);
      double light = AvgErrorOn(m, 3, w->attrs, w->light);
      std::printf("%-10s %-10zu %14.3f %14.3f %14.3f\n",
                  SelectionHeuristicName(h), budget, heavy, nulls, light);
    }
  }
  std::printf(
      "\npaper shape: LARGE/COMPOSITE ~0 error on heavy hitters; ZERO best\n"
      "on nonexistent; COMPOSITE best overall across all three classes.\n");
  return 0;
}
