// Reproduces Fig 5: per-template query error difference between every
// method and Ent1&2&3 over FlightsCoarse (positive bar = Ent1&2&3 better),
// for heavy hitters (top panel) and light hitters (bottom panel).
//
// Methods (Sec 6.2 / Fig 4): Uni (1% uniform), Strat1..Strat4 (stratified on
// pair 1..4), Ent1&2, Ent3&4, and the Ent1&2&3 reference.
// Query templates:
//   Q1: OB & DB          (pair 4)
//   Q2: DB & ET & DT     (pairs 2 & 3)
//   Q3: FL & DB & DT     (pair 2)
// The paper reports the FlightsFine run shows identical trends (graph
// omitted there); pass ENTROPYDB_BENCH_FINE=1 to run it here.

#include <cstdio>
#include <cstdlib>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

int RunDataset(bool fine, const BenchScale& scale) {
  FlightsConfig cfg;
  cfg.num_rows = scale.flights_rows;
  cfg.fine_grained = fine;
  cfg.seed = 42;
  auto table_r = FlightsGenerator::Generate(cfg);
  if (!table_r.ok()) {
    std::fprintf(stderr, "%s\n", table_r.status().ToString().c_str());
    return 1;
  }
  const Table& table = **table_r;
  FlightsPairs pairs = ResolveFlightsPairs(table);

  std::printf("\n-- dataset: %s, %zu rows --\n",
              fine ? "FlightsFine" : "FlightsCoarse", table.num_rows());
  std::printf(
      "Fig 4 configurations: Ent1&2 = pairs (origin,distance)+(dest,"
      "distance) @%zu buckets each;\n  Ent3&4 = (fl_time,distance)+(origin,"
      "dest) @%zu; Ent1&2&3 = pairs 1,2,3 @%zu each\n",
      scale.bs_two_pair, scale.bs_two_pair, scale.bs_three_pair);

  auto summaries_r = BuildFlightsSummaries(table, scale);
  if (!summaries_r.ok()) {
    std::fprintf(stderr, "summaries: %s\n",
                 summaries_r.status().ToString().c_str());
    return 1;
  }
  auto& summaries = *summaries_r;

  // Samples: uniform plus one stratified per Fig 4 pair.
  auto uni = UniformSampler::Create(table, scale.sample_fraction, 7);
  if (!uni.ok()) return 1;
  std::vector<Method> methods;
  methods.push_back(
      SampleMethod("Uni", std::make_shared<WeightedSample>(std::move(*uni))));
  for (int p = 1; p <= 4; ++p) {
    auto [a, b] = pairs.pair(p);
    auto strat =
        StratifiedSampler::Create(table, a, b, scale.sample_fraction, 7 + p);
    if (!strat.ok()) return 1;
    methods.push_back(
        SampleMethod("Strat" + std::to_string(p),
                     std::make_shared<WeightedSample>(std::move(*strat))));
  }
  methods.push_back(SummaryMethod("Ent1&2", summaries.ent12));
  methods.push_back(SummaryMethod("Ent3&4", summaries.ent34));
  Method reference = SummaryMethod("Ent1&2&3", summaries.ent123);

  struct Template {
    const char* label;
    std::vector<AttrId> attrs;
  };
  // The paper's Fig 5 uses different templates for the two panels.
  const std::vector<Template> heavy_templates = {
      {"Q1: OB&DB (pair 4)", {pairs.origin, pairs.dest}},
      {"Q2: DB&ET&DT (pair 2&3)", {pairs.dest, pairs.time, pairs.distance}},
      {"Q3: FL&DB&DT (pair 2)", {pairs.date, pairs.dest, pairs.distance}},
  };
  const std::vector<Template> light_templates = {
      {"Q1: ET&DT (pair 3)", {pairs.time, pairs.distance}},
      {"Q2: DB&DT (pair 2)", {pairs.dest, pairs.distance}},
      {"Q3: FL&DB&DT (pair 2)", {pairs.date, pairs.dest, pairs.distance}},
  };

  WorkloadConfig wcfg;
  wcfg.num_heavy = 100;
  wcfg.num_light = 100;
  wcfg.num_nonexistent = 0;

  for (bool heavy : {true, false}) {
    std::printf("\n[%s hitters] error difference vs Ent1&2&3 "
                "(positive = Ent1&2&3 better)\n", heavy ? "heavy" : "light");
    std::printf("%-26s", "template");
    for (const auto& m : methods) std::printf(" %9s", m.name.c_str());
    std::printf(" | %9s\n", "Ent123err");
    for (const auto& t : heavy ? heavy_templates : light_templates) {
      auto w = SelectWorkload(table, t.attrs, wcfg);
      if (!w.ok()) return 1;
      const auto& points = heavy ? w->heavy : w->light;
      double ref_err =
          AvgErrorOn(reference, table.num_attributes(), t.attrs, points);
      std::printf("%-26s", t.label);
      for (const auto& m : methods) {
        double err = AvgErrorOn(m, table.num_attributes(), t.attrs, points);
        std::printf(" %+9.3f", err - ref_err);
      }
      std::printf(" | %9.3f\n", ref_err);
    }
  }
  return 0;
}

}  // namespace

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Fig 5: query error difference vs Ent1&2&3");
  if (RunDataset(/*fine=*/false, scale) != 0) return 1;
  const char* fine_env = std::getenv("ENTROPYDB_BENCH_FINE");
  if (fine_env != nullptr && fine_env[0] == '1') {
    if (RunDataset(/*fine=*/true, scale) != 0) return 1;
  } else {
    std::printf(
        "\n(FlightsFine run skipped; set ENTROPYDB_BENCH_FINE=1 — the paper "
        "reports identical trends.)\n");
  }
  std::printf(
      "\npaper shape: samples beat Ent1&2&3 on Q1 heavy (no statistic on "
      "pair 4);\nEnt1&2&3 comparable or better on Q2/Q3; on light hitters "
      "EntropyDB beats Uni\neverywhere and loses only to the stratification "
      "aligned with the query.\n");
  return 0;
}
