#ifndef ENTROPYDB_BENCH_BENCH_UTIL_H_
#define ENTROPYDB_BENCH_BENCH_UTIL_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "entropydb.h"

namespace entropydb {
namespace bench {

/// Scale knobs shared by the figure benches. The paper ran on the full BTS
/// feed with budget B = 3000 on a 120-CPU machine; we default to a scaled
/// workload that reproduces every trend in minutes on one core. Override
/// via environment variable ENTROPYDB_BENCH_SCALE (1 = default, 2+ = closer
/// to paper scale).
struct BenchScale {
  size_t flights_rows = 400'000;
  size_t particle_rows_per_snapshot = 150'000;
  /// Per-pair 2-D budget for the Ent1&2 / Ent3&4 methods (paper: 1500).
  size_t bs_two_pair = 400;
  /// Per-pair budget for Ent1&2&3 (paper: 1000).
  size_t bs_three_pair = 260;
  /// Sampling fraction (paper: 1%).
  double sample_fraction = 0.01;
};

/// Reads the scale factor from the environment.
BenchScale ReadScale();

/// Consumes a leading `--quick` flag (if present): removes it from argv and
/// shrinks the workload scale via ENTROPYDB_BENCH_SCALE (unless the caller
/// already set one) so CI smoke runs finish in seconds.
void ApplyQuickFlag(int* argc, char** argv);

/// The four attribute pairs of Fig 4 resolved against a flights table:
/// 1 = (origin, distance), 2 = (dest, distance), 3 = (fl_time, distance),
/// 4 = (origin, dest).
struct FlightsPairs {
  AttrId date, origin, dest, time, distance;
  std::pair<AttrId, AttrId> pair(int which) const;
};
FlightsPairs ResolveFlightsPairs(const Table& table);

/// A named query-answering method (MaxEnt summary or sample) — the rows of
/// Fig 5/6/7.
struct Method {
  std::string name;
  std::function<double(const CountingQuery&)> answer;
};

/// Builds the paper's four MaxEnt configurations (Fig 4): No2D, Ent1&2,
/// Ent3&4, Ent1&2&3 — COMPOSITE statistics with the given per-pair budgets.
struct FlightsSummaries {
  std::shared_ptr<EntropySummary> no2d;
  std::shared_ptr<EntropySummary> ent12;
  std::shared_ptr<EntropySummary> ent34;
  std::shared_ptr<EntropySummary> ent123;
};
Result<FlightsSummaries> BuildFlightsSummaries(const Table& table,
                                               const BenchScale& scale);

/// Wraps a summary / sample estimator as a Method.
Method SummaryMethod(std::string name,
                     std::shared_ptr<EntropySummary> summary);
Method SampleMethod(std::string name,
                    std::shared_ptr<WeightedSample> sample);

/// Average symmetric error of `method` over the workload points (estimates
/// rounded to integer counts, as the paper does for rare-value detection).
double AvgErrorOn(const Method& method, size_t num_attrs,
                  const std::vector<AttrId>& attrs,
                  const std::vector<QueryPoint>& points);

/// F-measure of `method` on light + nonexistent points.
double FMeasureOn(const Method& method, size_t num_attrs,
                  const std::vector<AttrId>& attrs,
                  const std::vector<QueryPoint>& light,
                  const std::vector<QueryPoint>& nulls);

/// Mean per-query wall time (seconds).
double AvgQuerySeconds(const Method& method, size_t num_attrs,
                       const std::vector<AttrId>& attrs,
                       const std::vector<QueryPoint>& points);

/// Copies the chosen attributes of a table into a narrower table (used by
/// the Fig 2 bench, which works on the 3-attribute flights projection).
std::shared_ptr<Table> ProjectTable(const Table& table,
                                    const std::vector<AttrId>& attrs);

/// Prints a labelled horizontal rule.
void PrintHeader(const std::string& title);

}  // namespace bench
}  // namespace entropydb

/// BENCHMARK_MAIN() replacement that understands --quick (see
/// ApplyQuickFlag). Used by the benches CI runs on every push.
#define ENTROPYDB_BENCH_MAIN()                                          \
  int main(int argc, char** argv) {                                     \
    ::entropydb::bench::ApplyQuickFlag(&argc, argv);                    \
    ::benchmark::Initialize(&argc, argv);                               \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1; \
    ::benchmark::RunSpecifiedBenchmarks();                              \
    ::benchmark::Shutdown();                                            \
    return 0;                                                           \
  }

#endif  // ENTROPYDB_BENCH_BENCH_UTIL_H_
