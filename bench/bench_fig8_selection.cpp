// Reproduces Fig 8: statistic-selection comparison across the four MaxEnt
// configurations (No2D, Ent1&2, Ent3&4, Ent1&2&3) on FlightsCoarse and
// FlightsFine:
//   (a) average error over 2-D heavy-hitter queries,
//   (b) average F-measure over 2-D light-hitter + null queries,
// across all six pairs of {origin, dest, fl_time, distance} (Sec 6.4).

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

int RunDataset(bool fine, const BenchScale& scale) {
  FlightsConfig cfg;
  cfg.num_rows = scale.flights_rows;
  cfg.fine_grained = fine;
  cfg.seed = 42;
  auto table_r = FlightsGenerator::Generate(cfg);
  if (!table_r.ok()) return 1;
  const Table& table = **table_r;
  FlightsPairs p = ResolveFlightsPairs(table);

  auto summaries_r = BuildFlightsSummaries(table, scale);
  if (!summaries_r.ok()) {
    std::fprintf(stderr, "summaries: %s\n",
                 summaries_r.status().ToString().c_str());
    return 1;
  }
  auto& s = *summaries_r;
  std::vector<Method> methods = {
      SummaryMethod("No2D", s.no2d), SummaryMethod("Ent1&2", s.ent12),
      SummaryMethod("Ent3&4", s.ent34), SummaryMethod("Ent1&2&3", s.ent123)};

  const AttrId core[] = {p.origin, p.dest, p.time, p.distance};
  WorkloadConfig wcfg;
  wcfg.num_heavy = 100;
  wcfg.num_light = 100;
  wcfg.num_nonexistent = 200;

  std::vector<double> err_sum(methods.size(), 0.0);
  std::vector<double> f_sum(methods.size(), 0.0);
  size_t templates = 0;
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      std::vector<AttrId> attrs{core[i], core[j]};
      auto w = SelectWorkload(table, attrs, wcfg);
      if (!w.ok()) return 1;
      ++templates;
      for (size_t m = 0; m < methods.size(); ++m) {
        err_sum[m] +=
            AvgErrorOn(methods[m], table.num_attributes(), attrs, w->heavy);
        f_sum[m] += FMeasureOn(methods[m], table.num_attributes(), attrs,
                               w->light, w->nonexistent);
      }
    }
  }

  std::printf("\n-- %s: averages over %zu 2-attribute templates --\n",
              fine ? "FlightsFine" : "FlightsCoarse", templates);
  std::printf("  %-10s %18s %16s\n", "method", "(a) heavy error",
              "(b) F-measure");
  for (size_t m = 0; m < methods.size(); ++m) {
    std::printf("  %-10s %18.3f %16.3f\n", methods[m].name.c_str(),
                err_sum[m] / templates, f_sum[m] / templates);
  }
  return 0;
}

}  // namespace

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Fig 8: MaxEnt statistic selection (breadth vs depth)");
  if (RunDataset(false, scale) != 0) return 1;
  if (RunDataset(true, scale) != 0) return 1;
  std::printf(
      "\npaper shape: Ent1&2&3 (more pairs, fewer buckets = breadth) best "
      "on\nheavy hitters; Ent3&4 (fewer pairs, more buckets + attribute "
      "cover =\ndepth) best on F-measure; every 2-D configuration beats "
      "No2D.\n");
  return 0;
}
