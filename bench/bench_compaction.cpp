// Compaction (engine/compaction.h): append N batches to a sharded store,
// measure merged-query latency on the batch-bloated store, compact, and
// measure again — the PR 8 claim that folding the accumulated shard_b*
// batch shards back into full-size shards recovers the per-query routing
// cost, while leaving every merged answer within the 1e-9 merge bar.
// Compaction wall time is reported alongside, since the whole point of
// the LSM-style split is paying it off the query path.
//
// Before benchmarks run, a verification pass gates the PR's claims:
//   * every battery query's merged COUNT on the compacted store must be
//     within 1e-9 (relative) of the uncompacted store's answer, and
//   * the selective workload must be faster on the compacted store (it
//     fans out over FEWER shards — fewer model evaluations per query).
// --compact_out FILE writes the measurements as JSON for the CI gate
// (tools/check_perf_gate.py --compact). The bench exits non-zero if an
// enforced bar fails.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

namespace fs = std::filesystem;

constexpr size_t kBaseShards = 4;
constexpr size_t kBatches = 12;
constexpr uint32_t kDomain0 = 12;
constexpr uint32_t kDomain1 = 8;

std::shared_ptr<Table> CompactionTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {kDomain0, kDomain1};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a), Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(2);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(kDomain0));
    row[1] = rng.NextBernoulli(0.7)
                 ? static_cast<Code>(row[0] % kDomain1)
                 : static_cast<Code>(rng.Uniform(kDomain1));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

/// The 1e-9 merge bar needs per-shard models that reproduce their shard
/// distributions EXACTLY (the compaction_test.cc argument): one summary
/// covering every pair cell, a solver driven far past default tolerance,
/// and no sample companions (hybrid routing to a re-drawn sample would
/// shift answers across the rebuild).
StoreOptions ShardStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 1;
  opts.total_budget = 2 * kDomain0 * kDomain1;
  opts.heuristic = SelectionHeuristic::kLargeSingleCell;
  opts.summary.solver.max_iterations = 6000;
  opts.summary.solver.tolerance = 1e-12;
  return opts;
}

std::string BatchCsv(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::string csv = "A0,A1\n";
  for (size_t r = 0; r < rows; ++r) {
    const Code a = static_cast<Code>(rng.Uniform(kDomain0));
    const Code b = rng.NextBernoulli(0.7)
                       ? static_cast<Code>(a % kDomain1)
                       : static_cast<Code>(rng.Uniform(kDomain1));
    csv += std::to_string(a) + "," + std::to_string(b) + "\n";
  }
  return csv;
}

struct CompactionFixture {
  std::string dir;
  size_t base_rows = 0;
  size_t batch_rows = 0;
  // Loaded snapshots of the SAME store before/after compaction, so both
  // sides answer from identical code paths (Load + merged fan-out).
  std::shared_ptr<ShardedStore> pre;
  std::shared_ptr<ShardedStore> post;
  size_t pre_shards = 0;
  size_t post_shards = 0;
  double compact_seconds = 0.0;
  std::vector<CountingQuery> selective;

  static CompactionFixture& Get() {
    static CompactionFixture* f = [] {
      auto* fx = new CompactionFixture();
      const BenchScale scale = ReadScale();
      fx->base_rows = std::max<size_t>(60'000, scale.flights_rows / 8);
      fx->batch_rows = std::max<size_t>(2'000, fx->base_rows / 30);
      fx->dir = (fs::temp_directory_path() / "entropydb_bench_compaction")
                    .string();
      fs::remove_all(fx->dir);

      ShardedOptions sopts;
      sopts.num_shards = kBaseShards;
      sopts.scheme = PartitionScheme::kAttribute;
      sopts.partition_attr = 0;
      sopts.store = ShardStoreOptions();
      auto built =
          ShardedStore::Build(*CompactionTable(fx->base_rows, 8311), sopts);
      if (!built.ok() || !(*built)->Save(fx->dir).ok()) {
        std::fprintf(stderr, "fixture build failed\n");
        std::exit(1);
      }
      for (size_t b = 0; b < kBatches; ++b) {
        auto report = AppendBatch(fx->dir, BatchCsv(fx->batch_rows, 8400 + b),
                                  ShardStoreOptions());
        if (!report.ok()) {
          std::fprintf(stderr, "append failed: %s\n",
                       report.status().ToString().c_str());
          std::exit(1);
        }
      }
      auto pre = ShardedStore::Load(fx->dir);
      if (!pre.ok()) {
        std::fprintf(stderr, "pre load failed\n");
        std::exit(1);
      }
      fx->pre = *pre;
      fx->pre_shards = fx->pre->num_shards();

      CompactionOptions copts;
      copts.store = ShardStoreOptions();
      copts.max_batch_shards = 2;
      // Split so replacement shards track the base shards' size instead
      // of collapsing all batches into one jumbo shard.
      copts.split_threshold = fx->base_rows / kBaseShards;
      Timer timer;
      auto report = RunCompaction(fx->dir, copts);
      fx->compact_seconds = timer.ElapsedSeconds();
      if (!report.ok() || !report->ran) {
        std::fprintf(stderr, "compaction did not run\n");
        std::exit(1);
      }
      auto post = ShardedStore::Load(fx->dir);
      if (!post.ok()) {
        std::fprintf(stderr, "post load failed\n");
        std::exit(1);
      }
      fx->post = *post;
      fx->post_shards = fx->post->num_shards();

      Rng rng(8513);
      for (size_t i = 0; i < 64; ++i) {
        CountingQuery q(2);
        q.Where(0, AttrPredicate::Point(
                       static_cast<Code>(rng.Uniform(kDomain0))));
        if (rng.NextBernoulli(0.5)) {
          q.Where(1, AttrPredicate::Point(
                         static_cast<Code>(rng.Uniform(kDomain1))));
        }
        fx->selective.push_back(q);
      }
      return fx;
    }();
    return *f;
  }
};

/// Largest relative pre-vs-post COUNT divergence over the workload.
double MergeMaxRelErr() {
  auto& f = CompactionFixture::Get();
  double worst = 0.0;
  for (const CountingQuery& q : f.selective) {
    auto a = f.pre->Answer(q);
    auto b = f.post->Answer(q);
    if (!a.ok() || !b.ok()) {
      std::fprintf(stderr, "answer failed during verification\n");
      std::exit(1);
    }
    const double rel = std::fabs(a->expectation - b->expectation) /
                       std::max(1.0, std::fabs(a->expectation));
    if (rel > worst) worst = rel;
  }
  return worst;
}

/// Best-of-3 mean ns/query for a store snapshot over the workload.
double MeasureNsPerQuery(const ShardedStore& store) {
  auto& f = CompactionFixture::Get();
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    for (const CountingQuery& q : f.selective) {
      auto est = store.Answer(q);
      benchmark::DoNotOptimize(est);
    }
    const double ns = timer.ElapsedSeconds() * 1e9 / f.selective.size();
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

void BM_MergedCount(benchmark::State& state) {
  auto& f = CompactionFixture::Get();
  const ShardedStore& store = state.range(0) != 0 ? *f.post : *f.pre;
  size_t i = 0;
  for (auto _ : state) {
    auto est = store.Answer(f.selective[i % f.selective.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergedCount)->ArgNames({"compacted"})->Arg(0)->Arg(1);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --compact_out FILE before google-benchmark sees argv.
  std::string compact_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--compact_out") == 0 && i + 1 < argc) {
      compact_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = CompactionFixture::Get();
  const double merge_err = MergeMaxRelErr();
  const double pre_ns = MeasureNsPerQuery(*f.pre);
  const double post_ns = MeasureNsPerQuery(*f.post);
  const bool merged_ok = merge_err <= 1e-9;
  // Fewer shards = fewer per-query model evaluations: enforceable on any
  // core count, like the pruning bar.
  const bool faster = post_ns < pre_ns;

  std::printf("compaction (%zu base rows + %zu x %zu batch rows):\n",
              f.base_rows, kBatches, f.batch_rows);
  std::printf("  shards %zu -> %zu, compaction wall %.2fs\n", f.pre_shards,
              f.post_shards, f.compact_seconds);
  std::printf("  merge max rel err %.3g (bar 1e-9): %s\n", merge_err,
              merged_ok ? "ok" : "FAIL");
  std::printf("  selective %8.0f ns/query -> %8.0f ns/query (%.2fx): %s\n",
              pre_ns, post_ns, pre_ns / std::max(post_ns, 1.0),
              faster ? "ok" : "FAIL");

  if (!compact_out.empty()) {
    FILE* out = std::fopen(compact_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --compact_out file: %s\n",
                   compact_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"base_rows\": %zu,\n"
                 "  \"batches\": %zu,\n"
                 "  \"batch_rows\": %zu,\n"
                 "  \"pre_shards\": %zu,\n"
                 "  \"post_shards\": %zu,\n"
                 "  \"compact_seconds\": %.3f,\n"
                 "  \"merge_max_rel_err\": %.3g,\n"
                 "  \"pre_ns\": %.1f,\n"
                 "  \"post_ns\": %.1f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 f.base_rows, kBatches, f.batch_rows, f.pre_shards,
                 f.post_shards, f.compact_seconds, merge_err, pre_ns, post_ns,
                 pre_ns / std::max(post_ns, 1.0),
                 (merged_ok && faster) ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --compact_out file: %s\n",
                   compact_out.c_str());
      return 1;
    }
  }
  fs::remove_all(f.dir);
  if (!merged_ok || !faster) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
