// Reproduces the compression numbers quoted in Sec 4.1 / 4.3 / 6.2:
//  - uncompressed SOP polynomial size (= |Tup|) vs the compressed
//    representation (paper: 4.4M terms vs ~9,000 at budget 2000);
//  - summary footprint vs the base table and a 1% sample (paper: 200 MB
//    summary vs 5 GB data vs ~100 MB sample).

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Compression: polynomial and summary size (Sec 4.1/4.3/6.2)");

  FlightsConfig cfg;
  cfg.num_rows = scale.flights_rows;
  cfg.seed = 42;
  auto full = FlightsGenerator::Generate(cfg);
  if (!full.ok()) return 1;
  FlightsPairs pairs = ResolveFlightsPairs(**full);

  // Part 1: the Sec 4.3 experiment — 3-attribute projection, 2-D statistics
  // on (fl_time, distance) at growing budgets.
  auto table = ProjectTable(**full, {pairs.date, pairs.time, pairs.distance});
  std::printf(
      "\n(fl_date, fl_time, distance) projection; COMPOSITE on (ET, DT)\n");
  std::printf("%-8s %16s %16s %12s %12s\n", "budget", "uncompressed",
              "compressed", "groups", "max|S|");
  for (size_t budget : {500u, 1000u, 2000u}) {
    StatisticSelector sel(SelectionHeuristic::kComposite);
    auto stats = sel.Select(*table, 1, 2, budget);
    auto reg =
        VariableRegistry::Create({307, 62, 81},
                                 [&] {
                                   ExactEvaluator ev(*table);
                                   std::vector<std::vector<double>> t(3);
                                   for (AttrId a = 0; a < 3; ++a) {
                                     auto h = ev.Histogram1D(a);
                                     t[a].assign(h.begin(), h.end());
                                   }
                                   return t;
                                 }(),
                                 stats, static_cast<double>(table->num_rows()));
    if (!reg.ok()) return 1;
    auto poly = CompressedPolynomial::Build(*reg);
    if (!poly.ok()) return 1;
    std::printf("%-8zu %16.3g %16zu %12zu %12zu\n", budget,
                poly->UncompressedTermCount(), poly->CompressedSize(),
                poly->NumGroups(), poly->MaxSetSize());
  }
  std::printf("(paper at budget 2000: 4.4e6 uncompressed vs ~9000 "
              "compressed)\n");

  // Part 2: full summary vs data vs sample footprint.
  auto summaries = BuildFlightsSummaries(**full, scale);
  if (!summaries.ok()) return 1;
  auto uni = UniformSampler::Create(**full, scale.sample_fraction, 3);
  if (!uni.ok()) return 1;

  const std::string path = "/tmp/entropydb_compression_summary.edb";
  if (!summaries->ent123->Save(path).ok()) return 1;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot reopen %s\n", path.c_str());
    return 1;
  }
  std::fseek(f, 0, SEEK_END);
  long file_bytes = std::ftell(f);
  std::fclose(f);
  std::remove(path.c_str());

  std::printf("\nfootprints (5-attribute FlightsCoarse, %zu rows):\n",
              (*full)->num_rows());
  std::printf("  %-28s %12.2f MB\n", "base table (encoded)",
              (*full)->MemoryBytes() / 1048576.0);
  std::printf("  %-28s %12.2f MB\n", "1% uniform sample",
              uni->MemoryBytes() / 1048576.0);
  std::printf("  %-28s %12.2f MB (file: %.2f MB)\n",
              "Ent1&2&3 summary (in-memory)",
              summaries->ent123->polynomial().MemoryBytes() / 1048576.0,
              file_bytes / 1048576.0);
  std::printf("  %-28s %12.3g\n", "|Tup| (uncompressed terms)",
              summaries->ent123->polynomial().UncompressedTermCount());
  std::printf("  %-28s %12zu\n", "compressed terms",
              summaries->ent123->polynomial().CompressedSize());
  std::printf(
      "\npaper shape: the persisted summary (statistics + solved variables) "
      "is\norders of magnitude below |Tup|, below the sample, and far below "
      "the\ndata. The in-memory figure additionally includes the "
      "inclusion-exclusion\ngroup closure, which is rebuilt from the file "
      "on load — the analogue of\nthe paper storing variables in Postgres "
      "(600 KB) and the factorization\nseparately (200 MB text).\n");
  return 0;
}
