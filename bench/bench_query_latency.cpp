// Query answering latency (Sec 5 / 6.2: EntropyDB answers in < 1 s, ~500 ms
// on the authors' 1e10-tuple domains; our domains are smaller so absolute
// numbers are microseconds, but the comparison against sample and full
// scans — and the independence from base-data size — is the reproduced
// claim).
//
// google-benchmark binary: run with --benchmark_filter=... as usual.

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

struct LatencyFixture {
  std::shared_ptr<Table> table;
  std::shared_ptr<EntropySummary> summary;
  /// The serving facade over `summary` — the query path benches go through
  /// it, like the tools and examples do.
  std::shared_ptr<EntropyEngine> engine;
  std::shared_ptr<WeightedSample> uni;
  CountingQuery point_query;
  CountingQuery range_query;
  CountingQuery single_pred_query;

  static LatencyFixture& Get() {
    static LatencyFixture* f = [] {
      auto* fx = new LatencyFixture();
      BenchScale scale = ReadScale();
      FlightsConfig cfg;
      cfg.num_rows = scale.flights_rows;
      cfg.seed = 42;
      fx->table = *FlightsGenerator::Generate(cfg);
      auto summaries = BuildFlightsSummaries(*fx->table, scale);
      fx->summary = summaries->ent123;
      fx->engine = EntropyEngine::FromSummary(fx->summary);
      fx->uni = std::make_shared<WeightedSample>(
          *UniformSampler::Create(*fx->table, scale.sample_fraction, 5));
      FlightsPairs p = ResolveFlightsPairs(*fx->table);
      fx->point_query = CountingQuery(5);
      fx->point_query.Where(p.origin, AttrPredicate::Point(3))
          .Where(p.dest, AttrPredicate::Point(7));
      fx->range_query = CountingQuery(5);
      fx->range_query.Where(p.distance, AttrPredicate::Range(10, 40))
          .Where(p.time, AttrPredicate::Range(5, 30));
      fx->single_pred_query = CountingQuery(5);
      fx->single_pred_query.Where(p.origin, AttrPredicate::Point(3));
      return fx;
    }();
    return *f;
  }
};

void BM_SummaryPointQuery(benchmark::State& state) {
  auto& f = LatencyFixture::Get();
  for (auto _ : state) {
    auto est = f.engine->Answer(f.point_query);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_SummaryPointQuery);

void BM_SummarySinglePredicateQuery(benchmark::State& state) {
  // The interactive common case: one constrained attribute of five. The
  // cached workspace rebuilds one prefix sum and re-walks one component —
  // everything else is served from the unmasked caches.
  auto& f = LatencyFixture::Get();
  for (auto _ : state) {
    auto est = f.engine->Answer(f.single_pred_query);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_SummarySinglePredicateQuery);

void BM_MaskedEvalFresh(benchmark::State& state) {
  // Ablation: the seed path — every masked evaluation rebuilt all
  // per-attribute prefix sums and walked every group of every component.
  auto& f = LatencyFixture::Get();
  const auto& poly = f.summary->polynomial();
  const auto& st = f.summary->state();
  QueryMask mask =
      QueryMask::FromQuery(f.single_pred_query,
                           f.summary->registry().domain_sizes());
  for (auto _ : state) {
    auto ctx = poly.Evaluate(st, mask);
    benchmark::DoNotOptimize(ctx.value);
  }
}
BENCHMARK(BM_MaskedEvalFresh);

void BM_MaskedEvalCached(benchmark::State& state) {
  // The new path: same mask, served from a warmed EvalWorkspace.
  auto& f = LatencyFixture::Get();
  const auto& poly = f.summary->polynomial();
  const auto& st = f.summary->state();
  QueryMask mask =
      QueryMask::FromQuery(f.single_pred_query,
                           f.summary->registry().domain_sizes());
  EvalWorkspace ws;
  poly.PrepareWorkspace(st, &ws);
  for (auto _ : state) {
    auto eval = poly.MaskedEvaluate(st, mask, &ws);
    benchmark::DoNotOptimize(eval.value);
  }
}
BENCHMARK(BM_MaskedEvalCached);

void BM_SummaryRangeQuery(benchmark::State& state) {
  auto& f = LatencyFixture::Get();
  for (auto _ : state) {
    auto est = f.engine->Answer(f.range_query);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_SummaryRangeQuery);

void BM_SummaryGroupBy16(benchmark::State& state) {
  auto& f = LatencyFixture::Get();
  FlightsPairs p = ResolveFlightsPairs(*f.table);
  std::vector<std::vector<Code>> keys;
  for (Code o = 0; o < 4; ++o) {
    for (Code d = 0; d < 4; ++d) keys.push_back({o, d});
  }
  for (auto _ : state) {
    auto groups =
        f.engine->AnswerGroupBy({p.origin, p.dest}, keys, CountingQuery(5));
    benchmark::DoNotOptimize(groups);
  }
}
BENCHMARK(BM_SummaryGroupBy16);

void BM_UniformSampleScan(benchmark::State& state) {
  auto& f = LatencyFixture::Get();
  SampleEstimator est(*f.uni);
  for (auto _ : state) {
    auto e = est.Count(f.range_query);
    benchmark::DoNotOptimize(e);
  }
}
BENCHMARK(BM_UniformSampleScan);

void BM_ExactFullScan(benchmark::State& state) {
  auto& f = LatencyFixture::Get();
  ExactEvaluator exact(*f.table);
  for (auto _ : state) {
    auto c = exact.Count(f.range_query);
    benchmark::DoNotOptimize(c);
  }
}
BENCHMARK(BM_ExactFullScan);

// Query latency must not depend on the base-data size: rebuild the summary
// from tables of growing cardinality and time the same query.
void BM_SummaryQueryVsDataSize(benchmark::State& state) {
  BenchScale scale = ReadScale();
  FlightsConfig cfg;
  cfg.num_rows = static_cast<size_t>(state.range(0));
  cfg.seed = 42;
  auto table = *FlightsGenerator::Generate(cfg);
  auto summaries = BuildFlightsSummaries(*table, scale);
  auto engine = EntropyEngine::FromSummary(summaries->ent123);
  FlightsPairs p = ResolveFlightsPairs(*table);
  CountingQuery q(5);
  q.Where(p.origin, AttrPredicate::Point(1))
      .Where(p.distance, AttrPredicate::Range(5, 25));
  for (auto _ : state) {
    auto est = engine->Answer(q);
    benchmark::DoNotOptimize(est);
  }
}
BENCHMARK(BM_SummaryQueryVsDataSize)->Arg(50000)->Arg(200000)->Arg(400000);

}  // namespace

ENTROPYDB_BENCH_MAIN();
