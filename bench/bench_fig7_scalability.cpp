// Reproduces Fig 7: Particles scalability — average query error (top) and
// per-query runtime (bottom) for three 4-D selection templates as the
// number of snapshots grows from 1 to 3.
//
// Methods (Sec 6.3): Uni (uniform sample), Strat on (density, grp), EntNo2D
// (1-D statistics only), EntAll (COMPOSITE statistics on the 5 most
// correlated non-snapshot pairs, 100 buckets each).

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Fig 7: Particles scalability (error + runtime)");

  struct Template {
    const char* label;
    std::vector<std::string> attrs;
  };
  const Template templates[] = {
      {"Q1: den&mass&grp&type", {"density", "mass", "grp", "type"}},
      {"Q2: mass&x&y&z", {"mass", "x", "y", "z"}},
      {"Q3: y&z&grp&type", {"y", "z", "grp", "type"}},
  };

  for (uint32_t snapshots = 1; snapshots <= 3; ++snapshots) {
    ParticlesConfig cfg;
    cfg.rows_per_snapshot = scale.particle_rows_per_snapshot;
    cfg.num_snapshots = snapshots;
    cfg.seed = 7;
    auto table_r = ParticlesGenerator::Generate(cfg);
    if (!table_r.ok()) {
      std::fprintf(stderr, "%s\n", table_r.status().ToString().c_str());
      return 1;
    }
    const Table& table = **table_r;
    AttrId snapshot_attr = *table.schema().IndexOf("snapshot");

    // EntAll: 5 statistic pairs over the most correlated non-snapshot
    // attributes, 100 buckets each (Sec 6.3). Pairs are picked with the
    // attribute-cover strategy (the paper's preferred selection, Sec 4.3):
    // taking the raw top-5 correlations chains every pair through the
    // two-value grp hub and the inclusion-exclusion closure explodes.
    auto ranked = PairSelector::RankPairs(table, {snapshot_attr});
    auto chosen = PairSelector::Choose(ranked, 5,
                                       PairStrategy::kAttributeCover);
    StatisticSelector sel(SelectionHeuristic::kComposite);
    if (snapshots == 1) {
      std::printf("EntAll pairs:");
      for (const auto& pr : chosen) {
        std::printf(" (%s,%s)", table.schema().attribute(pr.a).name.c_str(),
                    table.schema().attribute(pr.b).name.c_str());
      }
      std::printf("\n");
    }
    auto build_entall = [&](size_t budget) {
      std::vector<MultiDimStatistic> all_stats;
      for (const auto& pr : chosen) {
        auto s = sel.Select(table, pr.a, pr.b, budget);
        all_stats.insert(all_stats.end(), s.begin(), s.end());
      }
      return EntropySummary::Build(table, all_stats);
    };
    auto entall = build_entall(100);
    for (size_t budget : {50u, 25u}) {
      if (entall.ok() || !entall.status().IsResourceExhausted()) break;
      entall = build_entall(budget);
    }

    auto no2d = EntropySummary::Build(table, {});
    auto uni = UniformSampler::Create(table, scale.sample_fraction, 13);
    AttrId den = *table.schema().IndexOf("density");
    AttrId grp = *table.schema().IndexOf("grp");
    auto strat = StratifiedSampler::Create(table, den, grp,
                                           scale.sample_fraction, 14);
    if (!no2d.ok() || !entall.ok() || !uni.ok() || !strat.ok()) {
      std::fprintf(stderr, "method construction failed\n");
      return 1;
    }

    std::vector<Method> methods;
    methods.push_back(SampleMethod(
        "Uni", std::make_shared<WeightedSample>(std::move(*uni))));
    methods.push_back(SampleMethod(
        "Strat", std::make_shared<WeightedSample>(std::move(*strat))));
    methods.push_back(SummaryMethod("No2D", *no2d));
    methods.push_back(SummaryMethod("EntAll", *entall));

    std::printf("\n-- %u snapshot(s), %zu rows --\n", snapshots,
                table.num_rows());
    std::printf("%-24s %-8s %12s %12s %14s\n", "template", "method",
                "heavy_err", "light_err", "avg_query_ms");
    WorkloadConfig wcfg;
    wcfg.num_heavy = 50;
    wcfg.num_light = 50;
    wcfg.num_nonexistent = 0;
    for (const auto& t : templates) {
      std::vector<AttrId> attrs;
      for (const auto& name : t.attrs) {
        attrs.push_back(*table.schema().IndexOf(name));
      }
      auto w = SelectWorkload(table, attrs, wcfg);
      if (!w.ok()) return 1;
      for (const auto& m : methods) {
        double heavy = AvgErrorOn(m, table.num_attributes(), attrs, w->heavy);
        double light = AvgErrorOn(m, table.num_attributes(), attrs, w->light);
        double ms =
            AvgQuerySeconds(m, table.num_attributes(), attrs, w->heavy) * 1e3;
        std::printf("%-24s %-8s %12.3f %12.3f %14.4f\n", t.label,
                    m.name.c_str(), heavy, light, ms);
      }
    }
  }
  std::printf(
      "\npaper shape: sampling strong on heavy hitters; EntAll well below "
      "No2D\non Q1 (3 of its 5 statistics cover Q1's attributes); nobody "
      "does well on\nlight hitters except where statistics/stratification "
      "align. Runtime note:\nthe paper's samples lived in Postgres (1 GB "
      "scans, ~1-4 s) while ours are\nin-memory, so sample scans here are "
      "microseconds; the reproduced claim is\nthat summary latency is "
      "milliseconds and independent of base-data size.\n");
  return 0;
}
