// Reproduces Fig 3: active domain sizes after binning, for FlightsCoarse,
// FlightsFine, and Particles.

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

void PrintDomains(const char* title, const Table& table) {
  std::printf("\n%s (%zu rows)\n", title, table.num_rows());
  std::printf("  %-12s %s\n", "attribute", "distinct values after binning");
  for (AttrId a = 0; a < table.num_attributes(); ++a) {
    std::printf("  %-12s %u\n", table.schema().attribute(a).name.c_str(),
                table.domain(a).size());
  }
  std::printf("  %-12s %.2g\n", "|Tup|", table.NumPossibleTuples());
}

}  // namespace

int main() {
  PrintHeader("Fig 3: active domain sizes");

  FlightsConfig coarse;
  coarse.num_rows = 50'000;  // domain sizes are row-count independent
  auto coarse_t = FlightsGenerator::Generate(coarse);

  FlightsConfig fine = coarse;
  fine.fine_grained = true;
  auto fine_t = FlightsGenerator::Generate(fine);

  ParticlesConfig pcfg;
  pcfg.rows_per_snapshot = 30'000;
  auto particles_t = ParticlesGenerator::Generate(pcfg);

  if (!coarse_t.ok() || !fine_t.ok() || !particles_t.ok()) {
    std::fprintf(stderr, "generation failed\n");
    return 1;
  }
  PrintDomains("FlightsCoarse", **coarse_t);
  PrintDomains("FlightsFine", **fine_t);
  PrintDomains("Particles", **particles_t);
  std::printf(
      "\npaper: coarse |Tup| = 4.5e9, fine |Tup| = 3.3e10, particles |Tup| "
      "= 5.0e8\n");
  return 0;
}
