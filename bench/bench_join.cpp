// Join fusion (maxent/join_fusion.h, engine AnswerJoin): fuse two
// relations' summaries on a shared join attribute and answer equi-join
// COUNT/SUM without touching either relation's rows — the PR 10 claim
// that cross-relation estimates stay a pure model-side operation.
//
// Before benchmarks run, a verification pass gates the PR's claims:
//   * fused JOIN_COUNT and JOIN_SUM estimates over exactly-pinned models
//     (full pair statistics, solver driven past default tolerance) must
//     stay within 1e-4 (relative) of brute-force ground truth over the
//     query battery, and
//   * the fused estimate must be faster than the exact single-pass scan
//     of both relations (the fusion reads two model marginals; the scan
//     reads every row — enforceable on any core count).
// --join_out FILE writes the measurements as JSON for the CI gate
// (tools/check_perf_gate.py --join). The bench exits non-zero if an
// enforced bar fails.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"
#include "query/exact_evaluator.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

constexpr uint32_t kJoinDomain = 12;
constexpr uint32_t kLeftFilterDomain = 8;
constexpr uint32_t kRightFilterDomain = 6;

std::shared_ptr<Table> JoinSideTable(size_t n, uint32_t filter_domain,
                                     uint64_t seed) {
  const std::vector<uint32_t> sizes = {kJoinDomain, filter_domain};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a), Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(2);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(kJoinDomain));
    // Correlate the filter attribute with the join key so filtered join
    // marginals are NOT flat — the delta variance has to work.
    row[1] = rng.NextBernoulli(0.6)
                 ? static_cast<Code>(row[0] % filter_domain)
                 : static_cast<Code>(rng.Uniform(filter_domain));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

/// Full point-pair 2-D statistics over (join, filter): the model then
/// reproduces the joint exactly, so the fidelity bar isolates the fusion
/// algebra instead of model error.
std::vector<MultiDimStatistic> FullPairStats(const Table& t) {
  ExactEvaluator eval(t);
  const std::vector<uint64_t> h2 = eval.Histogram2D(0, 1);
  const uint32_t nb = t.domain(1).size();
  std::vector<MultiDimStatistic> stats;
  for (Code ca = 0; ca < t.domain(0).size(); ++ca) {
    for (Code cb = 0; cb < nb; ++cb) {
      stats.push_back(Make2DStatistic(0, Interval{ca, ca}, 1,
                                      Interval{cb, cb},
                                      static_cast<double>(h2[ca * nb + cb])));
    }
  }
  return stats;
}

struct JoinWorkload {
  CountingQuery left_where{2};
  CountingQuery right_where{2};
};

struct JoinFixture {
  std::shared_ptr<Table> left_table;
  std::shared_ptr<Table> right_table;
  std::shared_ptr<EntropyEngine> left;
  std::shared_ptr<EntropyEngine> right;
  std::vector<double> weights;
  std::vector<JoinWorkload> battery;

  static JoinFixture& Get() {
    static JoinFixture* f = [] {
      auto* fx = new JoinFixture();
      const BenchScale scale = ReadScale();
      const size_t left_rows = std::max<size_t>(40'000, scale.flights_rows / 4);
      const size_t right_rows =
          std::max<size_t>(20'000, scale.flights_rows / 8);
      fx->left_table = JoinSideTable(left_rows, kLeftFilterDomain, 9101);
      fx->right_table = JoinSideTable(right_rows, kRightFilterDomain, 9103);

      SummaryOptions sopts;
      sopts.solver.max_iterations = 6000;
      sopts.solver.tolerance = 1e-12;
      auto ls = EntropySummary::Build(*fx->left_table,
                                      FullPairStats(*fx->left_table), sopts);
      auto rs = EntropySummary::Build(*fx->right_table,
                                      FullPairStats(*fx->right_table), sopts);
      if (!ls.ok() || !rs.ok()) {
        std::fprintf(stderr, "fixture summary build failed\n");
        std::exit(1);
      }
      fx->left = EntropyEngine::FromSummary(*ls);
      fx->right = EntropyEngine::FromSummary(*rs);
      fx->weights = BucketWeights(fx->left_table->domain(1));

      // Mixed battery: unfiltered, one-sided, and two-sided filters.
      Rng rng(9203);
      for (size_t i = 0; i < 48; ++i) {
        JoinWorkload w;
        if (rng.NextBernoulli(0.7)) {
          Code lo = static_cast<Code>(rng.Uniform(kLeftFilterDomain));
          Code hi = static_cast<Code>(rng.Uniform(kLeftFilterDomain));
          if (hi < lo) std::swap(lo, hi);
          w.left_where.Where(1, AttrPredicate::Range(lo, hi));
        }
        if (rng.NextBernoulli(0.5)) {
          w.right_where.Where(
              1, AttrPredicate::Point(
                     static_cast<Code>(rng.Uniform(kRightFilterDomain))));
        }
        fx->battery.push_back(w);
      }
      return fx;
    }();
    return *f;
  }
};

/// Exact equi-join COUNT by one filtered scan per side: histogram the join
/// key under each filter, then dot the histograms. This is the cheapest
/// possible exact answer — the baseline the fusion must beat.
double ExactJoinCount(const JoinWorkload& w) {
  auto& f = JoinFixture::Get();
  ExactEvaluator le(*f.left_table), re(*f.right_table);
  const auto lhist = le.GroupByCount({0}, w.left_where);
  const auto rhist = re.GroupByCount({0}, w.right_where);
  double total = 0.0;
  for (const auto& [key, count] : lhist) {
    auto it = rhist.find(key);
    if (it != rhist.end()) {
      total += static_cast<double>(count) * static_cast<double>(it->second);
    }
  }
  return total;
}

/// Exact equi-join SUM(left A1) via the (join, A1) grid on the left.
double ExactJoinSum(const JoinWorkload& w) {
  auto& f = JoinFixture::Get();
  ExactEvaluator le(*f.left_table), re(*f.right_table);
  const auto lgrid = le.GroupByCount({0, 1}, w.left_where);
  const auto rhist = re.GroupByCount({0}, w.right_where);
  double total = 0.0;
  for (const auto& [key, count] : lgrid) {
    auto it = rhist.find({key[0]});
    if (it != rhist.end()) {
      total += static_cast<double>(count) * f.weights[key[1]] *
               static_cast<double>(it->second);
    }
  }
  return total;
}

Result<QueryResult> FusedCount(const JoinWorkload& w) {
  auto& f = JoinFixture::Get();
  return f.left->AnswerJoin(
      AggregateQuery::JoinCount(0, 0, w.left_where, w.right_where), *f.right);
}

Result<QueryResult> FusedSum(const JoinWorkload& w) {
  auto& f = JoinFixture::Get();
  return f.left->AnswerJoin(
      AggregateQuery::JoinSum(1, f.weights, 0, 0, w.left_where,
                              w.right_where),
      *f.right);
}

/// Largest relative fused-vs-exact divergence over the battery.
void FidelityMaxRelErr(double* count_err, double* sum_err) {
  auto& f = JoinFixture::Get();
  *count_err = 0.0;
  *sum_err = 0.0;
  for (const JoinWorkload& w : f.battery) {
    auto fused = FusedCount(w);
    auto fused_sum = FusedSum(w);
    if (!fused.ok() || !fused_sum.ok()) {
      std::fprintf(stderr, "fused answer failed during verification\n");
      std::exit(1);
    }
    const double truth = ExactJoinCount(w);
    const double sum_truth = ExactJoinSum(w);
    *count_err = std::max(
        *count_err, std::fabs(fused->estimate.expectation - truth) /
                        std::max(1.0, std::fabs(truth)));
    *sum_err = std::max(
        *sum_err, std::fabs(fused_sum->estimate.expectation - sum_truth) /
                      std::max(1.0, std::fabs(sum_truth)));
  }
}

/// Best-of-3 mean ns/query over the battery.
double MeasureNs(const std::function<void(const JoinWorkload&)>& answer) {
  auto& f = JoinFixture::Get();
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    for (const JoinWorkload& w : f.battery) answer(w);
    const double ns = timer.ElapsedSeconds() * 1e9 / f.battery.size();
    if (rep == 0 || ns < best) best = ns;
  }
  return best;
}

void BM_FusedJoinCount(benchmark::State& state) {
  auto& f = JoinFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto est = FusedCount(f.battery[i % f.battery.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusedJoinCount);

void BM_FusedJoinSum(benchmark::State& state) {
  auto& f = JoinFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto est = FusedSum(f.battery[i % f.battery.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FusedJoinSum);

void BM_ExactJoinCount(benchmark::State& state) {
  auto& f = JoinFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    const double truth = ExactJoinCount(f.battery[i % f.battery.size()]);
    benchmark::DoNotOptimize(truth);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactJoinCount);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --join_out FILE before google-benchmark sees argv.
  std::string join_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--join_out") == 0 && i + 1 < argc) {
      join_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = JoinFixture::Get();
  double count_err = 0.0, sum_err = 0.0;
  FidelityMaxRelErr(&count_err, &sum_err);
  const double fused_ns =
      MeasureNs([](const JoinWorkload& w) {
        auto est = FusedCount(w);
        benchmark::DoNotOptimize(est);
      });
  const double exact_ns = MeasureNs([](const JoinWorkload& w) {
    const double truth = ExactJoinCount(w);
    benchmark::DoNotOptimize(truth);
  });
  const bool fidelity_ok = count_err <= 1e-4 && sum_err <= 1e-4;
  const bool faster = fused_ns < exact_ns;

  std::printf("join fusion (%zu left rows x %zu right rows, %zu queries):\n",
              f.left_table->num_rows(), f.right_table->num_rows(),
              f.battery.size());
  std::printf("  fidelity: count max rel err %.3g, sum max rel err %.3g "
              "(bar 1e-4): %s\n",
              count_err, sum_err, fidelity_ok ? "ok" : "FAIL");
  std::printf("  latency: fused %8.0f ns/query vs exact scan %8.0f "
              "ns/query (%.1fx): %s\n",
              fused_ns, exact_ns, exact_ns / std::max(fused_ns, 1.0),
              faster ? "ok" : "FAIL");

  if (!join_out.empty()) {
    FILE* out = std::fopen(join_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --join_out file: %s\n",
                   join_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"left_rows\": %zu,\n"
                 "  \"right_rows\": %zu,\n"
                 "  \"queries\": %zu,\n"
                 "  \"fidelity\": {\n"
                 "    \"count_max_rel_err\": %.3g,\n"
                 "    \"sum_max_rel_err\": %.3g\n"
                 "  },\n"
                 "  \"latency\": {\n"
                 "    \"fused_ns\": %.1f,\n"
                 "    \"exact_ns\": %.1f,\n"
                 "    \"speedup\": %.3f\n"
                 "  },\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 f.left_table->num_rows(), f.right_table->num_rows(),
                 f.battery.size(), count_err, sum_err, fused_ns, exact_ns,
                 exact_ns / std::max(fused_ns, 1.0),
                 (fidelity_ok && faster) ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --join_out file: %s\n",
                   join_out.c_str());
      return 1;
    }
  }
  if (!fidelity_ok || !faster) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
