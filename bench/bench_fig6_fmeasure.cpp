// Reproduces Fig 6: average F-measure for distinguishing light hitters from
// nonexistent values, over FlightsCoarse (left) and FlightsFine (right),
// for Uni, Strat1-4, Ent1&2, Ent3&4, Ent1&2&3.
//
// The paper averages over fifteen 2- and 3-dimensional templates on the
// statistic-covered attributes; we enumerate the same template family: all
// six pairs and four triples of {origin, dest, fl_time, distance} plus the
// five date-augmented triples.

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

std::vector<std::vector<AttrId>> TemplateFamily(const FlightsPairs& p) {
  const AttrId core[] = {p.origin, p.dest, p.time, p.distance};
  std::vector<std::vector<AttrId>> out;
  // Six 2-D templates.
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) out.push_back({core[i], core[j]});
  }
  // Four 3-D templates.
  for (int i = 0; i < 4; ++i) {
    std::vector<AttrId> t;
    for (int j = 0; j < 4; ++j) {
      if (j != i) t.push_back(core[j]);
    }
    out.push_back(t);
  }
  // Five date-augmented templates (15 total, as in the paper).
  for (int i = 0; i < 4; ++i) out.push_back({p.date, core[i]});
  out.push_back({p.date, p.origin, p.dest});
  return out;
}

int RunDataset(bool fine, const BenchScale& scale) {
  FlightsConfig cfg;
  cfg.num_rows = scale.flights_rows;
  cfg.fine_grained = fine;
  cfg.seed = 42;
  auto table_r = FlightsGenerator::Generate(cfg);
  if (!table_r.ok()) return 1;
  const Table& table = **table_r;
  FlightsPairs pairs = ResolveFlightsPairs(table);

  auto summaries_r = BuildFlightsSummaries(table, scale);
  if (!summaries_r.ok()) {
    std::fprintf(stderr, "summaries: %s\n",
                 summaries_r.status().ToString().c_str());
    return 1;
  }
  auto& summaries = *summaries_r;

  auto uni = UniformSampler::Create(table, scale.sample_fraction, 11);
  if (!uni.ok()) return 1;
  std::vector<Method> methods;
  methods.push_back(
      SampleMethod("Uni", std::make_shared<WeightedSample>(std::move(*uni))));
  for (int p = 1; p <= 4; ++p) {
    auto [a, b] = pairs.pair(p);
    auto strat =
        StratifiedSampler::Create(table, a, b, scale.sample_fraction, 11 + p);
    if (!strat.ok()) return 1;
    methods.push_back(
        SampleMethod("Strat" + std::to_string(p),
                     std::make_shared<WeightedSample>(std::move(*strat))));
  }
  methods.push_back(SummaryMethod("Ent1&2", summaries.ent12));
  methods.push_back(SummaryMethod("Ent3&4", summaries.ent34));
  methods.push_back(SummaryMethod("Ent1&2&3", summaries.ent123));

  auto templates = TemplateFamily(pairs);
  WorkloadConfig wcfg;
  wcfg.num_heavy = 0;
  wcfg.num_light = 100;
  wcfg.num_nonexistent = 100;

  std::vector<double> sums(methods.size(), 0.0);
  std::vector<size_t> counts(methods.size(), 0);
  for (const auto& attrs : templates) {
    auto w = SelectWorkload(table, attrs, wcfg);
    if (!w.ok()) return 1;
    if (w->light.empty() || w->nonexistent.empty()) continue;
    for (size_t m = 0; m < methods.size(); ++m) {
      sums[m] += FMeasureOn(methods[m], table.num_attributes(), attrs,
                            w->light, w->nonexistent);
      ++counts[m];
    }
  }

  std::printf("\n-- %s: avg F-measure over %zu templates --\n",
              fine ? "FlightsFine" : "FlightsCoarse", templates.size());
  for (size_t m = 0; m < methods.size(); ++m) {
    std::printf("  %-10s %.3f\n", methods[m].name.c_str(),
                counts[m] ? sums[m] / counts[m] : 0.0);
  }
  return 0;
}

}  // namespace

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Fig 6: F-measure, light hitters vs nonexistent values");
  if (RunDataset(false, scale) != 0) return 1;
  if (RunDataset(true, scale) != 0) return 1;
  std::printf(
      "\npaper shape: Ent1&2 and Ent3&4 highest (~0.72), Ent1&2&3 close\n"
      "(~0.69), all EntropyDB variants above Uni and most stratified "
      "samples.\n");
  return 0;
}
