#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace entropydb {
namespace bench {

void ApplyQuickFlag(int* argc, char** argv) {
  int out = 1;
  bool quick = false;
  for (int i = 1; i < *argc; ++i) {
    if (std::string(argv[i]) == "--quick") {
      quick = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (quick) {
    // 0 = don't overwrite an explicit scale from the caller.
    setenv("ENTROPYDB_BENCH_SCALE", "0.05", 0);
  }
}

BenchScale ReadScale() {
  BenchScale s;
  const char* env = std::getenv("ENTROPYDB_BENCH_SCALE");
  if (env != nullptr) {
    double f = std::atof(env);
    if (f > 0) {
      s.flights_rows = static_cast<size_t>(s.flights_rows * f);
      s.particle_rows_per_snapshot =
          static_cast<size_t>(s.particle_rows_per_snapshot * f);
      s.bs_two_pair = static_cast<size_t>(s.bs_two_pair * f);
      s.bs_three_pair = static_cast<size_t>(s.bs_three_pair * f);
    }
  }
  return s;
}

std::pair<AttrId, AttrId> FlightsPairs::pair(int which) const {
  switch (which) {
    case 1:
      return {origin, distance};
    case 2:
      return {dest, distance};
    case 3:
      return {time, distance};
    default:
      return {origin, dest};
  }
}

FlightsPairs ResolveFlightsPairs(const Table& table) {
  FlightsPairs p;
  p.date = *table.schema().IndexOf("fl_date");
  p.origin = *table.schema().IndexOf("origin");
  p.dest = *table.schema().IndexOf("dest");
  p.time = *table.schema().IndexOf("fl_time");
  p.distance = *table.schema().IndexOf("distance");
  return p;
}

Result<FlightsSummaries> BuildFlightsSummaries(const Table& table,
                                               const BenchScale& scale) {
  FlightsPairs pairs = ResolveFlightsPairs(table);
  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto stats_for = [&](std::vector<int> which, size_t per_pair) {
    std::vector<MultiDimStatistic> stats;
    for (int w : which) {
      auto [a, b] = pairs.pair(w);
      auto s = sel.Select(table, a, b, per_pair);
      stats.insert(stats.end(), s.begin(), s.end());
    }
    return stats;
  };

  FlightsSummaries out;
  ASSIGN_OR_RETURN(out.no2d, EntropySummary::Build(table, {}));
  ASSIGN_OR_RETURN(out.ent12, EntropySummary::Build(
                                  table, stats_for({1, 2}, scale.bs_two_pair)));
  ASSIGN_OR_RETURN(out.ent34, EntropySummary::Build(
                                  table, stats_for({3, 4}, scale.bs_two_pair)));
  ASSIGN_OR_RETURN(
      out.ent123,
      EntropySummary::Build(table, stats_for({1, 2, 3}, scale.bs_three_pair)));
  return out;
}

Method SummaryMethod(std::string name,
                     std::shared_ptr<EntropySummary> summary) {
  return Method{std::move(name), [summary](const CountingQuery& q) {
                  auto est = summary->Answer(q);
                  return est.ok() ? est->expectation : 0.0;
                }};
}

Method SampleMethod(std::string name,
                    std::shared_ptr<WeightedSample> sample) {
  return Method{std::move(name), [sample](const CountingQuery& q) {
                  return SampleEstimator(*sample).Count(q).expectation;
                }};
}

double AvgErrorOn(const Method& method, size_t num_attrs,
                  const std::vector<AttrId>& attrs,
                  const std::vector<QueryPoint>& points) {
  std::vector<double> truths, ests;
  truths.reserve(points.size());
  ests.reserve(points.size());
  for (const auto& p : points) {
    auto q = PointQuery(num_attrs, attrs, p.key);
    truths.push_back(p.true_count);
    ests.push_back(std::round(method.answer(q)));
  }
  return AverageError(truths, ests);
}

double FMeasureOn(const Method& method, size_t num_attrs,
                  const std::vector<AttrId>& attrs,
                  const std::vector<QueryPoint>& light,
                  const std::vector<QueryPoint>& nulls) {
  std::vector<double> light_est, null_est;
  for (const auto& p : light) {
    light_est.push_back(method.answer(PointQuery(num_attrs, attrs, p.key)));
  }
  for (const auto& p : nulls) {
    null_est.push_back(method.answer(PointQuery(num_attrs, attrs, p.key)));
  }
  return ComputeFMeasure(light_est, null_est).f;
}

double AvgQuerySeconds(const Method& method, size_t num_attrs,
                       const std::vector<AttrId>& attrs,
                       const std::vector<QueryPoint>& points) {
  if (points.empty()) return 0.0;
  Timer timer;
  double sink = 0.0;
  for (const auto& p : points) {
    sink += method.answer(PointQuery(num_attrs, attrs, p.key));
  }
  double elapsed = timer.ElapsedSeconds();
  // Keep the optimizer honest.
  if (sink < -1.0) std::fprintf(stderr, "impossible\n");
  return elapsed / static_cast<double>(points.size());
}

std::shared_ptr<Table> ProjectTable(const Table& table,
                                    const std::vector<AttrId>& attrs) {
  std::vector<AttributeSpec> specs;
  for (AttrId a : attrs) specs.push_back(table.schema().attribute(a));
  TableBuilder builder{Schema(std::move(specs))};
  for (size_t i = 0; i < attrs.size(); ++i) {
    builder.SetDomain(static_cast<AttrId>(i), table.domain(attrs[i]));
  }
  std::vector<Code> row(attrs.size());
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t i = 0; i < attrs.size(); ++i) row[i] = table.at(r, attrs[i]);
    builder.AppendEncodedRow(row);
  }
  auto t = builder.Finish();
  return t.ok() ? *t : nullptr;
}

void PrintHeader(const std::string& title) {
  std::printf("\n==== %s ====\n", title.c_str());
}

}  // namespace bench
}  // namespace entropydb
