// Hybrid summary-vs-sample routing: reproduces the paper's central
// crossover (Figs. 5-6) inside ONE serving store.
//
// Fixture: a relation with two planted correlations. The store holds a
// maxent summary modeling pair (0, 1) ONLY, plus a stratified sample drawn
// on pair (2, 3) — so each source is strong exactly where the other is
// blind.
//
// Before benchmarks run, a verification pass measures mean relative error
// against exact ground truth for summary-direct, sample-direct, and routed
// answering on two workloads, and asserts the PR acceptance bar:
//  - SELECTIVE (rare off-diagonal (2, 3) strata): the sample beats the
//    summary, and routing follows the sample;
//  - BROAD (range filters on the modeled (0, 1) pair): the summary beats
//    the sample, and routing follows the summary;
//  - every routed answer is bitwise the chosen source's own answer.
// --crossover_out FILE additionally writes the measurements as JSON for
// the CI artifact (BENCH_pr3.json). The bench exits non-zero if any claim
// fails.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

std::shared_ptr<Table> HybridTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {8, 8, 24, 24};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a),
                Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(4);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(8));
    row[1] = rng.NextBernoulli(0.9) ? row[0]
                                    : static_cast<Code>(rng.Uniform(8));
    row[2] = static_cast<Code>(rng.Uniform(24));
    row[3] = rng.NextBernoulli(0.95) ? row[2]
                                     : static_cast<Code>(rng.Uniform(24));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

struct HybridFixture {
  std::shared_ptr<Table> table;
  std::shared_ptr<SourceStore> store;
  std::shared_ptr<EntropyEngine> engine;
  std::unique_ptr<ExactEvaluator> exact;
  std::vector<CountingQuery> selective;  // rare off-diagonal (2, 3) cells
  std::vector<CountingQuery> broad;      // ranges on the modeled (0, 1)

  static HybridFixture& Get() {
    static HybridFixture* f = [] {
      auto* fx = new HybridFixture();
      fx->table = HybridTable(30'000, 1201);
      const Table& t = *fx->table;

      StatisticSelector selector(SelectionHeuristic::kComposite);
      SummaryOptions sopts;
      sopts.solver.max_iterations = 200;
      auto summary =
          EntropySummary::Build(t, selector.Select(t, 0, 1, 60), sopts);
      StoreEntry entry;
      entry.summary = *summary;
      entry.pairs = {ScoredPair{0, 1, 0.9, 0.0}};

      auto drawn = StratifiedSampler::Create(t, 2, 3, 0.05, 17);
      SampleEntry sample;
      sample.sample =
          std::make_shared<WeightedSample>(std::move(drawn).ValueOrDie());
      sample.pairs = {ScoredPair{2, 3, 0.95, 0.0}};

      fx->store = *SourceStore::FromParts({entry}, {sample});
      fx->engine = EntropyEngine::FromStore(fx->store);
      fx->exact = std::make_unique<ExactEvaluator>(t);

      // Selective workload: off-diagonal (2, 3) cells with 1-5 rows.
      for (const auto& [key, count] : fx->exact->GroupByCount({2, 3})) {
        if (key[0] == key[1] || count < 1 || count > 5) continue;
        CountingQuery q(4);
        q.Where(2, AttrPredicate::Point(key[0]))
            .Where(3, AttrPredicate::Point(key[1]));
        fx->selective.push_back(q);
      }
      // Broad workload: both attributes of the modeled pair constrained
      // with wide ranges (thousands of matching rows each).
      for (Code v = 0; v < 8; ++v) {
        CountingQuery q(4);
        q.Where(0, AttrPredicate::Point(v)).Where(1, AttrPredicate::Range(0, 7));
        fx->broad.push_back(q);
        CountingQuery r(4);
        r.Where(0, AttrPredicate::Range(0, v)).Where(1, AttrPredicate::Point(v));
        fx->broad.push_back(r);
      }
      return fx;
    }();
    return *f;
  }
};

double RelError(double est, double truth) {
  return std::abs(est - truth) / std::max(1.0, truth);
}

struct WorkloadErrors {
  double summary = 0.0;
  double sample = 0.0;
  double routed = 0.0;
  size_t routed_to_sample = 0;
  size_t queries = 0;
  double max_routing_mismatch = 0.0;  // routed vs chosen source, bitwise
};

WorkloadErrors Measure(const std::vector<CountingQuery>& workload) {
  auto& f = HybridFixture::Get();
  QueryRouter router(f.store);
  WorkloadErrors e;
  for (const auto& q : workload) {
    const double truth = static_cast<double>(f.exact->Count(q));
    auto via_summary = f.store->summary(0).Answer(q);
    auto via_sample = f.store->sample_source(0).Answer(q);
    RouteDecision dec;
    auto routed = router.Answer(q, &dec);
    if (!via_summary.ok() || !via_sample.ok() || !routed.ok()) {
      e.max_routing_mismatch = 1.0;
      continue;
    }
    e.summary += RelError(via_summary->expectation, truth);
    e.sample += RelError(via_sample->expectation, truth);
    e.routed += RelError(routed->expectation, truth);
    e.routed_to_sample += dec.from_sample ? 1 : 0;
    const double chosen = dec.from_sample ? via_sample->expectation
                                          : via_summary->expectation;
    e.max_routing_mismatch = std::max(
        e.max_routing_mismatch, std::abs(routed->expectation - chosen));
    ++e.queries;
  }
  if (e.queries > 0) {
    e.summary /= static_cast<double>(e.queries);
    e.sample /= static_cast<double>(e.queries);
    e.routed /= static_cast<double>(e.queries);
  }
  return e;
}

void BM_HybridRoutedSelective(benchmark::State& state) {
  auto& f = HybridFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto est = f.engine->Answer(f.selective[i % f.selective.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridRoutedSelective);

void BM_HybridRoutedBroad(benchmark::State& state) {
  auto& f = HybridFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto est = f.engine->Answer(f.broad[i % f.broad.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HybridRoutedBroad);

/// Routing overhead ablation: the same selective workload answered by the
/// summary alone (no sample consult).
void BM_SummaryDirectSelective(benchmark::State& state) {
  auto& f = HybridFixture::Get();
  size_t i = 0;
  for (auto _ : state) {
    auto est = f.store->summary(0).Answer(
        f.selective[i % f.selective.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SummaryDirectSelective);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --crossover_out FILE before google-benchmark sees argv.
  std::string crossover_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--crossover_out") == 0 && i + 1 < argc) {
      crossover_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = HybridFixture::Get();
  const WorkloadErrors sel = Measure(f.selective);
  const WorkloadErrors brd = Measure(f.broad);

  const bool sample_wins_selective = sel.sample < sel.summary;
  const bool summary_wins_broad = brd.summary < brd.sample;
  const bool routed_tracks_winner =
      sel.routed < sel.summary && brd.routed < brd.sample;
  const bool bitwise =
      sel.max_routing_mismatch == 0.0 && brd.max_routing_mismatch == 0.0;
  const bool pass = sample_wins_selective && summary_wins_broad &&
                    routed_tracks_winner && bitwise;

  std::printf(
      "hybrid crossover (mean relative error, %zu selective / %zu broad "
      "queries):\n"
      "  selective: summary %.3f  sample %.3f  routed %.3f  "
      "(%zu/%zu to sample)\n"
      "  broad:     summary %.3f  sample %.3f  routed %.3f  "
      "(%zu/%zu to sample)\n"
      "  claims: sample-wins-selective=%s summary-wins-broad=%s "
      "routed-tracks-winner=%s bitwise=%s — %s\n",
      sel.queries, brd.queries, sel.summary, sel.sample, sel.routed,
      sel.routed_to_sample, sel.queries, brd.summary, brd.sample, brd.routed,
      brd.routed_to_sample, brd.queries,
      sample_wins_selective ? "yes" : "NO", summary_wins_broad ? "yes" : "NO",
      routed_tracks_winner ? "yes" : "NO", bitwise ? "yes" : "NO",
      pass ? "OK" : "FAIL");

  if (!crossover_out.empty()) {
    FILE* out = std::fopen(crossover_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --crossover_out file: %s\n",
                   crossover_out.c_str());
      return 1;
    }
    {
      std::fprintf(
          out,
          "{\n"
          "  \"selective\": {\"queries\": %zu, \"summary_err\": %.6g,\n"
          "    \"sample_err\": %.6g, \"routed_err\": %.6g,\n"
          "    \"routed_to_sample\": %zu},\n"
          "  \"broad\": {\"queries\": %zu, \"summary_err\": %.6g,\n"
          "    \"sample_err\": %.6g, \"routed_err\": %.6g,\n"
          "    \"routed_to_sample\": %zu},\n"
          "  \"bitwise_routed_answers\": %s,\n"
          "  \"pass\": %s\n}\n",
          sel.queries, sel.summary, sel.sample, sel.routed,
          sel.routed_to_sample, brd.queries, brd.summary, brd.sample,
          brd.routed, brd.routed_to_sample, bitwise ? "true" : "false",
          pass ? "true" : "false");
    }
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --crossover_out file: %s\n",
                   crossover_out.c_str());
      return 1;
    }
  }
  if (!pass) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
