// Indexed sample evaluation: row-group index vs. full scan, across
// selectivities — the latency half of the hybrid-routing story. The
// paper's samples win SELECTIVE queries (Figs. 5-6), which is exactly
// where a full O(sample rows) scan per consulted companion is pure
// waste; the row-group index (sampling/sample_index.h) answers those from
// the smallest matching groups instead.
//
// Before benchmarks run, a verification pass gates the PR's semantics
// bar: over randomized predicate mixes AND the three fixed workloads,
// indexed Count/Sum estimates and variances must be BITWISE equal to the
// scan path's (the index may never change an answer or a routing
// decision, only its latency). The pass also measures per-query wall
// time indexed vs. scan per workload; --index_out FILE writes the
// measurements as JSON, which CI's perf-regression gate
// (tools/check_perf_gate.py) checks: indexed evaluation must actually be
// FASTER than the scan on the selective workload. The bench exits
// non-zero if the bitwise gate fails.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

std::shared_ptr<Table> IndexBenchTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {32, 32, 16, 16};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a),
                Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(4);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(32));
    row[1] = rng.NextBernoulli(0.8) ? row[0]
                                    : static_cast<Code>(rng.Uniform(32));
    row[2] = static_cast<Code>(rng.Uniform(16));
    row[3] = rng.NextBernoulli(0.6) ? (row[2] % 16)
                                    : static_cast<Code>(rng.Uniform(16));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

struct IndexFixture {
  std::shared_ptr<Table> table;
  WeightedSample indexed;  // carries the row-group index
  WeightedSample scan;     // the SAME rows/weights, index stripped
  std::unique_ptr<SampleEstimator> indexed_est;
  std::unique_ptr<SampleEstimator> scan_est;
  // Workloads by selectivity of the most selective predicate:
  std::vector<CountingQuery> selective;  // two point predicates, ~0.2%
  std::vector<CountingQuery> moderate;   // quarter-domain range, ~25%
  std::vector<CountingQuery> broad;      // near-full range: scan cutover

  static IndexFixture& Get() {
    static IndexFixture* f = [] {
      auto* fx = new IndexFixture();
      fx->table = IndexBenchTable(120'000, 2203);
      auto drawn = StratifiedSampler::Create(*fx->table, 0, 1, 0.1, 41);
      fx->indexed = std::move(drawn).ValueOrDie();
      fx->indexed.index = SampleIndex::Build(*fx->indexed.rows);
      fx->scan = fx->indexed;
      fx->scan.index = nullptr;
      fx->indexed_est = std::make_unique<SampleEstimator>(fx->indexed);
      fx->scan_est = std::make_unique<SampleEstimator>(fx->scan);

      for (Code v = 0; v < 32; ++v) {
        // Selective: one rare (0, 1) stratum — the paper's
        // sample-wins territory and the index's sweet spot.
        CountingQuery s(4);
        s.Where(0, AttrPredicate::Point(v))
            .Where(1, AttrPredicate::Point((v + 7) % 32));
        fx->selective.push_back(s);
        // Moderate: a quarter of attribute 0's domain.
        CountingQuery m(4);
        m.Where(0, AttrPredicate::Range(v % 24, v % 24 + 7))
            .Where(2, AttrPredicate::Point(v % 16));
        fx->moderate.push_back(m);
        // Broad: nearly the whole domain — the estimator's cutover
        // hands this back to the scan path, so indexed latency must
        // match scan latency here, not regress it.
        CountingQuery b(4);
        b.Where(0, AttrPredicate::Range(0, 29));
        fx->broad.push_back(b);
      }
      return fx;
    }();
    return *f;
  }
};

/// Mean per-query nanoseconds of `est` over `workload` (repeated until
/// the loop runs at least ~50ms, so timings are stable in --quick CI).
double MeasureNs(const SampleEstimator& est,
                 const std::vector<CountingQuery>& workload) {
  size_t reps = 1;
  for (;;) {
    Timer timer;
    for (size_t rep = 0; rep < reps; ++rep) {
      for (const auto& q : workload) {
        auto e = est.Count(q);
        benchmark::DoNotOptimize(e);
      }
    }
    const double elapsed = timer.ElapsedSeconds();
    if (elapsed >= 0.05 || reps >= 1u << 20) {
      return elapsed * 1e9 / static_cast<double>(reps * workload.size());
    }
    reps *= 4;
  }
}

/// Bitwise identity of indexed vs. scan Count AND Sum over a workload.
bool BitwiseEqual(const std::vector<CountingQuery>& workload) {
  auto& f = IndexFixture::Get();
  std::vector<double> values(f.table->domain(2).size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = 1.0 + 0.25 * i;
  for (const auto& q : workload) {
    const QueryEstimate a = f.indexed_est->Count(q);
    const QueryEstimate b = f.scan_est->Count(q);
    if (a.expectation != b.expectation || a.variance != b.variance) {
      return false;
    }
    const QueryEstimate sa = f.indexed_est->Sum(2, values, q);
    const QueryEstimate sb = f.scan_est->Sum(2, values, q);
    if (sa.expectation != sb.expectation || sa.variance != sb.variance) {
      return false;
    }
  }
  return true;
}

/// Randomized predicate mixes (point / range / set / ANY), the same shape
/// the unit tests fuzz — run here too so the gate covers the exact
/// binary CI measures.
std::vector<CountingQuery> FuzzWorkload(size_t count, uint64_t seed) {
  auto& f = IndexFixture::Get();
  Rng rng(seed);
  std::vector<CountingQuery> out;
  for (size_t i = 0; i < count; ++i) {
    CountingQuery q(4);
    for (AttrId a = 0; a < 4; ++a) {
      const uint32_t dom = f.table->domain(a).size();
      switch (rng.Uniform(5)) {
        case 0:
          q.Where(a, AttrPredicate::Point(static_cast<Code>(rng.Uniform(dom))));
          break;
        case 1: {
          Code lo = static_cast<Code>(rng.Uniform(dom));
          Code hi = static_cast<Code>(rng.Uniform(dom));
          if (hi < lo) std::swap(lo, hi);
          q.Where(a, AttrPredicate::Range(lo, hi));
          break;
        }
        case 2: {
          std::vector<Code> codes;
          for (size_t k = 0; k < 1 + rng.Uniform(3); ++k) {
            codes.push_back(static_cast<Code>(rng.Uniform(dom)));
          }
          q.Where(a, AttrPredicate::InSet(std::move(codes)));
          break;
        }
        default:
          break;
      }
    }
    out.push_back(q);
  }
  return out;
}

void RunWorkload(benchmark::State& state, const SampleEstimator& est,
                 const std::vector<CountingQuery>& workload) {
  size_t i = 0;
  for (auto _ : state) {
    auto e = est.Count(workload[i % workload.size()]);
    benchmark::DoNotOptimize(e);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}

void BM_IndexedCountSelective(benchmark::State& state) {
  auto& f = IndexFixture::Get();
  RunWorkload(state, *f.indexed_est, f.selective);
}
BENCHMARK(BM_IndexedCountSelective);

void BM_ScanCountSelective(benchmark::State& state) {
  auto& f = IndexFixture::Get();
  RunWorkload(state, *f.scan_est, f.selective);
}
BENCHMARK(BM_ScanCountSelective);

void BM_IndexedCountModerate(benchmark::State& state) {
  auto& f = IndexFixture::Get();
  RunWorkload(state, *f.indexed_est, f.moderate);
}
BENCHMARK(BM_IndexedCountModerate);

void BM_ScanCountModerate(benchmark::State& state) {
  auto& f = IndexFixture::Get();
  RunWorkload(state, *f.scan_est, f.moderate);
}
BENCHMARK(BM_ScanCountModerate);

void BM_IndexedCountBroad(benchmark::State& state) {
  auto& f = IndexFixture::Get();
  RunWorkload(state, *f.indexed_est, f.broad);
}
BENCHMARK(BM_IndexedCountBroad);

void BM_ScanCountBroad(benchmark::State& state) {
  auto& f = IndexFixture::Get();
  RunWorkload(state, *f.scan_est, f.broad);
}
BENCHMARK(BM_ScanCountBroad);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --index_out FILE before google-benchmark sees argv.
  std::string index_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--index_out") == 0 && i + 1 < argc) {
      index_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = IndexFixture::Get();
  const bool bitwise = BitwiseEqual(f.selective) && BitwiseEqual(f.moderate) &&
                       BitwiseEqual(f.broad) &&
                       BitwiseEqual(FuzzWorkload(500, 4099));

  struct Row {
    const char* name;
    const std::vector<CountingQuery>* workload;
    double indexed_ns, scan_ns;
  } rows[] = {
      {"selective", &f.selective, 0, 0},
      {"moderate", &f.moderate, 0, 0},
      {"broad", &f.broad, 0, 0},
  };
  std::printf("indexed vs. scan sample evaluation (%zu sample rows):\n",
              f.indexed.size());
  for (Row& r : rows) {
    r.indexed_ns = MeasureNs(*f.indexed_est, *r.workload);
    r.scan_ns = MeasureNs(*f.scan_est, *r.workload);
    std::printf("  %-9s indexed %9.0f ns/query  scan %9.0f ns/query  "
                "(%.1fx)\n",
                r.name, r.indexed_ns, r.scan_ns, r.scan_ns / r.indexed_ns);
  }
  std::printf("  bitwise identity (Count+Sum, fixed + fuzzed workloads): "
              "%s\n",
              bitwise ? "yes" : "NO — FAIL");

  if (!index_out.empty()) {
    FILE* out = std::fopen(index_out.c_str(), "w");
    if (out == nullptr) {
      // The gate step downstream needs this file; dying here with a clear
      // message beats a FileNotFoundError pointing at the wrong component.
      std::fprintf(stderr, "cannot write --index_out file: %s\n",
                   index_out.c_str());
      return 1;
    }
    std::fprintf(out, "{\n  \"sample_rows\": %zu,\n", f.indexed.size());
    for (const Row& r : rows) {
      std::fprintf(out,
                   "  \"%s\": {\"queries\": %zu, \"indexed_ns\": %.1f, "
                   "\"scan_ns\": %.1f, \"speedup\": %.3f},\n",
                   r.name, r.workload->size(), r.indexed_ns, r.scan_ns,
                   r.scan_ns / r.indexed_ns);
    }
    std::fprintf(out, "  \"bitwise_identical\": %s,\n  \"pass\": %s\n}\n",
                 bitwise ? "true" : "false", bitwise ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --index_out file: %s\n",
                   index_out.c_str());
      return 1;
    }
  }
  if (!bitwise) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
