// Sharded store scaling: build wall-clock vs. shard count, and merged
// answer fidelity vs. the additive per-shard reference — the Fig 7 build
// concern taken to the sharded layout. Partitioned builds split the
// row-linear work (pair ranking is hoisted and done once; per-shard stat
// selection, sample draws, and index builds all scale with shard rows), so
// an S-shard build on a multi-core box should beat the single-shard build
// wall-clock while answering with the same merged totals.
//
// Before benchmarks run, a verification pass gates the PR's claims:
//   * merged COUNT/SUM estimates and variances over a fuzzed workload must
//     match the additive per-shard reference to <= 1e-9 relative error
//     (they are computed by exactly that sum, so drift means the fan-out
//     or merge plumbing broke), and
//   * on a multi-core machine, the parallel S-shard build must be faster
//     than the S = 1 build of the same table (on a single core the shard
//     fan-out degrades inline, so the wall bar is recorded but not
//     enforced — the gate JSON carries `cores` and CI's
//     tools/check_perf_gate.py applies the same rule).
// --shard_out FILE writes the measurements as JSON for the CI gate. The
// bench exits non-zero if an enforced bar fails.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

constexpr size_t kShards = 4;

std::shared_ptr<Table> ScalingTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {24, 24, 16, 12};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a), Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(4);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(24));
    row[1] = rng.NextBernoulli(0.75) ? row[0]
                                     : static_cast<Code>(rng.Uniform(24));
    row[2] = static_cast<Code>(rng.Uniform(16));
    row[3] = rng.NextBernoulli(0.6) ? (row[2] % 12)
                                    : static_cast<Code>(rng.Uniform(12));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

/// Build knobs chosen so the row-linear work (stat selection, sample
/// draws, row-group indexes) dominates the fixed-cost solver iterations —
/// the regime sharding actually scales.
ShardedOptions ScalingOptions(size_t shards) {
  ShardedOptions opts;
  opts.num_shards = shards;
  opts.store.num_summaries = 2;
  opts.store.total_budget = 120;
  opts.store.summary.solver.max_iterations = 40;
  opts.store.num_stratified_samples = 1;
  opts.store.uniform_sample = true;
  opts.store.sample_fraction = 0.05;
  return opts;
}

struct ScalingFixture {
  std::shared_ptr<Table> table;
  /// One prebuilt store per benchmarked shard count. Stores AND the query
  /// workload are constructed here, once — the S-scaling answer benchmarks
  /// below time fan-out and merge only, never fixture construction (the
  /// workload used to be rebuilt per shard count inside the timed region,
  /// which buried the S-dependence under identical parse/alloc work).
  std::map<size_t, std::shared_ptr<ShardedStore>> stores;
  std::vector<CountingQuery> workload;

  std::shared_ptr<ShardedStore> sharded() const {
    return stores.at(kShards);
  }

  static ScalingFixture& Get() {
    static ScalingFixture* f = [] {
      auto* fx = new ScalingFixture();
      const BenchScale scale = ReadScale();
      const size_t rows = std::max<size_t>(160'000, scale.flights_rows / 2);
      fx->table = ScalingTable(rows, 6367);
      for (size_t shards : {size_t{1}, size_t{2}, kShards}) {
        fx->stores[shards] =
            std::move(ShardedStore::Build(*fx->table, ScalingOptions(shards)))
                .ValueOrDie();
      }
      Rng rng(6373);
      for (size_t i = 0; i < 64; ++i) {
        CountingQuery q(4);
        q.Where(0, AttrPredicate::Point(static_cast<Code>(rng.Uniform(24))));
        if (rng.NextBernoulli(0.5)) {
          q.Where(1, AttrPredicate::Point(static_cast<Code>(rng.Uniform(24))));
        }
        if (rng.NextBernoulli(0.3)) {
          Code lo = static_cast<Code>(rng.Uniform(12));
          q.Where(3, AttrPredicate::Range(lo, std::min<Code>(lo + 3, 11)));
        }
        fx->workload.push_back(q);
      }
      return fx;
    }();
    return *f;
  }
};

/// Best-of-3 build wall-clock: the builds are milliseconds-scale, so one
/// noisy CI scheduling hiccup must not decide the gate.
double BuildSeconds(const Table& table, size_t shards) {
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    auto built = ShardedStore::Build(table, ScalingOptions(shards));
    if (!built.ok()) {
      std::fprintf(stderr, "sharded build (S=%zu) failed: %s\n", shards,
                   built.status().ToString().c_str());
      std::exit(1);
    }
    benchmark::DoNotOptimize(built);
    const double elapsed = timer.ElapsedSeconds();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

/// Max relative error of the merged COUNT and SUM answers against the
/// additive per-shard reference, over the fixture workload.
struct MergeErr {
  double count = 0.0;
  double sum = 0.0;
};

MergeErr MeasureMergeError() {
  auto& f = ScalingFixture::Get();
  const ShardedStore& s = *f.sharded();
  std::vector<double> weights(f.table->domain(2).size());
  for (size_t v = 0; v < weights.size(); ++v) weights[v] = 1.0 + 0.5 * v;
  auto rel = [](double got, double want) {
    return std::abs(got - want) / (1.0 + std::abs(want));
  };
  MergeErr err;
  // Batched path on one side, serial per-shard accumulation on the other:
  // this covers the AnswerAll grid fan-out AND the merge order.
  auto batch = s.AnswerAll(f.workload);
  if (!batch.ok()) {
    std::fprintf(stderr, "AnswerAll failed: %s\n",
                 batch.status().ToString().c_str());
    std::exit(1);
  }
  for (size_t i = 0; i < f.workload.size(); ++i) {
    double ref_e = 0.0, ref_v = 0.0, ref_se = 0.0, ref_sv = 0.0;
    for (size_t k = 0; k < s.num_shards(); ++k) {
      auto cnt = s.shard_engine(k).Answer(f.workload[i]);
      auto sum = s.shard_engine(k).Answer(
          AggregateQuery::Sum(2, weights, f.workload[i]));
      if (!cnt.ok() || !sum.ok()) {
        std::fprintf(stderr, "per-shard reference failed\n");
        std::exit(1);
      }
      ref_e += cnt->expectation;
      ref_v += cnt->variance;
      ref_se += sum->estimate.expectation;
      ref_sv += sum->estimate.variance;
    }
    err.count = std::max(err.count, rel((*batch)[i].expectation, ref_e));
    err.count = std::max(err.count, rel((*batch)[i].variance, ref_v));
    auto merged_sum = s.Answer(AggregateQuery::Sum(2, weights, f.workload[i]));
    if (!merged_sum.ok()) {
      std::fprintf(stderr, "merged sum failed\n");
      std::exit(1);
    }
    err.sum = std::max(err.sum, rel(merged_sum->estimate.expectation, ref_se));
    err.sum = std::max(err.sum, rel(merged_sum->estimate.variance, ref_sv));
  }
  return err;
}

void BM_ShardedBuild(benchmark::State& state) {
  auto& f = ScalingFixture::Get();
  const size_t shards = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto built = ShardedStore::Build(*f.table, ScalingOptions(shards));
    benchmark::DoNotOptimize(built);
  }
  state.SetItemsProcessed(state.iterations() * f.table->num_rows());
}
BENCHMARK(BM_ShardedBuild)->Arg(1)->Arg(2)->Arg(kShards)
    ->Unit(benchmark::kMillisecond);

/// Merged COUNT latency vs. shard count over the ONE fixture workload:
/// with construction hoisted, the S = 1 -> kShards trend is pure fan-out
/// plus merge.
void BM_MergedAnswer(benchmark::State& state) {
  auto& f = ScalingFixture::Get();
  const auto& store = *f.stores.at(static_cast<size_t>(state.range(0)));
  size_t i = 0;
  for (auto _ : state) {
    auto est = store.Answer(f.workload[i % f.workload.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergedAnswer)->Arg(1)->Arg(2)->Arg(kShards);

void BM_MergedAnswerAll(benchmark::State& state) {
  auto& f = ScalingFixture::Get();
  const auto& store = *f.stores.at(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto batch = store.AnswerAll(f.workload);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() * f.workload.size());
}
BENCHMARK(BM_MergedAnswerAll)->Arg(1)->Arg(2)->Arg(kShards);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --shard_out FILE before google-benchmark sees argv.
  std::string shard_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--shard_out") == 0 && i + 1 < argc) {
      shard_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = ScalingFixture::Get();
  const unsigned cores = std::thread::hardware_concurrency();

  const double s1_seconds = BuildSeconds(*f.table, 1);
  const double sharded_seconds = BuildSeconds(*f.table, kShards);
  const double speedup = s1_seconds / std::max(sharded_seconds, 1e-12);
  const MergeErr err = MeasureMergeError();

  const bool merge_ok = err.count <= 1e-9 && err.sum <= 1e-9;
  const bool build_wins = sharded_seconds < s1_seconds;
  // Single core: the fan-out degrades inline and does strictly more total
  // work than one shard, so only the merge bar is enforceable locally.
  const bool build_ok = cores <= 1 || build_wins;

  std::printf("sharded build scaling (%zu rows, %u cores):\n",
              f.table->num_rows(), cores);
  std::printf("  S=1 build %.3fs   S=%zu build %.3fs   (%.2fx)%s\n",
              s1_seconds, kShards, sharded_seconds, speedup,
              cores <= 1 ? "  [wall bar not enforced on 1 core]" : "");
  std::printf("  merged-vs-additive max rel err: count %.3g, sum %.3g "
              "(bar 1e-9): %s\n",
              err.count, err.sum, merge_ok ? "ok" : "FAIL");
  if (!build_ok) {
    std::printf("  FAIL: S=%zu parallel build is not faster than S=1\n",
                kShards);
  }

  if (!shard_out.empty()) {
    FILE* out = std::fopen(shard_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --shard_out file: %s\n",
                   shard_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"cores\": %u,\n"
                 "  \"rows\": %zu,\n"
                 "  \"shards\": %zu,\n"
                 "  \"build\": {\"s1_seconds\": %.6f, \"sharded_seconds\": "
                 "%.6f, \"speedup\": %.3f},\n"
                 "  \"merge\": {\"queries\": %zu, \"count_max_rel_err\": "
                 "%.3g, \"sum_max_rel_err\": %.3g},\n"
                 "  \"pass\": %s\n}\n",
                 cores, f.table->num_rows(), kShards, s1_seconds,
                 sharded_seconds, speedup, f.workload.size(), err.count,
                 err.sum, (merge_ok && build_ok) ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --shard_out file: %s\n",
                   shard_out.c_str());
      return 1;
    }
  }
  if (!merge_ok || !build_ok) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
