// Durability overhead: what crash safety costs on the serving path.
//
// PR 6 makes every persisted artifact checksummed (CRC32C footers), store
// publication atomic (stage + rename), and ingest WAL-backed. The deal is
// that durability must be (nearly) free where it matters:
//   * store OPEN with checksum verification ON must stay within 5% of the
//     unverified open (verification is one streaming CRC per file, done
//     while the bytes are already hot) — the enforced bar, also checked
//     downstream by tools/check_perf_gate.py --durability;
//   * save wall time and WAL append throughput (synced and unsynced) are
//     recorded for the trajectory but not gated — both are fsync-bound,
//     and fsync latency is the CI runner's, not this PR's.
// --durability_out FILE writes the measurements as JSON for the CI gate.
// The bench exits non-zero if the enforced bar fails.

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

std::shared_ptr<Table> DurabilityTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {24, 24, 16, 12};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a), Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(4);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(24));
    row[1] = rng.NextBernoulli(0.75) ? row[0]
                                     : static_cast<Code>(rng.Uniform(24));
    row[2] = static_cast<Code>(rng.Uniform(16));
    row[3] = rng.NextBernoulli(0.6) ? (row[2] % 12)
                                    : static_cast<Code>(rng.Uniform(12));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

StoreOptions DurabilityStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 120;
  opts.summary.solver.max_iterations = 40;
  opts.num_stratified_samples = 1;
  opts.uniform_sample = true;
  opts.sample_fraction = 0.02;
  return opts;
}

struct DurabilityFixture {
  std::shared_ptr<Table> table;
  std::shared_ptr<SourceStore> store;
  std::string dir;

  static DurabilityFixture& Get() {
    static DurabilityFixture* f = [] {
      auto* fx = new DurabilityFixture();
      const BenchScale scale = ReadScale();
      const size_t rows = std::max<size_t>(80'000, scale.flights_rows / 4);
      fx->table = DurabilityTable(rows, 7717);
      fx->store =
          std::move(SourceStore::Build(*fx->table, DurabilityStoreOptions()))
              .ValueOrDie();
      fx->dir = (std::filesystem::temp_directory_path() /
                 "entropydb_bench_durability_store")
                    .string();
      std::filesystem::remove_all(fx->dir);
      if (!fx->store->Save(fx->dir).ok()) {
        std::fprintf(stderr, "fixture save failed\n");
        std::exit(1);
      }
      return fx;
    }();
    return *f;
  }
};

/// Best-of-N wall clock of `fn` (milliseconds-scale operations; one noisy
/// CI scheduling hiccup must not decide the gate).
template <typename Fn>
double BestOf(int reps, Fn fn) {
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    Timer timer;
    fn();
    const double elapsed = timer.ElapsedSeconds();
    if (rep == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

double OpenSeconds(bool verify) {
  auto& f = DurabilityFixture::Get();
  SummaryOptions opts;
  opts.verify_checksums = verify;
  return BestOf(7, [&] {
    auto loaded = SourceStore::Load(f.dir, opts);
    if (!loaded.ok()) {
      std::fprintf(stderr, "store open failed: %s\n",
                   loaded.status().ToString().c_str());
      std::exit(1);
    }
    benchmark::DoNotOptimize(loaded);
  });
}

double SaveSeconds() {
  auto& f = DurabilityFixture::Get();
  return BestOf(3, [&] {
    // Atomic re-publication over the existing directory — the steady-state
    // save path (stage, per-file sync, dir sync, rename exchange).
    if (!f.store->Save(f.dir).ok()) {
      std::fprintf(stderr, "store save failed\n");
      std::exit(1);
    }
  });
}

struct WalThroughput {
  size_t records = 0;
  size_t bytes_per_record = 0;
  double synced_per_sec = 0.0;
  double unsynced_per_sec = 0.0;
};

WalThroughput MeasureWal() {
  WalThroughput t;
  t.bytes_per_record = 1024;
  const std::string payload(t.bytes_per_record, 'r');
  const std::string path = (std::filesystem::temp_directory_path() /
                            "entropydb_bench_durability.wal")
                               .string();
  auto run = [&](size_t records, bool sync_each) -> double {
    std::filesystem::remove(path);
    auto writer = WalWriter::Open(Env::Default(), path);
    if (!writer.ok()) {
      std::fprintf(stderr, "wal open failed\n");
      std::exit(1);
    }
    Timer timer;
    for (size_t i = 0; i < records; ++i) {
      if (!(*writer)->AddRecord(payload).ok() ||
          (sync_each && !(*writer)->Sync().ok())) {
        std::fprintf(stderr, "wal append failed\n");
        std::exit(1);
      }
    }
    if (!(*writer)->Sync().ok() || !(*writer)->Close().ok()) {
      std::fprintf(stderr, "wal close failed\n");
      std::exit(1);
    }
    const double elapsed = timer.ElapsedSeconds();
    std::filesystem::remove(path);
    return records / std::max(elapsed, 1e-12);
  };
  // Synced appends are fsync-bound (the per-batch ingest cost); the
  // unsynced run isolates framing + buffered-write overhead.
  t.records = 128;
  t.synced_per_sec = run(t.records, true);
  t.unsynced_per_sec = run(4096, false);
  return t;
}

void BM_StoreOpenVerified(benchmark::State& state) {
  auto& f = DurabilityFixture::Get();
  for (auto _ : state) {
    auto loaded = SourceStore::Load(f.dir);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreOpenVerified)->Unit(benchmark::kMillisecond);

void BM_StoreOpenUnverified(benchmark::State& state) {
  auto& f = DurabilityFixture::Get();
  SummaryOptions opts;
  opts.verify_checksums = false;
  for (auto _ : state) {
    auto loaded = SourceStore::Load(f.dir, opts);
    benchmark::DoNotOptimize(loaded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreOpenUnverified)->Unit(benchmark::kMillisecond);

void BM_AtomicSave(benchmark::State& state) {
  auto& f = DurabilityFixture::Get();
  for (auto _ : state) {
    Status s = f.store->Save(f.dir);
    benchmark::DoNotOptimize(s);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AtomicSave)->Unit(benchmark::kMillisecond);

void BM_WalAppendUnsynced(benchmark::State& state) {
  const std::string payload(1024, 'r');
  const std::string path = (std::filesystem::temp_directory_path() /
                            "entropydb_bench_durability_bm.wal")
                               .string();
  std::filesystem::remove(path);
  auto writer = std::move(WalWriter::Open(Env::Default(), path)).ValueOrDie();
  for (auto _ : state) {
    Status s = writer->AddRecord(payload);
    benchmark::DoNotOptimize(s);
  }
  writer->Close().ok();
  std::filesystem::remove(path);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalAppendUnsynced);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --durability_out FILE before google-benchmark sees argv.
  std::string durability_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--durability_out") == 0 && i + 1 < argc) {
      durability_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = DurabilityFixture::Get();

  const double save_seconds = SaveSeconds();
  const double open_verified = OpenSeconds(true);
  const double open_unverified = OpenSeconds(false);
  const double overhead =
      open_verified / std::max(open_unverified, 1e-12);
  const WalThroughput wal = MeasureWal();

  constexpr double kOpenOverheadBar = 1.05;
  const bool open_ok = overhead <= kOpenOverheadBar;

  std::printf("durability overhead (%zu rows):\n", f.table->num_rows());
  std::printf("  atomic save (publish over existing): %.3fs\n", save_seconds);
  std::printf("  open verified %.4fs vs unverified %.4fs  (%.3fx, bar "
              "%.2fx): %s\n",
              open_verified, open_unverified, overhead, kOpenOverheadBar,
              open_ok ? "ok" : "FAIL");
  std::printf("  wal append: %.0f rec/s synced, %.0f rec/s unsynced "
              "(%zu B records)\n",
              wal.synced_per_sec, wal.unsynced_per_sec, wal.bytes_per_record);

  if (!durability_out.empty()) {
    FILE* out = std::fopen(durability_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --durability_out file: %s\n",
                   durability_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"rows\": %zu,\n"
                 "  \"save_seconds\": %.6f,\n"
                 "  \"open\": {\"verified_seconds\": %.6f, "
                 "\"unverified_seconds\": %.6f, \"overhead_ratio\": %.4f},\n"
                 "  \"wal\": {\"synced_records_per_sec\": %.1f, "
                 "\"unsynced_records_per_sec\": %.1f, "
                 "\"bytes_per_record\": %zu},\n"
                 "  \"pass\": %s\n}\n",
                 f.table->num_rows(), save_seconds, open_verified,
                 open_unverified, overhead, wal.synced_per_sec,
                 wal.unsynced_per_sec, wal.bytes_per_record,
                 open_ok ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --durability_out file: %s\n",
                   durability_out.c_str());
      return 1;
    }
  }
  if (!open_ok) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
