// Multi-threaded query throughput through the engine layer.
//
// The PR-2 claims this bench measures:
//  - concurrent queries on ONE summary scale with threads through the
//    lock-free workspace pool (the seed serialized them behind a mutex —
//    BM_MutexSerializedBaseline reproduces that design for comparison);
//  - store-routed answering adds only routing overhead on top of the
//    chosen summary's own latency, and batched AnswerAll fans a workload
//    across the pool.
//
// Run with --benchmark_filter as usual; --quick shrinks the workload for
// CI. Before benchmarks run, a verification pass asserts the acceptance
// bar that store-routed answers match a per-summary reference answerer to
// <= 1e-12 relative error; --accuracy_out FILE additionally writes the
// result as JSON for the CI artifact.
//
// Thread counts above the host's cores still measure (oversubscribed);
// the 1 -> 8 scaling claim is meaningful on >= 8-core hardware.

#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

std::vector<CountingQuery> MakeWorkload(const Table& table) {
  FlightsPairs p = ResolveFlightsPairs(table);
  std::vector<CountingQuery> qs;
  for (Code o = 0; o < 6; ++o) {
    CountingQuery q(5);
    q.Where(p.origin, AttrPredicate::Point(o));
    qs.push_back(q);
    CountingQuery r(5);
    r.Where(p.origin, AttrPredicate::Point(o))
        .Where(p.distance, AttrPredicate::Range(10, 40));
    qs.push_back(r);
    CountingQuery s(5);
    s.Where(p.dest, AttrPredicate::Point(o))
        .Where(p.distance, AttrPredicate::Range(5, 60));
    qs.push_back(s);
    CountingQuery t(5);
    t.Where(p.time, AttrPredicate::Range(o, o + 20))
        .Where(p.distance, AttrPredicate::Range(0, 50));
    qs.push_back(t);
  }
  return qs;
}

struct ThroughputFixture {
  std::shared_ptr<Table> table;
  std::shared_ptr<EntropySummary> summary;
  std::shared_ptr<SummaryStore> store;
  std::shared_ptr<EntropyEngine> engine;
  std::vector<CountingQuery> workload;

  static ThroughputFixture& Get() {
    static ThroughputFixture* f = [] {
      auto* fx = new ThroughputFixture();
      BenchScale scale = ReadScale();
      FlightsConfig cfg;
      cfg.num_rows = scale.flights_rows;
      cfg.seed = 42;
      fx->table = *FlightsGenerator::Generate(cfg);
      auto summaries = BuildFlightsSummaries(*fx->table, scale);
      fx->summary = summaries->ent123;
      StoreOptions sopts;
      sopts.num_summaries = 3;
      sopts.total_budget = 3 * scale.bs_two_pair;
      fx->store = *SummaryStore::Build(*fx->table, sopts);
      fx->engine = EntropyEngine::FromStore(fx->store);
      fx->workload = MakeWorkload(*fx->table);
      return fx;
    }();
    return *f;
  }
};

/// Concurrent counting queries on ONE summary through the workspace pool.
/// items_per_second is the cross-thread queries/sec figure the acceptance
/// criterion tracks from 1 to 8 threads.
void BM_SingleSummaryConcurrent(benchmark::State& state) {
  auto& f = ThroughputFixture::Get();
  const size_t stride = static_cast<size_t>(state.thread_index()) * 7 + 1;
  size_t i = 0;
  for (auto _ : state) {
    auto est = f.summary->Answer(f.workload[i % f.workload.size()]);
    benchmark::DoNotOptimize(est);
    i += stride;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SingleSummaryConcurrent)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// The seed design, reproduced: every query on the summary serializes
/// behind one mutex. Scaling stays ~1x however many threads pile on.
void BM_MutexSerializedBaseline(benchmark::State& state) {
  auto& f = ThroughputFixture::Get();
  static std::mutex mu;
  const size_t stride = static_cast<size_t>(state.thread_index()) * 7 + 1;
  size_t i = 0;
  for (auto _ : state) {
    std::lock_guard<std::mutex> lock(mu);
    auto est = f.summary->Answer(f.workload[i % f.workload.size()]);
    benchmark::DoNotOptimize(est);
    i += stride;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutexSerializedBaseline)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Store-routed answering: route + answer from the covering summary.
void BM_StoreRoutedConcurrent(benchmark::State& state) {
  auto& f = ThroughputFixture::Get();
  const size_t stride = static_cast<size_t>(state.thread_index()) * 7 + 1;
  size_t i = 0;
  for (auto _ : state) {
    auto est = f.engine->Answer(f.workload[i % f.workload.size()]);
    benchmark::DoNotOptimize(est);
    i += stride;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StoreRoutedConcurrent)
    ->ThreadRange(1, 8)
    ->UseRealTime();

/// Whole-workload batch through AnswerAll (fans across the shared pool).
void BM_StoreBatchAnswerAll(benchmark::State& state) {
  auto& f = ThroughputFixture::Get();
  for (auto _ : state) {
    auto ests = f.engine->AnswerAll(f.workload);
    benchmark::DoNotOptimize(ests);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(f.workload.size()));
}
BENCHMARK(BM_StoreBatchAnswerAll);

/// Routed answers vs. a dedicated per-summary reference answerer; returns
/// the max relative error over the workload (acceptance bar: <= 1e-12).
double VerifyRoutedAccuracy(size_t* checked) {
  auto& f = ThroughputFixture::Get();
  QueryRouter router(f.store);
  // One reference answerer per store entry (each pays its own warm-up
  // once), not one per query.
  std::vector<std::unique_ptr<QueryAnswerer>> references;
  for (size_t k = 0; k < f.store->size(); ++k) {
    const EntropySummary& s = f.store->summary(k);
    references.push_back(std::make_unique<QueryAnswerer>(
        s.registry(), s.polynomial(), s.state()));
  }
  double max_rel = 0.0;
  *checked = 0;
  for (const auto& q : f.workload) {
    RouteDecision dec;
    auto routed = router.Answer(q, &dec);
    if (!routed.ok()) return 1.0;
    auto ref = references[dec.index]->Answer(q);
    if (!ref.ok()) return 1.0;
    const double denom = std::max(1.0, std::abs(ref->expectation));
    max_rel = std::max(max_rel,
                       std::abs(routed->expectation - ref->expectation) / denom);
    ++(*checked);
  }
  return max_rel;
}

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --accuracy_out FILE before google-benchmark sees argv.
  std::string accuracy_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--accuracy_out") == 0 && i + 1 < argc) {
      accuracy_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  size_t checked = 0;
  const double max_rel = VerifyRoutedAccuracy(&checked);
  std::printf("routed-vs-reference accuracy: max relative error %.3g over "
              "%zu queries (bar: 1e-12) — %s\n",
              max_rel, checked, max_rel <= 1e-12 ? "OK" : "FAIL");
  if (!accuracy_out.empty()) {
    FILE* out = std::fopen(accuracy_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --accuracy_out file: %s\n",
                   accuracy_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n  \"max_relative_error\": %.6g,\n"
                 "  \"queries_checked\": %zu,\n  \"bar\": 1e-12,\n"
                 "  \"pass\": %s\n}\n",
                 max_rel, checked, max_rel <= 1e-12 ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --accuracy_out file: %s\n",
                   accuracy_out.c_str());
      return 1;
    }
  }
  if (max_rel > 1e-12) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
