// Ablation for the Sec 4.3 design choice illustrated by Fig 2(a): the
// modified KD-tree splits on the minimum-SSE value instead of the median.
// We build COMPOSITE summaries under both split rules and compare accuracy
// on heavy / light / nonexistent (fl_time, distance) points, plus the two
// pair-selection strategies of Sec 4.3 (correlation-only vs attribute
// cover, the Ent1&2-vs-Ent3&4 contrast of Sec 6.4).

#include <cstdio>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

int main() {
  BenchScale scale = ReadScale();
  PrintHeader("Ablation: KD split rule and pair-selection strategy");

  FlightsConfig cfg;
  cfg.num_rows = scale.flights_rows;
  cfg.seed = 42;
  auto full = FlightsGenerator::Generate(cfg);
  if (!full.ok()) return 1;
  FlightsPairs pairs = ResolveFlightsPairs(**full);
  auto table = ProjectTable(**full, {pairs.date, pairs.time, pairs.distance});
  const AttrId kTime = 1, kDist = 2;

  WorkloadConfig wcfg;
  wcfg.num_heavy = 100;
  wcfg.num_light = 100;
  wcfg.num_nonexistent = 200;
  auto w = SelectWorkload(*table, {kTime, kDist}, wcfg);
  if (!w.ok()) return 1;

  std::printf("\nKD split rule (COMPOSITE on (ET, DT)):\n");
  std::printf("%-10s %-8s %12s %12s %12s %10s\n", "rule", "budget",
              "heavy_err", "light_err", "nonexist", "groups");
  for (auto rule : {KdSplitRule::kMinSse, KdSplitRule::kMedian}) {
    for (size_t budget : {250u, 500u, 1000u}) {
      StatisticSelector sel(SelectionHeuristic::kComposite, rule);
      auto stats = sel.Select(*table, kTime, kDist, budget);
      auto summary = EntropySummary::Build(*table, stats);
      if (!summary.ok()) return 1;
      Method m = SummaryMethod("kd", *summary);
      std::printf("%-10s %-8zu %12.3f %12.3f %12.3f %10zu\n",
                  rule == KdSplitRule::kMinSse ? "min-SSE" : "median", budget,
                  AvgErrorOn(m, 3, w->attrs, w->heavy),
                  AvgErrorOn(m, 3, w->attrs, w->light),
                  AvgErrorOn(m, 3, w->attrs, w->nonexistent),
                  (*summary)->polynomial().NumGroups());
    }
  }

  // Pair-selection strategy ablation on the full 5-attribute table.
  std::printf("\nPair selection with Ba = 2 (on FlightsCoarse):\n");
  auto ranked = PairSelector::RankPairs(**full, {pairs.date});
  for (auto strategy :
       {PairStrategy::kCorrelationOnly, PairStrategy::kAttributeCover}) {
    auto chosen = PairSelector::Choose(ranked, 2, strategy);
    std::printf("  %-16s picks:",
                strategy == PairStrategy::kCorrelationOnly ? "correlation"
                                                           : "cover");
    StatisticSelector sel(SelectionHeuristic::kComposite);
    std::vector<MultiDimStatistic> stats;
    for (const auto& pr : chosen) {
      std::printf(" (%s,%s)",
                  (*full)->schema().attribute(pr.a).name.c_str(),
                  (*full)->schema().attribute(pr.b).name.c_str());
      auto s = sel.Select(**full, pr.a, pr.b, scale.bs_two_pair);
      stats.insert(stats.end(), s.begin(), s.end());
    }
    auto summary = EntropySummary::Build(**full, stats);
    if (!summary.ok()) return 1;
    Method m = SummaryMethod("pairsel", *summary);
    // Evaluate across all six core 2-attribute templates.
    const AttrId core[] = {pairs.origin, pairs.dest, pairs.time,
                           pairs.distance};
    double heavy = 0.0, fm = 0.0;
    int templates = 0;
    for (int i = 0; i < 4; ++i) {
      for (int j = i + 1; j < 4; ++j) {
        auto wf = SelectWorkload(**full, {core[i], core[j]}, wcfg);
        if (!wf.ok()) return 1;
        heavy += AvgErrorOn(m, 5, wf->attrs, wf->heavy);
        fm += FMeasureOn(m, 5, wf->attrs, wf->light, wf->nonexistent);
        ++templates;
      }
    }
    std::printf(" -> heavy_err %.3f, F %.3f\n", heavy / templates,
                fm / templates);
  }
  std::printf(
      "\npaper shape: min-SSE below the median rule on light/nonexistent "
      "error\nat equal budget (Fig 2a's motivation). For pair selection the "
      "paper's\nevidence is the Fig 8 Ent3&4-vs-Ent1&2 contrast (cover wins "
      "on\nF-measure); with Ba = 2 both strategies share (fl_time,distance) "
      "and\nthe gap is within noise here — see bench_fig8_selection for the "
      "full\ncomparison.\n");
  return 0;
}
