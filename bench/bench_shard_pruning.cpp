// Zone-map shard pruning: pruned vs. full fan-out latency at S = 16 on
// selective / moderate / broad workloads — the PR 7 claim that a
// selective query's cost tracks the shards it can MATCH, not the shard
// count. The store is attribute-partitioned (each shard owns a contiguous
// slice of attribute 0's domain), so a point constraint on the partition
// attribute rules out 15 of 16 shards, a half-domain range about half,
// and a query that never touches attribute 0 prunes nothing (the zone-map
// consultation itself must then be noise).
//
// Before benchmarks run, a verification pass gates the PR's claims:
//   * pruned answers (COUNT and SUM, estimates AND variances) must be
//     BITWISE identical to the full fan-out with pruning disabled — a
//     pruned-out shard contributes an exact {0.0, 0.0}, so skipping it
//     cannot move the merge by an ulp, and
//   * the pruned selective workload must beat the full fan-out wall-clock
//     (this holds on any core count: pruning removes work instead of
//     spreading it).
// --prune_out FILE writes the measurements as JSON for the CI gate
// (tools/check_perf_gate.py --prune). The bench exits non-zero if an
// enforced bar fails.

#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

constexpr size_t kShards = 16;
constexpr uint32_t kRouteDomain = 64;  // attribute 0: 4 codes per shard

std::shared_ptr<Table> PruningTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {kRouteDomain, 24, 16, 12};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a), Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(4);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(kRouteDomain));
    row[1] = rng.NextBernoulli(0.7) ? static_cast<Code>(row[0] % 24)
                                    : static_cast<Code>(rng.Uniform(24));
    row[2] = static_cast<Code>(rng.Uniform(16));
    row[3] = rng.NextBernoulli(0.6) ? (row[2] % 12)
                                    : static_cast<Code>(rng.Uniform(12));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

ShardedOptions PruningOptions() {
  ShardedOptions opts;
  opts.num_shards = kShards;
  opts.scheme = PartitionScheme::kAttribute;
  opts.partition_attr = 0;
  opts.store.num_summaries = 2;
  opts.store.total_budget = 80;
  opts.store.summary.solver.max_iterations = 40;
  opts.store.num_stratified_samples = 1;
  opts.store.uniform_sample = true;
  opts.store.sample_fraction = 0.05;
  return opts;
}

struct PruningFixture {
  std::shared_ptr<Table> table;
  std::shared_ptr<ShardedStore> sharded;
  // Queries are built ONCE here and shared by the pruned and full passes:
  // the timed regions below measure fan-out, never query construction.
  std::vector<CountingQuery> selective;  // point on the partition attribute
  std::vector<CountingQuery> moderate;   // ~half-domain partition-attr range
  std::vector<CountingQuery> broad;      // partition attribute unconstrained

  static PruningFixture& Get() {
    static PruningFixture* f = [] {
      auto* fx = new PruningFixture();
      const BenchScale scale = ReadScale();
      const size_t rows = std::max<size_t>(120'000, scale.flights_rows / 4);
      fx->table = PruningTable(rows, 7211);
      fx->sharded =
          std::move(ShardedStore::Build(*fx->table, PruningOptions()))
              .ValueOrDie();
      Rng rng(7213);
      for (size_t i = 0; i < 64; ++i) {
        CountingQuery sel(4);
        sel.Where(0, AttrPredicate::Point(
                         static_cast<Code>(rng.Uniform(kRouteDomain))));
        if (rng.NextBernoulli(0.5)) {
          sel.Where(2,
                    AttrPredicate::Point(static_cast<Code>(rng.Uniform(16))));
        }
        fx->selective.push_back(sel);

        CountingQuery mod(4);
        const Code lo = static_cast<Code>(rng.Uniform(kRouteDomain / 2));
        mod.Where(0, AttrPredicate::Range(
                         lo, static_cast<Code>(lo + kRouteDomain / 2 - 1)));
        fx->moderate.push_back(mod);

        CountingQuery brd(4);
        brd.Where(2, AttrPredicate::Point(static_cast<Code>(rng.Uniform(16))));
        if (rng.NextBernoulli(0.5)) {
          Code rlo = static_cast<Code>(rng.Uniform(12));
          brd.Where(3, AttrPredicate::Range(rlo, std::min<Code>(rlo + 3, 11)));
        }
        fx->broad.push_back(brd);
      }
      return fx;
    }();
    return *f;
  }

  const std::vector<CountingQuery>& workload(size_t which) const {
    return which == 0 ? selective : which == 1 ? moderate : broad;
  }
};

const char* kWorkloadNames[] = {"selective", "moderate", "broad"};

/// Bitwise pruned-vs-full comparison over every workload (COUNT and SUM,
/// expectations and variances). Restores pruning to ON.
bool VerifyBitwiseIdentical() {
  auto& f = PruningFixture::Get();
  std::vector<double> weights(f.table->domain(2).size());
  for (size_t v = 0; v < weights.size(); ++v) weights[v] = 1.0 + 0.5 * v;
  bool identical = true;
  for (size_t w = 0; w < 3 && identical; ++w) {
    for (const CountingQuery& q : f.workload(w)) {
      f.sharded->set_zone_map_pruning(true);
      auto cnt_on = f.sharded->Answer(q);
      auto sum_on = f.sharded->Answer(AggregateQuery::Sum(2, weights, q));
      f.sharded->set_zone_map_pruning(false);
      auto cnt_off = f.sharded->Answer(q);
      auto sum_off = f.sharded->Answer(AggregateQuery::Sum(2, weights, q));
      if (!cnt_on.ok() || !sum_on.ok() || !cnt_off.ok() || !sum_off.ok()) {
        std::fprintf(stderr, "answer failed during verification\n");
        std::exit(1);
      }
      if (cnt_on->expectation != cnt_off->expectation ||
          cnt_on->variance != cnt_off->variance ||
          sum_on->estimate.expectation != sum_off->estimate.expectation ||
          sum_on->estimate.variance != sum_off->estimate.variance) {
        std::fprintf(stderr,
                     "BITWISE MISMATCH on %s workload: pruned COUNT "
                     "{%.17g, %.17g} vs full {%.17g, %.17g}\n",
                     kWorkloadNames[w], cnt_on->expectation,
                     cnt_on->variance, cnt_off->expectation,
                     cnt_off->variance);
        identical = false;
        break;
      }
    }
  }
  f.sharded->set_zone_map_pruning(true);
  return identical;
}

/// Best-of-3 mean ns/query over a workload with pruning on or off.
double MeasureNsPerQuery(const std::vector<CountingQuery>& workload,
                         bool prune) {
  auto& f = PruningFixture::Get();
  f.sharded->set_zone_map_pruning(prune);
  double best = 0.0;
  for (int rep = 0; rep < 3; ++rep) {
    Timer timer;
    for (const CountingQuery& q : workload) {
      auto est = f.sharded->Answer(q);
      benchmark::DoNotOptimize(est);
    }
    const double ns = timer.ElapsedSeconds() * 1e9 / workload.size();
    if (rep == 0 || ns < best) best = ns;
  }
  f.sharded->set_zone_map_pruning(true);
  return best;
}

/// Mean shards pruned per query on a workload (pruning on).
double AvgPrunedShards(const std::vector<CountingQuery>& workload) {
  auto& f = PruningFixture::Get();
  f.sharded->set_zone_map_pruning(true);
  size_t pruned = 0;
  for (const CountingQuery& q : workload) {
    std::vector<RouteDecision> decs;
    auto est = f.sharded->Answer(q, &decs);
    benchmark::DoNotOptimize(est);
    for (const RouteDecision& d : decs) pruned += d.pruned ? 1 : 0;
  }
  return static_cast<double>(pruned) / workload.size();
}

void BM_MergedCount(benchmark::State& state) {
  auto& f = PruningFixture::Get();
  const auto& workload = f.workload(static_cast<size_t>(state.range(0)));
  f.sharded->set_zone_map_pruning(state.range(1) != 0);
  size_t i = 0;
  for (auto _ : state) {
    auto est = f.sharded->Answer(workload[i % workload.size()]);
    benchmark::DoNotOptimize(est);
    ++i;
  }
  f.sharded->set_zone_map_pruning(true);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MergedCount)
    ->ArgNames({"workload", "prune"})
    ->Args({0, 1})->Args({0, 0})
    ->Args({1, 1})->Args({1, 0})
    ->Args({2, 1})->Args({2, 0});

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --prune_out FILE before google-benchmark sees argv.
  std::string prune_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--prune_out") == 0 && i + 1 < argc) {
      prune_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = PruningFixture::Get();
  const bool identical = VerifyBitwiseIdentical();

  struct Row {
    double pruned_ns, full_ns, avg_pruned;
  };
  Row rows[3];
  for (size_t w = 0; w < 3; ++w) {
    rows[w].pruned_ns = MeasureNsPerQuery(f.workload(w), true);
    rows[w].full_ns = MeasureNsPerQuery(f.workload(w), false);
    rows[w].avg_pruned = AvgPrunedShards(f.workload(w));
  }

  // Pruning removes work instead of spreading it, so the selective win is
  // enforceable on any core count.
  const bool selective_wins = rows[0].pruned_ns < rows[0].full_ns;

  std::printf("zone-map shard pruning (%zu rows, S=%zu, attribute "
              "partitioning on A0):\n",
              f.table->num_rows(), kShards);
  std::printf("  bitwise pruned == full: %s\n", identical ? "ok" : "FAIL");
  for (size_t w = 0; w < 3; ++w) {
    std::printf("  %-9s pruned %8.0f ns/query   full %8.0f ns/query   "
                "(%.2fx, %.1f/%zu shards pruned)\n",
                kWorkloadNames[w], rows[w].pruned_ns, rows[w].full_ns,
                rows[w].full_ns / std::max(rows[w].pruned_ns, 1.0),
                rows[w].avg_pruned, kShards);
  }
  if (!selective_wins) {
    std::printf("  FAIL: pruned selective fan-out is not faster than the "
                "full fan-out\n");
  }

  if (!prune_out.empty()) {
    FILE* out = std::fopen(prune_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --prune_out file: %s\n",
                   prune_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"shards\": %zu,\n"
                 "  \"rows\": %zu,\n"
                 "  \"identical\": %s,\n",
                 kShards, f.table->num_rows(), identical ? "true" : "false");
    for (size_t w = 0; w < 3; ++w) {
      std::fprintf(out,
                   "  \"%s\": {\"pruned_ns\": %.1f, \"full_ns\": %.1f, "
                   "\"speedup\": %.3f, \"avg_pruned_shards\": %.2f},\n",
                   kWorkloadNames[w], rows[w].pruned_ns, rows[w].full_ns,
                   rows[w].full_ns / std::max(rows[w].pruned_ns, 1.0),
                   rows[w].avg_pruned);
    }
    std::fprintf(out, "  \"pass\": %s\n}\n",
                 (identical && selective_wins) ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --prune_out file: %s\n",
                   prune_out.c_str());
      return 1;
    }
  }
  if (!identical || !selective_wins) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();
  return 0;
}
