// Solver performance (Sec 3.3 / 5): cost of polynomial evaluation, one
// mirror-descent sweep, and full model fitting — plus the ablation the
// paper describes in Sec 5: its first implementation re-evaluated P per
// variable (an estimated 3 months of runtime); the optimized evaluation
// brought model computation under a day. We compare our batched per-family
// derivative pass against the naive two-evaluations-per-variable scheme.

#include <benchmark/benchmark.h>

#include <memory>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

struct SolverFixture {
  std::shared_ptr<Table> table;
  std::unique_ptr<VariableRegistry> reg;
  std::unique_ptr<CompressedPolynomial> poly;
  ModelState initial;

  static SolverFixture& Get() {
    static SolverFixture* f = [] {
      auto* fx = new SolverFixture();
      BenchScale scale = ReadScale();
      FlightsConfig cfg;
      cfg.num_rows = scale.flights_rows;
      cfg.seed = 42;
      fx->table = *FlightsGenerator::Generate(cfg);
      const Table& t = *fx->table;
      FlightsPairs p = ResolveFlightsPairs(t);
      StatisticSelector sel(SelectionHeuristic::kComposite);
      std::vector<MultiDimStatistic> stats;
      for (int which : {1, 2, 3}) {
        auto [a, b] = p.pair(which);
        auto s = sel.Select(t, a, b, scale.bs_three_pair);
        stats.insert(stats.end(), s.begin(), s.end());
      }
      ExactEvaluator eval(t);
      std::vector<uint32_t> sizes;
      std::vector<std::vector<double>> targets;
      for (AttrId a = 0; a < t.num_attributes(); ++a) {
        sizes.push_back(t.domain(a).size());
        auto h = eval.Histogram1D(a);
        targets.emplace_back(h.begin(), h.end());
      }
      fx->reg = std::make_unique<VariableRegistry>(*VariableRegistry::Create(
          sizes, targets, stats, static_cast<double>(t.num_rows())));
      fx->poly = std::make_unique<CompressedPolynomial>(
          *CompressedPolynomial::Build(*fx->reg));
      fx->initial = ModelState::InitialState(*fx->reg);
      return fx;
    }();
    return *f;
  }
};


/// Widest attribute that participates in a component — free attributes have
/// constant cofactors and would make the comparison trivial.
AttrId WidestComponentAttr(const VariableRegistry& reg,
                           const CompressedPolynomial& poly) {
  AttrId best = 0;
  uint32_t best_size = 0;
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    if (poly.ComponentOfAttr(a) >= 0 && reg.domain_size(a) > best_size) {
      best = a;
      best_size = reg.domain_size(a);
    }
  }
  return best;
}

void BM_PolynomialEvaluate(benchmark::State& state) {
  auto& f = SolverFixture::Get();
  for (auto _ : state) {
    auto ctx = f.poly->EvaluateUnmasked(f.initial);
    benchmark::DoNotOptimize(ctx.value);
  }
}
BENCHMARK(BM_PolynomialEvaluate);

void BM_BatchedFamilyDerivatives(benchmark::State& state) {
  // One batched pass producing the cofactors of every variable of the
  // largest attribute family.
  auto& f = SolverFixture::Get();
  auto ctx = f.poly->EvaluateUnmasked(f.initial);
  AttrId widest = WidestComponentAttr(*f.reg, *f.poly);
  for (auto _ : state) {
    auto d = f.poly->AlphaDerivatives(f.initial, ctx, widest);
    benchmark::DoNotOptimize(d.data());
  }
  state.counters["vars_per_pass"] =
      static_cast<double>(f.reg->domain_size(widest));
}
BENCHMARK(BM_BatchedFamilyDerivatives);

void BM_NaivePerVariableDerivatives(benchmark::State& state) {
  // Ablation: the same cofactors computed the naive way — per variable,
  // via P and P[alpha_v = 0] (two masked evaluations each, as the paper's
  // pre-optimization Java prototype effectively did).
  auto& f = SolverFixture::Get();
  AttrId widest = WidestComponentAttr(*f.reg, *f.poly);
  const uint32_t n = f.reg->domain_size(widest);
  for (auto _ : state) {
    auto full = f.poly->EvaluateUnmasked(f.initial);
    std::vector<double> derivs(n);
    for (Code v = 0; v < n; ++v) {
      const double alpha = f.initial.alpha[widest][v];
      if (alpha == 0.0) {
        derivs[v] = 0.0;
        continue;
      }
      QueryMask mask(f.reg->num_attributes());
      std::vector<uint8_t> allow(n, 1);
      allow[v] = 0;
      mask.Restrict(widest, std::move(allow));
      const double without = f.poly->Evaluate(f.initial, mask).value;
      derivs[v] = (full.value - without) / alpha;
    }
    benchmark::DoNotOptimize(derivs.data());
  }
  state.counters["vars_per_pass"] = static_cast<double>(n);
}
BENCHMARK(BM_NaivePerVariableDerivatives);

void BM_AllDerivativesSingleSweep(benchmark::State& state) {
  // The new engine: ONE prefix/suffix-cofactor sweep over the groups
  // yields every alpha derivative of every attribute plus every delta
  // derivative.
  auto& f = SolverFixture::Get();
  auto ctx = f.poly->EvaluateUnmasked(f.initial);
  for (auto _ : state) {
    auto d = f.poly->AllDerivatives(f.initial, ctx);
    benchmark::DoNotOptimize(d.delta.data());
  }
  state.counters["vars_per_pass"] =
      static_cast<double>(f.reg->TotalVariables());
}
BENCHMARK(BM_AllDerivativesSingleSweep);

void BM_AllDerivativesPerAttributeLoop(benchmark::State& state) {
  // The old engine for the same output: one batched group walk per
  // attribute family plus one per multi-dimensional statistic — the
  // O(num_attrs * groups * width) inner loop the single sweep replaces.
  auto& f = SolverFixture::Get();
  auto ctx = f.poly->EvaluateUnmasked(f.initial);
  for (auto _ : state) {
    std::vector<std::vector<double>> alpha(f.reg->num_attributes());
    for (AttrId a = 0; a < f.reg->num_attributes(); ++a) {
      alpha[a] = f.poly->AlphaDerivatives(f.initial, ctx, a);
    }
    std::vector<double> delta(f.reg->num_multi_dim());
    for (uint32_t j = 0; j < f.reg->num_multi_dim(); ++j) {
      delta[j] = f.poly->DeltaDerivative(f.initial, ctx, j);
    }
    benchmark::DoNotOptimize(delta.data());
  }
  state.counters["vars_per_pass"] =
      static_cast<double>(f.reg->TotalVariables());
}
BENCHMARK(BM_AllDerivativesPerAttributeLoop);

void BM_SolverSweep(benchmark::State& state) {
  auto& f = SolverFixture::Get();
  SolverOptions opts;
  opts.max_iterations = 1;
  opts.record_trace = false;
  MaxEntSolver solver(*f.reg, *f.poly, opts);
  for (auto _ : state) {
    ModelState st = f.initial;
    auto report = solver.Solve(&st);
    benchmark::DoNotOptimize(report);
  }
}
BENCHMARK(BM_SolverSweep);

void BM_SolveToConvergence(benchmark::State& state) {
  auto& f = SolverFixture::Get();
  SolverOptions opts;
  opts.max_iterations = 30;
  opts.tolerance = 1e-6;
  MaxEntSolver solver(*f.reg, *f.poly, opts);
  for (auto _ : state) {
    ModelState st = f.initial;
    auto report = solver.Solve(&st);
    benchmark::DoNotOptimize(report);
    state.counters["iterations"] =
        static_cast<double>(report.ok() ? (*report).iterations : 0);
  }
}
BENCHMARK(BM_SolveToConvergence)->Unit(benchmark::kMillisecond);

void BM_SolverSweepNaiveEvalPerFamily(benchmark::State& state) {
  // Ablation of the incremental-refresh sweep: the pre-optimization sweep
  // paid one full polynomial evaluation per attribute family (plus one for
  // the delta phase). Reproduced here so the speedup stays measurable.
  auto& f = SolverFixture::Get();
  for (auto _ : state) {
    ModelState st = f.initial;
    for (AttrId a = 0; a < f.reg->num_attributes(); ++a) {
      auto ctx = f.poly->EvaluateUnmasked(st);
      auto cof = f.poly->AlphaDerivatives(st, ctx, a);
      benchmark::DoNotOptimize(cof.data());
    }
    auto ctx = f.poly->EvaluateUnmasked(st);
    for (uint32_t j = 0; j < f.reg->num_multi_dim(); ++j) {
      auto d = f.poly->DeltaDerivativeLocal(st, ctx, j);
      benchmark::DoNotOptimize(d);
    }
  }
}
BENCHMARK(BM_SolverSweepNaiveEvalPerFamily);

}  // namespace

ENTROPYDB_BENCH_MAIN();
