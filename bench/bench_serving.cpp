// Serving (server/server.h): an in-process entropydb_serve over a
// versioned root, measured through real sockets with WireClient — the
// numbers an operator sees, not engine-only microbenchmarks. Measured:
//   * end-to-end QUERY-frame latency, uncached (cache disabled) vs
//     cached (same query, same version), with p50/p99 over the uncached
//     samples. The store is deliberately big enough (32 shards, paper-
//     scale statistic budgets, 100k+ rows) that an uncached answer costs
//     hundreds of microseconds of model evaluation: the single-query
//     fan-out is sequential over shards, so the measurement does not
//     depend on core count, and the socket round trip under it is noise
//     rather than the signal,
//   * QPS with 1 / 4 / 8 concurrent client connections, and
//   * serial QUERY frames vs one BATCH frame per 32 queries at 8
//     clients — the micro-batching claim (one AnswerAll evaluates the
//     shared model once for the whole batch, and framing amortizes the
//     per-request round trip).
//
// Before benchmarks run, a verification pass gates the PR's claims:
//   * a result-cache hit must be >= 10x faster than the uncached
//     query (a hit skips maxent evaluation entirely, so the bar is
//     core-count independent), and
//   * batched throughput must be >= serial throughput at 8 clients
//     (round-trip amortization, also core-count independent).
// --serving_out FILE writes the measurements as JSON for the CI gate
// (tools/check_perf_gate.py --serving). The bench exits non-zero if an
// enforced bar fails.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <benchmark/benchmark.h>

#include "bench_util.h"

using namespace entropydb;
using namespace entropydb::bench;

namespace {

namespace fs = std::filesystem;

// Domains big enough that answering a query means real maxent work (the
// cache bar compares model evaluations against a map probe — on a tiny
// model the socket round trip would dominate both sides): all three
// pairs modelled, so every attribute lands in one connected component
// and each evaluation walks every statistic of every shard model. The
// statistic count only materializes when shards OBSERVE that many
// distinct cells, hence the 100k-row floor on the fixture.
constexpr uint32_t kD0 = 96;
constexpr uint32_t kD1 = 64;
constexpr uint32_t kD2 = 24;
constexpr size_t kShards = 32;
constexpr size_t kBatchFrame = 32;  // queries per BATCH frame

std::shared_ptr<Table> ServeTable(size_t n, uint64_t seed) {
  const std::vector<uint32_t> sizes = {kD0, kD1, kD2};
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a), Domain::Binned(0, sizes[a], sizes[a]));
  }
  Rng rng(seed);
  std::vector<Code> row(3);
  for (size_t r = 0; r < n; ++r) {
    row[0] = static_cast<Code>(rng.Uniform(kD0));
    row[1] = rng.NextBernoulli(0.6) ? static_cast<Code>(row[0] % kD1)
                                    : static_cast<Code>(rng.Uniform(kD1));
    row[2] = static_cast<Code>(rng.Uniform(kD2));
    b.AppendEncodedRow(row);
  }
  return *b.Finish();
}

StoreOptions ServeStoreOptions() {
  StoreOptions opts;
  // Paper-scale statistic budget; few solver iterations — this bench
  // measures serving latency, and evaluation cost depends on the model's
  // factor count, not on how converged its weights are.
  opts.num_summaries = 3;
  opts.total_budget = 9000;
  opts.summary.solver.max_iterations = 40;
  return opts;
}

struct ServingFixture {
  std::string dir;
  size_t rows = 0;
  size_t requests = 0;  // per-measurement request count
  /// Two servers over the SAME published v1: the serving path is
  /// identical except for the result cache, so uncached-vs-cached is a
  /// clean A/B through real sockets.
  std::unique_ptr<QueryServer> cached;
  std::unique_ptr<QueryServer> uncached;
  std::vector<std::string> pool;  // distinct query texts

  static ServingFixture& Get() {
    static ServingFixture* f = [] {
      auto* fx = new ServingFixture();
      const BenchScale scale = ReadScale();
      fx->rows = std::max<size_t>(100'000, scale.flights_rows / 2);
      fx->requests = std::max<size_t>(64, scale.flights_rows / 1'000);
      fx->dir =
          (fs::temp_directory_path() / "entropydb_bench_serving").string();
      fs::remove_all(fx->dir);

      ShardedOptions sopts;
      sopts.num_shards = kShards;
      sopts.store = ServeStoreOptions();
      auto built = ShardedStore::Build(*ServeTable(fx->rows, 9311), sopts);
      auto vs = VersionSet::Open(fx->dir, Env::Default());
      if (!built.ok() || !vs.ok()) {
        std::fprintf(stderr, "fixture build failed\n");
        std::exit(1);
      }
      const uint64_t id = (*vs)->BeginVersion();
      if (!(*built)->Save((*vs)->VersionDir(id)).ok() ||
          !(*vs)->Publish(id).ok()) {
        std::fprintf(stderr, "fixture publish failed\n");
        std::exit(1);
      }

      QueryServer::Options copts;
      copts.path = fx->dir;
      copts.summary = ServeStoreOptions().summary;
      auto cached = QueryServer::Start(copts);
      QueryServer::Options uopts = copts;
      uopts.cache_capacity = 0;
      auto uncached = QueryServer::Start(uopts);
      if (!cached.ok() || !uncached.ok()) {
        std::fprintf(stderr, "server start failed\n");
        std::exit(1);
      }
      fx->cached = std::move(*cached);
      fx->uncached = std::move(*uncached);

      // Broad range queries: evaluation visits every matched cell in
      // every shard model, so these carry the real serving cost a fresh
      // publish pays before its cache warms.
      for (uint32_t hi = kD0 / 2; hi < kD0; ++hi) {
        fx->pool.push_back("COUNT(*) WHERE A0 BETWEEN 0 AND " +
                           std::to_string(hi));
      }
      for (uint32_t hi = kD1 / 2; hi < kD1; ++hi) {
        fx->pool.push_back("COUNT(*) WHERE A1 BETWEEN 1 AND " +
                           std::to_string(hi));
      }
      for (uint32_t lo = 0; lo + 1 < kD2 / 2; ++lo) {
        fx->pool.push_back("COUNT(*) WHERE A2 BETWEEN " + std::to_string(lo) +
                           " AND " + std::to_string(lo + kD2 / 2));
      }
      return fx;
    }();
    return *f;
  }
};

WireClient MustConnect(const QueryServer& server) {
  auto client = WireClient::Connect("127.0.0.1", server.port());
  if (!client.ok()) {
    std::fprintf(stderr, "connect failed: %s\n",
                 client.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(*client);
}

void MustQuery(WireClient& client, const std::string& text) {
  Request req;
  req.type = CommandType::kQuery;
  req.query = text;
  auto resp = client.Call(req);
  if (!resp.ok() || !resp->ok) {
    std::fprintf(stderr, "QUERY %s failed\n", text.c_str());
    std::exit(1);
  }
}

/// Per-request wall times (ns) for `n` QUERY frames rotating the pool on
/// one connection.
std::vector<double> SampleQueryNs(const QueryServer& server, size_t n) {
  auto& f = ServingFixture::Get();
  WireClient client = MustConnect(server);
  std::vector<double> samples;
  samples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const auto start = std::chrono::steady_clock::now();
    MustQuery(client, f.pool[i % f.pool.size()]);
    const auto stop = std::chrono::steady_clock::now();
    samples.push_back(
        std::chrono::duration<double, std::nano>(stop - start).count());
  }
  return samples;
}

double Percentile(std::vector<double> samples, double p) {
  if (samples.empty()) return 0.0;
  std::sort(samples.begin(), samples.end());
  const size_t i = static_cast<size_t>(p * (samples.size() - 1));
  return samples[i];
}

double Mean(const std::vector<double>& samples) {
  double sum = 0.0;
  for (double s : samples) sum += s;
  return samples.empty() ? 0.0 : sum / samples.size();
}

/// Total QPS with `clients` threads, each answering `per_client` queries
/// on its own connection. `batched` sends one BATCH frame per kBatchFrame
/// queries instead of one QUERY frame each.
double MeasureQps(const QueryServer& server, size_t clients,
                  size_t per_client, bool batched) {
  auto& f = ServingFixture::Get();
  std::vector<std::thread> threads;
  const auto start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      WireClient client = MustConnect(server);
      if (batched) {
        for (size_t done = 0; done < per_client; done += kBatchFrame) {
          Request req;
          req.type = CommandType::kBatch;
          const size_t take = std::min(kBatchFrame, per_client - done);
          for (size_t i = 0; i < take; ++i) {
            req.queries.push_back(
                f.pool[(c * 7 + done + i) % f.pool.size()]);
          }
          auto resp = client.Call(req);
          if (!resp.ok() || !resp->ok) {
            std::fprintf(stderr, "BATCH failed\n");
            std::exit(1);
          }
        }
      } else {
        for (size_t i = 0; i < per_client; ++i) {
          MustQuery(client, f.pool[(c * 7 + i) % f.pool.size()]);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stop = std::chrono::steady_clock::now();
  const double seconds = std::chrono::duration<double>(stop - start).count();
  return static_cast<double>(clients * per_client) /
         std::max(seconds, 1e-9);
}

void BM_WireQueryUncached(benchmark::State& state) {
  auto& f = ServingFixture::Get();
  WireClient client = MustConnect(*f.uncached);
  size_t i = 0;
  for (auto _ : state) {
    MustQuery(client, f.pool[i % f.pool.size()]);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireQueryUncached);

void BM_WireQueryCached(benchmark::State& state) {
  auto& f = ServingFixture::Get();
  WireClient client = MustConnect(*f.cached);
  MustQuery(client, f.pool[0]);  // prime
  for (auto _ : state) MustQuery(client, f.pool[0]);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WireQueryCached);

void BM_WireBatch32(benchmark::State& state) {
  auto& f = ServingFixture::Get();
  WireClient client = MustConnect(*f.uncached);
  Request req;
  req.type = CommandType::kBatch;
  for (size_t i = 0; i < kBatchFrame; ++i) {
    req.queries.push_back(f.pool[i % f.pool.size()]);
  }
  for (auto _ : state) {
    auto resp = client.Call(req);
    benchmark::DoNotOptimize(resp);
  }
  state.SetItemsProcessed(state.iterations() * kBatchFrame);
}
BENCHMARK(BM_WireBatch32);

}  // namespace

int main(int argc, char** argv) {
  ::entropydb::bench::ApplyQuickFlag(&argc, argv);

  // Consume --serving_out FILE before google-benchmark sees argv.
  std::string serving_out;
  int out_i = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--serving_out") == 0 && i + 1 < argc) {
      serving_out = argv[++i];
    } else {
      argv[out_i++] = argv[i];
    }
  }
  argc = out_i;

  auto& f = ServingFixture::Get();
  const size_t n = f.requests;

  // End-to-end QUERY-frame latency, per request, round trip included.
  // Uncached samples give the ops-facing p50/p99; the warm pass on the
  // caching server fills every pool line, so its measured pass is all
  // hits. Medians on the cached side — a hit is a map probe plus a
  // round trip, so one scheduler hiccup would otherwise dominate.
  const std::vector<double> uncached_samples = SampleQueryNs(*f.uncached, n);
  const double uncached_ns = Mean(uncached_samples);
  const double p50_ns = Percentile(uncached_samples, 0.50);
  const double p99_ns = Percentile(uncached_samples, 0.99);
  SampleQueryNs(*f.cached, f.pool.size());  // warm every pool line
  const double cached_ns = Percentile(SampleQueryNs(*f.cached, n), 0.50);
  const double cache_speedup = uncached_ns / std::max(cached_ns, 1.0);

  // Throughput: concurrent clients, uncached server (every query does
  // real model work, as after a fresh publish).
  const size_t per_client = std::max<size_t>(32, n / 4);
  const double qps_1 = MeasureQps(*f.uncached, 1, per_client, false);
  const double qps_4 = MeasureQps(*f.uncached, 4, per_client, false);
  const double qps_8 = MeasureQps(*f.uncached, 8, per_client, false);
  const double batched_qps_8 = MeasureQps(*f.uncached, 8, per_client, true);
  const double batch_speedup = batched_qps_8 / std::max(qps_8, 1e-9);

  const bool cache_ok = cache_speedup >= 10.0;
  const bool batch_ok = batch_speedup >= 1.0;
  const unsigned cores = std::max(1u, std::thread::hardware_concurrency());

  std::printf("serving (%zu rows, %zu-query pool, %zu requests/bar):\n",
              f.rows, f.pool.size(), n);
  std::printf("  uncached %9.0f ns/query (p50 %.0f, p99 %.0f)\n", uncached_ns,
              p50_ns, p99_ns);
  std::printf("  cached   %9.0f ns/query (%.1fx, bar 10x): %s\n", cached_ns,
              cache_speedup, cache_ok ? "ok" : "FAIL");
  std::printf("  QPS      1 client %8.0f | 4 clients %8.0f | 8 clients %8.0f\n",
              qps_1, qps_4, qps_8);
  std::printf("  batched  8 clients %8.0f QPS (%.2fx serial, bar 1x): %s\n",
              batched_qps_8, batch_speedup, batch_ok ? "ok" : "FAIL");

  if (!serving_out.empty()) {
    FILE* out = std::fopen(serving_out.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "cannot write --serving_out file: %s\n",
                   serving_out.c_str());
      return 1;
    }
    std::fprintf(out,
                 "{\n"
                 "  \"rows\": %zu,\n"
                 "  \"requests\": %zu,\n"
                 "  \"latency\": {\n"
                 "    \"uncached_ns\": %.1f,\n"
                 "    \"p50_ns\": %.1f,\n"
                 "    \"p99_ns\": %.1f,\n"
                 "    \"cached_ns\": %.1f,\n"
                 "    \"cache_speedup\": %.3f\n"
                 "  },\n"
                 "  \"throughput\": {\n"
                 "    \"qps_1\": %.1f,\n"
                 "    \"qps_4\": %.1f,\n"
                 "    \"qps_8\": %.1f,\n"
                 "    \"batched_qps_8\": %.1f,\n"
                 "    \"batch_speedup\": %.3f\n"
                 "  },\n"
                 "  \"cores\": %u,\n"
                 "  \"pass\": %s\n"
                 "}\n",
                 f.rows, n, uncached_ns, p50_ns, p99_ns, cached_ns,
                 cache_speedup, qps_1, qps_4, qps_8, batched_qps_8,
                 batch_speedup, cores, (cache_ok && batch_ok) ? "true" : "false");
    // A truncated gate file (full disk surfaces at flush/close) must fail
    // HERE, not as a JSON parse error in the gate step downstream.
    if (std::ferror(out) != 0 || std::fclose(out) != 0) {
      std::fprintf(stderr, "write failure on --serving_out file: %s\n",
                   serving_out.c_str());
      return 1;
    }
  }
  if (!cache_ok || !batch_ok) return 1;

  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();
  ::benchmark::Shutdown();

  f.cached->Stop();
  f.uncached->Stop();
  fs::remove_all(f.dir);
  return 0;
}
