// Result cache (server/result_cache.h): canonical keys collapse predicate
// spellings, entries are keyed on (version, query) so a publish never
// serves stale answers, and the LRU bounds memory.

#include "server/result_cache.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

std::vector<std::string> Names() { return {"origin", "distance"}; }
std::vector<Domain> Domains() {
  return {Domain::Categorical({"CA", "NY", "WA"}),
          Domain::Binned(0, 100, 10)};
}

std::string KeyOf(const std::string& text) {
  auto q = ParseQuery(text, Names(), Domains());
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return CanonicalQueryKey(*q);
}

TEST(CanonicalQueryKeyTest, SpellingsOfTheSamePredicateShareOneKey) {
  // Quoting, keyword case, and a one-element IN all resolve to the same
  // encoded predicate, so every spelling hits the same cache line.
  const std::string base = KeyOf("COUNT(*) WHERE origin = NY");
  EXPECT_EQ(KeyOf("COUNT(*) WHERE origin = 'NY'"), base);
  EXPECT_EQ(KeyOf("count(*) where origin in (NY)"), base);
  // Numeric equality and the BETWEEN that lands in the same single bucket
  // collapse too (both become the point predicate on bucket 3).
  EXPECT_EQ(KeyOf("COUNT(*) WHERE distance = 35"),
            KeyOf("COUNT(*) WHERE distance BETWEEN 30 AND 35"));
}

TEST(CanonicalQueryKeyTest, DifferentQueriesGetDifferentKeys) {
  EXPECT_NE(KeyOf("COUNT(*)"), KeyOf("COUNT(*) WHERE origin = NY"));
  EXPECT_NE(KeyOf("COUNT(*) WHERE origin = NY"),
            KeyOf("COUNT(*) WHERE origin = CA"));
  EXPECT_NE(KeyOf("COUNT(*) WHERE origin = NY"),
            KeyOf("SUM(distance) WHERE origin = NY"));
  EXPECT_NE(KeyOf("SUM(distance)"), KeyOf("AVG(distance)"));
  EXPECT_NE(KeyOf("COUNT(*) WHERE distance BETWEEN 0 AND 49"),
            KeyOf("COUNT(*) WHERE distance BETWEEN 0 AND 59"));
}

TEST(CanonicalQueryKeyTest, QuantileAndTopKKeyOnTheirParameters) {
  // The rank / k is part of the key: QUANTILE(x, 0.5) and QUANTILE(x, 0.9)
  // are different queries; equal ranks spelled differently share one key.
  EXPECT_NE(KeyOf("QUANTILE(distance, 0.5)"),
            KeyOf("QUANTILE(distance, 0.9)"));
  EXPECT_EQ(KeyOf("QUANTILE(distance, 0.5)"),
            KeyOf("quantile(distance, 0.50)"));
  EXPECT_NE(KeyOf("TOPK(origin, 2)"), KeyOf("TOPK(origin, 3)"));
  EXPECT_NE(KeyOf("QUANTILE(distance, 0.5)"), KeyOf("AVG(distance)"));
  EXPECT_NE(KeyOf("TOPK(distance, 1)"), KeyOf("COUNT(*)"));
  EXPECT_NE(KeyOf("QUANTILE(distance, 0.5) WHERE origin = NY"),
            KeyOf("QUANTILE(distance, 0.5)"));
}

std::string JoinKeyOf(const std::string& text) {
  auto q = ParseJoinQuery(text, Names(), Domains(), Names(), Domains());
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return CanonicalJoinQueryKey(*q);
}

TEST(CanonicalJoinQueryKeyTest, SidesAndAggregatesDoNotCollide) {
  // The same predicate on opposite sides is a different query.
  EXPECT_NE(JoinKeyOf("COUNT(*) ON origin WHERE left.distance = 35"),
            JoinKeyOf("COUNT(*) ON origin WHERE right.distance = 35"));
  EXPECT_NE(JoinKeyOf("COUNT(*) ON origin"),
            JoinKeyOf("SUM(distance) ON origin"));
  // Spellings still collapse inside a side.
  EXPECT_EQ(JoinKeyOf("COUNT(*) ON origin WHERE left.origin = NY"),
            JoinKeyOf("count(*) on origin where left.origin in (NY)"));
}

TEST(ResultCacheTest, HitAfterPutMissBefore) {
  ResultCache cache(8);
  const std::string key = KeyOf("COUNT(*) WHERE origin = NY");
  EXPECT_FALSE(cache.Get(1, key).has_value());
  QueryResult res;
  res.estimate.expectation = 42.5;
  res.estimate.variance = 3.25;
  cache.Put(1, key, res);
  auto hit = cache.Get(1, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->estimate.expectation, 42.5);
  EXPECT_EQ(hit->estimate.variance, 3.25);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, VersionsDoNotShareEntries) {
  // The version id is half the key: publishing v2 must never surface a
  // v1 answer, and a pinned v1 session keeps hitting its own entries.
  ResultCache cache(8);
  const std::string key = KeyOf("COUNT(*)");
  QueryResult v1;
  v1.estimate.expectation = 100.0;
  cache.Put(1, key, v1);
  EXPECT_FALSE(cache.Get(2, key).has_value());
  QueryResult v2;
  v2.estimate.expectation = 250.0;
  cache.Put(2, key, v2);
  EXPECT_EQ(cache.Get(1, key)->estimate.expectation, 100.0);
  EXPECT_EQ(cache.Get(2, key)->estimate.expectation, 250.0);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  QueryResult est;
  cache.Put(1, "a", est);
  cache.Put(1, "b", est);
  ASSERT_TRUE(cache.Get(1, "a").has_value());  // refresh a; b is now LRU
  cache.Put(1, "c", est);                      // evicts b
  EXPECT_TRUE(cache.Get(1, "a").has_value());
  EXPECT_FALSE(cache.Get(1, "b").has_value());
  EXPECT_TRUE(cache.Get(1, "c").has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  QueryResult est;
  cache.Put(1, "a", est);
  EXPECT_FALSE(cache.Get(1, "a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutRefreshesAnExistingEntry) {
  ResultCache cache(2);
  QueryResult est;
  est.estimate.expectation = 1.0;
  cache.Put(1, "a", est);
  est.estimate.expectation = 2.0;
  cache.Put(1, "a", est);  // same key: refresh, not a duplicate
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.Get(1, "a")->estimate.expectation, 2.0);
}

}  // namespace
}  // namespace entropydb
