// Result cache (server/result_cache.h): canonical keys collapse predicate
// spellings, entries are keyed on (version, query) so a publish never
// serves stale answers, and the LRU bounds memory.

#include "server/result_cache.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

std::vector<std::string> Names() { return {"origin", "distance"}; }
std::vector<Domain> Domains() {
  return {Domain::Categorical({"CA", "NY", "WA"}),
          Domain::Binned(0, 100, 10)};
}

std::string KeyOf(const std::string& text) {
  auto q = ParseQuery(text, Names(), Domains());
  EXPECT_TRUE(q.ok()) << text << ": " << q.status().ToString();
  return CanonicalQueryKey(*q);
}

TEST(CanonicalQueryKeyTest, SpellingsOfTheSamePredicateShareOneKey) {
  // Quoting, keyword case, and a one-element IN all resolve to the same
  // encoded predicate, so every spelling hits the same cache line.
  const std::string base = KeyOf("COUNT(*) WHERE origin = NY");
  EXPECT_EQ(KeyOf("COUNT(*) WHERE origin = 'NY'"), base);
  EXPECT_EQ(KeyOf("count(*) where origin in (NY)"), base);
  // Numeric equality and the BETWEEN that lands in the same single bucket
  // collapse too (both become the point predicate on bucket 3).
  EXPECT_EQ(KeyOf("COUNT(*) WHERE distance = 35"),
            KeyOf("COUNT(*) WHERE distance BETWEEN 30 AND 35"));
}

TEST(CanonicalQueryKeyTest, DifferentQueriesGetDifferentKeys) {
  EXPECT_NE(KeyOf("COUNT(*)"), KeyOf("COUNT(*) WHERE origin = NY"));
  EXPECT_NE(KeyOf("COUNT(*) WHERE origin = NY"),
            KeyOf("COUNT(*) WHERE origin = CA"));
  EXPECT_NE(KeyOf("COUNT(*) WHERE origin = NY"),
            KeyOf("SUM(distance) WHERE origin = NY"));
  EXPECT_NE(KeyOf("SUM(distance)"), KeyOf("AVG(distance)"));
  EXPECT_NE(KeyOf("COUNT(*) WHERE distance BETWEEN 0 AND 49"),
            KeyOf("COUNT(*) WHERE distance BETWEEN 0 AND 59"));
}

TEST(ResultCacheTest, HitAfterPutMissBefore) {
  ResultCache cache(8);
  const std::string key = KeyOf("COUNT(*) WHERE origin = NY");
  EXPECT_FALSE(cache.Get(1, key).has_value());
  QueryEstimate est;
  est.expectation = 42.5;
  est.variance = 3.25;
  cache.Put(1, key, est);
  auto hit = cache.Get(1, key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->expectation, 42.5);
  EXPECT_EQ(hit->variance, 3.25);
  const ResultCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(ResultCacheTest, VersionsDoNotShareEntries) {
  // The version id is half the key: publishing v2 must never surface a
  // v1 answer, and a pinned v1 session keeps hitting its own entries.
  ResultCache cache(8);
  const std::string key = KeyOf("COUNT(*)");
  QueryEstimate v1;
  v1.expectation = 100.0;
  cache.Put(1, key, v1);
  EXPECT_FALSE(cache.Get(2, key).has_value());
  QueryEstimate v2;
  v2.expectation = 250.0;
  cache.Put(2, key, v2);
  EXPECT_EQ(cache.Get(1, key)->expectation, 100.0);
  EXPECT_EQ(cache.Get(2, key)->expectation, 250.0);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsed) {
  ResultCache cache(2);
  QueryEstimate est;
  cache.Put(1, "a", est);
  cache.Put(1, "b", est);
  ASSERT_TRUE(cache.Get(1, "a").has_value());  // refresh a; b is now LRU
  cache.Put(1, "c", est);                      // evicts b
  EXPECT_TRUE(cache.Get(1, "a").has_value());
  EXPECT_FALSE(cache.Get(1, "b").has_value());
  EXPECT_TRUE(cache.Get(1, "c").has_value());
  EXPECT_EQ(cache.stats().entries, 2u);
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  QueryEstimate est;
  cache.Put(1, "a", est);
  EXPECT_FALSE(cache.Get(1, "a").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ResultCacheTest, PutRefreshesAnExistingEntry) {
  ResultCache cache(2);
  QueryEstimate est;
  est.expectation = 1.0;
  cache.Put(1, "a", est);
  est.expectation = 2.0;
  cache.Put(1, "a", est);  // same key: refresh, not a duplicate
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.Get(1, "a")->expectation, 2.0);
}

}  // namespace
}  // namespace entropydb
