// Query server (server/server.h) over a real socket: queries answer
// through the wire byte-for-byte like the engine, repeated queries hit
// the result cache, versioned roots support time travel and keep pinned
// readers bitwise-stable across concurrent publishes, malformed frames
// close the connection, and overload surfaces as typed SERVER_BUSY.

#include "server/server.h"

#include <filesystem>
#include <functional>
#include <thread>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/sharded_store.h"
#include "engine/versioned.h"
#include "query/parser.h"
#include "server/client.h"
#include "storage/version_set.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> ServeTable(size_t n, uint64_t seed) {
  return testutil::RandomTable({6, 6, 5}, n, seed);
}

StoreOptions SmallStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 1;
  opts.total_budget = 30;
  opts.summary.solver.max_iterations = 120;
  return opts;
}

std::string BatchCsv(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::string csv = "A0,A1,A2\n";
  for (size_t i = 0; i < rows; ++i) {
    csv += std::to_string(rng.Uniform(6)) + "," +
           std::to_string(rng.Uniform(6)) + "," +
           std::to_string(rng.Uniform(5)) + "\n";
  }
  return csv;
}

/// First result line of a response, safe on failures.
std::string Line0(const WireResponse& resp) {
  return resp.lines.empty() ? std::string("<no lines>") : resp.lines[0];
}

/// Sends one request payload and expects an OK response.
WireResponse MustCall(WireClient& client, const std::string& payload) {
  auto resp = client.CallRaw(payload);
  EXPECT_TRUE(resp.ok()) << payload << ": " << resp.status().ToString();
  EXPECT_TRUE(!resp.ok() || resp->ok)
      << payload << ": " << resp->code << " " << resp->message;
  return resp.ok() ? *resp : WireResponse{};
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("entropydb_server_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
    // A 2-shard store published as v1 of a versioned root.
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.store = SmallStoreOptions();
    auto built = ShardedStore::Build(*ServeTable(800, 101), sopts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    VersionSet::Options vopts;
    vopts.retain = 2;
    auto vs = VersionSet::Open(root_, Env::Default(), vopts);
    ASSERT_TRUE(vs.ok()) << vs.status().ToString();
    const uint64_t id = (*vs)->BeginVersion();
    ASSERT_TRUE((*built)->Save((*vs)->VersionDir(id)).ok());
    ASSERT_TRUE((*vs)->Publish(id).ok());
  }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
    server_.reset();
    fs::remove_all(root_);
  }

  void StartServer(std::function<void(QueryServer::Options*)> tweak = {}) {
    QueryServer::Options opts;
    opts.path = root_;
    opts.summary = SmallStoreOptions().summary;
    if (tweak) tweak(&opts);
    auto server = QueryServer::Start(opts);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  WireClient Connect() {
    auto client = WireClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return client.ok() ? std::move(*client) : WireClient();
  }

  /// Publishes a new version by appending `rows` CSV rows out-of-process
  /// style (same code path the CLI uses).
  uint64_t PublishAppend(size_t rows, uint64_t seed) {
    auto report = AppendVersion(root_, BatchCsv(rows, seed),
                                SmallStoreOptions());
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->version : 0;
  }

  std::string root_;
  std::unique_ptr<QueryServer> server_;
};

TEST_F(ServerTest, QueryAnswersBitwiseLikeTheEngine) {
  StartServer();
  WireClient client = Connect();
  const std::string text = "COUNT(*) WHERE A0 = 2";
  WireResponse resp = MustCall(client, "QUERY " + text);
  ASSERT_EQ(resp.lines.size(), 2u);
  double e = 0, v = 0;
  ASSERT_EQ(std::sscanf(resp.lines[0].c_str(), "estimate %lf %lf", &e, &v),
            2);
  EXPECT_EQ(resp.lines[1], "cached 0");

  auto engine = EntropyEngine::Open(root_);
  ASSERT_TRUE(engine.ok());
  auto parsed = ParseQuery(text, (*engine)->attr_names(),
                           (*engine)->domains());
  ASSERT_TRUE(parsed.ok());
  auto direct = (*engine)->Answer(parsed->where);
  ASSERT_TRUE(direct.ok());
  // %.17g round-trips doubles exactly: the wire answer IS the engine
  // answer, bit for bit.
  EXPECT_EQ(e, direct->expectation);
  EXPECT_EQ(v, direct->variance);
}

TEST_F(ServerTest, RepeatedQueryHitsTheResultCache) {
  StartServer();
  WireClient client = Connect();
  WireResponse first = MustCall(client, "QUERY COUNT(*) WHERE A1 = 3");
  // A different spelling of the same canonical predicate also hits.
  WireResponse second = MustCall(client, "QUERY COUNT(*) WHERE A1 IN (3)");
  ASSERT_EQ(first.lines.size(), 2u);
  ASSERT_EQ(second.lines.size(), 2u);
  EXPECT_EQ(first.lines[1], "cached 0");
  EXPECT_EQ(second.lines[1], "cached 1");
  EXPECT_EQ(first.lines[0], second.lines[0]);
}

TEST_F(ServerTest, BatchAnswersInRequestOrder) {
  StartServer();
  WireClient client = Connect();
  WireResponse batch = MustCall(
      client, "BATCH 3\nCOUNT(*) WHERE A0 = 0\nCOUNT(*)\nCOUNT(*) WHERE "
              "A2 = 1");
  ASSERT_EQ(batch.lines.size(), 3u);
  // Each line equals the one-at-a-time answer for the same query.
  const char* singles[] = {"QUERY COUNT(*) WHERE A0 = 0", "QUERY COUNT(*)",
                           "QUERY COUNT(*) WHERE A2 = 1"};
  for (size_t i = 0; i < 3; ++i) {
    WireResponse one = MustCall(client, singles[i]);
    ASSERT_EQ(one.lines.size(), 2u);
    EXPECT_EQ(batch.lines[i], one.lines[0]) << singles[i];
  }
}

TEST_F(ServerTest, SumAndAvgAnswerOverTheWire) {
  StartServer();
  WireClient client = Connect();
  WireResponse sum = MustCall(client, "QUERY SUM(A2) WHERE A0 = 1");
  ASSERT_EQ(sum.lines.size(), 2u);
  double e = 0, v = 0;
  ASSERT_EQ(std::sscanf(sum.lines[0].c_str(), "estimate %lf %lf", &e, &v),
            2);
  EXPECT_GT(e, 0.0);
  WireResponse avg = MustCall(client, "QUERY AVG(A2)");
  ASSERT_EQ(avg.lines.size(), 2u);
}

TEST_F(ServerTest, BadQueryTextIsBadRequest) {
  StartServer();
  WireClient client = Connect();
  auto resp = client.CallRaw("QUERY COUNT(*) WHERE A0 =");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "BAD_REQUEST");
  // An unknown attribute keeps the parser's kNotFound type.
  auto unknown = client.CallRaw("QUERY COUNT(*) WHERE nosuch = 1");
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown->ok);
  EXPECT_EQ(unknown->code, "NOT_FOUND");
  // The connection survives a well-framed bad request.
  MustCall(client, "QUERY COUNT(*)");
}

TEST_F(ServerTest, MalformedFrameClosesTheConnection) {
  StartServer();
  {
    WireClient client = Connect();
    // No frame header at all: the server must answer with a final error
    // frame (best effort) and close — there is no resynchronizing a
    // stream with a corrupt length prefix.
    ASSERT_TRUE(
        client.SendBytesAndAwaitClose("QUERY COUNT(*)\nQUERY etc").ok());
  }
  EXPECT_GE(server_->stats().protocol_errors, 1u);
  // The server keeps serving new connections afterwards.
  WireClient client = Connect();
  MustCall(client, "QUERY COUNT(*)");
}

TEST_F(ServerTest, ZeroCapacityQueueAnswersServerBusy) {
  StartServer([](QueryServer::Options* opts) { opts->queue_capacity = 0; });
  WireClient client = Connect();
  auto resp = client.CallRaw("QUERY COUNT(*)");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "SERVER_BUSY");
  const Status back = StatusFromWire(resp->code, resp->message);
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
}

TEST_F(ServerTest, TimeTravelAcrossAnExternalAppend) {
  StartServer();
  WireClient live = Connect();
  WireResponse v1_answer = MustCall(live, "QUERY COUNT(*)");

  // A CLI-style append publishes v2 while the server runs.
  ASSERT_EQ(PublishAppend(200, 301), 2u);

  // VERSION picks up the publish without a restart.
  WireResponse version = MustCall(live, "VERSION");
  ASSERT_GE(version.lines.size(), 2u);
  EXPECT_EQ(version.lines[0], "current 2");
  EXPECT_EQ(version.lines[1], "retained 1 2");

  // A live session now answers from v2 (200 more rows)...
  WireResponse v2_answer = MustCall(live, "QUERY COUNT(*)");
  EXPECT_NE(Line0(v2_answer), Line0(v1_answer));

  // ...while OPEN 1 pins the retained v1 and reproduces its answer
  // exactly (time travel).
  WireClient pinned = Connect();
  WireResponse open = MustCall(pinned, "OPEN 1");
  ASSERT_EQ(open.lines.size(), 1u);
  EXPECT_EQ(open.lines[0], "version 1");
  WireResponse travel = MustCall(pinned, "QUERY COUNT(*)");
  EXPECT_EQ(Line0(travel), Line0(v1_answer));

  // OPEN live follows CURRENT again.
  WireResponse reopen = MustCall(pinned, "OPEN live");
  ASSERT_EQ(reopen.lines.size(), 1u);
  EXPECT_EQ(reopen.lines[0], "version 2");
  WireResponse back = MustCall(pinned, "QUERY COUNT(*)");
  EXPECT_EQ(Line0(back), Line0(v2_answer));
}

TEST_F(ServerTest, OpenBeyondRetentionIsNotFound) {
  StartServer();
  WireClient client = Connect();
  auto resp = client.CallRaw("OPEN 9");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "NOT_FOUND");
}

TEST_F(ServerTest, StatsReportsServingCounters) {
  StartServer();
  WireClient client = Connect();
  MustCall(client, "QUERY COUNT(*)");
  MustCall(client, "QUERY COUNT(*)");
  WireResponse stats = MustCall(client, "STATS");
  // The first COUNT dispatches through the batcher into AnswerAll (so it
  // counts as a batched query); the repeat is a cache hit and never
  // reaches the engine.
  bool saw_batched = false, saw_hits = false, saw_version = false;
  for (const std::string& line : stats.lines) {
    if (line == "batched_queries 1") saw_batched = true;
    if (line == "cache_hits 1") saw_hits = true;
    if (line == "version 1") saw_version = true;
  }
  EXPECT_TRUE(saw_version);
  EXPECT_TRUE(saw_batched);
  EXPECT_TRUE(saw_hits);
}

TEST_F(ServerTest, ConcurrentPublishesKeepPinnedReaderBitwiseStable) {
  // THE serving guarantee: a session pinned on v1 answers bit-for-bit
  // identically before, during, and after concurrent appends publish v2
  // and v3 — even though retain = 2 retires v1's directory from disk at
  // the v3 publish. The pinned engine lives on in memory; nothing it
  // opened is ever rewritten.
  StartServer();
  WireClient pinned = Connect();
  MustCall(pinned, "OPEN 1");
  const std::string query = "QUERY COUNT(*) WHERE A0 = 3";
  const std::string baseline = Line0(MustCall(pinned, query));

  std::thread publisher([this] {
    EXPECT_EQ(PublishAppend(150, 401), 2u);
    EXPECT_EQ(PublishAppend(150, 403), 3u);
  });
  // Hammer the pinned session while the publishes land.
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(Line0(MustCall(pinned, query)), baseline) << "iter " << i;
  }
  publisher.join();

  // After both publishes: still identical, from the same session.
  EXPECT_EQ(Line0(MustCall(pinned, query)), baseline);

  // v1 is now outside the retention window: a NEW session cannot pin it…
  WireClient fresh = Connect();
  auto gone = fresh.CallRaw("OPEN 1");
  ASSERT_TRUE(gone.ok());
  EXPECT_FALSE(gone->ok);
  EXPECT_EQ(gone->code, "NOT_FOUND");
  // …but the already-pinned session keeps its snapshot.
  EXPECT_EQ(Line0(MustCall(pinned, query)), baseline);
}

TEST_F(ServerTest, QuantileAndTopKAnswerOverTheWireAndCacheBitwise) {
  StartServer();
  WireClient client = Connect();

  // QUANTILE answers estimate + bound; the repeat is a cache hit whose
  // payload lines (minus the cached flag) are byte-identical.
  WireResponse q1 = MustCall(client, "QUERY QUANTILE(A2, 0.5) WHERE A0 = 1");
  ASSERT_EQ(q1.lines.size(), 3u);
  EXPECT_EQ(q1.lines[0].rfind("estimate ", 0), 0u);
  EXPECT_EQ(q1.lines[1].rfind("bound ", 0), 0u);
  EXPECT_EQ(q1.lines[2], "cached 0");
  WireResponse q2 = MustCall(client, "QUERY quantile(A2, 0.50) WHERE A0 = 1");
  ASSERT_EQ(q2.lines.size(), 3u);
  EXPECT_EQ(q2.lines[0], q1.lines[0]);
  EXPECT_EQ(q2.lines[1], q1.lines[1]);
  EXPECT_EQ(q2.lines[2], "cached 1");

  // TOPK answers estimate + one cell line per requested group.
  WireResponse t1 = MustCall(client, "QUERY TOPK(A1, 3)");
  ASSERT_EQ(t1.lines.size(), 5u);
  EXPECT_EQ(t1.lines[0].rfind("estimate ", 0), 0u);
  for (size_t i = 1; i <= 3; ++i) {
    EXPECT_EQ(t1.lines[i].rfind("cell ", 0), 0u) << t1.lines[i];
  }
  EXPECT_EQ(t1.lines[4], "cached 0");
  WireResponse t2 = MustCall(client, "QUERY TOPK(A1, 3)");
  ASSERT_EQ(t2.lines.size(), 5u);
  for (size_t i = 0; i < 4; ++i) EXPECT_EQ(t2.lines[i], t1.lines[i]);
  EXPECT_EQ(t2.lines[4], "cached 1");
}

TEST_F(ServerTest, UnknownAggregateIsByteExactBadRequest) {
  StartServer();
  WireClient client = Connect();
  // These messages are part of the wire contract: clients match on them.
  auto median = client.CallRaw("QUERY MEDIAN(A2)");
  ASSERT_TRUE(median.ok());
  EXPECT_FALSE(median->ok);
  EXPECT_EQ(median->code, "BAD_REQUEST");
  EXPECT_EQ(median->message,
            "query must start with COUNT, SUM, AVG, QUANTILE or TOPK");
  auto rank = client.CallRaw("QUERY QUANTILE(A2, 1.5)");
  ASSERT_TRUE(rank.ok());
  EXPECT_FALSE(rank->ok);
  EXPECT_EQ(rank->code, "BAD_REQUEST");
  EXPECT_EQ(rank->message, "quantile rank must be in (0, 1)");
  auto k = client.CallRaw("QUERY TOPK(A1, 0)");
  ASSERT_TRUE(k.ok());
  EXPECT_FALSE(k->ok);
  EXPECT_EQ(k->code, "BAD_REQUEST");
  EXPECT_EQ(k->message, "TOPK count must be a positive integer");
}

TEST_F(ServerTest, JoinWithoutARightRelationIsFailedPrecondition) {
  StartServer();
  WireClient client = Connect();
  auto resp = client.CallRaw("JOIN COUNT(*) ON A0");
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->ok);
  EXPECT_EQ(resp->code, "FAILED_PRECONDITION");
  EXPECT_EQ(resp->message,
            "server has no join relation (start with --join <path>)");
  // The connection survives; VERSION does not advertise the capability.
  WireResponse version = MustCall(client, "VERSION");
  ASSERT_FALSE(version.lines.empty());
  EXPECT_EQ(version.lines.back(),
            "capabilities count sum avg quantile topk batch");
}

TEST_F(ServerTest, JoinAnswersOverTheWireAndCaches) {
  // A second relation sharing A0 (and A1's name, with a smaller domain)
  // saved as a plain store next to the fixture root.
  const std::string right_path = root_ + "_right";
  fs::remove_all(right_path);
  ShardedOptions sopts;
  sopts.num_shards = 2;
  sopts.store = SmallStoreOptions();
  auto right = ShardedStore::Build(
      *testutil::RandomTable({6, 4}, 500, 211), sopts);
  ASSERT_TRUE(right.ok()) << right.status().ToString();
  ASSERT_TRUE((*right)->Save(right_path).ok());

  StartServer([&](QueryServer::Options* opts) {
    opts->join_path = right_path;
  });
  WireClient client = Connect();

  // VERSION advertises the join capability when a right relation loads.
  WireResponse version = MustCall(client, "VERSION");
  ASSERT_FALSE(version.lines.empty());
  EXPECT_EQ(version.lines.back(),
            "capabilities count sum avg quantile topk batch join");

  const std::string text =
      "COUNT(*) ON A0 WHERE left.A1 = 2 AND right.A1 = 1";
  WireResponse first = MustCall(client, "JOIN " + text);
  ASSERT_EQ(first.lines.size(), 2u);
  double e = 0, v = 0;
  ASSERT_EQ(std::sscanf(first.lines[0].c_str(), "estimate %lf %lf", &e, &v),
            2);
  EXPECT_GT(e, 0.0);
  EXPECT_GT(v, 0.0);
  EXPECT_EQ(first.lines[1], "cached 0");

  // The wire answer is the engines' fused answer, bit for bit.
  auto left_engine = EntropyEngine::Open(root_);
  ASSERT_TRUE(left_engine.ok());
  auto right_engine = EntropyEngine::Open(right_path);
  ASSERT_TRUE(right_engine.ok());
  auto parsed = ParseJoinQuery(
      text, (*left_engine)->attr_names(), (*left_engine)->domains(),
      (*right_engine)->attr_names(), (*right_engine)->domains());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  auto direct = (*left_engine)->AnswerJoin(
      AggregateQuery::JoinCount(parsed->left_join, parsed->right_join,
                                parsed->left_where, parsed->right_where),
      **right_engine);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  EXPECT_EQ(e, direct->estimate.expectation);
  EXPECT_EQ(v, direct->estimate.variance);

  // A different spelling of the same join hits the cache byte-for-byte.
  WireResponse second = MustCall(
      client, "JOIN count(*) ON A0 WHERE left.A1 IN (2) AND right.A1 = 1");
  ASSERT_EQ(second.lines.size(), 2u);
  EXPECT_EQ(second.lines[0], first.lines[0]);
  EXPECT_EQ(second.lines[1], "cached 1");

  // JOIN_SUM answers too, and a bad verb pins its BAD_REQUEST message.
  WireResponse sum = MustCall(client, "JOIN SUM(A2) ON A0");
  ASSERT_EQ(sum.lines.size(), 2u);
  EXPECT_EQ(sum.lines[0].rfind("estimate ", 0), 0u);
  auto bad = client.CallRaw("JOIN AVG(A2) ON A0");
  ASSERT_TRUE(bad.ok());
  EXPECT_FALSE(bad->ok);
  EXPECT_EQ(bad->code, "BAD_REQUEST");
  EXPECT_EQ(bad->message, "join query must start with COUNT or SUM");

  fs::remove_all(right_path);
}

TEST_F(ServerTest, UnversionedStoreServesWithoutVersionCommands) {
  // Serve a plain (unversioned) store directory: queries work, OPEN <id>
  // is a typed FAILED_PRECONDITION, VERSION reports current 0.
  const std::string plain = root_ + "_plain";
  fs::remove_all(plain);
  ShardedOptions sopts;
  sopts.num_shards = 2;
  sopts.store = SmallStoreOptions();
  auto built = ShardedStore::Build(*ServeTable(600, 107), sopts);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(plain).ok());

  QueryServer::Options opts;
  opts.path = plain;
  auto server = QueryServer::Start(opts);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  auto client = WireClient::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  MustCall(*client, "QUERY COUNT(*)");
  auto open = client->CallRaw("OPEN 1");
  ASSERT_TRUE(open.ok());
  EXPECT_FALSE(open->ok);
  EXPECT_EQ(open->code, "FAILED_PRECONDITION");
  WireResponse version = MustCall(*client, "VERSION");
  ASSERT_GE(version.lines.size(), 1u);
  EXPECT_EQ(version.lines[0], "current 0");
  (*server)->Stop();
  fs::remove_all(plain);
}

}  // namespace
}  // namespace entropydb
