// Query batcher (server/batcher.h): bounded admission returns typed
// SERVER_BUSY instead of hanging, deadlines expire queued work, one
// dispatch never mixes engines (= versions), and batched answers match
// the serial path. Built with start_worker = false so each test steps the
// dispatcher deterministically.

#include "server/batcher.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "maxent/summary.h"

namespace entropydb {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::shared_ptr<const EntropyEngine> SmallEngine(uint64_t seed) {
  auto table = testutil::RandomTable({4, 4, 3}, 400, seed);
  auto summary = EntropySummary::Build(*table, {});
  EXPECT_TRUE(summary.ok()) << summary.status().ToString();
  return EntropyEngine::FromSummary(*summary);
}

QueryBatcher::Options ManualOptions(size_t capacity) {
  QueryBatcher::Options opts;
  opts.queue_capacity = capacity;
  opts.max_batch = 64;
  opts.start_worker = false;
  return opts;
}

steady_clock::time_point FarDeadline() {
  return steady_clock::now() + milliseconds(60000);
}

TEST(QueryBatcherTest, FullQueueRejectsWithResourceExhausted) {
  auto engine = SmallEngine(11);
  QueryBatcher batcher(ManualOptions(2));
  CountingQuery q(3);
  auto a = batcher.SubmitAsync(engine, q, FarDeadline());
  auto b = batcher.SubmitAsync(engine, q, FarDeadline());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Third submit against capacity 2: typed rejection, immediately — the
  // wire layer turns this into SERVER_BUSY, never an unbounded queue.
  auto c = batcher.SubmitAsync(engine, q, FarDeadline());
  ASSERT_FALSE(c.ok());
  EXPECT_EQ(c.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(batcher.stats().accepted, 2u);
  EXPECT_EQ(batcher.stats().rejected, 1u);

  // Draining frees capacity again.
  EXPECT_EQ(batcher.DrainOnce(), 2u);
  auto d = batcher.SubmitAsync(engine, q, FarDeadline());
  EXPECT_TRUE(d.ok());
}

TEST(QueryBatcherTest, BatchedAnswersMatchSerialAnswers) {
  auto engine = SmallEngine(13);
  QueryBatcher batcher(ManualOptions(16));
  std::vector<CountingQuery> queries;
  for (Code c = 0; c < 4; ++c) {
    CountingQuery q(3);
    q.Where(0, AttrPredicate::Point(c));
    queries.push_back(q);
  }
  std::vector<std::future<Result<QueryEstimate>>> futures;
  for (const auto& q : queries) {
    auto f = batcher.SubmitAsync(engine, q, FarDeadline());
    ASSERT_TRUE(f.ok());
    futures.push_back(std::move(*f));
  }
  EXPECT_EQ(batcher.DrainOnce(), 4u);
  EXPECT_EQ(batcher.stats().batches, 1u);  // one AnswerAll for all four
  for (size_t i = 0; i < queries.size(); ++i) {
    auto batched = futures[i].get();
    ASSERT_TRUE(batched.ok()) << batched.status().ToString();
    auto serial = engine->Answer(queries[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ(batched->expectation, serial->expectation);
    EXPECT_EQ(batched->variance, serial->variance);
  }
}

TEST(QueryBatcherTest, OneDispatchNeverMixesEngines) {
  // Two engines stand in for two pinned versions: answers must come from
  // the engine the query was submitted against, so a batch takes only the
  // front-run of queries sharing the front's engine.
  auto v1 = SmallEngine(17);
  auto v2 = SmallEngine(19);
  QueryBatcher batcher(ManualOptions(16));
  CountingQuery q(3);
  auto a = batcher.SubmitAsync(v1, q, FarDeadline());
  auto b = batcher.SubmitAsync(v2, q, FarDeadline());
  auto c = batcher.SubmitAsync(v1, q, FarDeadline());
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());

  // First drain: both v1 queries (the interleaved v2 one keeps its turn).
  EXPECT_EQ(batcher.DrainOnce(), 2u);
  EXPECT_TRUE(a->get().ok());
  EXPECT_TRUE(c->get().ok());
  EXPECT_EQ(b->wait_for(milliseconds(0)), std::future_status::timeout);
  // Second drain answers the v2 query.
  EXPECT_EQ(batcher.DrainOnce(), 1u);
  EXPECT_TRUE(b->get().ok());
  EXPECT_EQ(batcher.stats().batches, 2u);
}

TEST(QueryBatcherTest, ExpiredQueriesFailWithDeadlineExceeded) {
  auto engine = SmallEngine(23);
  QueryBatcher batcher(ManualOptions(16));
  CountingQuery q(3);
  auto expired =
      batcher.SubmitAsync(engine, q, steady_clock::now() - milliseconds(1));
  auto live = batcher.SubmitAsync(engine, q, FarDeadline());
  ASSERT_TRUE(expired.ok());
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(batcher.DrainOnce(), 2u);
  auto r = expired->get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_TRUE(live->get().ok());
  EXPECT_EQ(batcher.stats().expired, 1u);
}

TEST(QueryBatcherTest, SubmitGivesUpAtItsDeadline) {
  // No worker, nobody drains: the synchronous Submit must come back with
  // kDeadlineExceeded instead of blocking forever.
  auto engine = SmallEngine(29);
  QueryBatcher batcher(ManualOptions(16));
  CountingQuery q(3);
  auto r = batcher.Submit(engine, q, milliseconds(10));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(QueryBatcherTest, StopFailsEverythingQueued) {
  auto engine = SmallEngine(31);
  QueryBatcher batcher(ManualOptions(16));
  CountingQuery q(3);
  auto f = batcher.SubmitAsync(engine, q, FarDeadline());
  ASSERT_TRUE(f.ok());
  batcher.Stop();
  auto r = f->get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // After Stop, new submissions are refused.
  auto after = batcher.SubmitAsync(engine, q, FarDeadline());
  EXPECT_FALSE(after.ok());
}

TEST(QueryBatcherTest, WorkerThreadDrainsWithoutManualPumping) {
  auto engine = SmallEngine(37);
  QueryBatcher::Options opts;
  opts.queue_capacity = 16;
  opts.start_worker = true;
  QueryBatcher batcher(opts);
  CountingQuery q(3);
  q.Where(1, AttrPredicate::Point(1));
  auto r = batcher.Submit(engine, q, milliseconds(30000));
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto serial = engine->Answer(q);
  ASSERT_TRUE(serial.ok());
  EXPECT_EQ(r->expectation, serial->expectation);
}

}  // namespace
}  // namespace entropydb
