// Wire protocol codec (server/wire_protocol.h): framing round-trips,
// incremental decoding, malformed-frame poisoning, request/response
// grammar, and the Status <-> wire error code mapping. Pure string tests —
// exactly the bytes docs/SERVING.md specifies.

#include "server/wire_protocol.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(FrameTest, EncodesFixedWidthHexLength) {
  EXPECT_EQ(EncodeFrame(""), "00000000\n");
  EXPECT_EQ(EncodeFrame("OK"), "00000002\nOK");
  EXPECT_EQ(EncodeFrame("QUERY COUNT(*)"), "0000000e\nQUERY COUNT(*)");
}

TEST(FrameTest, DecoderRoundTripsWholeFrames) {
  FrameDecoder d;
  d.Feed(EncodeFrame("first"));
  d.Feed(EncodeFrame(""));
  d.Feed(EncodeFrame("third\nwith\nlines"));
  auto f = d.Next();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(**f, "first");
  f = d.Next();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(**f, "");
  f = d.Next();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(**f, "third\nwith\nlines");
  f = d.Next();
  ASSERT_TRUE(f.ok());
  EXPECT_FALSE(f->has_value());
}

TEST(FrameTest, DecoderHandlesBytewiseArrival) {
  const std::string frame = EncodeFrame("trickle");
  FrameDecoder d;
  for (size_t i = 0; i < frame.size(); ++i) {
    auto f = d.Next();
    ASSERT_TRUE(f.ok());
    EXPECT_FALSE(f->has_value()) << "complete after " << i << " bytes?";
    d.Feed(std::string_view(&frame[i], 1));
  }
  auto f = d.Next();
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(**f, "trickle");
}

TEST(FrameTest, NonHexHeaderPoisonsTheDecoder) {
  FrameDecoder d;
  d.Feed("QUERY CO\nUNT(*)");  // a peer that skipped framing entirely
  auto f = d.Next();
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
  // Poisoned: even a valid frame afterwards is refused — with a corrupt
  // length prefix there is no way to resynchronize the stream.
  d.Feed(EncodeFrame("STATS"));
  EXPECT_FALSE(d.Next().ok());
}

TEST(FrameTest, MissingNewlinePoisonsTheDecoder) {
  FrameDecoder d;
  d.Feed("00000002XOK");
  EXPECT_FALSE(d.Next().ok());
}

TEST(FrameTest, OversizedLengthPoisonsTheDecoder) {
  FrameDecoder d;
  d.Feed("ffffffff\n");
  auto f = d.Next();
  EXPECT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST(RequestTest, QueryRoundTrip) {
  Request req;
  req.type = CommandType::kQuery;
  req.query = "COUNT(*) WHERE origin = 'S3'";
  auto parsed = ParseRequest(EncodeRequest(req));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, CommandType::kQuery);
  EXPECT_EQ(parsed->query, req.query);
  EXPECT_EQ(parsed->deadline_ms, 0u);
}

TEST(RequestTest, QueryCarriesDeadlineOnTheCommandWord) {
  Request req;
  req.type = CommandType::kQuery;
  req.deadline_ms = 250;
  req.query = "COUNT(*)";
  EXPECT_EQ(EncodeRequest(req), "QUERY/250 COUNT(*)");
  auto parsed = ParseRequest("QUERY/250 COUNT(*)");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->deadline_ms, 250u);
  EXPECT_EQ(parsed->query, "COUNT(*)");
}

TEST(RequestTest, BatchRoundTrip) {
  Request req;
  req.type = CommandType::kBatch;
  req.deadline_ms = 1000;
  req.queries = {"COUNT(*)", "COUNT(*) WHERE a = 1"};
  EXPECT_EQ(EncodeRequest(req),
            "BATCH/1000 2\nCOUNT(*)\nCOUNT(*) WHERE a = 1");
  auto parsed = ParseRequest(EncodeRequest(req));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->type, CommandType::kBatch);
  EXPECT_EQ(parsed->queries, req.queries);
  EXPECT_EQ(parsed->deadline_ms, 1000u);
}

TEST(RequestTest, OpenRoundTrip) {
  Request req;
  req.type = CommandType::kOpen;
  req.version = 7;
  EXPECT_EQ(EncodeRequest(req), "OPEN 7");
  auto parsed = ParseRequest("OPEN 7");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->version, 7u);

  req.version = 0;
  EXPECT_EQ(EncodeRequest(req), "OPEN live");
  parsed = ParseRequest("OPEN live");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->version, 0u);
}

TEST(RequestTest, StatsAndVersionRoundTrip) {
  auto stats = ParseRequest("STATS");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->type, CommandType::kStats);
  auto version = ParseRequest("VERSION");
  ASSERT_TRUE(version.ok());
  EXPECT_EQ(version->type, CommandType::kVersion);
}

TEST(RequestTest, JoinRoundTrip) {
  Request req;
  req.type = CommandType::kJoin;
  req.query = "COUNT(*) ON carrier WHERE left.distance BETWEEN 100 AND 500";
  EXPECT_EQ(EncodeRequest(req),
            "JOIN COUNT(*) ON carrier WHERE left.distance BETWEEN 100 AND "
            "500");
  auto parsed = ParseRequest(EncodeRequest(req));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->type, CommandType::kJoin);
  EXPECT_EQ(parsed->query, req.query);
  EXPECT_EQ(parsed->deadline_ms, 0u);

  // JOIN carries a deadline on the command word like QUERY does.
  req.deadline_ms = 250;
  EXPECT_EQ(EncodeRequest(req).substr(0, 9), "JOIN/250 ");
  auto timed = ParseRequest(EncodeRequest(req));
  ASSERT_TRUE(timed.ok());
  EXPECT_EQ(timed->deadline_ms, 250u);
  EXPECT_EQ(timed->query, req.query);
}

TEST(RequestTest, MalformedRequestsAreRejected) {
  const char* bad[] = {
      "",                        // empty
      "PING",                    // unknown command
      "STATS now",               // STATS takes no arguments
      "VERSION 3",               // VERSION takes no arguments
      "OPEN",                    // OPEN wants an id or 'live'
      "OPEN v3",                 // not a bare id
      "OPEN 0",                  // 0 is reserved for 'live'
      "QUERY",                   // no query text
      "QUERY/ COUNT(*)",         // empty deadline
      "QUERY/0 COUNT(*)",        // zero deadline
      "QUERY/abc COUNT(*)",      // non-numeric deadline
      "QUERY COUNT(*)\nextra",   // trailing lines on a one-line command
      "JOIN",                    // no join query text
      "JOIN/0 COUNT(*) ON a",    // zero deadline
      "BATCH two\nCOUNT(*)",     // non-numeric count
      "BATCH 2\nCOUNT(*)",       // count does not match lines
      "BATCH 1\nCOUNT(*)\nx",    // count does not match lines
      "BATCH 2\nCOUNT(*)\n\n",   // empty query in batch
  };
  for (const char* payload : bad) {
    auto parsed = ParseRequest(payload);
    EXPECT_FALSE(parsed.ok()) << "accepted: \"" << payload << '"';
    if (!parsed.ok()) {
      EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument)
          << payload;
    }
  }
}

TEST(RequestTest, BatchOverTheCeilingIsRejected) {
  std::string payload = "BATCH " + std::to_string(kMaxBatchQueries + 1);
  for (size_t i = 0; i <= kMaxBatchQueries; ++i) payload += "\nCOUNT(*)";
  auto parsed = ParseRequest(payload);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kInvalidArgument);
}

TEST(ResponseTest, OkRoundTrip) {
  const std::string payload =
      EncodeOkResponse({"estimate 12.5 3.25", "cached 0"});
  EXPECT_EQ(payload, "OK\nestimate 12.5 3.25\ncached 0");
  auto parsed = ParseResponse(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->ok);
  EXPECT_EQ(parsed->lines,
            (std::vector<std::string>{"estimate 12.5 3.25", "cached 0"}));
}

TEST(ResponseTest, ErrorRoundTripKeepsTheTypedCode) {
  const Status busy = Status::ResourceExhausted("admission queue full");
  const std::string payload = EncodeErrorResponse(busy);
  EXPECT_EQ(payload, "ERR SERVER_BUSY admission queue full");
  auto parsed = ParseResponse(payload);
  ASSERT_TRUE(parsed.ok());
  EXPECT_FALSE(parsed->ok);
  EXPECT_EQ(parsed->code, "SERVER_BUSY");
  const Status back = StatusFromWire(parsed->code, parsed->message);
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back.message(), "admission queue full");
}

TEST(ResponseTest, ErrorMessagesAreFlattenedToOneLine) {
  const std::string payload =
      EncodeErrorResponse(Status::InvalidArgument("two\nlines"));
  EXPECT_EQ(payload, "ERR BAD_REQUEST two lines");
}

TEST(ResponseTest, MalformedResponsesAreRejected) {
  EXPECT_FALSE(ParseResponse("").ok());
  EXPECT_FALSE(ParseResponse("YES").ok());
  EXPECT_FALSE(ParseResponse("ERR ").ok());
}

TEST(ResponseTest, EveryStatusCodeMapsToAWireCode) {
  EXPECT_EQ(WireErrorCode(StatusCode::kInvalidArgument), "BAD_REQUEST");
  EXPECT_EQ(WireErrorCode(StatusCode::kOutOfRange), "BAD_REQUEST");
  EXPECT_EQ(WireErrorCode(StatusCode::kNotSupported), "BAD_REQUEST");
  EXPECT_EQ(WireErrorCode(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_EQ(WireErrorCode(StatusCode::kResourceExhausted), "SERVER_BUSY");
  EXPECT_EQ(WireErrorCode(StatusCode::kDeadlineExceeded),
            "DEADLINE_EXCEEDED");
  EXPECT_EQ(WireErrorCode(StatusCode::kFailedPrecondition),
            "FAILED_PRECONDITION");
  EXPECT_EQ(WireErrorCode(StatusCode::kIOError), "INTERNAL");
  EXPECT_EQ(WireErrorCode(StatusCode::kCorruption), "INTERNAL");
  // And the client-side inverse restores the typed code.
  EXPECT_EQ(StatusFromWire("DEADLINE_EXCEEDED", "m").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(StatusFromWire("NOT_FOUND", "m").code(), StatusCode::kNotFound);
  EXPECT_EQ(StatusFromWire("FAILED_PRECONDITION", "m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(StatusFromWire("BAD_REQUEST", "m").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(StatusFromWire("SOMETHING_NEW", "m").code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace entropydb
