#include "sampling/stratified_sampler.h"

#include <gtest/gtest.h>

#include <set>

#include "../test_util.h"
#include "sampling/sample_estimator.h"
#include "sampling/uniform_sampler.h"

namespace entropydb {
namespace {

TEST(StratifiedSamplerTest, RejectsBadArguments) {
  auto table = testutil::RandomTable({4, 4}, 100, 211);
  EXPECT_TRUE(StratifiedSampler::Create(*table, 0, 1, 0.0, 1).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StratifiedSampler::Create(*table, 0, 0, 0.1, 1).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(StratifiedSampler::Create(*table, 0, 9, 0.1, 1).status()
                  .IsInvalidArgument());
}

TEST(StratifiedSamplerTest, EveryStratumRepresented) {
  auto table = testutil::RandomTable({6, 6}, 3000, 212);
  auto sample = StratifiedSampler::Create(*table, 0, 1, 0.01, 2);
  ASSERT_TRUE(sample.ok());
  ExactEvaluator exact(*table);
  auto strata = exact.GroupByCount({0, 1});
  // Collect the (A0, A1) combinations present in the sample.
  std::set<std::pair<Code, Code>> in_sample;
  for (size_t r = 0; r < sample->size(); ++r) {
    in_sample.insert({sample->rows->at(r, 0), sample->rows->at(r, 1)});
  }
  // The whole point of stratification: every existing stratum, however
  // rare, has at least one sample row.
  EXPECT_EQ(in_sample.size(), strata.size());
}

TEST(StratifiedSamplerTest, WeightsExpandToStratumSizes) {
  auto table = testutil::RandomTable({5, 4}, 2000, 213);
  auto sample = StratifiedSampler::Create(*table, 0, 1, 0.02, 3);
  ASSERT_TRUE(sample.ok());
  ExactEvaluator exact(*table);
  auto strata = exact.GroupByCount({0, 1});
  // Sum of weights within each stratum equals the stratum size exactly.
  std::map<std::pair<Code, Code>, double> weight_sums;
  for (size_t r = 0; r < sample->size(); ++r) {
    weight_sums[{sample->rows->at(r, 0), sample->rows->at(r, 1)}] +=
        sample->weights[r];
  }
  for (const auto& [key, count] : strata) {
    const double weight_sum = weight_sums[{key[0], key[1]}];
    EXPECT_NEAR(weight_sum, static_cast<double>(count), 1e-9);
  }
}

TEST(StratifiedSamplerTest, ExactForStratificationAlignedQueries) {
  // A query that is a union of whole strata is answered exactly.
  auto table = testutil::RandomTable({5, 4}, 2000, 214);
  auto sample = StratifiedSampler::Create(*table, 0, 1, 0.02, 4);
  ASSERT_TRUE(sample.ok());
  ExactEvaluator exact(*table);
  SampleEstimator est(*sample);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(2));
  EXPECT_NEAR(est.Count(q).expectation,
              static_cast<double>(exact.Count(q)), 1e-9);
}

TEST(StratifiedSamplerTest, ApproximatelyUnbiasedOffStrata) {
  // Query on an attribute not used for stratification.
  auto table = testutil::RandomTable({5, 4, 6}, 20000, 215);
  ExactEvaluator exact(*table);
  CountingQuery q(3);
  q.Where(2, AttrPredicate::Range(0, 2));
  const double truth = static_cast<double>(exact.Count(q));
  double sum = 0.0;
  const int draws = 15;
  for (int i = 0; i < draws; ++i) {
    auto sample = StratifiedSampler::Create(*table, 0, 1, 0.05, 500 + i);
    ASSERT_TRUE(sample.ok());
    sum += SampleEstimator(*sample).Count(q).expectation;
  }
  EXPECT_NEAR(sum / draws, truth, 0.05 * truth);
}

TEST(StratifiedSamplerTest, DeterministicForSeed) {
  auto table = testutil::RandomTable({4, 4}, 800, 216);
  auto s1 = StratifiedSampler::Create(*table, 0, 1, 0.05, 9);
  auto s2 = StratifiedSampler::Create(*table, 0, 1, 0.05, 9);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), s2->size());
  for (size_t r = 0; r < s1->size(); ++r) {
    EXPECT_EQ(s1->rows->at(r, 1), s2->rows->at(r, 1));
    EXPECT_DOUBLE_EQ(s1->weights[r], s2->weights[r]);
  }
}

TEST(SampleEstimatorTest, VarianceZeroForFullSample) {
  auto table = testutil::RandomTable({4, 4}, 100, 217);
  auto sample = UniformSampler::Create(*table, 1.0, 1);
  ASSERT_TRUE(sample.ok());
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(0));
  auto est = SampleEstimator(*sample).Count(q);
  EXPECT_DOUBLE_EQ(est.variance, 0.0);  // weights are 1
}

}  // namespace
}  // namespace entropydb
