#include "sampling/uniform_sampler.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sampling/sample_estimator.h"

namespace entropydb {
namespace {

TEST(UniformSamplerTest, RejectsBadFraction) {
  auto table = testutil::RandomTable({4, 4}, 100, 201);
  EXPECT_TRUE(UniformSampler::Create(*table, 0.0, 1).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(UniformSampler::Create(*table, 1.5, 1).status()
                  .IsInvalidArgument());
}

TEST(UniformSamplerTest, FullFractionKeepsEverything) {
  auto table = testutil::RandomTable({4, 4}, 200, 202);
  auto sample = UniformSampler::Create(*table, 1.0, 1);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 200u);
  for (double w : sample->weights) EXPECT_DOUBLE_EQ(w, 1.0);
}

TEST(UniformSamplerTest, SampleSizeNearExpectation) {
  auto table = testutil::RandomTable({6, 6}, 20000, 203);
  auto sample = UniformSampler::Create(*table, 0.1, 2);
  ASSERT_TRUE(sample.ok());
  EXPECT_NEAR(static_cast<double>(sample->size()), 2000.0, 150.0);
  EXPECT_DOUBLE_EQ(sample->weights[0], 10.0);
  EXPECT_EQ(sample->name, "Uni");
}

TEST(UniformSamplerTest, DeterministicForSeed) {
  auto table = testutil::RandomTable({4, 4}, 1000, 204);
  auto s1 = UniformSampler::Create(*table, 0.2, 7);
  auto s2 = UniformSampler::Create(*table, 0.2, 7);
  ASSERT_TRUE(s1.ok());
  ASSERT_TRUE(s2.ok());
  ASSERT_EQ(s1->size(), s2->size());
  for (size_t r = 0; r < s1->size(); ++r) {
    EXPECT_EQ(s1->rows->at(r, 0), s2->rows->at(r, 0));
  }
}

TEST(UniformSamplerTest, EstimatorIsApproximatelyUnbiased) {
  auto table = testutil::RandomTable({5, 5}, 20000, 205);
  ExactEvaluator exact(*table);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Range(0, 1));
  const double truth = static_cast<double>(exact.Count(q));
  // Average over several sample draws: the HT estimator mean must approach
  // the true count.
  double sum = 0.0;
  const int draws = 20;
  for (int i = 0; i < draws; ++i) {
    auto sample = UniformSampler::Create(*table, 0.05, 300 + i);
    ASSERT_TRUE(sample.ok());
    sum += SampleEstimator(*sample).Count(q).expectation;
  }
  EXPECT_NEAR(sum / draws, truth, 0.05 * truth);
}

TEST(UniformSamplerTest, SharesDomainsWithBase) {
  auto table = testutil::RandomTable({4, 7}, 500, 206);
  auto sample = UniformSampler::Create(*table, 0.2, 3);
  ASSERT_TRUE(sample.ok());
  EXPECT_TRUE(sample->rows->domain(1) == table->domain(1));
  EXPECT_GT(sample->MemoryBytes(), 0u);
}

}  // namespace
}  // namespace entropydb
