// Sample persistence: .eds round trips and the token-format guard.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sampling/sample_io.h"
#include "sampling/stratified_sampler.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

TEST(SampleIoTest, RoundTripPreservesRowsWeightsAndDomains) {
  auto table = testutil::RandomTable({5, 4, 6}, 2000, 401);
  auto drawn = StratifiedSampler::Create(*table, 0, 1, 0.05, 3);
  ASSERT_TRUE(drawn.ok());
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_io_test.eds").string();
  fs::remove(path);
  ASSERT_TRUE(SaveSample(*drawn, path).ok());
  auto loaded = LoadSample(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->name, drawn->name);
  EXPECT_DOUBLE_EQ(loaded->fraction, drawn->fraction);
  ASSERT_EQ(loaded->size(), drawn->size());
  for (size_t r = 0; r < drawn->size(); ++r) {
    EXPECT_DOUBLE_EQ(loaded->weights[r], drawn->weights[r]);
    for (AttrId a = 0; a < 3; ++a) {
      EXPECT_EQ(loaded->rows->at(r, a), drawn->rows->at(r, a));
    }
  }
  for (AttrId a = 0; a < 3; ++a) {
    EXPECT_TRUE(loaded->rows->domain(a) == drawn->rows->domain(a));
  }
  fs::remove(path);
}

TEST(SampleIoTest, SaveRejectsWhitespaceNames) {
  auto table = testutil::RandomTable({3, 3}, 200, 403);
  auto drawn = StratifiedSampler::Create(*table, 0, 1, 0.1, 5);
  ASSERT_TRUE(drawn.ok());
  // The format is token-oriented; a name with spaces would save fine but
  // never load again, so Save must refuse it up front.
  drawn->name = "Strat(my attr,dest)";
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_io_bad.eds").string();
  EXPECT_TRUE(SaveSample(*drawn, path).IsInvalidArgument());
}

TEST(SampleIoTest, LoadRejectsMissingAndCorruptFiles) {
  EXPECT_FALSE(LoadSample("/nonexistent/sample.eds").ok());
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_io_corrupt.eds").string();
  std::ofstream(path) << "NOT_A_SAMPLE\n";
  EXPECT_FALSE(LoadSample(path).ok());
  fs::remove(path);
}

}  // namespace
}  // namespace entropydb
