// The row-group index behind indexed sample evaluation: structural
// invariants, bitwise identity of indexed vs. scan Count/Sum (randomized
// predicates over stratified + uniform samples), .eds v2 round trips,
// v1 rebuild-on-load compat, and routing-decision identity between an
// indexed and an unindexed store.

#include <filesystem>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/query_router.h"
#include "engine/source_store.h"
#include "sampling/sample_estimator.h"
#include "sampling/sample_index.h"
#include "sampling/sample_io.h"
#include "sampling/stratified_sampler.h"
#include "sampling/uniform_sampler.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

/// A random conjunctive query mixing ANY / point / range / set predicates.
CountingQuery RandomQuery(Rng& rng, const Table& t) {
  CountingQuery q(t.num_attributes());
  for (AttrId a = 0; a < t.num_attributes(); ++a) {
    const uint32_t dom = t.domain(a).size();
    switch (rng.Uniform(5)) {
      case 0: {  // point
        q.Where(a, AttrPredicate::Point(static_cast<Code>(rng.Uniform(dom))));
        break;
      }
      case 1: {  // range
        Code lo = static_cast<Code>(rng.Uniform(dom));
        Code hi = static_cast<Code>(rng.Uniform(dom));
        if (hi < lo) std::swap(lo, hi);
        q.Where(a, AttrPredicate::Range(lo, hi));
        break;
      }
      case 2: {  // set
        std::vector<Code> codes;
        const size_t k = 1 + rng.Uniform(3);
        for (size_t i = 0; i < k; ++i) {
          codes.push_back(static_cast<Code>(rng.Uniform(dom)));
        }
        q.Where(a, AttrPredicate::InSet(std::move(codes)));
        break;
      }
      default:
        break;  // ANY
    }
  }
  return q;
}

/// The same sample with and without its index attached.
std::pair<WeightedSample, WeightedSample> IndexedAndScan(
    const WeightedSample& drawn) {
  WeightedSample indexed = drawn;
  indexed.index = SampleIndex::Build(*indexed.rows);
  WeightedSample scan = drawn;
  scan.index = nullptr;
  return {std::move(indexed), std::move(scan)};
}

TEST(SampleIndexTest, BuildGroupsEveryRowAscendingByCode) {
  auto table = testutil::RandomTable({6, 5, 9}, 3000, 811);
  auto index = SampleIndex::Build(*table);
  ASSERT_EQ(index->num_attributes(), 3u);
  ASSERT_EQ(index->num_rows(), table->num_rows());
  for (AttrId a = 0; a < 3; ++a) {
    const SampleIndex::AttrIndex& idx = index->attr(a);
    ASSERT_EQ(idx.offsets.size(), table->domain(a).size() + 1);
    EXPECT_EQ(idx.offsets.front(), 0u);
    EXPECT_EQ(idx.offsets.back(), table->num_rows());
    for (Code c = 0; c < table->domain(a).size(); ++c) {
      for (uint32_t i = idx.offsets[c]; i < idx.offsets[c + 1]; ++i) {
        EXPECT_EQ(table->at(idx.perm[i], a), c);
        if (i > idx.offsets[c]) EXPECT_LT(idx.perm[i - 1], idx.perm[i]);
      }
    }
  }
}

TEST(SampleIndexTest, CandidateCountMatchesPredicateSemantics) {
  auto table = testutil::RandomTable({7, 4}, 1200, 977);
  auto index = SampleIndex::Build(*table);
  Rng rng(31);
  for (int trial = 0; trial < 50; ++trial) {
    CountingQuery q = RandomQuery(rng, *table);
    for (AttrId a = 0; a < 2; ++a) {
      size_t expected = 0;
      for (size_t r = 0; r < table->num_rows(); ++r) {
        expected += q.predicate(a).Matches(table->at(r, a)) ? 1 : 0;
      }
      EXPECT_EQ(index->CandidateCount(a, q.predicate(a)), expected);
    }
  }
  // Out-of-domain predicates match nothing.
  EXPECT_EQ(index->CandidateCount(0, AttrPredicate::Point(99)), 0u);
  EXPECT_EQ(index->CandidateCount(0, AttrPredicate::Range(90, 99)), 0u);
}

TEST(SampleIndexTest, IndexedCountAndSumAreBitwiseEqualToScan) {
  auto table = testutil::RandomTable({12, 8, 15, 6}, 20000, 1031);
  auto strat = StratifiedSampler::Create(*table, 0, 2, 0.05, 11);
  auto uni = UniformSampler::Create(*table, 0.05, 13);
  ASSERT_TRUE(strat.ok());
  ASSERT_TRUE(uni.ok());
  std::vector<double> values(table->domain(1).size());
  for (size_t i = 0; i < values.size(); ++i) values[i] = 0.5 + 1.5 * i;

  for (const WeightedSample* drawn :
       {&*strat, &*uni}) {
    auto [indexed, scan] = IndexedAndScan(*drawn);
    SampleEstimator with_index(indexed);
    SampleEstimator without(scan);
    Rng rng(4242);
    size_t zero_matches = 0;
    for (int trial = 0; trial < 300; ++trial) {
      CountingQuery q = RandomQuery(rng, *table);
      const QueryEstimate a = with_index.Count(q);
      const QueryEstimate b = without.Count(q);
      // Bitwise: EXPECT_EQ on doubles, not NEAR — the accumulation order
      // must be identical, not merely close.
      EXPECT_EQ(a.expectation, b.expectation);
      EXPECT_EQ(a.variance, b.variance);
      const QueryEstimate sa = with_index.Sum(1, values, q);
      const QueryEstimate sb = without.Sum(1, values, q);
      EXPECT_EQ(sa.expectation, sb.expectation);
      EXPECT_EQ(sa.variance, sb.variance);
      zero_matches += b.expectation == 0.0 ? 1 : 0;
    }
    // The workload must exercise the miss floor too.
    EXPECT_GT(zero_matches, 0u);
  }
}

TEST(SampleIndexTest, FromPartsRejectsCorruptIndexes) {
  auto table = testutil::RandomTable({5, 4}, 400, 551);
  auto good = SampleIndex::Build(*table);
  // Shape mismatch.
  {
    std::vector<SampleIndex::AttrIndex> attrs{good->attr(0)};
    EXPECT_TRUE(SampleIndex::FromParts(*table, std::move(attrs))
                    .status()
                    .IsCorruption());
  }
  // Row in the wrong group.
  {
    std::vector<SampleIndex::AttrIndex> attrs{good->attr(0), good->attr(1)};
    std::swap(attrs[0].perm[0], attrs[0].perm[attrs[0].perm.size() - 1]);
    EXPECT_TRUE(SampleIndex::FromParts(*table, std::move(attrs))
                    .status()
                    .IsCorruption());
  }
  // Offsets not ending at the row count.
  {
    std::vector<SampleIndex::AttrIndex> attrs{good->attr(0), good->attr(1)};
    attrs[1].offsets.back() -= 1;
    EXPECT_TRUE(SampleIndex::FromParts(*table, std::move(attrs))
                    .status()
                    .IsCorruption());
  }
  // The untouched parts pass.
  {
    std::vector<SampleIndex::AttrIndex> attrs{good->attr(0), good->attr(1)};
    EXPECT_TRUE(SampleIndex::FromParts(*table, std::move(attrs)).ok());
  }
}

TEST(SampleIndexTest, EdsV2RoundTripsTheIndex) {
  auto table = testutil::RandomTable({6, 7, 5}, 3000, 661);
  auto drawn = StratifiedSampler::Create(*table, 0, 1, 0.08, 19);
  ASSERT_TRUE(drawn.ok());
  drawn->index = SampleIndex::Build(*drawn->rows);
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_index_v2.eds").string();
  fs::remove(path);
  ASSERT_TRUE(SaveSample(*drawn, path).ok());
  auto loaded = LoadSample(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_NE(loaded->index, nullptr);
  ASSERT_EQ(loaded->index->num_attributes(), 3u);
  for (AttrId a = 0; a < 3; ++a) {
    EXPECT_EQ(loaded->index->attr(a).offsets, drawn->index->attr(a).offsets);
    EXPECT_EQ(loaded->index->attr(a).perm, drawn->index->attr(a).perm);
  }
  // And the loaded estimator answers bitwise like the in-memory one.
  SampleEstimator before(*drawn), after(*loaded);
  Rng rng(99);
  for (int trial = 0; trial < 50; ++trial) {
    CountingQuery q = RandomQuery(rng, *table);
    EXPECT_EQ(before.Count(q).expectation, after.Count(q).expectation);
    EXPECT_EQ(before.Count(q).variance, after.Count(q).variance);
  }
  fs::remove(path);
}

TEST(SampleIndexTest, IndexlessSamplesSaveAsV2WithoutIndex) {
  auto table = testutil::RandomTable({4, 4}, 500, 663);
  auto drawn = UniformSampler::Create(*table, 0.1, 23);
  ASSERT_TRUE(drawn.ok());
  ASSERT_EQ(drawn->index, nullptr);
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_noindex.eds").string();
  fs::remove(path);
  ASSERT_TRUE(SaveSample(*drawn, path).ok());
  auto loaded = LoadSample(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // "index 0" is an explicit builder choice (--sample-index off), honored
  // on load rather than rebuilt.
  EXPECT_EQ(loaded->index, nullptr);
  fs::remove(path);
}

TEST(SampleIndexTest, V1FilesRebuildTheIndexOnLoad) {
  auto table = testutil::RandomTable({5, 6}, 800, 733);
  auto drawn = StratifiedSampler::Create(*table, 0, 1, 0.1, 29);
  ASSERT_TRUE(drawn.ok());
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_v1.eds").string();
  fs::remove(path);
  ASSERT_TRUE(SaveSample(*drawn, path).ok());
  // Rewrite the file as a PR 3-era v1: old header, no index block, no
  // checksum footer (v1 predates checksummed formats).
  {
    std::ifstream in(path);
    std::stringstream body;
    body << in.rdbuf();
    std::string text = body.str();
    const size_t index_at = text.find("\nindex ");
    ASSERT_NE(index_at, std::string::npos);
    text.resize(index_at + 1);  // drop the index block, keep the newline
    const std::string v3 = "ENTROPYDB_SAMPLE_V3";
    ASSERT_EQ(text.compare(0, v3.size(), v3), 0);
    text[v3.size() - 1] = '1';  // V3 -> V1 header
    std::ofstream out(path);
    out << text;
  }
  auto loaded = LoadSample(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  // v1 compat: the index is rebuilt on open, identical to a fresh build.
  ASSERT_NE(loaded->index, nullptr);
  auto fresh = SampleIndex::Build(*drawn->rows);
  for (AttrId a = 0; a < 2; ++a) {
    EXPECT_EQ(loaded->index->attr(a).offsets, fresh->attr(a).offsets);
    EXPECT_EQ(loaded->index->attr(a).perm, fresh->attr(a).perm);
  }
  fs::remove(path);
}

TEST(SampleIndexTest, CorruptV2IndexFailsTheLoad) {
  auto table = testutil::RandomTable({4, 5}, 600, 737);
  auto drawn = StratifiedSampler::Create(*table, 0, 1, 0.1, 31);
  ASSERT_TRUE(drawn.ok());
  drawn->index = SampleIndex::Build(*drawn->rows);
  const std::string path =
      (fs::temp_directory_path() / "entropydb_sample_badidx.eds").string();
  fs::remove(path);
  ASSERT_TRUE(SaveSample(*drawn, path).ok());
  // Flip one permutation entry: the row lands in a group whose code it
  // does not carry. The load must fail loudly, not serve skewed answers.
  // The file is downgraded to a checksum-less v2 first so the failure
  // exercises the index-invariant validation, not the CRC footer.
  {
    std::ifstream in(path);
    std::stringstream body;
    body << in.rdbuf();
    std::string text = body.str();
    const std::string footer_tag = "crc32c ";
    ASSERT_GE(text.size(), 16u);
    ASSERT_EQ(text.compare(text.size() - 16, footer_tag.size(), footer_tag),
              0);
    text.resize(text.size() - 16);
    const std::string v3 = "ENTROPYDB_SAMPLE_V3";
    ASSERT_EQ(text.compare(0, v3.size(), v3), 0);
    text[v3.size() - 1] = '2';  // V3 -> V2: parsed, but not checksummed
    const size_t perm_at = text.find("\nperm ");
    ASSERT_NE(perm_at, std::string::npos);
    const size_t first = perm_at + 6;
    const size_t end = text.find_first_of(" \n", first);
    const uint32_t r = static_cast<uint32_t>(
        std::stoul(text.substr(first, end - first)));
    const uint32_t other = (r + 1) % static_cast<uint32_t>(drawn->size());
    text.replace(first, end - first, std::to_string(other));
    std::ofstream out(path);
    out << text;
  }
  auto loaded = LoadSample(path);
  // Either the swap broke a group invariant (the common case) or, in the
  // degenerate case where codes happen to agree, ordering broke instead;
  // both are Corruption.
  EXPECT_TRUE(loaded.status().IsCorruption()) << loaded.status().ToString();
  fs::remove(path);
}

TEST(SampleIndexTest, RoutingDecisionsAndAnswerAllIdenticalWithIndexes) {
  // Planted correlations (the hybrid-router fixture's shape): (2, 3) is
  // strongly diagonal, so its rare off-diagonal cells are exactly where a
  // stratified sample beats a summary and routing flips to the sample.
  Rng gen(1999);
  std::vector<std::vector<Code>> raw(8000, std::vector<Code>(4));
  for (auto& row : raw) {
    row[0] = static_cast<Code>(gen.Uniform(8));
    row[1] = gen.NextBernoulli(0.9) ? row[0]
                                    : static_cast<Code>(gen.Uniform(8));
    row[2] = static_cast<Code>(gen.Uniform(10));
    row[3] = gen.NextBernoulli(0.95) ? row[2]
                                     : static_cast<Code>(gen.Uniform(10));
  }
  auto table = testutil::MakeTable({8, 8, 10, 10}, raw);
  StoreOptions with, without;
  with.num_summaries = without.num_summaries = 2;
  with.total_budget = without.total_budget = 160;
  with.num_stratified_samples = without.num_stratified_samples = 2;
  with.uniform_sample = without.uniform_sample = true;
  with.sample_fraction = without.sample_fraction = 0.05;
  with.summary.solver.max_iterations =
      without.summary.solver.max_iterations = 80;
  with.sample_index = true;
  without.sample_index = false;
  auto indexed = SourceStore::Build(*table, with);
  auto scan = SourceStore::Build(*table, without);
  ASSERT_TRUE(indexed.ok());
  ASSERT_TRUE(scan.ok());
  ASSERT_GT((*indexed)->num_samples(), 0u);
  for (size_t s = 0; s < (*indexed)->num_samples(); ++s) {
    EXPECT_NE((*indexed)->sample_entry(s).sample->index, nullptr);
    EXPECT_EQ((*scan)->sample_entry(s).sample->index, nullptr);
  }

  // Random predicate mixes PLUS rare off-diagonal (2, 3) cells — the
  // selective slice the hybrid stage routes to the stratified sample.
  std::vector<CountingQuery> workload;
  Rng rng(555);
  for (int trial = 0; trial < 90; ++trial) {
    workload.push_back(RandomQuery(rng, *table));
  }
  ExactEvaluator exact(*table);
  for (const auto& [key, count] : exact.GroupByCount({2, 3})) {
    if (key[0] == key[1] || count > 4) continue;
    CountingQuery q(4);
    q.Where(2, AttrPredicate::Point(key[0]))
        .Where(3, AttrPredicate::Point(key[1]));
    workload.push_back(q);
    if (workload.size() >= 120) break;
  }

  QueryRouter indexed_router(*indexed), scan_router(*scan);
  size_t to_sample = 0;
  for (const CountingQuery& q : workload) {
    RouteDecision di, ds;
    auto ei = indexed_router.Answer(q, &di);
    auto es = scan_router.Answer(q, &ds);
    ASSERT_TRUE(ei.ok());
    ASSERT_TRUE(es.ok());
    // The ROADMAP's bar: the index must never change which source wins,
    // nor the answer — bitwise.
    EXPECT_EQ(ei->expectation, es->expectation);
    EXPECT_EQ(ei->variance, es->variance);
    EXPECT_EQ(di.from_sample, ds.from_sample);
    EXPECT_EQ(di.index, ds.index);
    EXPECT_EQ(di.sample_index, ds.sample_index);
    EXPECT_EQ(di.summary_variance, ds.summary_variance);
    EXPECT_EQ(di.sample_variance, ds.sample_variance);
    to_sample += di.from_sample ? 1 : 0;
  }
  // The workload must actually exercise the hybrid stage both ways.
  EXPECT_GT(to_sample, 0u);
  EXPECT_LT(to_sample, workload.size());

  // Concurrent fan-out over the indexed store: indexed evaluation keeps
  // its candidate scratch thread-local, so the batched answers must be
  // bitwise the serial ones. (The AnswerAll name keeps this inside the
  // TSan CI job's filter.)
  std::vector<RouteDecision> batch_decisions;
  auto batch = indexed_router.AnswerAll(workload, &batch_decisions);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < workload.size(); ++i) {
    RouteDecision dec;
    auto serial = indexed_router.Answer(workload[i], &dec);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i].expectation, serial->expectation);
    EXPECT_EQ((*batch)[i].variance, serial->variance);
    EXPECT_EQ(batch_decisions[i].from_sample, dec.from_sample);
  }
}

}  // namespace
}  // namespace entropydb
