// SampleEstimator edge cases: the zero-match variance floor (a sample that
// saw no matching row must NOT report itself perfectly confident), empty
// samples/strata, and the HT SUM estimator.

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "sampling/sample_estimator.h"
#include "sampling/stratified_sampler.h"
#include "sampling/uniform_sampler.h"

namespace entropydb {
namespace {

TEST(SampleEstimatorTest, ZeroMatchingRowsReportsFiniteMissFloor) {
  auto table = testutil::RandomTable({4, 4}, 500, 301);
  auto sample = UniformSampler::Create(*table, 0.1, 5);
  ASSERT_TRUE(sample.ok());
  SampleEstimator est(*sample);
  // Weight is 10 for every row, so the floor is 10 * 9.
  EXPECT_DOUBLE_EQ(est.MissFloor(), 90.0);

  // A predicate no sampled row can match (empty code set).
  CountingQuery q(2);
  q.Where(0, AttrPredicate::InSet({}));
  auto e = est.Count(q);
  EXPECT_DOUBLE_EQ(e.expectation, 0.0);
  EXPECT_TRUE(std::isfinite(e.variance));
  EXPECT_DOUBLE_EQ(e.variance, 90.0);
}

TEST(SampleEstimatorTest, FullSampleMissFloorIsZero) {
  // fraction 1 => weights 1: a zero count from the full data IS exact, so
  // the floor must not manufacture uncertainty.
  auto table = testutil::RandomTable({4, 4}, 200, 302);
  auto sample = UniformSampler::Create(*table, 1.0, 5);
  ASSERT_TRUE(sample.ok());
  SampleEstimator est(*sample);
  EXPECT_DOUBLE_EQ(est.MissFloor(), 0.0);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::InSet({}));
  EXPECT_DOUBLE_EQ(est.Count(q).variance, 0.0);
}

TEST(SampleEstimatorTest, EmptyStratifiedSampleStaysFinite) {
  // An empty base table has no strata at all; the estimator must still
  // produce a finite answer from the nominal 1/fraction weight.
  auto table = testutil::MakeTable({3, 3}, {});
  ASSERT_NE(table, nullptr);
  auto sample = StratifiedSampler::Create(*table, 0, 1, 0.02, 7);
  ASSERT_TRUE(sample.ok());
  EXPECT_EQ(sample->size(), 0u);
  SampleEstimator est(*sample);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(1));
  auto e = est.Count(q);
  EXPECT_DOUBLE_EQ(e.expectation, 0.0);
  EXPECT_TRUE(std::isfinite(e.variance));
  EXPECT_DOUBLE_EQ(e.variance, 50.0 * 49.0);  // nominal weight 1/0.02
}

TEST(SampleEstimatorTest, SumMatchesHandComputedExpansion) {
  // Two-attribute table where every row is kept (fraction 1 on a tiny
  // stratified draw would complicate weights; use uniform at 0.5 and check
  // the expansion identity instead).
  auto table = testutil::RandomTable({3, 4}, 2000, 303);
  auto sample = UniformSampler::Create(*table, 0.5, 11);
  ASSERT_TRUE(sample.ok());
  SampleEstimator est(*sample);
  std::vector<double> values = {1.0, 10.0, 100.0};
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Range(0, 1));
  auto sum = est.Sum(0, values, q);
  // Hand-compute from the sample itself.
  double expect = 0.0, var = 0.0;
  const Table& rows = *sample->rows;
  for (size_t r = 0; r < rows.num_rows(); ++r) {
    if (rows.at(r, 1) > 1) continue;
    const double w = sample->weights[r];
    const double v = values[rows.at(r, 0)];
    expect += w * v;
    var += w * (w - 1.0) * v * v;
  }
  EXPECT_NEAR(sum.expectation, expect, 1e-9);
  EXPECT_NEAR(sum.variance, var, 1e-9);
}

TEST(SampleEstimatorTest, SumZeroMatchFloorScalesByLargestValue) {
  auto table = testutil::RandomTable({3, 4}, 500, 304);
  auto sample = UniformSampler::Create(*table, 0.1, 13);
  ASSERT_TRUE(sample.ok());
  SampleEstimator est(*sample);
  std::vector<double> values = {1.0, -20.0, 3.0};
  CountingQuery q(2);
  q.Where(1, AttrPredicate::InSet({}));
  auto sum = est.Sum(0, values, q);
  EXPECT_DOUBLE_EQ(sum.expectation, 0.0);
  EXPECT_DOUBLE_EQ(sum.variance, 90.0 * 400.0);  // floor * max(values^2)
}

}  // namespace
}  // namespace entropydb
