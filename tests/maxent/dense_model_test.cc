#include "maxent/dense_model.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace entropydb {
namespace {

TEST(DenseModelTest, RefusesHugeTupleSpaces) {
  auto reg = VariableRegistry::Create({1 << 12, 1 << 12},
                                      {std::vector<double>(1 << 12, 1.0),
                                       std::vector<double>(1 << 12, 1.0)},
                                      {}, 10);
  ASSERT_TRUE(reg.ok());
  EXPECT_TRUE(DenseMaxEntModel::Create(*reg, 1 << 20)
                  .status()
                  .IsResourceExhausted());
}

TEST(DenseModelTest, TupleProbabilitiesSumToOne) {
  auto table = testutil::RandomTable({3, 4}, 150, 111);
  auto reg = testutil::MakeRegistry(
      *table, testutil::RandomDisjointStats(*table, 0, 1, 3, 112));
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st = ModelState::InitialState(reg);
  double total = 0.0;
  for (uint64_t t = 0; t < dense->space().size(); ++t) {
    total += dense->TupleProbability(st, dense->space().TupleAt(t));
  }
  EXPECT_NEAR(total, 1.0, 1e-10);
}

TEST(DenseModelTest, EvaluateIsSumOfWeights) {
  // Two attributes of size 2, no stats: P = (a0+a1)(b0+b1).
  auto table = testutil::MakeTable({2, 2}, {{0, 0}, {1, 1}});
  auto reg = testutil::MakeRegistry(*table, {});
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st;
  st.alpha = {{2.0, 3.0}, {5.0, 7.0}};
  EXPECT_DOUBLE_EQ(dense->EvaluateUnmasked(st), 5.0 * 12.0);
}

TEST(DenseModelTest, DeltaMultipliesOnlyItsRectangle) {
  auto table = testutil::MakeTable({2, 2}, {{0, 0}, {1, 1}});
  auto stat = Make2DStatistic(0, {0, 0}, 1, {0, 0}, 1.0);
  auto reg = testutil::MakeRegistry(*table, {stat});
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st;
  st.alpha = {{1.0, 1.0}, {1.0, 1.0}};
  st.delta = {10.0};
  // P = 10*1 + 1 + 1 + 1 = 13.
  EXPECT_DOUBLE_EQ(dense->EvaluateUnmasked(st), 13.0);
  EXPECT_DOUBLE_EQ(dense->DeltaDerivative(st, 0), 1.0);
  EXPECT_DOUBLE_EQ(dense->AlphaDerivative(st, 0, 0), 10.0 + 1.0);
  EXPECT_DOUBLE_EQ(dense->AlphaDerivative(st, 0, 1), 2.0);
}

TEST(DenseModelTest, NaiveSolverConvergesOnSmallInstance) {
  auto table = testutil::RandomTable({3, 3}, 200, 113);
  auto reg = testutil::MakeRegistry(
      *table, testutil::RandomDisjointStats(*table, 0, 1, 2, 114));
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st = ModelState::InitialState(reg);
  auto report = dense->SolveNaive(&st, 400, 1e-9);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.final_error, 1e-9);
}

TEST(DenseModelTest, CountEstimateOnExamplePaper) {
  // Paper Sec 2 intro example: 500k flights over 50x50 states, uniform ->
  // CA->NY estimate = 500000 / 2500 = 200.
  std::vector<uint32_t> sizes{50, 50};
  std::vector<std::vector<double>> targets(
      2, std::vector<double>(50, 10000.0));
  auto reg = VariableRegistry::Create(sizes, targets, {}, 500000.0);
  ASSERT_TRUE(reg.ok());
  auto dense = DenseMaxEntModel::Create(*reg);
  ASSERT_TRUE(dense.ok());
  ModelState st = ModelState::InitialState(*reg);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(0)).Where(1, AttrPredicate::Point(1));
  EXPECT_NEAR(dense->CountEstimate(st, q), 200.0, 1e-6);
}

}  // namespace
}  // namespace entropydb
