#include "maxent/polynomial.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "maxent/dense_model.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

/// Random positive model state (not solved; evaluation must agree anyway).
ModelState RandomState(const VariableRegistry& reg, uint64_t seed) {
  Rng rng(seed);
  ModelState st = ModelState::InitialState(reg);
  for (auto& fam : st.alpha) {
    for (auto& a : fam) a = 0.05 + rng.NextDouble();
  }
  for (auto& d : st.delta) d = 0.1 + 2.0 * rng.NextDouble();
  return st;
}

QueryMask RandomMask(const VariableRegistry& reg, uint64_t seed) {
  Rng rng(seed);
  QueryMask mask(reg.num_attributes());
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    switch (rng.Uniform(3)) {
      case 0:
        break;  // ANY
      case 1: {  // range
        uint32_t n = reg.domain_size(a);
        Code lo = static_cast<Code>(rng.Uniform(n));
        Code hi = lo + static_cast<Code>(rng.Uniform(n - lo));
        std::vector<uint8_t> allow(n, 0);
        for (Code v = lo; v <= hi; ++v) allow[v] = 1;
        mask.Restrict(a, std::move(allow));
        break;
      }
      default: {  // random subset
        uint32_t n = reg.domain_size(a);
        std::vector<uint8_t> allow(n, 0);
        for (Code v = 0; v < n; ++v) allow[v] = rng.NextBernoulli(0.6);
        mask.Restrict(a, std::move(allow));
      }
    }
  }
  return mask;
}

TEST(PolynomialTest, OneDOnlyFactorizes) {
  auto table = RandomTable({4, 5, 3}, 200, 1);
  auto reg = MakeRegistry(*table, {});
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->NumComponents(), 0u);
  EXPECT_EQ(poly->NumGroups(), 0u);
  EXPECT_DOUBLE_EQ(poly->UncompressedTermCount(), 60.0);

  // P = (sum alpha0)(sum alpha1)(sum alpha2).
  ModelState st = RandomState(reg, 2);
  auto ctx = poly->EvaluateUnmasked(st);
  double expect = 1.0;
  for (AttrId a = 0; a < 3; ++a) {
    double t = 0.0;
    for (double v : st.alpha[a]) t += v;
    expect *= t;
  }
  EXPECT_NEAR(ctx.value, expect, 1e-12 * std::abs(expect));
}

TEST(PolynomialTest, PaperExample33) {
  // Example 3.3: R(A,B,C), two values per domain, 2-D statistics on AB and
  // BC. We verify the compressed polynomial against dense enumeration.
  auto table = testutil::MakeTable(
      {2, 2, 2},
      {{0, 0, 0}, {0, 1, 1}, {0, 1, 1}, {1, 0, 0}, {1, 1, 0}});
  std::vector<MultiDimStatistic> stats = {
      Make2DStatistic(0, {0, 0}, 1, {0, 0}, 1.0),   // A=a1 ^ B=b1
      Make2DStatistic(0, {1, 1}, 1, {1, 1}, 1.0),   // A=a2 ^ B=b2
      Make2DStatistic(1, {0, 0}, 2, {0, 0}, 2.0),   // B=b1 ^ C=c1
      Make2DStatistic(1, {1, 1}, 2, {0, 0}, 1.0),   // B=b2 ^ C=c1
  };
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  // One component {A, B, C}; compatible sets: 4 singletons plus
  // {AB_11, BC_11}, {AB_11, BC_21}? (B ranges must overlap): AB_11 has B=b1,
  // so it pairs only with BC on b1; AB_22 pairs only with BC on b2.
  EXPECT_EQ(poly->NumComponents(), 1u);
  EXPECT_EQ(poly->NumGroups(), 6u);

  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st = RandomState(reg, 3);
  EXPECT_NEAR(poly->EvaluateUnmasked(st).value, dense->EvaluateUnmasked(st),
              1e-12);
}

struct SweepParam {
  std::vector<uint32_t> domains;
  std::vector<std::pair<AttrId, AttrId>> pairs;
  size_t stats_per_pair;
  uint64_t seed;
};

class PolynomialSweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(PolynomialSweepTest, CompressedMatchesDense) {
  const auto& p = GetParam();
  auto table = RandomTable(p.domains, 400, p.seed);
  std::vector<MultiDimStatistic> stats;
  for (size_t i = 0; i < p.pairs.size(); ++i) {
    auto s = RandomDisjointStats(*table, p.pairs[i].first, p.pairs[i].second,
                                 p.stats_per_pair, p.seed + i + 1);
    stats.insert(stats.end(), s.begin(), s.end());
  }
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());

  ModelState st = RandomState(reg, p.seed + 100);

  // Unmasked evaluation.
  auto ctx = poly->EvaluateUnmasked(st);
  double dense_p = dense->EvaluateUnmasked(st);
  ASSERT_GT(dense_p, 0.0);
  EXPECT_NEAR(ctx.value / dense_p, 1.0, 1e-10);

  // Masked evaluations.
  for (int trial = 0; trial < 6; ++trial) {
    QueryMask mask = RandomMask(reg, p.seed + 200 + trial);
    double compressed = poly->Evaluate(st, mask).value;
    double dense_masked = dense->Evaluate(st, mask);
    EXPECT_NEAR(compressed, dense_masked,
                1e-10 * std::max(1.0, std::abs(dense_masked)));
  }

  // Alpha derivatives, every attribute and value.
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    auto got = poly->AlphaDerivatives(st, ctx, a);
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      double want = dense->AlphaDerivative(st, a, v);
      EXPECT_NEAR(got[v], want, 1e-10 * std::max(1.0, std::abs(want)))
          << "attr " << a << " value " << v;
    }
  }

  // Delta derivatives.
  for (uint32_t j = 0; j < reg.num_multi_dim(); ++j) {
    double want = dense->DeltaDerivative(st, j);
    EXPECT_NEAR(poly->DeltaDerivative(st, ctx, j), want,
                1e-10 * std::max(1.0, std::abs(want)))
        << "stat " << j;
  }
}

TEST_P(PolynomialSweepTest, OvercompletenessIdentity) {
  // Eq 7 / Eq 8 consequence: for every attribute family,
  // sum_v alpha_v * dP/dalpha_v == P.
  const auto& p = GetParam();
  auto table = RandomTable(p.domains, 300, p.seed);
  std::vector<MultiDimStatistic> stats;
  for (size_t i = 0; i < p.pairs.size(); ++i) {
    auto s = RandomDisjointStats(*table, p.pairs[i].first, p.pairs[i].second,
                                 p.stats_per_pair, p.seed + i + 1);
    stats.insert(stats.end(), s.begin(), s.end());
  }
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = RandomState(reg, p.seed + 300);
  auto ctx = poly->EvaluateUnmasked(st);
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    auto deriv = poly->AlphaDerivatives(st, ctx, a);
    double sum = 0.0;
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      sum += st.alpha[a][v] * deriv[v];
    }
    EXPECT_NEAR(sum / ctx.value, 1.0, 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PolynomialSweepTest,
    ::testing::Values(
        // Single pair, one component.
        SweepParam{{4, 5}, {{0, 1}}, 4, 11},
        // Chain: two pairs sharing attribute 1 (the paper's Eq 13 shape).
        SweepParam{{4, 5, 3}, {{0, 1}, {1, 2}}, 3, 12},
        // Disjoint pairs: two separate components.
        SweepParam{{3, 4, 3, 4}, {{0, 1}, {2, 3}}, 3, 13},
        // Three pairs sharing a hub attribute (the Ent1&2&3 shape).
        SweepParam{{3, 3, 4, 4}, {{0, 3}, {1, 3}, {2, 3}}, 3, 14},
        // Free attribute alongside a component.
        SweepParam{{4, 4, 5}, {{0, 1}}, 5, 15},
        // Denser statistics.
        SweepParam{{6, 6}, {{0, 1}}, 12, 16},
        // Four attributes fully chained.
        SweepParam{{3, 3, 3, 3}, {{0, 1}, {1, 2}, {2, 3}}, 2, 17}));

TEST(PolynomialTest, ThreeDStatisticSupported) {
  // Sec 4.1's single 3-D statistic example: A=3 ^ B=4 ^ C=5.
  auto table = RandomTable({6, 6, 6}, 200, 21);
  MultiDimStatistic s3;
  s3.attrs = {0, 1, 2};
  s3.ranges = {{3, 3}, {4, 4}, {5, 5}};
  s3.target = 2.0;
  auto reg = MakeRegistry(*table, {s3});
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->NumGroups(), 1u);
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st = RandomState(reg, 22);
  EXPECT_NEAR(poly->EvaluateUnmasked(st).value, dense->EvaluateUnmasked(st),
              1e-10);
}

TEST(PolynomialTest, Mixed2DAnd3DStatisticsMatchDense) {
  // 2-D statistics on (0,1) combined with a 3-D statistic spanning
  // (0,1,2): the closure must mix arities correctly.
  auto table = RandomTable({4, 4, 4}, 300, 61);
  auto stats = RandomDisjointStats(*table, 0, 1, 3, 62);
  MultiDimStatistic s3;
  s3.attrs = {0, 1, 2};
  s3.ranges = {{0, 2}, {1, 3}, {0, 1}};
  ExactEvaluator eval(*table);
  CountingQuery cq(3);
  cq.Where(0, AttrPredicate::Range(0, 2));
  cq.Where(1, AttrPredicate::Range(1, 3));
  cq.Where(2, AttrPredicate::Range(0, 1));
  s3.target = static_cast<double>(eval.Count(cq));
  stats.push_back(s3);

  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState st = RandomState(reg, 63);
  auto ctx = poly->EvaluateUnmasked(st);
  EXPECT_NEAR(ctx.value, dense->EvaluateUnmasked(st),
              1e-10 * std::abs(dense->EvaluateUnmasked(st)));
  for (uint32_t j = 0; j < reg.num_multi_dim(); ++j) {
    double want = dense->DeltaDerivative(st, j);
    EXPECT_NEAR(poly->DeltaDerivative(st, ctx, j), want,
                1e-10 * std::max(1.0, std::abs(want)));
  }
  for (AttrId a = 0; a < 3; ++a) {
    auto got = poly->AlphaDerivatives(st, ctx, a);
    for (Code v = 0; v < 4; ++v) {
      double want = dense->AlphaDerivative(st, a, v);
      EXPECT_NEAR(got[v], want, 1e-10 * std::max(1.0, std::abs(want)));
    }
  }
}

TEST(PolynomialTest, DisjointPairsNeverCrossMultiply) {
  // Components keep statistics on disjoint attribute sets factorized: the
  // group count is the sum, not the product, of per-pair group counts.
  auto table = RandomTable({4, 4, 4, 4}, 300, 23);
  auto s01 = RandomDisjointStats(*table, 0, 1, 5, 24);
  auto s23 = RandomDisjointStats(*table, 2, 3, 5, 25);
  std::vector<MultiDimStatistic> stats(s01);
  stats.insert(stats.end(), s23.begin(), s23.end());
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  EXPECT_EQ(poly->NumComponents(), 2u);
  EXPECT_EQ(poly->NumGroups(), s01.size() + s23.size());
}

TEST(PolynomialTest, GroupCapEnforced) {
  auto table = RandomTable({8, 8}, 300, 26);
  auto stats = RandomDisjointStats(*table, 0, 1, 16, 27);
  auto reg = MakeRegistry(*table, stats);
  PolynomialOptions opts;
  opts.max_groups = 4;
  EXPECT_TRUE(CompressedPolynomial::Build(reg, opts)
                  .status()
                  .IsResourceExhausted());
}

TEST(PolynomialTest, MaskZeroingKillsExactlyExcludedMonomials) {
  // Zeroing every value of one attribute gives P = 0.
  auto table = RandomTable({3, 4}, 100, 28);
  auto reg = MakeRegistry(*table, RandomDisjointStats(*table, 0, 1, 3, 29));
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = RandomState(reg, 30);
  QueryMask mask(2);
  mask.Restrict(0, std::vector<uint8_t>(3, 0));
  EXPECT_DOUBLE_EQ(poly->Evaluate(st, mask).value, 0.0);
}

TEST(PolynomialTest, CompressedSizeIsFarBelowUncompressed) {
  auto table = RandomTable({30, 40, 20}, 2000, 31);
  auto reg = MakeRegistry(*table, RandomDisjointStats(*table, 0, 1, 20, 32));
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  EXPECT_DOUBLE_EQ(poly->UncompressedTermCount(), 24000.0);
  EXPECT_LT(static_cast<double>(poly->CompressedSize()),
            poly->UncompressedTermCount() / 10.0);
  EXPECT_GT(poly->MemoryBytes(), 0u);
  EXPECT_GE(poly->MaxSetSize(), 1u);
}

}  // namespace
}  // namespace entropydb
