#include "maxent/budget_advisor.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace entropydb {
namespace {

TEST(BudgetAdvisorTest, ValidatesArguments) {
  auto table = testutil::RandomTable({5, 5, 5}, 300, 401);
  EXPECT_TRUE(
      BudgetAdvisor::Advise(*table, 0).status().IsInvalidArgument());
}

TEST(BudgetAdvisorTest, SingleAttributeTableFails) {
  auto table = testutil::RandomTable({5}, 100, 402);
  EXPECT_TRUE(
      BudgetAdvisor::Advise(*table, 10).status().IsFailedPrecondition());
}

TEST(BudgetAdvisorTest, EvaluatesAllCandidates) {
  auto table = testutil::RandomTable({6, 6, 5, 5}, 1500, 403);
  AdvisorOptions opts;
  opts.candidate_ba = {1, 2};
  opts.num_heavy = 15;
  opts.num_light = 15;
  opts.num_nonexistent = 30;
  auto result = BudgetAdvisor::Advise(*table, 24, opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->size(), 2u);
  // Sorted best-first.
  EXPECT_GE((*result)[0].score, (*result)[1].score);
  for (const auto& c : *result) {
    EXPECT_GT(c.ba, 0u);
    EXPECT_EQ(c.bs, 24 / c.ba);
    EXPECT_EQ(c.pairs.size(), c.ba);
    EXPECT_GE(c.heavy_error, 0.0);
    EXPECT_LE(c.heavy_error, 1.0);
    EXPECT_GE(c.f_measure, 0.0);
    EXPECT_LE(c.f_measure, 1.0);
  }
}

TEST(BudgetAdvisorTest, ScoreCombinesBothMetrics) {
  auto table = testutil::RandomTable({6, 6, 5}, 800, 404);
  AdvisorOptions opts;
  opts.candidate_ba = {1};
  opts.num_heavy = 10;
  opts.num_light = 10;
  opts.num_nonexistent = 20;
  auto result = BudgetAdvisor::Advise(*table, 12, opts);
  ASSERT_TRUE(result.ok());
  const auto& c = (*result)[0];
  EXPECT_NEAR(c.score, (1.0 - c.heavy_error) + c.f_measure, 1e-12);
}

TEST(BudgetAdvisorTest, ExcludeRemovesAttributes) {
  auto table = testutil::RandomTable({6, 6, 5}, 600, 405);
  AdvisorOptions opts;
  opts.candidate_ba = {1};
  opts.exclude = {0};
  opts.num_heavy = 10;
  opts.num_light = 10;
  opts.num_nonexistent = 10;
  auto result = BudgetAdvisor::Advise(*table, 10, opts);
  ASSERT_TRUE(result.ok());
  for (const auto& p : (*result)[0].pairs) {
    EXPECT_NE(p.a, 0u);
    EXPECT_NE(p.b, 0u);
  }
}

TEST(BudgetAdvisorTest, DeterministicForSeed) {
  auto table = testutil::RandomTable({5, 5, 4}, 500, 406);
  AdvisorOptions opts;
  opts.candidate_ba = {1, 2};
  opts.num_heavy = 10;
  opts.num_light = 10;
  opts.num_nonexistent = 10;
  auto r1 = BudgetAdvisor::Advise(*table, 16, opts);
  auto r2 = BudgetAdvisor::Advise(*table, 16, opts);
  ASSERT_TRUE(r1.ok());
  ASSERT_TRUE(r2.ok());
  ASSERT_EQ(r1->size(), r2->size());
  for (size_t i = 0; i < r1->size(); ++i) {
    EXPECT_DOUBLE_EQ((*r1)[i].score, (*r2)[i].score);
    EXPECT_EQ((*r1)[i].ba, (*r2)[i].ba);
  }
}

}  // namespace
}  // namespace entropydb
