// Tests for the linear-aggregate extensions: batched whole-attribute
// group-by, SUM, and AVG (Sec 3.1 linear queries beyond pure counting).

#include <gtest/gtest.h>

#include "../test_util.h"
#include "maxent/answerer.h"
#include "maxent/solver.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

struct Solved {
  VariableRegistry reg;
  CompressedPolynomial poly;
  ModelState state;
};

/// Headline estimates off the unified Answer surface, so the assertions
/// below read the same as the counting ones.
Result<QueryEstimate> Sum(const QueryAnswerer& answerer, AttrId a,
                          std::vector<double> weights,
                          const CountingQuery& q) {
  ASSIGN_OR_RETURN(QueryResult r, answerer.Answer(AggregateQuery::Sum(
                                      a, std::move(weights), q)));
  return r.estimate;
}

Result<QueryEstimate> Avg(const QueryAnswerer& answerer, AttrId a,
                          std::vector<double> weights,
                          const CountingQuery& q) {
  ASSIGN_OR_RETURN(QueryResult r, answerer.Answer(AggregateQuery::Avg(
                                      a, std::move(weights), q)));
  return r.estimate;
}

Solved SolveFor(const Table& table, std::vector<MultiDimStatistic> stats) {
  auto reg = MakeRegistry(table, std::move(stats));
  auto poly = CompressedPolynomial::Build(reg);
  EXPECT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 1e-10;
  EXPECT_TRUE(MaxEntSolver(reg, *poly, opts).Solve(&st).ok());
  return Solved{std::move(reg), std::move(*poly), std::move(st)};
}

TEST(GroupByAttributeTest, MatchesPointQueries) {
  auto table = RandomTable({5, 6, 4}, 700, 131);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 5, 132));
  QueryAnswerer answerer(s.reg, s.poly, s.state);

  CountingQuery base(3);
  base.Where(2, AttrPredicate::Range(1, 2));
  auto batched = answerer.AnswerGroupByAttribute(1, base);
  ASSERT_TRUE(batched.ok());
  ASSERT_EQ(batched->size(), 6u);
  for (Code v = 0; v < 6; ++v) {
    CountingQuery q = base;
    q.Where(1, AttrPredicate::Point(v));
    auto single = answerer.Answer(q);
    ASSERT_TRUE(single.ok());
    EXPECT_NEAR((*batched)[v].expectation, single->expectation, 1e-8)
        << "value " << v;
    EXPECT_NEAR((*batched)[v].variance, single->variance, 1e-6);
  }
}

TEST(GroupByAttributeTest, RespectsPredicateOnGroupedAttribute) {
  auto table = RandomTable({5, 4}, 300, 133);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  CountingQuery base(2);
  base.Where(0, AttrPredicate::Range(1, 2));  // restrict the grouped attr
  auto batched = answerer.AnswerGroupByAttribute(0, base);
  ASSERT_TRUE(batched.ok());
  EXPECT_DOUBLE_EQ((*batched)[0].expectation, 0.0);
  EXPECT_GT((*batched)[1].expectation, 0.0);
  EXPECT_GT((*batched)[2].expectation, 0.0);
  EXPECT_DOUBLE_EQ((*batched)[3].expectation, 0.0);
  EXPECT_DOUBLE_EQ((*batched)[4].expectation, 0.0);
}

TEST(GroupByAttributeTest, SumsToFilteredCount) {
  auto table = RandomTable({4, 6}, 500, 134);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 4, 135));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  CountingQuery base(2);
  base.Where(0, AttrPredicate::Point(2));
  auto batched = answerer.AnswerGroupByAttribute(1, base);
  ASSERT_TRUE(batched.ok());
  double total = 0.0;
  for (const auto& e : *batched) total += e.expectation;
  auto count = answerer.Answer(base);
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(total, count->expectation, 1e-6);
}

TEST(GroupByAttributeTest, ValidatesArguments) {
  auto table = RandomTable({4, 4}, 100, 136);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  EXPECT_TRUE(answerer.AnswerGroupByAttribute(9, CountingQuery(2))
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(answerer.AnswerGroupByAttribute(0, CountingQuery(5))
                  .status()
                  .IsInvalidArgument());
}

TEST(SumTest, MatchesWeightedPointQueries) {
  auto table = RandomTable({5, 5}, 600, 137);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 4, 138));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<double> weights{1.5, 2.5, 3.5, 4.5, 5.5};  // bucket midpoints
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Range(0, 2));
  auto sum = Sum(answerer, 0, weights, q);
  ASSERT_TRUE(sum.ok());
  double expected = 0.0;
  for (Code v = 0; v < 5; ++v) {
    CountingQuery pq = q;
    pq.Where(0, AttrPredicate::Point(v));
    expected += weights[v] * answerer.Answer(pq)->expectation;
  }
  EXPECT_NEAR(sum->expectation, expected, 1e-6);
  EXPECT_GT(sum->variance, 0.0);
}

TEST(SumTest, ExactWhenModelIsExact) {
  // With full single-cell statistics the model matches the data, so SUM
  // over the summary equals SUM over the table.
  auto table = RandomTable({4, 3}, 400, 139);
  ExactEvaluator eval(*table);
  auto hist = eval.Histogram2D(0, 1);
  std::vector<MultiDimStatistic> stats;
  for (Code a = 0; a < 4; ++a) {
    for (Code b = 0; b < 3; ++b) {
      stats.push_back(Make2DStatistic(
          0, {a, a}, 1, {b, b}, static_cast<double>(hist[a * 3 + b])));
    }
  }
  auto s = SolveFor(*table, stats);
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<double> weights{10, 20, 30, 40};
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Point(1));
  auto sum = Sum(answerer, 0, weights, q);
  ASSERT_TRUE(sum.ok());
  double truth = 0.0;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    if (table->at(r, 1) == 1) truth += weights[table->at(r, 0)];
  }
  EXPECT_NEAR(sum->expectation, truth, 0.02 * truth + 1.0);
}

TEST(SumTest, UnitWeightsReproduceTheCountVariance) {
  // With w_v = 1 everywhere, S IS the filtered count, so the multinomial
  // moments must collapse to the Binomial n P (1 - P) that Answer reports
  // (the old independent-cells bound overstated this).
  auto table = RandomTable({5, 6}, 600, 148);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 4, 149));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Range(1, 3));
  auto sum = Sum(answerer, 0, std::vector<double>(5, 1.0), q);
  auto count = answerer.Answer(q);
  ASSERT_TRUE(sum.ok());
  ASSERT_TRUE(count.ok());
  EXPECT_NEAR(sum->expectation, count->expectation,
              1e-9 * (1.0 + count->expectation));
  EXPECT_NEAR(sum->variance, count->variance,
              1e-9 * (1.0 + count->variance));
}

TEST(SumTest, ValidatesWeightArity) {
  auto table = RandomTable({4, 4}, 100, 140);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  EXPECT_TRUE(Sum(answerer, 0, {1.0, 2.0}, CountingQuery(2))
                  .status()
                  .IsInvalidArgument());
}

TEST(AvgTest, IsSumOverCount) {
  auto table = RandomTable({5, 4}, 500, 141);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<double> weights{0, 1, 2, 3, 4};
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Range(1, 2));
  auto avg = Avg(answerer, 0, weights, q);
  auto sum = Sum(answerer, 0, weights, q);
  auto cnt = answerer.Answer(q);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->expectation, sum->expectation / cnt->expectation, 1e-9);
  // AVG lies within the weight range.
  EXPECT_GE(avg->expectation, 0.0);
  EXPECT_LE(avg->expectation, 4.0);
}

TEST(AvgTest, DeltaMethodVarianceMatchesMultinomialMoments) {
  auto table = RandomTable({5, 4}, 500, 143);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 4, 144));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<double> weights{2.0, 3.5, 5.0, 7.0, 11.0};
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Range(1, 2));
  auto avg = Avg(answerer, 0, weights, q);
  ASSERT_TRUE(avg.ok());
  EXPECT_GT(avg->variance, 0.0);

  // Recompute the delta-method formula from the same per-value counts:
  // Var(S/C) = (Var S - 2 R Cov + R^2 Var C) / C^2 with multinomial cell
  // moments.
  auto counts = answerer.AnswerGroupByAttribute(0, q);
  auto total = answerer.Answer(q);
  ASSERT_TRUE(counts.ok());
  ASSERT_TRUE(total.ok());
  const double n = s.reg.n();
  double sum = 0.0, sw2p = 0.0;
  for (Code v = 0; v < weights.size(); ++v) {
    sum += weights[v] * (*counts)[v].expectation;
    sw2p += weights[v] * weights[v] * (*counts)[v].expectation / n;
  }
  const double c = total->expectation;
  const double r = sum / c;
  const double mean_wp = sum / n;
  const double big_p = c / n;
  const double var_s = n * (sw2p - mean_wp * mean_wp);
  const double var_c = n * big_p * (1.0 - big_p);
  const double cov = n * mean_wp * (1.0 - big_p);
  const double expected =
      (var_s - 2.0 * r * cov + r * r * var_c) / (c * c);
  EXPECT_NEAR(avg->variance, expected, 1e-12 * (1.0 + expected));
  // The AVG of weights in [2, 11] cannot be more dispersed than the range.
  EXPECT_LT(avg->StdDev(), 9.0);
}

TEST(AvgTest, ConstantWeightsHaveZeroVariance) {
  // AVG of a constant is the constant: S = c C exactly, so the ratio has
  // no dispersion and the delta method must collapse to 0.
  auto table = RandomTable({4, 4}, 300, 145);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<double> weights(4, 6.25);
  CountingQuery q(2);
  q.Where(1, AttrPredicate::Range(0, 1));
  auto avg = Avg(answerer, 0, weights, q);
  ASSERT_TRUE(avg.ok());
  EXPECT_NEAR(avg->expectation, 6.25, 1e-9);
  EXPECT_NEAR(avg->variance, 0.0, 1e-9);
}

TEST(AvgTest, VarianceShrinksWithSelectivity) {
  // A filter matching nearly everything pins the ratio down; a narrow
  // filter leaves few effective samples and a wider interval.
  auto table = RandomTable({5, 6}, 800, 146);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 5, 147));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<double> weights{1, 2, 3, 4, 5};
  CountingQuery wide(2);  // all values of attr 1
  CountingQuery narrow(2);
  narrow.Where(1, AttrPredicate::Point(3));
  auto wide_avg = Avg(answerer, 0, weights, wide);
  auto narrow_avg = Avg(answerer, 0, weights, narrow);
  ASSERT_TRUE(wide_avg.ok());
  ASSERT_TRUE(narrow_avg.ok());
  EXPECT_LT(wide_avg->variance, narrow_avg->variance);
}

TEST(AvgTest, ZeroCountGivesZero) {
  auto table = RandomTable({4, 4}, 100, 142);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  CountingQuery q(2);
  q.Where(1, AttrPredicate::InSet({}));  // impossible
  auto avg = Avg(answerer, 0, {1, 2, 3, 4}, q);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->expectation, 0.0);
}

}  // namespace
}  // namespace entropydb
