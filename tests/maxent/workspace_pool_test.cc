// Tests for the lock-free workspace pool: slot claiming, overflow, and —
// the load-bearing property — bitwise-stable estimates when many threads
// hammer ONE summary concurrently (the old design serialized them behind a
// mutex; the pool must scale without perturbing a single bit).

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "maxent/answerer.h"
#include "maxent/solver.h"
#include "maxent/workspace_pool.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

struct Solved {
  VariableRegistry reg;
  CompressedPolynomial poly;
  ModelState state;
};

Solved SolveFor(uint64_t seed) {
  auto table = RandomTable({6, 6, 5, 4}, 800, seed);
  auto stats = RandomDisjointStats(*table, 0, 1, 6, seed + 1);
  auto more = RandomDisjointStats(*table, 2, 3, 4, seed + 2);
  stats.insert(stats.end(), more.begin(), more.end());
  auto reg = MakeRegistry(*table, std::move(stats));
  auto poly = CompressedPolynomial::Build(reg);
  EXPECT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 150;
  EXPECT_TRUE(MaxEntSolver(reg, *poly, opts).Solve(&st).ok());
  return Solved{std::move(reg), std::move(*poly), std::move(st)};
}

TEST(WorkspacePoolTest, WarmsOnceAndSharesTheFactorCache) {
  Solved s = SolveFor(301);
  WorkspacePool pool(s.poly, s.state, 3);
  EXPECT_EQ(pool.capacity(), 3u);
  // The eager warm-up's unmasked P matches a fresh evaluation.
  EXPECT_DOUBLE_EQ(pool.full_value(), s.poly.EvaluateUnmasked(s.state).value);

  // Every slot (lazily warmed or not) answers identically.
  CountingQuery q(4);
  q.Where(0, AttrPredicate::Point(2)).Where(2, AttrPredicate::Range(1, 3));
  QueryMask mask = QueryMask::FromQuery(q, s.reg.domain_sizes());
  std::vector<double> values;
  {
    auto l1 = pool.Acquire();
    auto l2 = pool.Acquire();
    auto l3 = pool.Acquire();
    EXPECT_FALSE(l1.is_overflow());
    EXPECT_FALSE(l2.is_overflow());
    EXPECT_FALSE(l3.is_overflow());
    values.push_back(s.poly.MaskedEvaluate(s.state, mask, l1.get()).value);
    values.push_back(s.poly.MaskedEvaluate(s.state, mask, l2.get()).value);
    values.push_back(s.poly.MaskedEvaluate(s.state, mask, l3.get()).value);
  }
  EXPECT_EQ(values[0], values[1]);
  EXPECT_EQ(values[0], values[2]);
}

TEST(WorkspacePoolTest, OverflowsWithoutBlockingAndMatches) {
  Solved s = SolveFor(303);
  WorkspacePool pool(s.poly, s.state, 2);
  CountingQuery q(4);
  q.Where(1, AttrPredicate::Range(0, 2));
  QueryMask mask = QueryMask::FromQuery(q, s.reg.domain_sizes());

  auto l1 = pool.Acquire();
  auto l2 = pool.Acquire();
  auto l3 = pool.Acquire();  // all slots busy: transient workspace
  EXPECT_FALSE(l1.is_overflow());
  EXPECT_FALSE(l2.is_overflow());
  EXPECT_TRUE(l3.is_overflow());
  const double slot_value = s.poly.MaskedEvaluate(s.state, mask, l1.get()).value;
  const double over_value = s.poly.MaskedEvaluate(s.state, mask, l3.get()).value;
  EXPECT_EQ(slot_value, over_value);
}

TEST(WorkspacePoolTest, SlotIsReusableAfterRelease) {
  Solved s = SolveFor(305);
  WorkspacePool pool(s.poly, s.state, 2);
  { auto l = pool.Acquire(); }
  { auto l = pool.Acquire(); }
  auto l1 = pool.Acquire();
  auto l2 = pool.Acquire();
  EXPECT_FALSE(l1.is_overflow());
  EXPECT_FALSE(l2.is_overflow());
  EXPECT_NE(l1.get(), l2.get());
}

// The multi-threaded stress test of the ISSUE: T threads, each answering
// the same mixed workload in a different order through ONE QueryAnswerer,
// must reproduce the serial reference estimates bit for bit.
TEST(WorkspacePoolTest, ConcurrentQueriesAreBitwiseStable) {
  Solved s = SolveFor(307);
  QueryAnswerer answerer(s.reg, s.poly, s.state);

  // A workload mixing point, range, and multi-attribute queries.
  std::vector<CountingQuery> workload;
  for (Code v = 0; v < 6; ++v) {
    CountingQuery q(4);
    q.Where(0, AttrPredicate::Point(v));
    workload.push_back(q);
  }
  for (Code lo = 0; lo < 4; ++lo) {
    CountingQuery q(4);
    q.Where(2, AttrPredicate::Range(lo, 4)).Where(1, AttrPredicate::Point(lo));
    workload.push_back(q);
  }
  {
    CountingQuery q(4);
    q.Where(0, AttrPredicate::Range(1, 3))
        .Where(1, AttrPredicate::Range(2, 5))
        .Where(3, AttrPredicate::Point(1));
    workload.push_back(q);
  }

  // Serial reference.
  std::vector<QueryEstimate> ref;
  for (const auto& q : workload) {
    auto est = answerer.Answer(q);
    ASSERT_TRUE(est.ok());
    ref.push_back(*est);
  }
  CountingQuery gb_base(4);
  gb_base.Where(2, AttrPredicate::Range(0, 2));
  auto gb_ref = answerer.AnswerGroupByAttribute(1, gb_base);
  ASSERT_TRUE(gb_ref.ok());

  constexpr int kThreads = 8;
  constexpr int kRounds = 40;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int r = 0; r < kRounds; ++r) {
        for (size_t i = 0; i < workload.size(); ++i) {
          // Each thread walks the workload at a different offset so
          // distinct queries overlap in time.
          const size_t j = (i + t * 3 + r) % workload.size();
          auto est = answerer.Answer(workload[j]);
          if (!est.ok() || est->expectation != ref[j].expectation ||
              est->variance != ref[j].variance) {
            mismatches.fetch_add(1);
          }
        }
        auto gb = answerer.AnswerGroupByAttribute(1, gb_base);
        if (!gb.ok() || gb->size() != gb_ref->size()) {
          mismatches.fetch_add(1);
          continue;
        }
        for (size_t v = 0; v < gb->size(); ++v) {
          if ((*gb)[v].expectation != (*gb_ref)[v].expectation) {
            mismatches.fetch_add(1);
          }
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace entropydb
