#include "maxent/variable_registry.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace entropydb {
namespace {

TEST(RegistryTest, CreateValidatesShapes) {
  EXPECT_TRUE(VariableRegistry::Create({2, 2}, {{1, 1}}, {}, 2)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VariableRegistry::Create({2}, {{1, 1, 1}}, {}, 3)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VariableRegistry::Create({0}, {{}}, {}, 0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(VariableRegistry::Create({2}, {{-1, 3}}, {}, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST(RegistryTest, CreateValidatesStatistics) {
  MultiDimStatistic bad_attr;
  bad_attr.attrs = {5};
  bad_attr.ranges = {{0, 0}};
  EXPECT_TRUE(VariableRegistry::Create({2, 2}, {{1, 1}, {1, 1}}, {bad_attr}, 2)
                  .status()
                  .IsOutOfRange());

  MultiDimStatistic bad_range;
  bad_range.attrs = {0};
  bad_range.ranges = {{0, 7}};
  EXPECT_TRUE(
      VariableRegistry::Create({2, 2}, {{1, 1}, {1, 1}}, {bad_range}, 2)
          .status()
          .IsOutOfRange());

  MultiDimStatistic unsorted = Make2DStatistic(1, {0, 0}, 0, {0, 0}, 1.0);
  // Make2DStatistic sorts, so build a raw bad one instead.
  unsorted.attrs = {1, 0};
  EXPECT_TRUE(
      VariableRegistry::Create({2, 2}, {{1, 1}, {1, 1}}, {unsorted}, 2)
          .status()
          .IsInvalidArgument());

  MultiDimStatistic dup;
  dup.attrs = {0, 0};
  dup.ranges = {{0, 0}, {0, 0}};
  EXPECT_TRUE(VariableRegistry::Create({2, 2}, {{1, 1}, {1, 1}}, {dup}, 2)
                  .status()
                  .IsInvalidArgument());

  MultiDimStatistic neg = Make2DStatistic(0, {0, 0}, 1, {0, 0}, -1.0);
  EXPECT_TRUE(VariableRegistry::Create({2, 2}, {{1, 1}, {1, 1}}, {neg}, 2)
                  .status()
                  .IsInvalidArgument());
}

TEST(RegistryTest, AccessorsAndCounts) {
  auto stat = Make2DStatistic(0, {0, 1}, 1, {1, 1}, 2.0);
  auto reg =
      VariableRegistry::Create({3, 2}, {{1, 1, 1}, {2, 1}}, {stat}, 3);
  ASSERT_TRUE(reg.ok());
  EXPECT_EQ(reg->num_attributes(), 2u);
  EXPECT_EQ(reg->domain_size(0), 3u);
  EXPECT_DOUBLE_EQ(reg->OneDTarget(1, 0), 2.0);
  EXPECT_EQ(reg->num_multi_dim(), 1u);
  EXPECT_DOUBLE_EQ(reg->multi_dim(0).target, 2.0);
  EXPECT_EQ(reg->TotalVariables(), 6u);  // 3 + 2 + 1
  EXPECT_DOUBLE_EQ(reg->n(), 3.0);
}

TEST(RegistryTest, InitialStateMatchesClosedForm) {
  auto table = testutil::RandomTable({4, 3}, 120, 81);
  auto reg = testutil::MakeRegistry(*table, {});
  ModelState st = ModelState::InitialState(reg);
  for (AttrId a = 0; a < 2; ++a) {
    double sum = 0.0;
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      EXPECT_DOUBLE_EQ(st.alpha[a][v], reg.OneDTarget(a, v) / 120.0);
      sum += st.alpha[a][v];
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);  // overcompleteness: family sums to 1
  }
}

TEST(RegistryTest, InitialStateZeroStatisticsPinned) {
  auto table = testutil::MakeTable({2, 2}, {{0, 0}, {1, 1}});
  auto zero_stat = Make2DStatistic(0, {0, 0}, 1, {1, 1}, 0.0);
  auto live_stat = Make2DStatistic(0, {0, 0}, 1, {0, 0}, 1.0);
  auto reg = testutil::MakeRegistry(*table, {zero_stat, live_stat});
  ModelState st = ModelState::InitialState(reg);
  EXPECT_DOUBLE_EQ(st.delta[0], 0.0);
  EXPECT_DOUBLE_EQ(st.delta[1], 1.0);
}

TEST(StatisticTest, ContainsTuple) {
  auto s = Make2DStatistic(0, {1, 2}, 2, {0, 0}, 5.0);
  EXPECT_TRUE(s.ContainsTuple({1, 99, 0}));
  EXPECT_TRUE(s.ContainsTuple({2, 0, 0}));
  EXPECT_FALSE(s.ContainsTuple({0, 0, 0}));
  EXPECT_FALSE(s.ContainsTuple({1, 0, 1}));
}

TEST(StatisticTest, Make2DSortsAttributes) {
  auto s = Make2DStatistic(3, {1, 2}, 1, {4, 5}, 7.0);
  EXPECT_EQ(s.attrs[0], 1u);
  EXPECT_EQ(s.attrs[1], 3u);
  EXPECT_EQ(s.ranges[0].lo, 4u);
  EXPECT_EQ(s.ranges[1].lo, 1u);
}

TEST(StatisticTest, IntervalOps) {
  Interval a{2, 6}, b{4, 9}, c{7, 8};
  EXPECT_EQ(a.Intersect(b), (Interval{4, 6}));
  EXPECT_TRUE(a.Intersect(c).empty());
  EXPECT_EQ(a.width(), 5u);
  EXPECT_TRUE(a.Contains(2));
  EXPECT_TRUE(a.Contains(6));
  EXPECT_FALSE(a.Contains(7));
}

}  // namespace
}  // namespace entropydb
