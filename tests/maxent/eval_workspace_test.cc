#include <gtest/gtest.h>

#include <cmath>

#include "../test_util.h"
#include "common/rng.h"
#include "maxent/polynomial.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

constexpr double kRelTol = 1e-12;

void ExpectClose(double got, double want, const char* what) {
  EXPECT_NEAR(got, want, kRelTol * std::max(1.0, std::abs(want))) << what;
}

ModelState RandomState(const VariableRegistry& reg, uint64_t seed) {
  Rng rng(seed);
  ModelState st = ModelState::InitialState(reg);
  for (auto& fam : st.alpha) {
    for (auto& a : fam) a = 0.05 + rng.NextDouble();
  }
  for (auto& d : st.delta) d = 0.1 + 2.0 * rng.NextDouble();
  return st;
}

QueryMask RandomMask(const VariableRegistry& reg, uint64_t seed,
                     double p_constrained) {
  Rng rng(seed);
  QueryMask mask(reg.num_attributes());
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    if (!rng.NextBernoulli(p_constrained)) continue;
    uint32_t n = reg.domain_size(a);
    std::vector<uint8_t> allow(n, 0);
    if (rng.NextBernoulli(0.5)) {
      Code lo = static_cast<Code>(rng.Uniform(n));
      Code hi = lo + static_cast<Code>(rng.Uniform(n - lo));
      for (Code v = lo; v <= hi; ++v) allow[v] = 1;
    } else {
      for (Code v = 0; v < n; ++v) allow[v] = rng.NextBernoulli(0.6);
    }
    mask.Restrict(a, std::move(allow));
  }
  return mask;
}

struct Fixture {
  VariableRegistry reg;
  CompressedPolynomial poly;
  ModelState state;
};

/// A chain-shaped polynomial with a free attribute — exercises components,
/// multi-stat groups, and the free-attribute paths at once.
Fixture MakeSetup(uint64_t seed) {
  auto table = RandomTable({6, 5, 4, 7}, 400, seed);
  std::vector<MultiDimStatistic> stats;
  auto s01 = RandomDisjointStats(*table, 0, 1, 4, seed + 1);
  auto s12 = RandomDisjointStats(*table, 1, 2, 3, seed + 2);
  stats.insert(stats.end(), s01.begin(), s01.end());
  stats.insert(stats.end(), s12.begin(), s12.end());
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  EXPECT_TRUE(poly.ok());
  ModelState st = RandomState(reg, seed + 3);
  return Fixture{std::move(reg), std::move(*poly), std::move(st)};
}

TEST(EvalWorkspaceTest, MaskedEvaluateMatchesFreshAcrossRandomMasks) {
  Fixture s = MakeSetup(101);
  EvalWorkspace ws;
  for (int trial = 0; trial < 40; ++trial) {
    QueryMask mask = RandomMask(s.reg, 500 + trial, 0.5);
    const double fresh = s.poly.Evaluate(s.state, mask).value;
    const double cached = s.poly.MaskedEvaluate(s.state, mask, &ws).value;
    ExpectClose(cached, fresh, "masked value");
  }
}

TEST(EvalWorkspaceTest, WorkspaceReuseDoesNotLeakAcrossMasks) {
  // Alternate between heavily and lightly constrained masks; a stale
  // masked prefix or effective total from a previous query must not
  // surface.
  Fixture s = MakeSetup(102);
  EvalWorkspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    const double p = (trial % 2 == 0) ? 0.9 : 0.15;
    QueryMask mask = RandomMask(s.reg, 900 + trial, p);
    ExpectClose(s.poly.MaskedEvaluate(s.state, mask, &ws).value,
                s.poly.Evaluate(s.state, mask).value, "alternating masks");
  }
  // The all-ANY mask must return the cached unmasked value exactly.
  QueryMask any(s.reg.num_attributes());
  EXPECT_DOUBLE_EQ(s.poly.MaskedEvaluate(s.state, any, &ws).value,
                   s.poly.EvaluateUnmasked(s.state).value);
}

TEST(EvalWorkspaceTest, AllDerivativesMatchPerVariablePaths) {
  Fixture s = MakeSetup(103);
  auto ctx = s.poly.EvaluateUnmasked(s.state);
  const auto all = s.poly.AllDerivatives(s.state, ctx);
  for (AttrId a = 0; a < s.reg.num_attributes(); ++a) {
    const auto want = s.poly.AlphaDerivatives(s.state, ctx, a);
    ASSERT_EQ(all.alpha[a].size(), want.size());
    for (Code v = 0; v < want.size(); ++v) {
      EXPECT_NEAR(all.alpha[a][v], want[v],
                  kRelTol * std::max(1.0, std::abs(want[v])))
          << "attr " << a << " value " << v;
    }
  }
  for (uint32_t j = 0; j < s.reg.num_multi_dim(); ++j) {
    ExpectClose(all.delta[j], s.poly.DeltaDerivative(s.state, ctx, j),
                "delta derivative");
    ExpectClose(all.delta_local[j],
                s.poly.DeltaDerivativeLocal(s.state, ctx, j),
                "local delta derivative");
  }
}

TEST(EvalWorkspaceTest, AllDerivativesMatchNaiveSkipRecomputation) {
  // The sweep's cofactors against the definitionally-naive path: zero one
  // variable, re-evaluate, divide the difference by the variable's value.
  Fixture s = MakeSetup(104);
  auto ctx = s.poly.EvaluateUnmasked(s.state);
  const auto all = s.poly.AllDerivatives(s.state, ctx);
  const double naive_tol = 1e-9;  // subtraction loses a few digits
  for (AttrId a = 0; a < s.reg.num_attributes(); ++a) {
    for (Code v = 0; v < s.reg.domain_size(a); ++v) {
      const double alpha = s.state.alpha[a][v];
      ASSERT_GT(alpha, 0.0);
      QueryMask mask(s.reg.num_attributes());
      std::vector<uint8_t> allow(s.reg.domain_size(a), 1);
      allow[v] = 0;
      mask.Restrict(a, std::move(allow));
      const double without = s.poly.Evaluate(s.state, mask).value;
      const double naive = (ctx.value - without) / alpha;
      EXPECT_NEAR(all.alpha[a][v], naive,
                  naive_tol * std::max(1.0, std::abs(naive)))
          << "attr " << a << " value " << v;
    }
  }
}

TEST(EvalWorkspaceTest, RefreshAttrMatchesFreshEvaluation) {
  Fixture s = MakeSetup(105);
  auto ctx = s.poly.EvaluateUnmasked(s.state);
  Rng rng(42);
  for (AttrId a = 0; a < s.reg.num_attributes(); ++a) {
    for (auto& v : s.state.alpha[a]) v = 0.05 + rng.NextDouble();
    s.poly.RefreshAttr(s.state, a, &ctx);
    auto fresh = s.poly.EvaluateUnmasked(s.state);
    ExpectClose(ctx.value, fresh.value, "refreshed P");
    for (size_t c = 0; c < fresh.comp_value.size(); ++c) {
      ExpectClose(ctx.comp_value[c], fresh.comp_value[c],
                  "refreshed component");
    }
    ExpectClose(ctx.free_product, fresh.free_product, "refreshed free product");
  }
}

TEST(EvalWorkspaceTest, MaskedAlphaDerivativesMatchContextPath) {
  Fixture s = MakeSetup(106);
  EvalWorkspace ws;
  for (int trial = 0; trial < 10; ++trial) {
    for (AttrId a = 0; a < s.reg.num_attributes(); ++a) {
      QueryMask mask = RandomMask(s.reg, 1500 + trial, 0.5);
      // Group-by convention: the split attribute itself is unconstrained.
      std::vector<uint8_t> all_pass(s.reg.domain_size(a), 1);
      mask.Restrict(a, std::move(all_pass));
      const auto eval = s.poly.MaskedEvaluate(s.state, mask, &ws);
      const auto got = s.poly.MaskedAlphaDerivatives(s.state, eval, a, &ws);
      auto ctx = s.poly.Evaluate(s.state, mask);
      const auto want = s.poly.AlphaDerivatives(s.state, ctx, a);
      for (Code v = 0; v < s.reg.domain_size(a); ++v) {
        EXPECT_NEAR(got[v], want[v],
                    kRelTol * std::max(1.0, std::abs(want[v])))
            << "trial " << trial << " attr " << a << " value " << v;
      }
    }
  }
}

TEST(EvalWorkspaceTest, PointOverrideValueMatchesPointMaskedEvaluation) {
  Fixture s = MakeSetup(107);
  EvalWorkspace ws;
  Rng rng(7);
  // Pin pairs spanning the same component, different components, and a
  // free attribute.
  const std::vector<std::vector<AttrId>> key_shapes = {
      {0, 1}, {0, 2}, {1, 3}, {3}, {0, 1, 2}};
  for (const auto& attrs : key_shapes) {
    QueryMask mask = RandomMask(s.reg, 1700 + attrs.size(), 0.4);
    for (AttrId a : attrs) {
      std::vector<uint8_t> all_pass(s.reg.domain_size(a), 1);
      mask.Restrict(a, std::move(all_pass));
    }
    const auto eval = s.poly.MaskedEvaluate(s.state, mask, &ws);
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<Code> codes;
      for (AttrId a : attrs) {
        codes.push_back(static_cast<Code>(rng.Uniform(s.reg.domain_size(a))));
      }
      const double got =
          s.poly.PointOverrideValue(s.state, eval, attrs, codes, &ws);
      QueryMask point_mask = mask;
      for (size_t i = 0; i < attrs.size(); ++i) {
        std::vector<uint8_t> allow(s.reg.domain_size(attrs[i]), 0);
        allow[codes[i]] = 1;
        point_mask.Restrict(attrs[i], std::move(allow));
      }
      const double want = s.poly.Evaluate(s.state, point_mask).value;
      ExpectClose(got, want, "point-override value");
    }
  }
}

TEST(EvalWorkspaceTest, CachedDeltaLocalMatchesUncached) {
  Fixture s = MakeSetup(108);
  auto ctx = s.poly.EvaluateUnmasked(s.state);
  const auto rs = s.poly.GroupRangeSumProducts(ctx);
  for (uint32_t j = 0; j < s.reg.num_multi_dim(); ++j) {
    const auto& rs_c = rs[s.poly.ComponentOfDelta(j)];
    ExpectClose(s.poly.DeltaDerivativeLocalCached(s.state, rs_c, j),
                s.poly.DeltaDerivativeLocal(s.state, ctx, j),
                "cached local delta derivative");
  }
}

TEST(EvalWorkspaceTest, ComponentSweepCofactorsMatchPerAttributePath) {
  // Drive the solver's prefix/suffix sweep machinery through a full alpha
  // phase (without updates) and check each family's cofactors and the
  // finished interval products against the reference paths.
  Fixture s = MakeSetup(112);
  auto ctx = s.poly.EvaluateUnmasked(s.state);
  std::vector<ComponentSweep> sweeps;
  for (size_t c = 0; c < s.poly.NumComponents(); ++c) {
    sweeps.emplace_back(s.poly, static_cast<int>(c));
  }
  int prev_comp = -1;
  for (AttrId a : s.poly.FamilyOrder()) {
    const int c = s.poly.ComponentOfAttr(a);
    if (c < 0) continue;
    if (c != prev_comp) sweeps[c].BeginSweep(s.state, ctx);
    prev_comp = c;
    const auto got = sweeps[c].FamilyCofactors(a, &ctx);
    const auto want = s.poly.AlphaDerivatives(s.state, ctx, a);
    for (Code v = 0; v < s.reg.domain_size(a); ++v) {
      EXPECT_NEAR(got[v], want[v], kRelTol * std::max(1.0, std::abs(want[v])))
          << "attr " << a << " value " << v;
    }
    sweeps[c].Advance(a, /*alphas_changed=*/false, ctx);
  }
  // After every family advanced, the running prefix is the per-group
  // interval product, and the derived component value matches evaluation.
  auto fresh = s.poly.EvaluateUnmasked(s.state);
  const auto rs_ref = s.poly.GroupRangeSumProducts(fresh);
  for (size_t c = 0; c < s.poly.NumComponents(); ++c) {
    const auto& rs = sweeps[c].RangeSumProducts();
    ASSERT_EQ(rs.size(), rs_ref[c].size());
    for (size_t g = 0; g < rs.size(); ++g) {
      ExpectClose(rs[g], rs_ref[c][g], "sweep interval product");
    }
    ExpectClose(sweeps[c].ComponentValue(fresh), fresh.comp_value[c],
                "sweep component value");
  }
}

TEST(EvalWorkspaceTest, InvalidateRebindsToNewState) {
  Fixture s = MakeSetup(109);
  EvalWorkspace ws;
  QueryMask mask = RandomMask(s.reg, 1900, 0.5);
  (void)s.poly.MaskedEvaluate(s.state, mask, &ws);
  // Mutate the state; a stale workspace would keep answering for the old
  // one.
  s.state.alpha[0][0] *= 3.0;
  ws.Invalidate();
  ExpectClose(s.poly.MaskedEvaluate(s.state, mask, &ws).value,
              s.poly.Evaluate(s.state, mask).value, "post-invalidate value");
}

TEST(EvalWorkspaceTest, ParallelComponentPathMatchesSerial) {
  // Force the component fan-out (parallel_min_groups = 0) on a polynomial
  // with two disjoint components and compare against the default serial
  // path. On single-core hosts ParallelFor degrades to the inline loop;
  // either way the results must agree because components write disjoint
  // outputs.
  auto table = RandomTable({5, 4, 6, 3}, 400, 113);
  std::vector<MultiDimStatistic> stats;
  auto s01 = RandomDisjointStats(*table, 0, 1, 4, 114);
  auto s23 = RandomDisjointStats(*table, 2, 3, 4, 115);
  stats.insert(stats.end(), s01.begin(), s01.end());
  stats.insert(stats.end(), s23.begin(), s23.end());
  auto reg = MakeRegistry(*table, stats);
  PolynomialOptions par_opts;
  par_opts.parallel_min_groups = 0;
  auto par = CompressedPolynomial::Build(reg, par_opts);
  auto ser = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(par.ok());
  ASSERT_TRUE(ser.ok());
  ASSERT_EQ(par->NumComponents(), 2u);
  ModelState st = RandomState(reg, 116);

  auto par_ctx = par->EvaluateUnmasked(st);
  auto ser_ctx = ser->EvaluateUnmasked(st);
  ExpectClose(par_ctx.value, ser_ctx.value, "parallel evaluate");
  for (size_t c = 0; c < ser_ctx.comp_value.size(); ++c) {
    ExpectClose(par_ctx.comp_value[c], ser_ctx.comp_value[c],
                "parallel component value");
  }

  const auto par_d = par->AllDerivatives(st, par_ctx);
  const auto ser_d = ser->AllDerivatives(st, ser_ctx);
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      ExpectClose(par_d.alpha[a][v], ser_d.alpha[a][v],
                  "parallel alpha derivative");
    }
  }
  for (uint32_t j = 0; j < reg.num_multi_dim(); ++j) {
    ExpectClose(par_d.delta[j], ser_d.delta[j], "parallel delta derivative");
  }
}

TEST(EvalWorkspaceTest, NoComponentPolynomialStillWorks) {
  // 1-D-only summaries have no groups at all; the workspace path must
  // degrade to plain factorized products.
  auto table = RandomTable({5, 4, 3}, 200, 110);
  auto reg = MakeRegistry(*table, {});
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = RandomState(reg, 111);
  EvalWorkspace ws;
  for (int trial = 0; trial < 10; ++trial) {
    QueryMask mask = RandomMask(reg, 2000 + trial, 0.6);
    ExpectClose(poly->MaskedEvaluate(st, mask, &ws).value,
                poly->Evaluate(st, mask).value, "free-only masked value");
  }
  auto ctx = poly->EvaluateUnmasked(st);
  const auto all = poly->AllDerivatives(st, ctx);
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    const auto want = poly->AlphaDerivatives(st, ctx, a);
    for (Code v = 0; v < want.size(); ++v) {
      ExpectClose(all.alpha[a][v], want[v], "free-only alpha derivative");
    }
  }
}

}  // namespace
}  // namespace entropydb
