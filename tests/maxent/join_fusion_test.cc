// Join fusion (maxent/join_fusion.h): fusing two relations' join-attribute
// marginals reproduces the exact equi-join COUNT/SUM when the marginals are
// exact, the delta variance matches the hand formula, and engine-level
// fusion over solved MaxEnt models tracks brute-force ground truth.

#include "maxent/join_fusion.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/engine.h"
#include "query/exact_evaluator.h"

namespace entropydb {
namespace {

using testutil::RandomTable;

/// Brute-force |L filter_L JOIN_j S filter_S| by nested histogram product:
/// the exact equi-join count is sum_j countL(j) * countR(j).
double ExactJoinCount(const Table& left, AttrId lj,
                      const CountingQuery& lwhere, const Table& right,
                      AttrId rj, const CountingQuery& rwhere) {
  ExactEvaluator le(left), re(right);
  double total = 0.0;
  for (Code j = 0; j < left.domain(lj).size(); ++j) {
    CountingQuery lq = lwhere;
    lq.Where(lj, AttrPredicate::Point(j));
    CountingQuery rq = rwhere;
    rq.Where(rj, AttrPredicate::Point(j));
    total += static_cast<double>(le.Count(lq)) *
             static_cast<double>(re.Count(rq));
  }
  return total;
}

/// Same, SUM of the left attribute `agg` valued by `weights[code]`.
double ExactJoinSum(const Table& left, AttrId lj, AttrId agg,
                    const std::vector<double>& weights, const Table& right,
                    AttrId rj) {
  ExactEvaluator le(left), re(right);
  double total = 0.0;
  for (Code j = 0; j < left.domain(lj).size(); ++j) {
    CountingQuery rq(right.num_attributes());
    rq.Where(rj, AttrPredicate::Point(j));
    const double b = static_cast<double>(re.Count(rq));
    for (Code v = 0; v < left.domain(agg).size(); ++v) {
      CountingQuery lq(left.num_attributes());
      lq.Where(lj, AttrPredicate::Point(j));
      lq.Where(agg, AttrPredicate::Point(v));
      total += static_cast<double>(le.Count(lq)) * weights[v] * b;
    }
  }
  return total;
}

JoinSideMarginal ExactMarginal(const Table& t, AttrId a) {
  ExactEvaluator eval(t);
  JoinSideMarginal side;
  side.n = static_cast<double>(t.num_rows());
  for (uint64_t c : eval.Histogram1D(a)) {
    side.mass.push_back(static_cast<double>(c));
  }
  return side;
}

TEST(FuseJoinCountTest, ExactMarginalsReproduceTheExactJoinCount) {
  auto left = RandomTable({5, 4}, 400, 41);
  auto right = RandomTable({5, 3}, 250, 42);
  auto fused = FuseJoinCount(ExactMarginal(*left, 0), ExactMarginal(*right, 0));
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  const double truth =
      ExactJoinCount(*left, 0, CountingQuery(2), *right, 0, CountingQuery(2));
  EXPECT_NEAR(fused->estimate.expectation, truth, 1e-9 * truth);
  EXPECT_GT(fused->estimate.variance, 0.0);
}

TEST(FuseJoinCountTest, DeltaVarianceMatchesTheHandFormula) {
  // left n=4, mass {3,1}; right n=2, mass {1,1}: estimate 3*1 + 1*1 = 4.
  // The left term vanishes (right marginal is constant); the right term is
  // n_S [ sum q_j a_j^2 - (sum q_j a_j)^2 ] = 2 [5 - 4] = 2.
  JoinSideMarginal left{4.0, {3.0, 1.0}};
  JoinSideMarginal right{2.0, {1.0, 1.0}};
  auto fused = FuseJoinCount(left, right);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  EXPECT_DOUBLE_EQ(fused->estimate.expectation, 4.0);
  EXPECT_NEAR(fused->estimate.variance, 2.0, 1e-12);
}

TEST(FuseJoinCountTest, DegenerateMarginalsHaveZeroVariance) {
  // All mass on one join value on both sides: the join count is a constant
  // n_L * n_R, so both delta terms vanish.
  JoinSideMarginal left{10.0, {10.0, 0.0}};
  JoinSideMarginal right{7.0, {7.0, 0.0}};
  auto fused = FuseJoinCount(left, right);
  ASSERT_TRUE(fused.ok());
  EXPECT_DOUBLE_EQ(fused->estimate.expectation, 70.0);
  EXPECT_NEAR(fused->estimate.variance, 0.0, 1e-12);
}

TEST(FuseJoinCountTest, MismatchedDomainsAreRejected) {
  JoinSideMarginal left{4.0, {2.0, 2.0}};
  JoinSideMarginal right{4.0, {2.0, 1.0, 1.0}};
  EXPECT_TRUE(FuseJoinCount(left, right).status().IsInvalidArgument());
}

TEST(FuseJoinSumTest, ExactGridReproducesTheExactJoinSum) {
  auto left = RandomTable({4, 5}, 300, 43);
  auto right = RandomTable({4, 3}, 200, 44);
  // Weights are the bucket representatives of the aggregated attribute.
  std::vector<double> weights;
  for (Code v = 0; v < left->domain(1).size(); ++v) {
    weights.push_back(2.0 * v + 1.0);
  }
  ExactEvaluator le(*left);
  const std::vector<uint64_t> h2 = le.Histogram2D(0, 1);
  std::vector<std::vector<double>> grid(left->domain(0).size());
  for (Code j = 0; j < left->domain(0).size(); ++j) {
    for (Code v = 0; v < left->domain(1).size(); ++v) {
      grid[j].push_back(
          static_cast<double>(h2[j * left->domain(1).size() + v]));
    }
  }
  auto fused = FuseJoinSum(static_cast<double>(left->num_rows()), grid,
                           weights, ExactMarginal(*right, 0));
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  const double truth = ExactJoinSum(*left, 0, 1, weights, *right, 0);
  EXPECT_NEAR(fused->estimate.expectation, truth, 1e-9 * truth);
  EXPECT_GT(fused->estimate.variance, 0.0);
}

/// Full point-pair 2-D statistics over (a, b): with these the MaxEnt model
/// reproduces the table's (a, b) joint exactly, so filtered join-attribute
/// marginals are exact and the fused estimate must hit ground truth.
std::vector<MultiDimStatistic> FullPairStats(const Table& t, AttrId a,
                                             AttrId b) {
  ExactEvaluator eval(t);
  const std::vector<uint64_t> h2 = eval.Histogram2D(a, b);
  const uint32_t nb = t.domain(b).size();
  std::vector<MultiDimStatistic> stats;
  for (Code ca = 0; ca < t.domain(a).size(); ++ca) {
    for (Code cb = 0; cb < nb; ++cb) {
      stats.push_back(Make2DStatistic(
          a, Interval{ca, ca}, b, Interval{cb, cb},
          static_cast<double>(h2[ca * nb + cb])));
    }
  }
  return stats;
}

TEST(EngineJoinFusionTest, FusedEstimateHitsGroundTruthWithFilters) {
  auto lt = RandomTable({5, 4}, 600, 45);
  auto rt = RandomTable({5, 3}, 400, 46);
  auto ls = EntropySummary::Build(*lt, FullPairStats(*lt, 0, 1));
  auto rs = EntropySummary::Build(*rt, FullPairStats(*rt, 0, 1));
  ASSERT_TRUE(ls.ok()) << ls.status().ToString();
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  auto left = EntropyEngine::FromSummary(*ls);
  auto right = EntropyEngine::FromSummary(*rs);

  CountingQuery lwhere(2);
  lwhere.Where(1, AttrPredicate::Range(1, 2));
  CountingQuery rwhere(2);
  rwhere.Where(1, AttrPredicate::Point(0));
  auto fused =
      left->AnswerJoin(AggregateQuery::JoinCount(0, 0, lwhere, rwhere), *right);
  ASSERT_TRUE(fused.ok()) << fused.status().ToString();
  const double truth = ExactJoinCount(*lt, 0, lwhere, *rt, 0, rwhere);
  ASSERT_GT(truth, 0.0);
  // The (join, filter) joint is pinned exactly by the 2-D statistics, so
  // the only slack is solver tolerance.
  EXPECT_NEAR(fused->estimate.expectation, truth, 1e-4 * truth);
  EXPECT_GT(fused->estimate.variance, 0.0);

  // JOIN_SUM of the left filter attribute with unit weights equals a
  // weighted join count; check it against brute force too.
  std::vector<double> weights(lt->domain(1).size());
  for (size_t v = 0; v < weights.size(); ++v) weights[v] = 1.0 + v;
  auto sum = left->AnswerJoin(
      AggregateQuery::JoinSum(1, weights, 0, 0, CountingQuery(2),
                              CountingQuery(2)),
      *right);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  const double sum_truth = ExactJoinSum(*lt, 0, 1, weights, *rt, 0);
  EXPECT_NEAR(sum->estimate.expectation, sum_truth, 1e-4 * sum_truth);
}

TEST(EngineJoinFusionTest, MismatchedJoinDomainsAreRejected) {
  auto lt = RandomTable({5, 4}, 100, 47);
  auto rt = RandomTable({6, 3}, 100, 48);
  auto ls = EntropySummary::Build(*lt, {});
  auto rs = EntropySummary::Build(*rt, {});
  ASSERT_TRUE(ls.ok() && rs.ok());
  auto left = EntropyEngine::FromSummary(*ls);
  auto right = EntropyEngine::FromSummary(*rs);
  auto fused = left->AnswerJoin(
      AggregateQuery::JoinCount(0, 0, CountingQuery(2), CountingQuery(2)),
      *right);
  EXPECT_TRUE(fused.status().IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
