// Quantile / top-k from a group-by marginal (maxent/quantile.h): CDF
// inversion over exact cells reproduces the exact order statistic, the
// typed bound brackets the estimate, top-k ordering is deterministic, and
// the engine facade's QUANTILE/TOPK hit exact ground truth when the model
// pins the relevant joint.

#include "maxent/quantile.h"

#include <algorithm>
#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/engine.h"
#include "query/exact_evaluator.h"

namespace entropydb {
namespace {

using testutil::RandomTable;

std::vector<QueryEstimate> Cells(const std::vector<double>& counts,
                                 double variance = 0.0) {
  std::vector<QueryEstimate> cells;
  for (double c : counts) {
    QueryEstimate e;
    e.expectation = c;
    e.variance = variance;
    cells.push_back(e);
  }
  return cells;
}

TEST(QuantileFromMarginalTest, InvertsTheExactCdf) {
  // Value multiset {10, 20x2, 30x3, 40x4}: the 0.5-quantile (5th of 10)
  // is 30, the 0.1-quantile is 10, the 0.95-quantile is 40.
  const std::vector<double> reps = {10, 20, 30, 40};
  auto cells = Cells({1, 2, 3, 4});
  auto median = QuantileFromMarginal(cells, reps, 0.5, 10.0);
  ASSERT_TRUE(median.ok()) << median.status().ToString();
  EXPECT_DOUBLE_EQ(median->estimate.expectation, 30.0);
  auto low = QuantileFromMarginal(cells, reps, 0.1, 10.0);
  ASSERT_TRUE(low.ok());
  EXPECT_DOUBLE_EQ(low->estimate.expectation, 10.0);
  auto high = QuantileFromMarginal(cells, reps, 0.95, 10.0);
  ASSERT_TRUE(high.ok());
  EXPECT_DOUBLE_EQ(high->estimate.expectation, 40.0);
}

TEST(QuantileFromMarginalTest, BoundBracketsTheEstimateAndSetsVariance) {
  const std::vector<double> reps = {10, 20, 30, 40};
  auto q = QuantileFromMarginal(Cells({5, 10, 10, 5}), reps, 0.5, 60.0);
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_TRUE(q->has_bound);
  EXPECT_LE(q->bound_lo, q->estimate.expectation);
  EXPECT_GE(q->bound_hi, q->estimate.expectation);
  // The variance is the matched normal proxy of the bound width.
  const double half = (q->bound_hi - q->bound_lo) / (2.0 * 1.96);
  EXPECT_NEAR(q->estimate.variance, half * half, 1e-12);
}

TEST(QuantileFromMarginalTest, RejectsBadInputs) {
  const std::vector<double> reps = {10, 20};
  EXPECT_TRUE(QuantileFromMarginal(Cells({1, 1}), reps, 0.0, 2.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(QuantileFromMarginal(Cells({1, 1}), reps, 1.0, 2.0)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(QuantileFromMarginal(Cells({1, 1, 1}), reps, 0.5, 3.0)
                  .status()
                  .IsInvalidArgument());
  // No mass under the filter: there is no order statistic to report.
  EXPECT_TRUE(QuantileFromMarginal(Cells({0, 0}), reps, 0.5, 2.0)
                  .status()
                  .IsFailedPrecondition());
}

TEST(TopKFromMarginalTest, OrdersByExpectationThenCode) {
  auto top = TopKFromMarginal(Cells({3, 7, 7, 1, 9}), 3);
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->cells.size(), 3u);
  EXPECT_EQ(top->cells[0].code, 4u);  // 9
  EXPECT_EQ(top->cells[1].code, 1u);  // 7, tie broken by ascending code
  EXPECT_EQ(top->cells[2].code, 2u);  // 7
  // The headline estimate is the largest cell.
  EXPECT_DOUBLE_EQ(top->estimate.expectation, 9.0);
}

TEST(TopKFromMarginalTest, ClampsKAndRejectsZero) {
  auto all = TopKFromMarginal(Cells({1, 2}), 10);
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->cells.size(), 2u);
  EXPECT_TRUE(TopKFromMarginal(Cells({1, 2}), 0).status().IsInvalidArgument());
}

/// Full point-pair 2-D statistics pin the (a, b) joint exactly (same
/// helper idea as join_fusion_test).
std::vector<MultiDimStatistic> FullPairStats(const Table& t, AttrId a,
                                             AttrId b) {
  ExactEvaluator eval(t);
  const std::vector<uint64_t> h2 = eval.Histogram2D(a, b);
  const uint32_t nb = t.domain(b).size();
  std::vector<MultiDimStatistic> stats;
  for (Code ca = 0; ca < t.domain(a).size(); ++ca) {
    for (Code cb = 0; cb < nb; ++cb) {
      stats.push_back(Make2DStatistic(a, Interval{ca, ca}, b,
                                      Interval{cb, cb},
                                      static_cast<double>(h2[ca * nb + cb])));
    }
  }
  return stats;
}

/// Exact quantile in representative space: reps[v*] for the smallest v*
/// whose cumulative exact count reaches q * C.
double ExactQuantile(const std::vector<uint64_t>& hist,
                     const std::vector<double>& reps, double q) {
  double total = 0.0;
  for (uint64_t c : hist) total += static_cast<double>(c);
  double cum = 0.0;
  for (size_t v = 0; v < hist.size(); ++v) {
    cum += static_cast<double>(hist[v]);
    if (cum >= q * total) return reps[v];
  }
  return reps.back();
}

TEST(EngineOrderStatisticsTest, QuantileAndTopKHitExactGroundTruth) {
  auto table = RandomTable({6, 5}, 900, 51);
  auto summary = EntropySummary::Build(*table, FullPairStats(*table, 0, 1));
  ASSERT_TRUE(summary.ok()) << summary.status().ToString();
  auto engine = EntropyEngine::FromSummary(*summary);
  const std::vector<double> reps = BucketWeights(table->domain(1));

  // Filtered quantile: the (0, 1) joint is exact, so the estimated CDF is
  // the exact CDF and the inversion lands on the exact order statistic.
  CountingQuery where(2);
  where.Where(0, AttrPredicate::Range(1, 3));
  auto q = engine->Answer(AggregateQuery::Quantile(1, reps, 0.5, where));
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ExactEvaluator eval(*table);
  std::vector<uint64_t> hist(table->domain(1).size(), 0);
  for (Code v = 0; v < table->domain(1).size(); ++v) {
    CountingQuery pt = where;
    pt.Where(1, AttrPredicate::Point(v));
    hist[v] = eval.Count(pt);
  }
  EXPECT_DOUBLE_EQ(q->estimate.expectation, ExactQuantile(hist, reps, 0.5));
  ASSERT_TRUE(q->has_bound);
  EXPECT_LE(q->bound_lo, q->estimate.expectation);
  EXPECT_GE(q->bound_hi, q->estimate.expectation);

  // TOPK under the same filter matches the exact top-2 cells, in order.
  auto top = engine->Answer(AggregateQuery::TopK(1, 2, where));
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  ASSERT_EQ(top->cells.size(), 2u);
  std::vector<Code> order(hist.size());
  for (size_t v = 0; v < order.size(); ++v) order[v] = static_cast<Code>(v);
  std::stable_sort(order.begin(), order.end(), [&](Code a, Code b) {
    return hist[a] > hist[b];
  });
  EXPECT_EQ(top->cells[0].code, order[0]);
  EXPECT_EQ(top->cells[1].code, order[1]);
  EXPECT_NEAR(top->cells[0].estimate.expectation,
              static_cast<double>(hist[order[0]]), 1e-4 * hist[order[0]]);
}

}  // namespace
}  // namespace entropydb
