#include "maxent/summary.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "../test_util.h"
#include "stats/selector.h"

namespace entropydb {
namespace {

using testutil::RandomDisjointStats;
using testutil::RandomTable;

TEST(SummaryTest, BuildFromTableAnswersSanely) {
  auto table = RandomTable({6, 5, 4}, 1000, 91);
  auto stats = RandomDisjointStats(*table, 0, 1, 6, 92);
  auto summary = EntropySummary::Build(*table, stats);
  ASSERT_TRUE(summary.ok());
  EXPECT_DOUBLE_EQ((*summary)->n(), 1000.0);
  EXPECT_EQ((*summary)->num_attributes(), 3u);
  EXPECT_EQ((*summary)->attr_names()[0], "A0");

  // The whole-table query must return n.
  auto est = (*summary)->Answer(CountingQuery(3));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->expectation, 1000.0, 1e-6);
}

TEST(SummaryTest, EstimatesTrackTruthOnHeavyRegions) {
  auto table = RandomTable({6, 5}, 2000, 93);
  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto stats = sel.Select(*table, 0, 1, 10);
  auto summary = EntropySummary::Build(*table, stats);
  ASSERT_TRUE(summary.ok());
  ExactEvaluator exact(*table);
  // Aggregate over a coarse region: estimate within 15% of truth.
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Range(0, 2));
  auto est = (*summary)->Answer(q);
  ASSERT_TRUE(est.ok());
  double truth = static_cast<double>(exact.Count(q));
  EXPECT_NEAR(est->expectation, truth, 0.15 * truth + 5.0);
}

class SummaryIoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "summary_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".edb";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(SummaryIoTest, SaveLoadRoundTripPreservesAnswers) {
  auto table = RandomTable({5, 6, 3}, 800, 94);
  auto stats = RandomDisjointStats(*table, 1, 2, 5, 95);
  auto built = EntropySummary::Build(*table, stats);
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(path_).ok());

  auto loaded = EntropySummary::Load(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ((*loaded)->n(), 800.0);
  EXPECT_EQ((*loaded)->attr_names(), (*built)->attr_names());

  Rng rng(96);
  for (int trial = 0; trial < 25; ++trial) {
    CountingQuery q(3);
    for (AttrId a = 0; a < 3; ++a) {
      if (rng.NextBernoulli(0.5)) continue;
      Code lo = static_cast<Code>(
          rng.Uniform((*built)->registry().domain_size(a)));
      Code hi = lo + static_cast<Code>(rng.Uniform(
                         (*built)->registry().domain_size(a) - lo));
      q.Where(a, AttrPredicate::Range(lo, hi));
    }
    auto e1 = (*built)->Answer(q);
    auto e2 = (*loaded)->Answer(q);
    ASSERT_TRUE(e1.ok());
    ASSERT_TRUE(e2.ok());
    EXPECT_NEAR(e1->expectation, e2->expectation, 1e-9);
    EXPECT_NEAR(e1->variance, e2->variance, 1e-6);
  }
}

TEST_F(SummaryIoTest, LoadRejectsMissingFile) {
  EXPECT_TRUE(
      EntropySummary::Load("/nonexistent/file.edb").status().IsIOError());
}

TEST_F(SummaryIoTest, LoadRejectsBadHeader) {
  std::ofstream out(path_);
  out << "NOT_A_SUMMARY\n";
  out.close();
  EXPECT_TRUE(EntropySummary::Load(path_).status().IsCorruption());
}

TEST_F(SummaryIoTest, LoadRejectsTruncatedFile) {
  auto table = RandomTable({4, 4}, 200, 97);
  auto built = EntropySummary::Build(*table, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->Save(path_).ok());
  // Truncate the file in the middle.
  std::ifstream in(path_);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path_);
  out << content.substr(0, content.size() / 2);
  out.close();
  EXPECT_FALSE(EntropySummary::Load(path_).ok());
}

TEST_F(SummaryIoTest, RegistryBuiltSummaryHasNoDomains) {
  // FromRegistry summaries carry no raw-value domains; Save/Load must
  // round-trip that state (the CLI refuses raw-value queries on them).
  auto table = RandomTable({4, 5}, 200, 191);
  auto reg = testutil::MakeRegistry(*table, {});
  auto built = EntropySummary::FromRegistry(std::move(reg));
  ASSERT_TRUE(built.ok());
  EXPECT_FALSE((*built)->has_domains());
  ASSERT_TRUE((*built)->Save(path_).ok());
  auto loaded = EntropySummary::Load(path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_FALSE((*loaded)->has_domains());
  // Code-space queries still work.
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(1));
  auto e1 = (*built)->Answer(q);
  auto e2 = (*loaded)->Answer(q);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_NEAR(e1->expectation, e2->expectation, 1e-9);
}

TEST_F(SummaryIoTest, TableBuiltSummaryCarriesDomains) {
  auto table = RandomTable({4, 5}, 200, 192);
  auto built = EntropySummary::Build(*table, {});
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->has_domains());
  EXPECT_EQ((*built)->domains().size(), 2u);
  EXPECT_TRUE((*built)->domains()[1] == table->domain(1));
}

TEST(SummaryTest, GroupByDelegates) {
  auto table = RandomTable({4, 4}, 300, 98);
  auto summary = EntropySummary::Build(*table, {});
  ASSERT_TRUE(summary.ok());
  auto groups =
      (*summary)->AnswerGroupBy({0}, {{0}, {1}}, CountingQuery(2));
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 2u);
}

TEST(SummaryTest, SolverReportExposed) {
  auto table = RandomTable({4, 4}, 300, 99);
  auto summary = EntropySummary::Build(*table, {});
  ASSERT_TRUE(summary.ok());
  EXPECT_GE((*summary)->solver_report().iterations, 1u);
  EXPECT_TRUE((*summary)->solver_report().converged);
}

}  // namespace
}  // namespace entropydb
