#include "maxent/mask.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(QueryMaskTest, DefaultAllowsEverything) {
  QueryMask mask(3);
  EXPECT_EQ(mask.num_attributes(), 3u);
  for (AttrId a = 0; a < 3; ++a) {
    EXPECT_TRUE(mask.IsAny(a));
    EXPECT_TRUE(mask.Allows(a, 0));
    EXPECT_TRUE(mask.Allows(a, 1000));
  }
}

TEST(QueryMaskTest, FromQueryMirrorsPredicates) {
  CountingQuery q(3);
  q.Where(0, AttrPredicate::Point(2));
  q.Where(2, AttrPredicate::Range(1, 3));
  QueryMask mask = QueryMask::FromQuery(q, {5, 4, 6});
  EXPECT_FALSE(mask.IsAny(0));
  EXPECT_TRUE(mask.IsAny(1));
  EXPECT_FALSE(mask.IsAny(2));
  EXPECT_TRUE(mask.Allows(0, 2));
  EXPECT_FALSE(mask.Allows(0, 1));
  EXPECT_FALSE(mask.Allows(2, 0));
  EXPECT_TRUE(mask.Allows(2, 3));
  EXPECT_FALSE(mask.Allows(2, 4));
}

TEST(QueryMaskTest, SetPredicateMask) {
  CountingQuery q(1);
  q.Where(0, AttrPredicate::InSet({0, 3}));
  QueryMask mask = QueryMask::FromQuery(q, {5});
  EXPECT_TRUE(mask.Allows(0, 0));
  EXPECT_FALSE(mask.Allows(0, 1));
  EXPECT_TRUE(mask.Allows(0, 3));
}

TEST(QueryMaskTest, RestrictOverridesAny) {
  QueryMask mask(2);
  mask.Restrict(1, {1, 0, 1});
  EXPECT_TRUE(mask.IsAny(0));
  EXPECT_FALSE(mask.IsAny(1));
  EXPECT_TRUE(mask.Allows(1, 0));
  EXPECT_FALSE(mask.Allows(1, 1));
  EXPECT_TRUE(mask.Allows(1, 2));
}

TEST(QueryMaskTest, EmptyRestrictionBlocksAll) {
  QueryMask mask(1);
  mask.Restrict(0, std::vector<uint8_t>(4, 0));
  for (Code v = 0; v < 4; ++v) EXPECT_FALSE(mask.Allows(0, v));
}

}  // namespace
}  // namespace entropydb
