#include "maxent/gradient_solver.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "maxent/dense_model.h"
#include "maxent/solver.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

TEST(GradientSolverTest, ConvergesOnSmallInstance) {
  auto table = RandomTable({5, 6}, 600, 121);
  auto reg = MakeRegistry(*table, RandomDisjointStats(*table, 0, 1, 5, 122));
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  GradientSolverOptions opts;
  opts.max_iterations = 2000;
  opts.tolerance = 1e-7;
  GradientMaxEntSolver solver(reg, *poly, opts);
  auto report = solver.Solve(&st);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged) << "error " << report->final_error;
}

TEST(GradientSolverTest, AgreesWithMirrorDescentSolution) {
  // Both solvers maximize the same strictly-concave-in-distribution dual:
  // the fitted distributions (not necessarily the overcomplete parameters)
  // must match.
  auto table = RandomTable({4, 4}, 400, 123);
  auto reg = MakeRegistry(*table, RandomDisjointStats(*table, 0, 1, 3, 124));
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());

  ModelState mirror = ModelState::InitialState(reg);
  SolverOptions mopts;
  mopts.max_iterations = 400;
  mopts.tolerance = 1e-10;
  ASSERT_TRUE(MaxEntSolver(reg, *poly, mopts).Solve(&mirror).ok());

  ModelState grad = ModelState::InitialState(reg);
  GradientSolverOptions gopts;
  gopts.max_iterations = 5000;
  gopts.tolerance = 1e-9;
  ASSERT_TRUE(GradientMaxEntSolver(reg, *poly, gopts).Solve(&grad).ok());

  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  for (uint64_t t = 0; t < dense->space().size(); ++t) {
    auto tuple = dense->space().TupleAt(t);
    EXPECT_NEAR(dense->TupleProbability(mirror, tuple),
                dense->TupleProbability(grad, tuple), 1e-5);
  }
}

TEST(GradientSolverTest, MirrorDescentNeedsFewerIterations) {
  // The reason the paper adopts coordinate mirror descent (Sec 2/3.3).
  auto table = RandomTable({6, 6}, 900, 125);
  auto reg = MakeRegistry(*table, RandomDisjointStats(*table, 0, 1, 8, 126));
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());

  ModelState mirror = ModelState::InitialState(reg);
  SolverOptions mopts;
  mopts.max_iterations = 500;
  mopts.tolerance = 1e-6;
  auto mreport = MaxEntSolver(reg, *poly, mopts).Solve(&mirror);
  ASSERT_TRUE(mreport.ok());
  ASSERT_TRUE(mreport->converged);

  ModelState grad = ModelState::InitialState(reg);
  GradientSolverOptions gopts;
  gopts.max_iterations = 500;
  gopts.tolerance = 1e-6;
  auto greport = GradientMaxEntSolver(reg, *poly, gopts).Solve(&grad);
  ASSERT_TRUE(greport.ok());

  if (greport->converged) {
    EXPECT_LE(mreport->iterations, greport->iterations);
  }  // else: gradient did not converge in the same budget — QED.
}

TEST(GradientSolverTest, PinsZeroTargets) {
  auto table = testutil::MakeTable(
      {3, 3}, {{1, 0}, {1, 1}, {2, 2}, {2, 0}});
  auto reg = MakeRegistry(*table, {});
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  GradientMaxEntSolver solver(reg, *poly);
  ASSERT_TRUE(solver.Solve(&st).ok());
  EXPECT_DOUBLE_EQ(st.alpha[0][0], 0.0);  // value 0 of attr 0 never occurs
}

TEST(GradientSolverTest, OneDOnlyImmediate) {
  auto table = RandomTable({4, 5}, 300, 127);
  auto reg = MakeRegistry(*table, {});
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  GradientMaxEntSolver solver(reg, *poly);
  auto report = solver.Solve(&st);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_LE(report->iterations, 2u);
}

}  // namespace
}  // namespace entropydb
