#include "maxent/solver.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "maxent/dense_model.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

TEST(SolverTest, OneDOnlyIsExactImmediately) {
  // With only 1-D statistics the closed form alpha = s/n is the exact
  // solution; the solver must report convergence after one sweep.
  auto table = RandomTable({5, 6, 4}, 500, 41);
  auto reg = MakeRegistry(*table, {});
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  MaxEntSolver solver(reg, *poly);
  auto report = solver.Solve(&st);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged);
  EXPECT_LE(report->iterations, 2u);
  EXPECT_LT(report->final_error, 1e-9);
}

TEST(SolverTest, MatchesAllStatisticsWithTwoDStats) {
  auto table = RandomTable({5, 6}, 800, 42);
  auto stats = RandomDisjointStats(*table, 0, 1, 6, 43);
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 300;
  opts.tolerance = 1e-8;
  MaxEntSolver solver(reg, *poly, opts);
  auto report = solver.Solve(&st);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged) << "error " << report->final_error;

  // Verify expectations against the dense oracle, not just the solver's own
  // bookkeeping: E[<c_j, I>] must equal s_j for every statistic.
  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  const double n = reg.n();
  const double full = dense->EvaluateUnmasked(st);
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      double expected = n * st.alpha[a][v] *
                        dense->AlphaDerivative(st, a, v) / full;
      EXPECT_NEAR(expected, reg.OneDTarget(a, v), 1e-5 * n)
          << "1-D statistic (" << a << ", " << v << ")";
    }
  }
  for (uint32_t j = 0; j < reg.num_multi_dim(); ++j) {
    double expected =
        n * st.delta[j] * dense->DeltaDerivative(st, j) / full;
    EXPECT_NEAR(expected, reg.multi_dim(j).target, 1e-5 * n)
        << "2-D statistic " << j;
  }
}

TEST(SolverTest, AgreesWithNaiveDenseSolver) {
  auto table = RandomTable({4, 4}, 300, 44);
  auto stats = RandomDisjointStats(*table, 0, 1, 4, 45);
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());

  ModelState fast = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 300;
  opts.tolerance = 1e-10;
  MaxEntSolver solver(reg, *poly, opts);
  ASSERT_TRUE(solver.Solve(&fast).ok());

  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  ModelState slow = ModelState::InitialState(reg);
  auto dense_report = dense->SolveNaive(&slow, 300, 1e-10);
  EXPECT_TRUE(dense_report.converged);

  // The MaxEnt distribution is unique, so tuple probabilities must agree
  // even if the (overcomplete) parameterizations differ.
  for (uint64_t t = 0; t < dense->space().size(); ++t) {
    auto tuple = dense->space().TupleAt(t);
    double pf = dense->TupleProbability(fast, tuple);
    double ps = dense->TupleProbability(slow, tuple);
    EXPECT_NEAR(pf, ps, 1e-6);
  }
}

TEST(SolverTest, ZeroTargetsStayPinned) {
  // Attribute value 0 of attribute 0 never occurs; its alpha must be 0.
  auto table = testutil::MakeTable(
      {3, 3}, {{1, 0}, {1, 1}, {2, 2}, {2, 0}, {1, 2}});
  auto stats = RandomDisjointStats(*table, 0, 1, 3, 46);
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  MaxEntSolver solver(reg, *poly);
  ASSERT_TRUE(solver.Solve(&st).ok());
  EXPECT_DOUBLE_EQ(st.alpha[0][0], 0.0);
  for (uint32_t j = 0; j < reg.num_multi_dim(); ++j) {
    if (reg.multi_dim(j).target == 0.0) {
      EXPECT_DOUBLE_EQ(st.delta[j], 0.0);
    }
  }
}

TEST(SolverTest, ErrorTraceIsRecordedAndDecreases) {
  auto table = RandomTable({6, 5}, 600, 47);
  auto stats = RandomDisjointStats(*table, 0, 1, 8, 48);
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 50;
  MaxEntSolver solver(reg, *poly, opts);
  auto report = solver.Solve(&st);
  ASSERT_TRUE(report.ok());
  ASSERT_GE(report->error_trace.size(), 2u);
  // Coordinate ascent on a concave dual: late error far below early error.
  EXPECT_LT(report->error_trace.back(),
            report->error_trace.front() + 1e-12);
}

TEST(SolverTest, ChainedComponentsConverge) {
  auto table = RandomTable({4, 5, 4}, 700, 49);
  auto s01 = RandomDisjointStats(*table, 0, 1, 4, 50);
  auto s12 = RandomDisjointStats(*table, 1, 2, 4, 51);
  std::vector<MultiDimStatistic> stats(s01);
  stats.insert(stats.end(), s12.begin(), s12.end());
  auto reg = MakeRegistry(*table, stats);
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 300;
  opts.tolerance = 1e-8;
  MaxEntSolver solver(reg, *poly, opts);
  auto report = solver.Solve(&st);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->converged) << "error " << report->final_error;
  EXPECT_LT(solver.MaxStatisticError(st), 1e-8);
}

TEST(SolverTest, MaxStatisticErrorConsistentWithDense) {
  auto table = RandomTable({4, 4}, 200, 52);
  auto reg = MakeRegistry(*table, RandomDisjointStats(*table, 0, 1, 3, 53));
  auto poly = CompressedPolynomial::Build(reg);
  ASSERT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);  // unsolved
  MaxEntSolver solver(reg, *poly);
  double fast_err = solver.MaxStatisticError(st);

  auto dense = DenseMaxEntModel::Create(reg);
  ASSERT_TRUE(dense.ok());
  const double n = reg.n();
  const double full = dense->EvaluateUnmasked(st);
  double dense_err = 0.0;
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      double e = n * st.alpha[a][v] * dense->AlphaDerivative(st, a, v) / full;
      dense_err = std::max(dense_err,
                           std::abs(e - reg.OneDTarget(a, v)) / n);
    }
  }
  for (uint32_t j = 0; j < reg.num_multi_dim(); ++j) {
    double e = n * st.delta[j] * dense->DeltaDerivative(st, j) / full;
    dense_err =
        std::max(dense_err, std::abs(e - reg.multi_dim(j).target) / n);
  }
  EXPECT_NEAR(fast_err, dense_err, 1e-9);
}

}  // namespace
}  // namespace entropydb
