// Parameterized end-to-end property sweep: for every polynomial shape the
// compressed representation supports, the solved model must reproduce all
// fitted statistics and agree with dense enumeration on arbitrary queries.

#include <gtest/gtest.h>

#include "../test_util.h"
#include "maxent/answerer.h"
#include "maxent/dense_model.h"
#include "maxent/solver.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

struct SolverSweepParam {
  std::vector<uint32_t> domains;
  std::vector<std::pair<AttrId, AttrId>> pairs;
  size_t stats_per_pair;
  uint64_t seed;
};

class SolverSweepTest : public ::testing::TestWithParam<SolverSweepParam> {
 protected:
  void Solve() {
    const auto& p = GetParam();
    table_ = RandomTable(p.domains, 500, p.seed);
    std::vector<MultiDimStatistic> stats;
    for (size_t i = 0; i < p.pairs.size(); ++i) {
      auto s = RandomDisjointStats(*table_, p.pairs[i].first,
                                   p.pairs[i].second, p.stats_per_pair,
                                   p.seed + i + 1);
      stats.insert(stats.end(), s.begin(), s.end());
    }
    reg_ = std::make_unique<VariableRegistry>(MakeRegistry(*table_, stats));
    auto poly = CompressedPolynomial::Build(*reg_);
    ASSERT_TRUE(poly.ok());
    poly_ = std::make_unique<CompressedPolynomial>(std::move(*poly));
    state_ = ModelState::InitialState(*reg_);
    SolverOptions opts;
    opts.max_iterations = 400;
    opts.tolerance = 1e-9;
    MaxEntSolver solver(*reg_, *poly_, opts);
    auto report = solver.Solve(&state_);
    ASSERT_TRUE(report.ok());
    converged_ = report->converged;
    final_error_ = report->final_error;
  }

  std::shared_ptr<Table> table_;
  std::unique_ptr<VariableRegistry> reg_;
  std::unique_ptr<CompressedPolynomial> poly_;
  ModelState state_;
  bool converged_ = false;
  double final_error_ = 0.0;
};

TEST_P(SolverSweepTest, ConvergesAndMatchesEveryStatistic) {
  Solve();
  EXPECT_TRUE(converged_) << "final error " << final_error_;
  // Independent verification through the compressed machinery itself.
  MaxEntSolver checker(*reg_, *poly_);
  EXPECT_LT(checker.MaxStatisticError(state_), 1e-7);
}

TEST_P(SolverSweepTest, QueriesAgreeWithDenseOracle) {
  Solve();
  auto dense = DenseMaxEntModel::Create(*reg_);
  ASSERT_TRUE(dense.ok());
  QueryAnswerer answerer(*reg_, *poly_, state_);
  Rng rng(GetParam().seed + 999);
  for (int trial = 0; trial < 15; ++trial) {
    CountingQuery q(reg_->num_attributes());
    for (AttrId a = 0; a < reg_->num_attributes(); ++a) {
      if (rng.NextBernoulli(0.4)) continue;
      Code lo = static_cast<Code>(rng.Uniform(reg_->domain_size(a)));
      Code hi = lo + static_cast<Code>(rng.Uniform(reg_->domain_size(a) - lo));
      q.Where(a, AttrPredicate::Range(lo, hi));
    }
    auto est = answerer.Answer(q);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est->expectation, dense->CountEstimate(state_, q), 1e-5);
  }
}

TEST_P(SolverSweepTest, ModelMassEqualsCardinality) {
  Solve();
  QueryAnswerer answerer(*reg_, *poly_, state_);
  auto whole = answerer.Answer(CountingQuery(reg_->num_attributes()));
  ASSERT_TRUE(whole.ok());
  EXPECT_NEAR(whole->expectation, reg_->n(), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SolverSweepTest,
    ::testing::Values(
        SolverSweepParam{{4, 5}, {{0, 1}}, 4, 211},
        SolverSweepParam{{4, 5, 3}, {{0, 1}, {1, 2}}, 3, 212},
        SolverSweepParam{{3, 4, 3, 4}, {{0, 1}, {2, 3}}, 3, 213},
        SolverSweepParam{{3, 3, 4, 4}, {{0, 3}, {1, 3}, {2, 3}}, 3, 214},
        SolverSweepParam{{4, 4, 5}, {{0, 1}}, 6, 215},
        SolverSweepParam{{6, 6}, {{0, 1}}, 10, 216},
        SolverSweepParam{{3, 3, 3, 3}, {{0, 1}, {1, 2}, {2, 3}}, 2, 217},
        SolverSweepParam{{5, 4, 3}, {}, 0, 218}));

}  // namespace
}  // namespace entropydb
