#include "maxent/answerer.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"
#include "maxent/dense_model.h"
#include "maxent/solver.h"

namespace entropydb {
namespace {

using testutil::MakeRegistry;
using testutil::RandomDisjointStats;
using testutil::RandomTable;

struct Solved {
  VariableRegistry reg;
  CompressedPolynomial poly;
  ModelState state;
};

Solved SolveFor(const Table& table, std::vector<MultiDimStatistic> stats) {
  auto reg = MakeRegistry(table, std::move(stats));
  auto poly = CompressedPolynomial::Build(reg);
  EXPECT_TRUE(poly.ok());
  ModelState st = ModelState::InitialState(reg);
  SolverOptions opts;
  opts.max_iterations = 200;
  opts.tolerance = 1e-10;
  MaxEntSolver solver(reg, *poly, opts);
  EXPECT_TRUE(solver.Solve(&st).ok());
  return Solved{std::move(reg), std::move(*poly), std::move(st)};
}

TEST(AnswererTest, MatchesDenseModelOnRandomQueries) {
  auto table = RandomTable({5, 6, 4}, 600, 61);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 5, 62));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  auto dense = DenseMaxEntModel::Create(s.reg);
  ASSERT_TRUE(dense.ok());

  Rng rng(63);
  for (int trial = 0; trial < 40; ++trial) {
    CountingQuery q(3);
    for (AttrId a = 0; a < 3; ++a) {
      if (rng.NextBernoulli(0.4)) continue;
      Code lo = static_cast<Code>(rng.Uniform(s.reg.domain_size(a)));
      Code hi =
          lo + static_cast<Code>(rng.Uniform(s.reg.domain_size(a) - lo));
      q.Where(a, AttrPredicate::Range(lo, hi));
    }
    auto est = answerer.Answer(q);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est->expectation, dense->CountEstimate(s.state, q), 1e-6);
  }
}

TEST(AnswererTest, OneDStatisticsAreReproducedExactly) {
  // Querying exactly a 1-D statistic must return its target (that is what
  // the solver fitted).
  auto table = RandomTable({5, 4}, 500, 64);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 4, 65));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  for (AttrId a = 0; a < 2; ++a) {
    for (Code v = 0; v < s.reg.domain_size(a); ++v) {
      CountingQuery q(2);
      q.Where(a, AttrPredicate::Point(v));
      auto est = answerer.Answer(q);
      ASSERT_TRUE(est.ok());
      EXPECT_NEAR(est->expectation, s.reg.OneDTarget(a, v), 1e-4);
    }
  }
}

TEST(AnswererTest, TwoDStatisticsAreReproducedExactly) {
  auto table = RandomTable({6, 6}, 800, 66);
  auto stats = RandomDisjointStats(*table, 0, 1, 6, 67);
  auto s = SolveFor(*table, stats);
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  for (const auto& stat : stats) {
    CountingQuery q(2);
    q.Where(stat.attrs[0], AttrPredicate::Range(stat.ranges[0].lo,
                                                stat.ranges[0].hi));
    q.Where(stat.attrs[1], AttrPredicate::Range(stat.ranges[1].lo,
                                                stat.ranges[1].hi));
    auto est = answerer.Answer(q);
    ASSERT_TRUE(est.ok());
    EXPECT_NEAR(est->expectation, stat.target, 1e-3);
  }
}

TEST(AnswererTest, FullCoverage2DStatsMakePointQueriesExact) {
  // A complete partition of a 2-attribute table into single cells pins the
  // model to the exact joint distribution.
  auto table = RandomTable({4, 3}, 400, 68);
  std::vector<MultiDimStatistic> stats;
  ExactEvaluator eval(*table);
  auto hist = eval.Histogram2D(0, 1);
  for (Code a = 0; a < 4; ++a) {
    for (Code b = 0; b < 3; ++b) {
      stats.push_back(Make2DStatistic(
          0, {a, a}, 1, {b, b}, static_cast<double>(hist[a * 3 + b])));
    }
  }
  auto s = SolveFor(*table, stats);
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  for (Code a = 0; a < 4; ++a) {
    for (Code b = 0; b < 3; ++b) {
      CountingQuery q(2);
      q.Where(0, AttrPredicate::Point(a)).Where(1, AttrPredicate::Point(b));
      auto est = answerer.Answer(q);
      ASSERT_TRUE(est.ok());
      EXPECT_NEAR(est->expectation, static_cast<double>(hist[a * 3 + b]),
                  1e-3);
    }
  }
}

TEST(AnswererTest, EmptyQueryReturnsN) {
  auto table = RandomTable({4, 4}, 300, 69);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  auto est = answerer.Answer(CountingQuery(2));
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->expectation, 300.0, 1e-9);
  EXPECT_NEAR(est->variance, 0.0, 1e-9);  // p = 1
}

TEST(AnswererTest, ImpossibleQueryReturnsZero) {
  auto table = RandomTable({4, 4}, 300, 70);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::InSet({}));
  auto est = answerer.Answer(q);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->expectation, 0.0);
  EXPECT_DOUBLE_EQ(est->variance, 0.0);
}

TEST(AnswererTest, VarianceIsBinomial) {
  auto table = RandomTable({4, 4}, 400, 71);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(1));
  auto est = answerer.Answer(q);
  ASSERT_TRUE(est.ok());
  double p = est->expectation / 400.0;
  EXPECT_NEAR(est->variance, 400.0 * p * (1.0 - p), 1e-6);
  EXPECT_NEAR(est->StdDev() * est->StdDev(), est->variance, 1e-9);
}

TEST(AnswererTest, ConfidenceIntervalClampsToValidCounts) {
  QueryEstimate est;
  est.expectation = 2.0;
  est.variance = 100.0;
  auto [lo, hi] = est.ConfidenceInterval(2.0, 1000.0);
  EXPECT_DOUBLE_EQ(lo, 0.0);  // would be negative unclamped
  EXPECT_GT(hi, est.expectation);
  EXPECT_LE(hi, 1000.0);
}

TEST(AnswererTest, RoundedCount) {
  QueryEstimate a;
  a.expectation = 0.4;
  EXPECT_DOUBLE_EQ(a.RoundedCount(), 0.0);
  a.expectation = 0.6;
  EXPECT_DOUBLE_EQ(a.RoundedCount(), 1.0);
}

TEST(AnswererTest, GroupByMatchesIndividualAnswers) {
  auto table = RandomTable({4, 5}, 400, 72);
  auto s = SolveFor(*table, RandomDisjointStats(*table, 0, 1, 4, 73));
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  std::vector<std::vector<Code>> keys = {{0, 0}, {1, 2}, {3, 4}};
  auto groups = answerer.AnswerGroupBy({0, 1}, keys, CountingQuery(2));
  ASSERT_TRUE(groups.ok());
  ASSERT_EQ(groups->size(), 3u);
  for (const auto& key : keys) {
    CountingQuery q(2);
    q.Where(0, AttrPredicate::Point(key[0]));
    q.Where(1, AttrPredicate::Point(key[1]));
    auto single = answerer.Answer(q);
    ASSERT_TRUE(single.ok());
    EXPECT_DOUBLE_EQ(groups->at(key).expectation, single->expectation);
  }
}

TEST(AnswererTest, ArityMismatchRejected) {
  auto table = RandomTable({4, 4}, 100, 74);
  auto s = SolveFor(*table, {});
  QueryAnswerer answerer(s.reg, s.poly, s.state);
  EXPECT_TRUE(
      answerer.Answer(CountingQuery(3)).status().IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
