// Versioned roots (storage/version_set.h): atomic CURRENT flips, begin/
// clone/publish lifecycle, retention GC with the shared staleness rule,
// persisted retention, and corruption handling.

#include "storage/version_set.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace entropydb {
namespace {

namespace fs = std::filesystem;

class VersionSetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = (fs::temp_directory_path() /
             ("entropydb_version_set_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name())))
                .string();
    fs::remove_all(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  Env* env() { return Env::Default(); }

  /// Populates VersionDir(id) with a top-level file and a subdirectory
  /// file, standing in for MANIFEST + shard data.
  void FillVersion(VersionSet& vs, uint64_t id, const std::string& tag) {
    const std::string dir = vs.VersionDir(id);
    ASSERT_TRUE(env()->CreateDirs(dir + "/shard_0").ok());
    ASSERT_TRUE(env()->WriteFile(dir + "/MANIFEST", "manifest " + tag).ok());
    ASSERT_TRUE(
        env()->WriteFile(dir + "/shard_0/data", "shard " + tag).ok());
  }

  std::string ReadOrDie(const std::string& path) {
    std::string text;
    EXPECT_TRUE(env()->ReadFile(path, &text).ok()) << path;
    return text;
  }

  std::string root_;
};

TEST_F(VersionSetTest, FreshRootOpensEmpty) {
  EXPECT_FALSE(VersionSet::IsVersionedRoot(root_, env()));
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok()) << vs.status().ToString();
  EXPECT_EQ((*vs)->current(), 0u);
  EXPECT_TRUE((*vs)->versions().empty());
  // No CURRENT yet: the root is not recognized as versioned until the
  // first publish, so engine open still treats it as a plain directory.
  EXPECT_FALSE(VersionSet::IsVersionedRoot(root_, env()));
}

TEST_F(VersionSetTest, PublishFlipsCurrentAtomically) {
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok());
  const uint64_t id = (*vs)->BeginVersion();
  EXPECT_EQ(id, 1u);
  FillVersion(**vs, id, "one");
  ASSERT_TRUE((*vs)->Publish(id).ok());
  EXPECT_EQ((*vs)->current(), 1u);
  EXPECT_TRUE(VersionSet::IsVersionedRoot(root_, env()));

  // A second opener sees the published pointer.
  auto again = VersionSet::Open(root_, env());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ((*again)->current(), 1u);
  EXPECT_EQ((*again)->CurrentDir(), (*again)->VersionDir(1));
  EXPECT_EQ(ReadOrDie((*again)->CurrentDir() + "/MANIFEST"),
            "manifest one");
}

TEST_F(VersionSetTest, PublishRequiresTheDirectory) {
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok());
  const uint64_t id = (*vs)->BeginVersion();
  EXPECT_FALSE((*vs)->Publish(id).ok());
  EXPECT_EQ((*vs)->current(), 0u);
}

TEST_F(VersionSetTest, PublishRefusesNonMonotonicIds) {
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok());
  FillVersion(**vs, (*vs)->BeginVersion(), "one");
  ASSERT_TRUE((*vs)->Publish(1).ok());
  // Republishing the live id (or anything older) is refused: versions are
  // immutable once flipped in.
  EXPECT_FALSE((*vs)->Publish(1).ok());
}

TEST_F(VersionSetTest, CloneLinksShardDataAndCopiesTopLevel) {
  VersionSet::Options opts;
  opts.retain = 4;
  auto vs = VersionSet::Open(root_, env(), opts);
  ASSERT_TRUE(vs.ok());
  FillVersion(**vs, (*vs)->BeginVersion(), "one");
  ASSERT_TRUE((*vs)->Publish(1).ok());

  const uint64_t id = (*vs)->BeginVersion();
  EXPECT_EQ(id, 2u);
  ASSERT_TRUE((*vs)->CloneCurrentTo(id).ok());
  EXPECT_EQ(ReadOrDie((*vs)->VersionDir(2) + "/MANIFEST"), "manifest one");
  EXPECT_EQ(ReadOrDie((*vs)->VersionDir(2) + "/shard_0/data"), "shard one");

  // The top-level MANIFEST is a byte copy: ingest rewrites it in the
  // clone, and that rewrite must not reach back into the published v1.
  ASSERT_TRUE(
      env()->WriteFile((*vs)->VersionDir(2) + "/MANIFEST", "manifest two")
          .ok());
  ASSERT_TRUE((*vs)->Publish(2).ok());
  EXPECT_EQ(ReadOrDie((*vs)->VersionDir(1) + "/MANIFEST"), "manifest one");
  EXPECT_EQ(ReadOrDie((*vs)->VersionDir(2) + "/MANIFEST"), "manifest two");
}

TEST_F(VersionSetTest, CloneRequiresAPublishedCurrent) {
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok());
  EXPECT_FALSE((*vs)->CloneCurrentTo((*vs)->BeginVersion()).ok());
}

TEST_F(VersionSetTest, RetentionGCDropsOldVersions) {
  VersionSet::Options opts;
  opts.retain = 2;
  auto vs = VersionSet::Open(root_, env(), opts);
  ASSERT_TRUE(vs.ok());
  for (uint64_t i = 1; i <= 4; ++i) {
    const uint64_t id = (*vs)->BeginVersion();
    ASSERT_EQ(id, i);
    FillVersion(**vs, id, std::to_string(id));
    ASSERT_TRUE((*vs)->Publish(id).ok());
  }
  EXPECT_EQ((*vs)->versions(), (std::vector<uint64_t>{3, 4}));
  EXPECT_FALSE(fs::exists((*vs)->VersionDir(1)));
  EXPECT_FALSE(fs::exists((*vs)->VersionDir(2)));
  EXPECT_TRUE(fs::exists((*vs)->VersionDir(3)));
  EXPECT_TRUE(fs::exists((*vs)->VersionDir(4)));
}

TEST_F(VersionSetTest, RetentionWindowIsPersistedInCurrent) {
  {
    VersionSet::Options opts;
    opts.retain = 3;
    auto vs = VersionSet::Open(root_, env(), opts);
    ASSERT_TRUE(vs.ok());
    for (uint64_t i = 1; i <= 3; ++i) {
      FillVersion(**vs, (*vs)->BeginVersion(), std::to_string(i));
      ASSERT_TRUE((*vs)->Publish(i).ok());
    }
  }
  // A reopener with the default options (retain = 0 = "adopt on-disk")
  // applies the publisher's window, not its own default of 2 — otherwise
  // a read-only CLI open would GC versions the publisher retained.
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ((*vs)->retain(), 3u);
  EXPECT_EQ((*vs)->versions(), (std::vector<uint64_t>{1, 2, 3}));
}

TEST_F(VersionSetTest, StrandedUnpublishedVersionIsSweptAtOpen) {
  {
    auto vs = VersionSet::Open(root_, env());
    ASSERT_TRUE(vs.ok());
    FillVersion(**vs, (*vs)->BeginVersion(), "one");
    ASSERT_TRUE((*vs)->Publish(1).ok());
    // Crash simulation: v2 built but never published, plus a torn
    // CURRENT.tmp from a dying flip.
    FillVersion(**vs, (*vs)->BeginVersion(), "two");
    ASSERT_TRUE(env()->WriteFile(root_ + "/CURRENT.tmp", "torn").ok());
  }
  auto vs = VersionSet::Open(root_, env());
  ASSERT_TRUE(vs.ok());
  EXPECT_EQ((*vs)->current(), 1u);
  EXPECT_FALSE(fs::exists(root_ + "/v2"));
  EXPECT_FALSE(fs::exists(root_ + "/CURRENT.tmp"));
  // The swept id is not reused for a directory that might be half-there:
  // BeginVersion keeps moving forward from the highest id ever seen... or
  // reuses 2 safely because the sweep removed it. Either is sound; what
  // matters is the next publish lands.
  const uint64_t id = (*vs)->BeginVersion();
  FillVersion(**vs, id, "redo");
  ASSERT_TRUE((*vs)->Publish(id).ok());
  EXPECT_EQ((*vs)->current(), id);
}

TEST_F(VersionSetTest, CorruptCurrentIsAnError) {
  {
    auto vs = VersionSet::Open(root_, env());
    ASSERT_TRUE(vs.ok());
    FillVersion(**vs, (*vs)->BeginVersion(), "one");
    ASSERT_TRUE((*vs)->Publish(1).ok());
  }
  ASSERT_TRUE(env()->WriteFile(root_ + "/CURRENT", "garbage").ok());
  auto vs = VersionSet::Open(root_, env());
  ASSERT_FALSE(vs.ok());
  EXPECT_EQ(vs.status().code(), StatusCode::kCorruption);
}

TEST_F(VersionSetTest, RefreshSeesAnotherProcessesPublish) {
  auto reader = VersionSet::Open(root_, env());
  ASSERT_TRUE(reader.ok());
  {
    auto writer = VersionSet::Open(root_, env());
    ASSERT_TRUE(writer.ok());
    FillVersion(**writer, (*writer)->BeginVersion(), "one");
    ASSERT_TRUE((*writer)->Publish(1).ok());
  }
  EXPECT_EQ((*reader)->current(), 0u);
  auto changed = (*reader)->Refresh();
  ASSERT_TRUE(changed.ok()) << changed.status().ToString();
  EXPECT_TRUE(*changed);
  EXPECT_EQ((*reader)->current(), 1u);
  // A second refresh with nothing new is a no-op.
  changed = (*reader)->Refresh();
  ASSERT_TRUE(changed.ok());
  EXPECT_FALSE(*changed);
}

}  // namespace
}  // namespace entropydb
