// TablePartitioner: disjoint full-coverage row splits, scheme determinism,
// domain preservation, and the degenerate-shard guards.

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "storage/partitioner.h"

namespace entropydb {
namespace {

TEST(PartitionerTest, RoundRobinBalancesAndPreservesOrder) {
  auto table = testutil::RandomTable({5, 4, 3}, 103, 17);
  PartitionOptions opts;
  opts.num_shards = 4;
  opts.scheme = PartitionScheme::kRoundRobin;
  auto shards = TablePartitioner::Partition(*table, opts);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 4u);
  // 103 = 4 * 25 + 3: shards 0-2 get 26 rows, shard 3 gets 25.
  EXPECT_EQ((*shards)[0]->num_rows(), 26u);
  EXPECT_EQ((*shards)[1]->num_rows(), 26u);
  EXPECT_EQ((*shards)[2]->num_rows(), 26u);
  EXPECT_EQ((*shards)[3]->num_rows(), 25u);
  // Shard s row k is base row s + 4k (base order preserved within shards).
  for (size_t s = 0; s < 4; ++s) {
    for (size_t k = 0; k < (*shards)[s]->num_rows(); ++k) {
      for (AttrId a = 0; a < 3; ++a) {
        EXPECT_EQ((*shards)[s]->at(k, a), table->at(s + 4 * k, a));
      }
    }
  }
}

TEST(PartitionerTest, ShardsKeepBaseSchemaAndDomains) {
  auto table = testutil::RandomTable({6, 3}, 40, 19);
  PartitionOptions opts;
  opts.num_shards = 2;
  auto shards = TablePartitioner::Partition(*table, opts);
  ASSERT_TRUE(shards.ok());
  for (const auto& shard : *shards) {
    ASSERT_EQ(shard->num_attributes(), table->num_attributes());
    for (AttrId a = 0; a < table->num_attributes(); ++a) {
      // Full base domains even if a shard never saw some value — codes
      // must stay position-compatible across shards.
      EXPECT_EQ(shard->domain(a).size(), table->domain(a).size());
      EXPECT_EQ(shard->schema().attribute(a).name,
                table->schema().attribute(a).name);
    }
  }
}

TEST(PartitionerTest, HashCoversEveryRowExactlyOnceAndIsDeterministic) {
  auto table = testutil::RandomTable({7, 5, 4}, 500, 23);
  PartitionOptions opts;
  opts.num_shards = 3;
  opts.scheme = PartitionScheme::kHash;
  auto first = TablePartitioner::Partition(*table, opts);
  auto second = TablePartitioner::Partition(*table, opts);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());

  size_t total = 0;
  std::multiset<std::vector<Code>> seen;
  for (size_t s = 0; s < first->size(); ++s) {
    const Table& shard = *(*first)[s];
    total += shard.num_rows();
    for (size_t r = 0; r < shard.num_rows(); ++r) {
      std::vector<Code> row(3);
      for (AttrId a = 0; a < 3; ++a) row[a] = shard.at(r, a);
      seen.insert(row);
    }
    // Same options => bitwise the same split.
    ASSERT_EQ(shard.num_rows(), (*second)[s]->num_rows());
    for (size_t r = 0; r < shard.num_rows(); ++r) {
      for (AttrId a = 0; a < 3; ++a) {
        EXPECT_EQ(shard.at(r, a), (*second)[s]->at(r, a));
      }
    }
  }
  EXPECT_EQ(total, table->num_rows());
  std::multiset<std::vector<Code>> base;
  for (size_t r = 0; r < table->num_rows(); ++r) {
    std::vector<Code> row(3);
    for (AttrId a = 0; a < 3; ++a) row[a] = table->at(r, a);
    base.insert(row);
  }
  EXPECT_EQ(seen, base);
}

TEST(PartitionerTest, HashAssignmentMatchesShardOf) {
  auto table = testutil::RandomTable({4, 4}, 120, 29);
  PartitionOptions opts;
  opts.num_shards = 4;
  opts.scheme = PartitionScheme::kHash;
  std::vector<size_t> expected_sizes(4, 0);
  for (size_t r = 0; r < table->num_rows(); ++r) {
    ++expected_sizes[TablePartitioner::ShardOf(*table, r, opts)];
  }
  auto shards = TablePartitioner::Partition(*table, opts);
  ASSERT_TRUE(shards.ok());
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ((*shards)[s]->num_rows(), expected_sizes[s]);
  }
}

TEST(PartitionerTest, SchemeTokensRoundTrip) {
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kRoundRobin),
               "roundrobin");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kHash), "hash");
  auto rr = ParsePartitionScheme("roundrobin");
  ASSERT_TRUE(rr.ok());
  EXPECT_EQ(*rr, PartitionScheme::kRoundRobin);
  auto rr2 = ParsePartitionScheme("rr");
  ASSERT_TRUE(rr2.ok());
  EXPECT_EQ(*rr2, PartitionScheme::kRoundRobin);
  auto hash = ParsePartitionScheme("hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(*hash, PartitionScheme::kHash);
  EXPECT_TRUE(ParsePartitionScheme("modulo").status().IsInvalidArgument());
}

TEST(PartitionerTest, AttributeSchemeOwnsContiguousDomainSlices) {
  // Domain of 12 cut into 4 shards: shard s owns codes [3s, 3s + 3).
  auto table = testutil::RandomTable({12, 5}, 240, 41);
  PartitionOptions opts;
  opts.num_shards = 4;
  opts.scheme = PartitionScheme::kAttribute;
  opts.partition_attr = 0;
  auto shards = TablePartitioner::Partition(*table, opts);
  ASSERT_TRUE(shards.ok()) << shards.status().ToString();
  ASSERT_EQ(shards->size(), 4u);
  size_t total = 0;
  for (size_t s = 0; s < 4; ++s) {
    total += (*shards)[s]->num_rows();
    for (size_t r = 0; r < (*shards)[s]->num_rows(); ++r) {
      const Code c = (*shards)[s]->at(r, 0);
      EXPECT_GE(c, 3 * s);
      EXPECT_LT(c, 3 * s + 3);
    }
  }
  EXPECT_EQ(total, 240u);
  // Row-order independent: routing depends on the code alone.
  for (size_t r = 0; r < table->num_rows(); ++r) {
    EXPECT_EQ(TablePartitioner::ShardOf(*table, r, opts),
              table->at(r, 0) * 4 / 12);
  }
}

TEST(PartitionerTest, AttributeSchemeValidatesItsParameters) {
  auto table = testutil::RandomTable({3, 3}, 50, 43);
  PartitionOptions opts;
  opts.scheme = PartitionScheme::kAttribute;
  opts.num_shards = 2;
  opts.partition_attr = 7;  // out of range
  EXPECT_TRUE(TablePartitioner::Partition(*table, opts)
                  .status()
                  .IsInvalidArgument());
  opts.partition_attr = 0;
  opts.num_shards = 4;  // more shards than the domain has codes
  EXPECT_TRUE(TablePartitioner::Partition(*table, opts)
                  .status()
                  .IsInvalidArgument());
}

TEST(PartitionerTest, PartitionSpecTokensRoundTrip) {
  auto attr = ParsePartitionSpec("attr:3");
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr->scheme, PartitionScheme::kAttribute);
  EXPECT_EQ(attr->attr, 3u);
  EXPECT_EQ(PartitionSpecToken(*attr), "attr:3");

  auto hash = ParsePartitionSpec("hash");
  ASSERT_TRUE(hash.ok());
  EXPECT_EQ(hash->scheme, PartitionScheme::kHash);
  EXPECT_EQ(PartitionSpecToken(*hash), "hash");

  EXPECT_TRUE(ParsePartitionSpec("attr:").status().IsInvalidArgument());
  EXPECT_TRUE(ParsePartitionSpec("attr:x").status().IsInvalidArgument());
  EXPECT_TRUE(ParsePartitionSpec("modulo").status().IsInvalidArgument());
  // The bare scheme parser does NOT accept parameterized tokens.
  EXPECT_TRUE(ParsePartitionScheme("attr:3").status().IsInvalidArgument());
}

TEST(PartitionerTest, RejectsDegenerateShardCounts) {
  auto table = testutil::RandomTable({3, 3}, 10, 31);
  PartitionOptions opts;
  opts.num_shards = 0;
  EXPECT_TRUE(TablePartitioner::Partition(*table, opts)
                  .status()
                  .IsInvalidArgument());
  opts.num_shards = 11;  // more shards than rows
  EXPECT_TRUE(TablePartitioner::Partition(*table, opts)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
