#include "storage/domain.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(DomainTest, CategoricalEncodeDecode) {
  auto d = Domain::Categorical({"CA", "NY", "WA"});
  EXPECT_TRUE(d.is_categorical());
  EXPECT_EQ(d.size(), 3u);
  EXPECT_EQ(*d.Encode(Value(std::string("NY"))), 1u);
  EXPECT_EQ(d.LabelFor(2), "WA");
  EXPECT_EQ(d.RepresentativeFor(0).as_string(), "CA");
}

TEST(DomainTest, CategoricalRejectsUnknownLabel) {
  auto d = Domain::Categorical({"a"});
  EXPECT_TRUE(d.Encode(Value(std::string("b"))).status().IsNotFound());
}

TEST(DomainTest, CategoricalRejectsNonString) {
  auto d = Domain::Categorical({"a"});
  EXPECT_TRUE(d.Encode(Value(int64_t{3})).status().IsInvalidArgument());
}

TEST(DomainTest, BinnedBucketAssignment) {
  auto d = Domain::Binned(0.0, 100.0, 10);  // width 10
  EXPECT_FALSE(d.is_categorical());
  EXPECT_EQ(d.size(), 10u);
  EXPECT_EQ(d.BucketOf(0.0), 0u);
  EXPECT_EQ(d.BucketOf(9.999), 0u);
  EXPECT_EQ(d.BucketOf(10.0), 1u);
  EXPECT_EQ(d.BucketOf(95.0), 9u);
}

TEST(DomainTest, BinnedClampsOutOfRange) {
  auto d = Domain::Binned(0.0, 100.0, 10);
  EXPECT_EQ(d.BucketOf(-5.0), 0u);
  EXPECT_EQ(d.BucketOf(1000.0), 9u);
}

TEST(DomainTest, BinnedEncodeViaValue) {
  auto d = Domain::Binned(0.0, 10.0, 5);
  EXPECT_EQ(*d.Encode(Value(3.0)), 1u);
  EXPECT_EQ(*d.Encode(Value(int64_t{9})), 4u);
}

TEST(DomainTest, BucketRangeCoversQuery) {
  auto d = Domain::Binned(0.0, 100.0, 10);
  auto [lo, hi] = d.BucketRange(15.0, 34.0);
  EXPECT_EQ(lo, 1u);
  EXPECT_EQ(hi, 3u);
}

TEST(DomainTest, BucketRangeEmptyWhenDisjoint) {
  auto d = Domain::Binned(0.0, 100.0, 10);
  auto [lo, hi] = d.BucketRange(200.0, 300.0);
  EXPECT_GT(lo, hi);  // empty marker
  auto [lo2, hi2] = d.BucketRange(-50.0, -10.0);
  EXPECT_GT(lo2, hi2);
}

TEST(DomainTest, BinnedLabelShowsInterval) {
  auto d = Domain::Binned(0.0, 10.0, 2);
  EXPECT_EQ(d.LabelFor(0), "[0, 5)");
  EXPECT_EQ(d.LabelFor(1), "[5, 10)");
}

TEST(DomainTest, RepresentativeIsMidpoint) {
  auto d = Domain::Binned(0.0, 10.0, 2);
  EXPECT_DOUBLE_EQ(d.RepresentativeFor(0).as_double(), 2.5);
  EXPECT_DOUBLE_EQ(d.RepresentativeFor(1).as_double(), 7.5);
}

TEST(DomainTest, EqualityOperator) {
  auto a = Domain::Binned(0.0, 10.0, 2);
  auto b = Domain::Binned(0.0, 10.0, 2);
  auto c = Domain::Binned(0.0, 10.0, 4);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
  EXPECT_FALSE(a == Domain::Categorical({"x"}));
}

TEST(ValueTest, TypeTags) {
  EXPECT_TRUE(Value(int64_t{1}).is_int());
  EXPECT_TRUE(Value(1.5).is_double());
  EXPECT_TRUE(Value(std::string("x")).is_string());
}

TEST(ValueTest, AsDoubleWidensInts) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).as_double(), 4.0);
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(int64_t{7}).ToString(), "7");
  EXPECT_EQ(Value(std::string("abc")).ToString(), "abc");
  EXPECT_EQ(Value(2.5).ToString(), "2.5");
}

}  // namespace
}  // namespace entropydb
