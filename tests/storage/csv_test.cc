#include "storage/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "storage/table_builder.h"

namespace entropydb {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "csv_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

Schema CsvSchema() {
  return Schema({AttributeSpec{"city", AttributeType::kCategorical, 0},
                 AttributeSpec{"pop", AttributeType::kNumeric, 4}});
}

TEST_F(CsvTest, WriteReadRoundTrip) {
  TableBuilder b(CsvSchema());
  b.SetDomain(0, Domain::Categorical({"ny", "sf"}));
  b.SetDomain(1, Domain::Binned(0, 8, 4));
  b.AppendEncodedRow({0, 1});
  b.AppendEncodedRow({1, 3});
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(WriteCsv(**t, path_).ok());

  auto loaded = ReadCsv(CsvSchema(), path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_rows(), 2u);
  EXPECT_EQ((*loaded)->domain(0).LabelFor((*loaded)->at(0, 0)), "ny");
  EXPECT_EQ((*loaded)->domain(0).LabelFor((*loaded)->at(1, 0)), "sf");
}

TEST_F(CsvTest, ReadMissingFileFails) {
  EXPECT_TRUE(ReadCsv(CsvSchema(), "/nonexistent/x.csv").status().IsIOError());
}

TEST_F(CsvTest, HeaderMismatchFails) {
  std::ofstream out(path_);
  out << "wrong,pop\nx,1\n";
  out.close();
  EXPECT_TRUE(ReadCsv(CsvSchema(), path_).status().IsInvalidArgument());
}

TEST_F(CsvTest, RowArityMismatchFails) {
  std::ofstream out(path_);
  out << "city,pop\nx,1,extra\n";
  out.close();
  EXPECT_TRUE(ReadCsv(CsvSchema(), path_).status().IsCorruption());
}

TEST_F(CsvTest, MalformedNumberFails) {
  std::ofstream out(path_);
  out << "city,pop\nx,notanumber\n";
  out.close();
  EXPECT_FALSE(ReadCsv(CsvSchema(), path_).ok());
}

TEST_F(CsvTest, EmptyFileFails) {
  std::ofstream out(path_);
  out.close();
  EXPECT_TRUE(ReadCsv(CsvSchema(), path_).status().IsCorruption());
}

TEST_F(CsvTest, SkipsBlankLines) {
  std::ofstream out(path_);
  out << "city,pop\nx,1\n\n\ny,2\n";
  out.close();
  auto loaded = ReadCsv(CsvSchema(), path_);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ((*loaded)->num_rows(), 2u);
}

}  // namespace
}  // namespace entropydb
