// WAL framing: round-trips, reopen-and-append, and tail-truncation on
// torn or corrupt records (storage/wal.h).

#include "storage/wal.h"

#include <filesystem>

#include <gtest/gtest.h>

namespace entropydb {
namespace {

namespace fs = std::filesystem;

class WalTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (fs::temp_directory_path() /
             ("entropydb_wal_test_" +
              std::string(::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name()) +
              ".wal"))
                .string();
    fs::remove(path_);
  }
  void TearDown() override { fs::remove(path_); }

  void WriteRecords(const std::vector<std::string>& records) {
    auto writer = WalWriter::Open(Env::Default(), path_);
    ASSERT_TRUE(writer.ok());
    for (const std::string& r : records) {
      ASSERT_TRUE((*writer)->AddRecord(r).ok());
    }
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }

  std::string path_;
};

TEST_F(WalTest, MissingFileIsEmptyWal) {
  auto wal = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->records.empty());
  EXPECT_FALSE(wal->truncated_tail);
  EXPECT_EQ(wal->valid_bytes, 0u);
}

TEST_F(WalTest, RoundTripsRecords) {
  const std::vector<std::string> records = {
      "first batch", "", "third\nbatch,with\nnewlines",
      std::string(4096, 'x')};
  WriteRecords(records);
  auto wal = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records, records);
  EXPECT_FALSE(wal->truncated_tail);
  EXPECT_EQ(wal->valid_bytes, fs::file_size(path_));
}

TEST_F(WalTest, ReopenAppends) {
  WriteRecords({"one"});
  WriteRecords({"two", "three"});
  auto wal = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(WalTest, TruncatesAtTornTail) {
  WriteRecords({"alpha", "beta", "gamma"});
  auto full = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(full.ok());
  const uint64_t full_size = fs::file_size(path_);
  // Chop the file at EVERY byte boundary: the reader must recover exactly
  // the records whose frames are complete, flag the tail, and never error.
  // Frame boundaries: 8-byte header + payload per record.
  std::vector<uint64_t> boundaries = {0};
  for (const std::string& r : full->records) {
    boundaries.push_back(boundaries.back() + 8 + r.size());
  }
  ASSERT_EQ(boundaries.back(), full_size);
  for (uint64_t cut = 0; cut < full_size; ++cut) {
    fs::remove(path_);
    WriteRecords({"alpha", "beta", "gamma"});
    fs::resize_file(path_, cut);
    auto wal = ReadWal(Env::Default(), path_);
    ASSERT_TRUE(wal.ok()) << "cut at " << cut;
    // Exactly the records whose frames lie fully before the cut survive.
    size_t complete = 0;
    while (complete + 1 < boundaries.size() && boundaries[complete + 1] <= cut)
      ++complete;
    ASSERT_EQ(wal->records.size(), complete) << "cut at " << cut;
    for (size_t i = 0; i < complete; ++i) {
      EXPECT_EQ(wal->records[i], full->records[i]) << "cut at " << cut;
    }
    // A cut exactly on a frame boundary leaves no torn bytes behind.
    EXPECT_EQ(wal->truncated_tail, cut != boundaries[complete])
        << "cut at " << cut;
    EXPECT_EQ(wal->valid_bytes, boundaries[complete]) << "cut at " << cut;
  }
}

TEST_F(WalTest, TruncatesAtCorruptRecord) {
  WriteRecords({"alpha", "beta", "gamma"});
  std::string raw;
  ASSERT_TRUE(Env::Default()->ReadFile(path_, &raw).ok());
  // Flip one payload byte of the SECOND record: 8 header + 5 payload
  // puts the second frame at offset 13; its payload starts at 21.
  std::string mutated = raw;
  mutated[21] ^= 0x01;
  ASSERT_TRUE(Env::Default()->WriteFile(path_, mutated).ok());
  auto wal = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records, (std::vector<std::string>{"alpha"}));
  EXPECT_TRUE(wal->truncated_tail);
  EXPECT_EQ(wal->valid_bytes, 13u);
}

TEST_F(WalTest, RejectsInsaneLengthAsTornTail) {
  // A header promising more payload than the file holds is a torn tail,
  // not an allocation of 4 GB.
  std::string frame(8, '\0');
  frame[4] = '\xff';
  frame[5] = '\xff';
  frame[6] = '\xff';
  frame[7] = '\x7f';
  ASSERT_TRUE(Env::Default()->WriteFile(path_, frame).ok());
  auto wal = ReadWal(Env::Default(), path_);
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->records.empty());
  EXPECT_TRUE(wal->truncated_tail);
  EXPECT_EQ(wal->valid_bytes, 0u);
}

}  // namespace
}  // namespace entropydb
