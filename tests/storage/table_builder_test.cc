#include "storage/table_builder.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

Schema TwoColSchema() {
  return Schema({AttributeSpec{"state", AttributeType::kCategorical, 0},
                 AttributeSpec{"miles", AttributeType::kNumeric, 4}});
}

TEST(TableBuilderTest, DerivesCategoricalDictionary) {
  TableBuilder b(TwoColSchema());
  ASSERT_TRUE(b.AppendRow({Value(std::string("WA")), Value(10.0)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(std::string("CA")), Value(20.0)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(std::string("WA")), Value(30.0)}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 3u);
  // Labels sorted for determinism: CA = 0, WA = 1.
  EXPECT_EQ((*t)->domain(0).LabelFor(0), "CA");
  EXPECT_EQ((*t)->at(0, 0), 1u);
  EXPECT_EQ((*t)->at(1, 0), 0u);
}

TEST(TableBuilderTest, DerivesEquiWidthBuckets) {
  TableBuilder b(TwoColSchema());
  ASSERT_TRUE(b.AppendRow({Value(std::string("a")), Value(0.0)}).ok());
  ASSERT_TRUE(b.AppendRow({Value(std::string("a")), Value(100.0)}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->domain(1).size(), 4u);
  EXPECT_EQ((*t)->at(0, 1), 0u);
  EXPECT_EQ((*t)->at(1, 1), 3u);  // max value lands in the last bucket
}

TEST(TableBuilderTest, RejectsArityMismatch) {
  TableBuilder b(TwoColSchema());
  EXPECT_TRUE(
      b.AppendRow({Value(std::string("x"))}).IsInvalidArgument());
}

TEST(TableBuilderTest, PinnedDomainIsUsed) {
  TableBuilder b(TwoColSchema());
  b.SetDomain(0, Domain::Categorical({"AA", "BB", "CC"}));
  b.SetDomain(1, Domain::Binned(0, 40, 4));
  ASSERT_TRUE(b.AppendRow({Value(std::string("CC")), Value(35.0)}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->domain(0).size(), 3u);
  EXPECT_EQ((*t)->at(0, 0), 2u);
  EXPECT_EQ((*t)->at(0, 1), 3u);
}

TEST(TableBuilderTest, EncodedRowsValidatedAgainstDomains) {
  TableBuilder b(TwoColSchema());
  b.SetDomain(0, Domain::Categorical({"A"}));
  b.SetDomain(1, Domain::Binned(0, 4, 4));
  b.AppendEncodedRow({0, 9});  // 9 out of range for 4 buckets
  EXPECT_TRUE(b.Finish().status().IsOutOfRange());
}

TEST(TableBuilderTest, MixedRawAndEncodedRows) {
  TableBuilder b(TwoColSchema());
  b.SetDomain(0, Domain::Categorical({"A", "B"}));
  b.SetDomain(1, Domain::Binned(0, 4, 4));
  ASSERT_TRUE(b.AppendRow({Value(std::string("B")), Value(1.0)}).ok());
  b.AppendEncodedRow({0, 2});
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 2u);
  EXPECT_EQ((*t)->at(0, 0), 1u);
  EXPECT_EQ((*t)->at(1, 1), 2u);
}

TEST(TableBuilderTest, IntegerTypeGetsUnitBuckets) {
  Schema s({AttributeSpec{"k", AttributeType::kInteger, 0}});
  TableBuilder b(s);
  ASSERT_TRUE(b.AppendRow({Value(int64_t{3})}).ok());
  ASSERT_TRUE(b.AppendRow({Value(int64_t{7})}).ok());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->domain(0).size(), 5u);  // 3..7 -> 5 unit buckets
}

TEST(TableBuilderTest, EmptyTableFinishes) {
  TableBuilder b(TwoColSchema());
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_rows(), 0u);
}

TEST(TableTest, MetadataAccessors) {
  TableBuilder b(TwoColSchema());
  b.SetDomain(0, Domain::Categorical({"A", "B"}));
  b.SetDomain(1, Domain::Binned(0, 4, 4));
  b.AppendEncodedRow({1, 3});
  auto t = b.Finish();
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->num_attributes(), 2u);
  EXPECT_DOUBLE_EQ((*t)->NumPossibleTuples(), 8.0);
  EXPECT_GT((*t)->MemoryBytes(), 0u);
  EXPECT_EQ(*(*t)->schema().IndexOf("miles"), 1u);
  EXPECT_TRUE((*t)->schema().IndexOf("nope").status().IsNotFound());
}

}  // namespace
}  // namespace entropydb
