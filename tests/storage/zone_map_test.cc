// ZoneMap: presence semantics across both encodings, the density
// cutover, predicate-shape MightMatch, and checksummed round-trip
// persistence with typed rejection of damaged files.

#include <filesystem>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "storage/zone_map.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::string TempPath(const std::string& name) {
  const fs::path dir = fs::temp_directory_path() / "entropydb_zone_map_test";
  fs::create_directories(dir);
  return (dir / name).string();
}

TEST(ZoneMapTest, RecordsExactPresence) {
  // Attribute 0 touches {0, 2, 5} of a domain of 8; attribute 1 touches
  // every code of its domain of 3.
  auto table = testutil::MakeTable(
      {8, 3}, {{0, 0}, {2, 1}, {5, 2}, {2, 0}, {0, 1}});
  ZoneMap zm = ZoneMap::Build(*table);
  ASSERT_EQ(zm.num_attributes(), 2u);
  EXPECT_EQ(zm.distinct(0), 3u);
  EXPECT_EQ(zm.distinct(1), 3u);
  for (Code c = 0; c < 8; ++c) {
    EXPECT_EQ(zm.Contains(0, c), c == 0 || c == 2 || c == 5) << c;
  }
  for (Code c = 0; c < 3; ++c) EXPECT_TRUE(zm.Contains(1, c));
  // Out-of-domain codes are never present.
  EXPECT_FALSE(zm.Contains(0, 8));
  EXPECT_FALSE(zm.Contains(1, 1000));
}

TEST(ZoneMapTest, DensityPicksTheEncoding) {
  // Attribute 0: 1 distinct code of a domain of 64 — occupancy 1/64 is
  // below the 1/32 cutover, so sparse. Attribute 1: 2 distinct of 64 —
  // exactly AT the cutover (2 * 32 == 64), which is dense (sparse must be
  // strictly cheaper). Attribute 2: full occupancy, dense.
  auto table = testutil::MakeTable({64, 64, 2}, {{7, 1, 0}, {7, 60, 1}});
  ZoneMap zm = ZoneMap::Build(*table);
  EXPECT_EQ(zm.encoding(0), ZoneMap::Encoding::kSparse);
  EXPECT_EQ(zm.encoding(1), ZoneMap::Encoding::kDense);
  EXPECT_EQ(zm.encoding(2), ZoneMap::Encoding::kDense);
}

TEST(ZoneMapTest, RangeLookupBothEncodings) {
  auto table = testutil::MakeTable({256, 8}, {{10, 0}, {200, 3}, {11, 7}});
  ZoneMap zm = ZoneMap::Build(*table);
  ASSERT_EQ(zm.encoding(0), ZoneMap::Encoding::kSparse);
  ASSERT_EQ(zm.encoding(1), ZoneMap::Encoding::kDense);
  // Sparse attribute: presence at {10, 11, 200}.
  EXPECT_TRUE(zm.ContainsAnyInRange(0, 0, 10));
  EXPECT_TRUE(zm.ContainsAnyInRange(0, 11, 199));
  EXPECT_TRUE(zm.ContainsAnyInRange(0, 200, 255));
  EXPECT_FALSE(zm.ContainsAnyInRange(0, 12, 199));
  EXPECT_FALSE(zm.ContainsAnyInRange(0, 201, 255));
  EXPECT_FALSE(zm.ContainsAnyInRange(0, 0, 9));
  // Inverted and fully out-of-domain ranges are empty.
  EXPECT_FALSE(zm.ContainsAnyInRange(0, 20, 10));
  EXPECT_FALSE(zm.ContainsAnyInRange(0, 256, 300));
  // Dense attribute: presence at {0, 3, 7}.
  EXPECT_TRUE(zm.ContainsAnyInRange(1, 1, 3));
  EXPECT_FALSE(zm.ContainsAnyInRange(1, 4, 6));
  EXPECT_TRUE(zm.ContainsAnyInRange(1, 4, 7));
  // hi past the domain clamps.
  EXPECT_TRUE(zm.ContainsAnyInRange(1, 7, 900));
}

TEST(ZoneMapTest, MightMatchCoversEveryPredicateShape) {
  auto table = testutil::MakeTable({8, 4}, {{1, 0}, {2, 0}, {6, 1}});
  ZoneMap zm = ZoneMap::Build(*table);

  CountingQuery any(2);
  EXPECT_TRUE(zm.MightMatch(any));

  CountingQuery hit(2);
  hit.Where(0, AttrPredicate::Point(2));
  EXPECT_TRUE(zm.MightMatch(hit));

  AttrId pruned_attr = 99;
  CountingQuery miss_point(2);
  miss_point.Where(0, AttrPredicate::Point(5));
  EXPECT_FALSE(zm.MightMatch(miss_point, &pruned_attr));
  EXPECT_EQ(pruned_attr, 0u);

  CountingQuery miss_range(2);
  miss_range.Where(0, AttrPredicate::Range(3, 5));
  EXPECT_FALSE(zm.MightMatch(miss_range, &pruned_attr));

  CountingQuery hit_range(2);
  hit_range.Where(0, AttrPredicate::Range(5, 7));
  EXPECT_TRUE(zm.MightMatch(hit_range));

  CountingQuery miss_set(2);
  miss_set.Where(1, AttrPredicate::InSet({2, 3}));
  EXPECT_FALSE(zm.MightMatch(miss_set, &pruned_attr));
  EXPECT_EQ(pruned_attr, 1u);

  CountingQuery hit_set(2);
  hit_set.Where(1, AttrPredicate::InSet({1, 3}));
  EXPECT_TRUE(zm.MightMatch(hit_set));

  // A conjunction prunes as soon as ONE attribute proves the miss, even
  // when the other attribute matches.
  CountingQuery conj(2);
  conj.Where(0, AttrPredicate::Point(1)).Where(1, AttrPredicate::Point(3));
  EXPECT_FALSE(zm.MightMatch(conj, &pruned_attr));
  EXPECT_EQ(pruned_attr, 1u);

  // Arity-mismatched queries never prune (the answer path rejects them
  // with its own typed error).
  CountingQuery wrong_arity(3);
  wrong_arity.Where(0, AttrPredicate::Point(5));
  EXPECT_TRUE(zm.MightMatch(wrong_arity));
}

TEST(ZoneMapTest, RoundTripsThroughDisk) {
  auto table = testutil::MakeTable({200, 5}, {{3, 0}, {150, 4}, {3, 2}});
  ZoneMap built = ZoneMap::Build(*table);
  const std::string path = TempPath("roundtrip");
  ASSERT_TRUE(built.Save(Env::Default(), path).ok());

  auto loaded = ZoneMap::Load(Env::Default(), path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ(loaded->num_attributes(), 2u);
  for (AttrId a = 0; a < 2; ++a) {
    EXPECT_EQ(loaded->encoding(a), built.encoding(a));
    EXPECT_EQ(loaded->distinct(a), built.distinct(a));
    for (Code c = 0; c < loaded->domain_size(a); ++c) {
      EXPECT_EQ(loaded->Contains(a, c), built.Contains(a, c));
    }
  }
}

TEST(ZoneMapTest, DamagedFilesFailTyped) {
  auto table = testutil::MakeTable({64, 4}, {{1, 0}, {2, 3}});
  const std::string path = TempPath("damaged");
  ASSERT_TRUE(ZoneMap::Build(*table).Save(Env::Default(), path).ok());
  std::string raw;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &raw).ok());

  // Bit flip in the payload: checksum mismatch.
  {
    std::string flipped = raw;
    flipped[flipped.size() / 2] ^= 0x04;
    ASSERT_TRUE(Env::Default()->WriteFile(path, flipped).ok());
    auto loaded = ZoneMap::Load(Env::Default(), path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
  // Truncation (footer gone): zone maps REQUIRE the footer — a
  // footerless file must never load as a (possibly wrongly pruning) map.
  {
    ASSERT_TRUE(
        Env::Default()->WriteFile(path, raw.substr(0, raw.size() / 2)).ok());
    auto loaded = ZoneMap::Load(Env::Default(), path);
    ASSERT_FALSE(loaded.ok());
    EXPECT_EQ(loaded.status().code(), StatusCode::kCorruption);
  }
}

}  // namespace
}  // namespace entropydb
