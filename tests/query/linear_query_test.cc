#include "query/linear_query.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(TupleSpaceTest, SizeIsProductOfDomains) {
  TupleSpace space({2, 3, 4});
  EXPECT_EQ(space.size(), 24u);
  EXPECT_EQ(space.num_attributes(), 3u);
  EXPECT_EQ(space.domain_size(1), 3u);
}

TEST(TupleSpaceTest, IndexRoundTrips) {
  TupleSpace space({3, 4, 5});
  for (uint64_t i = 0; i < space.size(); ++i) {
    EXPECT_EQ(space.IndexOf(space.TupleAt(i)), i);
  }
}

TEST(TupleSpaceTest, LexicographicOrder) {
  TupleSpace space({2, 2});
  EXPECT_EQ(space.TupleAt(0), (std::vector<Code>{0, 0}));
  EXPECT_EQ(space.TupleAt(1), (std::vector<Code>{0, 1}));
  EXPECT_EQ(space.TupleAt(2), (std::vector<Code>{1, 0}));
  EXPECT_EQ(space.TupleAt(3), (std::vector<Code>{1, 1}));
}

TEST(LinearQueryTest, FromCountingSetsIndicator) {
  TupleSpace space({2, 2});
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(1));
  LinearQuery lq = LinearQuery::FromCounting(space, q);
  EXPECT_DOUBLE_EQ(lq[0], 0.0);
  EXPECT_DOUBLE_EQ(lq[1], 0.0);
  EXPECT_DOUBLE_EQ(lq[2], 1.0);
  EXPECT_DOUBLE_EQ(lq[3], 1.0);
}

TEST(LinearQueryTest, DotWithFrequencyVectorIsTheAnswer) {
  // Fig 1 of the paper: n^I = (2, 1, 0, 2), q = (1, 1, 0, 0), <q, n> = 3.
  TupleSpace space({2, 2});
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(0));
  LinearQuery lq = LinearQuery::FromCounting(space, q);
  std::vector<double> freq{2, 1, 0, 2};
  EXPECT_DOUBLE_EQ(lq.Dot(freq), 3.0);
}

TEST(LinearQueryTest, ArbitraryCoefficients) {
  LinearQuery lq(3);
  lq[0] = 0.5;
  lq[2] = 2.0;
  EXPECT_DOUBLE_EQ(lq.Dot({2, 100, 3}), 7.0);
  EXPECT_EQ(lq.dimension(), 3u);
}

}  // namespace
}  // namespace entropydb
