#include "query/parser.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

/// Schema: origin (categorical CA/NY/WA), distance (binned [0,100) x 10),
/// fl_time (binned [0,60) x 6).
std::vector<std::string> Names() { return {"origin", "distance", "fl_time"}; }
std::vector<Domain> Domains() {
  return {Domain::Categorical({"CA", "NY", "WA"}),
          Domain::Binned(0, 100, 10), Domain::Binned(0, 60, 6)};
}

TEST(ParserTest, BareCount) {
  auto q = ParseQuery("COUNT(*)", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggregate, ParsedQuery::Aggregate::kCount);
  EXPECT_EQ(q->where.NumConstrained(), 0u);
  EXPECT_EQ(q->AggregateName(), "COUNT");
}

TEST(ParserTest, CategoricalEquality) {
  auto q = ParseQuery("COUNT(*) WHERE origin = NY", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Point(1));
}

TEST(ParserTest, QuotedLabels) {
  auto q = ParseQuery("COUNT(*) WHERE origin = 'WA'", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Point(2));
}

TEST(ParserTest, NumericEqualityBucketizes) {
  auto q = ParseQuery("COUNT(*) WHERE distance = 35", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(1), AttrPredicate::Point(3));
}

TEST(ParserTest, BetweenMapsToBucketRange) {
  auto q = ParseQuery("COUNT(*) WHERE distance BETWEEN 15 AND 44", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(1), AttrPredicate::Range(1, 4));
}

TEST(ParserTest, BetweenOutsideDomainIsEmpty) {
  auto q = ParseQuery("COUNT(*) WHERE distance BETWEEN 500 AND 900", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(1).Selectivity(10), 0u);
}

TEST(ParserTest, InList) {
  auto q = ParseQuery("COUNT(*) WHERE origin IN (CA, WA)", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::InSet({0, 2}));
}

TEST(ParserTest, ConjunctionOfConditions) {
  auto q = ParseQuery(
      "COUNT(*) WHERE origin = CA AND distance BETWEEN 0 AND 50 AND "
      "fl_time = 10",
      Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.NumConstrained(), 3u);
}

TEST(ParserTest, SumAndAvg) {
  auto s = ParseQuery("SUM(distance) WHERE origin = CA", Names(), Domains());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->aggregate, ParsedQuery::Aggregate::kSum);
  EXPECT_EQ(s->agg_attr, 1u);

  auto a = ParseQuery("avg(fl_time)", Names(), Domains());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->aggregate, ParsedQuery::Aggregate::kAvg);
  EXPECT_EQ(a->agg_attr, 2u);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto q = ParseQuery("count(*) where origin = CA and distance between 0 "
                      "and 30",
                      Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.NumConstrained(), 2u);
}

TEST(ParserTest, ErrorsAreInformative) {
  EXPECT_TRUE(ParseQuery("", Names(), Domains()).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("SELECT *", Names(), Domains()).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE nope = 1", Names(), Domains())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE origin = XX", Names(), Domains())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE origin", Names(), Domains())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseQuery("COUNT(*) WHERE distance BETWEEN 1", Names(), Domains())
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      ParseQuery("COUNT(*) WHERE origin IN (CA", Names(), Domains())
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("COUNT(*) trailing", Names(), Domains())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE origin = 'unterminated", Names(),
                         Domains())
                  .status()
                  .IsInvalidArgument());
}

TEST(ParserTest, CategoricalBetweenUsesLabelOrder) {
  auto q = ParseQuery("COUNT(*) WHERE origin BETWEEN CA AND NY", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Range(0, 1));
}

TEST(ParserTest, ArityMismatchRejected) {
  EXPECT_TRUE(
      ParseQuery("COUNT(*)", {"a"}, {}).status().IsInvalidArgument());
}

TEST(ParserTest, QuantileCarriesRankAndAttr) {
  auto q = ParseQuery("QUANTILE(distance, 0.5) WHERE origin = CA", Names(),
                      Domains());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, ParsedQuery::Aggregate::kQuantile);
  EXPECT_EQ(q->agg_attr, 1u);
  EXPECT_DOUBLE_EQ(q->quantile, 0.5);
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Point(0));
  EXPECT_EQ(q->AggregateName(), "QUANTILE");
}

TEST(ParserTest, TopKCarriesKAndAttr) {
  auto q = ParseQuery("topk(origin, 2)", Names(), Domains());
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, ParsedQuery::Aggregate::kTopK);
  EXPECT_EQ(q->agg_attr, 0u);
  EXPECT_EQ(q->top_k, 2u);
  EXPECT_EQ(q->AggregateName(), "TOPK");
}

TEST(ParserTest, QuantileAndTopKValidateTheirParameters) {
  // The unknown-verb message is pinned: the server forwards it verbatim as
  // an ERR BAD_REQUEST payload, so a rewording is a wire-visible change.
  EXPECT_EQ(ParseQuery("MEDIAN(distance)", Names(), Domains())
                .status()
                .message(),
            "query must start with COUNT, SUM, AVG, QUANTILE or TOPK");
  EXPECT_EQ(ParseQuery("QUANTILE(distance, 1.5)", Names(), Domains())
                .status()
                .message(),
            "quantile rank must be in (0, 1)");
  EXPECT_EQ(ParseQuery("QUANTILE(distance, 0)", Names(), Domains())
                .status()
                .message(),
            "quantile rank must be in (0, 1)");
  EXPECT_EQ(ParseQuery("TOPK(origin, 0)", Names(), Domains())
                .status()
                .message(),
            "TOPK count must be a positive integer");
  EXPECT_EQ(ParseQuery("TOPK(origin, 2.5)", Names(), Domains())
                .status()
                .message(),
            "TOPK count must be a positive integer");
  EXPECT_TRUE(ParseQuery("QUANTILE(distance)", Names(), Domains())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("QUANTILE(nope, 0.5)", Names(), Domains())
                  .status()
                  .IsNotFound());
}

// --- ParseJoinQuery ----------------------------------------------------

/// RIGHT schema for join parses: shares `origin`, adds its own column.
std::vector<std::string> RightNames() { return {"origin", "delay"}; }
std::vector<Domain> RightDomains() {
  return {Domain::Categorical({"CA", "NY", "WA"}), Domain::Binned(0, 30, 3)};
}

Result<ParsedJoinQuery> ParseJoin(const std::string& text) {
  return ParseJoinQuery(text, Names(), Domains(), RightNames(),
                        RightDomains());
}

TEST(JoinParserTest, BareFormJoinsTheSameNameOnBothSides) {
  auto q = ParseJoin("COUNT(*) ON origin");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, ParsedJoinQuery::Aggregate::kCount);
  EXPECT_EQ(q->left_join, 0u);
  EXPECT_EQ(q->right_join, 0u);
  EXPECT_EQ(q->AggregateName(), "JOIN_COUNT");
}

TEST(JoinParserTest, ExplicitPairAndSidedPredicates) {
  auto q = ParseJoin(
      "SUM(distance) ON origin = origin WHERE left.distance BETWEEN 10 AND "
      "49 AND right.delay = 5");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->aggregate, ParsedJoinQuery::Aggregate::kSum);
  EXPECT_EQ(q->agg_attr, 1u);
  // left.distance lands on the LEFT where; right.delay on the RIGHT.
  EXPECT_EQ(q->left_where.predicate(1), AttrPredicate::Range(1, 4));
  EXPECT_EQ(q->right_where.predicate(1), AttrPredicate::Point(0));
  EXPECT_EQ(q->left_where.NumConstrained(), 1u);
  EXPECT_EQ(q->right_where.NumConstrained(), 1u);
}

TEST(JoinParserTest, SumAttrAcceptsOptionalLeftQualifier) {
  auto q = ParseJoin("SUM(left.distance) ON origin");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->agg_attr, 1u);  // same as the unqualified SUM(distance)
}

TEST(JoinParserTest, ErrorsAreInformative) {
  EXPECT_EQ(ParseJoin("AVG(distance) ON origin").status().message(),
            "join query must start with COUNT or SUM");
  EXPECT_TRUE(ParseJoin("COUNT(*)").status().IsInvalidArgument());
  EXPECT_TRUE(ParseJoin("COUNT(*) ON nope").status().IsNotFound());
  // The join attribute must resolve on BOTH sides: `distance` exists on
  // the left only.
  EXPECT_TRUE(ParseJoin("COUNT(*) ON distance").status().IsNotFound());
  // Join predicates must carry a side qualifier — there is no default.
  EXPECT_TRUE(ParseJoin("COUNT(*) ON origin WHERE delay = 5")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseJoin("COUNT(*) ON origin WHERE right.delay = 5").ok());
  EXPECT_TRUE(ParseJoin("COUNT(*) ON origin WHERE middle.delay = 5")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseJoin("COUNT(*) ON origin trailing").status().IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
