#include "query/parser.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

/// Schema: origin (categorical CA/NY/WA), distance (binned [0,100) x 10),
/// fl_time (binned [0,60) x 6).
std::vector<std::string> Names() { return {"origin", "distance", "fl_time"}; }
std::vector<Domain> Domains() {
  return {Domain::Categorical({"CA", "NY", "WA"}),
          Domain::Binned(0, 100, 10), Domain::Binned(0, 60, 6)};
}

TEST(ParserTest, BareCount) {
  auto q = ParseQuery("COUNT(*)", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->aggregate, ParsedQuery::Aggregate::kCount);
  EXPECT_EQ(q->where.NumConstrained(), 0u);
  EXPECT_EQ(q->AggregateName(), "COUNT");
}

TEST(ParserTest, CategoricalEquality) {
  auto q = ParseQuery("COUNT(*) WHERE origin = NY", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Point(1));
}

TEST(ParserTest, QuotedLabels) {
  auto q = ParseQuery("COUNT(*) WHERE origin = 'WA'", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Point(2));
}

TEST(ParserTest, NumericEqualityBucketizes) {
  auto q = ParseQuery("COUNT(*) WHERE distance = 35", Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(1), AttrPredicate::Point(3));
}

TEST(ParserTest, BetweenMapsToBucketRange) {
  auto q = ParseQuery("COUNT(*) WHERE distance BETWEEN 15 AND 44", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(1), AttrPredicate::Range(1, 4));
}

TEST(ParserTest, BetweenOutsideDomainIsEmpty) {
  auto q = ParseQuery("COUNT(*) WHERE distance BETWEEN 500 AND 900", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(1).Selectivity(10), 0u);
}

TEST(ParserTest, InList) {
  auto q = ParseQuery("COUNT(*) WHERE origin IN (CA, WA)", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::InSet({0, 2}));
}

TEST(ParserTest, ConjunctionOfConditions) {
  auto q = ParseQuery(
      "COUNT(*) WHERE origin = CA AND distance BETWEEN 0 AND 50 AND "
      "fl_time = 10",
      Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.NumConstrained(), 3u);
}

TEST(ParserTest, SumAndAvg) {
  auto s = ParseQuery("SUM(distance) WHERE origin = CA", Names(), Domains());
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->aggregate, ParsedQuery::Aggregate::kSum);
  EXPECT_EQ(s->agg_attr, 1u);

  auto a = ParseQuery("avg(fl_time)", Names(), Domains());
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->aggregate, ParsedQuery::Aggregate::kAvg);
  EXPECT_EQ(a->agg_attr, 2u);
}

TEST(ParserTest, KeywordsCaseInsensitive) {
  auto q = ParseQuery("count(*) where origin = CA and distance between 0 "
                      "and 30",
                      Names(), Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.NumConstrained(), 2u);
}

TEST(ParserTest, ErrorsAreInformative) {
  EXPECT_TRUE(ParseQuery("", Names(), Domains()).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("SELECT *", Names(), Domains()).status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE nope = 1", Names(), Domains())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE origin = XX", Names(), Domains())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE origin", Names(), Domains())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      ParseQuery("COUNT(*) WHERE distance BETWEEN 1", Names(), Domains())
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(
      ParseQuery("COUNT(*) WHERE origin IN (CA", Names(), Domains())
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("COUNT(*) trailing", Names(), Domains())
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ParseQuery("COUNT(*) WHERE origin = 'unterminated", Names(),
                         Domains())
                  .status()
                  .IsInvalidArgument());
}

TEST(ParserTest, CategoricalBetweenUsesLabelOrder) {
  auto q = ParseQuery("COUNT(*) WHERE origin BETWEEN CA AND NY", Names(),
                      Domains());
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->where.predicate(0), AttrPredicate::Range(0, 1));
}

TEST(ParserTest, ArityMismatchRejected) {
  EXPECT_TRUE(
      ParseQuery("COUNT(*)", {"a"}, {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
