#include "query/counting_query.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace entropydb {
namespace {

TEST(CountingQueryTest, DefaultIsAllAny) {
  CountingQuery q(3);
  EXPECT_EQ(q.num_attributes(), 3u);
  EXPECT_EQ(q.NumConstrained(), 0u);
  EXPECT_TRUE(q.Matches({0, 1, 2}));
}

TEST(CountingQueryTest, MatchesConjunction) {
  CountingQuery q(3);
  q.Where(0, AttrPredicate::Point(1)).Where(2, AttrPredicate::Range(2, 4));
  EXPECT_EQ(q.NumConstrained(), 2u);
  EXPECT_TRUE(q.Matches({1, 9, 3}));
  EXPECT_FALSE(q.Matches({0, 9, 3}));
  EXPECT_FALSE(q.Matches({1, 9, 5}));
}

TEST(CountingQueryTest, ToStringListsPredicates) {
  Schema s({AttributeSpec{"x", AttributeType::kInteger, 2},
            AttributeSpec{"y", AttributeType::kInteger, 2}});
  CountingQuery q(2);
  EXPECT_EQ(q.ToString(s), "COUNT(*) WHERE TRUE");
  q.Where(1, AttrPredicate::Point(0));
  EXPECT_EQ(q.ToString(s), "COUNT(*) WHERE y =[0]");
}

TEST(QueryBuilderTest, ResolvesNamesAndValues) {
  auto table = testutil::MakeTable({4, 6}, {{1, 2}, {3, 5}});
  ASSERT_NE(table, nullptr);
  auto q = QueryBuilder(*table).WhereCode("A0", 1).Build();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->Matches({1, 0}));
  EXPECT_FALSE(q->Matches({2, 0}));
}

TEST(QueryBuilderTest, WhereBetweenMapsToBuckets) {
  auto table = testutil::MakeTable({4, 10}, {{0, 0}});
  // Domain of A1 is Binned(0, 10, 10): unit buckets.
  auto q = QueryBuilder(*table).WhereBetween("A1", 2.0, 4.5).Build();
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(q->predicate(1).Matches(2));
  EXPECT_TRUE(q->predicate(1).Matches(4));
  EXPECT_FALSE(q->predicate(1).Matches(5));
}

TEST(QueryBuilderTest, WhereBetweenOutsideDomainIsEmpty) {
  auto table = testutil::MakeTable({4, 10}, {{0, 0}});
  auto q = QueryBuilder(*table).WhereBetween("A1", 50.0, 60.0).Build();
  ASSERT_TRUE(q.ok());
  for (Code v = 0; v < 10; ++v) EXPECT_FALSE(q->predicate(1).Matches(v));
}

TEST(QueryBuilderTest, UnknownAttributeFails) {
  auto table = testutil::MakeTable({4}, {{0}});
  EXPECT_TRUE(
      QueryBuilder(*table).WhereCode("nope", 0).Build().status().IsNotFound());
}

TEST(QueryBuilderTest, CodeRange) {
  auto table = testutil::MakeTable({8}, {{0}});
  auto q = QueryBuilder(*table).WhereCodeRange("A0", 2, 5).Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q->predicate(0), AttrPredicate::Range(2, 5));
}

TEST(QueryBuilderTest, FirstErrorWins) {
  auto table = testutil::MakeTable({4}, {{0}});
  auto q = QueryBuilder(*table)
               .WhereCode("missing1", 0)
               .WhereCode("missing2", 0)
               .Build();
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("missing1"), std::string::npos);
}

}  // namespace
}  // namespace entropydb
