#include "query/predicate.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(AttrPredicateTest, AnyMatchesEverything) {
  AttrPredicate p = AttrPredicate::Any();
  EXPECT_TRUE(p.is_any());
  EXPECT_TRUE(p.Matches(0));
  EXPECT_TRUE(p.Matches(12345));
  EXPECT_EQ(p.Selectivity(10), 10u);
}

TEST(AttrPredicateTest, PointMatchesExactly) {
  AttrPredicate p = AttrPredicate::Point(3);
  EXPECT_FALSE(p.is_any());
  EXPECT_TRUE(p.Matches(3));
  EXPECT_FALSE(p.Matches(2));
  EXPECT_FALSE(p.Matches(4));
  EXPECT_EQ(p.Selectivity(10), 1u);
  EXPECT_EQ(p.Selectivity(3), 0u);  // point outside the domain
}

TEST(AttrPredicateTest, RangeInclusive) {
  AttrPredicate p = AttrPredicate::Range(2, 5);
  EXPECT_TRUE(p.Matches(2));
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(1));
  EXPECT_FALSE(p.Matches(6));
  EXPECT_EQ(p.Selectivity(10), 4u);
  EXPECT_EQ(p.Selectivity(4), 2u);  // clipped at the domain edge
}

TEST(AttrPredicateTest, SetSortsAndDeduplicates) {
  AttrPredicate p = AttrPredicate::InSet({5, 1, 3, 1});
  EXPECT_TRUE(p.Matches(1));
  EXPECT_TRUE(p.Matches(3));
  EXPECT_TRUE(p.Matches(5));
  EXPECT_FALSE(p.Matches(2));
  EXPECT_EQ(p.set().size(), 3u);
  EXPECT_EQ(p.Selectivity(10), 3u);
  EXPECT_EQ(p.Selectivity(4), 2u);  // 5 excluded by a smaller domain
}

TEST(AttrPredicateTest, EmptySetMatchesNothing) {
  AttrPredicate p = AttrPredicate::InSet({});
  EXPECT_FALSE(p.Matches(0));
  EXPECT_EQ(p.Selectivity(10), 0u);
}

TEST(AttrPredicateTest, ToStringForms) {
  EXPECT_EQ(AttrPredicate::Any().ToString(), "ANY");
  EXPECT_EQ(AttrPredicate::Point(4).ToString(), "=[4]");
  EXPECT_EQ(AttrPredicate::Range(1, 9).ToString(), "in [1,9]");
  EXPECT_EQ(AttrPredicate::InSet({2, 1}).ToString(), "in {1,2}");
}

TEST(AttrPredicateTest, Equality) {
  EXPECT_EQ(AttrPredicate::Point(1), AttrPredicate::Point(1));
  EXPECT_FALSE(AttrPredicate::Point(1) == AttrPredicate::Point(2));
  EXPECT_FALSE(AttrPredicate::Point(1) == AttrPredicate::Range(1, 1));
  EXPECT_EQ(AttrPredicate::InSet({1, 2}), AttrPredicate::InSet({2, 1}));
}

}  // namespace
}  // namespace entropydb
