#include "query/exact_evaluator.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"

namespace entropydb {
namespace {

TEST(ExactEvaluatorTest, CountWithNoPredicateIsCardinality) {
  auto table = testutil::MakeTable({3, 3}, {{0, 0}, {1, 1}, {2, 2}, {0, 1}});
  ExactEvaluator eval(*table);
  EXPECT_EQ(eval.Count(CountingQuery(2)), 4u);
}

TEST(ExactEvaluatorTest, PointCount) {
  auto table = testutil::MakeTable({3, 3}, {{0, 0}, {0, 1}, {0, 1}, {1, 1}});
  ExactEvaluator eval(*table);
  CountingQuery q(2);
  q.Where(0, AttrPredicate::Point(0)).Where(1, AttrPredicate::Point(1));
  EXPECT_EQ(eval.Count(q), 2u);
}

TEST(ExactEvaluatorTest, RangeCount) {
  auto table =
      testutil::MakeTable({5}, {{0}, {1}, {2}, {3}, {4}, {2}, {3}});
  ExactEvaluator eval(*table);
  CountingQuery q(1);
  q.Where(0, AttrPredicate::Range(2, 3));
  EXPECT_EQ(eval.Count(q), 4u);
}

TEST(ExactEvaluatorTest, GroupByCounts) {
  auto table = testutil::MakeTable({2, 2}, {{0, 0}, {0, 0}, {0, 1}, {1, 1}});
  ExactEvaluator eval(*table);
  auto groups = eval.GroupByCount({0, 1});
  EXPECT_EQ(groups.size(), 3u);
  EXPECT_EQ((groups[{0, 0}]), 2u);
  EXPECT_EQ((groups[{0, 1}]), 1u);
  EXPECT_EQ((groups[{1, 1}]), 1u);
}

TEST(ExactEvaluatorTest, GroupByWithFilter) {
  auto table = testutil::MakeTable({2, 2}, {{0, 0}, {0, 1}, {1, 0}, {1, 1}});
  ExactEvaluator eval(*table);
  CountingQuery filter(2);
  filter.Where(1, AttrPredicate::Point(0));
  auto groups = eval.GroupByCount({0}, filter);
  EXPECT_EQ(groups.size(), 2u);
  EXPECT_EQ((groups[{0}]), 1u);
  EXPECT_EQ((groups[{1}]), 1u);
}

TEST(ExactEvaluatorTest, Histogram1D) {
  auto table = testutil::MakeTable({4}, {{0}, {1}, {1}, {3}});
  ExactEvaluator eval(*table);
  auto h = eval.Histogram1D(0);
  ASSERT_EQ(h.size(), 4u);
  EXPECT_EQ(h[0], 1u);
  EXPECT_EQ(h[1], 2u);
  EXPECT_EQ(h[2], 0u);
  EXPECT_EQ(h[3], 1u);
}

TEST(ExactEvaluatorTest, Histogram2DRowMajor) {
  auto table = testutil::MakeTable({2, 3}, {{0, 2}, {1, 0}, {0, 2}});
  ExactEvaluator eval(*table);
  auto h = eval.Histogram2D(0, 1);
  ASSERT_EQ(h.size(), 6u);
  EXPECT_EQ(h[0 * 3 + 2], 2u);
  EXPECT_EQ(h[1 * 3 + 0], 1u);
  EXPECT_EQ(h[0 * 3 + 0], 0u);
}

/// Property: Count agrees with a row-by-row reference on random queries.
TEST(ExactEvaluatorTest, CountMatchesNaiveOnRandomQueries) {
  auto table = testutil::RandomTable({6, 5, 4}, 400, 99);
  ExactEvaluator eval(*table);
  Rng rng(101);
  for (int trial = 0; trial < 50; ++trial) {
    CountingQuery q(3);
    for (AttrId a = 0; a < 3; ++a) {
      switch (rng.Uniform(3)) {
        case 0:
          break;  // ANY
        case 1:
          q.Where(a, AttrPredicate::Point(static_cast<Code>(
                         rng.Uniform(table->domain(a).size()))));
          break;
        default: {
          Code lo = static_cast<Code>(rng.Uniform(table->domain(a).size()));
          Code hi = lo + static_cast<Code>(
                             rng.Uniform(table->domain(a).size() - lo));
          q.Where(a, AttrPredicate::Range(lo, hi));
        }
      }
    }
    uint64_t naive = 0;
    for (size_t r = 0; r < table->num_rows(); ++r) {
      std::vector<Code> row(3);
      for (AttrId a = 0; a < 3; ++a) row[a] = table->at(r, a);
      naive += q.Matches(row) ? 1 : 0;
    }
    EXPECT_EQ(eval.Count(q), naive);
  }
}

}  // namespace
}  // namespace entropydb
