// Compaction crash matrix: RunCompaction is driven through
// FaultInjectionEnv with a simulated crash after EVERY mutating
// filesystem operation, followed by power-loss (un-synced data dropped).
// The reopened store must always be exactly the pre- or the
// post-compaction store — never a mix, never unreadable — outcomes must
// be monotone in the crash point (one commit point, the manifest
// rename), and the next open must garbage-collect whatever the crashed
// pass stranded (half-built shard_c* before the flip, replaced shard_b*
// after it).

#include <algorithm>
#include <filesystem>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/fault_injection_env.h"
#include "engine/compaction.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

StoreOptions FastStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 1;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  opts.num_stratified_samples = 1;
  opts.sample_fraction = 0.2;
  return opts;
}

std::string BatchCsv(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::string csv = "A0,A1\n";
  for (size_t i = 0; i < rows; ++i) {
    csv += std::to_string(rng.Uniform(4)) + "," + std::to_string(rng.Uniform(3)) +
           "\n";
  }
  return csv;
}

CompactionOptions MatrixOptions() {
  CompactionOptions copts;
  copts.store = FastStoreOptions();
  copts.max_batch_shards = 2;     // 3 appended batches trip the trigger
  copts.split_threshold = 150;    // 270 journal rows -> 2 output shards
  return copts;
}

/// The whole matrix shares ONE pristine appended store, cloned per crash
/// point — building it is far more expensive than copying it.
class CompactionCrashTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    pristine_ = new std::string(
        (fs::temp_directory_path() / "entropydb_compaction_crash_pristine")
            .string());
    fs::remove_all(*pristine_);
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.store = FastStoreOptions();
    auto built =
        ShardedStore::Build(*testutil::RandomTable({4, 3}, 600, 97), sopts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Save(*pristine_).ok());
    for (uint64_t b = 0; b < 3; ++b) {
      auto report = AppendBatch(*pristine_, BatchCsv(90, 500 + b),
                                FastStoreOptions());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }
  }
  static void TearDownTestSuite() {
    fs::remove_all(*pristine_);
    delete pristine_;
    pristine_ = nullptr;
  }

  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("entropydb_compaction_crash_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    Reset();
  }
  void TearDown() override { fs::remove_all(dir_); }

  void Reset() {
    fs::remove_all(dir_);
    fs::copy(*pristine_, dir_, fs::copy_options::recursive);
  }

  /// Directory invariant after any reopen: nothing but the manifest, the
  /// journal, and the shard dirs the manifest references.
  void ExpectOnlyReferencedEntries(const ShardedStore::Manifest& m) {
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name == "MANIFEST" || name == kIngestWalName) continue;
      EXPECT_NE(std::find(m.shard_dirs.begin(), m.shard_dirs.end(), name),
                m.shard_dirs.end())
          << "unreferenced entry " << name << " survived reopen";
    }
  }

  static std::string* pristine_;
  std::string dir_;
};

std::string* CompactionCrashTest::pristine_ = nullptr;

TEST_F(CompactionCrashTest, EveryCrashPointLeavesPreOrPostState) {
  const CompactionOptions copts = MatrixOptions();

  // Clean run: capture the op count (the crash points) and the exact
  // pre/post shard lists the matrix must distinguish.
  auto pre_manifest = ShardedStore::ReadManifest(dir_);
  ASSERT_TRUE(pre_manifest.ok());
  ASSERT_EQ(pre_manifest->compaction_gen, 0u);
  uint64_t total_ops = 0;
  std::vector<std::string> post_dirs;
  {
    FaultInjectionEnv fenv;
    auto report = RunCompaction(dir_, copts, &fenv);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->ran);
    EXPECT_EQ(report->generation, 1u);
    EXPECT_EQ(report->rows, 270u);
    total_ops = fenv.ops();
    ASSERT_GT(total_ops, 15u);
    auto post_manifest = ShardedStore::ReadManifest(dir_);
    ASSERT_TRUE(post_manifest.ok());
    EXPECT_EQ(post_manifest->compaction_gen, 1u);
    post_dirs = post_manifest->shard_dirs;
  }
  const double expected_n = 600.0 + 270.0;

  std::vector<bool> post_state;
  for (uint64_t k = 0; k < total_ops; ++k) {
    Reset();
    FaultInjectionEnv fenv;
    fenv.CrashAfter(static_cast<int64_t>(k));
    auto crashed = RunCompaction(dir_, copts, &fenv);
    EXPECT_FALSE(crashed.ok()) << "crash at " << k << " did not fail the run";
    ASSERT_TRUE(fenv.LoseUnsyncedData().ok());

    // Reopen with the REAL env: exactly pre or post, never a mix, and
    // the total row count is invariant either way.
    auto reopened = ShardedStore::Load(dir_);
    ASSERT_TRUE(reopened.ok())
        << "crash at " << k << ": " << reopened.status().ToString();
    EXPECT_DOUBLE_EQ((*reopened)->n(), expected_n) << "crash at " << k;
    auto m = ShardedStore::ReadManifest(dir_);
    ASSERT_TRUE(m.ok()) << "crash at " << k;
    const bool is_post = m->compaction_gen == 1;
    if (is_post) {
      EXPECT_EQ(m->shard_dirs, post_dirs) << "crash at " << k;
    } else {
      EXPECT_EQ(m->compaction_gen, 0u) << "crash at " << k;
      EXPECT_EQ(m->shard_dirs, pre_manifest->shard_dirs)
          << "crash at " << k;
    }
    // The reopen GC'd every leftover the crash stranded — half-built
    // shard_c* orphans before the flip, replaced shard_b* after it.
    ExpectOnlyReferencedEntries(*m);
    post_state.push_back(is_post);
  }

  // Monotone: pre...pre, post...post — one commit point, no flapping.
  for (size_t k = 1; k < post_state.size(); ++k) {
    EXPECT_LE(static_cast<int>(post_state[k - 1]),
              static_cast<int>(post_state[k]))
        << "outcome regressed at crash point " << k;
  }
  // The earliest crash leaves the old store; the latest (everything
  // durable but the final cleanup sync) has already committed.
  EXPECT_FALSE(post_state.front());
  EXPECT_TRUE(post_state.back());
}

TEST_F(CompactionCrashTest, InterruptedCompactionRetriesToCompletion) {
  const CompactionOptions copts = MatrixOptions();
  // Crash mid-run (shard builds in flight), then simply run again with a
  // healthy filesystem: compaction is a pure function of manifest +
  // journal, so the retry either re-does the whole pass (crash before
  // the flip) or finds nothing left to do (crash after it).
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv fenv;
    ASSERT_TRUE(RunCompaction(dir_, copts, &fenv).ok());
    total_ops = fenv.ops();
  }
  for (uint64_t k : {total_ops / 4, total_ops / 2, total_ops - 2}) {
    Reset();
    FaultInjectionEnv fenv;
    fenv.CrashAfter(static_cast<int64_t>(k));
    EXPECT_FALSE(RunCompaction(dir_, copts, &fenv).ok());
    ASSERT_TRUE(fenv.LoseUnsyncedData().ok());

    auto retry = RunCompaction(dir_, copts);
    ASSERT_TRUE(retry.ok())
        << "crash at " << k << ": " << retry.status().ToString();
    auto m = ShardedStore::ReadManifest(dir_);
    ASSERT_TRUE(m.ok());
    EXPECT_EQ(m->compaction_gen, 1u) << "crash at " << k;
    auto reopened = ShardedStore::Load(dir_);
    ASSERT_TRUE(reopened.ok());
    EXPECT_DOUBLE_EQ((*reopened)->n(), 870.0);
    ExpectOnlyReferencedEntries(*m);
  }
}

}  // namespace
}  // namespace entropydb
