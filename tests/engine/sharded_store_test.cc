// ShardedStore: sharded-vs-monolithic equivalence fuzzing (merged COUNT/SUM
// estimates and variances must equal the additive per-shard reference),
// MANIFEST v3 round-trips, transparent EntropyEngine::Open dispatch, and
// backward-compatible v2/v1 monolithic loads.

#include <cmath>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/sharded_store.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> CorrelatedTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(4));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.8) ? row[0]
                                    : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.7) ? (row[2] % 5)
                                    : static_cast<Code>(rng.Uniform(5));
  }
  return testutil::MakeTable({6, 6, 5, 5}, rows);
}

ShardedOptions SmallShardedOptions(size_t shards) {
  ShardedOptions opts;
  opts.num_shards = shards;
  opts.store.num_summaries = 2;
  opts.store.total_budget = 40;
  opts.store.summary.solver.max_iterations = 120;
  opts.store.num_stratified_samples = 1;
  opts.store.uniform_sample = true;
  opts.store.sample_fraction = 0.05;
  return opts;
}

/// Random conjunctive queries over the 4-attribute fixture (point / range /
/// ANY mixes).
std::vector<CountingQuery> FuzzQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  std::vector<CountingQuery> out;
  const std::vector<uint32_t> dom = {6, 6, 5, 5};
  for (size_t i = 0; i < count; ++i) {
    CountingQuery q(4);
    for (AttrId a = 0; a < 4; ++a) {
      switch (rng.Uniform(4)) {
        case 0:
          q.Where(a,
                  AttrPredicate::Point(static_cast<Code>(rng.Uniform(dom[a]))));
          break;
        case 1: {
          Code lo = static_cast<Code>(rng.Uniform(dom[a]));
          Code hi = static_cast<Code>(rng.Uniform(dom[a]));
          if (hi < lo) std::swap(lo, hi);
          q.Where(a, AttrPredicate::Range(lo, hi));
          break;
        }
        default:
          break;  // ANY
      }
    }
    out.push_back(q);
  }
  return out;
}

TEST(ShardedStoreTest, BuildPartitionsAndSharesSchema) {
  auto table = CorrelatedTable(2000, 211);
  auto sharded = ShardedStore::Build(*table, SmallShardedOptions(4));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ((*sharded)->num_shards(), 4u);
  EXPECT_DOUBLE_EQ((*sharded)->n(), 2000.0);
  // Global pair ranking is forced into every shard: all shards model the
  // same pairs in the same order.
  for (size_t s = 1; s < 4; ++s) {
    ASSERT_EQ((*sharded)->shard(s).size(), (*sharded)->shard(0).size());
    for (size_t k = 0; k < (*sharded)->shard(0).size(); ++k) {
      ASSERT_EQ((*sharded)->shard(s).entry(k).pairs.size(),
                (*sharded)->shard(0).entry(k).pairs.size());
      EXPECT_EQ((*sharded)->shard(s).entry(k).pairs[0].a,
                (*sharded)->shard(0).entry(k).pairs[0].a);
      EXPECT_EQ((*sharded)->shard(s).entry(k).pairs[0].b,
                (*sharded)->shard(0).entry(k).pairs[0].b);
    }
    EXPECT_GT((*sharded)->shard(s).num_samples(), 0u);
  }
}

TEST(ShardedStoreTest, MergedEstimatesMatchAdditiveReferenceFuzz) {
  auto table = CorrelatedTable(2400, 223);
  auto sharded = ShardedStore::Build(*table, SmallShardedOptions(3));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  std::vector<double> weights((*sharded)->domains()[2].size());
  for (size_t v = 0; v < weights.size(); ++v) weights[v] = 1.5 + 0.5 * v;

  for (const CountingQuery& q : FuzzQueries(120, 227)) {
    // Additive reference, computed per shard through each shard's OWN
    // serving engine: disjoint row partitions with independent models sum
    // in both moments.
    double ref_e = 0.0, ref_v = 0.0, ref_se = 0.0, ref_sv = 0.0;
    for (size_t s = 0; s < (*sharded)->num_shards(); ++s) {
      auto cnt = (*sharded)->shard_engine(s).Answer(q);
      ASSERT_TRUE(cnt.ok());
      ref_e += cnt->expectation;
      ref_v += cnt->variance;
      auto sum = (*sharded)->shard_engine(s).Answer(
          AggregateQuery::Sum(2, weights, q));
      ASSERT_TRUE(sum.ok());
      ref_se += sum->estimate.expectation;
      ref_sv += sum->estimate.variance;
    }

    auto merged = (*sharded)->Answer(q);
    ASSERT_TRUE(merged.ok());
    EXPECT_LE(std::abs(merged->expectation - ref_e),
              1e-9 * (1.0 + std::abs(ref_e)));
    EXPECT_LE(std::abs(merged->variance - ref_v),
              1e-9 * (1.0 + std::abs(ref_v)));

    auto merged_sum = (*sharded)->Answer(AggregateQuery::Sum(2, weights, q));
    ASSERT_TRUE(merged_sum.ok());
    EXPECT_LE(std::abs(merged_sum->estimate.expectation - ref_se),
              1e-9 * (1.0 + std::abs(ref_se)));
    EXPECT_LE(std::abs(merged_sum->estimate.variance - ref_sv),
              1e-9 * (1.0 + std::abs(ref_sv)));
  }
}

TEST(ShardedStoreTest, CovarianceAwareAvgMatchesUnshardedReferenceFuzz) {
  auto table = CorrelatedTable(2400, 233);
  auto sharded = ShardedStore::Build(*table, SmallShardedOptions(3));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  std::vector<double> weights((*sharded)->domains()[2].size());
  for (size_t v = 0; v < weights.size(); ++v) weights[v] = 1.5 + 0.5 * v;

  double max_cov_effect = 0.0;
  for (const CountingQuery& q : FuzzQueries(120, 239)) {
    // Unsharded-style reference: sum every moment leg (S, C, Var S, Var C,
    // Cov(S, C)) across shards, then apply ONE delta method — exactly what
    // a single engine holding all the rows would do with those moments.
    double s_e = 0.0, s_v = 0.0, c_e = 0.0, c_v = 0.0, cov = 0.0;
    for (size_t s = 0; s < (*sharded)->num_shards(); ++s) {
      auto part = (*sharded)->shard_engine(s).Answer(
          AggregateQuery::Avg(2, weights, q));
      ASSERT_TRUE(part.ok()) << part.status().ToString();
      ASSERT_TRUE(part->has_moments);
      s_e += part->sum.expectation;
      s_v += part->sum.variance;
      c_e += part->count.expectation;
      c_v += part->count.variance;
      cov += part->sum_count_cov;
    }

    auto merged = (*sharded)->Answer(AggregateQuery::Avg(2, weights, q));
    ASSERT_TRUE(merged.ok()) << merged.status().ToString();
    if (c_e <= 0.0) {
      EXPECT_DOUBLE_EQ(merged->estimate.expectation, 0.0);
      continue;
    }
    const double r = s_e / c_e;
    const double ref_var = std::max(
        0.0, (s_v - 2.0 * r * cov + r * r * c_v) / (c_e * c_e));
    EXPECT_LE(std::abs(merged->estimate.expectation - r),
              1e-9 * (1.0 + std::abs(r)));
    EXPECT_LE(std::abs(merged->estimate.variance - ref_var),
              1e-9 * (1.0 + std::abs(ref_var)));

    // The covariance-FREE formula (the pre-fix approximation) must NOT
    // reproduce the reference on correlated data — track how far off it
    // gets across the fuzz set.
    const double naive_var = std::max(0.0, (s_v + r * r * c_v) / (c_e * c_e));
    if (ref_var > 0.0) {
      max_cov_effect = std::max(
          max_cov_effect, std::abs(naive_var - ref_var) / ref_var);
    }
  }
  // Cov(S, C) is materially nonzero on this workload: dropping it moves
  // the AVG variance by well over the merge tolerance.
  EXPECT_GT(max_cov_effect, 1e-3);
}

TEST(ShardedStoreTest, AnswerAllMatchesSerialAnswerBitwise) {
  auto table = CorrelatedTable(1600, 229);
  auto sharded = ShardedStore::Build(*table, SmallShardedOptions(4));
  ASSERT_TRUE(sharded.ok());
  auto qs = FuzzQueries(60, 233);

  std::vector<std::vector<RouteDecision>> decisions;
  auto batch = (*sharded)->AnswerAll(qs, &decisions);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), qs.size());
  ASSERT_EQ(decisions.size(), qs.size());
  for (size_t i = 0; i < qs.size(); ++i) {
    std::vector<RouteDecision> serial_decs;
    auto serial = (*sharded)->Answer(qs[i], &serial_decs);
    ASSERT_TRUE(serial.ok());
    // The batched grid merges in the same shard order: bitwise equal.
    EXPECT_EQ((*batch)[i].expectation, serial->expectation);
    EXPECT_EQ((*batch)[i].variance, serial->variance);
    ASSERT_EQ(decisions[i].size(), serial_decs.size());
    for (size_t s = 0; s < serial_decs.size(); ++s) {
      EXPECT_EQ(decisions[i][s].index, serial_decs[s].index);
      EXPECT_EQ(decisions[i][s].from_sample, serial_decs[s].from_sample);
      EXPECT_EQ(decisions[i][s].expected_variance,
                serial_decs[s].expected_variance);
    }
  }
}

TEST(ShardedStoreTest, GroupByAttributeMergesAdditively) {
  auto table = CorrelatedTable(1500, 239);
  auto sharded = ShardedStore::Build(*table, SmallShardedOptions(3));
  ASSERT_TRUE(sharded.ok());
  CountingQuery base(4);
  base.Where(0, AttrPredicate::Range(1, 4));

  auto merged = (*sharded)->AnswerGroupByAttribute(1, base);
  ASSERT_TRUE(merged.ok());
  std::vector<double> ref_e(merged->size(), 0.0), ref_v(merged->size(), 0.0);
  for (size_t s = 0; s < (*sharded)->num_shards(); ++s) {
    auto part = (*sharded)->shard_engine(s).AnswerGroupByAttribute(1, base);
    ASSERT_TRUE(part.ok());
    ASSERT_EQ(part->size(), merged->size());
    for (size_t v = 0; v < part->size(); ++v) {
      ref_e[v] += (*part)[v].expectation;
      ref_v[v] += (*part)[v].variance;
    }
  }
  for (size_t v = 0; v < merged->size(); ++v) {
    EXPECT_LE(std::abs((*merged)[v].expectation - ref_e[v]),
              1e-9 * (1.0 + std::abs(ref_e[v])));
    EXPECT_LE(std::abs((*merged)[v].variance - ref_v[v]),
              1e-9 * (1.0 + std::abs(ref_v[v])));
  }
}

TEST(ShardedStoreTest, ManifestV3RoundTripsBitwise) {
  auto table = CorrelatedTable(1800, 241);
  auto built = ShardedStore::Build(*table, SmallShardedOptions(3));
  ASSERT_TRUE(built.ok());

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_sharded_store_test").string();
  fs::remove_all(dir);
  ASSERT_TRUE((*built)->Save(dir).ok());
  ASSERT_TRUE(ShardedStore::IsShardedDir(dir));

  auto loaded = ShardedStore::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->num_shards(), (*built)->num_shards());
  EXPECT_EQ((*loaded)->scheme(), (*built)->scheme());
  EXPECT_DOUBLE_EQ((*loaded)->n(), (*built)->n());

  for (const CountingQuery& q : FuzzQueries(40, 251)) {
    auto a = (*built)->Answer(q);
    auto b = (*loaded)->Answer(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->expectation, b->expectation,
                1e-12 * (1.0 + std::abs(a->expectation)));
    EXPECT_NEAR(a->variance, b->variance,
                1e-12 * (1.0 + std::abs(a->variance)));
  }
  fs::remove_all(dir);
}

TEST(ShardedStoreTest, EngineOpenDispatchesShardedVsMonolithic) {
  auto table = CorrelatedTable(1500, 257);

  // v3 (sharded) directory -> sharded engine.
  auto sharded = ShardedStore::Build(*table, SmallShardedOptions(2));
  ASSERT_TRUE(sharded.ok());
  const std::string v3dir =
      (fs::temp_directory_path() / "entropydb_open_v3_test").string();
  fs::remove_all(v3dir);
  ASSERT_TRUE((*sharded)->Save(v3dir).ok());
  auto v3engine = EntropyEngine::Open(v3dir);
  ASSERT_TRUE(v3engine.ok()) << v3engine.status().ToString();
  EXPECT_TRUE((*v3engine)->is_sharded());
  EXPECT_TRUE((*v3engine)->is_store());
  EXPECT_EQ((*v3engine)->num_shards(), 2u);
  EXPECT_DOUBLE_EQ((*v3engine)->n(), 1500.0);

  // v2 (monolithic) directory -> store engine, exactly as before.
  StoreOptions mono = SmallShardedOptions(1).store;
  auto store = SourceStore::Build(*table, mono);
  ASSERT_TRUE(store.ok());
  const std::string v2dir =
      (fs::temp_directory_path() / "entropydb_open_v2_test").string();
  fs::remove_all(v2dir);
  ASSERT_TRUE((*store)->Save(v2dir).ok());
  EXPECT_FALSE(ShardedStore::IsShardedDir(v2dir));
  auto v2engine = EntropyEngine::Open(v2dir);
  ASSERT_TRUE(v2engine.ok());
  EXPECT_FALSE((*v2engine)->is_sharded());
  EXPECT_TRUE((*v2engine)->is_store());

  // The two layouts answer the same queries through one facade; sharded
  // estimates merge additively so totals track the monolithic ones.
  CountingQuery q(4);
  q.Where(0, AttrPredicate::Point(2)).Where(1, AttrPredicate::Point(2));
  auto sharded_est = (*v3engine)->Answer(q);
  auto mono_est = (*v2engine)->Answer(q);
  ASSERT_TRUE(sharded_est.ok());
  ASSERT_TRUE(mono_est.ok());
  EXPECT_GT(sharded_est->expectation, 0.0);
  EXPECT_GT(mono_est->expectation, 0.0);

  // v1 (PR 2-era summary-only) manifest keeps loading as a monolithic
  // store through the same Open.
  const std::string v1dir =
      (fs::temp_directory_path() / "entropydb_open_v1_test").string();
  fs::remove_all(v1dir);
  fs::create_directories(v1dir);
  {
    std::ofstream out(fs::path(v1dir) / "MANIFEST");
    out << "ENTROPYDB_STORE_V1\n";
    out << "summaries " << (*store)->size() << "\n";
    for (size_t k = 0; k < (*store)->size(); ++k) {
      const std::string file = "summary_" + std::to_string(k) + ".edb";
      out << "entry " << file << " pairs " << (*store)->entry(k).pairs.size();
      for (const ScoredPair& p : (*store)->entry(k).pairs) {
        out << ' ' << p.a << ' ' << p.b << ' ' << p.cramers_v;
      }
      out << '\n';
      ASSERT_TRUE(
          (*store)->summary(k).Save((fs::path(v1dir) / file).string()).ok());
    }
  }
  EXPECT_FALSE(ShardedStore::IsShardedDir(v1dir));
  auto v1engine = EntropyEngine::Open(v1dir);
  ASSERT_TRUE(v1engine.ok()) << v1engine.status().ToString();
  EXPECT_FALSE((*v1engine)->is_sharded());
  EXPECT_TRUE((*v1engine)->is_store());
  EXPECT_EQ((*v1engine)->num_samples(), 0u);

  fs::remove_all(v3dir);
  fs::remove_all(v2dir);
  fs::remove_all(v1dir);
}

TEST(ShardedStoreTest, LoadRejectsNonShardedAndCorruptManifests) {
  const std::string dir =
      (fs::temp_directory_path() / "entropydb_sharded_reject_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(fs::path(dir) / "MANIFEST");
    out << "ENTROPYDB_STORE_V2\nsummaries 1\n";
  }
  EXPECT_FALSE(ShardedStore::IsShardedDir(dir));
  EXPECT_TRUE(ShardedStore::Load(dir).status().IsCorruption());
  {
    std::ofstream out(fs::path(dir) / "MANIFEST");
    out << "ENTROPYDB_STORE_V3\nscheme warp\nshards 1\nshard shard_0\n";
  }
  EXPECT_FALSE(ShardedStore::Load(dir).ok());
  {
    std::ofstream out(fs::path(dir) / "MANIFEST");
    out << "ENTROPYDB_STORE_V3\nscheme hash\nshards 0\n";
  }
  EXPECT_TRUE(ShardedStore::Load(dir).status().IsCorruption());
  fs::remove_all(dir);
}

TEST(ShardedStoreTest, FromShardsValidatesSchemaAgreement) {
  auto table = CorrelatedTable(900, 263);
  StoreOptions mono;
  mono.num_summaries = 1;
  mono.total_budget = 20;
  mono.summary.solver.max_iterations = 80;
  auto a = SourceStore::Build(*table, mono);
  ASSERT_TRUE(a.ok());

  // A store over a different relation (other arity) must not merge in.
  auto other = testutil::RandomTable({3, 3}, 300, 269);
  auto b = SourceStore::Build(*other, mono);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(ShardedStore::FromShards({*a, *b},
                                       PartitionScheme::kRoundRobin)
                  .status()
                  .IsInvalidArgument());
  // Same arity, different domain sizes: also rejected.
  auto skewed = testutil::RandomTable({6, 6, 5, 4}, 900, 271);
  auto c = SourceStore::Build(*skewed, mono);
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(ShardedStore::FromShards({*a, *c},
                                       PartitionScheme::kRoundRobin)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ShardedStore::FromShards({}, PartitionScheme::kHash)
                  .status()
                  .IsInvalidArgument());
  // A null shard — even in front position — is rejected, not dereferenced.
  EXPECT_TRUE(ShardedStore::FromShards({nullptr, *a},
                                       PartitionScheme::kRoundRobin)
                  .status()
                  .IsInvalidArgument());
  // A single self-consistent shard is fine (the S = 1 baseline layout).
  EXPECT_TRUE(
      ShardedStore::FromShards({*a}, PartitionScheme::kRoundRobin).ok());
}

}  // namespace
}  // namespace entropydb
