// EntropyEngine facade: one query surface over a single summary or a
// routed store, with Open() dispatching on file vs. directory.

#include <filesystem>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/engine.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

StoreOptions SmallStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  return opts;
}

TEST(EntropyEngineTest, SingleSummaryFacadeAnswersLikeTheSummary) {
  auto table = TwoPairTable(800, 71);
  auto summary = EntropySummary::Build(*table, {});
  ASSERT_TRUE(summary.ok());
  auto engine = EntropyEngine::FromSummary(*summary);
  EXPECT_FALSE(engine->is_store());
  EXPECT_EQ(engine->num_summaries(), 1u);

  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(2));
  RouteDecision dec;
  auto via_engine = engine->Answer(q, &dec);
  auto direct = (*summary)->Answer(q);
  ASSERT_TRUE(via_engine.ok());
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(via_engine->expectation, direct->expectation);
  EXPECT_EQ(dec.index, 0u);
}

TEST(EntropyEngineTest, StoreBackedEngineRoutes) {
  auto table = TwoPairTable(1200, 73);
  auto store = SummaryStore::Build(*table, SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  auto engine = EntropyEngine::FromStore(*store);
  EXPECT_TRUE(engine->is_store());
  EXPECT_EQ(engine->num_summaries(), 2u);

  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(1)).Where(1, AttrPredicate::Point(1));
  RouteDecision dec;
  auto est = engine->Answer(q, &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(dec.fallback);
  auto direct = engine->store()->summary(dec.index).Answer(q);
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(est->expectation, direct->expectation);
}

TEST(EntropyEngineTest, BatchedAnswersMatchSerial) {
  auto table = TwoPairTable(900, 79);
  auto store = SummaryStore::Build(*table, SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  auto engine = EntropyEngine::FromStore(*store);
  std::vector<CountingQuery> qs;
  for (Code v = 0; v < 5; ++v) {
    CountingQuery q(5);
    q.Where(2, AttrPredicate::Point(v)).Where(3, AttrPredicate::Point(v));
    qs.push_back(q);
  }
  auto batch = engine->AnswerAll(qs);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < qs.size(); ++i) {
    auto serial = engine->Answer(qs[i]);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i].expectation, serial->expectation);
  }
}

TEST(EntropyEngineTest, AggregatesRouteOnTheAggregatedAttribute) {
  auto table = TwoPairTable(1200, 83);
  auto store = SummaryStore::Build(*table, SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  auto engine = EntropyEngine::FromStore(*store);

  // SUM(A0) WHERE A1 = 2: only attr 1 is filtered, but the aggregate runs
  // over attr 0, so the (0, 1)-modeling entry covers it.
  size_t pair01 = 0;
  for (size_t k = 0; k < (*store)->size(); ++k) {
    const ScoredPair& p = (*store)->entry(k).pairs.front();
    if (p.a + p.b == 1) pair01 = k;  // {0, 1}
  }
  std::vector<double> weights(6);
  for (size_t i = 0; i < weights.size(); ++i) weights[i] = 1.0 + i;
  CountingQuery q(5);
  q.Where(1, AttrPredicate::Point(2));
  RouteDecision dec;
  auto est = engine->Answer(AggregateQuery::Sum(0, weights, q), &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(dec.index, pair01);
  EXPECT_FALSE(dec.fallback);
  auto direct = engine->store()->summary(pair01).Answer(
      AggregateQuery::Sum(0, weights, q));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(est->estimate.expectation, direct->estimate.expectation);

  auto avg = engine->Answer(AggregateQuery::Avg(0, weights, q), &dec);
  ASSERT_TRUE(avg.ok());
  EXPECT_EQ(dec.index, pair01);
  EXPECT_GT(avg->estimate.expectation, 0.0);
}

TEST(EntropyEngineTest, OpenDispatchesOnFileVsDirectory) {
  auto table = TwoPairTable(800, 89);
  const auto tmp = fs::temp_directory_path();
  const std::string file = (tmp / "entropydb_engine_test.edb").string();
  const std::string dir = (tmp / "entropydb_engine_test_store").string();
  fs::remove_all(dir);
  fs::remove(file);

  auto summary = EntropySummary::Build(*table, {});
  ASSERT_TRUE(summary.ok());
  ASSERT_TRUE((*summary)->Save(file).ok());
  auto store = SummaryStore::Build(*table, SmallStoreOptions());
  ASSERT_TRUE(store.ok());
  ASSERT_TRUE((*store)->Save(dir).ok());

  auto from_file = EntropyEngine::Open(file);
  ASSERT_TRUE(from_file.ok());
  EXPECT_FALSE((*from_file)->is_store());

  auto from_dir = EntropyEngine::Open(dir);
  ASSERT_TRUE(from_dir.ok());
  EXPECT_TRUE((*from_dir)->is_store());
  EXPECT_EQ((*from_dir)->num_summaries(), 2u);

  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(1)).Where(1, AttrPredicate::Point(1));
  auto est = (*from_dir)->Answer(q);
  ASSERT_TRUE(est.ok());
  EXPECT_GT(est->expectation, 0.0);

  EXPECT_FALSE(EntropyEngine::Open((tmp / "entropydb_missing").string()).ok());
  fs::remove_all(dir);
  fs::remove(file);
}

TEST(EntropyEngineTest, OpenRestoresHybridStoresWithSamples) {
  auto table = TwoPairTable(1000, 97);
  StoreOptions opts = SmallStoreOptions();
  opts.num_stratified_samples = 1;
  opts.sample_fraction = 0.05;
  auto store = SourceStore::Build(*table, opts);
  ASSERT_TRUE(store.ok());

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_engine_hybrid_store").string();
  fs::remove_all(dir);
  ASSERT_TRUE((*store)->Save(dir).ok());
  auto engine = EntropyEngine::Open(dir);
  ASSERT_TRUE(engine.ok());
  EXPECT_TRUE((*engine)->is_store());
  EXPECT_EQ((*engine)->num_summaries(), 2u);
  EXPECT_EQ((*engine)->num_samples(), 1u);

  // Routed answers through the restored engine match the in-memory store's
  // routing (same decision, same bits).
  QueryRouter reference(*store);
  for (Code v = 0; v < 5; ++v) {
    CountingQuery q(5);
    q.Where(2, AttrPredicate::Point(v)).Where(3, AttrPredicate::Point(v));
    RouteDecision got, want;
    auto est = (*engine)->Answer(q, &got);
    auto ref = reference.Answer(q, &want);
    ASSERT_TRUE(est.ok());
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(got.from_sample, want.from_sample);
    EXPECT_EQ(est->expectation, ref->expectation);
    EXPECT_EQ(est->variance, ref->variance);
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace entropydb
