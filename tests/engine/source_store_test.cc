// SourceStore: sample companions alongside summaries, MANIFEST v2
// round-trips, and backward-compatible loading of PR 2-era (v1,
// summary-only) store directories.

#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/source_store.h"
#include "sampling/stratified_sampler.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

StoreOptions HybridStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  opts.num_stratified_samples = 2;
  opts.uniform_sample = true;
  opts.sample_fraction = 0.05;
  return opts;
}

TEST(SourceStoreTest, BuildDrawsSampleCompanions) {
  auto table = TwoPairTable(1500, 141);
  auto store = SourceStore::Build(*table, HybridStoreOptions());
  ASSERT_TRUE(store.ok());
  EXPECT_EQ((*store)->size(), 2u);
  ASSERT_EQ((*store)->num_samples(), 3u);  // 2 stratified + 1 uniform
  // Stratified entries carry the stratification pair; uniform carries none.
  EXPECT_EQ((*store)->sample_entry(0).pairs.size(), 1u);
  EXPECT_EQ((*store)->sample_entry(1).pairs.size(), 1u);
  EXPECT_TRUE((*store)->sample_entry(2).pairs.empty());
  for (size_t s = 0; s < 3; ++s) {
    const SampleEntry& e = (*store)->sample_entry(s);
    EXPECT_GT(e.sample->size(), 0u);
    EXPECT_EQ(e.sample->rows->num_attributes(), 5u);
    EXPECT_EQ((*store)->sample_source(s).kind(),
              EstimateSource::Kind::kSample);
  }
}

TEST(SourceStoreTest, SaveLoadRoundTripsSamplesAndSummaries) {
  auto table = TwoPairTable(1200, 143);
  auto built = SourceStore::Build(*table, HybridStoreOptions());
  ASSERT_TRUE(built.ok());

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_source_store_test").string();
  fs::remove_all(dir);
  ASSERT_TRUE((*built)->Save(dir).ok());
  auto loaded = SourceStore::Load(dir);
  ASSERT_TRUE(loaded.ok());

  ASSERT_EQ((*loaded)->size(), (*built)->size());
  ASSERT_EQ((*loaded)->num_samples(), (*built)->num_samples());
  for (size_t s = 0; s < (*built)->num_samples(); ++s) {
    const WeightedSample& a = *(*built)->sample_entry(s).sample;
    const WeightedSample& b = *(*loaded)->sample_entry(s).sample;
    EXPECT_EQ(a.name, b.name);
    EXPECT_DOUBLE_EQ(a.fraction, b.fraction);
    ASSERT_EQ(a.size(), b.size());
    for (size_t r = 0; r < a.size(); ++r) {
      EXPECT_DOUBLE_EQ(a.weights[r], b.weights[r]);
      for (AttrId at = 0; at < 5; ++at) {
        EXPECT_EQ(a.rows->at(r, at), b.rows->at(r, at));
      }
    }
    // The restored sample answers queries identically.
    CountingQuery q(5);
    q.Where(2, AttrPredicate::Point(1)).Where(3, AttrPredicate::Point(1));
    auto ea = (*built)->sample_source(s).Answer(q);
    auto eb = (*loaded)->sample_source(s).Answer(q);
    ASSERT_TRUE(ea.ok());
    ASSERT_TRUE(eb.ok());
    EXPECT_EQ(ea->expectation, eb->expectation);
    EXPECT_EQ(ea->variance, eb->variance);
  }
  fs::remove_all(dir);
}

TEST(SourceStoreTest, LoadsV1SummaryOnlyDirectoriesUnchanged) {
  // Reconstruct a PR 2-era store directory byte-for-byte: a v1 MANIFEST
  // (no samples section) plus per-summary .edb files.
  auto table = TwoPairTable(1000, 147);
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  auto built = SourceStore::Build(*table, opts);
  ASSERT_TRUE(built.ok());

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_v1_store_test").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  {
    std::ofstream out(fs::path(dir) / "MANIFEST");
    out << "ENTROPYDB_STORE_V1\n";
    out << "summaries " << (*built)->size() << "\n";
    for (size_t k = 0; k < (*built)->size(); ++k) {
      const std::string file = "summary_" + std::to_string(k) + ".edb";
      out << "entry " << file << " pairs " << (*built)->entry(k).pairs.size();
      for (const ScoredPair& p : (*built)->entry(k).pairs) {
        out << ' ' << p.a << ' ' << p.b << ' ' << p.cramers_v;
      }
      out << '\n';
      ASSERT_TRUE((*built)
                      ->summary(k)
                      .Save((fs::path(dir) / file).string())
                      .ok());
    }
  }

  auto loaded = SourceStore::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->size(), (*built)->size());
  EXPECT_EQ((*loaded)->num_samples(), 0u);
  EXPECT_EQ((*loaded)->widest(), (*built)->widest());
  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(1)).Where(1, AttrPredicate::Point(1));
  for (size_t k = 0; k < (*built)->size(); ++k) {
    auto a = (*built)->summary(k).Answer(q);
    auto b = (*loaded)->summary(k).Answer(q);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_NEAR(a->expectation, b->expectation,
                1e-12 * (1.0 + a->expectation));
  }
  fs::remove_all(dir);
}

TEST(SourceStoreTest, FromPartsValidatesSamples) {
  auto table = TwoPairTable(600, 149);
  StoreOptions opts;
  opts.num_summaries = 1;
  opts.total_budget = 20;
  opts.summary.solver.max_iterations = 80;
  auto store = SourceStore::Build(*table, opts);
  ASSERT_TRUE(store.ok());
  std::vector<StoreEntry> entries{(*store)->entry(0)};

  // Null sample rejected.
  EXPECT_TRUE(SourceStore::FromParts(entries, {SampleEntry{}})
                  .status()
                  .IsInvalidArgument());

  // Arity-mismatched sample rejected.
  auto narrow = testutil::RandomTable({3, 3}, 100, 151);
  auto bad = StratifiedSampler::Create(*narrow, 0, 1, 0.5, 1);
  ASSERT_TRUE(bad.ok());
  SampleEntry mismatched;
  mismatched.sample =
      std::make_shared<WeightedSample>(std::move(bad).ValueOrDie());
  EXPECT_TRUE(SourceStore::FromParts(entries, {mismatched})
                  .status()
                  .IsInvalidArgument());

  // A store still needs at least one summary, samples or not.
  EXPECT_TRUE(SourceStore::FromParts({}, {}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
