// Hybrid routing: a SourceStore holding a maxent summary on one pair and a
// stratified sample on another. Queries on rare strata the summary does
// not model must route to the sample (lower HT variance); broad queries on
// the modeled pair must stay on the summary; a query the sample never saw
// must fall back to the summary with a FINITE sample variance; and every
// routed answer is bitwise the chosen source's own answer.

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/engine.h"
#include "engine/query_router.h"
#include "query/exact_evaluator.h"
#include "sampling/stratified_sampler.h"

namespace entropydb {
namespace {

/// A0~A1 correlated; A2~A3 strongly correlated (0.95 diagonal mass), so
/// off-diagonal (A2, A3) cells are rare (a handful of rows each).
std::shared_ptr<Table> HybridTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(4));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(8));
    row[1] = rng.NextBernoulli(0.9) ? row[0]
                                    : static_cast<Code>(rng.Uniform(8));
    row[2] = static_cast<Code>(rng.Uniform(12));
    row[3] = rng.NextBernoulli(0.95) ? row[2]
                                     : static_cast<Code>(rng.Uniform(12));
  }
  return testutil::MakeTable({8, 8, 12, 12}, rows);
}

struct HybridFixture {
  std::shared_ptr<Table> table;
  std::shared_ptr<SourceStore> store;
  QueryRouter router;
  std::map<std::vector<Code>, size_t> cells23;  // exact (A2, A3) counts

  static HybridFixture& Get() {
    static HybridFixture* f = [] {
      auto table = HybridTable(4000, 331);
      // One summary modeling (0, 1) ONLY — (2, 3) correlations are
      // invisible to it — plus one stratified sample on (2, 3).
      StatisticSelector selector(SelectionHeuristic::kComposite);
      SummaryOptions sopts;
      sopts.solver.max_iterations = 150;
      auto summary = EntropySummary::Build(
          *table, selector.Select(*table, 0, 1, 40), sopts);
      EXPECT_TRUE(summary.ok());
      StoreEntry entry;
      entry.summary = *summary;
      entry.pairs = {ScoredPair{0, 1, 0.9, 0.0}};
      auto drawn = StratifiedSampler::Create(*table, 2, 3, 0.05, 7);
      EXPECT_TRUE(drawn.ok());
      SampleEntry sample;
      sample.sample =
          std::make_shared<WeightedSample>(std::move(drawn).ValueOrDie());
      sample.pairs = {ScoredPair{2, 3, 0.95, 0.0}};
      auto store = SourceStore::FromParts({entry}, {sample});
      EXPECT_TRUE(store.ok());
      ExactEvaluator exact(*table);
      auto* fx = new HybridFixture{table, *store, QueryRouter(*store), {}};
      for (const auto& [key, count] : exact.GroupByCount({2, 3})) {
        fx->cells23[key] = count;
      }
      return fx;
    }();
    return *f;
  }

  /// Off-diagonal (A2, A3) cells with a true count in [lo, hi].
  std::vector<std::vector<Code>> RareCells(size_t lo, size_t hi) const {
    std::vector<std::vector<Code>> out;
    for (const auto& [key, count] : cells23) {
      if (key[0] != key[1] && count >= lo && count <= hi) out.push_back(key);
    }
    return out;
  }
};

CountingQuery CellQuery(Code a2, Code a3) {
  CountingQuery q(4);
  q.Where(2, AttrPredicate::Point(a2)).Where(3, AttrPredicate::Point(a3));
  return q;
}

TEST(HybridRouterTest, RareAlignedQueriesRouteToTheSample) {
  auto& f = HybridFixture::Get();
  auto rare = f.RareCells(1, 3);
  ASSERT_FALSE(rare.empty());
  size_t sampled = 0;
  for (const auto& cell : rare) {
    CountingQuery q = CellQuery(cell[0], cell[1]);
    RouteDecision dec;
    auto est = f.router.Answer(q, &dec);
    ASSERT_TRUE(est.ok());
    // Consistency: the winner is exactly the lower-variance source.
    EXPECT_EQ(dec.from_sample, dec.sample_variance < dec.summary_variance);
    if (!dec.from_sample) continue;
    ++sampled;
    // Bitwise the sample's own answer — and stratification on (2, 3)
    // makes whole-stratum queries exact.
    auto direct = f.store->sample_source(dec.sample_index).Answer(q);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(est->expectation, direct->expectation);
    EXPECT_EQ(est->variance, direct->variance);
    EXPECT_NEAR(est->expectation,
                static_cast<double>(f.cells23.at(cell)), 1e-9);
  }
  // The paper's crossover: rare strata are where the sample must win.
  EXPECT_GT(sampled, 0u);
}

TEST(HybridRouterTest, BroadModeledQueriesStayOnTheSummary) {
  auto& f = HybridFixture::Get();
  for (Code v = 0; v < 4; ++v) {
    CountingQuery q(4);
    q.Where(0, AttrPredicate::Point(v)).Where(1, AttrPredicate::Point(v));
    RouteDecision dec;
    auto est = f.router.Answer(q, &dec);
    ASSERT_TRUE(est.ok());
    EXPECT_FALSE(dec.from_sample);
    EXPECT_FALSE(dec.fallback);
    EXPECT_GT(dec.sample_variance, dec.summary_variance);
    auto direct = f.store->summary(dec.index).Answer(q);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(est->expectation, direct->expectation);
    EXPECT_EQ(est->variance, direct->variance);
  }
}

TEST(HybridRouterTest, ZeroSampledRowsFallsBackToSummaryWithFiniteVariance) {
  auto& f = HybridFixture::Get();
  // A nonexistent (A2, A3) cell: the stratified sample has no such
  // stratum, so zero rows match. The miss floor keeps its variance finite
  // AND large enough that the summary wins.
  std::vector<Code> missing;
  for (Code x = 0; x < 12 && missing.empty(); ++x) {
    for (Code y = 0; y < 12 && missing.empty(); ++y) {
      if (x != y && f.cells23.find({x, y}) == f.cells23.end()) {
        missing = {x, y};
      }
    }
  }
  ASSERT_FALSE(missing.empty());
  CountingQuery q = CellQuery(missing[0], missing[1]);
  RouteDecision dec;
  auto est = f.router.Answer(q, &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(dec.from_sample);
  EXPECT_TRUE(std::isfinite(dec.sample_variance));
  EXPECT_GT(dec.sample_variance, 0.0);
  EXPECT_GE(dec.sample_variance, dec.summary_variance);
  // Nothing covers (2, 3) on the summary side: widest-fallback territory.
  EXPECT_TRUE(dec.fallback);
}

TEST(HybridRouterTest, EngineSumRoutesHybrid) {
  auto& f = HybridFixture::Get();
  auto engine = EntropyEngine::FromStore(f.store);
  EXPECT_EQ(engine->num_samples(), 1u);
  std::vector<double> values(8);
  for (size_t i = 0; i < values.size(); ++i) values[i] = 2.0 + i;

  // SUM over a rare (2, 3) stratum: the sample wins the count-variance
  // comparison and serves the aggregate.
  auto rare = f.RareCells(1, 3);
  ASSERT_FALSE(rare.empty());
  size_t sampled = 0;
  for (const auto& cell : rare) {
    CountingQuery q = CellQuery(cell[0], cell[1]);
    RouteDecision dec;
    auto est = engine->Answer(AggregateQuery::Sum(0, values, q), &dec);
    ASSERT_TRUE(est.ok());
    if (!dec.from_sample) continue;
    ++sampled;
    auto direct = f.store->sample_source(dec.sample_index)
                      .Answer(AggregateQuery::Sum(0, values, q));
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(est->estimate.expectation, direct->estimate.expectation);
    EXPECT_EQ(est->estimate.variance, direct->estimate.variance);
  }
  EXPECT_GT(sampled, 0u);

  // SUM filtered on the modeled pair stays on the summary.
  CountingQuery broad(4);
  broad.Where(1, AttrPredicate::Point(2));
  RouteDecision dec;
  auto est = engine->Answer(AggregateQuery::Sum(0, values, broad), &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_FALSE(dec.from_sample);
  auto direct =
      f.store->summary(dec.index).Answer(AggregateQuery::Sum(0, values, broad));
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(est->estimate.expectation, direct->estimate.expectation);
}

TEST(HybridRouterTest, AnswerAllMatchesSerialWithSamples) {
  auto& f = HybridFixture::Get();
  std::vector<CountingQuery> workload;
  for (const auto& cell : f.RareCells(1, 6)) {
    workload.push_back(CellQuery(cell[0], cell[1]));
  }
  for (Code v = 0; v < 6; ++v) {
    CountingQuery q(4);
    q.Where(0, AttrPredicate::Point(v)).Where(1, AttrPredicate::Range(0, v));
    workload.push_back(q);
  }
  std::vector<RouteDecision> decisions;
  auto batch = f.router.AnswerAll(workload, &decisions);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    RouteDecision dec;
    auto serial = f.router.Answer(workload[i], &dec);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i].expectation, serial->expectation);
    EXPECT_EQ((*batch)[i].variance, serial->variance);
    EXPECT_EQ(decisions[i].from_sample, dec.from_sample);
    EXPECT_EQ(decisions[i].index, dec.index);
  }
}

}  // namespace
}  // namespace entropydb
