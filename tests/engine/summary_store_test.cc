// SummaryStore: parallel top-K pair builds and directory persistence.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/source_store.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

/// Two strong, attribute-disjoint correlations — (0,1) and (2,3) — plus an
/// independent trailing attribute, so pair ranking has an unambiguous
/// top 2 and routing tests can aim queries at either correlation.
std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

StoreOptions SmallStoreOptions(size_t k) {
  StoreOptions opts;
  opts.num_summaries = k;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  return opts;
}

std::set<AttrId> PairSpan(const StoreEntry& e) {
  std::set<AttrId> span;
  for (const ScoredPair& p : e.pairs) {
    span.insert(p.a);
    span.insert(p.b);
  }
  return span;
}

TEST(SummaryStoreTest, BuildsOneSummaryPerTopPair) {
  auto table = TwoPairTable(1500, 41);
  auto store = SummaryStore::Build(*table, SmallStoreOptions(2));
  ASSERT_TRUE(store.ok());
  ASSERT_EQ((*store)->size(), 2u);
  // The two modeled pairs are exactly the two planted correlations.
  std::set<std::set<AttrId>> spans{PairSpan((*store)->entry(0)),
                                   PairSpan((*store)->entry(1))};
  EXPECT_TRUE(spans.count({0, 1}));
  EXPECT_TRUE(spans.count({2, 3}));
  // Every summary shares the relation schema and answers queries.
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_EQ((*store)->summary(k).num_attributes(), 5u);
    CountingQuery q(5);
    q.Where(0, AttrPredicate::Point(1));
    auto est = (*store)->summary(k).Answer(q);
    ASSERT_TRUE(est.ok());
    EXPECT_GT(est->expectation, 0.0);
  }
}

TEST(SummaryStoreTest, CapsKAtAvailablePairs) {
  auto table = TwoPairTable(600, 43);
  auto store = SummaryStore::Build(*table, SmallStoreOptions(50));
  ASSERT_TRUE(store.ok());
  // Attribute cover over 5 attributes yields at most 2 disjoint-ish pairs
  // plus coverage-classed extras; K is whatever the selector produced, and
  // every entry must carry exactly one pair.
  EXPECT_LE((*store)->size(), 10u);
  for (size_t k = 0; k < (*store)->size(); ++k) {
    EXPECT_EQ((*store)->entry(k).pairs.size(), 1u);
  }
}

TEST(SummaryStoreTest, SaveLoadRoundTripPreservesAnswers) {
  auto table = TwoPairTable(1200, 47);
  auto built = SummaryStore::Build(*table, SmallStoreOptions(2));
  ASSERT_TRUE(built.ok());

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_store_test").string();
  fs::remove_all(dir);
  ASSERT_TRUE((*built)->Save(dir).ok());
  auto loaded = SummaryStore::Load(dir);
  ASSERT_TRUE(loaded.ok());

  ASSERT_EQ((*loaded)->size(), (*built)->size());
  EXPECT_EQ((*loaded)->widest(), (*built)->widest());
  for (size_t k = 0; k < (*built)->size(); ++k) {
    EXPECT_EQ(PairSpan((*loaded)->entry(k)), PairSpan((*built)->entry(k)));
  }

  // Loading restores without re-solving: answers agree to serialization
  // precision (%.17g round-trips doubles exactly).
  std::vector<CountingQuery> probes;
  for (Code v = 0; v < 4; ++v) {
    CountingQuery q(5);
    q.Where(0, AttrPredicate::Point(v)).Where(1, AttrPredicate::Point(v));
    probes.push_back(q);
    CountingQuery r(5);
    r.Where(2, AttrPredicate::Range(0, v)).Where(4, AttrPredicate::Point(1));
    probes.push_back(r);
  }
  for (size_t k = 0; k < (*built)->size(); ++k) {
    for (const auto& q : probes) {
      auto a = (*built)->summary(k).Answer(q);
      auto b = (*loaded)->summary(k).Answer(q);
      ASSERT_TRUE(a.ok());
      ASSERT_TRUE(b.ok());
      EXPECT_NEAR(a->expectation, b->expectation,
                  1e-12 * (1.0 + a->expectation));
    }
  }
  fs::remove_all(dir);
}

TEST(SummaryStoreTest, LoadRejectsMissingAndCorruptStores) {
  EXPECT_FALSE(SummaryStore::Load("/nonexistent/store/dir").ok());

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_bad_store").string();
  fs::remove_all(dir);
  fs::create_directories(dir);
  std::ofstream(dir + "/MANIFEST") << "NOT_A_STORE\n";
  auto bad = SummaryStore::Load(dir);
  EXPECT_FALSE(bad.ok());
  fs::remove_all(dir);
}

TEST(SummaryStoreTest, FromEntriesValidates) {
  EXPECT_TRUE(SummaryStore::FromEntries({}).status().IsInvalidArgument());
  EXPECT_TRUE(SummaryStore::FromEntries({StoreEntry{}})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
