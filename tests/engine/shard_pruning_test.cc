// Zone-map shard pruning: pruned fan-outs must stay BITWISE identical to
// the full fan-out across every partition scheme and answer surface
// (COUNT/SUM/AVG/group-by/batched), pruning must actually fire on
// selective attribute-partitioned queries, legacy v3 manifests must load
// without zone maps and never prune, and ingest-sealed shards must carry
// zone maps of their own.

#include <cstdint>
#include <filesystem>
#include <fstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

/// 4 attributes with a wide routing attribute up front: domain 12 so 4
/// attribute-shards own contiguous 3-code slices.
std::shared_ptr<Table> PruningTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(4));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(12));
    row[1] = rng.NextBernoulli(0.8) ? (row[0] / 2)
                                    : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.7) ? (row[2] % 5)
                                    : static_cast<Code>(rng.Uniform(5));
  }
  return testutil::MakeTable({12, 6, 5, 5}, rows);
}

ShardedOptions SmallShardedOptions(PartitionScheme scheme) {
  ShardedOptions opts;
  opts.num_shards = 4;
  opts.scheme = scheme;
  opts.partition_attr = 0;
  opts.store.num_summaries = 2;
  opts.store.total_budget = 40;
  opts.store.summary.solver.max_iterations = 120;
  opts.store.num_stratified_samples = 1;
  opts.store.uniform_sample = true;
  opts.store.sample_fraction = 0.05;
  return opts;
}

/// Random conjunctions biased toward selective attribute-0 constraints so
/// attribute-partitioned stores actually get to prune.
std::vector<CountingQuery> FuzzQueries(size_t count, uint64_t seed) {
  Rng rng(seed);
  const std::vector<uint32_t> dom = {12, 6, 5, 5};
  std::vector<CountingQuery> out;
  for (size_t i = 0; i < count; ++i) {
    CountingQuery q(4);
    for (AttrId a = 0; a < 4; ++a) {
      switch (rng.Uniform(5)) {
        case 0:
        case 1:
          q.Where(a,
                  AttrPredicate::Point(static_cast<Code>(rng.Uniform(dom[a]))));
          break;
        case 2: {
          Code lo = static_cast<Code>(rng.Uniform(dom[a]));
          Code hi = static_cast<Code>(rng.Uniform(dom[a]));
          if (hi < lo) std::swap(lo, hi);
          q.Where(a, AttrPredicate::Range(lo, hi));
          break;
        }
        case 3:
          q.Where(a, AttrPredicate::InSet(
                         {static_cast<Code>(rng.Uniform(dom[a])),
                          static_cast<Code>(rng.Uniform(dom[a]))}));
          break;
        default:
          break;  // ANY
      }
    }
    out.push_back(q);
  }
  return out;
}

TEST(ShardPruningTest, PrunedAnswersBitwiseEqualFullFanOutAcrossSchemes) {
  auto table = PruningTable(2400, 307);
  const PartitionScheme schemes[] = {PartitionScheme::kRoundRobin,
                                     PartitionScheme::kHash,
                                     PartitionScheme::kAttribute};
  for (PartitionScheme scheme : schemes) {
    auto sharded = ShardedStore::Build(*table, SmallShardedOptions(scheme));
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

    std::vector<double> weights((*sharded)->domains()[2].size());
    for (size_t v = 0; v < weights.size(); ++v) weights[v] = 0.5 + 1.5 * v;

    size_t pruned_total = 0;
    for (const CountingQuery& q : FuzzQueries(80, 311)) {
      (*sharded)->set_zone_map_pruning(true);
      std::vector<RouteDecision> decs;
      auto cnt_on = (*sharded)->Answer(q, &decs);
      auto sum_on = (*sharded)->Answer(AggregateQuery::Sum(2, weights, q));
      auto avg_on = (*sharded)->Answer(AggregateQuery::Avg(2, weights, q));
      (*sharded)->set_zone_map_pruning(false);
      auto cnt_off = (*sharded)->Answer(q);
      auto sum_off = (*sharded)->Answer(AggregateQuery::Sum(2, weights, q));
      auto avg_off = (*sharded)->Answer(AggregateQuery::Avg(2, weights, q));
      ASSERT_TRUE(cnt_on.ok() && cnt_off.ok());
      ASSERT_TRUE(sum_on.ok() && sum_off.ok());
      ASSERT_TRUE(avg_on.ok() && avg_off.ok());
      // Bitwise, not approximate: a pruned shard contributes an exact
      // {0.0, 0.0}, so skipping it cannot move the merge by even an ulp.
      EXPECT_EQ(cnt_on->expectation, cnt_off->expectation);
      EXPECT_EQ(cnt_on->variance, cnt_off->variance);
      EXPECT_EQ(sum_on->estimate.expectation, sum_off->estimate.expectation);
      EXPECT_EQ(sum_on->estimate.variance, sum_off->estimate.variance);
      EXPECT_EQ(avg_on->estimate.expectation, avg_off->estimate.expectation);
      EXPECT_EQ(avg_on->estimate.variance, avg_off->estimate.variance);
      for (const RouteDecision& d : decs) pruned_total += d.pruned ? 1 : 0;
    }
    // Attribute partitioning concentrates each code in one shard, so the
    // attr-0-constrained fuzz queries must prune somewhere.
    if (scheme == PartitionScheme::kAttribute) {
      EXPECT_GT(pruned_total, 0u);
    }
  }
}

TEST(ShardPruningTest, AttributePointQueryPrunesAllButTheOwnerShard) {
  auto table = PruningTable(2400, 331);
  auto sharded = ShardedStore::Build(
      *table, SmallShardedOptions(PartitionScheme::kAttribute));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  ASSERT_EQ((*sharded)->partition_attr(), 0u);
  for (size_t s = 0; s < 4; ++s) {
    ASSERT_NE((*sharded)->zone_map(s), nullptr);
  }

  // Code 7 lives in shard 7 * 4 / 12 = 2 and nowhere else.
  CountingQuery q(4);
  q.Where(0, AttrPredicate::Point(7));
  std::vector<RouteDecision> decs;
  auto merged = (*sharded)->Answer(q, &decs);
  ASSERT_TRUE(merged.ok());
  ASSERT_EQ(decs.size(), 4u);
  for (size_t s = 0; s < 4; ++s) {
    EXPECT_EQ(decs[s].pruned, s != 2u) << "shard " << s;
    if (decs[s].pruned) EXPECT_EQ(decs[s].pruned_attr, 0u);
  }
  // The merge reduces to the owner shard alone — bitwise.
  auto owner = (*sharded)->shard_engine(2).Answer(q);
  ASSERT_TRUE(owner.ok());
  EXPECT_EQ(merged->expectation, owner->expectation);
  EXPECT_EQ(merged->variance, owner->variance);
}

TEST(ShardPruningTest, GroupByAnswersBitwiseEqualUnderPruning) {
  auto table = PruningTable(2000, 337);
  auto sharded = ShardedStore::Build(
      *table, SmallShardedOptions(PartitionScheme::kAttribute));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();

  CountingQuery base(4);
  base.Where(0, AttrPredicate::Point(4));  // one shard owns it

  (*sharded)->set_zone_map_pruning(true);
  auto grouped_on = (*sharded)->AnswerGroupByAttribute(1, base);
  std::vector<std::vector<Code>> keys;
  for (Code v1 = 0; v1 < 6; ++v1) {
    for (Code v2 = 0; v2 < 5; ++v2) keys.push_back({v1, v2});
  }
  auto point_on = (*sharded)->AnswerGroupBy({1, 2}, keys, base);
  (*sharded)->set_zone_map_pruning(false);
  auto grouped_off = (*sharded)->AnswerGroupByAttribute(1, base);
  auto point_off = (*sharded)->AnswerGroupBy({1, 2}, keys, base);

  ASSERT_TRUE(grouped_on.ok() && grouped_off.ok());
  ASSERT_EQ(grouped_on->size(), grouped_off->size());
  for (size_t v = 0; v < grouped_on->size(); ++v) {
    EXPECT_EQ((*grouped_on)[v].expectation, (*grouped_off)[v].expectation);
    EXPECT_EQ((*grouped_on)[v].variance, (*grouped_off)[v].variance);
  }
  ASSERT_TRUE(point_on.ok() && point_off.ok());
  ASSERT_EQ(point_on->size(), keys.size());
  ASSERT_EQ(point_off->size(), keys.size());
  for (const auto& [key, est] : *point_on) {
    auto it = point_off->find(key);
    ASSERT_NE(it, point_off->end());
    EXPECT_EQ(est.expectation, it->second.expectation);
    EXPECT_EQ(est.variance, it->second.variance);
  }
}

TEST(ShardPruningTest, AnswerAllPrunesCellsAndStaysBitwiseIdentical) {
  auto table = PruningTable(1800, 347);
  auto sharded = ShardedStore::Build(
      *table, SmallShardedOptions(PartitionScheme::kAttribute));
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  auto qs = FuzzQueries(40, 349);

  (*sharded)->set_zone_map_pruning(true);
  std::vector<std::vector<RouteDecision>> decisions;
  auto on = (*sharded)->AnswerAll(qs, &decisions);
  (*sharded)->set_zone_map_pruning(false);
  auto off = (*sharded)->AnswerAll(qs);
  ASSERT_TRUE(on.ok() && off.ok());
  ASSERT_EQ(on->size(), qs.size());

  size_t pruned_cells = 0;
  for (size_t i = 0; i < qs.size(); ++i) {
    EXPECT_EQ((*on)[i].expectation, (*off)[i].expectation);
    EXPECT_EQ((*on)[i].variance, (*off)[i].variance);
    for (const RouteDecision& d : decisions[i]) {
      pruned_cells += d.pruned ? 1 : 0;
    }
  }
  EXPECT_GT(pruned_cells, 0u);
}

TEST(ShardPruningTest, SaveLoadPreservesZoneMapsAndPartitionAttr) {
  auto table = PruningTable(2000, 353);
  auto built = ShardedStore::Build(
      *table, SmallShardedOptions(PartitionScheme::kAttribute));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_shard_pruning_roundtrip")
          .string();
  fs::remove_all(dir);
  ASSERT_TRUE((*built)->Save(dir).ok());

  auto loaded = ShardedStore::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ((*loaded)->scheme(), PartitionScheme::kAttribute);
  EXPECT_EQ((*loaded)->partition_attr(), 0u);
  for (size_t s = 0; s < (*loaded)->num_shards(); ++s) {
    ASSERT_NE((*loaded)->zone_map(s), nullptr) << "shard " << s;
  }
  // The persisted manifest lists every shard's zone map.
  auto m = ShardedStore::ReadManifest(dir);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->zonemap_dirs.size(), m->shard_dirs.size());
  EXPECT_EQ(m->partition_attr, 0u);

  // The loaded store prunes exactly like the in-memory one.
  CountingQuery q(4);
  q.Where(0, AttrPredicate::Point(1));
  std::vector<RouteDecision> built_decs, loaded_decs;
  auto a = (*built)->Answer(q, &built_decs);
  auto b = (*loaded)->Answer(q, &loaded_decs);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(built_decs.size(), loaded_decs.size());
  for (size_t s = 0; s < built_decs.size(); ++s) {
    EXPECT_EQ(built_decs[s].pruned, loaded_decs[s].pruned);
  }
  EXPECT_NEAR(a->expectation, b->expectation,
              1e-12 * (1.0 + std::abs(a->expectation)));
  fs::remove_all(dir);
}

TEST(ShardPruningTest, LegacyV3ManifestLoadsWithoutZoneMapsAndNeverPrunes) {
  auto table = PruningTable(1600, 359);
  auto built = ShardedStore::Build(
      *table, SmallShardedOptions(PartitionScheme::kRoundRobin));
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_shard_pruning_v3").string();
  fs::remove_all(dir);
  ASSERT_TRUE((*built)->Save(dir).ok());

  // Rewrite the manifest as a PR 5-era v3: no checksum footer, no zonemap
  // lines — even though the ZONEMAP files still sit in the shard dirs.
  auto m = ShardedStore::ReadManifest(dir);
  ASSERT_TRUE(m.ok());
  {
    std::ofstream out(fs::path(dir) / "MANIFEST",
                      std::ios::binary | std::ios::trunc);
    out << "ENTROPYDB_STORE_V3\nscheme roundrobin\nshards "
        << m->shard_dirs.size() << "\n";
    for (const std::string& d : m->shard_dirs) out << "shard " << d << "\n";
  }

  auto loaded = ShardedStore::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  for (size_t s = 0; s < (*loaded)->num_shards(); ++s) {
    EXPECT_EQ((*loaded)->zone_map(s), nullptr) << "shard " << s;
  }
  // No zone maps means no pruning: every shard scans, answers match the
  // original store's full fan-out.
  CountingQuery q(4);
  q.Where(0, AttrPredicate::Point(3)).Where(2, AttrPredicate::Point(1));
  std::vector<RouteDecision> decs;
  auto est = (*loaded)->Answer(q, &decs);
  ASSERT_TRUE(est.ok());
  for (const RouteDecision& d : decs) EXPECT_FALSE(d.pruned);
  (*built)->set_zone_map_pruning(false);
  auto ref = (*built)->Answer(q);
  ASSERT_TRUE(ref.ok());
  EXPECT_NEAR(est->expectation, ref->expectation,
              1e-12 * (1.0 + std::abs(ref->expectation)));
  fs::remove_all(dir);
}

TEST(ShardPruningTest, IngestSealedShardsCarryZoneMaps) {
  // 5-attribute fixture matching the ingest CSV schema.
  Rng rng(367);
  std::vector<std::vector<Code>> rows(1600, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  auto table = testutil::MakeTable({6, 6, 5, 5, 4}, rows);

  ShardedOptions sopts;
  sopts.num_shards = 2;
  sopts.store.num_summaries = 2;
  sopts.store.total_budget = 40;
  sopts.store.summary.solver.max_iterations = 120;
  sopts.store.num_stratified_samples = 1;
  sopts.store.uniform_sample = true;
  sopts.store.sample_fraction = 0.2;
  auto built = ShardedStore::Build(*table, sopts);
  ASSERT_TRUE(built.ok()) << built.status().ToString();

  const std::string dir =
      (fs::temp_directory_path() / "entropydb_shard_pruning_ingest").string();
  fs::remove_all(dir);
  ASSERT_TRUE((*built)->Save(dir).ok());

  // A batch whose attribute 4 only ever takes the value 3: the sealed
  // shard's zone map must prove every other code absent.
  std::string csv = "A0,A1,A2,A3,A4\n";
  Rng batch_rng(373);
  for (size_t i = 0; i < 200; ++i) {
    csv += std::to_string(batch_rng.Uniform(6)) + "," +
           std::to_string(batch_rng.Uniform(6)) + "," +
           std::to_string(batch_rng.Uniform(5)) + "," +
           std::to_string(batch_rng.Uniform(5)) + ",3\n";
  }
  auto report = AppendBatch(dir, csv, sopts.store);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sealed, 1u);

  auto m = ShardedStore::ReadManifest(dir);
  ASSERT_TRUE(m.ok());
  ASSERT_EQ(m->shard_dirs.size(), 3u);
  EXPECT_EQ(m->zonemap_dirs.size(), 3u);

  auto loaded = ShardedStore::Load(dir);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  ASSERT_EQ((*loaded)->num_shards(), 3u);
  ASSERT_NE((*loaded)->zone_map(2), nullptr);
  EXPECT_TRUE((*loaded)->zone_map(2)->Contains(4, 3));
  EXPECT_FALSE((*loaded)->zone_map(2)->Contains(4, 0));

  // The ingested shard is pruned for codes its batch never contained,
  // bitwise-identically to the full fan-out.
  CountingQuery q(5);
  q.Where(4, AttrPredicate::Point(0));
  std::vector<RouteDecision> decs;
  auto on = (*loaded)->Answer(q, &decs);
  (*loaded)->set_zone_map_pruning(false);
  auto off = (*loaded)->Answer(q);
  ASSERT_TRUE(on.ok() && off.ok());
  ASSERT_EQ(decs.size(), 3u);
  EXPECT_TRUE(decs[2].pruned);
  EXPECT_EQ(decs[2].pruned_attr, 4u);
  EXPECT_EQ(on->expectation, off->expectation);
  EXPECT_EQ(on->variance, off->variance);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace entropydb
