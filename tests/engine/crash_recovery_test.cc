// Crash-recovery matrix: Save and WAL-backed ingest are driven through
// FaultInjectionEnv with a simulated crash after EVERY mutating
// filesystem operation, followed by power-loss (un-synced data dropped).
// The reopened store must always be exactly the pre-crash or the
// post-crash version — never a torn mix, never unreadable.

#include <filesystem>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/fault_injection_env.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"
#include "storage/wal.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

StoreOptions SmallStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  opts.num_stratified_samples = 1;
  opts.uniform_sample = true;
  opts.sample_fraction = 0.2;
  return opts;
}

std::string TempDir(const std::string& name) {
  return (fs::temp_directory_path() / ("entropydb_crash_test_" + name))
      .string();
}

/// A 200-row CSV batch over the {6,6,5,5,4} fixture schema (attributes
/// A0..A4, binned integer domains).
std::string BatchCsv(uint64_t seed) {
  Rng rng(seed);
  std::string csv = "A0,A1,A2,A3,A4\n";
  for (size_t i = 0; i < 200; ++i) {
    csv += std::to_string(rng.Uniform(6)) + "," +
           std::to_string(rng.Uniform(6)) + "," +
           std::to_string(rng.Uniform(5)) + "," +
           std::to_string(rng.Uniform(5)) + "," +
           std::to_string(rng.Uniform(4)) + "\n";
  }
  return csv;
}

/// No stranded `<dir>.tmp-*` staging siblings (Load garbage-collects them).
void ExpectNoStaleStaging(const std::string& dir) {
  const fs::path p(dir);
  const std::string needle = p.filename().string() + ".tmp-";
  for (const auto& e : fs::directory_iterator(p.parent_path())) {
    EXPECT_NE(e.path().filename().string().find(needle), 0u)
        << "stale staging dir " << e.path();
  }
}

TEST(CrashRecoveryTest, MonoSaveCrashMatrix) {
  auto store_a = SourceStore::Build(*TwoPairTable(1200, 171),
                                    SmallStoreOptions());
  auto store_b = SourceStore::Build(*TwoPairTable(1500, 173),
                                    SmallStoreOptions());
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_b.ok());
  const std::string dir = TempDir("mono_save");
  fs::remove_all(dir);

  // Count the mutating ops of a clean B-over-A save — the crash points.
  uint64_t total_ops = 0;
  {
    ASSERT_TRUE((*store_a)->Save(dir).ok());
    FaultInjectionEnv fenv;
    ASSERT_TRUE((*store_b)->Save(dir, &fenv).ok());
    total_ops = fenv.ops();
    ASSERT_GT(total_ops, 5u);
  }

  for (uint64_t k = 0; k < total_ops; ++k) {
    fs::remove_all(dir);
    ASSERT_TRUE((*store_a)->Save(dir).ok());
    FaultInjectionEnv fenv;
    fenv.CrashAfter(static_cast<int64_t>(k));
    Status s = (*store_b)->Save(dir, &fenv);
    EXPECT_FALSE(s.ok()) << "crash at " << k << " did not fail the save";
    ASSERT_TRUE(fenv.LoseUnsyncedData().ok());

    auto reopened = SourceStore::Load(dir);
    ASSERT_TRUE(reopened.ok())
        << "crash at " << k << ": " << reopened.status().ToString();
    const double n = (*reopened)->summary(0).n();
    EXPECT_TRUE(n == 1200.0 || n == 1500.0) << "crash at " << k << ", n=" << n;
    // Never a mix of A and B artifacts: every summary agrees on n.
    for (size_t i = 0; i < (*reopened)->size(); ++i) {
      EXPECT_EQ((*reopened)->summary(i).n(), n) << "crash at " << k;
    }
    ExpectNoStaleStaging(dir);
  }

  // With no faults the save lands and the new version is visible.
  ASSERT_TRUE((*store_b)->Save(dir).ok());
  auto final_store = SourceStore::Load(dir);
  ASSERT_TRUE(final_store.ok());
  EXPECT_EQ((*final_store)->summary(0).n(), 1500.0);
  fs::remove_all(dir);
}

TEST(CrashRecoveryTest, ShardedSaveCrashMatrix) {
  ShardedOptions sopts;
  sopts.num_shards = 2;
  sopts.store = SmallStoreOptions();
  auto store_a = ShardedStore::Build(*TwoPairTable(1600, 175), sopts);
  auto store_b = ShardedStore::Build(*TwoPairTable(2000, 177), sopts);
  ASSERT_TRUE(store_a.ok());
  ASSERT_TRUE(store_b.ok());
  const std::string dir = TempDir("sharded_save");
  fs::remove_all(dir);

  uint64_t total_ops = 0;
  {
    ASSERT_TRUE((*store_a)->Save(dir).ok());
    FaultInjectionEnv fenv;
    ASSERT_TRUE((*store_b)->Save(dir, &fenv).ok());
    total_ops = fenv.ops();
    ASSERT_GT(total_ops, 10u);
  }

  for (uint64_t k = 0; k < total_ops; ++k) {
    fs::remove_all(dir);
    ASSERT_TRUE((*store_a)->Save(dir).ok());
    FaultInjectionEnv fenv;
    fenv.CrashAfter(static_cast<int64_t>(k));
    Status s = (*store_b)->Save(dir, &fenv);
    EXPECT_FALSE(s.ok()) << "crash at " << k << " did not fail the save";
    ASSERT_TRUE(fenv.LoseUnsyncedData().ok());

    auto reopened = EntropyEngine::Open(dir);
    ASSERT_TRUE(reopened.ok())
        << "crash at " << k << ": " << reopened.status().ToString();
    EXPECT_EQ((*reopened)->num_shards(), 2u) << "crash at " << k;
    const double n = (*reopened)->n();
    EXPECT_TRUE(n == 1600.0 || n == 2000.0) << "crash at " << k << ", n=" << n;
    ExpectNoStaleStaging(dir);
  }
  fs::remove_all(dir);
}

class WalIngestCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    sopts_.num_shards = 2;
    sopts_.store = SmallStoreOptions();
    auto built = ShardedStore::Build(*TwoPairTable(1600, 179), sopts_);
    ASSERT_TRUE(built.ok());
    pristine_ = *built;
    dir_ = TempDir(std::string("wal_") +
                   ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name());
    ResetDir();
  }
  void TearDown() override { fs::remove_all(dir_); }

  void ResetDir() {
    fs::remove_all(dir_);
    ASSERT_TRUE(pristine_->Save(dir_).ok());
  }

  double OpenedN() {
    auto opened = EntropyEngine::Open(dir_);
    EXPECT_TRUE(opened.ok()) << opened.status().ToString();
    return opened.ok() ? (*opened)->n() : -1.0;
  }

  ShardedOptions sopts_;
  std::shared_ptr<ShardedStore> pristine_;
  std::string dir_;
};

TEST_F(WalIngestCrashTest, AppendCrashMatrixIsAllOrNothing) {
  const std::string csv = BatchCsv(301);
  const StoreOptions iopts = SmallStoreOptions();

  // Crash-point count for a clean append.
  uint64_t total_ops = 0;
  {
    FaultInjectionEnv fenv;
    auto report = AppendBatch(dir_, csv, iopts, &fenv);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    EXPECT_EQ(report->journaled, 1u);
    EXPECT_EQ(report->sealed, 1u);
    total_ops = fenv.ops();
    ASSERT_GT(total_ops, 5u);
  }
  EXPECT_EQ(OpenedN(), 1800.0);

  // Sweep: crash after every op, lose un-synced data, recover, reopen.
  // Outcomes must be monotone: once the journal record is durable, every
  // later crash point recovers the full post-append state.
  std::vector<bool> post_state;
  for (uint64_t k = 0; k < total_ops; ++k) {
    ResetDir();
    FaultInjectionEnv fenv;
    fenv.CrashAfter(static_cast<int64_t>(k));
    auto report = AppendBatch(dir_, csv, iopts, &fenv);
    EXPECT_FALSE(report.ok()) << "crash at " << k;
    ASSERT_TRUE(fenv.LoseUnsyncedData().ok());

    auto recovered = RecoverPending(dir_, iopts);
    ASSERT_TRUE(recovered.ok())
        << "crash at " << k << ": " << recovered.status().ToString();
    const double n = OpenedN();
    EXPECT_TRUE(n == 1600.0 || n == 1800.0) << "crash at " << k << ", n=" << n;
    post_state.push_back(n == 1800.0);
  }
  // Monotone: pre...pre, post...post — no flapping in between.
  for (size_t k = 1; k < post_state.size(); ++k) {
    EXPECT_LE(static_cast<int>(post_state[k - 1]),
              static_cast<int>(post_state[k]))
        << "outcome regressed at crash point " << k;
  }
  // The earliest crash loses everything; the latest recovers everything.
  EXPECT_FALSE(post_state.front());
  EXPECT_TRUE(post_state.back());
}

TEST_F(WalIngestCrashTest, RecoverPendingSealsJournaledBatch) {
  // Simulate a crash after the journal sync but before any sealing work:
  // write the WAL record directly, then recover.
  const std::string csv = BatchCsv(303);
  {
    auto writer = WalWriter::Open(Env::Default(),
                                  (fs::path(dir_) / kIngestWalName).string());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE((*writer)->AddRecord(csv).ok());
    ASSERT_TRUE((*writer)->Sync().ok());
    ASSERT_TRUE((*writer)->Close().ok());
  }
  auto report = RecoverPending(dir_, SmallStoreOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->sealed, 1u);
  EXPECT_EQ(report->recovered, 1u);
  EXPECT_EQ(OpenedN(), 1800.0);

  // Idempotent: a second recovery has nothing to do.
  auto again = RecoverPending(dir_, SmallStoreOptions());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->sealed, 0u);
}

TEST_F(WalIngestCrashTest, TornWalTailIsTruncatedAndRepaired) {
  const StoreOptions iopts = SmallStoreOptions();
  auto first = AppendBatch(dir_, BatchCsv(305), iopts);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(OpenedN(), 1800.0);

  // Second append dies mid-WAL-write: half a frame lands on disk.
  {
    FaultInjectionEnv fenv;
    fenv.TearAppendAt(1);
    auto torn = AppendBatch(dir_, BatchCsv(307), iopts, &fenv);
    EXPECT_FALSE(torn.ok());
  }
  const std::string wal_path = (fs::path(dir_) / kIngestWalName).string();
  {
    auto wal = ReadWal(Env::Default(), wal_path);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal->records.size(), 1u);
    EXPECT_TRUE(wal->truncated_tail);
  }
  // Recovery sees only sealed records — nothing pending, store intact.
  auto recovered = RecoverPending(dir_, iopts);
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->sealed, 0u);
  EXPECT_EQ(OpenedN(), 1800.0);

  // The next good append truncates the torn tail before journaling, so
  // the journal stays replayable end to end.
  auto second = AppendBatch(dir_, BatchCsv(309), iopts);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->sealed, 1u);
  EXPECT_EQ(OpenedN(), 2000.0);
  auto wal = ReadWal(Env::Default(), wal_path);
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records.size(), 2u);
  EXPECT_FALSE(wal->truncated_tail);
  auto manifest = ShardedStore::ReadManifest(dir_);
  ASSERT_TRUE(manifest.ok());
  EXPECT_EQ(manifest->wal_sealed, 2u);
  EXPECT_EQ(manifest->shard_dirs.size(), 4u);
}

}  // namespace
}  // namespace entropydb
