// WAL-backed ingest (engine/ingest.h): appended batches become fresh
// shards, merged estimates track the grown relation, malformed batches
// are rejected before they reach the journal, and the sealed-batch
// cursor in the manifest stays consistent with the journal.

#include <filesystem>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"
#include "storage/wal.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

StoreOptions SmallStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  opts.num_stratified_samples = 1;
  opts.uniform_sample = true;
  opts.sample_fraction = 0.2;
  return opts;
}

std::string BatchCsv(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::string csv = "A0,A1,A2,A3,A4\n";
  for (size_t i = 0; i < rows; ++i) {
    csv += std::to_string(rng.Uniform(6)) + "," +
           std::to_string(rng.Uniform(6)) + "," +
           std::to_string(rng.Uniform(5)) + "," +
           std::to_string(rng.Uniform(5)) + "," +
           std::to_string(rng.Uniform(4)) + "\n";
  }
  return csv;
}

class IngestTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.store = SmallStoreOptions();
    auto built = ShardedStore::Build(*TwoPairTable(1600, 191), sopts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    dir_ = (fs::temp_directory_path() /
            ("entropydb_ingest_test_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    ASSERT_TRUE((*built)->Save(dir_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string dir_;
};

TEST_F(IngestTest, AppendGrowsTheStore) {
  auto report = AppendBatch(dir_, BatchCsv(200, 401), SmallStoreOptions());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->journaled, 1u);
  EXPECT_EQ(report->sealed, 1u);
  EXPECT_EQ(report->recovered, 0u);

  auto opened = EntropyEngine::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ((*opened)->num_shards(), 3u);
  EXPECT_EQ((*opened)->n(), 1800.0);

  // The merged unconstrained COUNT tracks the grown relation.
  CountingQuery q(5);
  auto est = (*opened)->Answer(q);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est->expectation, 1800.0, 0.02 * 1800.0);
}

TEST_F(IngestTest, SecondAppendAdvancesTheCursor) {
  ASSERT_TRUE(AppendBatch(dir_, BatchCsv(200, 403), SmallStoreOptions()).ok());
  auto second = AppendBatch(dir_, BatchCsv(150, 405), SmallStoreOptions());
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_EQ(second->sealed, 1u);

  auto m = ShardedStore::ReadManifest(dir_);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->wal_sealed, 2u);
  ASSERT_EQ(m->shard_dirs.size(), 4u);
  EXPECT_EQ(m->shard_dirs[2], "shard_b0");
  EXPECT_EQ(m->shard_dirs[3], "shard_b1");

  auto wal = ReadWal(Env::Default(),
                     (fs::path(dir_) / kIngestWalName).string());
  ASSERT_TRUE(wal.ok());
  EXPECT_EQ(wal->records.size(), 2u);

  auto opened = EntropyEngine::Open(dir_);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ((*opened)->n(), 1950.0);
}

TEST_F(IngestTest, MalformedBatchIsRejectedBeforeJournaling) {
  // Wrong header arity: rejected up front, journal stays empty, store
  // untouched — no poison-pill record that every later replay chokes on.
  auto bad = AppendBatch(dir_, "A0,A1\n1,2\n", SmallStoreOptions());
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);

  auto wal = ReadWal(Env::Default(),
                     (fs::path(dir_) / kIngestWalName).string());
  ASSERT_TRUE(wal.ok());
  EXPECT_TRUE(wal->records.empty());

  auto opened = EntropyEngine::Open(dir_);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ((*opened)->num_shards(), 2u);
  EXPECT_EQ((*opened)->n(), 1600.0);

  // Header-only and wrongly named headers are rejected the same way.
  EXPECT_FALSE(AppendBatch(dir_, "A0,A1,A2,A3,A4\n", SmallStoreOptions())
                   .ok());
  EXPECT_FALSE(AppendBatch(dir_, "X0,A1,A2,A3,A4\n1,1,1,1,1\n",
                           SmallStoreOptions())
                   .ok());
  // A good batch afterwards still lands cleanly.
  auto good = AppendBatch(dir_, BatchCsv(200, 407), SmallStoreOptions());
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->sealed, 1u);
}

TEST_F(IngestTest, AppendToMonoStoreFails) {
  auto mono = SourceStore::Build(*TwoPairTable(800, 193),
                                 SmallStoreOptions());
  ASSERT_TRUE(mono.ok());
  const std::string mono_dir = dir_ + "_mono";
  fs::remove_all(mono_dir);
  ASSERT_TRUE((*mono)->Save(mono_dir).ok());
  // Ingest appends shards; a monolithic store has no shard list to extend.
  EXPECT_FALSE(
      AppendBatch(mono_dir, BatchCsv(50, 409), SmallStoreOptions()).ok());
  fs::remove_all(mono_dir);
}

}  // namespace
}  // namespace entropydb
