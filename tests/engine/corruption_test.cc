// Corruption fuzzing: every persisted artifact of a saved mono and a
// saved sharded store is bit-flipped, truncated, and deleted, and
// EntropyEngine::Open must fail with a typed error (kCorruption or
// kIOError) — never crash, never return a half-valid store. Plus
// backward compatibility: v4-era directories rewritten to the legacy
// (pre-checksum) formats keep loading, unverified but warned.

#include <algorithm>
#include <filesystem>
#include <sstream>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/compaction.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"
#include "storage/zone_map.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

StoreOptions SmallStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 40;
  opts.summary.solver.max_iterations = 120;
  opts.num_stratified_samples = 1;
  opts.uniform_sample = true;
  opts.sample_fraction = 0.05;
  return opts;
}

/// Builds and saves the two pristine fixtures ONCE; every fuzz iteration
/// clones a fixture, mutates one file, and opens the clone.
class CorruptionTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    root_ = new std::string(
        (fs::temp_directory_path() / "entropydb_corruption_test").string());
    fs::remove_all(*root_);
    fs::create_directories(*root_);

    auto table = TwoPairTable(1200, 163);
    auto mono = SourceStore::Build(*table, SmallStoreOptions());
    ASSERT_TRUE(mono.ok()) << mono.status().ToString();
    ASSERT_TRUE((*mono)->Save(MonoDir()).ok());

    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.store = SmallStoreOptions();
    auto sharded = ShardedStore::Build(*table, sopts);
    ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
    ASSERT_TRUE((*sharded)->Save(ShardedDir()).ok());

    // The ingest-grown fixture: two sealed batches, so the walk covers
    // the journal and the shard_b* dirs ingest publishes.
    fs::copy(ShardedDir(), AppendedDir(), fs::copy_options::recursive);
    for (uint64_t b = 0; b < 2; ++b) {
      Rng rng(211 + b);
      std::string csv = "A0,A1,A2,A3,A4\n";
      for (size_t i = 0; i < 120; ++i) {
        csv += std::to_string(rng.Uniform(6)) + "," +
               std::to_string(rng.Uniform(6)) + "," +
               std::to_string(rng.Uniform(5)) + "," +
               std::to_string(rng.Uniform(5)) + "," +
               std::to_string(rng.Uniform(4)) + "\n";
      }
      auto report = AppendBatch(AppendedDir(), csv, SmallStoreOptions());
      ASSERT_TRUE(report.ok()) << report.status().ToString();
    }

    // The compacted fixture: the batch shards above folded into a
    // shard_c* replacement, so the walk covers compaction's artifacts.
    fs::copy(AppendedDir(), CompactedDir(), fs::copy_options::recursive);
    CompactionOptions copts;
    copts.store = SmallStoreOptions();
    copts.max_batch_shards = 1;
    auto compacted = RunCompaction(CompactedDir(), copts);
    ASSERT_TRUE(compacted.ok()) << compacted.status().ToString();
    ASSERT_TRUE(compacted->ran);
  }

  static void TearDownTestSuite() {
    fs::remove_all(*root_);
    delete root_;
    root_ = nullptr;
  }

  static std::string MonoDir() { return *root_ + "/mono"; }
  static std::string ShardedDir() { return *root_ + "/sharded"; }
  static std::string AppendedDir() { return *root_ + "/appended"; }
  static std::string CompactedDir() { return *root_ + "/compacted"; }
  std::string ScratchDir() const { return *root_ + "/scratch"; }

  /// All regular files under `dir`, as paths relative to it.
  static std::vector<std::string> FilesUnder(const std::string& dir) {
    std::vector<std::string> out;
    for (const auto& e : fs::recursive_directory_iterator(dir)) {
      if (e.is_regular_file()) {
        out.push_back(fs::relative(e.path(), dir).string());
      }
    }
    std::sort(out.begin(), out.end());
    return out;
  }

  /// Clones `src` into the scratch dir and returns the clone's path.
  std::string Clone(const std::string& src) const {
    fs::remove_all(ScratchDir());
    fs::copy(src, ScratchDir(), fs::copy_options::recursive);
    return ScratchDir();
  }

  /// Open must fail CLEANLY on a mutated store: a typed corruption or I/O
  /// error, no crash, no store object.
  static void ExpectOpenFailsCleanly(const std::string& dir,
                                     const std::string& what) {
    auto opened = EntropyEngine::Open(dir);
    ASSERT_FALSE(opened.ok()) << what << ": mutated store opened OK";
    const StatusCode code = opened.status().code();
    EXPECT_TRUE(code == StatusCode::kCorruption ||
                code == StatusCode::kIOError)
        << what << ": unexpected status " << opened.status().ToString();
  }

  /// Runs the full mutation battery against every file of a saved store.
  void FuzzEveryFile(const std::string& pristine) {
    for (const std::string& rel : FilesUnder(pristine)) {
      // The ingest journal is the ONE file Open never reads (sealing and
      // recovery own it), so no journal damage may fail an open — torn
      // or lost records surface on the next ingest call, not at load.
      const bool is_wal = fs::path(rel).filename() == kIngestWalName;
      const uint64_t size = fs::file_size(fs::path(pristine) / rel);
      ASSERT_GT(size, 0u) << rel;
      // Bit flips: spread through the payload plus the footer region
      // (tag, hex digits, trailing newline).
      std::vector<uint64_t> offsets = {0,        size / 3, size / 2,
                                       size - 16, size - 8, size - 1};
      for (uint64_t off : offsets) {
        if (off >= size) continue;
        const std::string dir = Clone(pristine);
        const std::string path = (fs::path(dir) / rel).string();
        std::string raw;
        ASSERT_TRUE(Env::Default()->ReadFile(path, &raw).ok());
        raw[off] ^= 0x04;
        ASSERT_TRUE(Env::Default()->WriteFile(path, raw).ok());
        if (is_wal) {
          EXPECT_TRUE(EntropyEngine::Open(dir).ok())
              << rel << " flip@" << off << " failed the open";
        } else {
          ExpectOpenFailsCleanly(dir, rel + " flip@" + std::to_string(off));
        }
      }
      // Truncations: empty, half, and one byte short.
      for (uint64_t keep : {uint64_t{0}, size / 2, size - 1}) {
        const std::string dir = Clone(pristine);
        fs::resize_file(fs::path(dir) / rel, keep);
        if (is_wal) {
          EXPECT_TRUE(EntropyEngine::Open(dir).ok())
              << rel << " trunc@" << keep << " failed the open";
        } else {
          ExpectOpenFailsCleanly(dir, rel + " trunc@" + std::to_string(keep));
        }
      }
      // Deletion. A missing zone map is the ONE tolerated mutation: the
      // map is skip-ahead metadata, so losing the file degrades that
      // shard to full fan-out (with a warning) instead of failing the
      // open — deleting it is a legal manual repair. A PRESENT-but-wrong
      // zone map (the flips and truncations above) must still fail typed:
      // it could prune wrongly, which is a silently wrong answer.
      {
        const std::string dir = Clone(pristine);
        fs::remove(fs::path(dir) / rel);
        if (is_wal || fs::path(rel).filename() == kZoneMapFileName) {
          auto opened = EntropyEngine::Open(dir);
          EXPECT_TRUE(opened.ok())
              << rel << " deleted: tolerated-damage open failed: "
              << opened.status().ToString();
        } else {
          ExpectOpenFailsCleanly(dir, rel + " deleted");
        }
      }
    }
  }

  static std::string* root_;
};

std::string* CorruptionTest::root_ = nullptr;

TEST_F(CorruptionTest, MonoStoreSurvivesMutationFuzz) {
  // Sanity: the pristine fixture opens.
  ASSERT_TRUE(EntropyEngine::Open(MonoDir()).ok());
  FuzzEveryFile(MonoDir());
}

TEST_F(CorruptionTest, ShardedStoreSurvivesMutationFuzz) {
  ASSERT_TRUE(EntropyEngine::Open(ShardedDir()).ok());
  FuzzEveryFile(ShardedDir());
}

TEST_F(CorruptionTest, AppendedStoreSurvivesMutationFuzz) {
  // Ingest-grown stores add artifacts the bulk-save path never writes:
  // the journal and the sealed shard_b* dirs. All of them get the same
  // battery (the journal with inverted expectations — see FuzzEveryFile).
  auto pristine = EntropyEngine::Open(AppendedDir());
  ASSERT_TRUE(pristine.ok());
  EXPECT_EQ((*pristine)->num_shards(), 4u);
  FuzzEveryFile(AppendedDir());
}

TEST_F(CorruptionTest, CompactedStoreSurvivesMutationFuzz) {
  auto pristine = EntropyEngine::Open(CompactedDir());
  ASSERT_TRUE(pristine.ok());
  EXPECT_EQ((*pristine)->sharded()->compaction_gen(), 1u);
  FuzzEveryFile(CompactedDir());
}

TEST_F(CorruptionTest, DeletedZoneMapDegradesToFullFanOutWithWarning) {
  auto fresh = EntropyEngine::Open(ShardedDir());
  ASSERT_TRUE(fresh.ok());

  const std::string dir = Clone(ShardedDir());
  fs::remove(fs::path(dir) / "shard_0" / kZoneMapFileName);

  ::testing::internal::CaptureStderr();
  auto degraded = EntropyEngine::Open(dir);
  const std::string warnings = ::testing::internal::GetCapturedStderr();
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  EXPECT_NE(warnings.find("zone map"), std::string::npos) << warnings;
  EXPECT_NE(warnings.find("full fan-out"), std::string::npos) << warnings;

  // Shard 0 lost its map (never pruned); shard 1 kept its own.
  EXPECT_EQ((*degraded)->sharded()->zone_map(0), nullptr);
  EXPECT_NE((*degraded)->sharded()->zone_map(1), nullptr);

  // Degraded answers are the pristine answers — pruning never changes an
  // estimate, so losing the ability to prune cannot either.
  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(2)).Where(4, AttrPredicate::Point(1));
  auto a = (*fresh)->Answer(q);
  auto b = (*degraded)->Answer(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->expectation, b->expectation);
  EXPECT_EQ(a->variance, b->variance);
}

TEST_F(CorruptionTest, VerificationCanBeDisabled) {
  // Flip one payload byte of the MANIFEST (well before the footer). With
  // verification on that is a checksum mismatch; with verify_checksums
  // off the footer is stripped but NOT checked, so the store either opens
  // on the mutated bytes or fails in the parser — never with a checksum
  // mismatch.
  const std::string dir = Clone(MonoDir());
  const std::string manifest = dir + "/MANIFEST";
  std::string raw;
  ASSERT_TRUE(Env::Default()->ReadFile(manifest, &raw).ok());
  raw[raw.size() - 20] ^= 0x04;
  ASSERT_TRUE(Env::Default()->WriteFile(manifest, raw).ok());

  auto verified = EntropyEngine::Open(dir);
  ASSERT_FALSE(verified.ok());
  EXPECT_EQ(verified.status().code(), StatusCode::kCorruption);
  EXPECT_NE(verified.status().ToString().find("checksum mismatch"),
            std::string::npos)
      << verified.status().ToString();

  SummaryOptions unverified;
  unverified.verify_checksums = false;
  auto opened = EntropyEngine::Open(dir, unverified);
  if (!opened.ok()) {
    EXPECT_EQ(opened.status().ToString().find("checksum mismatch"),
              std::string::npos)
        << "with verification off the failure must come from the parser, "
           "got: "
        << opened.status().ToString();
  }
}

// ---------------------------------------------------------------------
// Backward compatibility: strip the artifacts back to the legacy formats.

/// Drops the 16-byte `crc32c <hex>\n` footer if present.
std::string StripFooter(std::string raw) {
  if (raw.size() >= 16 && raw.compare(raw.size() - 16, 7, "crc32c ") == 0) {
    raw.resize(raw.size() - 16);
  }
  return raw;
}

/// Replaces the first line of `raw` with `header`.
std::string ReplaceHeader(const std::string& raw, const std::string& header) {
  const size_t eol = raw.find('\n');
  return header + "\n" + (eol == std::string::npos ? "" : raw.substr(eol + 1));
}

void RewriteFile(const std::string& path,
                 const std::string& legacy_header) {
  std::string raw;
  ASSERT_TRUE(Env::Default()->ReadFile(path, &raw).ok());
  ASSERT_TRUE(Env::Default()
                  ->WriteFile(path, ReplaceHeader(StripFooter(raw),
                                                  legacy_header))
                  .ok());
}

/// Rewrites a saved v4 mono store in place to the legacy (pre-checksum)
/// on-disk formats: v2 manifest, v1 summaries, v2 samples.
void DowngradeMonoDir(const std::string& dir) {
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string path = e.path().string();
    const std::string name = e.path().filename().string();
    if (name == "MANIFEST") {
      RewriteFile(path, "ENTROPYDB_STORE_V2");
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".edb") == 0) {
      RewriteFile(path, "ENTROPYDB_SUMMARY_V1");
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".eds") == 0) {
      RewriteFile(path, "ENTROPYDB_SAMPLE_V2");
    }
  }
}

TEST_F(CorruptionTest, LegacyMonoDirectoryStillLoads) {
  auto fresh = EntropyEngine::Open(MonoDir());
  ASSERT_TRUE(fresh.ok());

  const std::string dir = Clone(MonoDir());
  DowngradeMonoDir(dir);
  auto legacy = EntropyEngine::Open(dir);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();

  // Same store: identical answer on a selective conjunctive query.
  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(1)).Where(1, AttrPredicate::Point(1));
  auto a = (*fresh)->Answer(q);
  auto b = (*legacy)->Answer(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->expectation, b->expectation, 1e-9 * (1.0 + a->expectation));
}

TEST_F(CorruptionTest, LegacyShardedDirectoryStillLoads) {
  auto fresh = EntropyEngine::Open(ShardedDir());
  ASSERT_TRUE(fresh.ok());

  const std::string dir = Clone(ShardedDir());
  // v3 sharded manifest: no kind token, no wal_sealed line, no footer.
  std::string raw;
  ASSERT_TRUE(Env::Default()->ReadFile(dir + "/MANIFEST", &raw).ok());
  raw = StripFooter(raw);
  std::string v3;
  std::istringstream in(raw);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (first) {
      v3 += "ENTROPYDB_STORE_V3\n";
      first = false;
    } else if (line.compare(0, 11, "wal_sealed ") == 0) {
      continue;
    } else {
      v3 += line + "\n";
    }
  }
  ASSERT_TRUE(Env::Default()->WriteFile(dir + "/MANIFEST", v3).ok());
  for (const auto& e : fs::directory_iterator(dir)) {
    if (e.is_directory()) DowngradeMonoDir(e.path().string());
  }

  auto legacy = EntropyEngine::Open(dir);
  ASSERT_TRUE(legacy.ok()) << legacy.status().ToString();
  EXPECT_EQ((*legacy)->num_shards(), 2u);

  CountingQuery q(5);
  q.Where(2, AttrPredicate::Point(1)).Where(3, AttrPredicate::Point(1));
  auto a = (*fresh)->Answer(q);
  auto b = (*legacy)->Answer(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->expectation, b->expectation, 1e-9 * (1.0 + a->expectation));
}

}  // namespace
}  // namespace entropydb
