// Compaction fidelity (engine/compaction.h): randomized append-then-
// compact sequences across all three partition schemes must leave every
// merged answer path — COUNT, SUM, AVG, group-bys, AnswerAll — within the
// 1e-9 merge bar of the uncompacted store, keep zone-map pruning exact on
// the compacted shards, and rebuild deterministically under the
// documented per-shard sample-seed rule.
//
// The invariance argument needs per-shard models that reproduce their
// shard distributions EXACTLY, so the fixture uses 2-attribute tables
// with a budget covering every pair cell (kLargeSingleCell emits all of
// them) and a solver driven far past the default tolerance: each shard's
// estimate is then n_s * p_s with p_s the shard's own empirical
// fraction, and the additive merge telescopes to the same total for ANY
// disjoint partition of the same rows. Merged VARIANCES are NOT
// partition-invariant (sum n_s p_s (1 - p_s) depends on the split), so
// variances are pinned against an independently constructed expected
// store instead.

#include <cmath>
#include <filesystem>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/compaction.h"
#include "engine/engine.h"
#include "engine/ingest.h"
#include "engine/sharded_store.h"
#include "storage/partitioner.h"
#include "storage/wal.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

constexpr double kMergeBar = 1e-9;

StoreOptions ExactStoreOptions() {
  StoreOptions opts;
  opts.num_summaries = 1;
  opts.total_budget = 64;  // >= the 4 * 3 = 12 pair cells: exact model
  opts.heuristic = SelectionHeuristic::kLargeSingleCell;
  opts.summary.solver.max_iterations = 6000;
  opts.summary.solver.tolerance = 1e-12;
  return opts;
}

std::shared_ptr<Table> BaseTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(2));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(4));
    row[1] = rng.NextBernoulli(0.7) ? static_cast<Code>(row[0] % 3)
                                    : static_cast<Code>(rng.Uniform(3));
  }
  return testutil::MakeTable({4, 3}, rows);
}

std::string BatchCsv(size_t rows, uint64_t seed) {
  Rng rng(seed);
  std::string csv = "A0,A1\n";
  for (size_t i = 0; i < rows; ++i) {
    const Code a = static_cast<Code>(rng.Uniform(4));
    const Code b = rng.NextBernoulli(0.7) ? static_cast<Code>(a % 3)
                                          : static_cast<Code>(rng.Uniform(3));
    csv += std::to_string(a) + "," + std::to_string(b) + "\n";
  }
  return csv;
}

/// The query battery every invariance check runs: unconstrained, point,
/// range, set, and doubly-constrained shapes over both attributes.
std::vector<CountingQuery> Battery() {
  std::vector<CountingQuery> qs;
  qs.emplace_back(2);
  for (Code c = 0; c < 4; ++c) {
    qs.push_back(CountingQuery(2).Where(0, AttrPredicate::Point(c)));
  }
  qs.push_back(CountingQuery(2).Where(1, AttrPredicate::Point(2)));
  qs.push_back(CountingQuery(2).Where(0, AttrPredicate::Range(1, 2)));
  qs.push_back(CountingQuery(2).Where(0, AttrPredicate::InSet({0, 3})));
  qs.push_back(CountingQuery(2)
                   .Where(0, AttrPredicate::Point(2))
                   .Where(1, AttrPredicate::Range(0, 1)));
  return qs;
}

/// Every merged answer path over the battery, flattened into one vector
/// so pre/post comparison is a single loop.
std::vector<QueryEstimate> Snapshot(const ShardedStore& store) {
  std::vector<QueryEstimate> out;
  const std::vector<CountingQuery> qs = Battery();
  for (const CountingQuery& q : qs) {
    auto c = store.Answer(q);
    EXPECT_TRUE(c.ok()) << c.status().ToString();
    out.push_back(c.ok() ? *c : QueryEstimate{});
  }
  const std::vector<double> weights = {1.0, 5.0, 9.0, 13.0};
  auto sum = store.Answer(AggregateQuery::Sum(0, weights, qs[5]));
  EXPECT_TRUE(sum.ok()) << sum.status().ToString();
  out.push_back(sum.ok() ? sum->estimate : QueryEstimate{});
  auto avg = store.Answer(AggregateQuery::Avg(0, weights, qs[6]));
  EXPECT_TRUE(avg.ok()) << avg.status().ToString();
  out.push_back(avg.ok() ? avg->estimate : QueryEstimate{});
  auto by_attr = store.AnswerGroupByAttribute(1, qs[1]);
  EXPECT_TRUE(by_attr.ok()) << by_attr.status().ToString();
  if (by_attr.ok()) out.insert(out.end(), by_attr->begin(), by_attr->end());
  auto by_keys = store.AnswerGroupBy({0, 1}, {{0, 0}, {2, 1}, {3, 2}},
                                     CountingQuery(2));
  EXPECT_TRUE(by_keys.ok()) << by_keys.status().ToString();
  if (by_keys.ok()) {
    for (const auto& [key, est] : *by_keys) out.push_back(est);
  }
  auto all = store.AnswerAll(qs);
  EXPECT_TRUE(all.ok()) << all.status().ToString();
  if (all.ok()) out.insert(out.end(), all->begin(), all->end());
  return out;
}

void ExpectEstimatesMatch(const std::vector<QueryEstimate>& pre,
                          const std::vector<QueryEstimate>& post) {
  ASSERT_EQ(pre.size(), post.size());
  for (size_t i = 0; i < pre.size(); ++i) {
    EXPECT_NEAR(pre[i].expectation, post[i].expectation,
                kMergeBar * std::max(1.0, std::fabs(pre[i].expectation)))
        << "estimate " << i;
  }
}

struct SchemeCase {
  PartitionScheme scheme;
  AttrId partition_attr;
  const char* name;
};

class CompactionTest : public ::testing::TestWithParam<SchemeCase> {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("entropydb_compaction_test_" +
             std::string(GetParam().name) + "_" +
             std::string(::testing::UnitTest::GetInstance()
                             ->current_test_info()
                             ->name())))
               .string();
    fs::remove_all(dir_);
    ShardedOptions sopts;
    sopts.num_shards = 2;
    sopts.scheme = GetParam().scheme;
    sopts.partition_attr = GetParam().partition_attr;
    sopts.store = ExactStoreOptions();
    auto built = ShardedStore::Build(*BaseTable(600, 11), sopts);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    ASSERT_TRUE((*built)->Save(dir_).ok());
  }
  void TearDown() override { fs::remove_all(dir_); }

  void Append(size_t rows, uint64_t seed) {
    auto report = AppendBatch(dir_, BatchCsv(rows, seed),
                              ExactStoreOptions());
    ASSERT_TRUE(report.ok()) << report.status().ToString();
  }

  std::string dir_;
};

TEST_P(CompactionTest, PlannerTriggersAndReports) {
  CompactionOptions copts;
  copts.store = ExactStoreOptions();
  copts.max_batch_shards = 2;

  // Fresh store: no batch-lineage shards at all.
  auto plan = CompactionPlanner::Plan(dir_, copts);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  EXPECT_FALSE(plan->triggered);
  EXPECT_TRUE(plan->candidates.empty());

  Append(90, 21);
  Append(70, 22);
  plan = CompactionPlanner::Plan(dir_, copts);
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->triggered) << plan->reason;
  EXPECT_EQ(plan->candidates.size(), 2u);
  EXPECT_EQ(plan->total_rows, 160u);

  // A third batch tips the count trigger; the plan names every
  // batch-lineage dir and the next generation.
  Append(110, 23);
  plan = CompactionPlanner::Plan(dir_, copts);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->triggered);
  EXPECT_EQ(plan->candidates.size(), 3u);
  EXPECT_EQ(plan->total_rows, 270u);
  EXPECT_EQ(plan->generation, 1u);
  EXPECT_EQ(plan->output_shards, 1u);  // no split threshold

  // The oversize trigger reads the manifest's per-shard row counts.
  CompactionOptions split = copts;
  split.max_batch_shards = 10;
  split.split_threshold = 100;
  plan = CompactionPlanner::Plan(dir_, split);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->triggered);  // shard_b2 holds 110 > 100 rows
  EXPECT_EQ(plan->output_shards, 3u);  // ceil(270 / 100)

  // An untriggered RunCompaction leaves the store untouched.
  CompactionOptions lax;
  lax.max_batch_shards = 10;
  lax.store = ExactStoreOptions();
  auto report = RunCompaction(dir_, lax);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(report->ran);
  auto m = ShardedStore::ReadManifest(dir_);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->shard_dirs.size(), 5u);
  EXPECT_EQ(m->compaction_gen, 0u);
}

TEST_P(CompactionTest, AnswersInvariantAcrossCompaction) {
  Append(90, 31);
  Append(70, 32);
  Append(110, 33);

  auto pre_store = ShardedStore::Load(dir_);
  ASSERT_TRUE(pre_store.ok()) << pre_store.status().ToString();
  const double pre_n = (*pre_store)->n();
  const std::vector<QueryEstimate> pre = Snapshot(**pre_store);

  CompactionOptions copts;
  copts.store = ExactStoreOptions();
  copts.max_batch_shards = 2;
  copts.split_threshold = 150;
  auto report = RunCompaction(dir_, copts);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ran);
  EXPECT_EQ(report->rows, 270u);
  EXPECT_EQ(report->generation, 1u);
  EXPECT_EQ(report->replaced_shards.size(), 3u);
  EXPECT_GE(report->new_shards.size(), 1u);
  EXPECT_LE(report->new_shards.size(), 2u);  // ceil(270 / 150), or fewer

  auto post_store = ShardedStore::Load(dir_);
  ASSERT_TRUE(post_store.ok()) << post_store.status().ToString();
  EXPECT_DOUBLE_EQ((*post_store)->n(), pre_n);
  EXPECT_EQ((*post_store)->compaction_gen(), 1u);
  // The replaced dirs are gone; only base + generation-1 shards remain.
  for (const auto& entry : fs::directory_iterator(dir_)) {
    const std::string name = entry.path().filename().string();
    EXPECT_NE(name.rfind("shard_b", 0), 0u) << name << " not GC'd";
  }
  ExpectEstimatesMatch(pre, Snapshot(**post_store));

  // The engine facade opens the compacted store like any other.
  auto opened = EntropyEngine::Open(dir_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_TRUE((*opened)->is_sharded());
  EXPECT_DOUBLE_EQ((*opened)->n(), pre_n);
}

TEST_P(CompactionTest, SecondCycleRecompactsCompactedShards) {
  Append(90, 41);
  Append(70, 42);
  Append(110, 43);
  CompactionOptions copts;
  copts.store = ExactStoreOptions();
  copts.max_batch_shards = 2;
  ASSERT_TRUE(RunCompaction(dir_, copts)->ran);

  // More appends on the compacted store, then a second pass: shard_c1_*
  // is itself batch-lineage and must fold into generation 2.
  Append(60, 44);
  Append(40, 45);

  auto pre_store = ShardedStore::Load(dir_);
  ASSERT_TRUE(pre_store.ok());
  const std::vector<QueryEstimate> pre = Snapshot(**pre_store);

  CompactionOptions force = copts;
  force.force = true;
  auto report = RunCompaction(dir_, force);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_TRUE(report->ran);
  EXPECT_EQ(report->generation, 2u);
  EXPECT_EQ(report->rows, 370u);
  bool replaced_c1 = false;
  for (const std::string& d : report->replaced_shards) {
    replaced_c1 |= d.rfind("shard_c1_", 0) == 0;
  }
  EXPECT_TRUE(replaced_c1);

  auto post_store = ShardedStore::Load(dir_);
  ASSERT_TRUE(post_store.ok());
  EXPECT_EQ((*post_store)->compaction_gen(), 2u);
  ExpectEstimatesMatch(pre, Snapshot(**post_store));
}

TEST_P(CompactionTest, CompactedStoreMatchesDeterministicRebuild) {
  Append(90, 51);
  Append(70, 52);
  Append(110, 53);

  CompactionOptions copts;
  copts.store = ExactStoreOptions();
  copts.max_batch_shards = 2;
  copts.split_threshold = 150;
  auto report = RunCompaction(dir_, copts);
  ASSERT_TRUE(report.ok() && report->ran);

  auto post_store = ShardedStore::Load(dir_);
  ASSERT_TRUE(post_store.ok());

  // Reconstruct the replacement shards from the documented rule alone:
  // journal rows in seal order, the store's own partition scheme, and
  // sample_seed += (gen << 32) + (j << 20). Estimates AND variances of
  // the merged answers must agree — variance has no partition-invariance
  // argument, so THIS is the check that pins it.
  auto m = ShardedStore::ReadManifest(dir_);
  ASSERT_TRUE(m.ok());
  auto shard0 = SourceStore::Load((fs::path(dir_) / "shard_0").string());
  ASSERT_TRUE(shard0.ok());
  auto wal =
      ReadWal(Env::Default(), (fs::path(dir_) / kIngestWalName).string());
  ASSERT_TRUE(wal.ok());
  TableBuilder builder(Schema{{AttributeSpec{"A0", AttributeType::kInteger, 4},
                               AttributeSpec{"A1", AttributeType::kInteger,
                                             3}}});
  builder.SetDomain(0, (*shard0)->domains()[0]);
  builder.SetDomain(1, (*shard0)->domains()[1]);
  for (uint64_t i = 0; i < m->wal_sealed; ++i) {
    auto batch = ParseIngestBatch(**shard0, wal->records[i], i);
    ASSERT_TRUE(batch.ok()) << batch.status().ToString();
    for (size_t r = 0; r < (*batch)->num_rows(); ++r) {
      builder.AppendEncodedRow({(*batch)->at(r, 0), (*batch)->at(r, 1)});
    }
  }
  auto rows = builder.Finish();
  ASSERT_TRUE(rows.ok());

  PartitionOptions popts;
  popts.num_shards = report->new_shards.size();
  popts.scheme = GetParam().scheme;
  popts.partition_attr = GetParam().partition_attr;
  auto parts = TablePartitioner::Partition(**rows, popts);
  ASSERT_TRUE(parts.ok()) << parts.status().ToString();

  std::vector<std::shared_ptr<SourceStore>> expected;
  expected.push_back(*shard0);
  auto shard1 = SourceStore::Load((fs::path(dir_) / "shard_1").string());
  ASSERT_TRUE(shard1.ok());
  expected.push_back(*shard1);
  for (size_t j = 0; j < parts->size(); ++j) {
    StoreOptions per_shard = ExactStoreOptions();
    per_shard.forced_pairs = InheritedPairs(**shard0);
    per_shard.use_budget_advisor = false;
    per_shard.sample_seed +=
        (report->generation << 32) + (static_cast<uint64_t>(j) << 20);
    auto built = SourceStore::Build(*(*parts)[j], per_shard);
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    expected.push_back(*built);
  }
  auto expected_store = ShardedStore::FromShards(
      std::move(expected), GetParam().scheme, {}, GetParam().partition_attr);
  ASSERT_TRUE(expected_store.ok()) << expected_store.status().ToString();

  for (const CountingQuery& q : Battery()) {
    auto got = (*post_store)->Answer(q);
    auto want = (*expected_store)->Answer(q);
    ASSERT_TRUE(got.ok() && want.ok());
    EXPECT_NEAR(got->expectation, want->expectation,
                kMergeBar * std::max(1.0, std::fabs(want->expectation)));
    EXPECT_NEAR(got->variance, want->variance,
                kMergeBar * std::max(1.0, std::fabs(want->variance)));
  }
}

TEST_P(CompactionTest, ZoneMapPruningStaysExactOnCompactedShards) {
  Append(90, 61);
  Append(70, 62);
  Append(110, 63);
  CompactionOptions copts;
  copts.store = ExactStoreOptions();
  copts.max_batch_shards = 2;
  copts.split_threshold = 150;
  ASSERT_TRUE(RunCompaction(dir_, copts)->ran);

  auto loaded = ShardedStore::Load(dir_);
  ASSERT_TRUE(loaded.ok());
  // Every shard of the compacted store carries a zone map (base shards
  // keep theirs, compaction writes fresh ones).
  for (size_t s = 0; s < (*loaded)->num_shards(); ++s) {
    EXPECT_NE((*loaded)->zone_map(s), nullptr) << "shard " << s;
  }
  // Pruned and full-fan-out answers are bitwise identical: a pruned
  // shard's zone map PROVES zero matches, so skipping it changes nothing.
  for (const CountingQuery& q : Battery()) {
    (*loaded)->set_zone_map_pruning(true);
    auto pruned = (*loaded)->Answer(q);
    (*loaded)->set_zone_map_pruning(false);
    auto full = (*loaded)->Answer(q);
    ASSERT_TRUE(pruned.ok() && full.ok());
    EXPECT_EQ(pruned->expectation, full->expectation);
    EXPECT_EQ(pruned->variance, full->variance);
  }
}

/// Randomized sequences: interleave appends and threshold-triggered
/// compactions, checking the battery after every compaction against the
/// state just before it.
TEST_P(CompactionTest, FuzzAppendCompactSequences) {
  Rng rng(0xC0DEC + static_cast<uint64_t>(GetParam().scheme));
  CompactionOptions copts;
  copts.store = ExactStoreOptions();
  copts.max_batch_shards = 1;
  copts.split_threshold = 120;
  uint64_t expected_gen = 0;
  for (int step = 0; step < 6; ++step) {
    Append(40 + rng.Uniform(80), 700 + step);
    auto plan = CompactionPlanner::Plan(dir_, copts);
    ASSERT_TRUE(plan.ok());
    if (!plan->triggered) continue;

    auto pre_store = ShardedStore::Load(dir_);
    ASSERT_TRUE(pre_store.ok());
    const double pre_n = (*pre_store)->n();
    const std::vector<QueryEstimate> pre = Snapshot(**pre_store);

    auto report = RunCompaction(dir_, copts);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    ASSERT_TRUE(report->ran);
    EXPECT_EQ(report->generation, ++expected_gen);

    auto post_store = ShardedStore::Load(dir_);
    ASSERT_TRUE(post_store.ok());
    EXPECT_DOUBLE_EQ((*post_store)->n(), pre_n);
    ExpectEstimatesMatch(pre, Snapshot(**post_store));
  }
  EXPECT_GE(expected_gen, 2u);  // the sequence really exercised cycles
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, CompactionTest,
    ::testing::Values(SchemeCase{PartitionScheme::kRoundRobin, 0, "rr"},
                      SchemeCase{PartitionScheme::kHash, 0, "hash"},
                      SchemeCase{PartitionScheme::kAttribute, 0, "attr"}),
    [](const ::testing::TestParamInfo<SchemeCase>& info) {
      return info.param.name;
    });

}  // namespace
}  // namespace entropydb
