// QueryRouter: coverage-based candidate selection, variance tie-breaking,
// widest-summary fallback, and the acceptance bar that routed answers are
// the chosen summary's own answers (<= 1e-12 relative error; in practice
// bitwise identical).

#include <cmath>

#include <gtest/gtest.h>

#include "../test_util.h"
#include "engine/query_router.h"
#include "engine/source_store.h"

namespace entropydb {
namespace {

std::shared_ptr<Table> TwoPairTable(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n, std::vector<Code>(5));
  for (auto& row : rows) {
    row[0] = static_cast<Code>(rng.Uniform(6));
    row[1] = rng.NextBernoulli(0.85) ? row[0]
                                     : static_cast<Code>(rng.Uniform(6));
    row[2] = static_cast<Code>(rng.Uniform(5));
    row[3] = rng.NextBernoulli(0.85) ? row[2]
                                     : static_cast<Code>(rng.Uniform(5));
    row[4] = static_cast<Code>(rng.Uniform(4));
  }
  return testutil::MakeTable({6, 6, 5, 5, 4}, rows);
}

struct RoutedFixture {
  std::shared_ptr<SummaryStore> store;
  QueryRouter router;
  size_t pair01;  // entry modeling (0, 1)
  size_t pair23;  // entry modeling (2, 3)

  static RoutedFixture& Get() {
    static RoutedFixture* f = [] {
      auto table = TwoPairTable(1500, 61);
      StoreOptions opts;
      opts.num_summaries = 2;
      opts.total_budget = 40;
      opts.summary.solver.max_iterations = 120;
      auto store = SummaryStore::Build(*table, opts);
      EXPECT_TRUE(store.ok());
      size_t p01 = 0, p23 = 0;
      for (size_t k = 0; k < (*store)->size(); ++k) {
        const ScoredPair& p = (*store)->entry(k).pairs.front();
        if ((p.a == 0 && p.b == 1) || (p.a == 1 && p.b == 0)) p01 = k;
        if ((p.a == 2 && p.b == 3) || (p.a == 3 && p.b == 2)) p23 = k;
      }
      return new RoutedFixture{*store, QueryRouter(*store), p01, p23};
    }();
    return *f;
  }
};

TEST(QueryRouterTest, RoutesToTheSingleCoveringSummary) {
  auto& f = RoutedFixture::Get();
  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(2)).Where(1, AttrPredicate::Point(2));
  RouteDecision dec;
  auto est = f.router.Answer(q, &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(dec.index, f.pair01);
  EXPECT_EQ(dec.covered_pairs, 1u);
  EXPECT_EQ(dec.candidates, 1u);
  EXPECT_FALSE(dec.fallback);

  CountingQuery r(5);
  r.Where(2, AttrPredicate::Range(1, 3)).Where(3, AttrPredicate::Point(1));
  auto est2 = f.router.Answer(r, &dec);
  ASSERT_TRUE(est2.ok());
  EXPECT_EQ(dec.index, f.pair23);
  EXPECT_FALSE(dec.fallback);
}

TEST(QueryRouterTest, FallsBackToWidestWhenNothingCovers) {
  auto& f = RoutedFixture::Get();
  // Constrains one attribute of each pair — no pair is FULLY constrained —
  // plus the independent attribute: nothing covers.
  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(1)).Where(2, AttrPredicate::Point(1));
  RouteDecision dec;
  auto est = f.router.Answer(q, &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_TRUE(dec.fallback);
  EXPECT_EQ(dec.covered_pairs, 0u);
  EXPECT_EQ(dec.index, f.store->widest());

  CountingQuery only4(5);
  only4.Where(4, AttrPredicate::Point(0));
  auto est2 = f.router.Answer(only4, &dec);
  ASSERT_TRUE(est2.ok());
  EXPECT_TRUE(dec.fallback);
}

TEST(QueryRouterTest, PicksLowestVarianceAmongTiedCandidates) {
  auto& f = RoutedFixture::Get();
  // Both pairs fully constrained: both entries tie on coverage 1 and the
  // variance rule decides.
  CountingQuery q(5);
  q.Where(0, AttrPredicate::Point(3))
      .Where(1, AttrPredicate::Point(3))
      .Where(2, AttrPredicate::Point(2))
      .Where(3, AttrPredicate::Point(2));
  RouteDecision dec;
  auto est = f.router.Answer(q, &dec);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(dec.candidates, 2u);
  EXPECT_FALSE(dec.fallback);

  auto a = f.store->summary(f.pair01).Answer(q);
  auto b = f.store->summary(f.pair23).Answer(q);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const double min_var = std::min(a->variance, b->variance);
  EXPECT_EQ(est->variance, min_var);
  EXPECT_EQ(dec.expected_variance, min_var);
}

TEST(QueryRouterTest, RoutedAnswersMatchThePerSummaryReference) {
  auto& f = RoutedFixture::Get();
  // A mixed workload; every routed answer must equal a dedicated reference
  // answerer on the chosen summary to <= 1e-12 relative error.
  std::vector<CountingQuery> workload;
  for (Code v = 0; v < 5; ++v) {
    CountingQuery q(5);
    q.Where(0, AttrPredicate::Point(v % 6)).Where(1, AttrPredicate::Point(v % 6));
    workload.push_back(q);
    CountingQuery r(5);
    r.Where(2, AttrPredicate::Range(0, v % 5)).Where(3, AttrPredicate::Point(v % 5));
    workload.push_back(r);
    CountingQuery s(5);
    s.Where(4, AttrPredicate::Point(v % 4));
    workload.push_back(s);
  }
  for (const auto& q : workload) {
    RouteDecision dec;
    auto routed = f.router.Answer(q, &dec);
    ASSERT_TRUE(routed.ok());
    const EntropySummary& chosen = f.store->summary(dec.index);
    // A fresh QueryAnswerer over the same solved state is the reference.
    QueryAnswerer reference(chosen.registry(), chosen.polynomial(),
                            chosen.state());
    auto ref = reference.Answer(q);
    ASSERT_TRUE(ref.ok());
    const double denom = std::max(1.0, std::abs(ref->expectation));
    EXPECT_LE(std::abs(routed->expectation - ref->expectation) / denom, 1e-12);
    EXPECT_LE(std::abs(routed->variance - ref->variance) /
                  std::max(1.0, ref->variance),
              1e-12);
  }
}

TEST(QueryRouterTest, AnswerAllMatchesSerialAnswers) {
  auto& f = RoutedFixture::Get();
  std::vector<CountingQuery> workload;
  for (Code v = 0; v < 6; ++v) {
    CountingQuery q(5);
    q.Where(0, AttrPredicate::Point(v)).Where(1, AttrPredicate::Range(0, v));
    workload.push_back(q);
    CountingQuery r(5);
    r.Where(3, AttrPredicate::Point(v % 5));
    workload.push_back(r);
  }
  std::vector<RouteDecision> decisions;
  auto batch = f.router.AnswerAll(workload, &decisions);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch->size(), workload.size());
  ASSERT_EQ(decisions.size(), workload.size());
  for (size_t i = 0; i < workload.size(); ++i) {
    RouteDecision dec;
    auto serial = f.router.Answer(workload[i], &dec);
    ASSERT_TRUE(serial.ok());
    EXPECT_EQ((*batch)[i].expectation, serial->expectation);
    EXPECT_EQ((*batch)[i].variance, serial->variance);
    EXPECT_EQ(decisions[i].index, dec.index);
    EXPECT_EQ(decisions[i].fallback, dec.fallback);
  }
}

TEST(QueryRouterTest, RejectsArityMismatch) {
  auto& f = RoutedFixture::Get();
  EXPECT_TRUE(
      f.router.Answer(CountingQuery(3)).status().IsInvalidArgument());
}

}  // namespace
}  // namespace entropydb
