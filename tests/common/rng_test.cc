#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace entropydb {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next()) ? 1 : 0;
  EXPECT_LT(same, 3);
}

TEST(RngTest, UniformRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(10), 10u);
  }
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(13);
  double sum = 0.0, sumsq = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.NextGaussian();
    sum += g;
    sumsq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(ZipfSamplerTest, SkewZeroIsUniform) {
  ZipfSampler zipf(4, 0.0);
  Rng rng(19);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(ZipfSamplerTest, SkewedFavorsLowIndices) {
  ZipfSampler zipf(50, 1.2);
  Rng rng(23);
  std::vector<int> counts(50, 0);
  for (int i = 0; i < 50000; ++i) ++counts[zipf.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[49]);
}

TEST(ZipfSamplerTest, CoversWholeDomain) {
  ZipfSampler zipf(5, 2.0);
  Rng rng(29);
  std::vector<bool> seen(5, false);
  for (int i = 0; i < 50000; ++i) seen[zipf.Sample(rng)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace entropydb
