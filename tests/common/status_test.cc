#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace entropydb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotSupported("x").IsNotSupported());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::NotFound("missing").message(), "missing");
}

TEST(StatusTest, ToStringIncludesCodeName) {
  EXPECT_EQ(Status::InvalidArgument("bad arg").ToString(),
            "InvalidArgument: bad arg");
  EXPECT_EQ(Status::IOError("disk").ToString(), "IOError: disk");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            "ResourceExhausted");
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  RETURN_NOT_OK(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_TRUE(Propagates(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
  EXPECT_EQ(r.ValueOr(3), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.ValueOr(3), 3);
}

TEST(ResultTest, MoveOnlyValues) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  auto owned = std::move(r).ValueOrDie();
  EXPECT_EQ(*owned, 5);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  ASSIGN_OR_RETURN(int h, HalfOf(x));
  ASSIGN_OR_RETURN(int q, HalfOf(h));
  return q;
}

TEST(ResultTest, AssignOrReturnChains) {
  auto ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_TRUE(QuarterOf(6).status().IsInvalidArgument());
  EXPECT_TRUE(QuarterOf(5).status().IsInvalidArgument());
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r(std::string("hello"));
  EXPECT_EQ(r->size(), 5u);
}

}  // namespace
}  // namespace entropydb
