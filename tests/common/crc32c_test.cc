// CRC32C (Castagnoli): known-answer vectors, incremental Extend
// composition, and the LevelDB-style masking round-trip.

#include "common/crc32c.h"

#include <string>

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entropydb {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // The canonical CRC32C check value (RFC 3720 Appendix B / every
  // Castagnoli implementation's self-test).
  EXPECT_EQ(crc32c::Value("123456789"), 0xE3069283u);
  EXPECT_EQ(crc32c::Value(""), 0u);
  // 32 zero bytes — the iSCSI test vector.
  EXPECT_EQ(crc32c::Value(std::string(32, '\0')), 0x8A9136AAu);
  // 32 0xff bytes.
  EXPECT_EQ(crc32c::Value(std::string(32, '\xff')), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendComposes) {
  const std::string data = "hello, checksummed world";
  for (size_t cut = 0; cut <= data.size(); ++cut) {
    const uint32_t whole = crc32c::Value(data);
    const uint32_t split = crc32c::Extend(
        crc32c::Value(data.substr(0, cut)), data.substr(cut));
    EXPECT_EQ(split, whole) << "cut at " << cut;
  }
}

TEST(Crc32cTest, SensitiveToEveryBit) {
  std::string data = "abcdefgh";
  const uint32_t base = crc32c::Value(data);
  for (size_t i = 0; i < data.size() * 8; ++i) {
    std::string flipped = data;
    flipped[i / 8] ^= static_cast<char>(1u << (i % 8));
    EXPECT_NE(crc32c::Value(flipped), base) << "bit " << i;
  }
}

TEST(Crc32cTest, PortablePathMatchesDispatchedPath) {
  // Extend() may dispatch to the SSE4.2 instruction path; the table-driven
  // fallback must agree bit-for-bit on every length (covers the 8-byte
  // main loop, the tail loop, and their boundary).
  Rng rng(631);
  std::string data;
  for (size_t len = 0; len <= 70; ++len) {
    EXPECT_EQ(crc32c::internal::ExtendPortable(0, data), crc32c::Value(data))
        << "len " << len;
    const uint32_t seed = static_cast<uint32_t>(rng.Uniform(1u << 30));
    EXPECT_EQ(crc32c::internal::ExtendPortable(seed, data),
              crc32c::Extend(seed, data))
        << "len " << len;
    data.push_back(static_cast<char>(rng.Uniform(256)));
  }
}

TEST(Crc32cTest, MaskRoundTripsAndDiffers) {
  const uint32_t crc = crc32c::Value("payload");
  EXPECT_NE(crc32c::Mask(crc), crc);
  EXPECT_EQ(crc32c::Unmask(crc32c::Mask(crc)), crc);
  // Masking twice must not be the identity (the point of masking: a CRC
  // of a string containing CRCs stays well-distributed).
  EXPECT_NE(crc32c::Mask(crc32c::Mask(crc)), crc);
}

}  // namespace
}  // namespace entropydb
