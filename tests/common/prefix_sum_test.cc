#include "common/prefix_sum.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entropydb {
namespace {

TEST(PrefixSumTest, SimpleRangeSums) {
  PrefixSum ps({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(ps.Total(), 10.0);
  EXPECT_DOUBLE_EQ(ps.RangeSum(0, 3), 10.0);
  EXPECT_DOUBLE_EQ(ps.RangeSum(1, 2), 5.0);
  EXPECT_DOUBLE_EQ(ps.RangeSum(3, 3), 4.0);
  EXPECT_EQ(ps.size(), 4u);
}

TEST(PrefixSumTest, EmptyArray) {
  PrefixSum ps;
  EXPECT_DOUBLE_EQ(ps.Total(), 0.0);
  EXPECT_EQ(ps.size(), 0u);
}

TEST(PrefixSumTest, RebuildReplacesContents) {
  PrefixSum ps({1.0, 1.0});
  ps.Build({5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(ps.Total(), 15.0);
  EXPECT_EQ(ps.size(), 3u);
}

/// Property: RangeSum agrees with the naive loop on random data and ranges.
TEST(PrefixSumTest, MatchesNaiveOnRandomRanges) {
  Rng rng(31);
  std::vector<double> values(200);
  for (auto& v : values) v = rng.NextDouble() * 10.0 - 5.0;
  PrefixSum ps(values);
  for (int trial = 0; trial < 300; ++trial) {
    size_t lo = rng.Uniform(values.size());
    size_t hi = lo + rng.Uniform(values.size() - lo);
    double naive = 0.0;
    for (size_t i = lo; i <= hi; ++i) naive += values[i];
    EXPECT_NEAR(ps.RangeSum(lo, hi), naive, 1e-9);
  }
}

TEST(DiffArrayTest, SingleRangeAdd) {
  DiffArray da(5);
  da.RangeAdd(1, 3, 2.5);
  auto out = da.Finalize();
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 2.5);
  EXPECT_DOUBLE_EQ(out[2], 2.5);
  EXPECT_DOUBLE_EQ(out[3], 2.5);
  EXPECT_DOUBLE_EQ(out[4], 0.0);
}

TEST(DiffArrayTest, ClearResets) {
  DiffArray da(3);
  da.RangeAdd(0, 2, 1.0);
  da.Clear();
  auto out = da.Finalize();
  for (double v : out) EXPECT_DOUBLE_EQ(v, 0.0);
}

/// Property: accumulated range-adds equal the naive per-slot accumulation.
TEST(DiffArrayTest, MatchesNaiveOnRandomUpdates) {
  Rng rng(37);
  const size_t n = 150;
  DiffArray da(n);
  std::vector<double> naive(n, 0.0);
  for (int trial = 0; trial < 200; ++trial) {
    size_t lo = rng.Uniform(n);
    size_t hi = lo + rng.Uniform(n - lo);
    double delta = rng.NextDouble() * 4.0 - 2.0;
    da.RangeAdd(lo, hi, delta);
    for (size_t i = lo; i <= hi; ++i) naive[i] += delta;
  }
  auto out = da.Finalize();
  for (size_t i = 0; i < n; ++i) EXPECT_NEAR(out[i], naive[i], 1e-9);
}

}  // namespace
}  // namespace entropydb
