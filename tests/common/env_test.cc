// Env: checksummed file round-trips, atomic directory publication, stale
// staging GC, and the FaultInjectionEnv failure modes the crash-safety
// matrix drives.

#include "common/env.h"

#include <filesystem>

#include <gtest/gtest.h>

#include "common/fault_injection_env.h"

namespace entropydb {
namespace {

namespace fs = std::filesystem;

class EnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = (fs::temp_directory_path() /
            ("entropydb_env_test_" +
             std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
             "_" + ::testing::UnitTest::GetInstance()
                       ->current_test_info()
                       ->name()))
               .string();
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (fs::path(dir_) / name).string();
  }

  std::string dir_;
};

TEST_F(EnvTest, WriteReadRoundTrip) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFile(Path("f"), "hello\n").ok());
  std::string got;
  ASSERT_TRUE(env->ReadFile(Path("f"), &got).ok());
  EXPECT_EQ(got, "hello\n");
  EXPECT_TRUE(env->FileExists(Path("f")));
  EXPECT_FALSE(env->FileExists(Path("absent")));
  auto size = env->FileSize(Path("f"));
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, 6u);
}

TEST_F(EnvTest, ReadMissingFileFails) {
  std::string got;
  Status s = Env::Default()->ReadFile(Path("absent"), &got);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
}

TEST_F(EnvTest, ChecksummedRoundTrip) {
  Env* env = Env::Default();
  const std::string payload = "line one\nline two\n";
  ASSERT_TRUE(WriteChecksummedFile(env, Path("f"), payload).ok());
  bool had_footer = false;
  auto got = ReadChecksummedFile(env, Path("f"), true, &had_footer);
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(had_footer);
  EXPECT_EQ(*got, payload);
}

TEST_F(EnvTest, ChecksummedDetectsEveryByteFlip) {
  Env* env = Env::Default();
  ASSERT_TRUE(WriteChecksummedFile(env, Path("f"), "abcdefgh\n").ok());
  std::string raw;
  ASSERT_TRUE(env->ReadFile(Path("f"), &raw).ok());
  for (size_t i = 0; i < raw.size(); ++i) {
    std::string mutated = raw;
    mutated[i] ^= 0x01;
    ASSERT_TRUE(env->WriteFile(Path("m"), mutated).ok());
    auto got = ReadChecksummedFile(env, Path("m"));
    // A flip in the payload or the hex digits is a checksum mismatch; a
    // flip in the footer TAG makes the file look legacy (footer absent),
    // which ReadChecksummedFile reports through had_footer — format
    // version headers are what close that hole (and the corruption fuzz
    // test proves they do).
    if (got.ok()) {
      bool had_footer = true;
      ASSERT_TRUE(
          ReadChecksummedFile(env, Path("m"), true, &had_footer).ok());
      EXPECT_FALSE(had_footer) << "byte " << i;
    } else {
      EXPECT_EQ(got.status().code(), StatusCode::kCorruption) << "byte " << i;
    }
  }
}

TEST_F(EnvTest, LegacyFileWithoutFooterStillReads) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFile(Path("legacy"), "old contents\n").ok());
  bool had_footer = true;
  auto got = ReadChecksummedFile(env, Path("legacy"), true, &had_footer);
  ASSERT_TRUE(got.ok());
  EXPECT_FALSE(had_footer);
  EXPECT_EQ(*got, "old contents\n");
}

TEST_F(EnvTest, PublishDirFreshAndReplace) {
  Env* env = Env::Default();
  const std::string dest = Path("store");
  // Fresh publish.
  std::string tmp = StagingDirFor(dest);
  ASSERT_TRUE(env->CreateDirs(tmp).ok());
  ASSERT_TRUE(env->WriteFile(tmp + "/a", "v1").ok());
  ASSERT_TRUE(env->PublishDir(tmp, dest).ok());
  std::string got;
  ASSERT_TRUE(env->ReadFile(dest + "/a", &got).ok());
  EXPECT_EQ(got, "v1");
  EXPECT_FALSE(env->FileExists(tmp));
  // Replace an existing directory: old contents fully gone, new visible.
  tmp = StagingDirFor(dest);
  ASSERT_TRUE(env->CreateDirs(tmp).ok());
  ASSERT_TRUE(env->WriteFile(tmp + "/b", "v2").ok());
  ASSERT_TRUE(env->PublishDir(tmp, dest).ok());
  EXPECT_FALSE(env->FileExists(dest + "/a"));
  ASSERT_TRUE(env->ReadFile(dest + "/b", &got).ok());
  EXPECT_EQ(got, "v2");
  EXPECT_FALSE(env->FileExists(tmp));
}

TEST_F(EnvTest, StagingNamesAreUniqueAndGCd) {
  Env* env = Env::Default();
  const std::string dest = Path("store");
  const std::string s1 = StagingDirFor(dest);
  const std::string s2 = StagingDirFor(dest);
  EXPECT_NE(s1, s2);
  EXPECT_EQ(s1.find(dest + ".tmp-"), 0u);
  // Strand two staging dirs (a crashed save), plus an unrelated sibling
  // that must survive the GC.
  ASSERT_TRUE(env->CreateDirs(s1).ok());
  ASSERT_TRUE(env->CreateDirs(s2).ok());
  ASSERT_TRUE(env->CreateDirs(Path("store_other")).ok());
  RemoveStaleStagingDirs(env, dest);
  EXPECT_FALSE(env->FileExists(s1));
  EXPECT_FALSE(env->FileExists(s2));
  EXPECT_TRUE(env->FileExists(Path("store_other")));
}

TEST_F(EnvTest, CloseReportsDelayedWriteErrors) {
  // Writing into a directory that does not exist fails at open already —
  // the cheap proxy for "errors are not swallowed on any exit path".
  auto file = Env::Default()->NewWritableFile(Path("no/such/dir/f"), true);
  EXPECT_FALSE(file.ok());
  EXPECT_EQ(file.status().code(), StatusCode::kIOError);
}

// ---------------------------------------------------------------------
// FaultInjectionEnv

TEST_F(EnvTest, FaultFailAppend) {
  FaultInjectionEnv fenv;
  fenv.FailAppendAt(2);
  // First write (one append) succeeds, second fails without writing.
  ASSERT_TRUE(fenv.WriteFile(Path("a"), "one").ok());
  Status s = fenv.WriteFile(Path("b"), "two");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_FALSE(fs::exists(Path("b")) && fs::file_size(Path("b")) > 0);
}

TEST_F(EnvTest, FaultTornAppendWritesHalf) {
  FaultInjectionEnv fenv;
  fenv.TearAppendAt(1);
  Status s = fenv.WriteFile(Path("t"), "0123456789", /*sync=*/false);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  std::string got;
  ASSERT_TRUE(Env::Default()->ReadFile(Path("t"), &got).ok());
  EXPECT_EQ(got, "01234");  // first half only
}

TEST_F(EnvTest, LoseUnsyncedDataDropsUnsyncedTail) {
  FaultInjectionEnv fenv;
  // File A: written and synced — survives the crash.
  ASSERT_TRUE(fenv.WriteFile(Path("a"), "synced", /*sync=*/true).ok());
  // File B: written, never synced — gone after the crash.
  ASSERT_TRUE(fenv.WriteFile(Path("b"), "unsynced", /*sync=*/false).ok());
  // File C: partially synced — truncated back to the synced prefix.
  {
    auto file = fenv.NewWritableFile(Path("c"), true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE((*file)->Append("durable").ok());
    ASSERT_TRUE((*file)->Sync().ok());
    ASSERT_TRUE((*file)->Append("-tail").ok());
    ASSERT_TRUE((*file)->Close().ok());
  }
  ASSERT_TRUE(fenv.LoseUnsyncedData().ok());
  std::string got;
  ASSERT_TRUE(fenv.ReadFile(Path("a"), &got).ok());
  EXPECT_EQ(got, "synced");
  EXPECT_FALSE(fenv.FileExists(Path("b")));
  ASSERT_TRUE(fenv.ReadFile(Path("c"), &got).ok());
  EXPECT_EQ(got, "durable");
}

TEST_F(EnvTest, CrashAfterFailsEveryLaterMutation) {
  FaultInjectionEnv fenv;
  ASSERT_TRUE(fenv.WriteFile(Path("a"), "x").ok());
  const uint64_t clean_ops = fenv.ops();
  ASSERT_GT(clean_ops, 0u);
  fenv.ResetFaults();
  fenv.CrashAfter(0);
  Status s = fenv.WriteFile(Path("b"), "y");
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  // Reads still pass through at the crash point.
  std::string got;
  EXPECT_TRUE(fenv.ReadFile(Path("a"), &got).ok());
}

TEST_F(EnvTest, LinkFileSharesBytesButSurvivesSourceRemoval) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFile(Path("src"), "immutable bytes").ok());
  ASSERT_TRUE(env->LinkFile(Path("src"), Path("dst")).ok());
  std::string got;
  ASSERT_TRUE(env->ReadFile(Path("dst"), &got).ok());
  EXPECT_EQ(got, "immutable bytes");
  // A hard link (or copy, on filesystems without links) owns its name:
  // removing the source must not invalidate the destination. This is what
  // lets the version GC delete v(n)'s directory while v(n+1) still links
  // the same shard files.
  ASSERT_TRUE(env->RemoveAll(Path("src")).ok());
  got.clear();
  ASSERT_TRUE(env->ReadFile(Path("dst"), &got).ok());
  EXPECT_EQ(got, "immutable bytes");
}

TEST_F(EnvTest, LinkFileToExistingDestinationFails) {
  Env* env = Env::Default();
  ASSERT_TRUE(env->WriteFile(Path("src"), "a").ok());
  ASSERT_TRUE(env->WriteFile(Path("dst"), "b").ok());
  EXPECT_FALSE(env->LinkFile(Path("src"), Path("dst")).ok());
}

TEST_F(EnvTest, FaultInjectionEnvLinkFileInjectsFaults) {
  // The base-class copy fallback routes LinkFile through ReadFile +
  // WriteFile, so injected faults apply to cloning too.
  FaultInjectionEnv fenv;
  ASSERT_TRUE(fenv.WriteFile(Path("src"), "x").ok());
  ASSERT_TRUE(fenv.LinkFile(Path("src"), Path("copy")).ok());
  std::string got;
  ASSERT_TRUE(fenv.ReadFile(Path("copy"), &got).ok());
  EXPECT_EQ(got, "x");
  fenv.CrashAfter(0);
  EXPECT_FALSE(fenv.LinkFile(Path("src"), Path("copy2")).ok());
}

TEST_F(EnvTest, SweepStaleEntriesAppliesTheOneStalenessRule) {
  // Stale iff the name starts with a swept prefix AND is not in keep —
  // the single rule shared by shard GC, version GC, and staging GC.
  Env* env = Env::Default();
  ASSERT_TRUE(env->CreateDirs(Path("shard_0")).ok());
  ASSERT_TRUE(env->WriteFile(Path("shard_0/data"), "d").ok());
  ASSERT_TRUE(env->CreateDirs(Path("shard_1")).ok());
  ASSERT_TRUE(env->WriteFile(Path("MANIFEST.tmp-abc"), "torn").ok());
  ASSERT_TRUE(env->WriteFile(Path("MANIFEST"), "live").ok());
  ASSERT_TRUE(env->WriteFile(Path("unrelated"), "keep me").ok());

  const size_t removed = SweepStaleEntries(
      env, dir_, {"shard_", "MANIFEST.tmp"}, /*keep=*/{"shard_0"});
  EXPECT_EQ(removed, 2u);  // shard_1 and MANIFEST.tmp-abc
  EXPECT_TRUE(fs::exists(Path("shard_0/data")));
  EXPECT_FALSE(fs::exists(Path("shard_1")));
  EXPECT_FALSE(fs::exists(Path("MANIFEST.tmp-abc")));
  // MANIFEST does not match the "MANIFEST.tmp" prefix; non-matching names
  // are never touched.
  EXPECT_TRUE(fs::exists(Path("MANIFEST")));
  EXPECT_TRUE(fs::exists(Path("unrelated")));
}

TEST_F(EnvTest, SweepStaleEntriesOnMissingDirIsZero) {
  EXPECT_EQ(SweepStaleEntries(Env::Default(), Path("nope"), {"x"}, {}), 0u);
}

TEST_F(EnvTest, PublishDirRemapsTrackedFiles) {
  FaultInjectionEnv fenv;
  const std::string dest = Path("store");
  const std::string tmp = StagingDirFor(dest);
  ASSERT_TRUE(fenv.CreateDirs(tmp).ok());
  ASSERT_TRUE(fenv.WriteFile(tmp + "/f", "synced contents").ok());
  ASSERT_TRUE(fenv.SyncDir(tmp).ok());
  ASSERT_TRUE(fenv.PublishDir(tmp, dest).ok());
  // The tracked (synced) state followed the rename: losing un-synced data
  // must not disturb the published file.
  ASSERT_TRUE(fenv.LoseUnsyncedData().ok());
  std::string got;
  ASSERT_TRUE(fenv.ReadFile(dest + "/f", &got).ok());
  EXPECT_EQ(got, "synced contents");
}

}  // namespace
}  // namespace entropydb
