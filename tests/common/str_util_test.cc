#include "common/str_util.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(StrUtilTest, SplitBasic) {
  auto parts = SplitString("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StrUtilTest, SplitPreservesEmptyFields) {
  auto parts = SplitString(",x,,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "");
  EXPECT_EQ(parts[1], "x");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StrUtilTest, SplitSingleField) {
  auto parts = SplitString("abc", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "abc");
}

TEST(StrUtilTest, JoinRoundTrips) {
  std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(JoinStrings(parts, ","), "x,y,z");
  EXPECT_EQ(JoinStrings({}, ","), "");
  EXPECT_EQ(JoinStrings({"only"}, ","), "only");
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi  "), "hi");
  EXPECT_EQ(StripWhitespace("\t\nhi"), "hi");
  EXPECT_EQ(StripWhitespace("hi"), "hi");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace(""), "");
}

TEST(StrUtilTest, ParseInt64Valid) {
  EXPECT_EQ(*ParseInt64("42"), 42);
  EXPECT_EQ(*ParseInt64("-7"), -7);
  EXPECT_EQ(*ParseInt64("  13  "), 13);
  EXPECT_EQ(*ParseInt64("0"), 0);
}

TEST(StrUtilTest, ParseInt64Invalid) {
  EXPECT_TRUE(ParseInt64("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("12x").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("x12").status().IsInvalidArgument());
  EXPECT_TRUE(ParseInt64("1.5").status().IsInvalidArgument());
  EXPECT_TRUE(
      ParseInt64("99999999999999999999999").status().IsOutOfRange());
}

TEST(StrUtilTest, ParseDoubleValid) {
  EXPECT_DOUBLE_EQ(*ParseDouble("3.25"), 3.25);
  EXPECT_DOUBLE_EQ(*ParseDouble("-1e3"), -1000.0);
  EXPECT_DOUBLE_EQ(*ParseDouble(" 0.5 "), 0.5);
}

TEST(StrUtilTest, ParseDoubleInvalid) {
  EXPECT_TRUE(ParseDouble("").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("1.2.3").status().IsInvalidArgument());
  EXPECT_TRUE(ParseDouble("abc").status().IsInvalidArgument());
}

TEST(StrUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("entropy", "ent"));
  EXPECT_TRUE(StartsWith("x", ""));
  EXPECT_FALSE(StartsWith("ent", "entropy"));
  EXPECT_FALSE(StartsWith("entropy", "ENT"));
}

}  // namespace
}  // namespace entropydb
