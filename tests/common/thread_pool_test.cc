#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace entropydb {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h = 0;
  ParallelFor(hits.size(), 0, [&](size_t i) { hits[i]++; });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForRunsInlineBelowThreshold) {
  // With min_parallel above n the loop must run on the calling thread,
  // in order.
  std::vector<size_t> order;
  ParallelFor(8, 100, [&](size_t i) { order.push_back(i); });
  std::vector<size_t> want(8);
  std::iota(want.begin(), want.end(), 0);
  EXPECT_EQ(order, want);
}

TEST(ThreadPoolTest, DisjointWritesAreDeterministic) {
  // Each iteration owns one slot; the result must match the serial loop
  // regardless of how the pool schedules it.
  std::vector<double> out(1000, 0.0);
  ParallelFor(out.size(), 0, [&](size_t i) {
    out[i] = static_cast<double>(i) * 0.5;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<double>(i) * 0.5);
  }
}

TEST(ThreadPoolTest, ZeroAndOneIterationEdgeCases) {
  int calls = 0;
  ParallelFor(0, 0, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 0);
  ParallelFor(1, 0, [&](size_t) { calls++; });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SubmitRunsTasks) {
  ThreadPool pool(2);
  std::atomic<int> done{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] { done++; });
  }
  // Destructor drains the queue before joining.
  // (Scope exit happens here.)
  while (done.load() < 16) std::this_thread::yield();
  EXPECT_EQ(done.load(), 16);
}

}  // namespace
}  // namespace entropydb
