#ifndef ENTROPYDB_TESTS_TEST_UTIL_H_
#define ENTROPYDB_TESTS_TEST_UTIL_H_

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "maxent/variable_registry.h"
#include "query/exact_evaluator.h"
#include "stats/statistic.h"
#include "storage/table_builder.h"

namespace entropydb {
namespace testutil {

/// Builds an encoded table with integer-bucket domains of the given sizes
/// and the given rows of codes. Attribute names are A0, A1, ...
inline std::shared_ptr<Table> MakeTable(
    const std::vector<uint32_t>& domain_sizes,
    const std::vector<std::vector<Code>>& rows) {
  std::vector<AttributeSpec> specs;
  for (size_t a = 0; a < domain_sizes.size(); ++a) {
    specs.push_back(AttributeSpec{"A" + std::to_string(a),
                                  AttributeType::kInteger, domain_sizes[a]});
  }
  TableBuilder b(Schema{std::move(specs)});
  for (size_t a = 0; a < domain_sizes.size(); ++a) {
    b.SetDomain(static_cast<AttrId>(a),
                Domain::Binned(0, domain_sizes[a], domain_sizes[a]));
  }
  for (const auto& row : rows) b.AppendEncodedRow(row);
  auto t = b.Finish();
  return t.ok() ? *t : nullptr;
}

/// Builds a random table with `n` rows over the given domains; mildly
/// correlated (attribute 0 biases attribute 1) so 2-D statistics matter.
inline std::shared_ptr<Table> RandomTable(
    const std::vector<uint32_t>& domain_sizes, size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<Code>> rows(n,
                                      std::vector<Code>(domain_sizes.size()));
  for (auto& row : rows) {
    for (size_t a = 0; a < domain_sizes.size(); ++a) {
      if (a == 1 && rng.NextBernoulli(0.5)) {
        row[a] = static_cast<Code>((row[0] * 2 + rng.Uniform(2)) %
                                   domain_sizes[a]);
      } else {
        row[a] = static_cast<Code>(rng.Uniform(domain_sizes[a]));
      }
    }
  }
  return MakeTable(domain_sizes, rows);
}

/// Exact 1-D histograms of a table, as registry targets.
inline std::vector<std::vector<double>> OneDTargets(const Table& table) {
  ExactEvaluator eval(table);
  std::vector<std::vector<double>> targets(table.num_attributes());
  for (AttrId a = 0; a < table.num_attributes(); ++a) {
    auto h = eval.Histogram1D(a);
    targets[a].assign(h.begin(), h.end());
  }
  return targets;
}

/// Random axis-aligned partition of the (a, b) grid into disjoint
/// rectangles (random recursive splits), returning `count` of its cells as
/// statistics with exact counts from the table. Guarantees the paper's
/// same-attribute-set disjointness invariant by construction.
inline std::vector<MultiDimStatistic> RandomDisjointStats(
    const Table& table, AttrId a, AttrId b, size_t count, uint64_t seed) {
  Rng rng(seed);
  struct R {
    Interval ia, ib;
  };
  std::vector<R> leaves{
      R{{0, table.domain(a).size() - 1}, {0, table.domain(b).size() - 1}}};
  while (leaves.size() < count * 2) {
    size_t pick = rng.Uniform(leaves.size());
    R r = leaves[pick];
    bool split_a = rng.NextBernoulli(0.5);
    if (split_a && r.ia.width() <= 1) split_a = false;
    if (!split_a && r.ib.width() <= 1) split_a = true;
    Interval& iv = split_a ? r.ia : r.ib;
    if (iv.width() <= 1) break;  // all singletons
    Code cut = iv.lo + static_cast<Code>(rng.Uniform(iv.width() - 1));
    R left = r, right = r;
    if (split_a) {
      left.ia = {r.ia.lo, cut};
      right.ia = {static_cast<Code>(cut + 1), r.ia.hi};
    } else {
      left.ib = {r.ib.lo, cut};
      right.ib = {static_cast<Code>(cut + 1), r.ib.hi};
    }
    leaves[pick] = left;
    leaves.push_back(right);
  }
  ExactEvaluator eval(table);
  std::vector<MultiDimStatistic> stats;
  for (size_t i = 0; i < leaves.size() && stats.size() < count; ++i) {
    const R& r = leaves[i];
    CountingQuery q(table.num_attributes());
    q.Where(a, AttrPredicate::Range(r.ia.lo, r.ia.hi));
    q.Where(b, AttrPredicate::Range(r.ib.lo, r.ib.hi));
    stats.push_back(Make2DStatistic(
        a, r.ia, b, r.ib, static_cast<double>(eval.Count(q))));
  }
  return stats;
}

/// Registry over a table with exact 1-D targets and the given stats.
inline VariableRegistry MakeRegistry(const Table& table,
                                     std::vector<MultiDimStatistic> mds) {
  std::vector<uint32_t> sizes;
  for (AttrId a = 0; a < table.num_attributes(); ++a) {
    sizes.push_back(table.domain(a).size());
  }
  auto reg = VariableRegistry::Create(sizes, OneDTargets(table),
                                      std::move(mds),
                                      static_cast<double>(table.num_rows()));
  return *reg;
}

}  // namespace testutil
}  // namespace entropydb

#endif  // ENTROPYDB_TESTS_TEST_UTIL_H_
