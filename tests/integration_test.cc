// End-to-end tests exercising the full EntropyDB pipeline the way the
// paper's evaluation does: generate data, choose statistics, build the
// summary, answer workload queries, and compare against sampling.

#include <gtest/gtest.h>

#include "entropydb.h"

namespace entropydb {
namespace {

class FlightsPipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    FlightsConfig cfg;
    cfg.num_rows = 60000;
    cfg.seed = 17;
    auto t = FlightsGenerator::Generate(cfg);
    ASSERT_TRUE(t.ok());
    table_ = *t;
  }
  static std::shared_ptr<Table> table_;
};

std::shared_ptr<Table> FlightsPipelineTest::table_;

TEST_F(FlightsPipelineTest, SummaryBeatsNoStatsOnCorrelatedPair) {
  const Table& t = *table_;
  AttrId time_a = *t.schema().IndexOf("fl_time");
  AttrId dist_a = *t.schema().IndexOf("distance");

  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto stats = sel.Select(t, time_a, dist_a, 400);

  auto no2d = EntropySummary::Build(t, {});
  auto with2d = EntropySummary::Build(t, stats);
  ASSERT_TRUE(no2d.ok());
  ASSERT_TRUE(with2d.ok());

  WorkloadConfig wcfg;
  wcfg.num_heavy = 40;
  wcfg.num_light = 40;
  wcfg.num_nonexistent = 40;
  auto w = SelectWorkload(t, {time_a, dist_a}, wcfg);
  ASSERT_TRUE(w.ok());

  auto avg_err = [&](const EntropySummary& s,
                     const std::vector<QueryPoint>& points) {
    std::vector<double> truths, ests;
    for (const auto& p : points) {
      auto q = PointQuery(t.num_attributes(), w->attrs, p.key);
      auto est = s.Answer(q);
      EXPECT_TRUE(est.ok());
      truths.push_back(p.true_count);
      ests.push_back(est->RoundedCount());
    }
    return AverageError(truths, ests);
  };

  double err_no2d = avg_err(**no2d, w->heavy);
  double err_with2d = avg_err(**with2d, w->heavy);
  // 2-D statistics over exactly the queried pair must help substantially.
  EXPECT_LT(err_with2d, err_no2d * 0.8);
}

TEST_F(FlightsPipelineTest, SummaryCompetitiveWithUniformSampleOnLight) {
  const Table& t = *table_;
  AttrId origin = *t.schema().IndexOf("origin");
  AttrId dest = *t.schema().IndexOf("dest");

  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto stats = sel.Select(t, origin, dest, 400);
  auto summary = EntropySummary::Build(t, stats);
  ASSERT_TRUE(summary.ok());
  auto uni = UniformSampler::Create(t, 0.01, 3);
  ASSERT_TRUE(uni.ok());
  SampleEstimator uni_est(*uni);

  WorkloadConfig wcfg;
  wcfg.num_heavy = 30;
  wcfg.num_light = 30;
  wcfg.num_nonexistent = 30;
  auto w = SelectWorkload(t, {origin, dest}, wcfg);
  ASSERT_TRUE(w.ok());

  std::vector<double> truths, ent_ests, uni_ests;
  for (const auto& p : w->light) {
    auto q = PointQuery(t.num_attributes(), w->attrs, p.key);
    auto e = (*summary)->Answer(q);
    ASSERT_TRUE(e.ok());
    truths.push_back(p.true_count);
    ent_ests.push_back(e->RoundedCount());
    uni_ests.push_back(uni_est.Count(q).expectation);
  }
  // The paper's core claim (Fig 5 bottom): on light hitters EntropyDB beats
  // uniform sampling, which misses most rare groups entirely.
  EXPECT_LT(AverageError(truths, ent_ests),
            AverageError(truths, uni_ests));
}

TEST_F(FlightsPipelineTest, FMeasureBeatsUniformSampling) {
  const Table& t = *table_;
  AttrId origin = *t.schema().IndexOf("origin");
  AttrId dest = *t.schema().IndexOf("dest");
  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto summary = EntropySummary::Build(t, sel.Select(t, origin, dest, 400));
  ASSERT_TRUE(summary.ok());
  auto uni = UniformSampler::Create(t, 0.01, 5);
  ASSERT_TRUE(uni.ok());
  SampleEstimator uni_est(*uni);

  WorkloadConfig wcfg;
  wcfg.num_heavy = 0;
  wcfg.num_light = 50;
  wcfg.num_nonexistent = 100;
  auto w = SelectWorkload(t, {origin, dest}, wcfg);
  ASSERT_TRUE(w.ok());

  auto collect = [&](auto answer) {
    std::pair<std::vector<double>, std::vector<double>> out;
    for (const auto& p : w->light) {
      out.first.push_back(answer(PointQuery(t.num_attributes(), w->attrs,
                                            p.key)));
    }
    for (const auto& p : w->nonexistent) {
      out.second.push_back(answer(PointQuery(t.num_attributes(), w->attrs,
                                             p.key)));
    }
    return out;
  };
  auto [ent_l, ent_n] = collect([&](const CountingQuery& q) {
    auto e = (*summary)->Answer(q);
    return e.ok() ? e->expectation : 0.0;
  });
  auto [uni_l, uni_n] = collect(
      [&](const CountingQuery& q) { return uni_est.Count(q).expectation; });

  auto ent_f = ComputeFMeasure(ent_l, ent_n);
  auto uni_f = ComputeFMeasure(uni_l, uni_n);
  EXPECT_GT(ent_f.f, uni_f.f);
}

TEST(ParticlesPipelineTest, EndToEnd) {
  ParticlesConfig cfg;
  cfg.rows_per_snapshot = 20000;
  cfg.num_snapshots = 2;
  cfg.seed = 23;
  auto t = ParticlesGenerator::Generate(cfg);
  ASSERT_TRUE(t.ok());
  const Table& table = **t;

  AttrId den = *table.schema().IndexOf("density");
  AttrId grp = *table.schema().IndexOf("grp");
  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto summary = EntropySummary::Build(table, sel.Select(table, den, grp, 60));
  ASSERT_TRUE(summary.ok());
  EXPECT_LT((*summary)->solver_report().final_error, 1e-3);

  ExactEvaluator exact(table);
  // Clustered high-density region: model should estimate within 25%.
  auto q = QueryBuilder(table)
               .WhereCode("grp", 1)
               .WhereCodeRange("density", 30, 57)
               .Build();
  ASSERT_TRUE(q.ok());
  auto est = (*summary)->Answer(*q);
  ASSERT_TRUE(est.ok());
  double truth = static_cast<double>(exact.Count(*q));
  EXPECT_NEAR(est->expectation, truth, 0.25 * truth + 10.0);
}

TEST(SerializationPipelineTest, OfflineBuildOnlineQuery) {
  // The deployment flow from the paper's Sec 5: solve offline, persist,
  // answer online without the base data.
  FlightsConfig cfg;
  cfg.num_rows = 20000;
  cfg.seed = 29;
  auto t = FlightsGenerator::Generate(cfg);
  ASSERT_TRUE(t.ok());
  const Table& table = **t;
  AttrId time_a = *table.schema().IndexOf("fl_time");
  AttrId dist_a = *table.schema().IndexOf("distance");
  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto built =
      EntropySummary::Build(table, sel.Select(table, time_a, dist_a, 150));
  ASSERT_TRUE(built.ok());

  std::string path = ::testing::TempDir() + "pipeline_summary.edb";
  ASSERT_TRUE((*built)->Save(path).ok());
  auto loaded = EntropySummary::Load(path);
  ASSERT_TRUE(loaded.ok());
  std::remove(path.c_str());

  // Summary file is small relative to the data (the paper's summaries are
  // orders of magnitude below the table; we check a loose bound).
  EXPECT_LT((*loaded)->polynomial().CompressedSize(),
            table.num_rows());

  auto q = QueryBuilder(table).WhereBetween("distance", 300, 900).Build();
  ASSERT_TRUE(q.ok());
  auto e1 = (*built)->Answer(*q);
  auto e2 = (*loaded)->Answer(*q);
  ASSERT_TRUE(e1.ok());
  ASSERT_TRUE(e2.ok());
  EXPECT_NEAR(e1->expectation, e2->expectation, 1e-9);
}

TEST(ParsedQueryPipelineTest, RawValueQueriesFromSummaryFileAlone) {
  // The CLI flow: build from a table, persist, reload, and answer queries
  // written against raw values — resolved through the serialized domains.
  FlightsConfig cfg;
  cfg.num_rows = 30000;
  cfg.seed = 31;
  auto t = FlightsGenerator::Generate(cfg);
  ASSERT_TRUE(t.ok());
  const Table& table = **t;
  AttrId origin_a = *table.schema().IndexOf("origin");
  AttrId dist_a = *table.schema().IndexOf("distance");
  StatisticSelector sel(SelectionHeuristic::kComposite);
  // Statistics over (origin, distance) so the queried correlation is
  // covered.
  auto built =
      EntropySummary::Build(table, sel.Select(table, origin_a, dist_a, 300));
  ASSERT_TRUE(built.ok());
  ASSERT_TRUE((*built)->has_domains());

  std::string path = ::testing::TempDir() + "parsed_pipeline.edb";
  ASSERT_TRUE((*built)->Save(path).ok());
  auto loaded = EntropySummary::Load(path);
  std::remove(path.c_str());
  ASSERT_TRUE(loaded.ok());
  ASSERT_TRUE((*loaded)->has_domains());
  for (AttrId a = 0; a < table.num_attributes(); ++a) {
    EXPECT_TRUE((*loaded)->domains()[a] == table.domain(a));
  }

  auto parsed = ParseQuery(
      "COUNT(*) WHERE origin = S2 AND distance BETWEEN 400 AND 900",
      (*loaded)->attr_names(), (*loaded)->domains());
  ASSERT_TRUE(parsed.ok());
  auto est = (*loaded)->Answer(parsed->where);
  ASSERT_TRUE(est.ok());

  // Same predicate resolved against the live table must agree exactly.
  auto q = QueryBuilder(table)
               .WhereEquals("origin", Value(std::string("S2")))
               .WhereBetween("distance", 400, 900)
               .Build();
  ASSERT_TRUE(q.ok());
  auto direct = (*built)->Answer(*q);
  ASSERT_TRUE(direct.ok());
  EXPECT_NEAR(est->expectation, direct->expectation, 1e-9);

  // And the estimate tracks the exact count on this well-covered region.
  ExactEvaluator exact(table);
  double truth = static_cast<double>(exact.Count(*q));
  EXPECT_NEAR(est->expectation, truth, 0.2 * truth + 20.0);
}

TEST(ParsedQueryPipelineTest, SumAvgThroughParser) {
  FlightsConfig cfg;
  cfg.num_rows = 20000;
  cfg.seed = 37;
  auto t = FlightsGenerator::Generate(cfg);
  ASSERT_TRUE(t.ok());
  const Table& table = **t;
  auto summary = EntropySummary::Build(table, {});
  ASSERT_TRUE(summary.ok());

  auto parsed = ParseQuery("AVG(distance) WHERE origin = S0",
                           (*summary)->attr_names(), (*summary)->domains());
  ASSERT_TRUE(parsed.ok());
  ASSERT_EQ(parsed->aggregate, ParsedQuery::Aggregate::kAvg);

  const Domain& dom = (*summary)->domains()[parsed->agg_attr];
  std::vector<double> weights(dom.size());
  for (Code v = 0; v < dom.size(); ++v) {
    weights[v] = dom.RepresentativeFor(v).as_double();
  }
  auto avg = (*summary)->Answer(
      AggregateQuery::Avg(parsed->agg_attr, weights, parsed->where));
  ASSERT_TRUE(avg.ok());

  // Compare against the exact average distance (bucket-midpoint resolution
  // bounds the achievable accuracy).
  ExactEvaluator exact(table);
  AttrId origin = *table.schema().IndexOf("origin");
  AttrId dist = *table.schema().IndexOf("distance");
  double total = 0.0, count = 0.0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    if (table.at(r, origin) != 0) continue;
    total += weights[table.at(r, dist)];
    count += 1.0;
  }
  ASSERT_GT(count, 0.0);
  // No 2-D stats: the model sees origin and distance as independent, so we
  // only check the estimate is a sane distance, not that it matches the
  // conditional truth.
  EXPECT_GT(avg->estimate.expectation, 100.0);
  EXPECT_LT(avg->estimate.expectation, 2900.0);
  // With the unconditional query the answer must match the global mean.
  auto global = (*summary)->Answer(AggregateQuery::Avg(
      parsed->agg_attr, weights, CountingQuery(table.num_attributes())));
  ASSERT_TRUE(global.ok());
  double global_truth = 0.0;
  for (size_t r = 0; r < table.num_rows(); ++r) {
    global_truth += weights[table.at(r, dist)];
  }
  global_truth /= static_cast<double>(table.num_rows());
  EXPECT_NEAR(global->estimate.expectation, global_truth, 1.0);
}

}  // namespace
}  // namespace entropydb
