#include "stats/selector.h"

#include <gtest/gtest.h>

#include "../test_util.h"

namespace entropydb {
namespace {

/// 3x3 grid with known counts:
///   9 0 1
///   0 5 0
///   2 0 7
std::shared_ptr<Table> GridTable() {
  std::vector<std::vector<Code>> rows;
  auto add = [&](Code a, Code b, int count) {
    for (int i = 0; i < count; ++i) rows.push_back({a, b});
  };
  add(0, 0, 9);
  add(0, 2, 1);
  add(1, 1, 5);
  add(2, 0, 2);
  add(2, 2, 7);
  return testutil::MakeTable({3, 3}, rows);
}

TEST(SelectorTest, LargePicksHeaviestCells) {
  auto table = GridTable();
  StatisticSelector sel(SelectionHeuristic::kLargeSingleCell);
  auto stats = sel.Select(*table, 0, 1, 3);
  ASSERT_EQ(stats.size(), 3u);
  // Heaviest first: (0,0)=9, (2,2)=7, (1,1)=5.
  EXPECT_DOUBLE_EQ(stats[0].target, 9.0);
  EXPECT_DOUBLE_EQ(stats[1].target, 7.0);
  EXPECT_DOUBLE_EQ(stats[2].target, 5.0);
  for (const auto& s : stats) {
    EXPECT_EQ(s.ranges[0].width(), 1u);  // point statistics
    EXPECT_EQ(s.ranges[1].width(), 1u);
  }
}

TEST(SelectorTest, ZeroPicksEmptyCellsFirst) {
  auto table = GridTable();
  StatisticSelector sel(SelectionHeuristic::kZeroSingleCell);
  auto stats = sel.Select(*table, 0, 1, 4);
  ASSERT_EQ(stats.size(), 4u);
  // 4 zero cells exist: (0,1), (1,0), (1,2), (2,1); all chosen, all zero.
  for (const auto& s : stats) EXPECT_DOUBLE_EQ(s.target, 0.0);
}

TEST(SelectorTest, ZeroTopsUpWithHeavyCells) {
  auto table = GridTable();
  StatisticSelector sel(SelectionHeuristic::kZeroSingleCell);
  auto stats = sel.Select(*table, 0, 1, 6);
  ASSERT_EQ(stats.size(), 6u);
  size_t zeros = 0;
  double max_nonzero = 0;
  for (const auto& s : stats) {
    if (s.target == 0.0) {
      ++zeros;
    } else {
      max_nonzero = std::max(max_nonzero, s.target);
    }
  }
  EXPECT_EQ(zeros, 4u);       // all four zero cells
  EXPECT_EQ(max_nonzero, 9);  // then the heaviest
}

TEST(SelectorTest, CompositePartitionsWholeGrid) {
  auto table = GridTable();
  StatisticSelector sel(SelectionHeuristic::kComposite);
  auto stats = sel.Select(*table, 0, 1, 4);
  ASSERT_LE(stats.size(), 4u);
  double total = 0;
  for (const auto& s : stats) total += s.target;
  EXPECT_DOUBLE_EQ(total, 24.0);  // counts sum to n: disjoint exact cover
}

TEST(SelectorTest, SameAttrPairStatisticsAreDisjoint) {
  auto table = testutil::RandomTable({8, 9}, 500, 77);
  for (auto h :
       {SelectionHeuristic::kLargeSingleCell,
        SelectionHeuristic::kZeroSingleCell, SelectionHeuristic::kComposite}) {
    StatisticSelector sel(h);
    auto stats = sel.Select(*table, 0, 1, 12);
    for (size_t i = 0; i < stats.size(); ++i) {
      for (size_t j = i + 1; j < stats.size(); ++j) {
        bool overlap_a =
            !stats[i].ranges[0].Intersect(stats[j].ranges[0]).empty();
        bool overlap_b =
            !stats[i].ranges[1].Intersect(stats[j].ranges[1]).empty();
        EXPECT_FALSE(overlap_a && overlap_b)
            << SelectionHeuristicName(h) << " produced overlapping stats";
      }
    }
  }
}

TEST(SelectorTest, TargetsMatchExactCounts) {
  auto table = testutil::RandomTable({6, 7}, 300, 78);
  ExactEvaluator eval(*table);
  StatisticSelector sel(SelectionHeuristic::kComposite);
  for (const auto& s : sel.Select(*table, 0, 1, 8)) {
    CountingQuery q(table->num_attributes());
    q.Where(0, AttrPredicate::Range(s.ranges[0].lo, s.ranges[0].hi));
    q.Where(1, AttrPredicate::Range(s.ranges[1].lo, s.ranges[1].hi));
    EXPECT_DOUBLE_EQ(s.target, static_cast<double>(eval.Count(q)));
  }
}

TEST(SelectorTest, ZeroBudgetGivesNothing) {
  auto table = GridTable();
  StatisticSelector sel(SelectionHeuristic::kComposite);
  EXPECT_TRUE(sel.Select(*table, 0, 1, 0).empty());
}

TEST(SelectorTest, HeuristicNames) {
  EXPECT_STREQ(SelectionHeuristicName(SelectionHeuristic::kLargeSingleCell),
               "LARGE");
  EXPECT_STREQ(SelectionHeuristicName(SelectionHeuristic::kZeroSingleCell),
               "ZERO");
  EXPECT_STREQ(SelectionHeuristicName(SelectionHeuristic::kComposite),
               "COMPOSITE");
}

}  // namespace
}  // namespace entropydb
