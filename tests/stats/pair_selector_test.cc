#include "stats/pair_selector.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "common/rng.h"

namespace entropydb {
namespace {

/// Four attributes where (0,1) is strongly correlated, (2,3) moderately,
/// and everything else independent.
std::shared_ptr<Table> CorrelatedTable() {
  Rng rng(91);
  std::vector<std::vector<Code>> rows;
  for (int i = 0; i < 3000; ++i) {
    Code a = static_cast<Code>(rng.Uniform(6));
    Code b = rng.NextBernoulli(0.95) ? a : static_cast<Code>(rng.Uniform(6));
    Code c = static_cast<Code>(rng.Uniform(6));
    Code d = rng.NextBernoulli(0.5) ? c : static_cast<Code>(rng.Uniform(6));
    rows.push_back({a, b, c, d});
  }
  return testutil::MakeTable({6, 6, 6, 6}, rows);
}

TEST(PairSelectorTest, RanksStrongestPairFirst) {
  auto table = CorrelatedTable();
  auto ranked = PairSelector::RankPairs(*table);
  ASSERT_EQ(ranked.size(), 6u);  // C(4,2)
  EXPECT_EQ(ranked[0].a, 0u);
  EXPECT_EQ(ranked[0].b, 1u);
  EXPECT_GT(ranked[0].cramers_v, ranked[1].cramers_v);
}

TEST(PairSelectorTest, ExcludeRemovesAttribute) {
  auto table = CorrelatedTable();
  auto ranked = PairSelector::RankPairs(*table, {0});
  EXPECT_EQ(ranked.size(), 3u);  // pairs among {1,2,3}
  for (const auto& p : ranked) {
    EXPECT_NE(p.a, 0u);
    EXPECT_NE(p.b, 0u);
  }
}

TEST(PairSelectorTest, AttributeCoverPrefersNewAttributes) {
  // Ranked list: (0,1) strongest, then (1,2), then (2,3)...
  std::vector<ScoredPair> ranked = {
      {0, 1, 0.9, 0}, {1, 2, 0.8, 0}, {2, 3, 0.7, 0}, {0, 3, 0.6, 0}};
  auto cover = PairSelector::Choose(ranked, 2, PairStrategy::kAttributeCover);
  ASSERT_EQ(cover.size(), 2u);
  // Cover strategy takes (0,1) then skips (1,2) (only one new attr) in favor
  // of (2,3) (two new attrs).
  EXPECT_EQ(cover[0].a, 0u);
  EXPECT_EQ(cover[0].b, 1u);
  EXPECT_EQ(cover[1].a, 2u);
  EXPECT_EQ(cover[1].b, 3u);
}

TEST(PairSelectorTest, CorrelationOnlyTakesStrongest) {
  std::vector<ScoredPair> ranked = {
      {0, 1, 0.9, 0}, {1, 2, 0.8, 0}, {2, 3, 0.7, 0}, {0, 3, 0.6, 0}};
  auto corr =
      PairSelector::Choose(ranked, 2, PairStrategy::kCorrelationOnly);
  ASSERT_EQ(corr.size(), 2u);
  EXPECT_EQ(corr[0].a, 0u);
  EXPECT_EQ(corr[0].b, 1u);
  EXPECT_EQ(corr[1].a, 1u);  // next most correlated with >= 1 new attribute
  EXPECT_EQ(corr[1].b, 2u);
}

TEST(PairSelectorTest, CorrelationOnlySkipsFullyCoveredPairs) {
  std::vector<ScoredPair> ranked = {
      {0, 1, 0.9, 0}, {1, 2, 0.8, 0}, {0, 2, 0.75, 0}, {2, 3, 0.7, 0}};
  auto corr =
      PairSelector::Choose(ranked, 3, PairStrategy::kCorrelationOnly);
  ASSERT_EQ(corr.size(), 3u);
  // (0,2) is skipped: both attributes already covered.
  EXPECT_EQ(corr[2].a, 2u);
  EXPECT_EQ(corr[2].b, 3u);
}

TEST(PairSelectorTest, BudgetLargerThanPairsReturnsAll) {
  std::vector<ScoredPair> ranked = {{0, 1, 0.9, 0}, {2, 3, 0.7, 0}};
  EXPECT_EQ(
      PairSelector::Choose(ranked, 10, PairStrategy::kAttributeCover).size(),
      2u);
}

}  // namespace
}  // namespace entropydb
