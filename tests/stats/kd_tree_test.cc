#include "stats/kd_tree.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entropydb {
namespace {

Histogram2D RandomHist(uint32_t na, uint32_t nb, uint64_t seed,
                       double zero_frac = 0.3) {
  Rng rng(seed);
  std::vector<uint64_t> counts(static_cast<size_t>(na) * nb, 0);
  for (auto& c : counts) {
    if (!rng.NextBernoulli(zero_frac)) c = rng.Uniform(100);
  }
  return Histogram2D(na, nb, counts);
}

/// Checks the partition is an exact disjoint cover of the grid.
void ExpectExactCover(const Histogram2D& hist,
                      const std::vector<KdRect>& rects) {
  std::vector<int> covered(static_cast<size_t>(hist.rows()) * hist.cols(), 0);
  for (const auto& r : rects) {
    for (Code i = r.a.lo; i <= r.a.hi; ++i) {
      for (Code j = r.b.lo; j <= r.b.hi; ++j) {
        ++covered[static_cast<size_t>(i) * hist.cols() + j];
      }
    }
  }
  for (int c : covered) EXPECT_EQ(c, 1);  // each cell in exactly one rect
}

TEST(KdTreeTest, BudgetOneIsWholeGrid) {
  auto h = RandomHist(6, 7, 1);
  KdTreePartitioner kd;
  auto rects = kd.Partition(h, 1);
  ASSERT_EQ(rects.size(), 1u);
  EXPECT_EQ(rects[0].a.lo, 0u);
  EXPECT_EQ(rects[0].a.hi, 5u);
  EXPECT_EQ(rects[0].b.hi, 6u);
  EXPECT_DOUBLE_EQ(rects[0].count, static_cast<double>(h.total()));
}

TEST(KdTreeTest, CountsSumToTotal) {
  auto h = RandomHist(10, 12, 2);
  KdTreePartitioner kd;
  for (size_t budget : {2u, 5u, 17u, 50u}) {
    auto rects = kd.Partition(h, budget);
    double total = 0.0;
    for (const auto& r : rects) total += r.count;
    EXPECT_DOUBLE_EQ(total, static_cast<double>(h.total()));
  }
}

class KdTreeBudgetTest : public ::testing::TestWithParam<size_t> {};

TEST_P(KdTreeBudgetTest, PartitionIsExactDisjointCover) {
  auto h = RandomHist(9, 11, 3);
  KdTreePartitioner kd;
  auto rects = kd.Partition(h, GetParam());
  EXPECT_LE(rects.size(), GetParam());
  ExpectExactCover(h, rects);
}

TEST_P(KdTreeBudgetTest, MedianRuleAlsoCovers) {
  auto h = RandomHist(8, 6, 4);
  KdTreePartitioner kd(KdSplitRule::kMedian);
  auto rects = kd.Partition(h, GetParam());
  ExpectExactCover(h, rects);
}

INSTANTIATE_TEST_SUITE_P(Budgets, KdTreeBudgetTest,
                         ::testing::Values(1, 2, 3, 4, 8, 16, 33, 48));

TEST(KdTreeTest, BudgetBeyondCellsSaturates) {
  auto h = RandomHist(3, 3, 5, 0.0);
  KdTreePartitioner kd;
  auto rects = kd.Partition(h, 100);
  EXPECT_EQ(rects.size(), 9u);  // cannot split below single cells
  ExpectExactCover(h, rects);
}

TEST(KdTreeTest, MinSsePrefersHomogeneousHalves) {
  // Fig 2a of the paper: values change sharply between column 0 and the
  // rest; min-SSE must split right after column 0, the median rule between
  // columns 1 and 2 (it balances mass: 36 | left vs right).
  //   2 10 10 10
  //   1 10 10 10
  //   1 12 10 10
  Histogram2D h(3, 4, {2, 10, 10, 10, 1, 10, 10, 10, 1, 12, 10, 10});
  KdTreePartitioner sse(KdSplitRule::kMinSse);
  auto rects = sse.Partition(h, 2);
  ASSERT_EQ(rects.size(), 2u);
  // One rectangle must be exactly column 0.
  bool found_col0 = false;
  for (const auto& r : rects) {
    if (r.b.lo == 0 && r.b.hi == 0 && r.a.lo == 0 && r.a.hi == 2) {
      found_col0 = true;
    }
  }
  EXPECT_TRUE(found_col0);
}

TEST(KdTreeTest, SingleRowGridSplitsAlongColumns) {
  Histogram2D h(1, 6, {5, 5, 5, 50, 50, 50});
  KdTreePartitioner kd;
  auto rects = kd.Partition(h, 2);
  ASSERT_EQ(rects.size(), 2u);
  ExpectExactCover(h, rects);
}

TEST(KdTreeTest, DeterministicForSameInput) {
  auto h = RandomHist(10, 10, 6);
  KdTreePartitioner kd;
  auto r1 = kd.Partition(h, 12);
  auto r2 = kd.Partition(h, 12);
  ASSERT_EQ(r1.size(), r2.size());
  for (size_t i = 0; i < r1.size(); ++i) {
    EXPECT_EQ(r1[i].a, r2[i].a);
    EXPECT_EQ(r1[i].b, r2[i].b);
  }
}

}  // namespace
}  // namespace entropydb
