#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entropydb {
namespace {

Histogram2D SmallHist() {
  // 2 x 3 grid:
  //   1 2 3
  //   4 0 6
  return Histogram2D(2, 3, {1, 2, 3, 4, 0, 6});
}

TEST(Histogram2DTest, BasicAccessors) {
  auto h = SmallHist();
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 3u);
  EXPECT_EQ(h.at(0, 1), 2u);
  EXPECT_EQ(h.at(1, 2), 6u);
  EXPECT_EQ(h.total(), 16u);
  EXPECT_EQ(h.NumZeroCells(), 1u);
}

TEST(Histogram2DTest, RectSums) {
  auto h = SmallHist();
  EXPECT_DOUBLE_EQ(h.RectSum(0, 1, 0, 2), 16.0);
  EXPECT_DOUBLE_EQ(h.RectSum(0, 0, 0, 1), 3.0);
  EXPECT_DOUBLE_EQ(h.RectSum(1, 1, 1, 2), 6.0);
  EXPECT_DOUBLE_EQ(h.RectSum(1, 1, 1, 1), 0.0);
}

TEST(Histogram2DTest, RectSumSq) {
  auto h = SmallHist();
  EXPECT_DOUBLE_EQ(h.RectSumSq(0, 0, 0, 2), 1.0 + 4.0 + 9.0);
  EXPECT_DOUBLE_EQ(h.RectSumSq(1, 1, 0, 2), 16.0 + 0.0 + 36.0);
}

TEST(Histogram2DTest, RectSseIsVarianceTimesCells) {
  auto h = SmallHist();
  // Row 0: values 1,2,3 -> mean 2, SSE = 1 + 0 + 1 = 2.
  EXPECT_NEAR(h.RectSse(0, 0, 0, 2), 2.0, 1e-9);
  // Single cell: SSE = 0.
  EXPECT_NEAR(h.RectSse(1, 1, 0, 0), 0.0, 1e-9);
}

TEST(Histogram2DTest, Marginals) {
  auto h = SmallHist();
  auto rows = h.RowMarginal();
  auto cols = h.ColMarginal();
  EXPECT_EQ(rows, (std::vector<uint64_t>{6, 10}));
  EXPECT_EQ(cols, (std::vector<uint64_t>{5, 2, 9}));
}

/// Property: summed-area rectangle queries match naive loops on random data.
TEST(Histogram2DTest, MatchesNaiveOnRandomRects) {
  Rng rng(41);
  const uint32_t na = 17, nb = 13;
  std::vector<uint64_t> counts(na * nb);
  for (auto& c : counts) c = rng.Uniform(20);
  Histogram2D h(na, nb, counts);
  for (int trial = 0; trial < 200; ++trial) {
    Code a0 = static_cast<Code>(rng.Uniform(na));
    Code a1 = a0 + static_cast<Code>(rng.Uniform(na - a0));
    Code b0 = static_cast<Code>(rng.Uniform(nb));
    Code b1 = b0 + static_cast<Code>(rng.Uniform(nb - b0));
    double sum = 0.0, sumsq = 0.0;
    for (Code i = a0; i <= a1; ++i) {
      for (Code j = b0; j <= b1; ++j) {
        double c = static_cast<double>(counts[i * nb + j]);
        sum += c;
        sumsq += c * c;
      }
    }
    EXPECT_NEAR(h.RectSum(a0, a1, b0, b1), sum, 1e-6);
    EXPECT_NEAR(h.RectSumSq(a0, a1, b0, b1), sumsq, 1e-6);
    double cells = static_cast<double>(a1 - a0 + 1) * (b1 - b0 + 1);
    EXPECT_NEAR(h.RectSse(a0, a1, b0, b1), sumsq - sum * sum / cells, 1e-6);
  }
}

}  // namespace
}  // namespace entropydb
