#include "stats/correlation.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace entropydb {
namespace {

TEST(CorrelationTest, IndependentTableHasNearZeroChi2) {
  // Outer product of marginals: exactly independent.
  // rows (10, 20), cols (0.5, 0.5) -> cells 5 10 / 5 10... use exact values.
  Histogram2D h(2, 2, {5, 5, 10, 10});
  EXPECT_NEAR(ChiSquared(h), 0.0, 1e-9);
  EXPECT_NEAR(CramersV(h), 0.0, 1e-9);
}

TEST(CorrelationTest, PerfectCorrelationHasVOne) {
  // Diagonal table: knowing the row determines the column.
  Histogram2D h(3, 3, {10, 0, 0, 0, 20, 0, 0, 0, 5});
  EXPECT_NEAR(CramersV(h), 1.0, 1e-9);
}

TEST(CorrelationTest, PartialCorrelationIsBetween) {
  Histogram2D h(2, 2, {30, 10, 10, 30});
  double v = CramersV(h);
  EXPECT_GT(v, 0.2);
  EXPECT_LT(v, 0.9);
}

TEST(CorrelationTest, EmptyTableIsZero) {
  Histogram2D h(2, 2, {0, 0, 0, 0});
  EXPECT_DOUBLE_EQ(ChiSquared(h), 0.0);
  EXPECT_DOUBLE_EQ(CramersV(h), 0.0);
}

TEST(CorrelationTest, EmptyRowsIgnored) {
  // Second row entirely empty; effective table is 1 x 2 -> V = 0.
  Histogram2D h(2, 2, {5, 5, 0, 0});
  EXPECT_DOUBLE_EQ(CramersV(h), 0.0);
}

TEST(CorrelationTest, MoreCorrelatedPairScoresHigher) {
  Rng rng(51);
  const uint32_t n = 8;
  std::vector<uint64_t> strong(n * n, 0), weak(n * n, 0);
  for (int i = 0; i < 5000; ++i) {
    uint32_t a = static_cast<uint32_t>(rng.Uniform(n));
    // Strong: b = a with 90% probability.
    uint32_t b = rng.NextBernoulli(0.9)
                     ? a
                     : static_cast<uint32_t>(rng.Uniform(n));
    ++strong[a * n + b];
    // Weak: b = a with 30% probability.
    uint32_t b2 = rng.NextBernoulli(0.3)
                      ? a
                      : static_cast<uint32_t>(rng.Uniform(n));
    ++weak[a * n + b2];
  }
  EXPECT_GT(CramersV(Histogram2D(n, n, strong)),
            CramersV(Histogram2D(n, n, weak)));
}

}  // namespace
}  // namespace entropydb
