#include "workload/flights.h"

#include <gtest/gtest.h>

#include "query/exact_evaluator.h"
#include "stats/correlation.h"
#include "stats/histogram.h"

namespace entropydb {
namespace {

FlightsConfig SmallConfig(bool fine = false) {
  FlightsConfig c;
  c.num_rows = 30000;
  c.fine_grained = fine;
  c.seed = 5;
  return c;
}

TEST(FlightsTest, CoarseDomainSizesMatchFig3) {
  auto table = FlightsGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  const Table& t = **table;
  EXPECT_EQ(t.num_attributes(), 5u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("fl_date")).size(), 307u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("origin")).size(), 54u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("dest")).size(), 54u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("fl_time")).size(), 62u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("distance")).size(), 81u);
  EXPECT_EQ(t.num_rows(), 30000u);
  // |Tup| ~ 4.5e9 for the coarse relation (Fig 3).
  EXPECT_NEAR(t.NumPossibleTuples(), 4.5e9, 0.3e9);
}

TEST(FlightsTest, FineDomainSizesMatchFig3) {
  auto table = FlightsGenerator::Generate(SmallConfig(true));
  ASSERT_TRUE(table.ok());
  const Table& t = **table;
  EXPECT_EQ(t.domain(1).size(), 147u);
  EXPECT_EQ(t.domain(2).size(), 147u);
  // |Tup| ~ 3.3e10 for the fine relation (Fig 3).
  EXPECT_NEAR(t.NumPossibleTuples(), 3.3e10, 0.3e10);
}

TEST(FlightsTest, DeterministicForSeed) {
  auto t1 = FlightsGenerator::Generate(SmallConfig());
  auto t2 = FlightsGenerator::Generate(SmallConfig());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (size_t r = 0; r < 100; ++r) {
    for (AttrId a = 0; a < 5; ++a) {
      ASSERT_EQ((*t1)->at(r, a), (*t2)->at(r, a));
    }
  }
}

TEST(FlightsTest, CorrelationStructureMatchesPaper) {
  auto table = FlightsGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  const Table& t = **table;
  ExactEvaluator eval(t);
  auto v = [&](AttrId a, AttrId b) {
    return CramersVCorrected(Histogram2D(t.domain(a).size(), t.domain(b).size(),
                                eval.Histogram2D(a, b)));
  };
  // Attributes: 0 date, 1 origin, 2 dest, 3 time, 4 distance.
  const double time_dist = v(3, 4);
  const double origin_dist = v(1, 4);
  const double dest_dist = v(2, 4);
  const double origin_dest = v(1, 2);
  const double date_dist = v(0, 4);
  const double date_origin = v(0, 1);
  // The paper's pair 1-4 must all be far more correlated than anything
  // involving the date.
  EXPECT_GT(time_dist, 3.0 * date_dist);
  EXPECT_GT(origin_dist, 3.0 * date_dist);
  EXPECT_GT(dest_dist, 3.0 * date_dist);
  EXPECT_GT(origin_dest, 3.0 * date_origin);
  // Time-distance is the strongest functional relationship.
  EXPECT_GT(time_dist, 0.25);
}

TEST(FlightsTest, PopularityIsSkewed) {
  auto table = FlightsGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  ExactEvaluator eval(**table);
  auto hist = eval.Histogram1D(1);  // origin
  uint64_t max_c = 0, min_c = UINT64_MAX;
  for (uint64_t c : hist) {
    max_c = std::max(max_c, c);
    min_c = std::min(min_c, c);
  }
  EXPECT_GT(max_c, 10 * std::max<uint64_t>(min_c, 1));  // heavy skew
}

TEST(FlightsTest, DateIsRoughlyUniform) {
  auto table = FlightsGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  ExactEvaluator eval(**table);
  auto hist = eval.Histogram1D(0);
  double expected = 30000.0 / 307.0;
  size_t wild = 0;
  for (uint64_t c : hist) {
    if (c < expected * 0.3 || c > expected * 3.0) ++wild;
  }
  EXPECT_LT(wild, 10u);  // no big spikes or holes
}

TEST(FlightsTest, ZeroCellsExistForRareRoutes) {
  // The evaluation needs nonexistent (origin, dest) combinations.
  auto table = FlightsGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  ExactEvaluator eval(**table);
  auto h = eval.Histogram2D(1, 2);
  size_t zeros = 0;
  for (uint64_t c : h) zeros += (c == 0) ? 1 : 0;
  EXPECT_GT(zeros, h.size() / 10);
}

}  // namespace
}  // namespace entropydb
