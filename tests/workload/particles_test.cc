#include "workload/particles.h"

#include <gtest/gtest.h>

#include "query/exact_evaluator.h"
#include "stats/correlation.h"
#include "stats/histogram.h"

namespace entropydb {
namespace {

ParticlesConfig SmallConfig(uint32_t snapshots = 3) {
  ParticlesConfig c;
  c.rows_per_snapshot = 20000;
  c.num_snapshots = snapshots;
  c.seed = 6;
  return c;
}

TEST(ParticlesTest, DomainSizesMatchFig3) {
  auto table = ParticlesGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  const Table& t = **table;
  EXPECT_EQ(t.num_attributes(), 8u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("density")).size(), 58u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("mass")).size(), 52u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("x")).size(), 21u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("y")).size(), 21u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("z")).size(), 21u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("grp")).size(), 2u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("type")).size(), 3u);
  EXPECT_EQ(t.domain(*t.schema().IndexOf("snapshot")).size(), 3u);
  // |Tup| ~ 5.0e8 (Fig 3).
  EXPECT_NEAR(t.NumPossibleTuples(), 5.0e8, 0.6e8);
}

TEST(ParticlesTest, SnapshotSubsetsScale) {
  for (uint32_t s : {1u, 2u, 3u}) {
    auto table = ParticlesGenerator::Generate(SmallConfig(s));
    ASSERT_TRUE(table.ok());
    EXPECT_EQ((*table)->num_rows(), 20000u * s);
    ExactEvaluator eval(**table);
    auto hist = eval.Histogram1D(7);  // snapshot attribute
    for (uint32_t i = 0; i < s; ++i) EXPECT_EQ(hist[i], 20000u);
    for (uint32_t i = s; i < 3; ++i) EXPECT_EQ(hist[i], 0u);
  }
}

TEST(ParticlesTest, RejectsBadSnapshotCount) {
  ParticlesConfig c = SmallConfig(0);
  EXPECT_TRUE(
      ParticlesGenerator::Generate(c).status().IsInvalidArgument());
  c.num_snapshots = 4;
  EXPECT_TRUE(
      ParticlesGenerator::Generate(c).status().IsInvalidArgument());
}

TEST(ParticlesTest, DensityGrpIsTheDominantCorrelation) {
  auto table = ParticlesGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  const Table& t = **table;
  ExactEvaluator eval(t);
  auto v = [&](AttrId a, AttrId b) {
    return CramersV(Histogram2D(t.domain(a).size(), t.domain(b).size(),
                                eval.Histogram2D(a, b)));
  };
  // density(0) x grp(5) is what the paper stratifies on.
  const double den_grp = v(0, 5);
  EXPECT_GT(den_grp, 0.6);
  EXPECT_GT(den_grp, v(2, 3));  // positions nearly independent
  // mass(1) x type(6) also correlated.
  EXPECT_GT(v(1, 6), 0.5);
}

TEST(ParticlesTest, ClusteredParticlesAreDense) {
  auto table = ParticlesGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  ExactEvaluator eval(**table);
  // Mean density bucket of grp=1 far above grp=0.
  auto h = eval.Histogram2D(5, 0);  // grp x density
  const uint32_t nd = 58;
  double mean0 = 0, mean1 = 0, n0 = 0, n1 = 0;
  for (uint32_t d = 0; d < nd; ++d) {
    n0 += h[0 * nd + d];
    mean0 += static_cast<double>(h[0 * nd + d]) * d;
    n1 += h[1 * nd + d];
    mean1 += static_cast<double>(h[1 * nd + d]) * d;
  }
  mean0 /= n0;
  mean1 /= n1;
  EXPECT_GT(mean1, mean0 + 10.0);
}

TEST(ParticlesTest, DeterministicForSeed) {
  auto t1 = ParticlesGenerator::Generate(SmallConfig());
  auto t2 = ParticlesGenerator::Generate(SmallConfig());
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(t2.ok());
  for (size_t r = 0; r < 100; ++r) {
    for (AttrId a = 0; a < 8; ++a) {
      ASSERT_EQ((*t1)->at(r, a), (*t2)->at(r, a));
    }
  }
}

TEST(ParticlesTest, StructureGrowsAcrossSnapshots) {
  auto table = ParticlesGenerator::Generate(SmallConfig());
  ASSERT_TRUE(table.ok());
  ExactEvaluator eval(**table);
  auto h = eval.Histogram2D(7, 5);  // snapshot x grp
  // Clustered fraction increases with snapshot index.
  double f0 = static_cast<double>(h[0 * 2 + 1]) / 20000.0;
  double f2 = static_cast<double>(h[2 * 2 + 1]) / 20000.0;
  EXPECT_GT(f2, f0 + 0.05);
}

}  // namespace
}  // namespace entropydb
