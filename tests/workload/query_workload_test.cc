#include "workload/query_workload.h"

#include <gtest/gtest.h>

#include "../test_util.h"
#include "query/exact_evaluator.h"

namespace entropydb {
namespace {

TEST(QueryWorkloadTest, HeavyHittersSortedDescending) {
  auto table = testutil::RandomTable({6, 6}, 4000, 301);
  WorkloadConfig cfg;
  cfg.num_heavy = 10;
  cfg.num_light = 10;
  cfg.num_nonexistent = 5;
  auto w = SelectWorkload(*table, {0, 1}, cfg);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->heavy.size(), 10u);
  for (size_t i = 1; i < w->heavy.size(); ++i) {
    EXPECT_GE(w->heavy[i - 1].true_count, w->heavy[i].true_count);
  }
  // Heavy hitters outweigh light hitters.
  EXPECT_GE(w->heavy.front().true_count, w->light.back().true_count);
}

TEST(QueryWorkloadTest, LightHittersExistButAreSmall) {
  auto table = testutil::RandomTable({6, 6}, 4000, 302);
  WorkloadConfig cfg;
  cfg.num_heavy = 5;
  cfg.num_light = 5;
  cfg.num_nonexistent = 5;
  auto w = SelectWorkload(*table, {0, 1}, cfg);
  ASSERT_TRUE(w.ok());
  for (const auto& p : w->light) {
    EXPECT_GT(p.true_count, 0.0);
    EXPECT_LE(p.true_count, w->heavy.front().true_count);
  }
}

TEST(QueryWorkloadTest, NonexistentAreTrulyAbsent) {
  auto table = testutil::RandomTable({8, 8, 8}, 300, 303);
  WorkloadConfig cfg;
  cfg.num_nonexistent = 20;
  auto w = SelectWorkload(*table, {0, 1, 2}, cfg);
  ASSERT_TRUE(w.ok());
  EXPECT_EQ(w->nonexistent.size(), 20u);
  ExactEvaluator exact(*table);
  for (const auto& p : w->nonexistent) {
    auto q = PointQuery(3, {0, 1, 2}, p.key);
    EXPECT_EQ(exact.Count(q), 0u);
    EXPECT_DOUBLE_EQ(p.true_count, 0.0);
  }
}

TEST(QueryWorkloadTest, TrueCountsAreExact) {
  auto table = testutil::RandomTable({4, 4}, 800, 304);
  auto w = SelectWorkload(*table, {0, 1});
  ASSERT_TRUE(w.ok());
  ExactEvaluator exact(*table);
  for (const auto& p : w->heavy) {
    EXPECT_DOUBLE_EQ(p.true_count,
                     static_cast<double>(exact.Count(
                         PointQuery(2, {0, 1}, p.key))));
  }
}

TEST(QueryWorkloadTest, SaturatesWhenFewCombinationsExist) {
  // 2x2 grid with only 3 existing combinations: can't find 100 of each.
  auto table = testutil::MakeTable({2, 2}, {{0, 0}, {0, 1}, {1, 0}});
  auto w = SelectWorkload(*table, {0, 1});
  ASSERT_TRUE(w.ok());
  EXPECT_LE(w->heavy.size(), 3u);
  EXPECT_EQ(w->nonexistent.size(), 1u);  // only (1,1) is absent
}

TEST(QueryWorkloadTest, ValidatesAttributes) {
  auto table = testutil::RandomTable({3}, 50, 305);
  EXPECT_TRUE(SelectWorkload(*table, {}).status().IsInvalidArgument());
  EXPECT_TRUE(SelectWorkload(*table, {7}).status().IsOutOfRange());
}

TEST(QueryWorkloadTest, PointQueryBuildsConjunction) {
  auto q = PointQuery(4, {1, 3}, {5, 2});
  EXPECT_TRUE(q.predicate(0).is_any());
  EXPECT_EQ(q.predicate(1), AttrPredicate::Point(5));
  EXPECT_TRUE(q.predicate(2).is_any());
  EXPECT_EQ(q.predicate(3), AttrPredicate::Point(2));
}

TEST(QueryWorkloadTest, DeterministicForSeed) {
  auto table = testutil::RandomTable({6, 6}, 1000, 306);
  auto w1 = SelectWorkload(*table, {0, 1});
  auto w2 = SelectWorkload(*table, {0, 1});
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  ASSERT_EQ(w1->nonexistent.size(), w2->nonexistent.size());
  for (size_t i = 0; i < w1->nonexistent.size(); ++i) {
    EXPECT_EQ(w1->nonexistent[i].key, w2->nonexistent[i].key);
  }
}

}  // namespace
}  // namespace entropydb
