#include "workload/metrics.h"

#include <gtest/gtest.h>

namespace entropydb {
namespace {

TEST(MetricsTest, SymmetricErrorBasics) {
  EXPECT_DOUBLE_EQ(SymmetricError(100, 100), 0.0);
  EXPECT_DOUBLE_EQ(SymmetricError(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(SymmetricError(100, 0), 1.0);
  EXPECT_DOUBLE_EQ(SymmetricError(0, 100), 1.0);
  EXPECT_NEAR(SymmetricError(100, 50), 50.0 / 150.0, 1e-12);
}

TEST(MetricsTest, SymmetricErrorIsSymmetric) {
  EXPECT_DOUBLE_EQ(SymmetricError(30, 70), SymmetricError(70, 30));
}

TEST(MetricsTest, SymmetricErrorBounded) {
  for (double t : {0.0, 1.0, 10.0, 1e6}) {
    for (double e : {0.0, 1.0, 10.0, 1e6}) {
      double err = SymmetricError(t, e);
      EXPECT_GE(err, 0.0);
      EXPECT_LE(err, 1.0);
    }
  }
}

TEST(MetricsTest, AverageError) {
  EXPECT_DOUBLE_EQ(AverageError({100, 0}, {100, 100}), 0.5);
  EXPECT_DOUBLE_EQ(AverageError({}, {}), 0.0);
}

TEST(MetricsTest, FMeasurePerfect) {
  // All light hitters detected, no false positives.
  auto r = ComputeFMeasure({1.0, 2.0, 5.0}, {0.0, 0.2, 0.4});
  EXPECT_DOUBLE_EQ(r.precision, 1.0);
  EXPECT_DOUBLE_EQ(r.recall, 1.0);
  EXPECT_DOUBLE_EQ(r.f, 1.0);
  EXPECT_EQ(r.light_positive, 3u);
  EXPECT_EQ(r.null_positive, 0u);
}

TEST(MetricsTest, FMeasureRoundsAtHalf) {
  // 0.4 rounds to 0 (negative), 0.6 rounds to 1 (positive) — the paper's
  // rounding rule for distinguishing rare from nonexistent (Sec 4.3).
  auto r = ComputeFMeasure({0.4}, {0.6});
  EXPECT_EQ(r.light_positive, 0u);
  EXPECT_EQ(r.null_positive, 1u);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f, 0.0);
}

TEST(MetricsTest, FMeasureMixed) {
  // 2 of 4 light hitters found, 1 of 4 nulls falsely positive.
  auto r = ComputeFMeasure({1.0, 0.0, 2.0, 0.1}, {0.0, 0.0, 3.0, 0.0});
  EXPECT_DOUBLE_EQ(r.precision, 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.5);
  EXPECT_NEAR(r.f, 2 * (2.0 / 3.0) * 0.5 / (2.0 / 3.0 + 0.5), 1e-12);
}

TEST(MetricsTest, FMeasureAllNegative) {
  auto r = ComputeFMeasure({0.0, 0.0}, {0.0});
  EXPECT_DOUBLE_EQ(r.precision, 0.0);
  EXPECT_DOUBLE_EQ(r.recall, 0.0);
  EXPECT_DOUBLE_EQ(r.f, 0.0);
}

TEST(MetricsTest, FMeasureEmptyInputs) {
  auto r = ComputeFMeasure({}, {});
  EXPECT_DOUBLE_EQ(r.f, 0.0);
}

}  // namespace
}  // namespace entropydb
