// Command-line summary builder: CSV in, solved .edb summary (or a routed
// multi-summary store directory) out.
//
//   entropydb_build --csv data.csv
//       --schema "origin:cat,dest:cat,distance:num:81,fl_time:num:62"
//       --pairs auto --ba 2 --budget 500 --out flights.edb
//
//   entropydb_build --csv data.csv --schema ... \
//       --summaries 3 --budget 500 --store flights.store \
//       --samples 2 --sample-fraction 0.01 --uniform on
//
//   entropydb_build --csv data.csv --schema ... \
//       --store flights.store --shards 4 --shard-scheme rr
//
// Schema entries are name:kind[:buckets] with kind one of cat|num|int.
// --pairs is either "auto" (rank by bias-corrected Cramér's V, choose by
// attribute cover, Sec 4.3) or an explicit "a:b,c:d" list of names.
// --store builds one summary per top-ranked pair (K = --summaries, each
// pair getting --budget statistics), solved in parallel, and persists the
// whole store as a directory entropydb_query can route over; --advisor on
// lets BudgetAdvisor pick the breadth-vs-depth split instead (--budget is
// then the TOTAL statistic budget and --summaries is ignored).
// --samples additionally draws stratified sample companions on the same
// top-ranked pairs (and --uniform on a uniform Bernoulli sample) and
// persists them alongside the summaries; the query router then answers
// each query from whichever source — summary or sample — expects the
// lower variance (docs/ESTIMATORS.md). Each companion carries a row-group
// index by default (persisted in the .eds v2 files) so selective queries
// skip the full sample scan; --sample-index off disables it — answers are
// bitwise identical either way, only route-time latency changes.
// --shards N partitions the rows into N shards (--shard-scheme rr|hash)
// and builds EVERY shard's summaries + samples in parallel with the same
// per-shard knobs; the store persists as a MANIFEST v4 directory that
// entropydb_query answers by fanning each query across shards and merging
// the per-shard estimates additively (each shard routes to its own best
// source).
//
// Ingest (sharded stores only, engine/ingest.h):
//
//   entropydb_build --append new_rows.csv --store flights.store
//   entropydb_build --recover on --store flights.store
//
// --append journals one CSV batch (header + rows, matching the store's
// schema and domains) into <store>/ingest.wal, fsyncs it, then seals it —
// and any batches a crashed earlier run left pending — into fresh shards
// appended to the manifest. --recover replays pending batches without
// appending. For ingest, --budget is the TOTAL statistic budget of each
// batch shard (the modeled pairs are inherited from shard 0).
//
// Compaction (engine/compaction.h):
//
//   entropydb_build --compact on --store flights.store
//       [--max-batch-shards N] [--split-threshold R] [--force on]
//
// --compact re-partitions all journal-backed batch rows under the store's
// own scheme and atomically replaces the accumulated shard_b* (and prior
// shard_c*) shards with full-size ones; answers are unchanged. After a
// successful --append the same pass runs automatically when the store
// holds more than --max-batch-shards batch shards (or a shard exceeds
// --split-threshold rows); --auto-compact off suppresses it.
//
// Versioning (storage/version_set.h, engine/versioned.h):
//
//   entropydb_build --csv data.csv --schema ... \
//       --store flights.vdb --shards 4 --versioned on [--retain K]
//   entropydb_build --append new_rows.csv --store flights.vdb
//
// --versioned on publishes the built store as version 1 of a versioned
// root at --store (a directory of immutable v<id> subdirectories behind
// one atomic CURRENT pointer) instead of writing the store in place.
// --append and --compact detect a versioned root automatically and
// publish a NEW version per mutation — clone-by-hard-link, mutate the
// clone, flip CURRENT — so concurrent readers (entropydb_serve sessions)
// keep answering from the version they pinned. --retain K keeps the K
// newest versions queryable for time travel (persisted in CURRENT;
// default 2). --recover is refused on a versioned root: published
// versions are immutable, and a crashed append leaves only an
// unpublished clone that the next open sweeps.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "entropydb.h"

using namespace entropydb;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: entropydb_build --csv FILE --schema SPEC\n"
      "                       (--out FILE | --store DIR)\n"
      "                       [--pairs auto|a:b,c:d] [--ba N] [--budget N]\n"
      "                       [--summaries K] [--advisor on]\n"
      "                       [--samples S] [--sample-fraction F]\n"
      "                       [--uniform on] [--sample-index on|off]\n"
      "                       [--shards N] [--shard-scheme rr|hash]\n"
      "                       [--heuristic composite|large|zero]\n"
      "                       [--iterations N]\n"
      "                       [--versioned on] [--retain K]\n"
      "       entropydb_build --append BATCH.csv --store DIR\n"
      "                       [--auto-compact on|off] [--max-batch-shards N]\n"
      "                       [--split-threshold R]\n"
      "       entropydb_build --recover on --store DIR\n"
      "       entropydb_build --compact on --store DIR\n"
      "                       [--max-batch-shards N] [--split-threshold R]\n"
      "                       [--force on]\n");
}

Result<Schema> ParseSchemaSpec(const std::string& spec) {
  std::vector<AttributeSpec> attrs;
  for (const auto& field : SplitString(spec, ',')) {
    auto parts = SplitString(field, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument("bad schema field: " + field);
    }
    AttributeSpec a;
    a.name = std::string(StripWhitespace(parts[0]));
    std::string kind(StripWhitespace(parts[1]));
    if (kind == "cat") {
      a.type = AttributeType::kCategorical;
    } else if (kind == "num") {
      a.type = AttributeType::kNumeric;
    } else if (kind == "int") {
      a.type = AttributeType::kInteger;
    } else {
      return Status::InvalidArgument("bad attribute kind: " + kind);
    }
    if (parts.size() == 3) {
      ASSIGN_OR_RETURN(int64_t b, ParseInt64(parts[2]));
      a.buckets = static_cast<uint32_t>(b);
    }
    attrs.push_back(std::move(a));
  }
  return Schema(std::move(attrs));
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      Usage();
      return 2;
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  // Ingest and compaction modes act on an EXISTING sharded store: no
  // --csv/--schema (batch rows encode against the store's persisted
  // domains).
  if (args.count("append") || args.count("recover") ||
      args.count("compact")) {
    if (!args.count("store")) {
      Usage();
      return 2;
    }
    StoreOptions iopts;
    if (args.count("budget")) iopts.total_budget = std::stoul(args["budget"]);
    if (args.count("samples")) {
      iopts.num_stratified_samples = std::stoul(args["samples"]);
    }
    if (args.count("sample-fraction")) {
      iopts.sample_fraction = std::stod(args["sample-fraction"]);
    }
    iopts.uniform_sample = args.count("uniform") && args["uniform"] != "off";
    iopts.sample_index =
        !args.count("sample-index") || args["sample-index"] != "off";
    if (args.count("iterations")) {
      iopts.summary.solver.max_iterations = std::stoul(args["iterations"]);
    }
    CompactionOptions copts;
    copts.store = iopts;
    if (args.count("max-batch-shards")) {
      copts.max_batch_shards = std::stoul(args["max-batch-shards"]);
    }
    if (args.count("split-threshold")) {
      copts.split_threshold = std::stoul(args["split-threshold"]);
    }
    // A versioned root routes every mutation through a publish: clone the
    // current version, mutate the clone, flip CURRENT. Plain stores keep
    // the in-place path.
    VersionSet::Options vopts;
    if (args.count("retain")) vopts.retain = std::stoul(args["retain"]);
    const bool versioned =
        VersionSet::IsVersionedRoot(args["store"], Env::Default());
    if (versioned && args.count("recover")) {
      std::fprintf(stderr,
                   "recover: %s is a versioned root; published versions are "
                   "immutable and a crashed append leaves only an "
                   "unpublished clone, swept at next open\n",
                   args["store"].c_str());
      return 1;
    }
    auto print_compaction = [&](const CompactionReport& report) {
      std::printf(
          "compacted %zu shard(s) into %zu (generation %llu, %llu rows) "
          "in %s\n",
          report.replaced_shards.size(), report.new_shards.size(),
          static_cast<unsigned long long>(report.generation),
          static_cast<unsigned long long>(report.rows),
          args["store"].c_str());
    };
    auto compact = [&]() -> int {
      if (versioned) {
        auto report = CompactVersion(args["store"], copts, vopts);
        if (!report.ok()) {
          std::fprintf(stderr, "compact: %s\n",
                       report.status().ToString().c_str());
          return 1;
        }
        if (report->version == 0) {
          std::printf("compaction not triggered in %s\n",
                      args["store"].c_str());
          return 0;
        }
        print_compaction(report->compaction);
        std::printf("published as v%llu\n",
                    static_cast<unsigned long long>(report->version));
        return 0;
      }
      auto report = RunCompaction(args["store"], copts);
      if (!report.ok()) {
        std::fprintf(stderr, "compact: %s\n",
                     report.status().ToString().c_str());
        return 1;
      }
      if (!report->ran) {
        std::printf("compaction not triggered in %s\n",
                    args["store"].c_str());
        return 0;
      }
      print_compaction(*report);
      return 0;
    };
    if (args.count("compact")) {
      copts.force = args.count("force") && args["force"] != "off";
      return compact();
    }
    uint64_t published = 0;
    auto run = [&]() -> Result<IngestReport> {
      if (args.count("append")) {
        std::string csv_text;
        RETURN_NOT_OK(Env::Default()->ReadFile(args["append"], &csv_text));
        if (versioned) {
          ASSIGN_OR_RETURN(
              VersionAppendReport vreport,
              AppendVersion(args["store"], csv_text, iopts, vopts));
          published = vreport.version;
          return vreport.ingest;
        }
        return AppendBatch(args["store"], csv_text, iopts);
      }
      return RecoverPending(args["store"], iopts);
    };
    Result<IngestReport> report = run();
    if (!report.ok()) {
      std::fprintf(stderr, "ingest: %s\n",
                   report.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "journaled %llu batch(es), sealed %llu (%llu recovered) in %s\n",
        static_cast<unsigned long long>(report->journaled),
        static_cast<unsigned long long>(report->sealed),
        static_cast<unsigned long long>(report->recovered),
        args["store"].c_str());
    if (published != 0) {
      std::printf("published as v%llu\n",
                  static_cast<unsigned long long>(published));
    }
    // The batch is durable; compaction is housekeeping on top. It runs
    // only when the thresholds trip, and a failure here must still exit
    // nonzero — the store is intact (crash-atomic flip) but the operator
    // should know the pass did not land.
    if (args.count("append") &&
        (!args.count("auto-compact") || args["auto-compact"] != "off")) {
      return compact();
    }
    return 0;
  }

  if (!args.count("csv") || !args.count("schema") ||
      (!args.count("out") && !args.count("store"))) {
    Usage();
    return 2;
  }

  auto schema = ParseSchemaSpec(args["schema"]);
  if (!schema.ok()) {
    std::fprintf(stderr, "schema: %s\n", schema.status().ToString().c_str());
    return 1;
  }
  auto table = ReadCsv(*schema, args["csv"]);
  if (!table.ok()) {
    std::fprintf(stderr, "csv: %s\n", table.status().ToString().c_str());
    return 1;
  }
  std::printf("loaded %zu rows, %zu attributes, |Tup| = %.3g\n",
              (*table)->num_rows(), (*table)->num_attributes(),
              (*table)->NumPossibleTuples());

  // Resolve statistic pairs.
  size_t ba = args.count("ba") ? std::stoul(args["ba"]) : 2;
  size_t budget = args.count("budget") ? std::stoul(args["budget"]) : 500;
  std::vector<std::pair<AttrId, AttrId>> pairs;
  std::string pair_spec = args.count("pairs") ? args["pairs"] : "auto";
  if (args.count("store")) {
    // The store ranks and picks its own pairs (one summary per pair).
  } else if (pair_spec == "auto") {
    auto ranked = PairSelector::RankPairs(**table);
    for (const auto& p :
         PairSelector::Choose(ranked, ba, PairStrategy::kAttributeCover)) {
      pairs.emplace_back(p.a, p.b);
      std::printf("auto-selected pair (%s, %s), corrected V = %.3f\n",
                  (*table)->schema().attribute(p.a).name.c_str(),
                  (*table)->schema().attribute(p.b).name.c_str(),
                  p.cramers_v);
    }
  } else if (!pair_spec.empty()) {
    for (const auto& pr : SplitString(pair_spec, ',')) {
      auto names = SplitString(pr, ':');
      if (names.size() != 2) {
        std::fprintf(stderr, "bad pair: %s\n", pr.c_str());
        return 1;
      }
      auto a = (*table)->schema().IndexOf(names[0]);
      auto b = (*table)->schema().IndexOf(names[1]);
      if (!a.ok() || !b.ok()) {
        std::fprintf(stderr, "unknown attribute in pair %s\n", pr.c_str());
        return 1;
      }
      pairs.emplace_back(*a, *b);
    }
  }

  SelectionHeuristic heuristic = SelectionHeuristic::kComposite;
  if (args.count("heuristic")) {
    if (args["heuristic"] == "large") {
      heuristic = SelectionHeuristic::kLargeSingleCell;
    } else if (args["heuristic"] == "zero") {
      heuristic = SelectionHeuristic::kZeroSingleCell;
    } else if (args["heuristic"] != "composite") {
      std::fprintf(stderr, "unknown heuristic\n");
      return 1;
    }
  }
  if (args.count("versioned") && args["versioned"] != "off" &&
      !args.count("store")) {
    std::fprintf(stderr, "--versioned needs --store (a directory root)\n");
    return 1;
  }
  if (args.count("store")) {
    // --versioned on: save the built store as the root's next v<id>
    // directory, then flip CURRENT. Re-running against an existing root
    // publishes a fresh version rather than overwriting.
    std::unique_ptr<VersionSet> version_set;
    uint64_t version_id = 0;
    std::string save_path = args["store"];
    if (args.count("versioned") && args["versioned"] != "off") {
      VersionSet::Options vopts;
      if (args.count("retain")) vopts.retain = std::stoul(args["retain"]);
      auto vs = VersionSet::Open(args["store"], Env::Default(), vopts);
      if (!vs.ok()) {
        std::fprintf(stderr, "versioned root: %s\n",
                     vs.status().ToString().c_str());
        return 1;
      }
      version_set = std::move(*vs);
      version_id = version_set->BeginVersion();
      save_path = version_set->VersionDir(version_id);
    }
    auto publish = [&]() -> int {
      if (version_set == nullptr) return 0;
      Status st = version_set->Publish(version_id);
      if (!st.ok()) {
        std::fprintf(stderr, "publish: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("published as v%llu (retaining %zu)\n",
                  static_cast<unsigned long long>(version_id),
                  version_set->retain());
      return 0;
    };
    StoreOptions sopts;
    sopts.num_summaries =
        args.count("summaries") ? std::stoul(args["summaries"]) : 3;
    sopts.heuristic = heuristic;
    sopts.use_budget_advisor =
        args.count("advisor") && args["advisor"] != "off";
    // Without the advisor, --budget stays "statistics per pair" and the
    // store splits the total back out evenly. The advisor instead takes
    // the TOTAL budget and decides the breadth-vs-depth split itself, so
    // there --budget is the total (K is the advisor's to choose).
    sopts.total_budget = sopts.use_budget_advisor
                             ? budget
                             : budget * sopts.num_summaries;
    if (args.count("samples")) {
      sopts.num_stratified_samples = std::stoul(args["samples"]);
    }
    if (args.count("sample-fraction")) {
      sopts.sample_fraction = std::stod(args["sample-fraction"]);
    }
    sopts.uniform_sample = args.count("uniform") && args["uniform"] != "off";
    // Row-group indexes over the sample companions (default on): indexed
    // and scan evaluation are bitwise identical, so this only trades
    // build time + store size for route-time latency.
    sopts.sample_index =
        !args.count("sample-index") || args["sample-index"] != "off";
    if (args.count("iterations")) {
      sopts.summary.solver.max_iterations = std::stoul(args["iterations"]);
    }

    // --shards: partition the rows and build one full store per shard in
    // parallel; persists as a MANIFEST v3 directory.
    if (args.count("shards")) {
      ShardedOptions shopts;
      shopts.num_shards = std::stoul(args["shards"]);
      if (args.count("shard-scheme")) {
        std::string token = args["shard-scheme"];
        // attr:<name> resolves the attribute by name against the loaded
        // schema; the core layers (and the manifest) speak attr:<index>,
        // which ParsePartitionSpec also accepts directly.
        if (token.rfind("attr:", 0) == 0) {
          const std::string name = token.substr(5);
          auto attr = (*table)->schema().IndexOf(name);
          if (attr.ok()) {
            token = "attr:" + std::to_string(*attr);
          } else if (name.find_first_not_of("0123456789") !=
                     std::string::npos) {
            std::fprintf(stderr, "shard-scheme: unknown attribute '%s'\n",
                         name.c_str());
            return 1;
          }
        }
        auto spec = ParsePartitionSpec(token);
        if (!spec.ok()) {
          std::fprintf(stderr, "shard-scheme: %s\n",
                       spec.status().ToString().c_str());
          return 1;
        }
        shopts.scheme = spec->scheme;
        shopts.partition_attr = spec->attr;
      }
      shopts.store = sopts;
      Timer timer;
      auto sharded = ShardedStore::Build(**table, shopts);
      if (!sharded.ok()) {
        std::fprintf(stderr, "sharded build: %s\n",
                     sharded.status().ToString().c_str());
        return 1;
      }
      std::string scheme_desc = PartitionSchemeName((*sharded)->scheme());
      if ((*sharded)->scheme() == PartitionScheme::kAttribute) {
        scheme_desc +=
            ":" +
            (*table)->schema().attribute((*sharded)->partition_attr()).name;
      }
      std::printf("built %zu shards (%s partitioning) in %.2fs (parallel):\n",
                  (*sharded)->num_shards(), scheme_desc.c_str(),
                  timer.ElapsedSeconds());
      for (size_t s = 0; s < (*sharded)->num_shards(); ++s) {
        const SourceStore& shard = (*sharded)->shard(s);
        std::printf("  shard %zu: %zu summaries + %zu samples, n = %.0f\n",
                    s, shard.size(), shard.num_samples(), shard.n());
      }
      Status st = (*sharded)->Save(save_path);
      if (!st.ok()) {
        std::fprintf(stderr, "save: %s\n", st.ToString().c_str());
        return 1;
      }
      std::printf("sharded store written to %s\n", save_path.c_str());
      return publish();
    }

    Timer timer;
    auto store = SourceStore::Build(**table, sopts);
    if (!store.ok()) {
      std::fprintf(stderr, "store build: %s\n",
                   store.status().ToString().c_str());
      return 1;
    }
    std::printf("built %zu summaries + %zu samples in %.2fs (parallel):\n",
                (*store)->size(), (*store)->num_samples(),
                timer.ElapsedSeconds());
    for (size_t k = 0; k < (*store)->size(); ++k) {
      for (const ScoredPair& p : (*store)->entry(k).pairs) {
        std::printf("  summary %zu: (%s, %s), corrected V = %.3f%s\n", k,
                    (*table)->schema().attribute(p.a).name.c_str(),
                    (*table)->schema().attribute(p.b).name.c_str(),
                    p.cramers_v,
                    k == (*store)->widest() ? "  [fallback]" : "");
      }
    }
    for (size_t s = 0; s < (*store)->num_samples(); ++s) {
      const WeightedSample& smp = *(*store)->sample_entry(s).sample;
      std::printf("  sample %zu: %s, %zu rows (fraction %.3g)%s\n", s,
                  smp.name.c_str(), smp.size(), smp.fraction,
                  smp.index != nullptr ? "  [indexed]" : "");
    }
    Status s = (*store)->Save(save_path);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("store written to %s\n", save_path.c_str());
    return publish();
  }

  StatisticSelector selector(heuristic);
  std::vector<MultiDimStatistic> stats;
  for (auto [a, b] : pairs) {
    auto s = selector.Select(**table, a, b, budget);
    stats.insert(stats.end(), s.begin(), s.end());
  }
  std::printf("gathered %zu 2-D statistics (%s, budget %zu per pair)\n",
              stats.size(), SelectionHeuristicName(heuristic), budget);

  SummaryOptions opts;
  if (args.count("iterations")) {
    opts.solver.max_iterations = std::stoul(args["iterations"]);
  }
  Timer timer;
  auto summary = EntropySummary::Build(**table, stats, opts);
  if (!summary.ok()) {
    std::fprintf(stderr, "build: %s\n", summary.status().ToString().c_str());
    return 1;
  }
  std::printf("solved in %.2fs: %zu iterations, final error %.2e, "
              "converged=%s\n",
              timer.ElapsedSeconds(), (*summary)->solver_report().iterations,
              (*summary)->solver_report().final_error,
              (*summary)->solver_report().converged ? "yes" : "no");

  Status s = (*summary)->Save(args["out"]);
  if (!s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("summary written to %s\n", args["out"].c_str());
  return 0;
}
