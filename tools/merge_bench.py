#!/usr/bin/env python3
"""Merges per-benchmark JSON outputs into one CI artifact.

Replaces the inline heredoc the CI workflow used to carry: one artifact
per PR generation keeps a perf trajectory across the stacked PRs, and the
artifact name is an argument so each PR's workflow line only changes in
one place.

Usage:
    merge_bench.py --out BENCH_pr5.json \
        --bench bench_solver.json [--bench ...] \
        --extra routed_vs_single_accuracy=routed_accuracy.json [--extra ...] \
        [--diff BENCH_pr5_baseline.json] [--diff-fail]

Each --bench file lands under its filename stem; each --extra lands under
the given key. --diff compares the merged artifact's STRUCTURE (section
keys and google-benchmark names — timings are machine-dependent and never
compared) against a committed baseline, printing any drift so a bench
added or dropped without updating the in-tree trajectory file is visible
in the CI log; --diff-fail turns that drift into a non-zero exit. Stdlib
only (CI runs it on a bare runner).
"""

import argparse
import json
import pathlib
import sys


def merge(bench_paths, extra_specs):
    """Builds the merged dict from --bench paths and KEY=FILE specs."""
    merged = {}
    for path in bench_paths:
        with open(path) as f:
            merged[pathlib.Path(path).stem] = json.load(f)
    for spec in extra_specs:
        key, _, path = spec.partition("=")
        if not path:
            raise ValueError(f"--extra needs KEY=FILE, got: {spec}")
        with open(path) as f:
            merged[key] = json.load(f)
    return merged


def bench_names(section):
    """Benchmark names of one google-benchmark section ([] for extras)."""
    if isinstance(section, dict) and isinstance(section.get("benchmarks"),
                                                list):
        return sorted(b.get("name", "?") for b in section["benchmarks"])
    return []


def structural_diff(merged, baseline):
    """Drift lines between a merged artifact and a committed baseline.

    Only structure is compared — section keys and benchmark names — so the
    diff is deterministic across machines; timings are expected to move.
    """
    drift = []
    for key in sorted(set(baseline) - set(merged)):
        drift.append(f"section '{key}' is in the baseline but not this run")
    for key in sorted(set(merged) - set(baseline)):
        drift.append(f"section '{key}' is new (not in the baseline)")
    for key in sorted(set(merged) & set(baseline)):
        ours = set(bench_names(merged[key]))
        theirs = set(bench_names(baseline[key]))
        for name in sorted(theirs - ours):
            drift.append(f"benchmark '{name}' ({key}) vanished vs baseline")
        for name in sorted(ours - theirs):
            drift.append(f"benchmark '{name}' ({key}) is new vs baseline")
    return drift


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="merged artifact path, e.g. BENCH_pr5.json")
    parser.add_argument("--bench", action="append", default=[],
                        metavar="FILE",
                        help="google-benchmark JSON; keyed by filename stem")
    parser.add_argument("--extra", action="append", default=[],
                        metavar="KEY=FILE",
                        help="auxiliary JSON (accuracy/crossover/gate files)")
    parser.add_argument("--diff", metavar="BASELINE", default=None,
                        help="committed artifact to structurally diff against")
    parser.add_argument("--diff-fail", action="store_true",
                        help="exit non-zero when --diff finds drift")
    args = parser.parse_args(argv)

    try:
        merged = merge(args.bench, args.extra)
    except ValueError as err:
        print(err, file=sys.stderr)
        return 2

    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
    print(f"wrote {args.out} ({len(merged)} sections)")

    if args.diff is not None:
        with open(args.diff) as f:
            baseline = json.load(f)
        drift = structural_diff(merged, baseline)
        if drift:
            for line in drift:
                print(f"DRIFT vs {args.diff}: {line}",
                      file=sys.stderr if args.diff_fail else sys.stdout)
            if args.diff_fail:
                return 1
        else:
            print(f"no structural drift vs {args.diff}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
