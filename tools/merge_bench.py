#!/usr/bin/env python3
"""Merges per-benchmark JSON outputs into one CI artifact.

Replaces the inline heredoc the CI workflow used to carry: one artifact
per PR generation keeps a perf trajectory across the stacked PRs, and the
artifact name is an argument so each PR's workflow line only changes in
one place.

Usage:
    merge_bench.py --out BENCH_pr4.json \
        --bench bench_solver.json [--bench ...] \
        --extra routed_vs_single_accuracy=routed_accuracy.json [--extra ...]

Each --bench file lands under its filename stem; each --extra lands under
the given key. Stdlib only (CI runs it on a bare runner).
"""

import argparse
import json
import pathlib
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", required=True,
                        help="merged artifact path, e.g. BENCH_pr4.json")
    parser.add_argument("--bench", action="append", default=[],
                        metavar="FILE",
                        help="google-benchmark JSON; keyed by filename stem")
    parser.add_argument("--extra", action="append", default=[],
                        metavar="KEY=FILE",
                        help="auxiliary JSON (accuracy/crossover/gate files)")
    args = parser.parse_args()

    merged = {}
    for path in args.bench:
        with open(path) as f:
            merged[pathlib.Path(path).stem] = json.load(f)
    for spec in args.extra:
        key, _, path = spec.partition("=")
        if not path:
            print(f"--extra needs KEY=FILE, got: {spec}", file=sys.stderr)
            return 2
        with open(path) as f:
            merged[key] = json.load(f)

    with open(args.out, "w") as f:
        json.dump(merged, f, indent=2)
    print(f"wrote {args.out} ({len(merged)} sections)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
