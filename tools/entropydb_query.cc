// Command-line query shell over a persisted summary or summary store — no
// base data needed.
//
//   entropydb_query --summary flights.edb
//       --query "COUNT(*) WHERE origin = S3 AND distance BETWEEN 100 AND 500"
//
//   entropydb_query --store flights.store
//       --query "COUNT(*) WHERE origin = S3 AND dest = S7"
//
// --store loads a SourceStore directory (summaries + sample companions)
// and routes every query through the engine's hybrid QueryRouter, printing
// which source — summary or sample — answered and why (coverage, the
// summary-vs-sample variance comparison, fallback). A sharded (MANIFEST
// v3) directory loads the same way — EntropyEngine::Open dispatches — and
// each query prints ONE route line PER SHARD: the fan-out picks the best
// source independently inside every shard before the estimates merge.
// Without --query, reads one query per line from stdin (a tiny REPL).
//
// The dialect covers COUNT/SUM/AVG plus QUANTILE(attr, q) and
// TOPK(attr, k). With --join PATH a second (RIGHT) relation loads and the
// shell switches to the two-relation dialect:
//
//   entropydb_query --store flights.store --join carriers.store \
//       --query "COUNT(*) ON carrier WHERE left.distance BETWEEN 100 AND 500"

#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <string>

#include "entropydb.h"

using namespace entropydb;

namespace {

/// One route line for a decision made against `store` (a monolithic store,
/// or one shard of a sharded store). `label` prefixes the line — "routed"
/// for the monolithic path, "shard K" for per-shard printing.
void PrintStoreRoute(const std::vector<std::string>& names,
                     const SourceStore& store, const RouteDecision& dec,
                     const std::string& label) {
  if (dec.pruned) {
    std::fprintf(stderr,
                 "  %s: pruned — zone map on %s proves no row can match\n",
                 label.c_str(), names[dec.pruned_attr].c_str());
    return;
  }
  if (dec.from_sample) {
    const SampleEntry& entry = store.sample_entry(dec.sample_index);
    std::fprintf(stderr,
                 "  %s: sample %zu %s — sample variance %.3g beats "
                 "summary %zu's %.3g\n",
                 label.c_str(), dec.sample_index, entry.sample->name.c_str(),
                 dec.sample_variance, dec.index, dec.summary_variance);
    return;
  }
  const StoreEntry& entry = store.entry(dec.index);
  std::string pairs;
  for (const ScoredPair& p : entry.pairs) {
    if (!pairs.empty()) pairs += ", ";
    pairs += "(" + names[p.a] + ", " + names[p.b] + ")";
  }
  if (dec.fallback) {
    std::fprintf(stderr,
                 "  %s: summary %zu %s — fallback (no summary models "
                 "the constrained pairs)\n",
                 label.c_str(), dec.index, pairs.c_str());
  } else {
    std::fprintf(stderr,
                 "  %s: summary %zu %s — covers %zu pair%s"
                 " (%zu candidate%s, variance %.3g)\n",
                 label.c_str(), dec.index, pairs.c_str(), dec.covered_pairs,
                 dec.covered_pairs == 1 ? "" : "s", dec.candidates,
                 dec.candidates == 1 ? "" : "s", dec.expected_variance);
  }
  if (store.num_samples() > 0 &&
      dec.sample_variance < std::numeric_limits<double>::infinity()) {
    // The comparison objective is the COUNT variance on both sides (for
    // aggregates dec.expected_variance is the aggregate's own variance,
    // which is not what the router compared).
    std::fprintf(stderr,
                 "          (summary kept it: count variance %.3g vs best "
                 "sample %.3g)\n",
                 dec.summary_variance, dec.sample_variance);
  }
}

void PrintRoute(const EntropyEngine& engine, const RouteDecision& dec) {
  if (!engine.is_store() || engine.is_sharded()) return;
  PrintStoreRoute(engine.attr_names(), *engine.store(), dec, "routed");
}

/// Sharded stores print one route line per shard: the whole point of
/// per-shard routing is that the best source can differ shard to shard.
void PrintShardRoutes(const EntropyEngine& engine,
                      const std::vector<RouteDecision>& decs) {
  for (size_t s = 0; s < decs.size(); ++s) {
    PrintStoreRoute(engine.attr_names(), engine.sharded()->shard(s), decs[s],
                    "shard " + std::to_string(s));
  }
  // The per-query pruning summary: how much of the fan-out the zone maps
  // saved, and which attribute did the proving.
  size_t pruned = 0;
  AttrId pruned_attr = 0;
  for (const RouteDecision& d : decs) {
    if (d.pruned && pruned++ == 0) pruned_attr = d.pruned_attr;
  }
  if (pruned > 0) {
    std::fprintf(stderr, "  pruned %zu/%zu shards via zone map on %s\n",
                 pruned, decs.size(),
                 engine.attr_names()[pruned_attr].c_str());
  }
}

int RunOne(const EntropyEngine& engine, const std::string& text) {
  auto parsed = ParseQuery(text, engine.attr_names(), engine.domains());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  // Bucket-representative weights (midpoints / label order index for
  // categorical attributes) — the same rule the server applies.
  const AttrId agg = parsed->agg_attr;
  AggregateQuery query;
  switch (parsed->aggregate) {
    case ParsedQuery::Aggregate::kCount:
      query = AggregateQuery::Count(parsed->where);
      break;
    case ParsedQuery::Aggregate::kSum:
      query = AggregateQuery::Sum(agg, BucketWeights(engine.domains()[agg]),
                                  parsed->where);
      break;
    case ParsedQuery::Aggregate::kAvg:
      query = AggregateQuery::Avg(agg, BucketWeights(engine.domains()[agg]),
                                  parsed->where);
      break;
    case ParsedQuery::Aggregate::kQuantile:
      query = AggregateQuery::Quantile(agg,
                                       BucketWeights(engine.domains()[agg]),
                                       parsed->quantile, parsed->where);
      break;
    case ParsedQuery::Aggregate::kTopK:
      query = AggregateQuery::TopK(agg, parsed->top_k, parsed->where);
      break;
  }
  Timer timer;
  RouteDecision dec;
  // COUNT/SUM/AVG on sharded engines answer through the sharded store
  // directly so the per-shard routing decisions are available for
  // printing; QUANTILE/TOPK derive at the engine facade either way.
  std::vector<RouteDecision> shard_decs;
  const bool per_shard =
      engine.is_sharded() &&
      (query.kind == AggregateKind::kCount ||
       query.kind == AggregateKind::kSum || query.kind == AggregateKind::kAvg);
  auto res = per_shard ? engine.sharded()->Answer(query, &shard_decs)
                       : engine.Answer(query, &dec);
  if (!res.ok()) {
    std::fprintf(stderr, "answer: %s\n", res.status().ToString().c_str());
    return 1;
  }
  const double ms = timer.ElapsedMillis();
  switch (parsed->aggregate) {
    case ParsedQuery::Aggregate::kCount: {
      auto [lo, hi] = res->estimate.ConfidenceInterval(1.96, engine.n());
      std::printf("%.1f    (95%% CI [%.1f, %.1f], %.2f ms)\n",
                  res->estimate.expectation, lo, hi, ms);
      break;
    }
    case ParsedQuery::Aggregate::kSum:
    case ParsedQuery::Aggregate::kAvg:
      std::printf("%.3f    (+/- %.3f, %.2f ms)\n",
                  res->estimate.expectation, 1.96 * res->estimate.StdDev(),
                  ms);
      break;
    case ParsedQuery::Aggregate::kQuantile:
      std::printf("%.3f    (95%% bound [%.3f, %.3f], %.2f ms)\n",
                  res->estimate.expectation, res->bound_lo, res->bound_hi,
                  ms);
      break;
    case ParsedQuery::Aggregate::kTopK: {
      const Domain& dom = engine.domains()[agg];
      std::printf("top %zu of %s (%.2f ms):\n", res->cells.size(),
                  engine.attr_names()[agg].c_str(), ms);
      for (const GroupCell& cell : res->cells) {
        std::printf("  %-16s %.1f    (+/- %.1f)\n",
                    dom.LabelFor(cell.code).c_str(),
                    cell.estimate.expectation,
                    1.96 * cell.estimate.StdDev());
      }
      break;
    }
  }
  if (per_shard) {
    PrintShardRoutes(engine, shard_decs);
  } else {
    PrintRoute(engine, dec);
  }
  return 0;
}

/// --join mode: this engine is the LEFT relation, `right` the RIGHT; the
/// fused estimate comes from EntropyEngine::AnswerJoin (docs/ESTIMATORS.md
/// "Join fusion").
int RunOneJoin(const EntropyEngine& left, const EntropyEngine& right,
               const std::string& text) {
  auto parsed = ParseJoinQuery(text, left.attr_names(), left.domains(),
                               right.attr_names(), right.domains());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  AggregateQuery query =
      parsed->aggregate == ParsedJoinQuery::Aggregate::kCount
          ? AggregateQuery::JoinCount(parsed->left_join, parsed->right_join,
                                      parsed->left_where, parsed->right_where)
          : AggregateQuery::JoinSum(
                parsed->agg_attr,
                BucketWeights(left.domains()[parsed->agg_attr]),
                parsed->left_join, parsed->right_join, parsed->left_where,
                parsed->right_where);
  Timer timer;
  auto res = left.AnswerJoin(query, right);
  if (!res.ok()) {
    std::fprintf(stderr, "answer: %s\n", res.status().ToString().c_str());
    return 1;
  }
  std::printf("%.1f    (+/- %.1f, %.2f ms)\n", res->estimate.expectation,
              1.96 * res->estimate.StdDev(), timer.ElapsedMillis());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    args[argv[i] + 2] = argv[i + 1];
  }
  if (!args.count("summary") && !args.count("store")) {
    std::fprintf(stderr,
                 "usage: entropydb_query (--summary FILE | --store DIR) "
                 "[--join PATH] [--query Q]\n");
    return 2;
  }
  const std::string path =
      args.count("store") ? args["store"] : args["summary"];
  auto engine = EntropyEngine::Open(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "load: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  // --join switches the shell to the two-relation dialect: the main path
  // is the LEFT relation, --join names the RIGHT.
  std::shared_ptr<EntropyEngine> right;
  if (args.count("join")) {
    auto opened = EntropyEngine::Open(args["join"]);
    if (!opened.ok()) {
      std::fprintf(stderr, "load join relation: %s\n",
                   opened.status().ToString().c_str());
      return 1;
    }
    right = *opened;
    if (!right->has_domains()) {
      std::fprintf(stderr,
                   "join relation has no domain metadata; rebuild it with "
                   "entropydb_build\n");
      return 1;
    }
  }
  if (!(*engine)->has_domains()) {
    std::fprintf(stderr,
                 "summary has no domain metadata; rebuild it with "
                 "entropydb_build\n");
    return 1;
  }
  if ((*engine)->is_sharded()) {
    const ShardedStore& sharded = *(*engine)->sharded();
    std::string scheme_desc = PartitionSchemeName(sharded.scheme());
    if (sharded.scheme() == PartitionScheme::kAttribute) {
      scheme_desc +=
          ":" + (*engine)->attr_names()[sharded.partition_attr()];
    }
    size_t with_zone_maps = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      with_zone_maps += sharded.zone_map(s) != nullptr ? 1 : 0;
    }
    std::fprintf(stderr,
                 "loaded sharded store: %zu shards (%s partitioning, "
                 "%zu with zone maps, compaction generation %llu), "
                 "%zu summaries + %zu samples total, n = %.0f\n",
                 sharded.num_shards(), scheme_desc.c_str(), with_zone_maps,
                 static_cast<unsigned long long>(sharded.compaction_gen()),
                 (*engine)->num_summaries(), (*engine)->num_samples(),
                 (*engine)->n());
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      const SourceStore& shard = sharded.shard(s);
      std::fprintf(stderr, "  shard %zu: %zu summaries + %zu samples, "
                   "n = %.0f\n",
                   s, shard.size(), shard.num_samples(), shard.n());
    }
  } else if ((*engine)->is_store()) {
    std::fprintf(stderr, "loaded store: %zu summaries + %zu samples, "
                 "n = %.0f\n",
                 (*engine)->num_summaries(), (*engine)->num_samples(),
                 (*engine)->n());
    for (size_t k = 0; k < (*engine)->num_summaries(); ++k) {
      const StoreEntry& e = (*engine)->store()->entry(k);
      std::fprintf(stderr, "  summary %zu:", k);
      for (const ScoredPair& p : e.pairs) {
        std::fprintf(stderr, " (%s, %s) V=%.3f",
                     (*engine)->attr_names()[p.a].c_str(),
                     (*engine)->attr_names()[p.b].c_str(), p.cramers_v);
      }
      std::fprintf(stderr, "%s\n",
                   k == (*engine)->store()->widest() ? "  [fallback]" : "");
    }
    for (size_t s = 0; s < (*engine)->num_samples(); ++s) {
      const SampleEntry& e = (*engine)->store()->sample_entry(s);
      std::fprintf(stderr, "  sample %zu: %s,", s, e.sample->name.c_str());
      // Stratification pairs from the manifest metadata (uniform samples
      // carry none).
      for (const ScoredPair& p : e.pairs) {
        std::fprintf(stderr, " stratified on (%s, %s) V=%.3f,",
                     (*engine)->attr_names()[p.a].c_str(),
                     (*engine)->attr_names()[p.b].c_str(), p.cramers_v);
      }
      std::fprintf(stderr, " %zu rows (fraction %.3g)\n", e.sample->size(),
                   e.sample->fraction);
    }
  } else {
    std::fprintf(stderr, "loaded summary: n = %.0f, attributes:",
                 (*engine)->n());
    for (const auto& name : (*engine)->attr_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
  }

  if (args.count("query")) {
    return right != nullptr ? RunOneJoin(**engine, *right, args["query"])
                            : RunOne(**engine, args["query"]);
  }
  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    if (std::string(StripWhitespace(line)).empty()) continue;
    rc = right != nullptr ? RunOneJoin(**engine, *right, line)
                          : RunOne(**engine, line);
  }
  return rc;
}
