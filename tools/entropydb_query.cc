// Command-line query shell over a persisted summary or summary store — no
// base data needed.
//
//   entropydb_query --summary flights.edb
//       --query "COUNT(*) WHERE origin = S3 AND distance BETWEEN 100 AND 500"
//
//   entropydb_query --store flights.store
//       --query "COUNT(*) WHERE origin = S3 AND dest = S7"
//
// --store loads a SourceStore directory (summaries + sample companions)
// and routes every query through the engine's hybrid QueryRouter, printing
// which source — summary or sample — answered and why (coverage, the
// summary-vs-sample variance comparison, fallback). A sharded (MANIFEST
// v3) directory loads the same way — EntropyEngine::Open dispatches — and
// each query prints ONE route line PER SHARD: the fan-out picks the best
// source independently inside every shard before the estimates merge.
// Without --query, reads one query per line from stdin (a tiny REPL).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <limits>
#include <map>
#include <string>

#include "entropydb.h"

using namespace entropydb;

namespace {

/// One route line for a decision made against `store` (a monolithic store,
/// or one shard of a sharded store). `label` prefixes the line — "routed"
/// for the monolithic path, "shard K" for per-shard printing.
void PrintStoreRoute(const std::vector<std::string>& names,
                     const SourceStore& store, const RouteDecision& dec,
                     const std::string& label) {
  if (dec.pruned) {
    std::fprintf(stderr,
                 "  %s: pruned — zone map on %s proves no row can match\n",
                 label.c_str(), names[dec.pruned_attr].c_str());
    return;
  }
  if (dec.from_sample) {
    const SampleEntry& entry = store.sample_entry(dec.sample_index);
    std::fprintf(stderr,
                 "  %s: sample %zu %s — sample variance %.3g beats "
                 "summary %zu's %.3g\n",
                 label.c_str(), dec.sample_index, entry.sample->name.c_str(),
                 dec.sample_variance, dec.index, dec.summary_variance);
    return;
  }
  const StoreEntry& entry = store.entry(dec.index);
  std::string pairs;
  for (const ScoredPair& p : entry.pairs) {
    if (!pairs.empty()) pairs += ", ";
    pairs += "(" + names[p.a] + ", " + names[p.b] + ")";
  }
  if (dec.fallback) {
    std::fprintf(stderr,
                 "  %s: summary %zu %s — fallback (no summary models "
                 "the constrained pairs)\n",
                 label.c_str(), dec.index, pairs.c_str());
  } else {
    std::fprintf(stderr,
                 "  %s: summary %zu %s — covers %zu pair%s"
                 " (%zu candidate%s, variance %.3g)\n",
                 label.c_str(), dec.index, pairs.c_str(), dec.covered_pairs,
                 dec.covered_pairs == 1 ? "" : "s", dec.candidates,
                 dec.candidates == 1 ? "" : "s", dec.expected_variance);
  }
  if (store.num_samples() > 0 &&
      dec.sample_variance < std::numeric_limits<double>::infinity()) {
    // The comparison objective is the COUNT variance on both sides (for
    // aggregates dec.expected_variance is the aggregate's own variance,
    // which is not what the router compared).
    std::fprintf(stderr,
                 "          (summary kept it: count variance %.3g vs best "
                 "sample %.3g)\n",
                 dec.summary_variance, dec.sample_variance);
  }
}

void PrintRoute(const EntropyEngine& engine, const RouteDecision& dec) {
  if (!engine.is_store() || engine.is_sharded()) return;
  PrintStoreRoute(engine.attr_names(), *engine.store(), dec, "routed");
}

/// Sharded stores print one route line per shard: the whole point of
/// per-shard routing is that the best source can differ shard to shard.
void PrintShardRoutes(const EntropyEngine& engine,
                      const std::vector<RouteDecision>& decs) {
  for (size_t s = 0; s < decs.size(); ++s) {
    PrintStoreRoute(engine.attr_names(), engine.sharded()->shard(s), decs[s],
                    "shard " + std::to_string(s));
  }
  // The per-query pruning summary: how much of the fan-out the zone maps
  // saved, and which attribute did the proving.
  size_t pruned = 0;
  AttrId pruned_attr = 0;
  for (const RouteDecision& d : decs) {
    if (d.pruned && pruned++ == 0) pruned_attr = d.pruned_attr;
  }
  if (pruned > 0) {
    std::fprintf(stderr, "  pruned %zu/%zu shards via zone map on %s\n",
                 pruned, decs.size(),
                 engine.attr_names()[pruned_attr].c_str());
  }
}

int RunOne(const EntropyEngine& engine, const std::string& text) {
  auto parsed = ParseQuery(text, engine.attr_names(), engine.domains());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Timer timer;
  RouteDecision dec;
  // Sharded engines answer through the sharded store directly so the
  // per-shard routing decisions are available for printing.
  std::vector<RouteDecision> shard_decs;
  switch (parsed->aggregate) {
    case ParsedQuery::Aggregate::kCount: {
      auto est = engine.is_sharded()
                     ? engine.sharded()->AnswerCount(parsed->where,
                                                     &shard_decs)
                     : engine.AnswerCount(parsed->where, &dec);
      if (!est.ok()) {
        std::fprintf(stderr, "answer: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      auto [lo, hi] = est->ConfidenceInterval(1.96, engine.n());
      std::printf("%.1f    (95%% CI [%.1f, %.1f], %.2f ms)\n",
                  est->expectation, lo, hi, timer.ElapsedMillis());
      if (engine.is_sharded()) {
        PrintShardRoutes(engine, shard_decs);
      } else {
        PrintRoute(engine, dec);
      }
      return 0;
    }
    case ParsedQuery::Aggregate::kSum:
    case ParsedQuery::Aggregate::kAvg: {
      // Weights = bucket representatives (midpoints / label order index
      // for categorical attributes).
      const Domain& dom = engine.domains()[parsed->agg_attr];
      std::vector<double> weights(dom.size());
      for (Code v = 0; v < dom.size(); ++v) {
        weights[v] = dom.is_categorical()
                         ? static_cast<double>(v)
                         : dom.RepresentativeFor(v).as_double();
      }
      const bool is_sum = parsed->aggregate == ParsedQuery::Aggregate::kSum;
      auto est = [&]() -> Result<QueryEstimate> {
        if (engine.is_sharded()) {
          return is_sum
                     ? engine.sharded()->AnswerSum(parsed->agg_attr, weights,
                                                   parsed->where, &shard_decs)
                     : engine.sharded()->AnswerAvg(parsed->agg_attr, weights,
                                                   parsed->where, &shard_decs);
        }
        return is_sum ? engine.AnswerSum(parsed->agg_attr, weights,
                                         parsed->where, &dec)
                      : engine.AnswerAvg(parsed->agg_attr, weights,
                                         parsed->where, &dec);
      }();
      if (!est.ok()) {
        std::fprintf(stderr, "answer: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      std::printf("%.3f    (+/- %.3f, %.2f ms)\n", est->expectation,
                  1.96 * est->StdDev(), timer.ElapsedMillis());
      if (engine.is_sharded()) {
        PrintShardRoutes(engine, shard_decs);
      } else {
        PrintRoute(engine, dec);
      }
      return 0;
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    args[argv[i] + 2] = argv[i + 1];
  }
  if (!args.count("summary") && !args.count("store")) {
    std::fprintf(
        stderr,
        "usage: entropydb_query (--summary FILE | --store DIR) [--query Q]\n");
    return 2;
  }
  const std::string path =
      args.count("store") ? args["store"] : args["summary"];
  auto engine = EntropyEngine::Open(path);
  if (!engine.ok()) {
    std::fprintf(stderr, "load: %s\n", engine.status().ToString().c_str());
    return 1;
  }
  if (!(*engine)->has_domains()) {
    std::fprintf(stderr,
                 "summary has no domain metadata; rebuild it with "
                 "entropydb_build\n");
    return 1;
  }
  if ((*engine)->is_sharded()) {
    const ShardedStore& sharded = *(*engine)->sharded();
    std::string scheme_desc = PartitionSchemeName(sharded.scheme());
    if (sharded.scheme() == PartitionScheme::kAttribute) {
      scheme_desc +=
          ":" + (*engine)->attr_names()[sharded.partition_attr()];
    }
    size_t with_zone_maps = 0;
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      with_zone_maps += sharded.zone_map(s) != nullptr ? 1 : 0;
    }
    std::fprintf(stderr,
                 "loaded sharded store: %zu shards (%s partitioning, "
                 "%zu with zone maps, compaction generation %llu), "
                 "%zu summaries + %zu samples total, n = %.0f\n",
                 sharded.num_shards(), scheme_desc.c_str(), with_zone_maps,
                 static_cast<unsigned long long>(sharded.compaction_gen()),
                 (*engine)->num_summaries(), (*engine)->num_samples(),
                 (*engine)->n());
    for (size_t s = 0; s < sharded.num_shards(); ++s) {
      const SourceStore& shard = sharded.shard(s);
      std::fprintf(stderr, "  shard %zu: %zu summaries + %zu samples, "
                   "n = %.0f\n",
                   s, shard.size(), shard.num_samples(), shard.n());
    }
  } else if ((*engine)->is_store()) {
    std::fprintf(stderr, "loaded store: %zu summaries + %zu samples, "
                 "n = %.0f\n",
                 (*engine)->num_summaries(), (*engine)->num_samples(),
                 (*engine)->n());
    for (size_t k = 0; k < (*engine)->num_summaries(); ++k) {
      const StoreEntry& e = (*engine)->store()->entry(k);
      std::fprintf(stderr, "  summary %zu:", k);
      for (const ScoredPair& p : e.pairs) {
        std::fprintf(stderr, " (%s, %s) V=%.3f",
                     (*engine)->attr_names()[p.a].c_str(),
                     (*engine)->attr_names()[p.b].c_str(), p.cramers_v);
      }
      std::fprintf(stderr, "%s\n",
                   k == (*engine)->store()->widest() ? "  [fallback]" : "");
    }
    for (size_t s = 0; s < (*engine)->num_samples(); ++s) {
      const SampleEntry& e = (*engine)->store()->sample_entry(s);
      std::fprintf(stderr, "  sample %zu: %s,", s, e.sample->name.c_str());
      // Stratification pairs from the manifest metadata (uniform samples
      // carry none).
      for (const ScoredPair& p : e.pairs) {
        std::fprintf(stderr, " stratified on (%s, %s) V=%.3f,",
                     (*engine)->attr_names()[p.a].c_str(),
                     (*engine)->attr_names()[p.b].c_str(), p.cramers_v);
      }
      std::fprintf(stderr, " %zu rows (fraction %.3g)\n", e.sample->size(),
                   e.sample->fraction);
    }
  } else {
    std::fprintf(stderr, "loaded summary: n = %.0f, attributes:",
                 (*engine)->n());
    for (const auto& name : (*engine)->attr_names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
  }

  if (args.count("query")) {
    return RunOne(**engine, args["query"]);
  }
  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    if (std::string(StripWhitespace(line)).empty()) continue;
    rc = RunOne(**engine, line);
  }
  return rc;
}
