// Command-line query shell over a persisted summary — no base data needed.
//
//   entropydb_query --summary flights.edb
//       --query "COUNT(*) WHERE origin = S3 AND distance BETWEEN 100 AND 500"
//
// Without --query, reads one query per line from stdin (a tiny REPL).

#include <cstdio>
#include <cstring>
#include <iostream>
#include <map>
#include <string>

#include "entropydb.h"

using namespace entropydb;

namespace {

int RunOne(const EntropySummary& summary, const std::string& text) {
  auto parsed =
      ParseQuery(text, summary.attr_names(), summary.domains());
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  Timer timer;
  switch (parsed->aggregate) {
    case ParsedQuery::Aggregate::kCount: {
      auto est = summary.AnswerCount(parsed->where);
      if (!est.ok()) {
        std::fprintf(stderr, "answer: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      auto [lo, hi] = est->ConfidenceInterval(1.96, summary.n());
      std::printf("%.1f    (95%% CI [%.1f, %.1f], %.2f ms)\n",
                  est->expectation, lo, hi, timer.ElapsedMillis());
      return 0;
    }
    case ParsedQuery::Aggregate::kSum:
    case ParsedQuery::Aggregate::kAvg: {
      // Weights = bucket representatives (midpoints / label order index
      // for categorical attributes).
      const Domain& dom = summary.domains()[parsed->agg_attr];
      std::vector<double> weights(dom.size());
      for (Code v = 0; v < dom.size(); ++v) {
        weights[v] = dom.is_categorical()
                         ? static_cast<double>(v)
                         : dom.RepresentativeFor(v).as_double();
      }
      auto est = parsed->aggregate == ParsedQuery::Aggregate::kSum
                     ? summary.AnswerSum(parsed->agg_attr, weights,
                                         parsed->where)
                     : summary.AnswerAvg(parsed->agg_attr, weights,
                                         parsed->where);
      if (!est.ok()) {
        std::fprintf(stderr, "answer: %s\n",
                     est.status().ToString().c_str());
        return 1;
      }
      std::printf("%.3f    (%.2f ms)\n", est->expectation,
                  timer.ElapsedMillis());
      return 0;
    }
  }
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) break;
    args[argv[i] + 2] = argv[i + 1];
  }
  if (!args.count("summary")) {
    std::fprintf(stderr,
                 "usage: entropydb_query --summary FILE [--query Q]\n");
    return 2;
  }
  auto summary = EntropySummary::Load(args["summary"]);
  if (!summary.ok()) {
    std::fprintf(stderr, "load: %s\n", summary.status().ToString().c_str());
    return 1;
  }
  if (!(*summary)->has_domains()) {
    std::fprintf(stderr,
                 "summary has no domain metadata; rebuild it with "
                 "entropydb_build\n");
    return 1;
  }
  std::fprintf(stderr, "loaded summary: n = %.0f, attributes:",
               (*summary)->n());
  for (const auto& name : (*summary)->attr_names()) {
    std::fprintf(stderr, " %s", name.c_str());
  }
  std::fprintf(stderr, "\n");

  if (args.count("query")) {
    return RunOne(**summary, args["query"]);
  }
  std::string line;
  int rc = 0;
  while (std::getline(std::cin, line)) {
    if (std::string(StripWhitespace(line)).empty()) continue;
    rc = RunOne(**summary, line);
  }
  return rc;
}
