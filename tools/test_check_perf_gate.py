#!/usr/bin/env python3
"""Unit tests for check_perf_gate.py (stdlib only; run via
`python3 -m unittest discover -s tools`)."""

import json
import os
import tempfile
import unittest

import check_perf_gate


def index_gate(**overrides):
    gate = {
        "bitwise_identical": True,
        "selective": {"indexed_ns": 1000.0, "scan_ns": 25000.0,
                      "speedup": 25.0},
        "broad": {"indexed_ns": 9000.0, "scan_ns": 9000.0, "speedup": 1.0},
    }
    gate.update(overrides)
    return gate


def shard_gate(**overrides):
    gate = {
        "cores": 4,
        "rows": 160000,
        "shards": 4,
        "build": {"s1_seconds": 0.080, "sharded_seconds": 0.030,
                  "speedup": 2.67},
        "merge": {"queries": 64, "count_max_rel_err": 0.0,
                  "sum_max_rel_err": 0.0},
        "pass": True,
    }
    gate.update(overrides)
    return gate


class SampleIndexGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_sample_index(index_gate()), [])

    def test_bitwise_mismatch_fails(self):
        failures = check_perf_gate.check_sample_index(
            index_gate(bitwise_identical=False))
        self.assertTrue(any("bitwise" in f for f in failures))

    def test_slow_selective_fails(self):
        gate = index_gate()
        gate["selective"]["indexed_ns"] = gate["selective"]["scan_ns"] + 1
        failures = check_perf_gate.check_sample_index(gate)
        self.assertTrue(any("selective" in f for f in failures))

    def test_broad_overhead_beyond_tolerance_fails(self):
        gate = index_gate()
        gate["broad"]["indexed_ns"] = 2.0 * gate["broad"]["scan_ns"]
        failures = check_perf_gate.check_sample_index(gate, tolerance=1.25)
        self.assertTrue(any("broad" in f for f in failures))
        self.assertEqual(
            check_perf_gate.check_sample_index(gate, tolerance=2.5), [])

    def test_missing_sections_fail_instead_of_passing_silently(self):
        gate = index_gate()
        del gate["selective"]
        failures = check_perf_gate.check_sample_index(gate)
        self.assertTrue(any("missing selective" in f for f in failures))


class ShardScalingGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_shard_scaling(shard_gate()), [])

    def test_merge_drift_fails(self):
        gate = shard_gate()
        gate["merge"]["count_max_rel_err"] = 1e-6
        failures = check_perf_gate.check_shard_scaling(gate)
        self.assertTrue(any("count_max_rel_err" in f for f in failures))

    def test_sum_drift_fails(self):
        gate = shard_gate()
        gate["merge"]["sum_max_rel_err"] = 2e-9
        failures = check_perf_gate.check_shard_scaling(gate)
        self.assertTrue(any("sum_max_rel_err" in f for f in failures))

    def test_slow_parallel_build_fails_on_multicore(self):
        gate = shard_gate()
        gate["build"]["sharded_seconds"] = gate["build"]["s1_seconds"] * 1.5
        failures = check_perf_gate.check_shard_scaling(gate)
        self.assertTrue(any("not faster" in f for f in failures))

    def test_single_core_skips_the_wall_clock_bar(self):
        # On one core the fan-out degrades inline and does strictly more
        # total work; only the merge bar is enforceable there.
        gate = shard_gate(cores=1)
        gate["build"]["sharded_seconds"] = gate["build"]["s1_seconds"] * 1.5
        self.assertEqual(check_perf_gate.check_shard_scaling(gate), [])

    def test_missing_fields_fail_instead_of_passing_silently(self):
        gate = shard_gate()
        del gate["merge"]["sum_max_rel_err"]
        failures = check_perf_gate.check_shard_scaling(gate)
        self.assertTrue(any("missing merge.sum_max_rel_err" in f
                            for f in failures))
        gate = shard_gate()
        del gate["cores"]
        failures = check_perf_gate.check_shard_scaling(gate)
        self.assertTrue(any("missing cores" in f for f in failures))


def durability_gate(**overrides):
    gate = {
        "rows": 100000,
        "save_seconds": 0.050,
        "open": {"verified_seconds": 0.0205, "unverified_seconds": 0.0200,
                 "overhead_ratio": 1.025},
        "wal": {"synced_records_per_sec": 900.0,
                "unsynced_records_per_sec": 400000.0,
                "bytes_per_record": 1024},
        "pass": True,
    }
    gate.update(overrides)
    return gate


class DurabilityGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_durability(durability_gate()),
                         [])

    def test_open_overhead_beyond_tolerance_fails(self):
        gate = durability_gate()
        gate["open"]["overhead_ratio"] = 1.20
        failures = check_perf_gate.check_durability(gate)
        self.assertTrue(any("verification overhead" in f for f in failures))
        self.assertEqual(
            check_perf_gate.check_durability(gate, open_tolerance=1.5), [])

    def test_missing_fields_fail_instead_of_passing_silently(self):
        gate = durability_gate()
        del gate["open"]["overhead_ratio"]
        failures = check_perf_gate.check_durability(gate)
        self.assertTrue(any("missing open.overhead_ratio" in f
                            for f in failures))
        gate = durability_gate()
        del gate["wal"]
        failures = check_perf_gate.check_durability(gate)
        self.assertTrue(any("missing wal.synced_records_per_sec" in f
                            for f in failures))


def prune_gate(**overrides):
    gate = {
        "shards": 16,
        "rows": 120000,
        "identical": True,
        "selective": {"pruned_ns": 4000.0, "full_ns": 52000.0,
                      "speedup": 13.0, "avg_pruned_shards": 15.0},
        "moderate": {"pruned_ns": 28000.0, "full_ns": 52000.0,
                     "speedup": 1.86, "avg_pruned_shards": 8.0},
        "broad": {"pruned_ns": 52000.0, "full_ns": 52000.0,
                  "speedup": 1.0, "avg_pruned_shards": 0.0},
        "pass": True,
    }
    gate.update(overrides)
    return gate


class PruneGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_prune(prune_gate()), [])

    def test_bitwise_mismatch_fails(self):
        failures = check_perf_gate.check_prune(prune_gate(identical=False))
        self.assertTrue(any("bitwise" in f for f in failures))

    def test_slow_selective_fails(self):
        gate = prune_gate()
        gate["selective"]["pruned_ns"] = gate["selective"]["full_ns"] + 1
        failures = check_perf_gate.check_prune(gate)
        self.assertTrue(any("selective" in f for f in failures))

    def test_broad_overhead_beyond_tolerance_fails(self):
        gate = prune_gate()
        gate["broad"]["pruned_ns"] = 2.0 * gate["broad"]["full_ns"]
        failures = check_perf_gate.check_prune(gate, prune_tolerance=1.25)
        self.assertTrue(any("broad" in f for f in failures))
        self.assertEqual(
            check_perf_gate.check_prune(gate, prune_tolerance=2.5), [])

    def test_missing_sections_fail_instead_of_passing_silently(self):
        gate = prune_gate()
        del gate["moderate"]
        failures = check_perf_gate.check_prune(gate)
        self.assertTrue(any("missing moderate" in f for f in failures))
        gate = prune_gate()
        del gate["shards"]
        failures = check_perf_gate.check_prune(gate)
        self.assertTrue(any("missing shards" in f for f in failures))


def compact_gate(**overrides):
    gate = {
        "base_rows": 60000,
        "batches": 12,
        "batch_rows": 2000,
        "pre_shards": 16,
        "post_shards": 6,
        "compact_seconds": 0.8,
        "merge_max_rel_err": 7e-14,
        "pre_ns": 6500.0,
        "post_ns": 900.0,
        "speedup": 7.2,
        "pass": True,
    }
    gate.update(overrides)
    return gate


class CompactGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_compact(compact_gate()), [])

    def test_merge_drift_fails(self):
        failures = check_perf_gate.check_compact(
            compact_gate(merge_max_rel_err=1e-6))
        self.assertTrue(any("merge_max_rel_err" in f for f in failures))

    def test_slow_compacted_store_fails(self):
        gate = compact_gate()
        gate["post_ns"] = gate["pre_ns"] + 1
        failures = check_perf_gate.check_compact(gate)
        self.assertTrue(any("not faster" in f for f in failures))

    def test_equal_latency_fails(self):
        # Compaction removed shards; "no worse" is not good enough — the
        # bar is strict, like the pruning selective bar.
        gate = compact_gate()
        gate["post_ns"] = gate["pre_ns"]
        failures = check_perf_gate.check_compact(gate)
        self.assertTrue(any("not faster" in f for f in failures))

    def test_missing_fields_fail_instead_of_passing_silently(self):
        gate = compact_gate()
        del gate["merge_max_rel_err"]
        failures = check_perf_gate.check_compact(gate)
        self.assertTrue(any("missing merge_max_rel_err" in f
                            for f in failures))
        gate = compact_gate()
        del gate["post_ns"]
        failures = check_perf_gate.check_compact(gate)
        self.assertTrue(any("missing post_ns" in f for f in failures))


def serving_gate(**overrides):
    gate = {
        "rows": 10000,
        "requests": 400,
        "latency": {"uncached_ns": 5200000.0, "p50_ns": 4800000.0,
                    "p99_ns": 9100000.0, "cached_ns": 90000.0,
                    "cache_speedup": 57.8},
        "throughput": {"qps_1": 190.0, "qps_4": 210.0, "qps_8": 215.0,
                       "batched_qps_8": 820.0, "batch_speedup": 3.81},
        "cores": 1,
        "pass": True,
    }
    gate.update(overrides)
    return gate


class ServingGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_serving(serving_gate()), [])

    def test_weak_cache_speedup_fails(self):
        gate = serving_gate()
        gate["latency"]["cache_speedup"] = 4.0
        failures = check_perf_gate.check_serving(gate)
        self.assertTrue(any("result-cache hit" in f for f in failures))

    def test_batching_below_serial_fails(self):
        gate = serving_gate()
        gate["throughput"]["batch_speedup"] = 0.8
        failures = check_perf_gate.check_serving(gate)
        self.assertTrue(any("batched throughput" in f for f in failures))

    def test_break_even_batching_passes(self):
        # The bar is >= serial: batching must never COST throughput, but
        # on one core it is allowed to merely break even.
        gate = serving_gate()
        gate["throughput"]["batch_speedup"] = 1.0
        self.assertEqual(check_perf_gate.check_serving(gate), [])

    def test_missing_sections_fail_instead_of_passing_silently(self):
        gate = serving_gate()
        del gate["latency"]["cache_speedup"]
        failures = check_perf_gate.check_serving(gate)
        self.assertTrue(any("missing latency.cache_speedup" in f
                            for f in failures))
        gate = serving_gate()
        del gate["throughput"]
        failures = check_perf_gate.check_serving(gate)
        self.assertTrue(any("missing throughput.qps_8" in f
                            for f in failures))


def join_gate(**overrides):
    gate = {
        "left_rows": 100000,
        "right_rows": 50000,
        "queries": 48,
        "fidelity": {"count_max_rel_err": 2e-6, "sum_max_rel_err": 5e-6},
        "latency": {"fused_ns": 40000.0, "exact_ns": 900000.0,
                    "speedup": 22.5},
        "pass": True,
    }
    gate.update(overrides)
    return gate


class JoinGateTest(unittest.TestCase):
    def test_healthy_gate_passes(self):
        self.assertEqual(check_perf_gate.check_join(join_gate()), [])

    def test_count_fidelity_drift_fails(self):
        gate = join_gate()
        gate["fidelity"]["count_max_rel_err"] = 1e-2
        failures = check_perf_gate.check_join(gate)
        self.assertTrue(any("drifted from brute-force ground truth" in f
                            for f in failures))
        self.assertTrue(any("count_max_rel_err" in f for f in failures))

    def test_sum_fidelity_drift_fails(self):
        gate = join_gate()
        gate["fidelity"]["sum_max_rel_err"] = 1e-3
        failures = check_perf_gate.check_join(gate)
        self.assertTrue(any("sum_max_rel_err" in f for f in failures))

    def test_fused_not_beating_exact_fails(self):
        gate = join_gate()
        gate["latency"]["fused_ns"] = gate["latency"]["exact_ns"]
        failures = check_perf_gate.check_join(gate)
        self.assertTrue(any("not faster than the exact two-sided scan" in f
                            for f in failures))

    def test_missing_fields_fail_instead_of_passing_silently(self):
        gate = join_gate()
        del gate["fidelity"]["count_max_rel_err"]
        failures = check_perf_gate.check_join(gate)
        self.assertTrue(any("missing fidelity.count_max_rel_err" in f
                            for f in failures))
        gate = join_gate()
        del gate["latency"]["fused_ns"]
        failures = check_perf_gate.check_join(gate)
        self.assertTrue(any("missing latency.fused_ns" in f
                            for f in failures))


class MainTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            json.dump(payload, f)
        return p

    def test_both_gates_pass(self):
        idx = self.write("index.json", index_gate())
        shard = self.write("shard.json", shard_gate())
        self.assertEqual(check_perf_gate.main([idx, "--shard", shard]), 0)

    def test_index_gate_alone_still_works(self):
        idx = self.write("index.json", index_gate())
        self.assertEqual(check_perf_gate.main([idx]), 0)

    def test_partially_written_gate_files_fail_without_crashing(self):
        # A bench killed mid-write leaves half a JSON section; main() must
        # reach the FAIL diagnostics, not die printing the summary.
        partial_idx = index_gate()
        del partial_idx["selective"]["scan_ns"]
        idx = self.write("index.json", partial_idx)
        partial_shard = shard_gate()
        del partial_shard["build"]["sharded_seconds"]
        del partial_shard["merge"]["sum_max_rel_err"]
        shard = self.write("shard.json", partial_shard)
        self.assertEqual(check_perf_gate.main([idx, "--shard", shard]), 1)

    def test_failing_shard_gate_fails_the_run(self):
        idx = self.write("index.json", index_gate())
        bad = shard_gate()
        bad["merge"]["count_max_rel_err"] = 1.0
        shard = self.write("shard.json", bad)
        self.assertEqual(check_perf_gate.main([idx, "--shard", shard]), 1)

    def test_all_three_gates_pass(self):
        idx = self.write("index.json", index_gate())
        shard = self.write("shard.json", shard_gate())
        durability = self.write("durability.json", durability_gate())
        self.assertEqual(
            check_perf_gate.main(
                [idx, "--shard", shard, "--durability", durability]), 0)

    def test_failing_durability_gate_fails_the_run(self):
        idx = self.write("index.json", index_gate())
        bad = durability_gate()
        bad["open"]["overhead_ratio"] = 1.30
        durability = self.write("durability.json", bad)
        self.assertEqual(
            check_perf_gate.main([idx, "--durability", durability]), 1)

    def test_all_four_gates_pass(self):
        idx = self.write("index.json", index_gate())
        shard = self.write("shard.json", shard_gate())
        durability = self.write("durability.json", durability_gate())
        prune = self.write("prune.json", prune_gate())
        self.assertEqual(
            check_perf_gate.main(
                [idx, "--shard", shard, "--durability", durability,
                 "--prune", prune]), 0)

    def test_failing_prune_gate_fails_the_run(self):
        idx = self.write("index.json", index_gate())
        bad = prune_gate(identical=False)
        prune = self.write("prune.json", bad)
        self.assertEqual(check_perf_gate.main([idx, "--prune", prune]), 1)

    def test_all_five_gates_pass(self):
        idx = self.write("index.json", index_gate())
        shard = self.write("shard.json", shard_gate())
        durability = self.write("durability.json", durability_gate())
        prune = self.write("prune.json", prune_gate())
        compact = self.write("compact.json", compact_gate())
        self.assertEqual(
            check_perf_gate.main(
                [idx, "--shard", shard, "--durability", durability,
                 "--prune", prune, "--compact", compact]), 0)

    def test_failing_compact_gate_fails_the_run(self):
        idx = self.write("index.json", index_gate())
        bad = compact_gate(merge_max_rel_err=1.0)
        compact = self.write("compact.json", bad)
        self.assertEqual(check_perf_gate.main([idx, "--compact", compact]), 1)

    def test_partially_written_compact_gate_fails_without_crashing(self):
        idx = self.write("index.json", index_gate())
        partial = compact_gate()
        del partial["pre_ns"]
        del partial["merge_max_rel_err"]
        compact = self.write("compact.json", partial)
        self.assertEqual(check_perf_gate.main([idx, "--compact", compact]), 1)

    def test_all_six_gates_pass(self):
        idx = self.write("index.json", index_gate())
        shard = self.write("shard.json", shard_gate())
        durability = self.write("durability.json", durability_gate())
        prune = self.write("prune.json", prune_gate())
        compact = self.write("compact.json", compact_gate())
        serving = self.write("serving.json", serving_gate())
        self.assertEqual(
            check_perf_gate.main(
                [idx, "--shard", shard, "--durability", durability,
                 "--prune", prune, "--compact", compact,
                 "--serving", serving]), 0)

    def test_failing_serving_gate_fails_the_run(self):
        idx = self.write("index.json", index_gate())
        bad = serving_gate()
        bad["latency"]["cache_speedup"] = 2.0
        serving = self.write("serving.json", bad)
        self.assertEqual(check_perf_gate.main([idx, "--serving", serving]), 1)

    def test_partially_written_serving_gate_fails_without_crashing(self):
        idx = self.write("index.json", index_gate())
        partial = serving_gate()
        del partial["latency"]["uncached_ns"]
        del partial["throughput"]
        serving = self.write("serving.json", partial)
        self.assertEqual(check_perf_gate.main([idx, "--serving", serving]), 1)

    def test_all_seven_gates_pass(self):
        idx = self.write("index.json", index_gate())
        shard = self.write("shard.json", shard_gate())
        durability = self.write("durability.json", durability_gate())
        prune = self.write("prune.json", prune_gate())
        compact = self.write("compact.json", compact_gate())
        serving = self.write("serving.json", serving_gate())
        join = self.write("join.json", join_gate())
        self.assertEqual(
            check_perf_gate.main(
                [idx, "--shard", shard, "--durability", durability,
                 "--prune", prune, "--compact", compact,
                 "--serving", serving, "--join", join]), 0)

    def test_failing_join_gate_fails_the_run(self):
        idx = self.write("index.json", index_gate())
        bad = join_gate()
        bad["fidelity"]["count_max_rel_err"] = 1e-2
        join = self.write("join.json", bad)
        self.assertEqual(check_perf_gate.main([idx, "--join", join]), 1)

    def test_partially_written_join_gate_fails_without_crashing(self):
        idx = self.write("index.json", index_gate())
        partial = join_gate()
        del partial["latency"]
        del partial["fidelity"]["sum_max_rel_err"]
        join = self.write("join.json", partial)
        self.assertEqual(check_perf_gate.main([idx, "--join", join]), 1)

    def test_prune_tolerance_flag_is_honoured(self):
        idx = self.write("index.json", index_gate())
        loose = prune_gate()
        loose["broad"]["pruned_ns"] = 1.4 * loose["broad"]["full_ns"]
        prune = self.write("prune.json", loose)
        self.assertEqual(check_perf_gate.main([idx, "--prune", prune]), 1)
        self.assertEqual(
            check_perf_gate.main([idx, "--prune", prune,
                                  "--prune-tolerance", "1.5"]), 0)

    def test_open_tolerance_flag_is_honoured(self):
        idx = self.write("index.json", index_gate())
        loose = durability_gate()
        loose["open"]["overhead_ratio"] = 1.30
        durability = self.write("durability.json", loose)
        self.assertEqual(
            check_perf_gate.main([idx, "--durability", durability,
                                  "--open-tolerance", "1.5"]), 0)


if __name__ == "__main__":
    unittest.main()
