#!/usr/bin/env python3
"""Unit tests for check_markdown_links.py (stdlib only; run via
`python3 -m unittest discover -s tools`)."""

import os
import tempfile
import unittest

import check_markdown_links


class SlugifyTest(unittest.TestCase):
    def test_github_rules(self):
        self.assertEqual(check_markdown_links.slugify("Wire protocol"),
                         "wire-protocol")
        self.assertEqual(check_markdown_links.slugify("Serving & versioning"),
                         "serving--versioning")
        self.assertEqual(
            check_markdown_links.slugify("`OPEN` / `QUERY` commands"),
            "open--query-commands")
        self.assertEqual(
            check_markdown_links.slugify("Version lifecycle (publish -> GC)"),
            "version-lifecycle-publish---gc")
        self.assertEqual(
            check_markdown_links.slugify("A [link](docs/X.md) heading"),
            "a-link-heading")


class CheckerTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, text):
        p = os.path.join(self.dir.name, name)
        os.makedirs(os.path.dirname(p), exist_ok=True)
        with open(p, "w") as f:
            f.write(text)
        return p

    def check(self, path):
        return check_markdown_links.check_file(path, {})

    def test_resolving_links_and_anchors_pass(self):
        self.write("docs/SERVING.md",
                   "# Serving\n\n## Wire protocol\n\ntext\n")
        a = self.write(
            "README.md",
            "[spec](docs/SERVING.md)\n"
            "[framing](docs/SERVING.md#wire-protocol)\n"
            "[top](#intro)\n\n# Intro\n")
        self.assertEqual(self.check(a), [])

    def test_missing_file_is_reported(self):
        a = self.write("README.md", "[gone](docs/NOPE.md)\n")
        errors = self.check(a)
        self.assertEqual(len(errors), 1)
        self.assertIn("broken link", errors[0])

    def test_missing_cross_file_anchor_is_reported(self):
        self.write("docs/SERVING.md", "# Serving\n")
        a = self.write("README.md", "[x](docs/SERVING.md#wire-protocol)\n")
        errors = self.check(a)
        self.assertEqual(len(errors), 1)
        self.assertIn("broken anchor", errors[0])

    def test_missing_same_file_anchor_is_reported(self):
        a = self.write("README.md", "# Intro\n\n[x](#missing-section)\n")
        errors = self.check(a)
        self.assertEqual(len(errors), 1)
        self.assertIn("broken anchor", errors[0])

    def test_duplicate_headings_get_numbered_anchors(self):
        self.write("docs/D.md", "## Options\n\n## Options\n")
        a = self.write("README.md",
                       "[first](docs/D.md#options)\n"
                       "[second](docs/D.md#options-1)\n"
                       "[third](docs/D.md#options-2)\n")
        errors = self.check(a)
        self.assertEqual(len(errors), 1)
        self.assertIn("#options-2", errors[0])

    def test_headings_inside_code_fences_are_not_anchors(self):
        self.write("docs/D.md",
                   "# Real\n\n```\n# fake heading in a shell snippet\n```\n")
        a = self.write("README.md",
                       "[ok](docs/D.md#real)\n"
                       "[bad](docs/D.md#fake-heading-in-a-shell-snippet)\n")
        errors = self.check(a)
        self.assertEqual(len(errors), 1)
        self.assertIn("broken anchor", errors[0])

    def test_fragments_into_non_markdown_files_are_skipped(self):
        self.write("src/server.h", "// code\n")
        a = self.write("README.md", "[code](src/server.h#L10)\n")
        self.assertEqual(self.check(a), [])

    def test_external_links_are_skipped(self):
        a = self.write("README.md",
                       "[w](https://example.com/x#frag)\n"
                       "[m](mailto:x@example.com)\n")
        self.assertEqual(self.check(a), [])

    def test_main_fails_on_broken_tree_and_passes_on_clean_one(self):
        self.write("docs/SERVING.md", "# Serving\n\n## Runbook\n")
        self.write("README.md", "[ops](docs/SERVING.md#runbook)\n")
        self.assertEqual(
            check_markdown_links.main(["prog", self.dir.name]), 0)
        self.write("BAD.md", "[x](docs/SERVING.md#nope)\n")
        self.assertEqual(
            check_markdown_links.main(["prog", self.dir.name]), 1)


if __name__ == "__main__":
    unittest.main()
