#!/usr/bin/env python3
"""CI perf-regression gate over bench_sample_index's measurements.

Reads the JSON bench_sample_index writes via --index_out and fails the
build unless

  * indexed and scan evaluation stayed bitwise identical (the bench
    already exits non-zero on this, but the artifact must agree), and
  * indexed evaluation is actually FASTER than the scan on the selective
    workload — the whole point of the row-group index. A regression here
    means selective routing latency quietly fell back to O(sample rows).

The broad workload intentionally has no faster-than bar: its candidate
sets exceed the estimator's cutover, so indexed evaluation IS the scan
there (within `tolerance`, default 1.25x, guarding against gather-path
overhead leaking into scan territory).

Usage:
    check_perf_gate.py build/sample_index_gate.json [--tolerance 1.25]

Stdlib only (CI runs it on a bare runner).
"""

import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("gate_json",
                        help="file written by bench_sample_index --index_out")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="max indexed/scan ratio on the broad workload")
    args = parser.parse_args()

    with open(args.gate_json) as f:
        gate = json.load(f)

    failures = []
    if not gate.get("bitwise_identical", False):
        failures.append("indexed evaluation is not bitwise identical to scan")

    # A gate whose job is to fail on drift must treat missing data as a
    # failure: a renamed/dropped workload section means the bench stopped
    # measuring what this script checks.
    for section in ("selective", "broad"):
        for key in ("indexed_ns", "scan_ns"):
            if not isinstance(gate.get(section, {}).get(key), (int, float)):
                failures.append(f"gate JSON is missing {section}.{key}")
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1

    selective = gate["selective"]
    indexed_ns = selective["indexed_ns"]
    scan_ns = selective["scan_ns"]
    if not indexed_ns < scan_ns:
        failures.append(
            f"selective workload: indexed ({indexed_ns:.0f} ns/query) is not "
            f"faster than scan ({scan_ns:.0f} ns/query)")

    broad = gate["broad"]
    broad_ratio = broad["indexed_ns"] / max(broad["scan_ns"], 1.0)
    if broad_ratio > args.tolerance:
        failures.append(
            f"broad workload: indexed is {broad_ratio:.2f}x scan "
            f"(tolerance {args.tolerance:.2f}x) — cutover overhead regressed")

    print(f"sample-index perf gate over {args.gate_json}:")
    print(f"  selective: indexed {indexed_ns:.0f} ns/query vs scan "
          f"{scan_ns:.0f} ns/query "
          f"({selective.get('speedup', 0.0):.2f}x)")
    print(f"  broad:     indexed/scan ratio {broad_ratio:.2f} "
          f"(tolerance {args.tolerance:.2f})")
    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("  OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
