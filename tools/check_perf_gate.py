#!/usr/bin/env python3
"""CI perf-regression gate over the bench-emitted gate JSON files.

Four gates, one script (all are claims the PRs that introduced them must
keep true):

  * sample-index (bench_sample_index --index_out): indexed and scan
    evaluation stayed bitwise identical, indexed evaluation is actually
    FASTER than the scan on the selective workload, and the broad
    workload's cutover overhead stays within --tolerance.
  * shard-scaling (bench_shard_scaling --shard_out, via --shard FILE):
    merged sharded COUNT/SUM estimates match the additive per-shard
    reference to <= 1e-9 relative error, and — when the measuring machine
    had more than one core — the parallel S-shard build beat the
    single-shard build wall-clock. On a single core the shard fan-out
    degrades inline (strictly more total work than one shard), so the
    wall bar is reported but not enforced; the JSON's `cores` field says
    which regime the measurement ran in.
  * durability (bench_durability --durability_out, via --durability FILE):
    opening a store with checksum verification ON stays within
    --open-tolerance (default 1.05x) of the unverified open. Save wall
    time and WAL append throughput ride along in the JSON for the
    trajectory but are fsync-bound, so they are recorded, not enforced.
  * shard-pruning (bench_shard_pruning --prune_out, via --prune FILE):
    pruned answers stayed bitwise identical to the full fan-out, the
    pruned selective workload beat the full fan-out at S=16 (pruning
    removes work, so this bar holds on any core count), and the broad
    workload — where nothing can be pruned — stays within
    --prune-tolerance of the full fan-out (the zone-map consultation
    itself must be noise).
  * compaction (bench_compaction --compact_out, via --compact FILE):
    every merged answer on the compacted store stays within the 1e-9
    merge bar of the batch-bloated store's answer, and the selective
    workload is strictly faster afterwards (compaction folds shards, so
    every query fans out over fewer models — enforceable on any core
    count). Compaction wall time rides along in the JSON for the
    trajectory but is recorded, not enforced.
  * join (bench_join --join_out, via --join FILE): fused JOIN_COUNT and
    JOIN_SUM estimates over exactly-pinned models stay within 1e-4
    (relative) of brute-force ground truth across the query battery, and
    the fused estimate beats the exact two-sided scan (the fusion reads
    two model marginals; the scan reads every row of both relations —
    enforceable on any core count).
  * serving (bench_serving --serving_out, via --serving FILE): a result
    cache hit through the wire is >= 10x faster than the uncached query
    (a hit skips maxent evaluation entirely), and batched throughput at
    8 concurrent clients is >= serial throughput (one BATCH frame
    amortizes the per-request round trip and evaluates the shared model
    once per dispatch). Both bars are core-count independent. p50/p99
    latency and 1/4/8-client QPS ride along, recorded, not enforced.

Usage:
    check_perf_gate.py build/sample_index_gate.json \
        [--shard build/shard_scaling_gate.json] \
        [--durability build/durability_gate.json] \
        [--prune build/prune_gate.json] \
        [--compact build/compact_gate.json] \
        [--serving build/serving_gate.json] \
        [--join build/join_gate.json] \
        [--tolerance 1.25] [--open-tolerance 1.05] [--prune-tolerance 1.25]

Stdlib only (CI runs it on a bare runner). The check_* functions return
failure-message lists so tools/test_check_perf_gate.py can unit-test the
rules without files or subprocesses.
"""

import argparse
import json
import sys

#: Relative-error bar for merged-vs-additive sharded estimates.
SHARD_MERGE_TOLERANCE = 1e-9

#: Minimum wire-level speedup of a result-cache hit over the uncached
#: query (a hit skips maxent evaluation entirely).
SERVING_CACHE_SPEEDUP_BAR = 10.0

#: Relative-error bar for fused join estimates against brute-force ground
#: truth on exactly-pinned models (bench_join pins the per-side joints with
#: full pair statistics, so only the fusion algebra is on trial).
JOIN_FIDELITY_BAR = 1e-4


def check_sample_index(gate, tolerance=1.25):
    """Failure messages for a bench_sample_index gate dict (empty = pass)."""
    failures = []
    if not gate.get("bitwise_identical", False):
        failures.append("indexed evaluation is not bitwise identical to scan")

    # A gate whose job is to fail on drift must treat missing data as a
    # failure: a renamed/dropped workload section means the bench stopped
    # measuring what this script checks.
    for section in ("selective", "broad"):
        for key in ("indexed_ns", "scan_ns"):
            if not isinstance(gate.get(section, {}).get(key), (int, float)):
                failures.append(f"gate JSON is missing {section}.{key}")
    if failures:
        return failures

    selective = gate["selective"]
    if not selective["indexed_ns"] < selective["scan_ns"]:
        failures.append(
            f"selective workload: indexed ({selective['indexed_ns']:.0f} "
            f"ns/query) is not faster than scan "
            f"({selective['scan_ns']:.0f} ns/query)")

    broad = gate["broad"]
    broad_ratio = broad["indexed_ns"] / max(broad["scan_ns"], 1.0)
    if broad_ratio > tolerance:
        failures.append(
            f"broad workload: indexed is {broad_ratio:.2f}x scan "
            f"(tolerance {tolerance:.2f}x) — cutover overhead regressed")
    return failures


def check_shard_scaling(gate):
    """Failure messages for a bench_shard_scaling gate dict (empty = pass)."""
    failures = []
    for key in ("count_max_rel_err", "sum_max_rel_err"):
        value = gate.get("merge", {}).get(key)
        if not isinstance(value, (int, float)):
            failures.append(f"gate JSON is missing merge.{key}")
        elif value > SHARD_MERGE_TOLERANCE:
            failures.append(
                f"merged sharded estimates drifted from the additive "
                f"per-shard reference: merge.{key} = {value:.3g} "
                f"(bar {SHARD_MERGE_TOLERANCE:.0e})")
    build = gate.get("build", {})
    for key in ("s1_seconds", "sharded_seconds"):
        if not isinstance(build.get(key), (int, float)):
            failures.append(f"gate JSON is missing build.{key}")
    if not isinstance(gate.get("cores"), (int, float)):
        failures.append("gate JSON is missing cores")
    if failures:
        return failures

    # The parallel-build bar only holds where parallelism exists; a
    # single-core measurement records the ratio without enforcing it.
    if gate["cores"] > 1 and not build["sharded_seconds"] < build["s1_seconds"]:
        failures.append(
            f"parallel sharded build ({build['sharded_seconds']:.3f}s) is "
            f"not faster than the single-shard build "
            f"({build['s1_seconds']:.3f}s) on {gate['cores']:.0f} cores")
    return failures


def check_durability(gate, open_tolerance=1.05):
    """Failure messages for a bench_durability gate dict (empty = pass)."""
    failures = []
    open_section = gate.get("open", {})
    for key in ("verified_seconds", "unverified_seconds", "overhead_ratio"):
        if not isinstance(open_section.get(key), (int, float)):
            failures.append(f"gate JSON is missing open.{key}")
    for key in ("synced_records_per_sec", "unsynced_records_per_sec"):
        if not isinstance(gate.get("wal", {}).get(key), (int, float)):
            failures.append(f"gate JSON is missing wal.{key}")
    if failures:
        return failures

    if open_section["overhead_ratio"] > open_tolerance:
        failures.append(
            f"checksummed store open is "
            f"{open_section['overhead_ratio']:.3f}x the unverified open "
            f"(tolerance {open_tolerance:.2f}x) — verification overhead "
            f"regressed")
    return failures


def check_prune(gate, prune_tolerance=1.25):
    """Failure messages for a bench_shard_pruning gate dict (empty = pass)."""
    failures = []
    if not gate.get("identical", False):
        failures.append(
            "pruned answers are not bitwise identical to the full fan-out")
    for section in ("selective", "moderate", "broad"):
        for key in ("pruned_ns", "full_ns"):
            if not isinstance(gate.get(section, {}).get(key), (int, float)):
                failures.append(f"gate JSON is missing {section}.{key}")
    if not isinstance(gate.get("shards"), (int, float)):
        failures.append("gate JSON is missing shards")
    if failures:
        return failures

    selective = gate["selective"]
    if not selective["pruned_ns"] < selective["full_ns"]:
        failures.append(
            f"selective workload: pruned fan-out "
            f"({selective['pruned_ns']:.0f} ns/query) is not faster than "
            f"the full fan-out ({selective['full_ns']:.0f} ns/query) at "
            f"S={gate['shards']:.0f}")

    # Nothing prunes on the broad workload, so any ratio above noise means
    # the zone-map consultation itself got expensive.
    broad = gate["broad"]
    broad_ratio = broad["pruned_ns"] / max(broad["full_ns"], 1.0)
    if broad_ratio > prune_tolerance:
        failures.append(
            f"broad workload: pruning enabled is {broad_ratio:.2f}x the "
            f"full fan-out (tolerance {prune_tolerance:.2f}x) — zone-map "
            f"consultation overhead regressed")
    return failures


def check_compact(gate):
    """Failure messages for a bench_compaction gate dict (empty = pass)."""
    failures = []
    for key in ("merge_max_rel_err", "pre_ns", "post_ns", "pre_shards",
                "post_shards"):
        if not isinstance(gate.get(key), (int, float)):
            failures.append(f"gate JSON is missing {key}")
    if failures:
        return failures

    if gate["merge_max_rel_err"] > SHARD_MERGE_TOLERANCE:
        failures.append(
            f"compacted-store answers drifted from the pre-compaction "
            f"store: merge_max_rel_err = {gate['merge_max_rel_err']:.3g} "
            f"(bar {SHARD_MERGE_TOLERANCE:.0e})")
    if not gate["post_ns"] < gate["pre_ns"]:
        failures.append(
            f"selective workload on the compacted store "
            f"({gate['post_ns']:.0f} ns/query, "
            f"{gate['post_shards']:.0f} shards) is not faster than the "
            f"batch-bloated store ({gate['pre_ns']:.0f} ns/query, "
            f"{gate['pre_shards']:.0f} shards)")
    return failures


def check_serving(gate):
    """Failure messages for a bench_serving gate dict (empty = pass)."""
    failures = []
    latency = gate.get("latency", {})
    for key in ("uncached_ns", "cached_ns", "cache_speedup"):
        if not isinstance(latency.get(key), (int, float)):
            failures.append(f"gate JSON is missing latency.{key}")
    throughput = gate.get("throughput", {})
    for key in ("qps_8", "batched_qps_8", "batch_speedup"):
        if not isinstance(throughput.get(key), (int, float)):
            failures.append(f"gate JSON is missing throughput.{key}")
    if failures:
        return failures

    if latency["cache_speedup"] < SERVING_CACHE_SPEEDUP_BAR:
        failures.append(
            f"result-cache hit ({latency['cached_ns']:.0f} ns) is only "
            f"{latency['cache_speedup']:.1f}x faster than the uncached "
            f"query ({latency['uncached_ns']:.0f} ns) — bar "
            f"{SERVING_CACHE_SPEEDUP_BAR:.0f}x; a hit must skip maxent "
            f"evaluation entirely")
    if throughput["batch_speedup"] < 1.0:
        failures.append(
            f"batched throughput at 8 clients "
            f"({throughput['batched_qps_8']:.0f} QPS) fell below serial "
            f"({throughput['qps_8']:.0f} QPS) — micro-batching must not "
            f"cost throughput")
    return failures


def check_join(gate):
    """Failure messages for a bench_join gate dict (empty = pass)."""
    failures = []
    fidelity = gate.get("fidelity", {})
    for key in ("count_max_rel_err", "sum_max_rel_err"):
        if not isinstance(fidelity.get(key), (int, float)):
            failures.append(f"gate JSON is missing fidelity.{key}")
    latency = gate.get("latency", {})
    for key in ("fused_ns", "exact_ns"):
        if not isinstance(latency.get(key), (int, float)):
            failures.append(f"gate JSON is missing latency.{key}")
    if failures:
        return failures

    for key in ("count_max_rel_err", "sum_max_rel_err"):
        if fidelity[key] > JOIN_FIDELITY_BAR:
            failures.append(
                f"fused join estimates drifted from brute-force ground "
                f"truth: fidelity.{key} = {fidelity[key]:.3g} "
                f"(bar {JOIN_FIDELITY_BAR:.0e})")
    if not latency["fused_ns"] < latency["exact_ns"]:
        failures.append(
            f"fused join ({latency['fused_ns']:.0f} ns/query) is not "
            f"faster than the exact two-sided scan "
            f"({latency['exact_ns']:.0f} ns/query) — fusing two model "
            f"marginals must beat reading every row")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("gate_json",
                        help="file written by bench_sample_index --index_out")
    parser.add_argument("--shard", metavar="FILE", default=None,
                        help="file written by bench_shard_scaling --shard_out")
    parser.add_argument("--durability", metavar="FILE", default=None,
                        help="file written by bench_durability "
                             "--durability_out")
    parser.add_argument("--prune", metavar="FILE", default=None,
                        help="file written by bench_shard_pruning "
                             "--prune_out")
    parser.add_argument("--compact", metavar="FILE", default=None,
                        help="file written by bench_compaction "
                             "--compact_out")
    parser.add_argument("--serving", metavar="FILE", default=None,
                        help="file written by bench_serving "
                             "--serving_out")
    parser.add_argument("--join", metavar="FILE", default=None,
                        help="file written by bench_join --join_out")
    parser.add_argument("--tolerance", type=float, default=1.25,
                        help="max indexed/scan ratio on the broad workload")
    parser.add_argument("--open-tolerance", type=float, default=1.05,
                        help="max verified/unverified store-open ratio")
    parser.add_argument("--prune-tolerance", type=float, default=1.25,
                        help="max pruned/full ratio on the broad (nothing "
                             "prunable) workload")
    args = parser.parse_args(argv)

    with open(args.gate_json) as f:
        index_gate = json.load(f)
    failures = check_sample_index(index_gate, args.tolerance)

    # Summary lines guard EVERY key they print: a partially written gate
    # file must fall through to the FAIL diagnostics, not die mid-print.
    print(f"sample-index perf gate over {args.gate_json}:")
    selective = index_gate.get("selective", {})
    if all(isinstance(selective.get(k), (int, float))
           for k in ("indexed_ns", "scan_ns")):
        print(f"  selective: indexed {selective['indexed_ns']:.0f} ns/query "
              f"vs scan {selective['scan_ns']:.0f} ns/query "
              f"({selective.get('speedup', 0.0):.2f}x)")

    if args.shard is not None:
        with open(args.shard) as f:
            shard_gate = json.load(f)
        failures += check_shard_scaling(shard_gate)
        print(f"shard-scaling perf gate over {args.shard}:")
        build = shard_gate.get("build", {})
        if all(isinstance(build.get(k), (int, float))
               for k in ("s1_seconds", "sharded_seconds")):
            print(f"  build: S=1 {build['s1_seconds']:.3f}s vs sharded "
                  f"{build['sharded_seconds']:.3f}s "
                  f"({build.get('speedup', 0.0):.2f}x on "
                  f"{shard_gate.get('cores', 0):.0f} cores)")
        merge = shard_gate.get("merge", {})
        if all(isinstance(merge.get(k), (int, float))
               for k in ("count_max_rel_err", "sum_max_rel_err")):
            print(f"  merge: count rel err {merge['count_max_rel_err']:.3g}, "
                  f"sum rel err {merge['sum_max_rel_err']:.3g} "
                  f"(bar {SHARD_MERGE_TOLERANCE:.0e})")

    if args.durability is not None:
        with open(args.durability) as f:
            durability_gate = json.load(f)
        failures += check_durability(durability_gate, args.open_tolerance)
        print(f"durability perf gate over {args.durability}:")
        open_section = durability_gate.get("open", {})
        if all(isinstance(open_section.get(k), (int, float))
               for k in ("verified_seconds", "unverified_seconds",
                         "overhead_ratio")):
            print(f"  open: verified {open_section['verified_seconds']:.4f}s "
                  f"vs unverified "
                  f"{open_section['unverified_seconds']:.4f}s "
                  f"({open_section['overhead_ratio']:.3f}x, bar "
                  f"{args.open_tolerance:.2f}x)")
        wal = durability_gate.get("wal", {})
        if all(isinstance(wal.get(k), (int, float))
               for k in ("synced_records_per_sec",
                         "unsynced_records_per_sec")):
            print(f"  wal: {wal['synced_records_per_sec']:.0f} rec/s synced, "
                  f"{wal['unsynced_records_per_sec']:.0f} rec/s unsynced "
                  f"(recorded, not enforced)")

    if args.prune is not None:
        with open(args.prune) as f:
            prune_gate = json.load(f)
        failures += check_prune(prune_gate, args.prune_tolerance)
        print(f"shard-pruning perf gate over {args.prune}:")
        for section in ("selective", "moderate", "broad"):
            row = prune_gate.get(section, {})
            if all(isinstance(row.get(k), (int, float))
                   for k in ("pruned_ns", "full_ns")):
                print(f"  {section}: pruned {row['pruned_ns']:.0f} ns/query "
                      f"vs full {row['full_ns']:.0f} ns/query "
                      f"({row.get('speedup', 0.0):.2f}x, "
                      f"{row.get('avg_pruned_shards', 0.0):.1f}/"
                      f"{prune_gate.get('shards', 0):.0f} shards pruned)")

    if args.compact is not None:
        with open(args.compact) as f:
            compact_gate = json.load(f)
        failures += check_compact(compact_gate)
        print(f"compaction perf gate over {args.compact}:")
        if all(isinstance(compact_gate.get(k), (int, float))
               for k in ("pre_ns", "post_ns", "pre_shards", "post_shards")):
            print(f"  selective: {compact_gate['pre_ns']:.0f} ns/query on "
                  f"{compact_gate['pre_shards']:.0f} shards -> "
                  f"{compact_gate['post_ns']:.0f} ns/query on "
                  f"{compact_gate['post_shards']:.0f} shards "
                  f"({compact_gate.get('speedup', 0.0):.2f}x)")
        if isinstance(compact_gate.get("merge_max_rel_err"), (int, float)):
            print(f"  merge: max rel err "
                  f"{compact_gate['merge_max_rel_err']:.3g} "
                  f"(bar {SHARD_MERGE_TOLERANCE:.0e}), compaction wall "
                  f"{compact_gate.get('compact_seconds', 0.0):.2f}s "
                  f"(recorded, not enforced)")

    if args.serving is not None:
        with open(args.serving) as f:
            serving_gate = json.load(f)
        failures += check_serving(serving_gate)
        print(f"serving perf gate over {args.serving}:")
        latency = serving_gate.get("latency", {})
        if all(isinstance(latency.get(k), (int, float))
               for k in ("uncached_ns", "cached_ns", "cache_speedup")):
            print(f"  latency: uncached {latency['uncached_ns']:.0f} ns "
                  f"(p50 {latency.get('p50_ns', 0.0):.0f}, "
                  f"p99 {latency.get('p99_ns', 0.0):.0f}) vs cached "
                  f"{latency['cached_ns']:.0f} ns "
                  f"({latency['cache_speedup']:.1f}x, bar "
                  f"{SERVING_CACHE_SPEEDUP_BAR:.0f}x)")
        throughput = serving_gate.get("throughput", {})
        if all(isinstance(throughput.get(k), (int, float))
               for k in ("qps_1", "qps_4", "qps_8", "batched_qps_8",
                         "batch_speedup")):
            print(f"  QPS: 1 client {throughput['qps_1']:.0f}, 4 clients "
                  f"{throughput['qps_4']:.0f}, 8 clients "
                  f"{throughput['qps_8']:.0f}, batched at 8 "
                  f"{throughput['batched_qps_8']:.0f} "
                  f"({throughput['batch_speedup']:.2f}x serial, bar 1x)")

    if args.join is not None:
        with open(args.join) as f:
            join_gate = json.load(f)
        failures += check_join(join_gate)
        print(f"join perf gate over {args.join}:")
        fidelity = join_gate.get("fidelity", {})
        if all(isinstance(fidelity.get(k), (int, float))
               for k in ("count_max_rel_err", "sum_max_rel_err")):
            print(f"  fidelity: count rel err "
                  f"{fidelity['count_max_rel_err']:.3g}, sum rel err "
                  f"{fidelity['sum_max_rel_err']:.3g} "
                  f"(bar {JOIN_FIDELITY_BAR:.0e})")
        latency = join_gate.get("latency", {})
        if all(isinstance(latency.get(k), (int, float))
               for k in ("fused_ns", "exact_ns")):
            print(f"  latency: fused {latency['fused_ns']:.0f} ns/query vs "
                  f"exact scan {latency['exact_ns']:.0f} ns/query "
                  f"({latency.get('speedup', 0.0):.1f}x)")

    for failure in failures:
        print(f"  FAIL: {failure}", file=sys.stderr)
    if not failures:
        print("  OK")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
