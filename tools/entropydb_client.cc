// Wire-protocol client for entropydb_serve (docs/SERVING.md).
//
//   entropydb_client --port N [--host H]
//       [--open ID|live]                  # pin a retained version first
//       [--show-version on] [--stats on]
//       [--query "COUNT WHERE origin = 'S3'"] [--deadline-ms N]
//       [--join "COUNT(*) ON attr WHERE left.x = 1"]
//       [--batch FILE]                    # one COUNT query per line
//
// Commands run in a fixed order on one connection: OPEN, VERSION, STATS,
// QUERY, JOIN, BATCH — so `--open 3 --query ...` answers against version 3
// (time travel) while the live version keeps moving. OK response lines
// print to stdout verbatim; an ERR response prints its typed code
// (BAD_REQUEST, SERVER_BUSY, ...) to stderr and exits 1.

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "entropydb.h"

using namespace entropydb;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: entropydb_client --port N [--host H] [--open ID|live]\n"
      "                        [--show-version on] [--stats on]\n"
      "                        [--query TEXT] [--join TEXT]\n"
      "                        [--deadline-ms N] [--batch FILE]\n");
}

/// Runs one request; prints OK lines to stdout, ERR to stderr.
int RunRequest(WireClient& client, const Request& req) {
  auto resp = client.Call(req);
  if (!resp.ok()) {
    std::fprintf(stderr, "client: %s\n", resp.status().ToString().c_str());
    return 1;
  }
  if (!resp->ok) {
    std::fprintf(stderr, "ERR %s %s\n", resp->code.c_str(),
                 resp->message.c_str());
    return 1;
  }
  for (const std::string& line : resp->lines) {
    std::printf("%s\n", line.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      Usage();
      return 2;
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  if (!args.count("port")) {
    Usage();
    return 2;
  }
  const std::string host =
      args.count("host") ? args["host"] : std::string("127.0.0.1");
  const uint16_t port = static_cast<uint16_t>(std::stoul(args["port"]));

  auto client = WireClient::Connect(host, port);
  if (!client.ok()) {
    std::fprintf(stderr, "connect: %s\n",
                 client.status().ToString().c_str());
    return 1;
  }

  uint64_t deadline_ms = 0;
  if (args.count("deadline-ms")) {
    deadline_ms = std::stoul(args["deadline-ms"]);
  }

  bool did_anything = false;
  if (args.count("open")) {
    Request req;
    req.type = CommandType::kOpen;
    if (args["open"] != "live") req.version = std::stoul(args["open"]);
    if (int rc = RunRequest(*client, req)) return rc;
    did_anything = true;
  }
  if (args.count("show-version") && args["show-version"] != "off") {
    Request req;
    req.type = CommandType::kVersion;
    if (int rc = RunRequest(*client, req)) return rc;
    did_anything = true;
  }
  if (args.count("stats") && args["stats"] != "off") {
    Request req;
    req.type = CommandType::kStats;
    if (int rc = RunRequest(*client, req)) return rc;
    did_anything = true;
  }
  if (args.count("query")) {
    Request req;
    req.type = CommandType::kQuery;
    req.query = args["query"];
    req.deadline_ms = deadline_ms;
    if (int rc = RunRequest(*client, req)) return rc;
    did_anything = true;
  }
  if (args.count("join")) {
    Request req;
    req.type = CommandType::kJoin;
    req.query = args["join"];
    req.deadline_ms = deadline_ms;
    if (int rc = RunRequest(*client, req)) return rc;
    did_anything = true;
  }
  if (args.count("batch")) {
    std::string text;
    Status st = Env::Default()->ReadFile(args["batch"], &text);
    if (!st.ok()) {
      std::fprintf(stderr, "batch file: %s\n", st.ToString().c_str());
      return 1;
    }
    Request req;
    req.type = CommandType::kBatch;
    req.deadline_ms = deadline_ms;
    for (const auto& line : SplitString(text, '\n')) {
      std::string q(StripWhitespace(line));
      if (!q.empty()) req.queries.push_back(std::move(q));
    }
    if (req.queries.empty()) {
      std::fprintf(stderr, "batch file has no queries\n");
      return 1;
    }
    if (int rc = RunRequest(*client, req)) return rc;
    did_anything = true;
  }
  if (!did_anything) {
    Usage();
    return 2;
  }
  return 0;
}
