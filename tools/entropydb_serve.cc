// Query server: serves a summary, store directory, or versioned root over
// the length-prefixed text protocol in docs/SERVING.md.
//
//   entropydb_serve --store flights.vdb [--port N] [--join PATH]
//       [--queue N] [--max-batch N] [--cache N] [--deadline-ms N]
//       [--verify-checksums on|off]
//
// --join loads a second (RIGHT) relation once at startup and enables the
// JOIN wire command against it; VERSION then advertises the "join"
// capability.
//
// Binds 127.0.0.1 (port 0 = ephemeral; the bound port is printed either
// way, so harnesses can parse it). Runs until SIGINT/SIGTERM, then drains:
// stops accepting, closes sessions, joins every worker before exiting.
//
// Versioned roots (storage/version_set.h) get the full command set —
// sessions can OPEN any retained version for snapshot-pinned reads, and
// the server picks up externally published versions (entropydb_build
// --append on the same root) without a restart. Plain stores serve
// QUERY/BATCH/STATS only.

#include <signal.h>

#include <cstdio>
#include <cstring>
#include <map>
#include <string>

#include "entropydb.h"

using namespace entropydb;

namespace {

void Usage() {
  std::fprintf(
      stderr,
      "usage: entropydb_serve --store PATH [--port N] [--join PATH]\n"
      "                       [--queue N] [--max-batch N] [--cache N]\n"
      "                       [--deadline-ms N]\n"
      "                       [--verify-checksums on|off]\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> args;
  for (int i = 1; i + 1 < argc; i += 2) {
    if (std::strncmp(argv[i], "--", 2) != 0) {
      Usage();
      return 2;
    }
    args[argv[i] + 2] = argv[i + 1];
  }
  if (!args.count("store")) {
    Usage();
    return 2;
  }

  QueryServer::Options opts;
  opts.path = args["store"];
  if (args.count("join")) opts.join_path = args["join"];
  if (args.count("port")) {
    opts.port = static_cast<uint16_t>(std::stoul(args["port"]));
  }
  if (args.count("queue")) opts.queue_capacity = std::stoul(args["queue"]);
  if (args.count("max-batch")) opts.max_batch = std::stoul(args["max-batch"]);
  if (args.count("cache")) opts.cache_capacity = std::stoul(args["cache"]);
  if (args.count("deadline-ms")) {
    opts.default_deadline_ms = std::stoul(args["deadline-ms"]);
  }
  opts.summary.verify_checksums =
      !args.count("verify-checksums") || args["verify-checksums"] != "off";

  // Block the shutdown signals BEFORE Start so every thread the server
  // spawns inherits the mask and sigwait below is the only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  auto server = QueryServer::Start(opts);
  if (!server.ok()) {
    std::fprintf(stderr, "serve: %s\n", server.status().ToString().c_str());
    return 1;
  }
  std::printf("serving %s on 127.0.0.1:%u\n", opts.path.c_str(),
              (*server)->port());
  std::fflush(stdout);

  int sig = 0;
  sigwait(&mask, &sig);
  std::printf("signal %d: draining\n", sig);
  (*server)->Stop();
  const QueryServer::Stats stats = (*server)->stats();
  std::printf("served %llu request(s) over %llu connection(s)\n",
              static_cast<unsigned long long>(stats.requests),
              static_cast<unsigned long long>(stats.connections));
  return 0;
}
