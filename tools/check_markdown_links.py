#!/usr/bin/env python3
"""Markdown link checker (stdlib only) — the CI docs job.

Scans the given markdown files/directories for inline links and images,
resolves relative targets against each file's location, and fails if any
target file is missing. External (http/https/mailto) links are not
fetched — CI must stay offline-friendly — and pure #anchor links are
skipped.

Usage: check_markdown_links.py FILE_OR_DIR...
"""

import os
import re
import sys

# [text](target) / ![alt](target); target ends at the first ')' or space
# (titles like [t](url "title") are split off).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def collect_markdown(paths):
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, files in os.walk(path):
                out.extend(
                    os.path.join(root, f) for f in files if f.endswith(".md")
                )
        else:
            out.append(path)
    return sorted(set(out))


def check_file(md_path):
    errors = []
    base = os.path.dirname(md_path) or "."
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES) or target.startswith("#"):
                    continue
                target = target.split("#", 1)[0]
                if not target:
                    continue
                resolved = os.path.normpath(os.path.join(base, target))
                if not os.path.exists(resolved):
                    errors.append(
                        f"{md_path}:{lineno}: broken link -> {target}"
                    )
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = collect_markdown(argv[1:])
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    errors = []
    for md in files:
        errors.extend(check_file(md))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
