#!/usr/bin/env python3
"""Markdown link and anchor checker (stdlib only) — the CI docs job.

Scans the given markdown files/directories for inline links and images,
resolves relative targets against each file's location, and fails if any
target file is missing. `#fragment` links — same-file (`#section`) or
cross-file (`doc.md#section`) — are validated against the target
markdown's headings using GitHub's slug rules (lowercase, punctuation
stripped, spaces to hyphens, `-N` suffixes for duplicates), so a renamed
section breaks the build, not the reader. External (http/https/mailto)
links are not fetched — CI must stay offline-friendly — and fragments
into non-markdown files are skipped (there is nothing to resolve them
against).

Usage: check_markdown_links.py FILE_OR_DIR...
"""

import os
import re
import sys

# [text](target) / ![alt](target); target ends at the first ')' or space
# (titles like [t](url "title") are split off).
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "ftp://")

HEADING_RE = re.compile(r"^#{1,6}\s+(.*?)\s*#*\s*$")
# Inline markdown a heading may carry: code spans, emphasis, link text.
MARKUP_RE = re.compile(r"[`*_]|\[([^\]]*)\]\([^)]*\)")


def slugify(heading):
    """GitHub's anchor slug: markup stripped, lowercased, punctuation
    dropped, spaces hyphenated."""
    text = MARKUP_RE.sub(lambda m: m.group(1) or "", heading)
    text = text.lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def collect_anchors(md_path):
    """The set of anchor slugs `md_path` exposes (headings outside code
    fences; duplicate slugs get GitHub's -1/-2/... suffixes)."""
    anchors = set()
    counts = {}
    in_fence = False
    with open(md_path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            match = HEADING_RE.match(line)
            if match is None:
                continue
            slug = slugify(match.group(1))
            n = counts.get(slug, 0)
            counts[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def collect_markdown(paths):
    out = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, files in os.walk(path):
                out.extend(
                    os.path.join(root, f) for f in files if f.endswith(".md")
                )
        else:
            out.append(path)
    return sorted(set(out))


def check_file(md_path, anchor_cache):
    errors = []
    base = os.path.dirname(md_path) or "."
    with open(md_path, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(SKIP_PREFIXES):
                    continue
                target, _, fragment = target.partition("#")
                resolved = (
                    os.path.normpath(os.path.join(base, target))
                    if target else md_path
                )
                if not os.path.exists(resolved):
                    errors.append(
                        f"{md_path}:{lineno}: broken link -> {target}"
                    )
                    continue
                if not fragment or not resolved.endswith(".md"):
                    continue
                if resolved not in anchor_cache:
                    anchor_cache[resolved] = collect_anchors(resolved)
                if fragment not in anchor_cache[resolved]:
                    errors.append(
                        f"{md_path}:{lineno}: broken anchor -> "
                        f"{target}#{fragment}"
                    )
    return errors


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    files = collect_markdown(argv[1:])
    if not files:
        print("no markdown files found", file=sys.stderr)
        return 2
    errors = []
    anchor_cache = {}
    for md in files:
        errors.extend(check_file(md, anchor_cache))
    for e in errors:
        print(e, file=sys.stderr)
    print(f"checked {len(files)} markdown files: "
          f"{len(errors)} broken link(s)")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
