#!/usr/bin/env python3
"""Unit tests for merge_bench.py (stdlib only; run via
`python3 -m unittest discover -s tools`)."""

import json
import os
import tempfile
import unittest

import merge_bench


def bench_section(*names):
    return {"context": {"host": "ci"},
            "benchmarks": [{"name": n, "real_time": 1.0} for n in names]}


class MergeTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def path(self, name, payload):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            json.dump(payload, f)
        return p

    def test_merge_keys_bench_by_stem_and_extra_by_key(self):
        solver = self.path("bench_solver.json", bench_section("BM_Solve"))
        gate = self.path("gate.json", {"pass": True})
        merged = merge_bench.merge([solver], ["shard_scaling=" + gate])
        self.assertEqual(sorted(merged), ["bench_solver", "shard_scaling"])
        self.assertEqual(merged["shard_scaling"], {"pass": True})
        self.assertEqual(merged["bench_solver"]["benchmarks"][0]["name"],
                         "BM_Solve")

    def test_merge_rejects_malformed_extra_spec(self):
        with self.assertRaises(ValueError):
            merge_bench.merge([], ["no-equals-sign"])

    def test_main_writes_merged_artifact(self):
        solver = self.path("bench_solver.json", bench_section("BM_Solve"))
        out = os.path.join(self.dir.name, "BENCH_test.json")
        rc = merge_bench.main(["--out", out, "--bench", solver])
        self.assertEqual(rc, 0)
        with open(out) as f:
            self.assertIn("bench_solver", json.load(f))

    def test_main_returns_2_on_bad_extra(self):
        out = os.path.join(self.dir.name, "BENCH_test.json")
        rc = merge_bench.main(["--out", out, "--extra", "missing-file-part"])
        self.assertEqual(rc, 2)


class StructuralDiffTest(unittest.TestCase):
    def test_identical_artifacts_have_no_drift(self):
        artifact = {"bench_solver": bench_section("BM_A", "BM_B"),
                    "gate": {"pass": True}}
        self.assertEqual(merge_bench.structural_diff(artifact, artifact), [])

    def test_timing_changes_are_not_drift(self):
        ours = {"bench_solver": bench_section("BM_A")}
        theirs = {"bench_solver": bench_section("BM_A")}
        theirs["bench_solver"]["benchmarks"][0]["real_time"] = 99.0
        self.assertEqual(merge_bench.structural_diff(ours, theirs), [])

    def test_missing_and_new_sections_are_reported(self):
        ours = {"bench_new": bench_section("BM_A")}
        theirs = {"bench_old": bench_section("BM_A")}
        drift = merge_bench.structural_diff(ours, theirs)
        self.assertEqual(len(drift), 2)
        self.assertTrue(any("bench_old" in d for d in drift))
        self.assertTrue(any("bench_new" in d for d in drift))

    def test_benchmark_name_drift_is_reported(self):
        ours = {"bench_solver": bench_section("BM_A", "BM_C")}
        theirs = {"bench_solver": bench_section("BM_A", "BM_B")}
        drift = merge_bench.structural_diff(ours, theirs)
        self.assertTrue(any("BM_B" in d and "vanished" in d for d in drift))
        self.assertTrue(any("BM_C" in d and "new" in d for d in drift))

    def test_extra_sections_compare_by_key_only(self):
        # Non-benchmark sections hold machine-dependent measurements; only
        # their presence is structural.
        ours = {"gate": {"pass": True, "speedup": 3.0}}
        theirs = {"gate": {"pass": True, "speedup": 1.2}}
        self.assertEqual(merge_bench.structural_diff(ours, theirs), [])


class DiffCliTest(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.TemporaryDirectory()
        self.addCleanup(self.dir.cleanup)

    def write(self, name, payload):
        p = os.path.join(self.dir.name, name)
        with open(p, "w") as f:
            json.dump(payload, f)
        return p

    def test_diff_is_advisory_by_default_and_fatal_with_flag(self):
        solver = self.write("bench_solver.json", bench_section("BM_A"))
        baseline = self.write("baseline.json",
                              {"bench_other": bench_section("BM_A")})
        out = os.path.join(self.dir.name, "BENCH_test.json")
        argv = ["--out", out, "--bench", solver, "--diff", baseline]
        self.assertEqual(merge_bench.main(argv), 0)
        self.assertEqual(merge_bench.main(argv + ["--diff-fail"]), 1)

    def test_clean_diff_passes_with_diff_fail(self):
        solver = self.write("bench_solver.json", bench_section("BM_A"))
        baseline = self.write("baseline.json",
                              {"bench_solver": bench_section("BM_A")})
        out = os.path.join(self.dir.name, "BENCH_test.json")
        rc = merge_bench.main(["--out", out, "--bench", solver,
                               "--diff", baseline, "--diff-fail"])
        self.assertEqual(rc, 0)


if __name__ == "__main__":
    unittest.main()
