// Hybrid serving: one store, two estimator families. A maxent summary
// models the (origin, dest) correlation; a stratified sample rides along
// in the same store directory-shaped object. The router answers each query
// from whichever source expects the lower variance (docs/ESTIMATORS.md):
// rare stratification-aligned slices go to the sample (it holds those rows
// verbatim), broad aggregates go to the summary (expansion weights make
// the sample noisy there).
//
// Run:  ./build/example_hybrid_exploration

#include <cstdio>

#include "entropydb.h"

using namespace entropydb;

namespace {

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

void DescribeRoute(const EntropyEngine& engine, const RouteDecision& dec) {
  if (dec.from_sample) {
    std::printf("    -> sample %zu (%s): variance %.3g beat the summary's "
                "%.3g\n",
                dec.sample_index,
                engine.store()->sample_entry(dec.sample_index).sample->name
                    .c_str(),
                dec.sample_variance, dec.summary_variance);
  } else {
    std::printf("    -> summary %zu%s: variance %.3g (best sample offered "
                "%.3g)\n",
                dec.index, dec.fallback ? " [fallback]" : "",
                dec.summary_variance, dec.sample_variance);
  }
}

}  // namespace

int main() {
  FlightsConfig cfg;
  cfg.num_rows = 200'000;
  cfg.seed = 42;
  auto table_ptr = Unwrap(FlightsGenerator::Generate(cfg));
  const Table& table = *table_ptr;
  AttrId origin = Unwrap(table.schema().IndexOf("origin"));
  AttrId dest = Unwrap(table.schema().IndexOf("dest"));

  // A hybrid store: top-correlated pairs get summaries AND stratified
  // sample companions, drawn on the same pairs.
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 800;
  opts.num_stratified_samples = 2;
  opts.sample_fraction = 0.01;
  auto store = Unwrap(SourceStore::Build(table, opts));
  auto engine = EntropyEngine::FromStore(store);
  std::printf("hybrid store: %zu summaries + %zu samples over n = %.0f\n\n",
              engine->num_summaries(), engine->num_samples(), engine->n());

  ExactEvaluator exact(table);

  // 1. A rare route: the stratified sample holds every existing stratum,
  //    so selective strata queries are near-exact there and the router
  //    prefers the sample's lower variance.
  std::printf("rare-value COUNTs (selective strata):\n");
  int shown = 0;
  for (const auto& [key, count] : exact.GroupByCount({origin, dest})) {
    if (count == 0 || count > 4 || shown >= 3) continue;
    CountingQuery q(table.num_attributes());
    q.Where(origin, AttrPredicate::Point(key[0]))
        .Where(dest, AttrPredicate::Point(key[1]));
    RouteDecision dec;
    auto est = Unwrap(engine->Answer(q, &dec));
    std::printf("  %s -> %s: true %llu, estimate %.2f\n",
                table.domain(origin).LabelFor(key[0]).c_str(),
                table.domain(dest).LabelFor(key[1]).c_str(),
                static_cast<unsigned long long>(count), est.expectation);
    DescribeRoute(*engine, dec);
    ++shown;
  }

  // 2. A broad aggregate: expansion weights make the sample's variance
  //    large on wide filters, so the summary keeps the query.
  std::printf("\nbroad aggregate (SUM of distance-bucket midpoints):\n");
  AttrId distance = Unwrap(table.schema().IndexOf("distance"));
  const Domain& dd = table.domain(distance);
  std::vector<double> weights(dd.size());
  for (Code v = 0; v < dd.size(); ++v) {
    weights[v] = dd.RepresentativeFor(v).as_double();
  }
  CountingQuery broad(table.num_attributes());
  broad.Where(origin, AttrPredicate::Point(0));
  RouteDecision dec;
  auto sum = Unwrap(
      engine->Answer(AggregateQuery::Sum(distance, weights, broad), &dec));
  std::printf("  SUM(distance) WHERE origin = %s: estimate %.3g\n",
              table.domain(origin).LabelFor(0).c_str(),
              sum.estimate.expectation);
  DescribeRoute(*engine, dec);

  // 3. A value the sample never saw: its miss floor keeps the variance
  //    finite but large, so the router falls back to the summary instead
  //    of trusting a silent zero.
  std::printf("\nnonexistent route (sample saw no matching row):\n");
  for (Code o = 0; o < table.domain(origin).size(); ++o) {
    bool done = false;
    for (Code d = 0; d < table.domain(dest).size() && !done; ++d) {
      CountingQuery q(table.num_attributes());
      q.Where(origin, AttrPredicate::Point(o))
          .Where(dest, AttrPredicate::Point(d));
      if (exact.Count(q) != 0) continue;
      RouteDecision dec2;
      auto est = Unwrap(engine->Answer(q, &dec2));
      std::printf("  %s -> %s: true 0, estimate %.2f\n",
                  table.domain(origin).LabelFor(o).c_str(),
                  table.domain(dest).LabelFor(d).c_str(), est.expectation);
      DescribeRoute(*engine, dec2);
      done = true;
    }
    if (done) break;
  }
  return 0;
}
