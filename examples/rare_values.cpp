// Demonstrates the paper's headline qualitative claim (Sec 6.2, Fig 6):
// a MaxEnt summary distinguishes *rare* values from *nonexistent* ones,
// which samples structurally cannot — a missing group in a sample is
// indistinguishable from a group that was never there.
//
// Run:  ./build/examples/rare_values

#include <cstdio>

#include "entropydb.h"

using namespace entropydb;

namespace {

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  FlightsConfig cfg;
  cfg.num_rows = 300'000;
  cfg.seed = 42;
  auto table_ptr = Unwrap(FlightsGenerator::Generate(cfg));
  const Table& table = *table_ptr;
  AttrId origin = Unwrap(table.schema().IndexOf("origin"));
  AttrId dest = Unwrap(table.schema().IndexOf("dest"));

  // Summary with COMPOSITE statistics on (origin, dest) plus a ZERO
  // overlay is what kills phantoms; here we use a plain COMPOSITE budget.
  StatisticSelector selector(SelectionHeuristic::kComposite);
  auto summary = Unwrap(
      EntropySummary::Build(table, selector.Select(table, origin, dest, 400)));
  auto uni = Unwrap(UniformSampler::Create(table, 0.01, 11));
  SampleEstimator sample(uni);

  WorkloadConfig wcfg;
  wcfg.num_heavy = 0;
  wcfg.num_light = 60;
  wcfg.num_nonexistent = 120;
  auto w = Unwrap(SelectWorkload(table, {origin, dest}, wcfg));

  std::vector<double> ent_light, ent_null, uni_light, uni_null;
  for (const auto& p : w.light) {
    auto q = PointQuery(table.num_attributes(), w.attrs, p.key);
    ent_light.push_back(Unwrap(summary->Answer(q)).expectation);
    uni_light.push_back(sample.Count(q).expectation);
  }
  for (const auto& p : w.nonexistent) {
    auto q = PointQuery(table.num_attributes(), w.attrs, p.key);
    ent_null.push_back(Unwrap(summary->Answer(q)).expectation);
    uni_null.push_back(sample.Count(q).expectation);
  }

  auto ent = ComputeFMeasure(ent_light, ent_null);
  auto uni_f = ComputeFMeasure(uni_light, uni_null);

  std::printf("rare-vs-nonexistent discrimination on (origin, dest):\n\n");
  std::printf("  %-12s %10s %10s %10s %14s %14s\n", "method", "precision",
              "recall", "F", "rare found", "false alarms");
  std::printf("  %-12s %10.3f %10.3f %10.3f %10zu/%zu %14zu\n", "EntropyDB",
              ent.precision, ent.recall, ent.f, ent.light_positive,
              ent_light.size(), ent.null_positive);
  std::printf("  %-12s %10.3f %10.3f %10.3f %10zu/%zu %14zu\n", "Uni 1%",
              uni_f.precision, uni_f.recall, uni_f.f, uni_f.light_positive,
              uni_light.size(), uni_f.null_positive);

  // Show a few concrete routes.
  std::printf("\n  example rare routes (true count 1-3):\n");
  std::printf("  %-14s %10s %12s %12s\n", "route", "true", "EntropyDB",
              "Uni 1%");
  int shown = 0;
  for (size_t i = 0; i < w.light.size() && shown < 5; ++i) {
    if (w.light[i].true_count > 3) continue;
    auto q = PointQuery(table.num_attributes(), w.attrs, w.light[i].key);
    std::printf("  %s->%-8s %10.0f %12.2f %12.1f\n",
                table.domain(origin).LabelFor(w.light[i].key[0]).c_str(),
                table.domain(dest).LabelFor(w.light[i].key[1]).c_str(),
                w.light[i].true_count, ent_light[i], uni_light[i]);
    ++shown;
  }
  std::printf(
      "\nThe sample reports 0 for almost every rare route — false negatives "
      "it\ncannot distinguish from truly nonexistent routes. The summary "
      "finds every\nrare route at the cost of some false alarms; a larger "
      "statistic budget\n(see bench_fig2_heuristics) trades those off.\n");
  return 0;
}
