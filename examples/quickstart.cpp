// Quickstart: build a multi-summary store over a synthetic flights table
// and answer exploratory queries through the routed engine facade,
// comparing against the exact answers.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "entropydb.h"

using namespace entropydb;

int main() {
  // 1. Load (here: generate) the dataset.
  FlightsConfig config;
  config.num_rows = 200'000;
  config.seed = 42;
  auto table_r = FlightsGenerator::Generate(config);
  if (!table_r.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 table_r.status().ToString().c_str());
    return 1;
  }
  const Table& table = **table_r;
  std::printf("table: %zu rows, %zu attributes, |Tup| = %.3g\n",
              table.num_rows(), table.num_attributes(),
              table.NumPossibleTuples());

  // 2. Build the store: one summary per top-ranked correlated pair
  // (excluding the near-uniform flight date), solved in parallel.
  auto date_attr = table.schema().IndexOf("fl_date");
  StoreOptions opts;
  opts.num_summaries = 2;
  opts.total_budget = 600;  // 300 2-D statistics per pair
  opts.exclude = {*date_attr};
  auto store_r = SummaryStore::Build(table, opts);
  if (!store_r.ok()) {
    std::fprintf(stderr, "build: %s\n", store_r.status().ToString().c_str());
    return 1;
  }
  auto store = *store_r;
  for (size_t k = 0; k < store->size(); ++k) {
    const ScoredPair& pair = store->entry(k).pairs.front();
    const auto& report = store->summary(k).solver_report();
    std::printf(
        "summary %zu: (%s, %s) V = %.3f — %zu groups, solved in %zu "
        "iterations (err %.2e)\n",
        k, table.schema().attribute(pair.a).name.c_str(),
        table.schema().attribute(pair.b).name.c_str(), pair.cramers_v,
        store->summary(k).polynomial().NumGroups(), report.iterations,
        report.final_error);
  }

  // 3. Serve it: the engine routes each query to the summary whose modeled
  // correlations cover it.
  auto engine = EntropyEngine::FromStore(store);

  // 4. Ask exploratory questions; compare with the exact scan.
  ExactEvaluator exact(table);
  struct Example {
    const char* label;
    Result<CountingQuery> query;
  } examples[] = {
      {"flights from S0",
       QueryBuilder(table).WhereEquals("origin", Value(std::string("S0"))).Build()},
      {"flights from S0 to S17",
       QueryBuilder(table)
           .WhereEquals("origin", Value(std::string("S0")))
           .WhereEquals("dest", Value(std::string("S17")))
           .Build()},
      {"mid-range flights (500-1000 miles)",
       QueryBuilder(table).WhereBetween("distance", 500, 1000).Build()},
      {"long flights shorter than 2 hours (rare)",
       QueryBuilder(table)
           .WhereBetween("distance", 1500, 3000)
           .WhereBetween("fl_time", 15, 120)
           .Build()},
  };

  std::printf("\n%-42s %12s %12s %10s %8s\n", "query", "true", "estimate",
              "stddev", "routed");
  for (auto& ex : examples) {
    if (!ex.query.ok()) {
      std::fprintf(stderr, "query build: %s\n",
                   ex.query.status().ToString().c_str());
      return 1;
    }
    RouteDecision dec;
    auto est = engine->Answer(*ex.query, &dec);
    if (!est.ok()) {
      std::fprintf(stderr, "answer: %s\n", est.status().ToString().c_str());
      return 1;
    }
    uint64_t truth = exact.Count(*ex.query);
    std::printf("%-42s %12llu %12.1f %10.1f %5zu%s\n", ex.label,
                static_cast<unsigned long long>(truth), est->expectation,
                est->StdDev(), dec.index, dec.fallback ? "*" : "");
  }
  std::printf("(* = fallback: no summary models the queried pair)\n");
  return 0;
}
