// Quickstart: build a MaxEnt summary of a synthetic flights table and answer
// a few exploratory queries, comparing against the exact answers.
//
// Run:  ./build/examples/quickstart

#include <cstdio>

#include "entropydb.h"

using namespace entropydb;

int main() {
  // 1. Load (here: generate) the dataset.
  FlightsConfig config;
  config.num_rows = 200'000;
  config.seed = 42;
  auto table_r = FlightsGenerator::Generate(config);
  if (!table_r.ok()) {
    std::fprintf(stderr, "generate: %s\n",
                 table_r.status().ToString().c_str());
    return 1;
  }
  const Table& table = **table_r;
  std::printf("table: %zu rows, %zu attributes, |Tup| = %.3g\n",
              table.num_rows(), table.num_attributes(),
              table.NumPossibleTuples());

  // 2. Pick correlated attribute pairs and gather COMPOSITE 2-D statistics.
  auto date_attr = table.schema().IndexOf("fl_date");
  auto ranked = PairSelector::RankPairs(table, {*date_attr});
  auto chosen =
      PairSelector::Choose(ranked, /*ba=*/2, PairStrategy::kAttributeCover);
  StatisticSelector selector(SelectionHeuristic::kComposite);
  std::vector<MultiDimStatistic> stats;
  for (const auto& pair : chosen) {
    std::printf("2-D statistics on (%s, %s), Cramer's V = %.3f\n",
                table.schema().attribute(pair.a).name.c_str(),
                table.schema().attribute(pair.b).name.c_str(),
                pair.cramers_v);
    auto s = selector.Select(table, pair.a, pair.b, /*budget=*/300);
    stats.insert(stats.end(), s.begin(), s.end());
  }

  // 3. Build the summary (compress the polynomial + solve the model).
  auto summary_r = EntropySummary::Build(table, stats);
  if (!summary_r.ok()) {
    std::fprintf(stderr, "build: %s\n", summary_r.status().ToString().c_str());
    return 1;
  }
  auto summary = *summary_r;
  const auto& report = summary->solver_report();
  std::printf(
      "summary: %zu variables, %zu compressed groups vs %.3g uncompressed "
      "terms,\n  solved in %zu iterations (err %.2e, %.2fs, converged=%s)\n",
      summary->registry().TotalVariables(), summary->polynomial().NumGroups(),
      summary->polynomial().UncompressedTermCount(), report.iterations,
      report.final_error, report.wall_seconds,
      report.converged ? "yes" : "no");

  // 4. Ask exploratory questions; compare with the exact scan.
  ExactEvaluator exact(table);
  struct Example {
    const char* label;
    Result<CountingQuery> query;
  } examples[] = {
      {"flights from S0",
       QueryBuilder(table).WhereEquals("origin", Value(std::string("S0"))).Build()},
      {"flights from S0 to S17",
       QueryBuilder(table)
           .WhereEquals("origin", Value(std::string("S0")))
           .WhereEquals("dest", Value(std::string("S17")))
           .Build()},
      {"mid-range flights (500-1000 miles)",
       QueryBuilder(table).WhereBetween("distance", 500, 1000).Build()},
      {"long flights shorter than 2 hours (rare)",
       QueryBuilder(table)
           .WhereBetween("distance", 1500, 3000)
           .WhereBetween("fl_time", 15, 120)
           .Build()},
  };

  std::printf("\n%-42s %12s %12s %10s\n", "query", "true", "estimate",
              "stddev");
  for (auto& ex : examples) {
    if (!ex.query.ok()) {
      std::fprintf(stderr, "query build: %s\n",
                   ex.query.status().ToString().c_str());
      return 1;
    }
    auto est = summary->AnswerCount(*ex.query);
    if (!est.ok()) {
      std::fprintf(stderr, "answer: %s\n", est.status().ToString().c_str());
      return 1;
    }
    uint64_t truth = exact.Count(*ex.query);
    std::printf("%-42s %12llu %12.1f %10.1f\n", ex.label,
                static_cast<unsigned long long>(truth), est->expectation,
                est->StdDev());
  }
  return 0;
}
