// Astronomy use case (Sec 6.3): summarize an N-body particle simulation and
// explore halo structure across snapshots without rescanning the data.
//
// Run:  ./build/examples/particles_exploration

#include <cstdio>

#include "entropydb.h"

using namespace entropydb;

namespace {

void Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) Fail(r.status());
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  ParticlesConfig cfg;
  cfg.rows_per_snapshot = 200'000;
  cfg.num_snapshots = 3;
  cfg.seed = 7;
  auto table_ptr = Unwrap(ParticlesGenerator::Generate(cfg));
  const Table& table = *table_ptr;
  std::printf("particles: %zu rows over 3 snapshots, |Tup| = %.3g\n",
              table.num_rows(), table.NumPossibleTuples());

  AttrId density = Unwrap(table.schema().IndexOf("density"));
  AttrId grp = Unwrap(table.schema().IndexOf("grp"));
  AttrId type = Unwrap(table.schema().IndexOf("type"));
  AttrId mass = Unwrap(table.schema().IndexOf("mass"));
  AttrId snapshot = Unwrap(table.schema().IndexOf("snapshot"));

  // Statistics: density-grp (the dominant correlation, the paper's
  // stratification pair), mass-type, and density-snapshot to capture
  // structure growth.
  StatisticSelector selector(SelectionHeuristic::kComposite);
  std::vector<MultiDimStatistic> stats;
  for (auto [a, b] : {std::pair{density, grp}, std::pair{mass, type},
                      std::pair{density, snapshot}}) {
    auto s = selector.Select(table, a, b, 80);
    stats.insert(stats.end(), s.begin(), s.end());
  }
  Timer t;
  auto summary = Unwrap(EntropySummary::Build(table, stats));
  std::printf("summary built in %.2fs; converged=%s, final error %.1e\n",
              t.ElapsedSeconds(),
              summary->solver_report().converged ? "yes" : "no",
              summary->solver_report().final_error);

  ExactEvaluator exact(table);

  // Question 1: how much clustered (grp=1) mass per snapshot?
  std::printf("\nclustered particle counts per snapshot "
              "(structure growth):\n");
  std::printf("  %-10s %12s %12s\n", "snapshot", "estimate", "true");
  for (Code s = 0; s < 3; ++s) {
    CountingQuery q(table.num_attributes());
    q.Where(snapshot, AttrPredicate::Point(s));
    q.Where(grp, AttrPredicate::Point(1));
    auto est = Unwrap(summary->Answer(q));
    std::printf("  %-10u %12.0f %12llu\n", s, est.expectation,
                static_cast<unsigned long long>(exact.Count(q)));
  }

  // Question 2: dense gas in halos — a selective 3-predicate query.
  std::printf("\ndense gas particles inside halos (density bucket >= 35):\n");
  CountingQuery q2(table.num_attributes());
  q2.Where(grp, AttrPredicate::Point(1));
  q2.Where(type, AttrPredicate::Point(0));
  q2.Where(density, AttrPredicate::Range(35, 57));
  auto est2 = Unwrap(summary->Answer(q2));
  std::printf("  estimate %.0f +/- %.0f, true %llu\n", est2.expectation,
              1.96 * est2.StdDev(),
              static_cast<unsigned long long>(exact.Count(q2)));

  // Question 3: phantom check — stars outside halos at extreme density
  // should be (nearly) nonexistent.
  CountingQuery q3(table.num_attributes());
  q3.Where(grp, AttrPredicate::Point(0));
  q3.Where(type, AttrPredicate::Point(2));
  q3.Where(density, AttrPredicate::Range(45, 57));
  auto est3 = Unwrap(summary->Answer(q3));
  std::printf(
      "\nbackground stars at halo-core density: estimate %.2f (rounds to "
      "%.0f), true %llu\n",
      est3.expectation, est3.RoundedCount(),
      static_cast<unsigned long long>(exact.Count(q3)));
  return 0;
}
