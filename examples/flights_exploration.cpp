// Interactive-data-exploration walkthrough on the flights workload — the
// scenario from the paper's introduction: an analyst browses aggregates at
// "human speed" against the summary instead of the base table, drilling
// from a coarse overview into a rare slice, with confidence intervals.
//
// Run:  ./build/examples/flights_exploration

#include <cstdio>

#include "entropydb.h"

using namespace entropydb;

namespace {

void Fail(const Status& s) {
  std::fprintf(stderr, "error: %s\n", s.ToString().c_str());
  std::exit(1);
}

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) Fail(r.status());
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  // -- offline: build the summary once --------------------------------
  FlightsConfig cfg;
  cfg.num_rows = 400'000;
  cfg.seed = 42;
  auto table_ptr = Unwrap(FlightsGenerator::Generate(cfg));
  const Table& table = *table_ptr;

  AttrId origin = Unwrap(table.schema().IndexOf("origin"));
  AttrId dest = Unwrap(table.schema().IndexOf("dest"));
  AttrId dist = Unwrap(table.schema().IndexOf("distance"));
  AttrId time = Unwrap(table.schema().IndexOf("fl_time"));

  StatisticSelector selector(SelectionHeuristic::kComposite);
  std::vector<MultiDimStatistic> stats;
  for (auto [a, b] : {std::pair{origin, dist}, std::pair{dest, dist},
                      std::pair{time, dist}}) {
    auto s = selector.Select(table, a, b, 260);
    stats.insert(stats.end(), s.begin(), s.end());
  }
  Timer build_timer;
  auto summary = Unwrap(EntropySummary::Build(table, stats));
  // Serve it through the engine facade, as a deployment would.
  auto engine = EntropyEngine::FromSummary(summary);
  std::printf("summary built in %.2fs (%zu iterations, %zu groups)\n",
              build_timer.ElapsedSeconds(),
              summary->solver_report().iterations,
              summary->polynomial().NumGroups());

  ExactEvaluator exact(table);
  const double n = summary->n();

  // -- step 1: overview — busiest origins ------------------------------
  std::printf("\nStep 1: top origins (GROUP BY origin ORDER BY cnt DESC "
              "LIMIT 5)\n");
  std::vector<std::vector<Code>> origin_keys;
  for (Code o = 0; o < table.domain(origin).size(); ++o) {
    origin_keys.push_back({o});
  }
  auto groups = Unwrap(engine->AnswerGroupBy(
      {origin}, origin_keys, CountingQuery(table.num_attributes())));
  std::vector<std::pair<double, Code>> ranked;
  for (const auto& [key, est] : groups) {
    ranked.emplace_back(est.expectation, key[0]);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("  %-8s %12s %12s %12s\n", "origin", "estimate", "true",
              "95% CI +/-");
  for (int i = 0; i < 5; ++i) {
    auto [est, code] = ranked[i];
    CountingQuery q(table.num_attributes());
    q.Where(origin, AttrPredicate::Point(code));
    const auto& e = groups.at({code});
    std::printf("  %-8s %12.0f %12llu %12.0f\n",
                table.domain(origin).LabelFor(code).c_str(), est,
                static_cast<unsigned long long>(exact.Count(q)),
                1.96 * e.StdDev());
  }

  // -- step 2: drill into the busiest origin's route lengths -----------
  Code top_origin = ranked[0].second;
  std::printf("\nStep 2: distance profile of flights from %s\n",
              table.domain(origin).LabelFor(top_origin).c_str());
  struct Band {
    const char* label;
    double lo, hi;
  } bands[] = {{"short   (<500mi)", 0, 499},
               {"medium  (500-1200mi)", 500, 1199},
               {"long    (1200-2000mi)", 1200, 1999},
               {"verylong(>2000mi)", 2000, 2915}};
  for (const auto& band : bands) {
    auto q = Unwrap(QueryBuilder(table)
                        .WhereCode("origin", top_origin)
                        .WhereBetween("distance", band.lo, band.hi)
                        .Build());
    auto est = Unwrap(engine->Answer(q));
    std::printf("  %-22s est %9.0f   true %9llu\n", band.label,
                est.expectation,
                static_cast<unsigned long long>(exact.Count(q)));
  }

  // -- step 3: a rare slice — where sampling would go blind -------------
  std::printf("\nStep 3: rare slice — very long flights out of a small "
              "airport\n");
  // Pick a light-hitter origin.
  auto hist = exact.Histogram1D(origin);
  Code small_origin = 0;
  uint64_t best = UINT64_MAX;
  for (Code o = 0; o < hist.size(); ++o) {
    if (hist[o] > 0 && hist[o] < best) {
      best = hist[o];
      small_origin = o;
    }
  }
  auto rare_q = Unwrap(QueryBuilder(table)
                           .WhereCode("origin", small_origin)
                           .WhereBetween("distance", 1500, 2915)
                           .Build());
  auto rare_est = Unwrap(engine->Answer(rare_q));
  auto uni = Unwrap(UniformSampler::Create(table, 0.01, 9));
  double sample_est = SampleEstimator(uni).Count(rare_q).expectation;
  auto [ci_lo, ci_hi] = rare_est.ConfidenceInterval(1.96, n);
  std::printf("  origin %s has only %llu flights in total\n",
              table.domain(origin).LabelFor(small_origin).c_str(),
              static_cast<unsigned long long>(best));
  std::printf("  EntropyDB: %.1f (95%% CI [%.1f, %.1f]) | 1%% sample: %.1f "
              "| true: %llu\n",
              rare_est.expectation, ci_lo, ci_hi, sample_est,
              static_cast<unsigned long long>(exact.Count(rare_q)));
  std::printf(
      "\nUnlike the sample, the summary can always say *something* about a\n"
      "rare region — the MaxEnt model infers mass from the statistics it "
      "holds.\n");
  return 0;
}
