// Offline/online split (Sec 5): build and persist a summary AND a
// multi-summary store, then answer queries from the files alone — no base
// data needed at query time. EntropyEngine::Open dispatches on the path:
// a file loads the single summary, a directory loads the routed store.
//
// Run:  ./build/examples/summary_persistence

#include <cstdio>
#include <filesystem>

#include "entropydb.h"

using namespace entropydb;

namespace {

template <typename T>
T Unwrap(Result<T> r) {
  if (!r.ok()) {
    std::fprintf(stderr, "error: %s\n", r.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(r).ValueOrDie();
}

}  // namespace

int main() {
  const std::string path = "/tmp/entropydb_flights.edb";
  const std::string store_dir = "/tmp/entropydb_flights.store";

  // ---- offline phase: data -> statistics -> solved summary -> file ----
  {
    FlightsConfig cfg;
    cfg.num_rows = 250'000;
    cfg.seed = 42;
    auto table = Unwrap(FlightsGenerator::Generate(cfg));
    AttrId time_a = Unwrap(table->schema().IndexOf("fl_time"));
    AttrId dist_a = Unwrap(table->schema().IndexOf("distance"));
    StatisticSelector sel(SelectionHeuristic::kComposite);
    auto summary = Unwrap(
        EntropySummary::Build(*table, sel.Select(*table, time_a, dist_a, 300)));
    Status s = summary->Save(path);
    if (!s.ok()) {
      std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
      return 1;
    }
    // A whole store persists the same way, as a directory.
    StoreOptions sopts;
    sopts.num_summaries = 2;
    sopts.total_budget = 600;
    auto store = Unwrap(SummaryStore::Build(*table, sopts));
    s = store->Save(store_dir);
    if (!s.ok()) {
      std::fprintf(stderr, "store save: %s\n", s.ToString().c_str());
      return 1;
    }
    FILE* f = std::fopen(path.c_str(), "rb");
    std::fseek(f, 0, SEEK_END);
    std::printf("offline: summary of %zu-row table saved to %s (%.1f KB)\n",
                table->num_rows(), path.c_str(),
                std::ftell(f) / 1024.0);
    std::fclose(f);
    // Table and summary go out of scope: nothing survives but the file.
  }

  // ---- online phase: file -> answers ---------------------------------
  {
    Timer load_timer;
    auto summary = Unwrap(EntropySummary::Load(path));
    std::printf("online: loaded in %.1f ms (n = %.0f, %zu attributes)\n",
                load_timer.ElapsedMillis(), summary->n(),
                summary->num_attributes());

    // Queries are expressed in code space against the stored domains; the
    // attribute names travel with the summary.
    const auto& names = summary->attr_names();
    std::printf("attributes:");
    for (const auto& nm : names) std::printf(" %s", nm.c_str());
    std::printf("\n\n");

    // COUNT of mid-range distances (codes 15..30 of the distance domain).
    CountingQuery q(summary->num_attributes());
    q.Where(4, AttrPredicate::Range(15, 30));
    Timer qt;
    auto est = Unwrap(summary->Answer(q));
    std::printf("COUNT(distance in buckets [15,30]) = %.0f +/- %.0f "
                "(answered in %.2f ms)\n",
                est.expectation, 1.96 * est.StdDev(), qt.ElapsedMillis());

    CountingQuery q2(summary->num_attributes());
    q2.Where(3, AttrPredicate::Range(0, 9));
    q2.Where(4, AttrPredicate::Range(40, 80));
    auto est2 = Unwrap(summary->Answer(q2));
    std::printf("COUNT(short time AND long distance) = %.2f (a "
                "near-impossible slice; rounds to %.0f)\n",
                est2.expectation, est2.RoundedCount());

    // The store restores the same way — without re-solving — and routes.
    Timer store_timer;
    auto engine = Unwrap(EntropyEngine::Open(store_dir));
    std::printf("\nstore: loaded %zu summaries in %.1f ms\n",
                engine->num_summaries(), store_timer.ElapsedMillis());
    RouteDecision dec;
    auto est3 = Unwrap(engine->Answer(q2, &dec));
    std::printf("COUNT(short time AND long distance) = %.2f via summary %zu"
                "%s\n",
                est3.expectation, dec.index,
                dec.fallback ? " (fallback)" : " (covering)");
  }
  std::remove(path.c_str());
  std::filesystem::remove_all(store_dir);
  return 0;
}
