#ifndef ENTROPYDB_WORKLOAD_METRICS_H_
#define ENTROPYDB_WORKLOAD_METRICS_H_

#include <cstddef>
#include <vector>

namespace entropydb {

/// The paper's symmetric relative error |true - est| / (true + est)
/// (Sec 6.2). Defined as 0 when both are 0, 1 when exactly one is 0.
double SymmetricError(double truth, double estimate);

/// Mean of SymmetricError over paired (truth, estimate) vectors.
double AverageError(const std::vector<double>& truths,
                    const std::vector<double>& estimates);

/// Precision / recall / F-measure for rare-vs-nonexistent discrimination
/// (Sec 6.2): an estimate is "positive" when its rounded count exceeds 0.
/// `light` are estimates at true light-hitter points (should be positive),
/// `null` at true nonexistent points (should be zero).
struct FMeasureResult {
  double precision = 0.0;
  double recall = 0.0;
  double f = 0.0;
  size_t light_positive = 0;  ///< true positives
  size_t null_positive = 0;   ///< false positives
};

FMeasureResult ComputeFMeasure(const std::vector<double>& light,
                               const std::vector<double>& null_values);

}  // namespace entropydb

#endif  // ENTROPYDB_WORKLOAD_METRICS_H_
