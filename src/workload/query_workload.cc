#include "workload/query_workload.h"

#include <algorithm>
#include <set>

#include "common/rng.h"
#include "query/exact_evaluator.h"

namespace entropydb {

CountingQuery PointQuery(size_t num_attributes,
                         const std::vector<AttrId>& attrs,
                         const std::vector<Code>& key) {
  CountingQuery q(num_attributes);
  for (size_t i = 0; i < attrs.size(); ++i) {
    q.Where(attrs[i], AttrPredicate::Point(key[i]));
  }
  return q;
}

Result<WorkloadSets> SelectWorkload(const Table& table,
                                    const std::vector<AttrId>& attrs,
                                    const WorkloadConfig& config) {
  if (attrs.empty()) {
    return Status::InvalidArgument("workload requires >= 1 attribute");
  }
  for (AttrId a : attrs) {
    if (a >= table.num_attributes()) {
      return Status::OutOfRange("workload attribute out of range");
    }
  }

  ExactEvaluator eval(table);
  auto groups = eval.GroupByCount(attrs);

  // Existing combinations sorted by count (descending), deterministic.
  std::vector<QueryPoint> existing;
  existing.reserve(groups.size());
  for (const auto& [key, count] : groups) {
    existing.push_back(QueryPoint{key, static_cast<double>(count)});
  }
  std::stable_sort(existing.begin(), existing.end(),
                   [](const QueryPoint& x, const QueryPoint& y) {
                     return x.true_count > y.true_count;
                   });

  WorkloadSets out;
  out.attrs = attrs;
  const size_t nh = std::min(config.num_heavy, existing.size());
  out.heavy.assign(existing.begin(), existing.begin() + nh);
  const size_t nl = std::min(config.num_light, existing.size() - nh);
  out.light.assign(existing.end() - nl, existing.end());

  // Nonexistent combinations: rejection-sample random keys not in `groups`.
  Rng rng(config.seed);
  std::set<std::vector<Code>> seen;
  double space = 1.0;
  for (AttrId a : attrs) space *= table.domain(a).size();
  const size_t want =
      std::min<size_t>(config.num_nonexistent,
                       space > static_cast<double>(groups.size())
                           ? static_cast<size_t>(space) - groups.size()
                           : 0);
  size_t attempts = 0;
  const size_t max_attempts = 1000 * (want + 1);
  while (out.nonexistent.size() < want && attempts < max_attempts) {
    ++attempts;
    std::vector<Code> key(attrs.size());
    for (size_t i = 0; i < attrs.size(); ++i) {
      key[i] = static_cast<Code>(rng.Uniform(table.domain(attrs[i]).size()));
    }
    if (groups.count(key) || seen.count(key)) continue;
    seen.insert(key);
    out.nonexistent.push_back(QueryPoint{key, 0.0});
  }
  return out;
}

}  // namespace entropydb
