#include "workload/particles.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.h"
#include "storage/table_builder.h"

namespace entropydb {

namespace {
constexpr size_t kNumHalos = 40;

struct Halo {
  double x, y, z;      // center in [0, 1)
  double sigma;        // spatial spread
  double mass_scale;   // drives density
  double vx, vy, vz;   // drift per snapshot
};
}  // namespace

Result<std::shared_ptr<Table>> ParticlesGenerator::Generate(
    const ParticlesConfig& config) {
  if (config.num_snapshots < 1 || config.num_snapshots > kNumSnapshot) {
    return Status::InvalidArgument("num_snapshots must be in [1, 3]");
  }

  Schema schema({
      AttributeSpec{"density", AttributeType::kNumeric, kNumDensity},
      AttributeSpec{"mass", AttributeType::kNumeric, kNumMass},
      AttributeSpec{"x", AttributeType::kNumeric, kNumPos},
      AttributeSpec{"y", AttributeType::kNumeric, kNumPos},
      AttributeSpec{"z", AttributeType::kNumeric, kNumPos},
      AttributeSpec{"grp", AttributeType::kInteger, kNumGrp},
      AttributeSpec{"type", AttributeType::kInteger, kNumType},
      AttributeSpec{"snapshot", AttributeType::kInteger, kNumSnapshot},
  });

  TableBuilder builder(schema);
  Domain density_dom = Domain::Binned(0.0, 11.6, kNumDensity);  // log scale
  Domain mass_dom = Domain::Binned(0.0, 10.4, kNumMass);        // log scale
  Domain pos_dom = Domain::Binned(0.0, 1.0, kNumPos);
  builder.SetDomain(0, density_dom);
  builder.SetDomain(1, mass_dom);
  builder.SetDomain(2, pos_dom);
  builder.SetDomain(3, pos_dom);
  builder.SetDomain(4, pos_dom);
  builder.SetDomain(5, Domain::Binned(0, kNumGrp, kNumGrp));
  builder.SetDomain(6, Domain::Binned(0, kNumType, kNumType));
  builder.SetDomain(7, Domain::Binned(0, kNumSnapshot, kNumSnapshot));

  Rng rng(config.seed);

  // Fixed halo catalog shared by all snapshots (they drift between them).
  std::vector<Halo> halos(kNumHalos);
  for (auto& h : halos) {
    h.x = rng.NextDouble();
    h.y = rng.NextDouble();
    h.z = rng.NextDouble();
    h.sigma = 0.01 + 0.04 * rng.NextDouble();
    h.mass_scale = 1.0 + 4.0 * rng.NextDouble();
    h.vx = (rng.NextDouble() - 0.5) * 0.08;
    h.vy = (rng.NextDouble() - 0.5) * 0.08;
    h.vz = (rng.NextDouble() - 0.5) * 0.08;
  }
  ZipfSampler halo_pick(kNumHalos, 1.2);

  auto wrap = [](double v) { return v - std::floor(v); };

  std::vector<Code> row(8);
  for (uint32_t snap = 0; snap < config.num_snapshots; ++snap) {
    // Structure grows over time: more clustered mass in later snapshots.
    const double cluster_frac = 0.30 + 0.08 * snap;
    for (size_t r = 0; r < config.rows_per_snapshot; ++r) {
      bool clustered = rng.NextBernoulli(cluster_frac);
      double x, y, z, log_density;
      // type: 0 = gas, 1 = dark matter, 2 = star. Stars form in clusters.
      uint32_t type;
      if (clustered) {
        const Halo& h = halos[halo_pick.Sample(rng)];
        x = wrap(h.x + h.vx * snap + rng.NextGaussian() * h.sigma);
        y = wrap(h.y + h.vy * snap + rng.NextGaussian() * h.sigma);
        z = wrap(h.z + h.vz * snap + rng.NextGaussian() * h.sigma);
        log_density = 5.5 + h.mass_scale + 0.25 * snap +
                      rng.NextGaussian() * 0.8;
        double u = rng.NextDouble();
        type = (u < 0.35) ? 0u : (u < 0.75 ? 1u : 2u);
      } else {
        x = rng.NextDouble();
        y = rng.NextDouble();
        z = rng.NextDouble();
        log_density = 1.5 + rng.NextGaussian() * 0.9;
        double u = rng.NextDouble();
        type = (u < 0.45) ? 0u : (u < 0.98 ? 1u : 2u);
      }
      // Mass depends on type; dark matter heaviest, gas lightest.
      double log_mass;
      switch (type) {
        case 0:
          log_mass = 2.0 + rng.NextGaussian() * 0.7;
          break;
        case 1:
          log_mass = 6.0 + rng.NextGaussian() * 1.0;
          break;
        default:
          log_mass = 4.0 + rng.NextGaussian() * 0.8;
          break;
      }
      row[0] = density_dom.BucketOf(std::clamp(log_density, 0.0, 11.59));
      row[1] = mass_dom.BucketOf(std::clamp(log_mass, 0.0, 10.39));
      row[2] = pos_dom.BucketOf(x);
      row[3] = pos_dom.BucketOf(y);
      row[4] = pos_dom.BucketOf(z);
      row[5] = clustered ? 1 : 0;
      row[6] = type;
      row[7] = snap;
      builder.AppendEncodedRow(row);
    }
  }
  return builder.Finish();
}

}  // namespace entropydb
