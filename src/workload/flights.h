#ifndef ENTROPYDB_WORKLOAD_FLIGHTS_H_
#define ENTROPYDB_WORKLOAD_FLIGHTS_H_

#include <memory>

#include "common/result.h"
#include "storage/table.h"

namespace entropydb {

/// Configuration of the synthetic flights workload.
struct FlightsConfig {
  /// Relation cardinality (the paper uses the full 1990-2015 BTS feed; we
  /// scale it down — the structural properties, not the byte count, drive
  /// the experiments).
  size_t num_rows = 500'000;
  /// Coarse = origin/dest states (54 values); fine = cities (147 values),
  /// matching Fig 3.
  bool fine_grained = false;
  uint64_t seed = 42;
};

/// \brief Generator for the paper's flights dataset substitute.
///
/// Schema and active-domain sizes follow Fig 3 exactly:
///   fl_date(307)  origin(54|147)  dest(54|147)  fl_time(62)  distance(81)
///
/// Correlation structure (the property the evaluation depends on):
///  - origin and dest popularity are Zipf-skewed, producing heavy and light
///    hitters and many nonexistent combinations;
///  - each (origin, dest) route has a fixed great-circle-like distance, so
///    origin-distance, dest-distance, and origin-dest are strongly
///    correlated;
///  - flight time is a noisy affine function of distance (time-distance is
///    the most correlated pair, the paper's pair 3);
///  - fl_date is nearly uniform and uncorrelated with everything (which is
///    why the paper attaches no 2-D statistic to it).
class FlightsGenerator {
 public:
  static Result<std::shared_ptr<Table>> Generate(const FlightsConfig& config);

  /// Number of location values for the given granularity (54 or 147).
  static uint32_t NumLocations(bool fine_grained) {
    return fine_grained ? kFineLocations : kCoarseLocations;
  }

  static constexpr uint32_t kNumDates = 307;
  static constexpr uint32_t kCoarseLocations = 54;
  static constexpr uint32_t kFineLocations = 147;
  static constexpr uint32_t kNumTimes = 62;
  static constexpr uint32_t kNumDistances = 81;
};

}  // namespace entropydb

#endif  // ENTROPYDB_WORKLOAD_FLIGHTS_H_
