#include "workload/flights.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/table_builder.h"

namespace entropydb {

namespace {

/// Deterministic route distance in miles for an (origin, dest) pair:
/// a hash-mixed value in [120, 2820], symmetric in its endpoints so that
/// out-and-back routes agree, as real distances do.
double RouteDistance(uint32_t o, uint32_t d) {
  uint32_t lo = std::min(o, d), hi = std::max(o, d);
  uint64_t h = (static_cast<uint64_t>(lo) << 32) | (hi + 1);
  h ^= h >> 33;
  h *= 0xFF51AFD7ED558CCDULL;
  h ^= h >> 33;
  h *= 0xC4CEB9FE1A85EC53ULL;
  h ^= h >> 33;
  return 120.0 + static_cast<double>(h % 2700);
}

std::vector<std::string> LocationLabels(uint32_t count, bool fine) {
  std::vector<std::string> labels(count);
  if (!fine) {
    for (uint32_t i = 0; i < count; ++i) {
      labels[i] = "S" + std::to_string(i);
    }
  } else {
    // Fine granularity: the paper keeps the two most popular cities of each
    // state and folds the rest into an 'Other' bucket per state (Sec 6.1);
    // 147 = 54 states alternating city-0/city-1/Other minus the tail.
    for (uint32_t i = 0; i < count; ++i) {
      uint32_t state = i / 3;
      uint32_t slot = i % 3;
      labels[i] = "S" + std::to_string(state) +
                  (slot == 0 ? "_C0" : (slot == 1 ? "_C1" : "_Other"));
    }
  }
  return labels;
}

}  // namespace

Result<std::shared_ptr<Table>> FlightsGenerator::Generate(
    const FlightsConfig& config) {
  const uint32_t num_loc = NumLocations(config.fine_grained);

  Schema schema({
      AttributeSpec{"fl_date", AttributeType::kInteger, kNumDates},
      AttributeSpec{"origin", AttributeType::kCategorical, 0},
      AttributeSpec{"dest", AttributeType::kCategorical, 0},
      AttributeSpec{"fl_time", AttributeType::kNumeric, kNumTimes},
      AttributeSpec{"distance", AttributeType::kNumeric, kNumDistances},
  });

  TableBuilder builder(schema);
  builder.SetDomain(0, Domain::Binned(0, kNumDates, kNumDates));
  builder.SetDomain(
      1, Domain::Categorical(LocationLabels(num_loc, config.fine_grained)));
  builder.SetDomain(
      2, Domain::Categorical(LocationLabels(num_loc, config.fine_grained)));
  // Flight time in minutes: [15, 480) in 62 bins; distance: [0, 2916) miles
  // in 81 bins (36-mile bins).
  Domain time_domain = Domain::Binned(15.0, 480.0, kNumTimes);
  Domain dist_domain = Domain::Binned(0.0, 2916.0, kNumDistances);
  builder.SetDomain(3, time_domain);
  builder.SetDomain(4, dist_domain);

  Rng rng(config.seed);
  ZipfSampler origin_zipf(num_loc, 1.05);
  ZipfSampler partner_rank(8, 0.8);  // rank of the route partner

  std::vector<Code> row(5);
  for (size_t r = 0; r < config.num_rows; ++r) {
    // Date: near uniform with a mild weekly ripple.
    uint32_t date = static_cast<uint32_t>(rng.Uniform(kNumDates));
    if (date % 7 == 6 && rng.NextBernoulli(0.3)) {
      date = static_cast<uint32_t>(rng.Uniform(kNumDates));
    }

    // Origin: Zipf-skewed popularity.
    uint32_t origin = static_cast<uint32_t>(origin_zipf.Sample(rng));

    // Destination: 70% of traffic goes to one of the origin's 8 fixed route
    // partners (hash-derived, so each origin has its own hub structure);
    // the rest is globally Zipf — this creates the origin-dest correlation.
    uint32_t dest;
    if (rng.NextBernoulli(0.7)) {
      uint32_t rank = static_cast<uint32_t>(partner_rank.Sample(rng));
      uint64_t h = origin * 0x9E3779B97F4A7C15ULL + rank * 0xBF58476D1CE4E5B9ULL;
      h ^= h >> 31;
      dest = static_cast<uint32_t>(h % num_loc);
    } else {
      dest = static_cast<uint32_t>(origin_zipf.Sample(rng));
    }
    if (dest == origin) dest = (dest + 1) % num_loc;

    // Distance: the route's fixed distance plus small routing noise.
    double dist = RouteDistance(origin, dest) + rng.NextGaussian() * 25.0;
    dist = std::clamp(dist, 0.0, 2915.0);

    // Flight time: affine in distance plus taxi/wind noise.
    double minutes = 22.0 + dist * 0.125 + rng.NextGaussian() * 12.0;
    minutes = std::clamp(minutes, 15.0, 479.0);

    row[0] = date;
    row[1] = origin;
    row[2] = dest;
    row[3] = time_domain.BucketOf(minutes);
    row[4] = dist_domain.BucketOf(dist);
    builder.AppendEncodedRow(row);
  }
  return builder.Finish();
}

}  // namespace entropydb
