#include "workload/metrics.h"

#include <cassert>
#include <cmath>

namespace entropydb {

double SymmetricError(double truth, double estimate) {
  if (truth <= 0.0 && estimate <= 0.0) return 0.0;
  return std::abs(truth - estimate) / (truth + estimate);
}

double AverageError(const std::vector<double>& truths,
                    const std::vector<double>& estimates) {
  assert(truths.size() == estimates.size());
  if (truths.empty()) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < truths.size(); ++i) {
    total += SymmetricError(truths[i], estimates[i]);
  }
  return total / static_cast<double>(truths.size());
}

FMeasureResult ComputeFMeasure(const std::vector<double>& light,
                               const std::vector<double>& null_values) {
  FMeasureResult r;
  for (double e : light) r.light_positive += (std::round(e) > 0.0) ? 1 : 0;
  for (double e : null_values) r.null_positive += (std::round(e) > 0.0) ? 1 : 0;
  const size_t predicted_positive = r.light_positive + r.null_positive;
  r.precision = predicted_positive == 0
                    ? 0.0
                    : static_cast<double>(r.light_positive) /
                          static_cast<double>(predicted_positive);
  r.recall = light.empty() ? 0.0
                           : static_cast<double>(r.light_positive) /
                                 static_cast<double>(light.size());
  r.f = (r.precision + r.recall) == 0.0
            ? 0.0
            : 2.0 * r.precision * r.recall / (r.precision + r.recall);
  return r;
}

}  // namespace entropydb
