#ifndef ENTROPYDB_WORKLOAD_QUERY_WORKLOAD_H_
#define ENTROPYDB_WORKLOAD_QUERY_WORKLOAD_H_

#include <vector>

#include "common/result.h"
#include "query/counting_query.h"
#include "storage/table.h"

namespace entropydb {

/// One evaluation point: a code combination over the template attributes
/// plus its exact count in the base table.
struct QueryPoint {
  std::vector<Code> key;
  double true_count = 0.0;
};

/// The three query populations of Sec 6.2: the most frequent combinations
/// (heavy hitters), the least frequent existing ones (light hitters), and
/// combinations absent from the data (nonexistent / null values).
struct WorkloadSets {
  std::vector<AttrId> attrs;
  std::vector<QueryPoint> heavy;
  std::vector<QueryPoint> light;
  std::vector<QueryPoint> nonexistent;
};

/// Workload selection parameters (paper defaults: 100 heavy, 100 light,
/// 200 nonexistent).
struct WorkloadConfig {
  size_t num_heavy = 100;
  size_t num_light = 100;
  size_t num_nonexistent = 200;
  uint64_t seed = 1234;
};

/// Builds the evaluation workload for a point group-by template over
/// `attrs`: SELECT attrs, COUNT(*) GROUP BY attrs, evaluated at heavy,
/// light, and nonexistent value combinations.
Result<WorkloadSets> SelectWorkload(const Table& table,
                                    const std::vector<AttrId>& attrs,
                                    const WorkloadConfig& config = {});

/// Lifts a workload point to the conjunctive counting query it denotes.
CountingQuery PointQuery(size_t num_attributes,
                         const std::vector<AttrId>& attrs,
                         const std::vector<Code>& key);

}  // namespace entropydb

#endif  // ENTROPYDB_WORKLOAD_QUERY_WORKLOAD_H_
