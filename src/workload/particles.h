#ifndef ENTROPYDB_WORKLOAD_PARTICLES_H_
#define ENTROPYDB_WORKLOAD_PARTICLES_H_

#include <memory>

#include "common/result.h"
#include "storage/table.h"

namespace entropydb {

/// Configuration of the synthetic N-body particles workload.
struct ParticlesConfig {
  /// Rows generated per snapshot (each paper snapshot is ~70 GB; we scale).
  size_t rows_per_snapshot = 300'000;
  /// 1, 2, or 3 snapshots (Fig 7 sweeps this).
  uint32_t num_snapshots = 3;
  uint64_t seed = 7;
};

/// \brief Generator for the paper's astronomy (ChaNGa N-body simulation)
/// dataset substitute.
///
/// Schema and active-domain sizes follow Fig 3:
///   density(58) mass(52) x(21) y(21) z(21) grp(2) type(3) snapshot(3)
///
/// Structural properties preserved from the real data:
///  - particles are either clustered (grp = 1, positions concentrated in a
///    few dozen halos, high density) or background (grp = 0, uniform
///    positions, low density) — so (density, grp) is the most correlated
///    pair and the paper's stratification choice;
///  - mass depends on particle type (gas/dark/star);
///  - halos drift and densities grow across snapshots, so later snapshots
///    are shifted, not i.i.d. copies.
class ParticlesGenerator {
 public:
  static Result<std::shared_ptr<Table>> Generate(
      const ParticlesConfig& config);

  static constexpr uint32_t kNumDensity = 58;
  static constexpr uint32_t kNumMass = 52;
  static constexpr uint32_t kNumPos = 21;
  static constexpr uint32_t kNumGrp = 2;
  static constexpr uint32_t kNumType = 3;
  static constexpr uint32_t kNumSnapshot = 3;
};

}  // namespace entropydb

#endif  // ENTROPYDB_WORKLOAD_PARTICLES_H_
