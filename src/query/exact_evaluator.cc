#include "query/exact_evaluator.h"

namespace entropydb {

uint64_t ExactEvaluator::Count(const CountingQuery& q) const {
  const ActivePredicates active(q);
  uint64_t count = 0;
  const size_t n = table_.num_rows();
  for (size_t row = 0; row < n; ++row) {
    count += active.Matches(table_, row) ? 1 : 0;
  }
  return count;
}

std::map<std::vector<Code>, uint64_t> ExactEvaluator::GroupByCount(
    const std::vector<AttrId>& attrs, const CountingQuery& q) const {
  const ActivePredicates active(q);
  std::map<std::vector<Code>, uint64_t> groups;
  std::vector<Code> key(attrs.size());
  const size_t n = table_.num_rows();
  for (size_t row = 0; row < n; ++row) {
    if (!active.Matches(table_, row)) continue;
    for (size_t i = 0; i < attrs.size(); ++i) key[i] = table_.at(row, attrs[i]);
    ++groups[key];
  }
  return groups;
}

std::vector<uint64_t> ExactEvaluator::Histogram1D(AttrId a) const {
  std::vector<uint64_t> hist(table_.domain(a).size(), 0);
  const auto& col = table_.column(a).codes();
  for (Code c : col) ++hist[c];
  return hist;
}

std::vector<uint64_t> ExactEvaluator::Histogram2D(AttrId a, AttrId b) const {
  const size_t nb = table_.domain(b).size();
  std::vector<uint64_t> hist(table_.domain(a).size() * nb, 0);
  const auto& ca = table_.column(a).codes();
  const auto& cb = table_.column(b).codes();
  for (size_t row = 0; row < ca.size(); ++row) {
    ++hist[static_cast<size_t>(ca[row]) * nb + cb[row]];
  }
  return hist;
}

}  // namespace entropydb
