#ifndef ENTROPYDB_QUERY_COUNTING_QUERY_H_
#define ENTROPYDB_QUERY_COUNTING_QUERY_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/predicate.h"
#include "storage/table.h"

namespace entropydb {

/// \brief A conjunctive counting query: SELECT COUNT(*) WHERE /\_i rho_i(A_i)
/// (Eq 16 of the paper). One predicate per attribute; kAny for ignored
/// attributes.
class CountingQuery {
 public:
  CountingQuery() = default;

  /// Query over `m` attributes with all-ANY predicates.
  explicit CountingQuery(size_t m) : preds_(m) {}

  explicit CountingQuery(std::vector<AttrPredicate> preds)
      : preds_(std::move(preds)) {}

  size_t num_attributes() const { return preds_.size(); }
  const AttrPredicate& predicate(AttrId a) const { return preds_[a]; }
  const std::vector<AttrPredicate>& predicates() const { return preds_; }

  /// Replaces the predicate of one attribute (builder style).
  CountingQuery& Where(AttrId a, AttrPredicate p) {
    preds_[a] = std::move(p);
    return *this;
  }

  /// True when the encoded tuple satisfies all predicates.
  bool Matches(const std::vector<Code>& tuple) const {
    for (AttrId a = 0; a < preds_.size(); ++a) {
      if (!preds_[a].Matches(tuple[a])) return false;
    }
    return true;
  }

  /// Number of attributes with a non-ANY predicate.
  size_t NumConstrained() const {
    size_t k = 0;
    for (const auto& p : preds_) k += p.is_any() ? 0 : 1;
    return k;
  }

  /// Per-attribute constrained flags (`mask[a]` != 0 when attribute `a`
  /// carries a non-ANY predicate) — the shape coverage routing keys on.
  std::vector<uint8_t> ConstrainedMask() const;

  std::string ToString(const Schema& schema) const;

  bool operator==(const CountingQuery& o) const { return preds_ == o.preds_; }

 private:
  std::vector<AttrPredicate> preds_;
};

/// \brief Row-scan helper: the non-ANY predicates of a query, bound once
/// so per-row matching touches only the constrained columns. Shared by the
/// exact evaluator and the sample estimator; the query must outlive it.
class ActivePredicates {
 public:
  explicit ActivePredicates(const CountingQuery& q) {
    for (AttrId a = 0; a < q.num_attributes(); ++a) {
      if (!q.predicate(a).is_any()) active_.emplace_back(a, &q.predicate(a));
    }
  }

  /// Binds every non-ANY predicate EXCEPT attribute `skip` — the residual
  /// filter of indexed sample evaluation, where `skip`'s predicate is
  /// already satisfied by row-group membership (sampling/sample_index.h).
  ActivePredicates(const CountingQuery& q, AttrId skip) {
    for (AttrId a = 0; a < q.num_attributes(); ++a) {
      if (a == skip || q.predicate(a).is_any()) continue;
      active_.emplace_back(a, &q.predicate(a));
    }
  }

  /// True when row `r` of `t` satisfies every bound predicate.
  bool Matches(const Table& t, size_t r) const {
    for (const auto& [a, p] : active_) {
      if (!p->Matches(t.at(r, a))) return false;
    }
    return true;
  }

 private:
  std::vector<std::pair<AttrId, const AttrPredicate*>> active_;
};

/// \brief Convenience builder that resolves attribute names and raw values
/// against a table's schema and domains.
class QueryBuilder {
 public:
  explicit QueryBuilder(const Table& table)
      : table_(table), query_(table.num_attributes()) {}

  /// WHERE attr = value (categorical label or numeric point).
  QueryBuilder& WhereEquals(const std::string& attr, const Value& v);

  /// WHERE attr BETWEEN lo AND hi in raw-value space (numeric domains).
  QueryBuilder& WhereBetween(const std::string& attr, double lo, double hi);

  /// WHERE attr = exact bucket code.
  QueryBuilder& WhereCode(const std::string& attr, Code code);

  /// WHERE attr IN (codes).
  QueryBuilder& WhereCodeRange(const std::string& attr, Code lo, Code hi);

  /// Finalizes; fails if any referenced attribute/value did not resolve.
  Result<CountingQuery> Build();

 private:
  const Table& table_;
  CountingQuery query_;
  Status first_error_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_COUNTING_QUERY_H_
