#ifndef ENTROPYDB_QUERY_PARSER_H_
#define ENTROPYDB_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/counting_query.h"
#include "storage/domain.h"

namespace entropydb {

/// \brief A parsed aggregate query over a summarized relation.
struct ParsedQuery {
  enum class Aggregate { kCount, kSum, kAvg };
  Aggregate aggregate = Aggregate::kCount;
  /// Aggregated attribute (SUM/AVG only).
  AttrId agg_attr = 0;
  /// The conjunctive filter (kAny everywhere when no WHERE clause).
  CountingQuery where;

  std::string AggregateName() const;
};

/// \brief Parses the paper's query dialect against a summary's attribute
/// names and domains:
///
///   COUNT(*) [WHERE cond [AND cond]...]
///   SUM(attr) [WHERE ...]      AVG(attr) [WHERE ...]
///
///   cond := attr = value
///         | attr BETWEEN lo AND hi        (raw-value range)
///         | attr IN (v1, v2, ...)
///
/// Values are categorical labels (optionally 'quoted') or numbers; numeric
/// values are mapped through the attribute's bucketized domain, exactly as
/// the paper transforms "a user's query into our domain" (Sec 6.1).
/// Keywords are case-insensitive; attribute names are case-sensitive.
Result<ParsedQuery> ParseQuery(const std::string& text,
                               const std::vector<std::string>& attr_names,
                               const std::vector<Domain>& domains);

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_PARSER_H_
