#ifndef ENTROPYDB_QUERY_PARSER_H_
#define ENTROPYDB_QUERY_PARSER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "query/counting_query.h"
#include "storage/domain.h"

namespace entropydb {

/// \brief A parsed aggregate query over a summarized relation.
struct ParsedQuery {
  enum class Aggregate { kCount, kSum, kAvg, kQuantile, kTopK };
  Aggregate aggregate = Aggregate::kCount;
  /// Aggregated attribute (SUM/AVG/QUANTILE/TOPK).
  AttrId agg_attr = 0;
  /// Quantile rank in (0, 1) — validated at parse time (QUANTILE only).
  double quantile = 0.5;
  /// Number of largest cells to report, >= 1 (TOPK only).
  uint64_t top_k = 1;
  /// The conjunctive filter (kAny everywhere when no WHERE clause).
  CountingQuery where;

  std::string AggregateName() const;
};

/// \brief A parsed two-relation equi-join aggregate (the --join dialect).
struct ParsedJoinQuery {
  enum class Aggregate { kCount, kSum };
  Aggregate aggregate = Aggregate::kCount;
  /// Left-side summed attribute (SUM only).
  AttrId agg_attr = 0;
  /// The join attributes (left / right relation).
  AttrId left_join = 0;
  AttrId right_join = 0;
  /// Per-side conjunctive filters.
  CountingQuery left_where;
  CountingQuery right_where;

  std::string AggregateName() const;
};

/// \brief Parses the paper's query dialect against a summary's attribute
/// names and domains:
///
///   COUNT(*) [WHERE cond [AND cond]...]
///   SUM(attr) [WHERE ...]      AVG(attr) [WHERE ...]
///   QUANTILE(attr, q) [WHERE ...]       q in (0, 1), e.g. 0.5 = median
///   TOPK(attr, k) [WHERE ...]           k >= 1 largest value groups
///
///   cond := attr = value
///         | attr BETWEEN lo AND hi        (raw-value range)
///         | attr IN (v1, v2, ...)
///
/// Values are categorical labels (optionally 'quoted') or numbers; numeric
/// values are mapped through the attribute's bucketized domain, exactly as
/// the paper transforms "a user's query into our domain" (Sec 6.1).
/// Keywords are case-insensitive; attribute names are case-sensitive.
Result<ParsedQuery> ParseQuery(const std::string& text,
                               const std::vector<std::string>& attr_names,
                               const std::vector<Domain>& domains);

/// \brief Parses the two-relation join dialect against BOTH schemas:
///
///   COUNT(*) ON j [WHERE jcond [AND jcond]...]
///   SUM(attr) ON j [WHERE ...]           attr is a LEFT-side attribute
///
///   j     := attr | left_attr = right_attr
///   jcond := left.attr <op> ... | right.attr <op> ...   (ops as above)
///
/// The bare `ON attr` form resolves the same name in both schemas; the
/// two-name form joins differently named attributes. Every WHERE condition
/// must carry a `left.` or `right.` prefix naming its relation. SUM's
/// attribute accepts an optional `left.` prefix.
Result<ParsedJoinQuery> ParseJoinQuery(
    const std::string& text, const std::vector<std::string>& left_names,
    const std::vector<Domain>& left_domains,
    const std::vector<std::string>& right_names,
    const std::vector<Domain>& right_domains);

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_PARSER_H_
