#ifndef ENTROPYDB_QUERY_LINEAR_QUERY_H_
#define ENTROPYDB_QUERY_LINEAR_QUERY_H_

#include <cstdint>
#include <vector>

#include "query/counting_query.h"
#include "storage/domain.h"

namespace entropydb {

/// \brief Mixed-radix indexing of the full tuple space Tup = D1 x ... x Dm
/// (Fig 1 of the paper).
///
/// Tuple (c1, .., cm) maps to index sum_i c_i * stride_i. Only usable when
/// |Tup| fits in memory; the dense reference model and property tests rely on
/// it, while production paths never materialize Tup.
class TupleSpace {
 public:
  explicit TupleSpace(std::vector<uint32_t> domain_sizes)
      : sizes_(std::move(domain_sizes)), strides_(sizes_.size()) {
    uint64_t stride = 1;
    for (size_t i = sizes_.size(); i-- > 0;) {
      strides_[i] = stride;
      stride *= sizes_[i];
    }
    total_ = stride;
  }

  size_t num_attributes() const { return sizes_.size(); }
  uint64_t size() const { return total_; }
  uint32_t domain_size(size_t a) const { return sizes_[a]; }

  /// Index of an encoded tuple.
  uint64_t IndexOf(const std::vector<Code>& tuple) const {
    uint64_t idx = 0;
    for (size_t a = 0; a < sizes_.size(); ++a) idx += tuple[a] * strides_[a];
    return idx;
  }

  /// Inverse of IndexOf.
  std::vector<Code> TupleAt(uint64_t index) const {
    std::vector<Code> t(sizes_.size());
    for (size_t a = 0; a < sizes_.size(); ++a) {
      t[a] = static_cast<Code>(index / strides_[a]);
      index %= strides_[a];
    }
    return t;
  }

 private:
  std::vector<uint32_t> sizes_;
  std::vector<uint64_t> strides_;
  uint64_t total_ = 1;
};

/// \brief A linear query q in R^d over the tuple space (Sec 3.1): the answer
/// on instance I is <q, n^I>.
///
/// Dense representation — test/reference use only.
class LinearQuery {
 public:
  explicit LinearQuery(uint64_t d) : coeffs_(d, 0.0) {}

  /// Lifts a conjunctive counting query to its 0/1 coefficient vector.
  static LinearQuery FromCounting(const TupleSpace& space,
                                  const CountingQuery& q) {
    LinearQuery lq(space.size());
    for (uint64_t i = 0; i < space.size(); ++i) {
      lq.coeffs_[i] = q.Matches(space.TupleAt(i)) ? 1.0 : 0.0;
    }
    return lq;
  }

  double& operator[](uint64_t i) { return coeffs_[i]; }
  double operator[](uint64_t i) const { return coeffs_[i]; }
  uint64_t dimension() const { return coeffs_.size(); }

  /// <q, n> for a frequency vector n.
  double Dot(const std::vector<double>& freq) const {
    double s = 0.0;
    for (uint64_t i = 0; i < coeffs_.size(); ++i) s += coeffs_[i] * freq[i];
    return s;
  }

 private:
  std::vector<double> coeffs_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_LINEAR_QUERY_H_
