#include "query/counting_query.h"

namespace entropydb {

std::vector<uint8_t> CountingQuery::ConstrainedMask() const {
  std::vector<uint8_t> mask(preds_.size(), 0);
  for (AttrId a = 0; a < preds_.size(); ++a) {
    mask[a] = preds_[a].is_any() ? 0 : 1;
  }
  return mask;
}

std::string CountingQuery::ToString(const Schema& schema) const {
  std::string out = "COUNT(*) WHERE ";
  bool first = true;
  for (AttrId a = 0; a < preds_.size(); ++a) {
    if (preds_[a].is_any()) continue;
    if (!first) out += " AND ";
    first = false;
    out += schema.attribute(a).name + " " + preds_[a].ToString();
  }
  if (first) out += "TRUE";
  return out;
}

QueryBuilder& QueryBuilder::WhereEquals(const std::string& attr,
                                        const Value& v) {
  auto idx = table_.schema().IndexOf(attr);
  if (!idx.ok()) {
    if (first_error_.ok()) first_error_ = idx.status();
    return *this;
  }
  auto code = table_.domain(*idx).Encode(v);
  if (!code.ok()) {
    if (first_error_.ok()) first_error_ = code.status();
    return *this;
  }
  query_.Where(*idx, AttrPredicate::Point(*code));
  return *this;
}

QueryBuilder& QueryBuilder::WhereBetween(const std::string& attr, double lo,
                                         double hi) {
  auto idx = table_.schema().IndexOf(attr);
  if (!idx.ok()) {
    if (first_error_.ok()) first_error_ = idx.status();
    return *this;
  }
  const Domain& dom = table_.domain(*idx);
  if (dom.is_categorical()) {
    if (first_error_.ok()) {
      first_error_ = Status::InvalidArgument(
          "WhereBetween on categorical attribute '" + attr + "'");
    }
    return *this;
  }
  auto [clo, chi] = dom.BucketRange(lo, hi);
  if (chi < clo) {
    // Empty range: use a set predicate with no codes.
    query_.Where(*idx, AttrPredicate::InSet({}));
  } else {
    query_.Where(*idx, AttrPredicate::Range(clo, chi));
  }
  return *this;
}

QueryBuilder& QueryBuilder::WhereCode(const std::string& attr, Code code) {
  auto idx = table_.schema().IndexOf(attr);
  if (!idx.ok()) {
    if (first_error_.ok()) first_error_ = idx.status();
    return *this;
  }
  query_.Where(*idx, AttrPredicate::Point(code));
  return *this;
}

QueryBuilder& QueryBuilder::WhereCodeRange(const std::string& attr, Code lo,
                                           Code hi) {
  auto idx = table_.schema().IndexOf(attr);
  if (!idx.ok()) {
    if (first_error_.ok()) first_error_ = idx.status();
    return *this;
  }
  query_.Where(*idx, AttrPredicate::Range(lo, hi));
  return *this;
}

Result<CountingQuery> QueryBuilder::Build() {
  if (!first_error_.ok()) return first_error_;
  return query_;
}

}  // namespace entropydb
