#include "query/parser.h"

#include <algorithm>
#include <cctype>

#include "common/str_util.h"

namespace entropydb {

namespace {

/// Flat token stream: identifiers/numbers/quoted strings plus the symbols
/// ( ) , = *.
struct Tokenizer {
  std::vector<std::string> tokens;
  size_t pos = 0;

  static Result<Tokenizer> Split(const std::string& text) {
    Tokenizer t;
    size_t i = 0;
    while (i < text.size()) {
      char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
        t.tokens.emplace_back(1, c);
        ++i;
        continue;
      }
      if (c == '\'') {
        size_t end = text.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated quoted string");
        }
        t.tokens.push_back(text.substr(i + 1, end - i - 1));
        i = end + 1;
        continue;
      }
      size_t start = i;
      while (i < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[i])) &&
             text[i] != '(' && text[i] != ')' && text[i] != ',' &&
             text[i] != '=') {
        ++i;
      }
      t.tokens.push_back(text.substr(start, i - start));
    }
    return t;
  }

  bool Done() const { return pos >= tokens.size(); }
  const std::string& Peek() const { return tokens[pos]; }
  std::string Next() { return tokens[pos++]; }

  /// Case-insensitive keyword check, consuming on match.
  bool Eat(const std::string& keyword) {
    if (Done()) return false;
    const std::string& t = tokens[pos];
    if (t.size() != keyword.size()) return false;
    for (size_t i = 0; i < t.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(t[i])) != keyword[i]) {
        return false;
      }
    }
    ++pos;
    return true;
  }

  Status Expect(const std::string& keyword) {
    if (Eat(keyword)) return Status::OK();
    return Status::InvalidArgument(
        "expected '" + keyword + "'" +
        (Done() ? " at end of query" : (", got '" + Peek() + "'")));
  }
};

Result<AttrId> ResolveAttr(const std::string& name,
                           const std::vector<std::string>& attr_names) {
  for (AttrId a = 0; a < attr_names.size(); ++a) {
    if (attr_names[a] == name) return a;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

/// Maps a raw token (label or number) to a code of `domain`.
Result<Code> ResolveValue(const std::string& token, const Domain& domain) {
  if (domain.is_categorical()) {
    return domain.Encode(Value(token));
  }
  ASSIGN_OR_RETURN(double v, ParseDouble(token));
  return domain.BucketOf(v);
}

Status ParseCondition(Tokenizer& tok, const std::vector<std::string>& names,
                      const std::vector<Domain>& domains,
                      CountingQuery* where) {
  if (tok.Done()) return Status::InvalidArgument("dangling WHERE/AND");
  ASSIGN_OR_RETURN(AttrId attr, ResolveAttr(tok.Next(), names));
  const Domain& domain = domains[attr];

  if (tok.Eat("=")) {
    if (tok.Done()) return Status::InvalidArgument("missing value after =");
    ASSIGN_OR_RETURN(Code code, ResolveValue(tok.Next(), domain));
    where->Where(attr, AttrPredicate::Point(code));
    return Status::OK();
  }
  if (tok.Eat("BETWEEN")) {
    if (tok.Done()) return Status::InvalidArgument("missing BETWEEN bounds");
    std::string lo_tok = tok.Next();
    RETURN_NOT_OK(tok.Expect("AND"));
    if (tok.Done()) return Status::InvalidArgument("missing upper bound");
    std::string hi_tok = tok.Next();
    if (domain.is_categorical()) {
      ASSIGN_OR_RETURN(Code lo, ResolveValue(lo_tok, domain));
      ASSIGN_OR_RETURN(Code hi, ResolveValue(hi_tok, domain));
      if (hi < lo) std::swap(lo, hi);
      where->Where(attr, AttrPredicate::Range(lo, hi));
    } else {
      ASSIGN_OR_RETURN(double lo, ParseDouble(lo_tok));
      ASSIGN_OR_RETURN(double hi, ParseDouble(hi_tok));
      auto [clo, chi] = domain.BucketRange(lo, hi);
      if (chi < clo) {
        where->Where(attr, AttrPredicate::InSet({}));  // empty range
      } else {
        where->Where(attr, AttrPredicate::Range(clo, chi));
      }
    }
    return Status::OK();
  }
  if (tok.Eat("IN")) {
    RETURN_NOT_OK(tok.Expect("("));
    std::vector<Code> codes;
    while (!tok.Eat(")")) {
      if (tok.Done()) return Status::InvalidArgument("unterminated IN list");
      if (tok.Eat(",")) continue;
      ASSIGN_OR_RETURN(Code code, ResolveValue(tok.Next(), domain));
      codes.push_back(code);
    }
    where->Where(attr, AttrPredicate::InSet(std::move(codes)));
    return Status::OK();
  }
  return Status::InvalidArgument("expected =, BETWEEN, or IN after '" +
                                 names[attr] + "'");
}

}  // namespace

std::string ParsedQuery::AggregateName() const {
  switch (aggregate) {
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kAvg:
      return "AVG";
  }
  return "?";
}

Result<ParsedQuery> ParseQuery(const std::string& text,
                               const std::vector<std::string>& attr_names,
                               const std::vector<Domain>& domains) {
  if (attr_names.size() != domains.size()) {
    return Status::InvalidArgument("attribute/domain arity mismatch");
  }
  ASSIGN_OR_RETURN(Tokenizer tok, Tokenizer::Split(text));
  ParsedQuery out;
  out.where = CountingQuery(attr_names.size());

  auto parse_agg_attr = [&]() -> Status {
    RETURN_NOT_OK(tok.Expect("("));
    if (tok.Done()) return Status::InvalidArgument("missing aggregate attr");
    ASSIGN_OR_RETURN(out.agg_attr, ResolveAttr(tok.Next(), attr_names));
    return tok.Expect(")");
  };

  if (tok.Eat("COUNT")) {
    out.aggregate = ParsedQuery::Aggregate::kCount;
    RETURN_NOT_OK(tok.Expect("("));
    RETURN_NOT_OK(tok.Expect("*"));
    RETURN_NOT_OK(tok.Expect(")"));
  } else if (tok.Eat("SUM")) {
    out.aggregate = ParsedQuery::Aggregate::kSum;
    RETURN_NOT_OK(parse_agg_attr());
  } else if (tok.Eat("AVG")) {
    out.aggregate = ParsedQuery::Aggregate::kAvg;
    RETURN_NOT_OK(parse_agg_attr());
  } else {
    return Status::InvalidArgument("query must start with COUNT, SUM or AVG");
  }

  if (tok.Done()) return out;
  RETURN_NOT_OK(tok.Expect("WHERE"));
  do {
    RETURN_NOT_OK(ParseCondition(tok, attr_names, domains, &out.where));
  } while (tok.Eat("AND"));

  if (!tok.Done()) {
    return Status::InvalidArgument("trailing tokens after query: '" +
                                   tok.Peek() + "'");
  }
  return out;
}

}  // namespace entropydb
