#include "query/parser.h"

#include <algorithm>
#include <cctype>

#include "common/str_util.h"

namespace entropydb {

namespace {

/// Flat token stream: identifiers/numbers/quoted strings plus the symbols
/// ( ) , = *.
struct Tokenizer {
  std::vector<std::string> tokens;
  size_t pos = 0;

  static Result<Tokenizer> Split(const std::string& text) {
    Tokenizer t;
    size_t i = 0;
    while (i < text.size()) {
      char c = text[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '(' || c == ')' || c == ',' || c == '=' || c == '*') {
        t.tokens.emplace_back(1, c);
        ++i;
        continue;
      }
      if (c == '\'') {
        size_t end = text.find('\'', i + 1);
        if (end == std::string::npos) {
          return Status::InvalidArgument("unterminated quoted string");
        }
        t.tokens.push_back(text.substr(i + 1, end - i - 1));
        i = end + 1;
        continue;
      }
      size_t start = i;
      while (i < text.size() &&
             !std::isspace(static_cast<unsigned char>(text[i])) &&
             text[i] != '(' && text[i] != ')' && text[i] != ',' &&
             text[i] != '=') {
        ++i;
      }
      t.tokens.push_back(text.substr(start, i - start));
    }
    return t;
  }

  bool Done() const { return pos >= tokens.size(); }
  const std::string& Peek() const { return tokens[pos]; }
  std::string Next() { return tokens[pos++]; }

  /// Case-insensitive keyword check, consuming on match.
  bool Eat(const std::string& keyword) {
    if (Done()) return false;
    const std::string& t = tokens[pos];
    if (t.size() != keyword.size()) return false;
    for (size_t i = 0; i < t.size(); ++i) {
      if (std::toupper(static_cast<unsigned char>(t[i])) != keyword[i]) {
        return false;
      }
    }
    ++pos;
    return true;
  }

  Status Expect(const std::string& keyword) {
    if (Eat(keyword)) return Status::OK();
    return Status::InvalidArgument(
        "expected '" + keyword + "'" +
        (Done() ? " at end of query" : (", got '" + Peek() + "'")));
  }
};

Result<AttrId> ResolveAttr(const std::string& name,
                           const std::vector<std::string>& attr_names) {
  for (AttrId a = 0; a < attr_names.size(); ++a) {
    if (attr_names[a] == name) return a;
  }
  return Status::NotFound("no attribute named '" + name + "'");
}

/// Maps a raw token (label or number) to a code of `domain`.
Result<Code> ResolveValue(const std::string& token, const Domain& domain) {
  if (domain.is_categorical()) {
    return domain.Encode(Value(token));
  }
  ASSIGN_OR_RETURN(double v, ParseDouble(token));
  return domain.BucketOf(v);
}

/// The operator half of a condition (everything after the attribute name),
/// shared by the single-relation and join dialects.
Status ParseConditionOps(Tokenizer& tok, AttrId attr, const Domain& domain,
                         const std::string& display_name,
                         CountingQuery* where) {
  if (tok.Eat("=")) {
    if (tok.Done()) return Status::InvalidArgument("missing value after =");
    ASSIGN_OR_RETURN(Code code, ResolveValue(tok.Next(), domain));
    where->Where(attr, AttrPredicate::Point(code));
    return Status::OK();
  }
  if (tok.Eat("BETWEEN")) {
    if (tok.Done()) return Status::InvalidArgument("missing BETWEEN bounds");
    std::string lo_tok = tok.Next();
    RETURN_NOT_OK(tok.Expect("AND"));
    if (tok.Done()) return Status::InvalidArgument("missing upper bound");
    std::string hi_tok = tok.Next();
    if (domain.is_categorical()) {
      ASSIGN_OR_RETURN(Code lo, ResolveValue(lo_tok, domain));
      ASSIGN_OR_RETURN(Code hi, ResolveValue(hi_tok, domain));
      if (hi < lo) std::swap(lo, hi);
      where->Where(attr, AttrPredicate::Range(lo, hi));
    } else {
      ASSIGN_OR_RETURN(double lo, ParseDouble(lo_tok));
      ASSIGN_OR_RETURN(double hi, ParseDouble(hi_tok));
      auto [clo, chi] = domain.BucketRange(lo, hi);
      if (chi < clo) {
        where->Where(attr, AttrPredicate::InSet({}));  // empty range
      } else {
        where->Where(attr, AttrPredicate::Range(clo, chi));
      }
    }
    return Status::OK();
  }
  if (tok.Eat("IN")) {
    RETURN_NOT_OK(tok.Expect("("));
    std::vector<Code> codes;
    while (!tok.Eat(")")) {
      if (tok.Done()) return Status::InvalidArgument("unterminated IN list");
      if (tok.Eat(",")) continue;
      ASSIGN_OR_RETURN(Code code, ResolveValue(tok.Next(), domain));
      codes.push_back(code);
    }
    where->Where(attr, AttrPredicate::InSet(std::move(codes)));
    return Status::OK();
  }
  return Status::InvalidArgument("expected =, BETWEEN, or IN after '" +
                                 display_name + "'");
}

Status ParseCondition(Tokenizer& tok, const std::vector<std::string>& names,
                      const std::vector<Domain>& domains,
                      CountingQuery* where) {
  if (tok.Done()) return Status::InvalidArgument("dangling WHERE/AND");
  ASSIGN_OR_RETURN(AttrId attr, ResolveAttr(tok.Next(), names));
  return ParseConditionOps(tok, attr, domains[attr], names[attr], where);
}

/// Strips a "left." / "right." qualifier from a join-dialect token.
/// Returns the side through `is_left` and the bare name through `rest`.
Status SplitSide(const std::string& token, bool* is_left, std::string* rest) {
  const size_t dot = token.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument(
        "join conditions must qualify attributes with 'left.' or "
        "'right.', got '" +
        token + "'");
  }
  const std::string side = token.substr(0, dot);
  *rest = token.substr(dot + 1);
  if (side == "left") {
    *is_left = true;
  } else if (side == "right") {
    *is_left = false;
  } else {
    return Status::InvalidArgument("unknown join side '" + side +
                                   "' (use left.<attr> or right.<attr>)");
  }
  return Status::OK();
}

}  // namespace

std::string ParsedQuery::AggregateName() const {
  switch (aggregate) {
    case Aggregate::kCount:
      return "COUNT";
    case Aggregate::kSum:
      return "SUM";
    case Aggregate::kAvg:
      return "AVG";
    case Aggregate::kQuantile:
      return "QUANTILE";
    case Aggregate::kTopK:
      return "TOPK";
  }
  return "?";
}

std::string ParsedJoinQuery::AggregateName() const {
  return aggregate == Aggregate::kCount ? "JOIN_COUNT" : "JOIN_SUM";
}

Result<ParsedQuery> ParseQuery(const std::string& text,
                               const std::vector<std::string>& attr_names,
                               const std::vector<Domain>& domains) {
  if (attr_names.size() != domains.size()) {
    return Status::InvalidArgument("attribute/domain arity mismatch");
  }
  ASSIGN_OR_RETURN(Tokenizer tok, Tokenizer::Split(text));
  ParsedQuery out;
  out.where = CountingQuery(attr_names.size());

  auto parse_agg_attr = [&]() -> Status {
    RETURN_NOT_OK(tok.Expect("("));
    if (tok.Done()) return Status::InvalidArgument("missing aggregate attr");
    ASSIGN_OR_RETURN(out.agg_attr, ResolveAttr(tok.Next(), attr_names));
    return tok.Expect(")");
  };

  if (tok.Eat("COUNT")) {
    out.aggregate = ParsedQuery::Aggregate::kCount;
    RETURN_NOT_OK(tok.Expect("("));
    RETURN_NOT_OK(tok.Expect("*"));
    RETURN_NOT_OK(tok.Expect(")"));
  } else if (tok.Eat("SUM")) {
    out.aggregate = ParsedQuery::Aggregate::kSum;
    RETURN_NOT_OK(parse_agg_attr());
  } else if (tok.Eat("AVG")) {
    out.aggregate = ParsedQuery::Aggregate::kAvg;
    RETURN_NOT_OK(parse_agg_attr());
  } else if (tok.Eat("QUANTILE")) {
    out.aggregate = ParsedQuery::Aggregate::kQuantile;
    RETURN_NOT_OK(tok.Expect("("));
    if (tok.Done()) return Status::InvalidArgument("missing aggregate attr");
    ASSIGN_OR_RETURN(out.agg_attr, ResolveAttr(tok.Next(), attr_names));
    RETURN_NOT_OK(tok.Expect(","));
    if (tok.Done()) return Status::InvalidArgument("missing quantile rank");
    ASSIGN_OR_RETURN(out.quantile, ParseDouble(tok.Next()));
    if (!(out.quantile > 0.0) || !(out.quantile < 1.0)) {
      return Status::InvalidArgument("quantile rank must be in (0, 1)");
    }
    RETURN_NOT_OK(tok.Expect(")"));
  } else if (tok.Eat("TOPK")) {
    out.aggregate = ParsedQuery::Aggregate::kTopK;
    RETURN_NOT_OK(tok.Expect("("));
    if (tok.Done()) return Status::InvalidArgument("missing aggregate attr");
    ASSIGN_OR_RETURN(out.agg_attr, ResolveAttr(tok.Next(), attr_names));
    RETURN_NOT_OK(tok.Expect(","));
    if (tok.Done()) return Status::InvalidArgument("missing top-k count");
    ASSIGN_OR_RETURN(const double k, ParseDouble(tok.Next()));
    if (!(k >= 1.0) || k != static_cast<uint64_t>(k)) {
      return Status::InvalidArgument("TOPK count must be a positive integer");
    }
    out.top_k = static_cast<uint64_t>(k);
    RETURN_NOT_OK(tok.Expect(")"));
  } else {
    return Status::InvalidArgument(
        "query must start with COUNT, SUM, AVG, QUANTILE or TOPK");
  }

  if (tok.Done()) return out;
  RETURN_NOT_OK(tok.Expect("WHERE"));
  do {
    RETURN_NOT_OK(ParseCondition(tok, attr_names, domains, &out.where));
  } while (tok.Eat("AND"));

  if (!tok.Done()) {
    return Status::InvalidArgument("trailing tokens after query: '" +
                                   tok.Peek() + "'");
  }
  return out;
}

Result<ParsedJoinQuery> ParseJoinQuery(
    const std::string& text, const std::vector<std::string>& left_names,
    const std::vector<Domain>& left_domains,
    const std::vector<std::string>& right_names,
    const std::vector<Domain>& right_domains) {
  if (left_names.size() != left_domains.size() ||
      right_names.size() != right_domains.size()) {
    return Status::InvalidArgument("attribute/domain arity mismatch");
  }
  ASSIGN_OR_RETURN(Tokenizer tok, Tokenizer::Split(text));
  ParsedJoinQuery out;
  out.left_where = CountingQuery(left_names.size());
  out.right_where = CountingQuery(right_names.size());

  if (tok.Eat("COUNT")) {
    out.aggregate = ParsedJoinQuery::Aggregate::kCount;
    RETURN_NOT_OK(tok.Expect("("));
    RETURN_NOT_OK(tok.Expect("*"));
    RETURN_NOT_OK(tok.Expect(")"));
  } else if (tok.Eat("SUM")) {
    out.aggregate = ParsedJoinQuery::Aggregate::kSum;
    RETURN_NOT_OK(tok.Expect("("));
    if (tok.Done()) return Status::InvalidArgument("missing aggregate attr");
    // SUM aggregates a LEFT-side attribute; the qualifier is optional.
    std::string name = tok.Next();
    if (name.rfind("left.", 0) == 0) name = name.substr(5);
    ASSIGN_OR_RETURN(out.agg_attr, ResolveAttr(name, left_names));
    RETURN_NOT_OK(tok.Expect(")"));
  } else {
    return Status::InvalidArgument(
        "join query must start with COUNT or SUM");
  }

  RETURN_NOT_OK(tok.Expect("ON"));
  if (tok.Done()) return Status::InvalidArgument("missing join attribute");
  const std::string left_tok = tok.Next();
  ASSIGN_OR_RETURN(out.left_join, ResolveAttr(left_tok, left_names));
  if (tok.Eat("=")) {
    if (tok.Done()) {
      return Status::InvalidArgument("missing right join attribute");
    }
    ASSIGN_OR_RETURN(out.right_join, ResolveAttr(tok.Next(), right_names));
  } else {
    // The bare form joins the SAME name on both sides.
    ASSIGN_OR_RETURN(out.right_join, ResolveAttr(left_tok, right_names));
  }

  if (tok.Done()) return out;
  RETURN_NOT_OK(tok.Expect("WHERE"));
  do {
    if (tok.Done()) return Status::InvalidArgument("dangling WHERE/AND");
    bool is_left = true;
    std::string name;
    RETURN_NOT_OK(SplitSide(tok.Next(), &is_left, &name));
    const std::vector<std::string>& names = is_left ? left_names : right_names;
    const std::vector<Domain>& domains = is_left ? left_domains : right_domains;
    CountingQuery* where = is_left ? &out.left_where : &out.right_where;
    ASSIGN_OR_RETURN(AttrId attr, ResolveAttr(name, names));
    RETURN_NOT_OK(
        ParseConditionOps(tok, attr, domains[attr], names[attr], where));
  } while (tok.Eat("AND"));

  if (!tok.Done()) {
    return Status::InvalidArgument("trailing tokens after query: '" +
                                   tok.Peek() + "'");
  }
  return out;
}

}  // namespace entropydb
