#ifndef ENTROPYDB_QUERY_PREDICATE_H_
#define ENTROPYDB_QUERY_PREDICATE_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "storage/domain.h"

namespace entropydb {

/// \brief Predicate over a single attribute, in encoded (bucket code) space.
///
/// The paper's optimized query answering (Sec 4.2, Eq 16) assumes every query
/// is a conjunction of one predicate per attribute, each of which is TRUE,
/// a point, a range, or (our generalization) an arbitrary code set. All four
/// shapes reduce to an "allowed code set" used to zero excluded 1-D model
/// variables.
class AttrPredicate {
 public:
  enum class Kind { kAny, kPoint, kRange, kSet };

  /// Matches every value (the query ignores this attribute).
  AttrPredicate() : kind_(Kind::kAny) {}

  static AttrPredicate Any() { return AttrPredicate(); }

  static AttrPredicate Point(Code c) {
    AttrPredicate p;
    p.kind_ = Kind::kPoint;
    p.lo_ = p.hi_ = c;
    return p;
  }

  /// Inclusive code range [lo, hi].
  static AttrPredicate Range(Code lo, Code hi) {
    AttrPredicate p;
    p.kind_ = Kind::kRange;
    p.lo_ = lo;
    p.hi_ = hi;
    return p;
  }

  /// Arbitrary set of codes (sorted, deduplicated internally).
  static AttrPredicate InSet(std::vector<Code> codes) {
    AttrPredicate p;
    p.kind_ = Kind::kSet;
    std::sort(codes.begin(), codes.end());
    codes.erase(std::unique(codes.begin(), codes.end()), codes.end());
    p.set_ = std::move(codes);
    return p;
  }

  Kind kind() const { return kind_; }
  bool is_any() const { return kind_ == Kind::kAny; }
  Code lo() const { return lo_; }
  Code hi() const { return hi_; }
  const std::vector<Code>& set() const { return set_; }

  /// True when code `c` satisfies the predicate.
  bool Matches(Code c) const {
    switch (kind_) {
      case Kind::kAny:
        return true;
      case Kind::kPoint:
        return c == lo_;
      case Kind::kRange:
        return lo_ <= c && c <= hi_;
      case Kind::kSet:
        return std::binary_search(set_.begin(), set_.end(), c);
    }
    return false;
  }

  /// Number of codes allowed out of a domain of `domain_size`.
  size_t Selectivity(size_t domain_size) const {
    switch (kind_) {
      case Kind::kAny:
        return domain_size;
      case Kind::kPoint:
        return lo_ < domain_size ? 1 : 0;
      case Kind::kRange: {
        Code hi = std::min<Code>(hi_, static_cast<Code>(domain_size - 1));
        return lo_ <= hi ? hi - lo_ + 1 : 0;
      }
      case Kind::kSet: {
        size_t cnt = 0;
        for (Code c : set_) cnt += (c < domain_size) ? 1 : 0;
        return cnt;
      }
    }
    return 0;
  }

  /// Renders e.g. "=[5]", "in [3,9]", "ANY".
  std::string ToString() const;

  bool operator==(const AttrPredicate& o) const {
    return kind_ == o.kind_ && lo_ == o.lo_ && hi_ == o.hi_ && set_ == o.set_;
  }

 private:
  Kind kind_;
  Code lo_ = 0;
  Code hi_ = 0;
  std::vector<Code> set_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_PREDICATE_H_
