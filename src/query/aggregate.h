#ifndef ENTROPYDB_QUERY_AGGREGATE_H_
#define ENTROPYDB_QUERY_AGGREGATE_H_

#include <limits>
#include <utility>
#include <vector>

#include "common/result.h"
#include "query/counting_query.h"
#include "storage/domain.h"

namespace entropydb {

/// \brief A probabilistic query answer: expectation plus dispersion.
///
/// Under the solved MaxEnt model the n tuples are i.i.d. draws from the
/// tuple distribution (the partition function factorizes as Z = P^n,
/// Lemma 3.1), so any counting query is Binomial(n, p) with
/// p = P[mask] / P. That yields the closed-form variance the paper lists as
/// its single-statistic formula (Sec 7). Sample-backed sources fill the
/// same struct with Horvitz-Thompson moments (docs/ESTIMATORS.md).
struct QueryEstimate {
  double expectation = 0.0;
  double variance = 0.0;

  double StdDev() const;
  /// Central `z`-sigma interval, clamped to [0, n].
  std::pair<double, double> ConfidenceInterval(double z, double n) const;
  /// Expectation rounded to the nearest integer count (the paper rounds
  /// sub-0.5 estimates to zero when detecting nonexistent values, Sec 4.3).
  double RoundedCount() const;
};

/// The aggregate a query computes. COUNT/SUM/AVG answer from any
/// EstimateSource; QUANTILE/TOPK derive from summary marginals at the
/// engine facade; the JOIN kinds fuse TWO engines' models on a shared
/// attribute (maxent/join_fusion.h).
enum class AggregateKind {
  kCount,
  kSum,
  kAvg,
  kQuantile,
  kTopK,
  kJoinCount,
  kJoinSum,
};

const char* AggregateKindName(AggregateKind kind);

/// \brief One typed aggregate query: the single argument every answer
/// surface — QueryAnswerer, EntropySummary, EstimateSource, QueryRouter,
/// ShardedStore, EntropyEngine — takes.
///
/// Build instances through the factories; unused fields keep their
/// defaults and are ignored by the kind's dispatcher. `weights` carries
/// one entry per value of `agg_attr` (bucket representatives — see
/// BucketWeights) for every kind that aggregates a value: SUM/AVG weight
/// sums, QUANTILE value representatives, JOIN_SUM the summed attribute.
struct AggregateQuery {
  AggregateKind kind = AggregateKind::kCount;
  /// The conjunctive filter over the (left, for joins) relation.
  CountingQuery where;
  /// Aggregated attribute (SUM/AVG/QUANTILE/TOPK; JOIN_SUM: left-side
  /// summed attribute).
  AttrId agg_attr = 0;
  /// Per-value weights of `agg_attr` (see BucketWeights). QUANTILE reads
  /// them as the value representative of each bucket.
  std::vector<double> weights;
  /// Quantile rank in (0, 1) (QUANTILE only).
  double q = 0.5;
  /// Number of largest group-by cells to report (TOPK only).
  size_t k = 1;

  // -- Join fields (kJoinCount / kJoinSum only) --------------------------
  /// Left / right relation's join attribute; their domains must agree in
  /// size (codes are fused positionally).
  AttrId join_attr = 0;
  AttrId right_join_attr = 0;
  /// The conjunctive filter over the right relation.
  CountingQuery right_where;

  static AggregateQuery Count(CountingQuery where);
  static AggregateQuery Sum(AttrId a, std::vector<double> weights,
                            CountingQuery where);
  static AggregateQuery Avg(AttrId a, std::vector<double> weights,
                            CountingQuery where);
  static AggregateQuery Quantile(AttrId a, std::vector<double> reps, double q,
                                 CountingQuery where);
  static AggregateQuery TopK(AttrId a, size_t k, CountingQuery where);
  static AggregateQuery JoinCount(AttrId left_join, AttrId right_join,
                                  CountingQuery left_where,
                                  CountingQuery right_where);
  static AggregateQuery JoinSum(AttrId sum_attr, std::vector<double> weights,
                                AttrId left_join, AttrId right_join,
                                CountingQuery left_where,
                                CountingQuery right_where);
};

/// Why a query landed on the source it did — surfaced by the query tool's
/// --store mode and asserted by the routing tests.
struct RouteDecision {
  /// Chosen summary entry; when `from_sample` is true this is the summary
  /// RUNNER-UP the winning sample was compared against.
  size_t index = 0;
  /// Modeled pairs of the chosen entry fully inside the query's constrained
  /// attribute set.
  size_t covered_pairs = 0;
  /// Entries that tied on maximal coverage (candidates the variance rule
  /// then decided between).
  size_t candidates = 1;
  /// True when NO entry covered a pair: summary routing fell back to the
  /// widest summary.
  bool fallback = false;
  /// The chosen source's estimate variance (the routing objective).
  double expected_variance = 0.0;

  // -- Hybrid stage (summary vs. sample), see docs/ESTIMATORS.md ---------
  // COUNT routing always fills these; aggregate routing (SUM) fills them
  // with the FILTER COUNT's variances — the shared objective — and only
  // when the store holds samples (they keep their defaults when the
  // hybrid stage is skipped).
  /// True when a sample source won the variance comparison: the answer
  /// came from store sample `sample_index`.
  bool from_sample = false;
  /// Winning sample (valid only when `from_sample`).
  size_t sample_index = 0;
  /// The best summary candidate's expected variance (stage-2 winner).
  double summary_variance = 0.0;
  /// The best sample's expected variance; +infinity when the store holds
  /// no samples (the comparison then never picks a sample).
  double sample_variance = std::numeric_limits<double>::infinity();

  // -- Shard pruning (engine/sharded_store.h, storage/zone_map.h) --------
  // Only sharded answering fills these. Per-shard decision slots carry
  // `pruned`; the facade-level decision EntropyEngine returns carries the
  // aggregate counters.
  /// True when the shard's zone map proved the query cannot match: the
  /// shard was skipped and contributed an exact {0, 0} to the merge.
  bool pruned = false;
  /// The attribute whose zone map proved the miss (valid when `pruned`).
  AttrId pruned_attr = 0;
  /// Shards skipped / actually answered for this query (facade-level
  /// aggregate; both 0 on non-sharded paths).
  size_t shards_pruned = 0;
  size_t shards_scanned = 0;
};

/// One group-by cell a TOPK answer reports: the value code plus its
/// estimated count.
struct GroupCell {
  Code code = 0;
  QueryEstimate estimate;
};

/// \brief The unified answer every Answer(AggregateQuery) surface returns.
///
/// `estimate` is always the headline answer (the COUNT, the SUM, the AVG
/// ratio, the quantile's value, the largest TOPK cell, the fused join
/// estimate). The remaining fields are kind-dependent extras:
///
///  * COUNT/SUM/AVG fill the SUM/COUNT moment legs plus their covariance
///    (`has_moments`) — the raw material cross-shard merging needs to keep
///    the delta-method AVG variance exact across shards
///    (docs/ESTIMATORS.md "Cross-shard merging").
///  * QUANTILE fills `bound_lo`/`bound_hi` (`has_bound`): the typed
///    value-space error bound from inverting the CDF at the z-shifted
///    cumulative counts.
///  * TOPK fills `cells`, largest estimated cell first (ties by code
///    ascending), each with its own variance as the per-cell error bound.
///  * Every routed path fills `route`.
struct QueryResult {
  QueryEstimate estimate;

  /// SUM / COUNT moment legs and their covariance Cov(S, C) under the
  /// answering source's law (multinomial for summaries, Horvitz-Thompson
  /// for samples). For COUNT the count leg simply repeats `estimate`.
  QueryEstimate sum;
  QueryEstimate count;
  double sum_count_cov = 0.0;
  bool has_moments = false;

  /// Typed error bound in value space (QUANTILE).
  double bound_lo = 0.0;
  double bound_hi = 0.0;
  bool has_bound = false;

  /// TOPK cells, largest first.
  std::vector<GroupCell> cells;

  /// How the query routed (facade-level aggregate for sharded engines).
  RouteDecision route;
};

/// Bucket-representative weights for aggregating over `dom`: the label
/// order index for categorical attributes, the bucket representative
/// (midpoint) for numeric ones — the one rule entropydb_query and the
/// server share.
std::vector<double> BucketWeights(const Domain& dom);

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_AGGREGATE_H_
