#ifndef ENTROPYDB_QUERY_EXACT_EVALUATOR_H_
#define ENTROPYDB_QUERY_EXACT_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <vector>

#include "query/counting_query.h"
#include "storage/table.h"

namespace entropydb {

/// \brief Exact (ground-truth) query evaluation by full columnar scan.
///
/// Used to (a) compute the statistics s_j fed to the MaxEnt solver,
/// (b) provide the "true" answers in every accuracy experiment, and
/// (c) time the exact-scan baseline.
class ExactEvaluator {
 public:
  explicit ExactEvaluator(const Table& table) : table_(table) {}

  /// COUNT(*) of rows matching `q`.
  uint64_t Count(const CountingQuery& q) const;

  /// GROUP BY `attrs` COUNT(*) over rows matching `q`; keys are code tuples
  /// in the order of `attrs`. Ordered map for deterministic iteration.
  std::map<std::vector<Code>, uint64_t> GroupByCount(
      const std::vector<AttrId>& attrs, const CountingQuery& q) const;

  /// GROUP BY with no filter.
  std::map<std::vector<Code>, uint64_t> GroupByCount(
      const std::vector<AttrId>& attrs) const {
    return GroupByCount(attrs, CountingQuery(table_.num_attributes()));
  }

  /// Dense 1-D histogram of attribute `a` (length = domain size).
  std::vector<uint64_t> Histogram1D(AttrId a) const;

  /// Dense 2-D histogram of attributes (a, b), row-major `[ca * Nb + cb]`.
  std::vector<uint64_t> Histogram2D(AttrId a, AttrId b) const;

 private:
  const Table& table_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_QUERY_EXACT_EVALUATOR_H_
