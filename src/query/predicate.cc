#include "query/predicate.h"

namespace entropydb {

std::string AttrPredicate::ToString() const {
  switch (kind_) {
    case Kind::kAny:
      return "ANY";
    case Kind::kPoint:
      return "=[" + std::to_string(lo_) + "]";
    case Kind::kRange:
      return "in [" + std::to_string(lo_) + "," + std::to_string(hi_) + "]";
    case Kind::kSet: {
      std::string out = "in {";
      for (size_t i = 0; i < set_.size(); ++i) {
        if (i > 0) out += ",";
        out += std::to_string(set_[i]);
      }
      return out + "}";
    }
  }
  return "?";
}

}  // namespace entropydb
