#include "query/aggregate.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

double QueryEstimate::StdDev() const { return std::sqrt(variance); }

std::pair<double, double> QueryEstimate::ConfidenceInterval(double z,
                                                            double n) const {
  double half = z * StdDev();
  return {std::max(0.0, expectation - half), std::min(n, expectation + half)};
}

double QueryEstimate::RoundedCount() const { return std::round(expectation); }

const char* AggregateKindName(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kQuantile:
      return "QUANTILE";
    case AggregateKind::kTopK:
      return "TOPK";
    case AggregateKind::kJoinCount:
      return "JOIN_COUNT";
    case AggregateKind::kJoinSum:
      return "JOIN_SUM";
  }
  return "?";
}

AggregateQuery AggregateQuery::Count(CountingQuery where) {
  AggregateQuery q;
  q.kind = AggregateKind::kCount;
  q.where = std::move(where);
  return q;
}

AggregateQuery AggregateQuery::Sum(AttrId a, std::vector<double> weights,
                                   CountingQuery where) {
  AggregateQuery q;
  q.kind = AggregateKind::kSum;
  q.agg_attr = a;
  q.weights = std::move(weights);
  q.where = std::move(where);
  return q;
}

AggregateQuery AggregateQuery::Avg(AttrId a, std::vector<double> weights,
                                   CountingQuery where) {
  AggregateQuery q = Sum(a, std::move(weights), std::move(where));
  q.kind = AggregateKind::kAvg;
  return q;
}

AggregateQuery AggregateQuery::Quantile(AttrId a, std::vector<double> reps,
                                        double rank, CountingQuery where) {
  AggregateQuery q;
  q.kind = AggregateKind::kQuantile;
  q.agg_attr = a;
  q.weights = std::move(reps);
  q.q = rank;
  q.where = std::move(where);
  return q;
}

AggregateQuery AggregateQuery::TopK(AttrId a, size_t k, CountingQuery where) {
  AggregateQuery q;
  q.kind = AggregateKind::kTopK;
  q.agg_attr = a;
  q.k = k;
  q.where = std::move(where);
  return q;
}

AggregateQuery AggregateQuery::JoinCount(AttrId left_join, AttrId right_join,
                                         CountingQuery left_where,
                                         CountingQuery right_where) {
  AggregateQuery q;
  q.kind = AggregateKind::kJoinCount;
  q.join_attr = left_join;
  q.right_join_attr = right_join;
  q.where = std::move(left_where);
  q.right_where = std::move(right_where);
  return q;
}

AggregateQuery AggregateQuery::JoinSum(AttrId sum_attr,
                                       std::vector<double> weights,
                                       AttrId left_join, AttrId right_join,
                                       CountingQuery left_where,
                                       CountingQuery right_where) {
  AggregateQuery q = JoinCount(left_join, right_join, std::move(left_where),
                               std::move(right_where));
  q.kind = AggregateKind::kJoinSum;
  q.agg_attr = sum_attr;
  q.weights = std::move(weights);
  return q;
}

std::vector<double> BucketWeights(const Domain& dom) {
  std::vector<double> weights(dom.size());
  for (Code v = 0; v < dom.size(); ++v) {
    weights[v] = dom.is_categorical()
                     ? static_cast<double>(v)
                     : dom.RepresentativeFor(v).as_double();
  }
  return weights;
}

}  // namespace entropydb
