#ifndef ENTROPYDB_STORAGE_PARTITIONER_H_
#define ENTROPYDB_STORAGE_PARTITIONER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace entropydb {

/// How rows are assigned to shards.
enum class PartitionScheme {
  /// Row i lands in shard i % S: perfectly balanced, order-dependent, and
  /// the right default for one-shot bulk partitioning.
  kRoundRobin,
  /// Row content is hashed (FNV-1a over the encoded codes, seeded) and the
  /// hash picks the shard: order-independent, so re-ingesting the same rows
  /// in any order reproduces the same partition — the scheme to use when
  /// shards are built incrementally from unordered feeds.
  kHash,
  /// Rows are routed by ONE attribute's code: shard = code * S / |domain|,
  /// so each shard owns a contiguous slice of the partition attribute's
  /// domain. Point AND range predicates on that attribute then land on few
  /// shards — the layout that makes zone-map pruning
  /// (storage/zone_map.h) maximally selective.
  kAttribute,
};

/// Scheme name as a manifest/CLI token ("roundrobin" / "hash" / "attr").
const char* PartitionSchemeName(PartitionScheme scheme);
/// Parses a bare scheme token (accepts "roundrobin", "rr", "hash").
/// kAttribute carries an attribute and parses only as a full spec below.
Result<PartitionScheme> ParsePartitionScheme(const std::string& token);

/// A scheme plus its parameter: kAttribute needs the partition attribute,
/// the other schemes ignore it. This is what manifests persist and the
/// `--shard-scheme` flag parses.
struct PartitionSpec {
  PartitionScheme scheme = PartitionScheme::kRoundRobin;
  AttrId attr = 0;
};

/// Manifest/CLI token of a spec: "roundrobin", "hash", or "attr:<id>".
std::string PartitionSpecToken(const PartitionSpec& spec);
/// Parses "roundrobin" / "rr" / "hash" / "attr:<id>" (id is the numeric
/// attribute index; CLI layers resolve names to indexes before this).
Result<PartitionSpec> ParsePartitionSpec(const std::string& token);

/// Knobs for TablePartitioner::Partition.
struct PartitionOptions {
  /// Number of row-shards S. Must satisfy 1 <= S <= base rows.
  size_t num_shards = 4;
  PartitionScheme scheme = PartitionScheme::kRoundRobin;
  /// Seed folded into the row hash (kHash only), so distinct deployments
  /// can decorrelate their shard layouts.
  uint64_t hash_seed = 0x9e3779b97f4a7c15ull;
  /// The routing attribute (kAttribute only). Must index into the table's
  /// schema; S must not exceed its domain size or some shard's slice is
  /// empty.
  AttrId partition_attr = 0;
};

/// \brief Splits one encoded Table into S disjoint row-shards.
///
/// Every shard keeps the base table's schema AND active-domain descriptors
/// verbatim — codes stay position-compatible across shards, which is what
/// lets per-shard summaries/samples answer the same CountingQuery and lets
/// their estimates merge additively (engine/sharded_store.h). A value that
/// never occurs in some shard simply has a zero 1-D target there (the
/// solver pins such variables at alpha = 0).
class TablePartitioner {
 public:
  /// Seeded FNV-1a over the encoded codes of one row (the kHash key).
  static uint64_t RowHash(const Table& table, size_t row, uint64_t seed);

  /// Shard index of one row under `opts` (exposed for tests and for
  /// incremental ingest paths that route rows without materializing
  /// shards).
  static size_t ShardOf(const Table& table, size_t row,
                        const PartitionOptions& opts);

  /// Materializes the S shards. Row order within a shard preserves base
  /// order, so the split is deterministic for both schemes. Fails if
  /// `opts.num_shards` is 0 or exceeds the row count, or if hashing left a
  /// shard empty (a shard must have rows to fit a maxent model to — lower
  /// S or use round-robin).
  static Result<std::vector<std::shared_ptr<Table>>> Partition(
      const Table& table, const PartitionOptions& opts);
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_PARTITIONER_H_
