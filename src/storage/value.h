#ifndef ENTROPYDB_STORAGE_VALUE_H_
#define ENTROPYDB_STORAGE_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

namespace entropydb {

/// Logical attribute types at the ingestion boundary. After ingestion every
/// attribute is dictionary/bucket encoded to dense codes (see Domain), which
/// is the representation the whole MaxEnt pipeline operates on — the paper
/// assumes discrete, ordered active domains (Sec 3.1) and bucketizes
/// continuous attributes (footnote 1).
enum class AttributeType {
  kCategorical,  ///< string-labelled values, dictionary encoded
  kNumeric,      ///< real-valued, equi-width bucketized
  kInteger,      ///< integer-valued, bucketized with unit or equi-width bins
};

std::string AttributeTypeName(AttributeType type);

/// \brief A raw cell value before encoding.
class Value {
 public:
  Value() : rep_(int64_t{0}) {}
  explicit Value(int64_t v) : rep_(v) {}
  explicit Value(double v) : rep_(v) {}
  explicit Value(std::string v) : rep_(std::move(v)) {}

  bool is_int() const { return std::holds_alternative<int64_t>(rep_); }
  bool is_double() const { return std::holds_alternative<double>(rep_); }
  bool is_string() const { return std::holds_alternative<std::string>(rep_); }

  int64_t as_int() const { return std::get<int64_t>(rep_); }
  double as_double() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(rep_));
    return std::get<double>(rep_);
  }
  const std::string& as_string() const { return std::get<std::string>(rep_); }

  /// Renders the value for CSV output / debugging.
  std::string ToString() const;

  bool operator==(const Value& other) const { return rep_ == other.rep_; }

 private:
  std::variant<int64_t, double, std::string> rep_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_VALUE_H_
