#ifndef ENTROPYDB_STORAGE_TABLE_H_
#define ENTROPYDB_STORAGE_TABLE_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "storage/column.h"
#include "storage/domain.h"
#include "storage/schema.h"

namespace entropydb {

/// \brief An immutable, fully encoded in-memory relation.
///
/// This is the "ordered bag of n tuples" of the paper (Sec 3.1) in columnar
/// form: one code column per attribute plus the per-attribute active domain
/// descriptors. The total tuple space Tup = D1 x ... x Dm is implicit.
class Table {
 public:
  Table(Schema schema, std::vector<Domain> domains,
        std::vector<Column> columns)
      : schema_(std::move(schema)),
        domains_(std::move(domains)),
        columns_(std::move(columns)) {}

  const Schema& schema() const { return schema_; }
  size_t num_attributes() const { return schema_.num_attributes(); }
  size_t num_rows() const {
    return columns_.empty() ? 0 : columns_[0].size();
  }

  const Domain& domain(AttrId a) const { return domains_[a]; }
  const std::vector<Domain>& domains() const { return domains_; }
  const Column& column(AttrId a) const { return columns_[a]; }

  /// Code of attribute `a` in row `row`.
  Code at(size_t row, AttrId a) const { return columns_[a][row]; }

  /// |Tup|: product of active-domain sizes (as double; can exceed 2^64).
  double NumPossibleTuples() const {
    double d = 1.0;
    for (const auto& dom : domains_) d *= dom.size();
    return d;
  }

  /// Approximate memory footprint of the encoded data in bytes.
  size_t MemoryBytes() const {
    size_t total = 0;
    for (const auto& c : columns_) total += c.MemoryBytes();
    return total;
  }

 private:
  Schema schema_;
  std::vector<Domain> domains_;
  std::vector<Column> columns_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_TABLE_H_
