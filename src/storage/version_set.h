#ifndef ENTROPYDB_STORAGE_VERSION_SET_H_
#define ENTROPYDB_STORAGE_VERSION_SET_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace entropydb {

/// \brief Immutable store versions behind one atomic CURRENT pointer.
///
/// OrpheusDB-style bolt-on versioning (PAPERS.md): a *versioned root* is a
/// directory whose entries are complete, never-mutated store directories
/// "v1", "v2", ... plus a checksummed CURRENT file naming the live one.
/// Every rebuild, `--append`, or compaction publishes a NEW version
/// directory and then flips CURRENT — the flip (tmp file + rename + parent
/// sync) is the single commit point, so a crash anywhere leaves either the
/// old pointer or the new one, never a torn state. A crash after a version
/// directory is built but before the flip strands a "v<id>" with id >
/// current; Open sweeps those with the same SweepStaleEntries staleness
/// rule ShardedStore::Load applies to stranded shards.
///
/// Readers that opened v(n) keep answering from it byte-for-byte unchanged
/// while v(n+1) publishes: nothing under a version directory is ever
/// rewritten after its flip. Retired versions (id < current) stay on disk —
/// and stay queryable, which is what makes time travel work — until the
/// retention GC at the next publish drops all but the newest
/// `Options::retain` of them.
///
/// Layout of a versioned root:
///
///     root/
///       CURRENT        "ENTROPYDB_CURRENT_V1" + "current <id>" +
///                      "retain <k>" + CRC32C footer
///       v3/            retained historical version (time travel)
///       v4/            current version (a normal sharded/source store dir)
///
/// Thread safety: all methods are internally synchronized; publishes are
/// additionally expected to come from one writer at a time (the server's
/// maintenance thread or one CLI process), which the on-disk protocol does
/// not itself enforce.
class VersionSet {
 public:
  struct Options {
    /// How many versions (counting the current one) survive the retention
    /// GC that runs after each publish. The knob is persisted in CURRENT
    /// so every opener — including a read-only CLI — applies the
    /// publisher's window rather than its own default. 0 (the default)
    /// means "adopt the on-disk value" (2 for a fresh root); a nonzero
    /// value overrides and is persisted by the next publish. Minimum 1.
    size_t retain = 0;
    /// Verify the CURRENT file's CRC32C footer on read.
    bool verify_checksums = true;
  };

  /// True when `root` is a versioned root (has a CURRENT file). Engine
  /// open uses this to dispatch directories: versioned root vs plain
  /// sharded/source store dir.
  static bool IsVersionedRoot(const std::string& root, Env* env);

  /// Opens (creating `root` if needed) and garbage-collects: stranded
  /// "v<id>" with id > current, versions older than the retention window,
  /// and "CURRENT.tmp" / "v*.tmp-*" staging leftovers all go. A root with
  /// no CURRENT opens empty (current() == 0); the first publish creates
  /// v1. A present-but-corrupt CURRENT is kCorruption, never silently
  /// empty.
  static Result<std::unique_ptr<VersionSet>> Open(const std::string& root,
                                                  Env* env, Options options);
  static Result<std::unique_ptr<VersionSet>> Open(const std::string& root,
                                                  Env* env) {
    return Open(root, env, Options());
  }

  /// The live version id; 0 when no version has been published yet.
  uint64_t current() const;

  /// Retained version ids, ascending (current() is last). Every listed id
  /// has a complete store directory at VersionDir(id).
  std::vector<uint64_t> versions() const;

  /// "root/v<id>" — a normal store directory openable by EntropyEngine.
  std::string VersionDir(uint64_t id) const;

  /// VersionDir(current()); invalid to call when current() == 0.
  std::string CurrentDir() const;

  const std::string& root() const { return root_; }

  /// The effective retention window (persisted value, or the explicit
  /// Options::retain override).
  size_t retain() const;

  /// Reserves the next version id (max seen + 1). The caller builds a
  /// complete store at VersionDir(id) — from scratch, or starting from
  /// CloneCurrentTo — and then calls Publish(id). Until Publish, the
  /// directory is invisible to readers and is swept as stranded if the
  /// process crashes.
  uint64_t BeginVersion();

  /// Populates VersionDir(id) from the current version at O(files) cost:
  /// files inside subdirectories (immutable shard data, the bulk of the
  /// bytes) are hard-linked via Env::LinkFile, while top-level files
  /// (MANIFEST, ingest.wal — the ones ingest mutates in place) are byte
  /// copies so appending in the clone cannot reach back into the published
  /// version. Requires current() != 0.
  Status CloneCurrentTo(uint64_t id);

  /// Commits VersionDir(id) as the live version: syncs the root, flips
  /// CURRENT atomically, then runs the retention GC. After return, new
  /// readers open v<id>; readers already pinned on an older retained
  /// version are unaffected.
  Status Publish(uint64_t id);

  /// Re-reads CURRENT from disk, picking up a publish made by another
  /// process (e.g. a CLI append while the server runs). Returns true when
  /// the current version changed.
  Result<bool> Refresh();

 private:
  VersionSet(std::string root, Env* env, Options options)
      : root_(std::move(root)), env_(env), options_(options) {}

  /// Drops every "v*" / "CURRENT.tmp" entry not in the retained window;
  /// the ONE staleness rule, shared with ShardedStore::Load through
  /// SweepStaleEntries. Caller holds mu_.
  void GCLocked();
  Status WriteCurrentLocked(uint64_t id);
  Status LoadLocked();

  const std::string root_;
  Env* const env_;
  const Options options_;

  mutable std::mutex mu_;
  uint64_t current_ = 0;
  /// Effective retention window: on-disk value unless Options overrode it.
  size_t retain_ = 2;
  /// Highest id handed out by BeginVersion, so two unpublished builds in
  /// one process cannot collide on a directory name.
  uint64_t next_hint_ = 0;
  std::vector<uint64_t> versions_;
};

/// Name of the atomic pointer file inside a versioned root.
extern const char kCurrentFileName[];

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_VERSION_SET_H_
