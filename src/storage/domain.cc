#include "storage/domain.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace entropydb {

Domain Domain::Categorical(std::vector<std::string> labels) {
  Domain d;
  d.categorical_ = true;
  d.labels_ = std::move(labels);
  d.index_.reserve(d.labels_.size());
  for (Code i = 0; i < d.labels_.size(); ++i) {
    d.index_.emplace(d.labels_[i], i);
  }
  return d;
}

Domain Domain::Binned(double lo, double hi, uint32_t buckets) {
  Domain d;
  d.categorical_ = false;
  d.buckets_ = buckets;
  d.lo_ = lo;
  d.hi_ = hi;
  d.width_ = (hi - lo) / static_cast<double>(buckets);
  return d;
}

Result<Code> Domain::Encode(const Value& v) const {
  if (categorical_) {
    if (!v.is_string()) {
      return Status::InvalidArgument(
          "categorical domain expects string value, got " + v.ToString());
    }
    auto it = index_.find(v.as_string());
    if (it == index_.end()) {
      return Status::NotFound("label not in domain: " + v.as_string());
    }
    return it->second;
  }
  return BucketOf(v.as_double());
}

Code Domain::BucketOf(double v) const {
  if (v <= lo_) return 0;
  double raw = (v - lo_) / width_;
  auto idx = static_cast<int64_t>(std::floor(raw));
  if (idx >= buckets_) idx = buckets_ - 1;
  if (idx < 0) idx = 0;
  return static_cast<Code>(idx);
}

std::pair<Code, Code> Domain::BucketRange(double lo, double hi) const {
  if (hi < lo_ || lo >= hi_) {
    return {1, 0};  // empty
  }
  return {BucketOf(lo), BucketOf(hi)};
}

std::string Domain::LabelFor(Code code) const {
  if (categorical_) {
    return code < labels_.size() ? labels_[code] : "<bad-code>";
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[%.6g, %.6g)", lo_ + width_ * code,
                lo_ + width_ * (code + 1));
  return buf;
}

Value Domain::RepresentativeFor(Code code) const {
  if (categorical_) return Value(LabelFor(code));
  return Value(lo_ + width_ * (static_cast<double>(code) + 0.5));
}

}  // namespace entropydb
