#include "storage/partitioner.h"

namespace entropydb {

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kRoundRobin:
      return "roundrobin";
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kAttribute:
      return "attr";
  }
  return "unknown";
}

Result<PartitionScheme> ParsePartitionScheme(const std::string& token) {
  if (token == "roundrobin" || token == "rr") {
    return PartitionScheme::kRoundRobin;
  }
  if (token == "hash") return PartitionScheme::kHash;
  return Status::InvalidArgument("unknown partition scheme: " + token);
}

std::string PartitionSpecToken(const PartitionSpec& spec) {
  if (spec.scheme == PartitionScheme::kAttribute) {
    return "attr:" + std::to_string(spec.attr);
  }
  return PartitionSchemeName(spec.scheme);
}

Result<PartitionSpec> ParsePartitionSpec(const std::string& token) {
  PartitionSpec spec;
  if (token.rfind("attr:", 0) == 0) {
    const std::string id = token.substr(5);
    if (id.empty() ||
        id.find_first_not_of("0123456789") != std::string::npos) {
      return Status::InvalidArgument(
          "bad attribute partition spec '" + token +
          "' (expected attr:<index>)");
    }
    spec.scheme = PartitionScheme::kAttribute;
    spec.attr = static_cast<AttrId>(std::stoul(id));
    return spec;
  }
  ASSIGN_OR_RETURN(spec.scheme, ParsePartitionScheme(token));
  return spec;
}

uint64_t TablePartitioner::RowHash(const Table& table, size_t row,
                                   uint64_t seed) {
  // FNV-1a over the row's codes, offset-basis perturbed by the seed. Codes
  // are hashed byte-wise so shards stay stable across Code width changes.
  uint64_t h = 1469598103934665603ull ^ seed;
  for (AttrId a = 0; a < table.num_attributes(); ++a) {
    uint64_t c = table.at(row, a);
    for (int byte = 0; byte < 4; ++byte) {
      h ^= (c >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  }
  return h;
}

size_t TablePartitioner::ShardOf(const Table& table, size_t row,
                                 const PartitionOptions& opts) {
  switch (opts.scheme) {
    case PartitionScheme::kRoundRobin:
      return row % opts.num_shards;
    case PartitionScheme::kHash:
      return RowHash(table, row, opts.hash_seed) % opts.num_shards;
    case PartitionScheme::kAttribute: {
      // Contiguous domain slices: shard s owns codes in
      // [s * N / S, (s + 1) * N / S), so both point and range predicates
      // on the partition attribute touch a contiguous few shards.
      const uint64_t code = table.at(row, opts.partition_attr);
      const uint64_t domain = table.domain(opts.partition_attr).size();
      return static_cast<size_t>(code * opts.num_shards / domain);
    }
  }
  return row % opts.num_shards;
}

Result<std::vector<std::shared_ptr<Table>>> TablePartitioner::Partition(
    const Table& table, const PartitionOptions& opts) {
  const size_t s = opts.num_shards;
  const size_t rows = table.num_rows();
  if (s == 0) return Status::InvalidArgument("num_shards must be >= 1");
  if (s > rows) {
    return Status::InvalidArgument(
        "cannot cut " + std::to_string(rows) + " rows into " +
        std::to_string(s) + " shards: every shard needs rows to model");
  }
  if (opts.scheme == PartitionScheme::kAttribute) {
    if (opts.partition_attr >= table.num_attributes()) {
      return Status::InvalidArgument(
          "partition attribute " + std::to_string(opts.partition_attr) +
          " out of range (relation has " +
          std::to_string(table.num_attributes()) + " attributes)");
    }
    if (s > table.domain(opts.partition_attr).size()) {
      return Status::InvalidArgument(
          "cannot cut a domain of " +
          std::to_string(table.domain(opts.partition_attr).size()) +
          " codes into " + std::to_string(s) +
          " attribute shards: some slice would be empty");
    }
  }

  // Pass 1: shard of every row, plus per-shard sizes for exact reserves.
  std::vector<uint32_t> shard_of(rows);
  std::vector<size_t> sizes(s, 0);
  for (size_t r = 0; r < rows; ++r) {
    const size_t i = ShardOf(table, r, opts);
    shard_of[r] = static_cast<uint32_t>(i);
    ++sizes[i];
  }
  for (size_t i = 0; i < s; ++i) {
    if (sizes[i] == 0) {
      return Status::InvalidArgument(
          "partitioning left shard " + std::to_string(i) +
          " empty (scheme " + PartitionSchemeName(opts.scheme) +
          "); lower the shard count or use round-robin");
    }
  }

  // Pass 2: scatter the columns. Shards inherit the base schema and
  // domains verbatim (position-compatible codes, see the class comment).
  const size_t m = table.num_attributes();
  std::vector<std::vector<std::vector<Code>>> codes(s);
  for (size_t i = 0; i < s; ++i) {
    codes[i].resize(m);
    for (size_t a = 0; a < m; ++a) codes[i][a].reserve(sizes[i]);
  }
  for (size_t r = 0; r < rows; ++r) {
    auto& dst = codes[shard_of[r]];
    for (AttrId a = 0; a < m; ++a) dst[a].push_back(table.at(r, a));
  }

  std::vector<std::shared_ptr<Table>> shards;
  shards.reserve(s);
  for (size_t i = 0; i < s; ++i) {
    std::vector<Column> cols;
    cols.reserve(m);
    for (size_t a = 0; a < m; ++a) cols.emplace_back(std::move(codes[i][a]));
    shards.push_back(std::make_shared<Table>(table.schema(), table.domains(),
                                             std::move(cols)));
  }
  return shards;
}

}  // namespace entropydb
