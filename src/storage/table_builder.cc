#include "storage/table_builder.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

namespace entropydb {

namespace {
constexpr uint32_t kDefaultNumericBuckets = 64;
}  // namespace

TableBuilder::TableBuilder(Schema schema)
    : schema_(std::move(schema)), pinned_(schema_.num_attributes()) {}

void TableBuilder::SetDomain(AttrId a, Domain domain) {
  pinned_[a] = std::move(domain);
}

Status TableBuilder::AppendRow(const std::vector<Value>& row) {
  if (row.size() != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " != schema arity " +
        std::to_string(schema_.num_attributes()));
  }
  raw_rows_.push_back(row);
  return Status::OK();
}

void TableBuilder::AppendEncodedRow(const std::vector<Code>& codes) {
  encoded_rows_.push_back(codes);
}

size_t TableBuilder::num_buffered() const {
  return raw_rows_.size() + encoded_rows_.size();
}

Result<std::shared_ptr<Table>> TableBuilder::Finish() {
  const size_t m = schema_.num_attributes();
  std::vector<Domain> domains(m);

  // Derive or adopt the domain of every attribute.
  for (AttrId a = 0; a < m; ++a) {
    if (pinned_[a].has_value()) {
      domains[a] = *pinned_[a];
      continue;
    }
    const AttributeSpec& spec = schema_.attribute(a);
    if (spec.type == AttributeType::kCategorical) {
      std::set<std::string> labels;
      for (const auto& row : raw_rows_) {
        if (!row[a].is_string()) {
          return Status::InvalidArgument("attribute '" + spec.name +
                                         "' expects string values");
        }
        labels.insert(row[a].as_string());
      }
      domains[a] = Domain::Categorical(
          std::vector<std::string>(labels.begin(), labels.end()));
    } else {
      double lo = std::numeric_limits<double>::infinity();
      double hi = -std::numeric_limits<double>::infinity();
      for (const auto& row : raw_rows_) {
        double v = row[a].as_double();
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
      if (raw_rows_.empty()) {
        lo = 0.0;
        hi = 1.0;
      }
      uint32_t buckets = spec.buckets;
      if (buckets == 0) {
        if (spec.type == AttributeType::kInteger) {
          buckets = static_cast<uint32_t>(
              std::max<double>(1.0, std::floor(hi) - std::ceil(lo) + 1.0));
        } else {
          buckets = kDefaultNumericBuckets;
        }
      }
      // Nudge the upper edge so the max value falls inside the last bucket.
      double span = hi - lo;
      double edge = (span == 0.0) ? lo + 1.0 : hi + span * 1e-9;
      domains[a] = Domain::Binned(lo, edge, buckets);
    }
  }

  // Validate pre-encoded rows against the final domains.
  for (const auto& row : encoded_rows_) {
    if (row.size() != m) {
      return Status::InvalidArgument("encoded row arity mismatch");
    }
    for (AttrId a = 0; a < m; ++a) {
      if (row[a] >= domains[a].size()) {
        return Status::OutOfRange("encoded code " + std::to_string(row[a]) +
                                  " exceeds domain of attribute '" +
                                  schema_.attribute(a).name + "'");
      }
    }
  }

  std::vector<Column> columns(m);
  const size_t n = raw_rows_.size() + encoded_rows_.size();
  for (auto& c : columns) c.Reserve(n);

  for (const auto& row : raw_rows_) {
    for (AttrId a = 0; a < m; ++a) {
      ASSIGN_OR_RETURN(Code code, domains[a].Encode(row[a]));
      columns[a].Append(code);
    }
  }
  for (const auto& row : encoded_rows_) {
    for (AttrId a = 0; a < m; ++a) {
      columns[a].Append(row[a]);
    }
  }

  raw_rows_.clear();
  encoded_rows_.clear();
  return std::make_shared<Table>(schema_, std::move(domains),
                                 std::move(columns));
}

}  // namespace entropydb
