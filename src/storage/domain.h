#ifndef ENTROPYDB_STORAGE_DOMAIN_H_
#define ENTROPYDB_STORAGE_DOMAIN_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace entropydb {

/// Dense encoded value: index into an attribute's active domain.
using Code = uint32_t;

/// \brief The active domain of one attribute: an ordered list of buckets.
///
/// The paper's model (Sec 3.1) requires each attribute domain to be discrete
/// and ordered; continuous attributes are equi-width bucketized (Sec 6.1).
/// A Domain is either:
///  - categorical: one bucket per distinct label (dictionary), or
///  - binned:      `size` equi-width buckets covering [lo, hi).
class Domain {
 public:
  Domain() = default;

  /// Builds a categorical domain from ordered distinct labels.
  static Domain Categorical(std::vector<std::string> labels);

  /// Builds an equi-width binned domain over [lo, hi) with `buckets` buckets.
  /// Requires buckets >= 1 and hi > lo.
  static Domain Binned(double lo, double hi, uint32_t buckets);

  bool is_categorical() const { return categorical_; }

  /// Number of distinct buckets (N_i in the paper).
  uint32_t size() const {
    return categorical_ ? static_cast<uint32_t>(labels_.size()) : buckets_;
  }

  /// Encodes a raw value to its bucket code.
  /// Categorical: exact label lookup (NotFound if absent).
  /// Binned: floor((v - lo) / width), clamped to the outer buckets.
  Result<Code> Encode(const Value& v) const;

  /// Human-readable bucket label. Binned buckets render as "[lo, hi)".
  std::string LabelFor(Code code) const;

  /// Representative (midpoint / label) raw value for a bucket.
  Value RepresentativeFor(Code code) const;

  /// For binned domains: the bucket covering `v` without clamping check.
  Code BucketOf(double v) const;

  /// For binned domains: inclusive code range covering [lo, hi]; empty
  /// (second < first) when the range misses the domain entirely.
  std::pair<Code, Code> BucketRange(double lo, double hi) const;

  double bin_lo() const { return lo_; }
  double bin_hi() const { return hi_; }
  double bin_width() const { return width_; }

  const std::vector<std::string>& labels() const { return labels_; }

  bool operator==(const Domain& other) const {
    return categorical_ == other.categorical_ && labels_ == other.labels_ &&
           buckets_ == other.buckets_ && lo_ == other.lo_ && hi_ == other.hi_;
  }

 private:
  bool categorical_ = true;
  // Categorical representation.
  std::vector<std::string> labels_;
  std::unordered_map<std::string, Code> index_;
  // Binned representation.
  uint32_t buckets_ = 0;
  double lo_ = 0.0;
  double hi_ = 0.0;
  double width_ = 0.0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_DOMAIN_H_
