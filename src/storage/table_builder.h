#ifndef ENTROPYDB_STORAGE_TABLE_BUILDER_H_
#define ENTROPYDB_STORAGE_TABLE_BUILDER_H_

#include <memory>
#include <vector>

#include "common/result.h"
#include "storage/table.h"

namespace entropydb {

/// \brief Two-phase builder: buffer raw rows, then derive domains and encode.
///
/// Categorical attributes get a dictionary over the observed labels (sorted
/// for determinism). Numeric/integer attributes get equi-width buckets over
/// the observed [min, max] range, matching the paper's preprocessing
/// (Sec 6.1: "bin all real-valued attributes into equi-width buckets").
/// Callers may also pin an explicit Domain per attribute, which the
/// generators use to reproduce the exact Fig 3 domain sizes.
class TableBuilder {
 public:
  explicit TableBuilder(Schema schema);

  /// Pins an explicit domain for attribute `a` instead of deriving one.
  void SetDomain(AttrId a, Domain domain);

  /// Buffers one raw row; must have one Value per schema attribute.
  Status AppendRow(const std::vector<Value>& row);

  /// Appends a row of pre-encoded codes (fast path for generators). Codes
  /// are validated against pinned domains at Finish time.
  void AppendEncodedRow(const std::vector<Code>& codes);

  size_t num_buffered() const;

  /// Derives domains, encodes all buffered rows, and produces the table.
  Result<std::shared_ptr<Table>> Finish();

 private:
  Schema schema_;
  std::vector<std::optional<Domain>> pinned_;
  std::vector<std::vector<Value>> raw_rows_;
  std::vector<std::vector<Code>> encoded_rows_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_TABLE_BUILDER_H_
