#include "storage/value.h"

#include <cstdio>

namespace entropydb {

std::string AttributeTypeName(AttributeType type) {
  switch (type) {
    case AttributeType::kCategorical:
      return "categorical";
    case AttributeType::kNumeric:
      return "numeric";
    case AttributeType::kInteger:
      return "integer";
  }
  return "unknown";
}

std::string Value::ToString() const {
  if (is_string()) return as_string();
  if (is_int()) return std::to_string(as_int());
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6g", as_double());
  return buf;
}

}  // namespace entropydb
