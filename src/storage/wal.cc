#include "storage/wal.h"

#include "common/crc32c.h"

namespace entropydb {

namespace {

constexpr size_t kHeaderSize = 8;  // masked crc (4) + length (4)

void PutFixed32(std::string* dst, uint32_t v) {
  dst->push_back(static_cast<char>(v & 0xff));
  dst->push_back(static_cast<char>((v >> 8) & 0xff));
  dst->push_back(static_cast<char>((v >> 16) & 0xff));
  dst->push_back(static_cast<char>((v >> 24) & 0xff));
}

uint32_t GetFixed32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24);
}

}  // namespace

Result<std::unique_ptr<WalWriter>> WalWriter::Open(Env* env,
                                                   const std::string& path) {
  ASSIGN_OR_RETURN(std::unique_ptr<WritableFile> file,
                   env->NewWritableFile(path, /*truncate=*/false));
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(file)));
}

Status WalWriter::AddRecord(std::string_view payload) {
  std::string frame;
  frame.reserve(kHeaderSize + payload.size());
  PutFixed32(&frame, crc32c::Mask(crc32c::Value(payload)));
  PutFixed32(&frame, static_cast<uint32_t>(payload.size()));
  frame.append(payload);
  return file_->Append(frame);
}

Status WalWriter::Sync() { return file_->Sync(); }

Status WalWriter::Close() { return file_->Close(); }

Result<WalContents> ReadWal(Env* env, const std::string& path) {
  WalContents out;
  if (!env->FileExists(path)) return out;
  std::string contents;
  RETURN_NOT_OK(env->ReadFile(path, &contents));
  size_t pos = 0;
  while (contents.size() - pos >= kHeaderSize) {
    const uint32_t stored_crc =
        crc32c::Unmask(GetFixed32(contents.data() + pos));
    const uint32_t length = GetFixed32(contents.data() + pos + 4);
    if (contents.size() - pos - kHeaderSize < length) break;  // torn tail
    const std::string_view payload(contents.data() + pos + kHeaderSize,
                                   length);
    if (crc32c::Value(payload) != stored_crc) break;  // corrupt record
    out.records.emplace_back(payload);
    pos += kHeaderSize + length;
  }
  out.valid_bytes = pos;
  out.truncated_tail = pos != contents.size();
  return out;
}

}  // namespace entropydb
