#include "storage/csv.h"

#include <fstream>

#include "common/str_util.h"
#include "storage/table_builder.h"

namespace entropydb {

Status WriteCsv(const Table& table, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open for writing: " + path);

  const auto m = table.num_attributes();
  for (AttrId a = 0; a < m; ++a) {
    if (a > 0) out << ',';
    out << table.schema().attribute(a).name;
  }
  out << '\n';
  for (size_t row = 0; row < table.num_rows(); ++row) {
    for (AttrId a = 0; a < m; ++a) {
      if (a > 0) out << ',';
      const Domain& dom = table.domain(a);
      if (dom.is_categorical()) {
        out << dom.LabelFor(table.at(row, a));
      } else {
        out << dom.RepresentativeFor(table.at(row, a)).as_double();
      }
    }
    out << '\n';
  }
  if (!out.good()) return Status::IOError("write failure: " + path);
  return Status::OK();
}

Result<std::shared_ptr<Table>> ReadCsv(const Schema& schema,
                                       const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open for reading: " + path);

  std::string line;
  if (!std::getline(in, line)) {
    return Status::Corruption("empty CSV file: " + path);
  }
  auto header = SplitString(line, ',');
  if (header.size() != schema.num_attributes()) {
    return Status::InvalidArgument("CSV header arity mismatch in " + path);
  }
  for (AttrId a = 0; a < schema.num_attributes(); ++a) {
    if (std::string(StripWhitespace(header[a])) != schema.attribute(a).name) {
      return Status::InvalidArgument("CSV header field '" + header[a] +
                                     "' != schema attribute '" +
                                     schema.attribute(a).name + "'");
    }
  }

  TableBuilder builder(schema);
  size_t line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    if (StripWhitespace(line).empty()) continue;
    auto fields = SplitString(line, ',');
    if (fields.size() != schema.num_attributes()) {
      return Status::Corruption("CSV row arity mismatch at line " +
                                std::to_string(line_no));
    }
    std::vector<Value> row;
    row.reserve(fields.size());
    for (AttrId a = 0; a < schema.num_attributes(); ++a) {
      if (schema.attribute(a).type == AttributeType::kCategorical) {
        row.emplace_back(std::string(StripWhitespace(fields[a])));
      } else {
        ASSIGN_OR_RETURN(double v, ParseDouble(fields[a]));
        row.emplace_back(v);
      }
    }
    RETURN_NOT_OK(builder.AppendRow(row));
  }
  return builder.Finish();
}

}  // namespace entropydb
