#ifndef ENTROPYDB_STORAGE_COLUMN_H_
#define ENTROPYDB_STORAGE_COLUMN_H_

#include <cstdint>
#include <vector>

#include "storage/domain.h"

namespace entropydb {

/// \brief A dense, dictionary/bucket-encoded column of one attribute.
///
/// Storage is a flat vector of codes; all scans in the exact evaluator and
/// the samplers stream over this representation.
class Column {
 public:
  Column() = default;
  explicit Column(std::vector<Code> codes) : codes_(std::move(codes)) {}

  size_t size() const { return codes_.size(); }
  Code operator[](size_t row) const { return codes_[row]; }
  const std::vector<Code>& codes() const { return codes_; }

  void Append(Code c) { codes_.push_back(c); }
  void Reserve(size_t n) { codes_.reserve(n); }

  /// Approximate memory footprint in bytes.
  size_t MemoryBytes() const { return codes_.capacity() * sizeof(Code); }

 private:
  std::vector<Code> codes_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_COLUMN_H_
