#ifndef ENTROPYDB_STORAGE_SCHEMA_H_
#define ENTROPYDB_STORAGE_SCHEMA_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "storage/value.h"

namespace entropydb {

/// Index of an attribute within a schema.
using AttrId = uint32_t;

/// \brief Declared properties of one attribute.
struct AttributeSpec {
  std::string name;
  AttributeType type = AttributeType::kCategorical;
  /// Desired number of equi-width buckets for numeric/integer attributes;
  /// ignored for categorical attributes. 0 means "one bucket per distinct
  /// integer value" for kInteger and "default 64" for kNumeric.
  uint32_t buckets = 0;
};

/// \brief Ordered collection of attribute specs for a single relation
/// R(A1, ..., Am).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<AttributeSpec> attrs)
      : attrs_(std::move(attrs)) {}

  size_t num_attributes() const { return attrs_.size(); }
  const AttributeSpec& attribute(AttrId i) const { return attrs_[i]; }
  const std::vector<AttributeSpec>& attributes() const { return attrs_; }

  /// Looks up an attribute index by name.
  Result<AttrId> IndexOf(const std::string& name) const {
    for (AttrId i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i].name == name) return i;
    }
    return Status::NotFound("no attribute named '" + name + "'");
  }

  bool operator==(const Schema& other) const {
    if (attrs_.size() != other.attrs_.size()) return false;
    for (size_t i = 0; i < attrs_.size(); ++i) {
      if (attrs_[i].name != other.attrs_[i].name ||
          attrs_[i].type != other.attrs_[i].type) {
        return false;
      }
    }
    return true;
  }

 private:
  std::vector<AttributeSpec> attrs_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_SCHEMA_H_
