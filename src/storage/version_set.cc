#include "storage/version_set.h"

#include <algorithm>
#include <cctype>
#include <sstream>

namespace entropydb {

const char kCurrentFileName[] = "CURRENT";

namespace {

constexpr char kCurrentMagic[] = "ENTROPYDB_CURRENT_V1";

/// "v<digits>" -> id (> 0); anything else -> 0.
uint64_t ParseVersionName(const std::string& name) {
  if (name.size() < 2 || name[0] != 'v') return 0;
  uint64_t id = 0;
  for (size_t i = 1; i < name.size(); ++i) {
    if (!std::isdigit(static_cast<unsigned char>(name[i]))) return 0;
    id = id * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return id;
}

/// True when `path` is listable, i.e. a directory. Env has no stat-kind
/// call; a List on a regular file fails, which is all the probe needs.
bool IsDir(Env* env, const std::string& path) {
  return env->List(path).ok();
}

/// Recursively populates `dst` from `src`, hard-linking files. Only used
/// below the version's top level, where every file is immutable once the
/// version publishes.
Status CloneTreeLinked(Env* env, const std::string& src,
                       const std::string& dst) {
  RETURN_NOT_OK(env->CreateDirs(dst));
  ASSIGN_OR_RETURN(std::vector<std::string> entries, env->List(src));
  for (const std::string& name : entries) {
    const std::string from = src + "/" + name;
    const std::string to = dst + "/" + name;
    if (IsDir(env, from)) {
      RETURN_NOT_OK(CloneTreeLinked(env, from, to));
    } else {
      RETURN_NOT_OK(env->LinkFile(from, to));
    }
  }
  return env->SyncDir(dst);
}

}  // namespace

bool VersionSet::IsVersionedRoot(const std::string& root, Env* env) {
  return env->FileExists(root + "/" + kCurrentFileName);
}

Result<std::unique_ptr<VersionSet>> VersionSet::Open(const std::string& root,
                                                     Env* env,
                                                     Options options) {
  RETURN_NOT_OK(env->CreateDirs(root));
  std::unique_ptr<VersionSet> vs(new VersionSet(root, env, options));
  std::lock_guard<std::mutex> lock(vs->mu_);
  RETURN_NOT_OK(vs->LoadLocked());
  // Sweep strands a crashed publish left behind (v<id> with id > current,
  // CURRENT.tmp, v*.tmp-* staging) and versions past retention.
  vs->GCLocked();
  return vs;
}

uint64_t VersionSet::current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return current_;
}

std::vector<uint64_t> VersionSet::versions() const {
  std::lock_guard<std::mutex> lock(mu_);
  return versions_;
}

size_t VersionSet::retain() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retain_;
}

std::string VersionSet::VersionDir(uint64_t id) const {
  return root_ + "/v" + std::to_string(id);
}

std::string VersionSet::CurrentDir() const {
  std::lock_guard<std::mutex> lock(mu_);
  return root_ + "/v" + std::to_string(current_);
}

uint64_t VersionSet::BeginVersion() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t id = std::max(current_, next_hint_) + 1;
  next_hint_ = id;
  return id;
}

Status VersionSet::CloneCurrentTo(uint64_t id) {
  std::string src;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (current_ == 0) {
      return Status::FailedPrecondition(
          "no current version to clone in " + root_);
    }
    if (id <= current_) {
      return Status::InvalidArgument("clone target v" + std::to_string(id) +
                                     " is not newer than current");
    }
    src = root_ + "/v" + std::to_string(current_);
  }
  const std::string dst = VersionDir(id);
  RETURN_NOT_OK(env_->RemoveAll(dst));
  RETURN_NOT_OK(env_->CreateDirs(dst));
  ASSIGN_OR_RETURN(std::vector<std::string> entries, env_->List(src));
  for (const std::string& name : entries) {
    const std::string from = src + "/" + name;
    const std::string to = dst + "/" + name;
    if (IsDir(env_, from)) {
      // Shard data: immutable after publish, so sharing bytes is safe.
      RETURN_NOT_OK(CloneTreeLinked(env_, from, to));
    } else {
      // Top-level files (MANIFEST, ingest.wal) are the ones ingest and
      // compaction mutate — a hard link here would let an append in the
      // clone rewrite history, so these are real copies.
      std::string contents;
      RETURN_NOT_OK(env_->ReadFile(from, &contents));
      RETURN_NOT_OK(env_->WriteFile(to, contents, /*sync=*/true));
    }
  }
  return env_->SyncDir(dst);
}

Status VersionSet::Publish(uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  if (id <= current_) {
    return Status::InvalidArgument("cannot publish v" + std::to_string(id) +
                                   " over current v" +
                                   std::to_string(current_));
  }
  const std::string dir = root_ + "/v" + std::to_string(id);
  if (!env_->FileExists(dir)) {
    return Status::NotFound("version directory missing: " + dir);
  }
  // Make the version's entry durable in the root before the pointer can
  // name it, then flip. The rename is the commit point.
  RETURN_NOT_OK(env_->SyncDir(root_));
  RETURN_NOT_OK(WriteCurrentLocked(id));
  current_ = id;
  if (next_hint_ < id) next_hint_ = id;
  versions_.push_back(id);
  GCLocked();
  return Status::OK();
}

Result<bool> VersionSet::Refresh() {
  std::lock_guard<std::mutex> lock(mu_);
  const uint64_t before = current_;
  RETURN_NOT_OK(LoadLocked());
  if (next_hint_ < current_) next_hint_ = current_;
  return before != current_;
}

void VersionSet::GCLocked() {
  const size_t retain = std::max<size_t>(1, retain_);
  const size_t start =
      versions_.size() > retain ? versions_.size() - retain : 0;
  std::vector<uint64_t> kept(versions_.begin() + start, versions_.end());
  std::vector<std::string> keep;
  keep.reserve(kept.size());
  for (uint64_t id : kept) keep.push_back("v" + std::to_string(id));
  SweepStaleEntries(env_, root_,
                    {"v", std::string(kCurrentFileName) + ".tmp"}, keep);
  versions_ = std::move(kept);
}

Status VersionSet::WriteCurrentLocked(uint64_t id) {
  std::ostringstream out;
  out << kCurrentMagic << "\n";
  out << "current " << id << "\n";
  out << "retain " << std::max<size_t>(1, retain_) << "\n";
  const std::string tmp = root_ + "/" + kCurrentFileName + ".tmp";
  const std::string dest = root_ + "/" + kCurrentFileName;
  RETURN_NOT_OK(WriteChecksummedFile(env_, tmp, out.str(), /*sync=*/true));
  RETURN_NOT_OK(env_->Rename(tmp, dest));
  return env_->SyncDir(root_);
}

Status VersionSet::LoadLocked() {
  const std::string cur_path = root_ + "/" + kCurrentFileName;
  uint64_t current = 0;
  if (env_->FileExists(cur_path)) {
    bool had_footer = false;
    ASSIGN_OR_RETURN(
        std::string payload,
        ReadChecksummedFile(env_, cur_path, options_.verify_checksums,
                            &had_footer));
    if (!had_footer) {
      // CURRENT never existed before the checksummed era, so a missing
      // footer is damage, not legacy.
      return Status::Corruption("CURRENT missing checksum in " + root_);
    }
    std::istringstream in(payload);
    std::string magic, token;
    uint64_t id = 0;
    if (!(in >> magic) || magic != kCurrentMagic || !(in >> token >> id) ||
        token != "current" || id == 0) {
      return Status::Corruption("malformed CURRENT in " + root_);
    }
    current = id;
    // Optional persisted retention window (absent in a hand-rolled or
    // pre-knob CURRENT: keep the default).
    size_t retain = 0;
    if ((in >> token >> retain) && token == "retain" && retain > 0) {
      retain_ = retain;
    }
  }
  // An explicit Options override beats the persisted value; the next
  // publish writes it back.
  if (options_.retain > 0) retain_ = options_.retain;
  ASSIGN_OR_RETURN(std::vector<std::string> entries, env_->List(root_));
  std::vector<uint64_t> found;
  for (const std::string& name : entries) {
    const uint64_t id = ParseVersionName(name);
    if (id != 0 && id <= current) found.push_back(id);
  }
  std::sort(found.begin(), found.end());
  if (current != 0 && (found.empty() || found.back() != current)) {
    return Status::Corruption("CURRENT points at missing version v" +
                              std::to_string(current) + " in " + root_);
  }
  current_ = current;
  versions_ = std::move(found);
  return Status::OK();
}

}  // namespace entropydb
