#ifndef ENTROPYDB_STORAGE_CSV_H_
#define ENTROPYDB_STORAGE_CSV_H_

#include <memory>
#include <string>

#include "common/result.h"
#include "storage/table.h"

namespace entropydb {

/// Writes `table` to `path` as comma-separated bucket labels with a header
/// row of attribute names.
Status WriteCsv(const Table& table, const std::string& path);

/// Loads a CSV file into an encoded table. The header must match the schema's
/// attribute names; fields are parsed according to each attribute's declared
/// type (categorical fields taken verbatim, numeric parsed as double).
Result<std::shared_ptr<Table>> ReadCsv(const Schema& schema,
                                       const std::string& path);

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_CSV_H_
