#ifndef ENTROPYDB_STORAGE_ZONE_MAP_H_
#define ENTROPYDB_STORAGE_ZONE_MAP_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "query/counting_query.h"
#include "storage/table.h"

namespace entropydb {

/// File name of the persisted zone map inside a shard directory.
inline constexpr char kZoneMapFileName[] = "ZONEMAP";

/// \brief Per-shard, per-attribute domain-presence metadata — the succinct
/// structure ShardedStore consults BEFORE fanning a query out, so shards
/// that provably cannot match a constrained value are skipped entirely.
///
/// For every attribute the map records exactly which domain codes occur in
/// the shard's rows, in one of two encodings chosen by density at build
/// time:
///  - dense bitmap: one bit per domain code, when the shard touches at
///    least 1/32 of the domain (a sparse list would cost more: 32 bits per
///    present code vs. 1 bit per domain slot);
///  - sparse sorted code list with binary-search lookup (the select-few
///    idiom of terark's rank_select_few: few set positions, stored
///    explicitly in order), when occupancy is below the 1/32 cutover —
///    the regime attribute-partitioned shards live in, where a shard holds
///    a thin contiguous slice of the partition attribute's domain.
///
/// Pruning on a zone map is EXACT, not approximate: a code absent from the
/// shard has a zero 1-D marginal target, the solver pins its model
/// variable at alpha = 0, so the shard's summary answers an impossible
/// conjunction with expectation 0 and Binomial variance n p (1 - p) = 0 —
/// and the hybrid router only hands a query to a sample on STRICTLY lower
/// variance, which 0 forecloses. Skipping the shard therefore removes an
/// exact {0, 0} term from an additive merge: merged estimates AND
/// variances stay bitwise identical to full fan-out (gated in
/// tests/engine/shard_pruning_test.cc).
class ZoneMap {
 public:
  enum class Encoding { kDense, kSparse };

  /// Sparse wins below 1/32 occupancy: a sparse entry costs 32 bits where
  /// a bitmap slot costs 1.
  static constexpr uint32_t kSparseCutoverDivisor = 32;

  /// Scans `table` once and records per-attribute code presence.
  static ZoneMap Build(const Table& table);

  size_t num_attributes() const { return attrs_.size(); }
  uint32_t domain_size(AttrId a) const { return attrs_[a].domain_size; }
  Encoding encoding(AttrId a) const { return attrs_[a].encoding; }
  /// Distinct codes present in the shard for attribute `a`.
  size_t distinct(AttrId a) const { return attrs_[a].distinct; }

  /// True when code `c` occurs in the shard (false for out-of-domain `c`).
  bool Contains(AttrId a, Code c) const;

  /// True when any code in the inclusive range [lo, hi] occurs.
  bool ContainsAnyInRange(AttrId a, Code lo, Code hi) const;

  /// True unless some constrained attribute of `q` has an allowed code set
  /// entirely absent from the shard — the pruning test. When it returns
  /// false, `*pruned_attr` (optional) names the attribute that proved the
  /// miss. Queries of a different arity never prune (defensive: the
  /// answer path would reject them anyway).
  bool MightMatch(const CountingQuery& q, AttrId* pruned_attr = nullptr) const;

  /// Persists as a checksummed text artifact (CRC32C footer, like every
  /// other EntropyDB artifact). The format is v4-era: readers REQUIRE the
  /// footer — a truncated or footerless file is kCorruption, never a
  /// silently wrong prune.
  Status Save(Env* env, const std::string& path) const;
  static Result<ZoneMap> Load(Env* env, const std::string& path);

 private:
  struct AttrPresence {
    uint32_t domain_size = 0;
    Encoding encoding = Encoding::kSparse;
    size_t distinct = 0;
    /// kDense: ceil(domain_size / 64) little-endian bit words.
    std::vector<uint64_t> bits;
    /// kSparse: sorted distinct codes.
    std::vector<Code> codes;
  };

  std::vector<AttrPresence> attrs_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_ZONE_MAP_H_
