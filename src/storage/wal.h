#ifndef ENTROPYDB_STORAGE_WAL_H_
#define ENTROPYDB_STORAGE_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/result.h"

namespace entropydb {

/// \brief Write-ahead log of opaque records, in the RocksDB `log_writer`
/// idiom sized down to EntropyDB's batch granularity: each record is
/// framed as
///
///     masked_crc32c : 4 bytes LE   (CRC32C of the payload, masked)
///     length        : 4 bytes LE
///     payload       : `length` bytes
///
/// with records appended back to back. The CRC is masked (common/crc32c.h)
/// so WAL payloads that themselves contain CRCs do not degenerate.
/// Recovery (ReadWal) scans from the front and TRUNCATES at the first
/// record that is torn (fewer bytes on disk than the header promises) or
/// corrupt (CRC mismatch): everything before it is trusted, everything at
/// and after it is discarded — the standard tail-truncation rule for a
/// log whose tip may have been half-written at a crash.
class WalWriter {
 public:
  /// Opens (creates or appends to) the WAL at `path`.
  static Result<std::unique_ptr<WalWriter>> Open(Env* env,
                                                 const std::string& path);

  /// Appends one framed record. The record is NOT durable until Sync.
  Status AddRecord(std::string_view payload);

  /// fsyncs everything appended so far.
  Status Sync();

  /// Flushes and closes the underlying file.
  Status Close();

 private:
  explicit WalWriter(std::unique_ptr<WritableFile> file)
      : file_(std::move(file)) {}

  std::unique_ptr<WritableFile> file_;
};

/// Result of scanning a WAL: the records whose frames verified, in append
/// order, plus whether the scan stopped early at a torn/corrupt tail and
/// the byte offset of the first un-trusted byte.
struct WalContents {
  std::vector<std::string> records;
  bool truncated_tail = false;
  uint64_t valid_bytes = 0;
};

/// Reads every verifiable record of the WAL at `path`. A missing file is
/// an empty (not erroneous) WAL — recovery treats "no journal" and "empty
/// journal" identically. Never returns kCorruption for a damaged tail:
/// tail damage is the EXPECTED crash signature and is reported via
/// `truncated_tail` instead.
Result<WalContents> ReadWal(Env* env, const std::string& path);

}  // namespace entropydb

#endif  // ENTROPYDB_STORAGE_WAL_H_
