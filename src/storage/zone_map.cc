#include "storage/zone_map.h"

#include <algorithm>
#include <sstream>

namespace entropydb {

namespace {

constexpr char kZoneMapV1[] = "ENTROPYDB_ZONEMAP_V1";

size_t WordsFor(uint32_t domain_size) { return (domain_size + 63) / 64; }

bool BitSet(const std::vector<uint64_t>& bits, Code c) {
  return (bits[c >> 6] >> (c & 63)) & 1u;
}

}  // namespace

ZoneMap ZoneMap::Build(const Table& table) {
  ZoneMap zm;
  zm.attrs_.resize(table.num_attributes());
  for (AttrId a = 0; a < table.num_attributes(); ++a) {
    AttrPresence& p = zm.attrs_[a];
    p.domain_size = table.domain(a).size();
    // Collect presence densely first (one scan, O(1) per row), then pick
    // the persisted encoding from the observed density.
    std::vector<uint64_t> bits(WordsFor(p.domain_size), 0);
    for (size_t r = 0; r < table.num_rows(); ++r) {
      const Code c = table.at(r, a);
      if (c < p.domain_size) bits[c >> 6] |= uint64_t{1} << (c & 63);
    }
    size_t distinct = 0;
    for (uint64_t w : bits) distinct += __builtin_popcountll(w);
    p.distinct = distinct;
    if (distinct * kSparseCutoverDivisor < p.domain_size) {
      p.encoding = Encoding::kSparse;
      p.codes.reserve(distinct);
      for (Code c = 0; c < p.domain_size; ++c) {
        if (BitSet(bits, c)) p.codes.push_back(c);
      }
    } else {
      p.encoding = Encoding::kDense;
      p.bits = std::move(bits);
    }
  }
  return zm;
}

bool ZoneMap::Contains(AttrId a, Code c) const {
  const AttrPresence& p = attrs_[a];
  if (c >= p.domain_size) return false;
  if (p.encoding == Encoding::kDense) return BitSet(p.bits, c);
  return std::binary_search(p.codes.begin(), p.codes.end(), c);
}

bool ZoneMap::ContainsAnyInRange(AttrId a, Code lo, Code hi) const {
  const AttrPresence& p = attrs_[a];
  if (p.domain_size == 0 || lo > hi || lo >= p.domain_size) return false;
  hi = std::min<Code>(hi, p.domain_size - 1);
  if (p.encoding == Encoding::kSparse) {
    auto it = std::lower_bound(p.codes.begin(), p.codes.end(), lo);
    return it != p.codes.end() && *it <= hi;
  }
  // Dense: test the partial edge words and any full words between them.
  const size_t wlo = lo >> 6;
  const size_t whi = hi >> 6;
  const uint64_t lo_mask = ~uint64_t{0} << (lo & 63);
  const uint64_t hi_mask = ~uint64_t{0} >> (63 - (hi & 63));
  if (wlo == whi) return (p.bits[wlo] & lo_mask & hi_mask) != 0;
  if ((p.bits[wlo] & lo_mask) != 0) return true;
  for (size_t w = wlo + 1; w < whi; ++w) {
    if (p.bits[w] != 0) return true;
  }
  return (p.bits[whi] & hi_mask) != 0;
}

bool ZoneMap::MightMatch(const CountingQuery& q, AttrId* pruned_attr) const {
  if (q.num_attributes() != attrs_.size()) return true;
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    const AttrPredicate& pred = q.predicate(a);
    bool possible = true;
    switch (pred.kind()) {
      case AttrPredicate::Kind::kAny:
        continue;
      case AttrPredicate::Kind::kPoint:
        possible = Contains(a, pred.lo());
        break;
      case AttrPredicate::Kind::kRange:
        possible = ContainsAnyInRange(a, pred.lo(), pred.hi());
        break;
      case AttrPredicate::Kind::kSet: {
        possible = false;
        for (Code c : pred.set()) {
          if (Contains(a, c)) {
            possible = true;
            break;
          }
        }
        break;
      }
    }
    if (!possible) {
      if (pruned_attr != nullptr) *pruned_attr = a;
      return false;
    }
  }
  return true;
}

Status ZoneMap::Save(Env* env, const std::string& path) const {
  std::ostringstream out;
  out << kZoneMapV1 << "\n";
  out << "attrs " << attrs_.size() << "\n";
  for (AttrId a = 0; a < attrs_.size(); ++a) {
    const AttrPresence& p = attrs_[a];
    out << "attr " << a << " " << p.domain_size;
    if (p.encoding == Encoding::kDense) {
      out << " dense " << p.bits.size() << std::hex;
      for (uint64_t w : p.bits) out << " " << w;
      out << std::dec;
    } else {
      out << " sparse " << p.codes.size();
      for (Code c : p.codes) out << " " << c;
    }
    out << "\n";
  }
  return WriteChecksummedFile(env, path, out.str());
}

Result<ZoneMap> ZoneMap::Load(Env* env, const std::string& path) {
  bool had_footer = false;
  ASSIGN_OR_RETURN(std::string payload,
                   ReadChecksummedFile(env, path, /*verify=*/true,
                                       &had_footer));
  // Zone maps postdate the checksum era: a footerless file is a truncated
  // or foreign artifact, and a wrong zone map means silently wrong
  // (wrongly pruned) answers — reject, never degrade.
  if (!had_footer) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token) || token != kZoneMapV1) {
    return Status::Corruption("bad zone map header in " + path);
  }
  size_t m = 0;
  if (!(in >> token >> m) || token != "attrs") {
    return Status::Corruption("bad attrs record in " + path);
  }
  ZoneMap zm;
  zm.attrs_.resize(m);
  for (AttrId a = 0; a < m; ++a) {
    AttrPresence& p = zm.attrs_[a];
    AttrId id = 0;
    std::string enc;
    size_t count = 0;
    if (!(in >> token >> id >> p.domain_size >> enc >> count) ||
        token != "attr" || id != a) {
      return Status::Corruption("bad attr record in " + path);
    }
    if (enc == "dense") {
      p.encoding = Encoding::kDense;
      if (count != WordsFor(p.domain_size)) {
        return Status::Corruption("bad bitmap width in " + path);
      }
      p.bits.resize(count);
      in >> std::hex;
      for (size_t w = 0; w < count; ++w) {
        if (!(in >> p.bits[w])) {
          return Status::Corruption("truncated bitmap in " + path);
        }
      }
      in >> std::dec;
      // Bits past the domain must be clear or Contains/range scans would
      // be fed garbage by a corrupt (but checksum-era-predating) file.
      const uint32_t tail = p.domain_size & 63;
      if (count > 0 && tail != 0 &&
          (p.bits.back() & (~uint64_t{0} << tail)) != 0) {
        return Status::Corruption("bitmap bits past the domain in " + path);
      }
      size_t distinct = 0;
      for (uint64_t w : p.bits) distinct += __builtin_popcountll(w);
      p.distinct = distinct;
    } else if (enc == "sparse") {
      p.encoding = Encoding::kSparse;
      if (count > p.domain_size) {
        return Status::Corruption("sparse list wider than the domain in " +
                                  path);
      }
      p.codes.resize(count);
      for (size_t i = 0; i < count; ++i) {
        if (!(in >> p.codes[i])) {
          return Status::Corruption("truncated sparse list in " + path);
        }
        if (p.codes[i] >= p.domain_size ||
            (i > 0 && p.codes[i] <= p.codes[i - 1])) {
          return Status::Corruption("unsorted or out-of-domain code in " +
                                    path);
        }
      }
      p.distinct = count;
    } else {
      return Status::Corruption("unknown zone map encoding '" + enc +
                                "' in " + path);
    }
  }
  return zm;
}

}  // namespace entropydb
