#ifndef ENTROPYDB_MAXENT_WORKSPACE_POOL_H_
#define ENTROPYDB_MAXENT_WORKSPACE_POOL_H_

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "maxent/polynomial.h"
#include "maxent/variable_registry.h"

namespace entropydb {

/// \brief A lock-free pool of EvalWorkspaces over one (polynomial, state)
/// pair, so concurrent queries on one summary scale with cores instead of
/// serializing behind a mutex.
///
/// Construction warms ONE workspace fully (the O(all groups) factor-cache
/// build) and hands its immutable cache to every other slot by shared_ptr;
/// a slot's private masked scratch is then built lazily the first time a
/// thread acquires it, and reused across queries after that. Because every
/// slot computes against the identical factor cache, estimates are
/// bitwise-stable regardless of which slot (or thread) serves a query.
///
/// Acquire() claims a slot with one atomic exchange per probe — no mutex,
/// no blocking. When every slot is busy (more concurrent queries than
/// slots) it falls back to a transient heap workspace sharing the same
/// cache: always correct, just paying a scratch allocation, so the pool
/// never becomes a queue.
class WorkspacePool {
  struct Slot;  // defined below; forward-declared for Lease

 public:
  /// `capacity` = 0 sizes the pool to the hardware (at least 2 slots, so
  /// single-core hosts still exercise the multi-slot path under test
  /// threads). `poly` and `state` must outlive the pool; `state` must
  /// already be solved.
  WorkspacePool(const CompressedPolynomial& poly, const ModelState& state,
                size_t capacity = 0)
      : poly_(poly), state_(state) {
    if (capacity == 0) {
      unsigned hw = std::thread::hardware_concurrency();
      capacity = hw > 2 ? hw : 2;
    }
    slots_ = std::vector<Slot>(capacity);
    // Warm slot 0 eagerly: builds the shared factor cache and gives the
    // caller the unmasked P without a separate evaluation.
    full_value_ = poly_.PrepareWorkspace(state_, &slots_[0].ws).value;
    for (size_t i = 1; i < slots_.size(); ++i) {
      slots_[i].ws.ShareCacheWith(slots_[0].ws);
    }
  }

  WorkspacePool(const WorkspacePool&) = delete;
  WorkspacePool& operator=(const WorkspacePool&) = delete;

  /// RAII claim on one workspace; releases the slot (or frees the transient
  /// overflow workspace) on destruction.
  class Lease {
   public:
    Lease(Lease&& o) noexcept
        : ws_(o.ws_), slot_(o.slot_), overflow_(std::move(o.overflow_)) {
      o.ws_ = nullptr;
      o.slot_ = nullptr;
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease& operator=(Lease&&) = delete;
    ~Lease() {
      if (slot_ != nullptr) slot_->busy.store(false, std::memory_order_release);
    }

    EvalWorkspace* get() const { return ws_; }
    EvalWorkspace* operator->() const { return ws_; }
    EvalWorkspace& operator*() const { return *ws_; }
    /// True when this lease had to allocate outside the fixed slots.
    bool is_overflow() const { return overflow_ != nullptr; }

   private:
    friend class WorkspacePool;
    Lease(EvalWorkspace* ws, Slot* slot,
          std::unique_ptr<EvalWorkspace> overflow)
        : ws_(ws), slot_(slot), overflow_(std::move(overflow)) {}

    EvalWorkspace* ws_;
    Slot* slot_;
    std::unique_ptr<EvalWorkspace> overflow_;
  };

  /// Claims a free workspace (lock-free; never blocks). The rotating start
  /// hint spreads concurrent callers across slots so the common case is one
  /// successful exchange.
  Lease Acquire() const {
    const size_t n = slots_.size();
    const size_t start = next_.fetch_add(1, std::memory_order_relaxed) % n;
    for (size_t probe = 0; probe < n; ++probe) {
      Slot& slot = slots_[(start + probe) % n];
      if (slot.busy.load(std::memory_order_relaxed)) continue;
      if (!slot.busy.exchange(true, std::memory_order_acquire)) {
        return Lease(&slot.ws, &slot, nullptr);
      }
    }
    // All slots busy: transient workspace sharing the warm cache.
    auto ws = std::make_unique<EvalWorkspace>();
    ws->ShareCacheWith(slots_[0].ws);
    EvalWorkspace* raw = ws.get();
    return Lease(raw, nullptr, std::move(ws));
  }

  size_t capacity() const { return slots_.size(); }
  /// Unmasked P, from the eager warm-up.
  double full_value() const { return full_value_; }
  const CompressedPolynomial& polynomial() const { return poly_; }
  const ModelState& state() const { return state_; }

 private:
  struct Slot {
    std::atomic<bool> busy{false};
    EvalWorkspace ws;
  };

  const CompressedPolynomial& poly_;
  const ModelState& state_;
  mutable std::vector<Slot> slots_;
  mutable std::atomic<size_t> next_{0};
  double full_value_ = 0.0;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_WORKSPACE_POOL_H_
