#include "maxent/variable_registry.h"

#include <algorithm>

namespace entropydb {

namespace {

Status ValidateMds(const std::vector<MultiDimStatistic>& mds,
                   const std::vector<uint32_t>& domain_sizes) {
  for (const auto& s : mds) {
    if (s.attrs.empty() || s.attrs.size() != s.ranges.size()) {
      return Status::InvalidArgument("malformed multi-dim statistic");
    }
    if (!std::is_sorted(s.attrs.begin(), s.attrs.end()) ||
        std::adjacent_find(s.attrs.begin(), s.attrs.end()) != s.attrs.end()) {
      return Status::InvalidArgument(
          "multi-dim statistic attributes must be strictly increasing");
    }
    for (size_t i = 0; i < s.attrs.size(); ++i) {
      if (s.attrs[i] >= domain_sizes.size()) {
        return Status::OutOfRange("statistic attribute out of range");
      }
      if (s.ranges[i].empty() || s.ranges[i].hi >= domain_sizes[s.attrs[i]]) {
        return Status::OutOfRange("statistic interval out of domain");
      }
    }
    if (s.target < 0) {
      return Status::InvalidArgument("negative statistic target");
    }
  }
  return Status::OK();
}

}  // namespace

Result<VariableRegistry> VariableRegistry::Create(
    std::vector<uint32_t> domain_sizes,
    std::vector<std::vector<double>> one_d_targets,
    std::vector<MultiDimStatistic> mds, double n) {
  if (domain_sizes.size() != one_d_targets.size()) {
    return Status::InvalidArgument("domain/target arity mismatch");
  }
  if (n < 0) return Status::InvalidArgument("negative cardinality");
  for (size_t a = 0; a < domain_sizes.size(); ++a) {
    if (domain_sizes[a] == 0) {
      return Status::InvalidArgument("empty domain for attribute " +
                                     std::to_string(a));
    }
    if (one_d_targets[a].size() != domain_sizes[a]) {
      return Status::InvalidArgument(
          "1-D target count mismatch on attribute " + std::to_string(a));
    }
    for (double s : one_d_targets[a]) {
      if (s < 0) return Status::InvalidArgument("negative 1-D target");
    }
  }
  RETURN_NOT_OK(ValidateMds(mds, domain_sizes));

  VariableRegistry reg;
  reg.domain_sizes_ = std::move(domain_sizes);
  reg.one_d_targets_ = std::move(one_d_targets);
  reg.mds_ = std::move(mds);
  reg.n_ = n;
  return reg;
}

ModelState ModelState::InitialState(const VariableRegistry& reg) {
  ModelState st;
  st.alpha.resize(reg.num_attributes());
  const double n = reg.n() > 0 ? reg.n() : 1.0;
  for (AttrId a = 0; a < reg.num_attributes(); ++a) {
    st.alpha[a].resize(reg.domain_size(a));
    for (Code v = 0; v < reg.domain_size(a); ++v) {
      st.alpha[a][v] = reg.OneDTarget(a, v) / n;
    }
  }
  st.delta.resize(reg.num_multi_dim());
  for (size_t j = 0; j < st.delta.size(); ++j) {
    st.delta[j] = (reg.multi_dim(j).target == 0.0) ? 0.0 : 1.0;
  }
  return st;
}

}  // namespace entropydb
