#include "maxent/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"

namespace entropydb {

namespace {
/// Values below this are treated as numerically zero cofactors; the
/// corresponding variable carries no probability mass and is skipped.
constexpr double kTinyCofactor = 1e-300;
}  // namespace

Result<double> MaxEntSolver::Sweep(ModelState* state) const {
  const double n = reg_.n();
  double max_err = 0.0;

  // ---- 1-D families, one attribute at a time (exact Gauss-Seidel). ----
  for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
    auto ctx = poly_.EvaluateUnmasked(*state);
    if (!(ctx.value > 0.0) || !std::isfinite(ctx.value)) {
      return Status::FailedPrecondition(
          "polynomial evaluated to a non-positive value during solving; "
          "statistics are inconsistent or numerically degenerate");
    }
    // Cofactors A_v = dP/dalpha_{a,v}: independent of the whole family's
    // current values, so one batch serves the entire sequential sweep.
    std::vector<double> cof = poly_.AlphaDerivatives(*state, ctx, a);
    double p = ctx.value;
    for (Code v = 0; v < reg_.domain_size(a); ++v) {
      const double s = reg_.OneDTarget(a, v);
      const double av = cof[v];
      double& alpha = state->alpha[a][v];
      if (s <= 0.0) {
        // Zero statistic: pinned; P already reflects alpha = 0.
        alpha = 0.0;
        continue;
      }
      if (av <= kTinyCofactor || s >= n) continue;  // no mass / saturated
      const double expected = alpha * av / p * n;
      max_err = std::max(max_err, std::abs(expected - s) / n);
      const double b = std::max(p - alpha * av, 0.0);
      const double next = s * b / ((n - s) * av);
      p = b + next * av;  // incremental P maintenance
      alpha = next;
    }
  }

  // ---- Multi-dimensional statistics, one at a time. ----
  if (reg_.num_multi_dim() > 0) {
    auto ctx = poly_.EvaluateUnmasked(*state);
    if (!(ctx.value > 0.0) || !std::isfinite(ctx.value)) {
      return Status::FailedPrecondition(
          "polynomial evaluated to a non-positive value during solving");
    }
    for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
      const double s = reg_.multi_dim(j).target;
      double& delta = state->delta[j];
      if (s <= 0.0) {
        delta = 0.0;  // ZERO statistic: never updated (Sec 4.3)
        continue;
      }
      if (s >= n) continue;
      const int c = poly_.ComponentOfDelta(j);
      // Local cofactor within the component; the outer factors multiply both
      // numerator and denominator of the update and cancel, but are needed
      // for the error metric.
      const double local = poly_.DeltaDerivativeLocal(*state, ctx, j);
      if (local <= kTinyCofactor) continue;
      const double outer = poly_.OuterProduct(ctx, c);
      const double p = outer * ctx.comp_value[c];
      if (!(p > 0.0)) {
        return Status::FailedPrecondition(
            "polynomial evaluated to a non-positive value during solving");
      }
      const double av = outer * local;
      const double expected = delta * av / p * n;
      max_err = std::max(max_err, std::abs(expected - s) / n);
      const double comp_b = ctx.comp_value[c] - delta * local;
      const double b = outer * std::max(comp_b, 0.0);
      const double next = s * b / ((n - s) * av);
      // Maintain the component value so later deltas see the update.
      ctx.comp_value[c] = std::max(comp_b, 0.0) + next * local;
      delta = next;
    }
  }
  return max_err;
}

Result<SolverReport> MaxEntSolver::Solve(ModelState* state) const {
  Timer timer;
  SolverReport report;
  for (size_t it = 0; it < opts_.max_iterations; ++it) {
    ASSIGN_OR_RETURN(double err, Sweep(state));
    report.iterations = it + 1;
    report.final_error = err;
    if (opts_.record_trace) report.error_trace.push_back(err);
    if (err < opts_.tolerance) {
      report.converged = true;
      break;
    }
  }
  // The in-sweep error is measured pre-update; refresh it post-hoc so the
  // report reflects the final state.
  report.final_error = MaxStatisticError(*state);
  report.converged = report.final_error < opts_.tolerance;
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

double MaxEntSolver::MaxStatisticError(const ModelState& state) const {
  const double n = reg_.n();
  auto ctx = poly_.EvaluateUnmasked(state);
  if (!(ctx.value > 0.0)) return std::numeric_limits<double>::infinity();
  double max_err = 0.0;
  for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
    std::vector<double> cof = poly_.AlphaDerivatives(state, ctx, a);
    for (Code v = 0; v < reg_.domain_size(a); ++v) {
      const double expected = state.alpha[a][v] * cof[v] / ctx.value * n;
      max_err =
          std::max(max_err, std::abs(expected - reg_.OneDTarget(a, v)) / n);
    }
  }
  for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
    const double av = poly_.DeltaDerivative(state, ctx, j);
    const double expected = state.delta[j] * av / ctx.value * n;
    max_err = std::max(
        max_err, std::abs(expected - reg_.multi_dim(j).target) / n);
  }
  return max_err;
}

}  // namespace entropydb
