#include "maxent/solver.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/timer.h"

namespace entropydb {

namespace {
/// Values below this are treated as numerically zero cofactors; the
/// corresponding variable carries no probability mass and is skipped.
constexpr double kTinyCofactor = 1e-300;
}  // namespace

Result<double> MaxEntSolver::Sweep(
    ModelState* state, CompressedPolynomial::EvalContext* ctx_ptr,
    std::vector<ComponentSweep>* sweeps) const {
  auto& ctx = *ctx_ptr;
  const double n = reg_.n();
  double max_err = 0.0;

  // ---- 1-D families, one attribute at a time (exact Gauss-Seidel). ----
  // Families are visited grouped by connected component, in increasing
  // local position order, so each ComponentSweep serves every family of
  // its component from one suffix pass plus a running prefix product (one
  // multiply per group per family). Deltas are frozen during the alpha
  // phase; their per-group products are computed once per sweep.
  bool has_dirty = false;
  AttrId dirty = 0;
  int prev_comp = -1;
  // Brings ctx current after the update of `dirty` (or just advances the
  // component's running prefix when nothing changed).
  auto sync_dirty = [&](int next_comp) {
    ctx.prefix[dirty].Build(state->alpha[dirty]);
    ctx.attr_total[dirty] = ctx.prefix[dirty].Total();
    const int cd = poly_.ComponentOfAttr(dirty);
    if (cd >= 0) {
      sweeps->at(cd).Advance(dirty, /*alphas_changed=*/true, ctx);
      if (cd != next_comp) {
        // Leaving the component: fold its refreshed value into ctx (the
        // in-component case is folded by the next family walk itself).
        ctx.comp_value[cd] = sweeps->at(cd).ComponentValue(ctx);
      }
    } else if (next_comp != -1) {
      // A free family changed and the next walk is not another free family
      // (whose own pass would rebuild this anyway): refresh free_product.
      ctx.free_product = 1.0;
      for (AttrId f : poly_.FamilyOrder()) {
        if (poly_.ComponentOfAttr(f) < 0) {
          ctx.free_product *= ctx.attr_total[f];
        }
      }
    }
    has_dirty = false;
  };
  constexpr int kSweepEnd = -2;
  for (AttrId a : poly_.FamilyOrder()) {
    const int ca = poly_.ComponentOfAttr(a);
    if (has_dirty) sync_dirty(ca);
    std::vector<double> cof;
    if (ca >= 0) {
      if (ca != prev_comp) sweeps->at(ca).BeginSweep(*state, ctx);
      // Cofactors A_v = dP/dalpha_{a,v}: independent of the whole family's
      // current values, so one batch serves the entire sequential sweep.
      cof = sweeps->at(ca).FamilyCofactors(a, &ctx);
    } else {
      cof = poly_.FreeFamilyCofactorsAndRefresh(a, &ctx);
    }
    prev_comp = ca;
    if (!(ctx.value > 0.0) || !std::isfinite(ctx.value)) {
      return Status::FailedPrecondition(
          "polynomial evaluated to a non-positive value during solving; "
          "statistics are inconsistent or numerically degenerate");
    }
    double p = ctx.value;
    bool changed = false;
    for (Code v = 0; v < reg_.domain_size(a); ++v) {
      const double s = reg_.OneDTarget(a, v);
      const double av = cof[v];
      double& alpha = state->alpha[a][v];
      if (s <= 0.0) {
        // Zero statistic: pinned; P already reflects alpha = 0.
        if (alpha != 0.0) {
          alpha = 0.0;
          changed = true;
        }
        continue;
      }
      if (av <= kTinyCofactor || s >= n) continue;  // no mass / saturated
      const double expected = alpha * av / p * n;
      max_err = std::max(max_err, std::abs(expected - s) / n);
      const double b = std::max(p - alpha * av, 0.0);
      const double next = s * b / ((n - s) * av);
      p = b + next * av;  // incremental P maintenance
      alpha = next;
      changed = true;
    }
    if (changed) {
      has_dirty = true;
      dirty = a;
    } else if (ca >= 0) {
      sweeps->at(ca).Advance(a, /*alphas_changed=*/false, ctx);
    }
  }
  if (has_dirty) sync_dirty(kSweepEnd);
  ctx.value = ctx.free_product;
  for (double v : ctx.comp_value) ctx.value *= v;

  // ---- Multi-dimensional statistics, one at a time. ----
  if (reg_.num_multi_dim() > 0) {
    // Each ComponentSweep's finished running prefix IS the per-group
    // interval product — frozen for the whole delta phase — so every local
    // cofactor below is O(set size) per group instead of O(group width).
    if (!(ctx.value > 0.0) || !std::isfinite(ctx.value)) {
      return Status::FailedPrecondition(
          "polynomial evaluated to a non-positive value during solving");
    }
    for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
      const double s = reg_.multi_dim(j).target;
      double& delta = state->delta[j];
      if (s <= 0.0) {
        delta = 0.0;  // ZERO statistic: never updated (Sec 4.3)
        continue;
      }
      if (s >= n) continue;
      const int c = poly_.ComponentOfDelta(j);
      // Local cofactor within the component; the outer factors multiply both
      // numerator and denominator of the update and cancel, but are needed
      // for the error metric.
      const double local = poly_.DeltaDerivativeLocalCached(
          *state, sweeps->at(c).RangeSumProducts(), j);
      if (local <= kTinyCofactor) continue;
      const double outer = poly_.OuterProduct(ctx, c);
      const double p = outer * ctx.comp_value[c];
      if (!(p > 0.0)) {
        return Status::FailedPrecondition(
            "polynomial evaluated to a non-positive value during solving");
      }
      const double av = outer * local;
      const double expected = delta * av / p * n;
      max_err = std::max(max_err, std::abs(expected - s) / n);
      const double comp_b = ctx.comp_value[c] - delta * local;
      const double b = outer * std::max(comp_b, 0.0);
      const double next = s * b / ((n - s) * av);
      // Maintain the component value so later deltas see the update.
      ctx.comp_value[c] = std::max(comp_b, 0.0) + next * local;
      delta = next;
    }
    // Leave ctx current for the next sweep (comp_value was maintained
    // incrementally above; the product needs refolding).
    ctx.value = ctx.free_product;
    for (double v : ctx.comp_value) ctx.value *= v;
  }
  return max_err;
}

Result<SolverReport> MaxEntSolver::Solve(ModelState* state) const {
  Timer timer;
  SolverReport report;
  // The only full evaluation of the solve: every sweep hands the context
  // back current (incremental prefix/component refreshes inside).
  auto ctx = poly_.EvaluateUnmasked(*state);
  if (!(ctx.value > 0.0) || !std::isfinite(ctx.value)) {
    return Status::FailedPrecondition(
        "polynomial non-positive at the start of solving; statistics are "
        "inconsistent or numerically degenerate");
  }
  // One sweep driver per component; factor matrices persist across sweeps.
  std::vector<ComponentSweep> sweeps;
  sweeps.reserve(poly_.NumComponents());
  for (size_t c = 0; c < poly_.NumComponents(); ++c) {
    sweeps.emplace_back(poly_, static_cast<int>(c));
  }
  for (size_t it = 0; it < opts_.max_iterations; ++it) {
    ASSIGN_OR_RETURN(double err, Sweep(state, &ctx, &sweeps));
    report.iterations = it + 1;
    report.final_error = err;
    if (opts_.record_trace) report.error_trace.push_back(err);
    if (err < opts_.tolerance) {
      report.converged = true;
      break;
    }
  }
  // The in-sweep error is measured pre-update; refresh it post-hoc so the
  // report reflects the final state.
  report.final_error = MaxStatisticError(*state);
  report.converged = report.final_error < opts_.tolerance;
  report.wall_seconds = timer.ElapsedSeconds();
  return report;
}

double MaxEntSolver::MaxStatisticError(const ModelState& state) const {
  const double n = reg_.n();
  auto ctx = poly_.EvaluateUnmasked(state);
  if (!(ctx.value > 0.0)) return std::numeric_limits<double>::infinity();
  // One cofactor sweep yields every derivative at once.
  const auto derivs = poly_.AllDerivatives(state, ctx);
  double max_err = 0.0;
  for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
    const std::vector<double>& cof = derivs.alpha[a];
    for (Code v = 0; v < reg_.domain_size(a); ++v) {
      const double expected = state.alpha[a][v] * cof[v] / ctx.value * n;
      max_err =
          std::max(max_err, std::abs(expected - reg_.OneDTarget(a, v)) / n);
    }
  }
  for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
    const double expected = state.delta[j] * derivs.delta[j] / ctx.value * n;
    max_err = std::max(
        max_err, std::abs(expected - reg_.multi_dim(j).target) / n);
  }
  return max_err;
}

}  // namespace entropydb
