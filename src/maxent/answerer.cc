#include "maxent/answerer.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

double QueryEstimate::StdDev() const { return std::sqrt(variance); }

std::pair<double, double> QueryEstimate::ConfidenceInterval(double z,
                                                            double n) const {
  double half = z * StdDev();
  return {std::max(0.0, expectation - half), std::min(n, expectation + half)};
}

double QueryEstimate::RoundedCount() const { return std::round(expectation); }

QueryAnswerer::QueryAnswerer(const VariableRegistry& reg,
                             const CompressedPolynomial& poly,
                             const ModelState& state)
    : reg_(reg), poly_(poly), state_(state) {
  full_value_ = poly_.EvaluateUnmasked(state_).value;
}

Result<QueryEstimate> QueryAnswerer::Answer(const CountingQuery& q) const {
  if (q.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  QueryMask mask = QueryMask::FromQuery(q, reg_.domain_sizes());
  const double masked = poly_.Evaluate(state_, mask).value;
  const double p = std::clamp(masked / full_value_, 0.0, 1.0);
  QueryEstimate est;
  est.expectation = reg_.n() * p;
  est.variance = reg_.n() * p * (1.0 - p);
  return est;
}

Result<std::vector<QueryEstimate>> QueryAnswerer::AnswerGroupByAttribute(
    AttrId a, const CountingQuery& base) const {
  if (base.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("group-by attribute out of range");
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  // Mask with the base filter but leave attribute `a` unconstrained: the
  // per-value masked cofactors then split the filtered mass by value.
  CountingQuery relaxed = base;
  relaxed.Where(a, AttrPredicate::Any());
  QueryMask mask = QueryMask::FromQuery(relaxed, reg_.domain_sizes());
  auto ctx = poly_.Evaluate(state_, mask);
  auto cof = poly_.AlphaDerivatives(state_, ctx, a);

  const AttrPredicate& pred = base.predicate(a);
  const double n = reg_.n();
  std::vector<QueryEstimate> out(reg_.domain_size(a));
  for (Code v = 0; v < reg_.domain_size(a); ++v) {
    QueryEstimate est;
    if (pred.Matches(v)) {
      const double p =
          std::clamp(state_.alpha[a][v] * cof[v] / full_value_, 0.0, 1.0);
      est.expectation = n * p;
      est.variance = n * p * (1.0 - p);
    }
    out[v] = est;
  }
  return out;
}

Result<QueryEstimate> QueryAnswerer::AnswerSum(
    AttrId a, const std::vector<double>& weights,
    const CountingQuery& q) const {
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("aggregate attribute out of range");
  }
  if (weights.size() != reg_.domain_size(a)) {
    return Status::InvalidArgument(
        "weight vector must have one entry per value of the attribute");
  }
  ASSIGN_OR_RETURN(std::vector<QueryEstimate> counts,
                   AnswerGroupByAttribute(a, q));
  QueryEstimate est;
  for (Code v = 0; v < weights.size(); ++v) {
    est.expectation += weights[v] * counts[v].expectation;
    est.variance += weights[v] * weights[v] * counts[v].variance;
  }
  return est;
}

Result<QueryEstimate> QueryAnswerer::AnswerAvg(
    AttrId a, const std::vector<double>& weights,
    const CountingQuery& q) const {
  ASSIGN_OR_RETURN(QueryEstimate sum, AnswerSum(a, weights, q));
  ASSIGN_OR_RETURN(QueryEstimate count, Answer(q));
  QueryEstimate est;
  if (count.expectation > 0.0) {
    est.expectation = sum.expectation / count.expectation;
  }
  return est;
}

Result<std::map<std::vector<Code>, QueryEstimate>> QueryAnswerer::AnswerGroupBy(
    const std::vector<AttrId>& attrs,
    const std::vector<std::vector<Code>>& keys,
    const CountingQuery& base) const {
  std::map<std::vector<Code>, QueryEstimate> out;
  for (const auto& key : keys) {
    if (key.size() != attrs.size()) {
      return Status::InvalidArgument("group-by key arity mismatch");
    }
    CountingQuery q = base;
    for (size_t i = 0; i < attrs.size(); ++i) {
      q.Where(attrs[i], AttrPredicate::Point(key[i]));
    }
    ASSIGN_OR_RETURN(QueryEstimate est, Answer(q));
    out.emplace(key, est);
  }
  return out;
}

}  // namespace entropydb
