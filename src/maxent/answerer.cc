#include "maxent/answerer.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

QueryAnswerer::QueryAnswerer(const VariableRegistry& reg,
                             const CompressedPolynomial& poly,
                             const ModelState& state)
    : reg_(reg), poly_(poly), state_(state), pool_(poly, state) {
  full_value_ = pool_.full_value();
}

Result<QueryEstimate> QueryAnswerer::Answer(const CountingQuery& q) const {
  if (q.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  QueryMask mask = QueryMask::FromQuery(q, reg_.domain_sizes());
  WorkspacePool::Lease lease = pool_.Acquire();
  const double masked = poly_.MaskedEvaluate(state_, mask, lease.get()).value;
  const double p = std::clamp(masked / full_value_, 0.0, 1.0);
  QueryEstimate est;
  est.expectation = reg_.n() * p;
  est.variance = reg_.n() * p * (1.0 - p);
  return est;
}

Result<QueryResult> QueryAnswerer::Answer(const AggregateQuery& q) const {
  QueryResult out;
  if (q.kind == AggregateKind::kCount) {
    ASSIGN_OR_RETURN(out.estimate, Answer(q.where));
    // The count leg repeats the estimate so moment merging is uniform
    // across kinds; the (absent) sum leg and covariance stay zero.
    out.count = out.estimate;
    out.has_moments = true;
    out.route.expected_variance = out.estimate.variance;
    out.route.summary_variance = out.estimate.variance;
    return out;
  }
  if (q.kind != AggregateKind::kSum && q.kind != AggregateKind::kAvg) {
    return Status::NotSupported(
        std::string("aggregate kind ") + AggregateKindName(q.kind) +
        " is derived at the engine facade, not answered by one model");
  }
  const AttrId a = q.agg_attr;
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("aggregate attribute out of range");
  }
  if (q.weights.size() != reg_.domain_size(a)) {
    return Status::InvalidArgument(
        "weight vector must have one entry per value of the attribute");
  }
  // One batched pass for the per-value counts; the matching total C comes
  // from Answer(where) so the ratio's denominator (and the count leg) is
  // the same estimate a plain COUNT reports.
  ASSIGN_OR_RETURN(std::vector<QueryEstimate> counts,
                   AnswerGroupByAttribute(a, q.where));
  ASSIGN_OR_RETURN(out.count, Answer(q.where));

  // Multinomial cell moments over the matching values:
  //   Var S  = n (sum w^2 p - (sum w p)^2)
  //   Var C  = n P (1 - P)
  //   Cov    = n (sum w p) (1 - P)
  const double n = reg_.n();
  double swp = 0.0, sw2p = 0.0;
  for (Code v = 0; v < q.weights.size(); ++v) {
    const double pv = counts[v].expectation / n;
    out.sum.expectation += q.weights[v] * counts[v].expectation;
    swp += q.weights[v] * pv;
    sw2p += q.weights[v] * q.weights[v] * pv;
  }
  out.sum.variance = std::max(0.0, n * (sw2p - swp * swp));
  const double big_p = std::clamp(out.count.expectation / n, 0.0, 1.0);
  const double mean_wp = out.sum.expectation / n;  // sum_v w_v p_v
  out.sum_count_cov = n * mean_wp * (1.0 - big_p);
  out.has_moments = true;

  if (q.kind == AggregateKind::kSum) {
    out.estimate = out.sum;
  } else if (out.count.expectation > 0.0) {
    // Delta method on R = S/C with the moments above — the covariance is
    // kept, not assumed away.
    const double c = out.count.expectation;
    const double r = out.sum.expectation / c;
    out.estimate.expectation = r;
    out.estimate.variance = std::max(
        0.0, (out.sum.variance - 2.0 * r * out.sum_count_cov +
              r * r * out.count.variance) /
                 (c * c));
  }
  out.route.expected_variance = out.estimate.variance;
  out.route.summary_variance = out.estimate.variance;
  return out;
}

Result<std::vector<QueryEstimate>> QueryAnswerer::AnswerGroupByAttribute(
    AttrId a, const CountingQuery& base) const {
  if (base.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("group-by attribute out of range");
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  // Mask with the base filter but leave attribute `a` unconstrained: the
  // per-value masked cofactors then split the filtered mass by value.
  CountingQuery relaxed = base;
  relaxed.Where(a, AttrPredicate::Any());
  QueryMask mask = QueryMask::FromQuery(relaxed, reg_.domain_sizes());
  std::vector<double> cof;
  {
    // The derivative pass consumes the masked evaluation's workspace
    // residue, so both run under one lease.
    WorkspacePool::Lease lease = pool_.Acquire();
    const auto eval = poly_.MaskedEvaluate(state_, mask, lease.get());
    cof = poly_.MaskedAlphaDerivatives(state_, eval, a, lease.get());
  }

  const AttrPredicate& pred = base.predicate(a);
  const double n = reg_.n();
  std::vector<QueryEstimate> out(reg_.domain_size(a));
  for (Code v = 0; v < reg_.domain_size(a); ++v) {
    QueryEstimate est;
    if (pred.Matches(v)) {
      const double p =
          std::clamp(state_.alpha[a][v] * cof[v] / full_value_, 0.0, 1.0);
      est.expectation = n * p;
      est.variance = n * p * (1.0 - p);
    }
    out[v] = est;
  }
  return out;
}

Result<std::map<std::vector<Code>, QueryEstimate>> QueryAnswerer::AnswerGroupBy(
    const std::vector<AttrId>& attrs,
    const std::vector<std::vector<Code>>& keys,
    const CountingQuery& base) const {
  if (base.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  for (AttrId a : attrs) {
    if (a >= reg_.num_attributes()) {
      return Status::OutOfRange("group-by attribute out of range");
    }
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  // One masked evaluation with every group-by attribute relaxed serves all
  // keys; each key only re-walks the components its attributes touch, with
  // point lookups substituted for that attribute's range sums.
  CountingQuery relaxed = base;
  for (AttrId a : attrs) relaxed.Where(a, AttrPredicate::Any());
  QueryMask mask = QueryMask::FromQuery(relaxed, reg_.domain_sizes());
  // The per-key point overrides consume the masked evaluation's workspace
  // residue, so the whole batch runs under one lease.
  WorkspacePool::Lease lease = pool_.Acquire();
  const auto eval = poly_.MaskedEvaluate(state_, mask, lease.get());

  const double n = reg_.n();
  std::map<std::vector<Code>, QueryEstimate> out;
  for (const auto& key : keys) {
    if (key.size() != attrs.size()) {
      return Status::InvalidArgument("group-by key arity mismatch");
    }
    QueryEstimate est;
    // A key cell contributes only if it lies in the domain AND satisfies
    // the base filter on its own attribute — relaxing above widened the
    // mask, so the filter must be re-applied per cell (the same contract
    // AnswerGroupByAttribute keeps via pred.Matches).
    bool in_domain = true;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (key[i] >= reg_.domain_size(attrs[i]) ||
          !base.predicate(attrs[i]).Matches(key[i])) {
        in_domain = false;
      }
    }
    if (in_domain) {
      const double masked =
          poly_.PointOverrideValue(state_, eval, attrs, key, lease.get());
      const double p = std::clamp(masked / full_value_, 0.0, 1.0);
      est.expectation = n * p;
      est.variance = n * p * (1.0 - p);
    }
    out.emplace(key, est);
  }
  return out;
}

}  // namespace entropydb
