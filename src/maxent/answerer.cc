#include "maxent/answerer.h"

#include <algorithm>
#include <cmath>

namespace entropydb {

double QueryEstimate::StdDev() const { return std::sqrt(variance); }

std::pair<double, double> QueryEstimate::ConfidenceInterval(double z,
                                                            double n) const {
  double half = z * StdDev();
  return {std::max(0.0, expectation - half), std::min(n, expectation + half)};
}

double QueryEstimate::RoundedCount() const { return std::round(expectation); }

QueryAnswerer::QueryAnswerer(const VariableRegistry& reg,
                             const CompressedPolynomial& poly,
                             const ModelState& state)
    : reg_(reg), poly_(poly), state_(state), pool_(poly, state) {
  full_value_ = pool_.full_value();
}

Result<QueryEstimate> QueryAnswerer::Answer(const CountingQuery& q) const {
  if (q.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  QueryMask mask = QueryMask::FromQuery(q, reg_.domain_sizes());
  WorkspacePool::Lease lease = pool_.Acquire();
  const double masked = poly_.MaskedEvaluate(state_, mask, lease.get()).value;
  const double p = std::clamp(masked / full_value_, 0.0, 1.0);
  QueryEstimate est;
  est.expectation = reg_.n() * p;
  est.variance = reg_.n() * p * (1.0 - p);
  return est;
}

Result<std::vector<QueryEstimate>> QueryAnswerer::AnswerGroupByAttribute(
    AttrId a, const CountingQuery& base) const {
  if (base.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("group-by attribute out of range");
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  // Mask with the base filter but leave attribute `a` unconstrained: the
  // per-value masked cofactors then split the filtered mass by value.
  CountingQuery relaxed = base;
  relaxed.Where(a, AttrPredicate::Any());
  QueryMask mask = QueryMask::FromQuery(relaxed, reg_.domain_sizes());
  std::vector<double> cof;
  {
    // The derivative pass consumes the masked evaluation's workspace
    // residue, so both run under one lease.
    WorkspacePool::Lease lease = pool_.Acquire();
    const auto eval = poly_.MaskedEvaluate(state_, mask, lease.get());
    cof = poly_.MaskedAlphaDerivatives(state_, eval, a, lease.get());
  }

  const AttrPredicate& pred = base.predicate(a);
  const double n = reg_.n();
  std::vector<QueryEstimate> out(reg_.domain_size(a));
  for (Code v = 0; v < reg_.domain_size(a); ++v) {
    QueryEstimate est;
    if (pred.Matches(v)) {
      const double p =
          std::clamp(state_.alpha[a][v] * cof[v] / full_value_, 0.0, 1.0);
      est.expectation = n * p;
      est.variance = n * p * (1.0 - p);
    }
    out[v] = est;
  }
  return out;
}

Result<QueryEstimate> QueryAnswerer::AnswerSum(
    AttrId a, const std::vector<double>& weights,
    const CountingQuery& q) const {
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("aggregate attribute out of range");
  }
  if (weights.size() != reg_.domain_size(a)) {
    return Status::InvalidArgument(
        "weight vector must have one entry per value of the attribute");
  }
  ASSIGN_OR_RETURN(std::vector<QueryEstimate> counts,
                   AnswerGroupByAttribute(a, q));
  QueryEstimate est;
  // Var S = n (sum w^2 p - (sum w p)^2) under the multinomial law over
  // the matching cells — the same moments AnswerAvg's delta method uses,
  // so SUM and AVG report one consistent dispersion model.
  const double n = reg_.n();
  double swp = 0.0, sw2p = 0.0;
  for (Code v = 0; v < weights.size(); ++v) {
    const double pv = counts[v].expectation / n;
    est.expectation += weights[v] * counts[v].expectation;
    swp += weights[v] * pv;
    sw2p += weights[v] * weights[v] * pv;
  }
  est.variance = std::max(0.0, n * (sw2p - swp * swp));
  return est;
}

Result<QueryEstimate> QueryAnswerer::AnswerAvg(
    AttrId a, const std::vector<double>& weights,
    const CountingQuery& q) const {
  if (a >= reg_.num_attributes()) {
    return Status::OutOfRange("aggregate attribute out of range");
  }
  if (weights.size() != reg_.domain_size(a)) {
    return Status::InvalidArgument(
        "weight vector must have one entry per value of the attribute");
  }
  // One batched pass for the per-value counts; the matching total C comes
  // from Answer(q) so the ratio's denominator is the same estimate
  // AnswerCount reports.
  ASSIGN_OR_RETURN(std::vector<QueryEstimate> counts,
                   AnswerGroupByAttribute(a, q));
  ASSIGN_OR_RETURN(QueryEstimate count, Answer(q));
  QueryEstimate est;
  if (!(count.expectation > 0.0)) return est;

  const double n = reg_.n();
  double s = 0.0;       // E[S] = sum_v w_v E[X_v]
  double sw2p = 0.0;    // sum_v w_v^2 p_v
  for (Code v = 0; v < weights.size(); ++v) {
    const double pv = counts[v].expectation / n;
    s += weights[v] * counts[v].expectation;
    sw2p += weights[v] * weights[v] * pv;
  }
  const double c = count.expectation;
  const double r = s / c;
  est.expectation = r;

  // Delta method on R = S/C with multinomial cell moments:
  //   Var S  = n (sum w^2 p - (sum w p)^2)
  //   Var C  = n P (1 - P)
  //   Cov    = n (sum w p) (1 - P)
  //   Var R ~= (Var S - 2 R Cov + R^2 Var C) / C^2
  const double mean_wp = s / n;  // sum_v w_v p_v
  const double big_p = std::clamp(c / n, 0.0, 1.0);
  const double var_s = n * (sw2p - mean_wp * mean_wp);
  const double var_c = n * big_p * (1.0 - big_p);
  const double cov = n * mean_wp * (1.0 - big_p);
  est.variance =
      std::max(0.0, (var_s - 2.0 * r * cov + r * r * var_c) / (c * c));
  return est;
}

Result<std::map<std::vector<Code>, QueryEstimate>> QueryAnswerer::AnswerGroupBy(
    const std::vector<AttrId>& attrs,
    const std::vector<std::vector<Code>>& keys,
    const CountingQuery& base) const {
  if (base.num_attributes() != reg_.num_attributes()) {
    return Status::InvalidArgument("query arity does not match the summary");
  }
  for (AttrId a : attrs) {
    if (a >= reg_.num_attributes()) {
      return Status::OutOfRange("group-by attribute out of range");
    }
  }
  if (!(full_value_ > 0.0)) {
    return Status::FailedPrecondition("summary is not solved (P <= 0)");
  }
  // One masked evaluation with every group-by attribute relaxed serves all
  // keys; each key only re-walks the components its attributes touch, with
  // point lookups substituted for that attribute's range sums.
  CountingQuery relaxed = base;
  for (AttrId a : attrs) relaxed.Where(a, AttrPredicate::Any());
  QueryMask mask = QueryMask::FromQuery(relaxed, reg_.domain_sizes());
  // The per-key point overrides consume the masked evaluation's workspace
  // residue, so the whole batch runs under one lease.
  WorkspacePool::Lease lease = pool_.Acquire();
  const auto eval = poly_.MaskedEvaluate(state_, mask, lease.get());

  const double n = reg_.n();
  std::map<std::vector<Code>, QueryEstimate> out;
  for (const auto& key : keys) {
    if (key.size() != attrs.size()) {
      return Status::InvalidArgument("group-by key arity mismatch");
    }
    QueryEstimate est;
    bool in_domain = true;
    for (size_t i = 0; i < attrs.size(); ++i) {
      if (key[i] >= reg_.domain_size(attrs[i])) in_domain = false;
    }
    if (in_domain) {
      const double masked =
          poly_.PointOverrideValue(state_, eval, attrs, key, lease.get());
      const double p = std::clamp(masked / full_value_, 0.0, 1.0);
      est.expectation = n * p;
      est.variance = n * p * (1.0 - p);
    }
    out.emplace(key, est);
  }
  return out;
}

}  // namespace entropydb
