#include "maxent/quantile.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace entropydb {

namespace {

constexpr double kZ = 1.96;  // the 95% bound every tool surface reports

/// Smallest code whose cumulative count reaches `target` (the CDF
/// inversion). `target` <= 0 lands on the first code with any mass;
/// a target beyond the total lands on the last such code.
size_t InvertCdf(const std::vector<QueryEstimate>& cells, double target) {
  double cum = 0.0;
  size_t last_mass = 0;
  for (size_t v = 0; v < cells.size(); ++v) {
    if (cells[v].expectation > 0.0) last_mass = v;
    cum += cells[v].expectation;
    if (cum >= target && cells[v].expectation > 0.0) return v;
  }
  return last_mass;
}

}  // namespace

Result<QueryResult> QuantileFromMarginal(
    const std::vector<QueryEstimate>& cells, const std::vector<double>& reps,
    double q, double n) {
  if (!(q > 0.0) || !(q < 1.0)) {
    return Status::InvalidArgument("quantile rank must be in (0, 1)");
  }
  if (reps.size() != cells.size()) {
    return Status::InvalidArgument(
        "representative vector must have one entry per value");
  }
  if (cells.empty()) {
    return Status::InvalidArgument("quantile over an empty domain");
  }
  double total = 0.0;
  for (const QueryEstimate& c : cells) total += c.expectation;
  if (!(total > 0.0)) {
    return Status::FailedPrecondition(
        "quantile of a selection with no estimated mass");
  }
  const double target = q * total;
  const size_t v_star = InvertCdf(cells, target);

  // The cumulative count at the target is Binomial(n, p): shift the
  // inversion target by z of its sd to bound the quantile in value space.
  const double p = n > 0.0 ? std::clamp(target / n, 0.0, 1.0) : 0.0;
  const double sd = n > 0.0 ? std::sqrt(n * p * (1.0 - p)) : 0.0;
  const size_t v_lo = InvertCdf(cells, target - kZ * sd);
  const size_t v_hi = InvertCdf(cells, std::min(total, target + kZ * sd));

  QueryResult out;
  out.estimate.expectation = reps[v_star];
  out.bound_lo = reps[v_lo];
  out.bound_hi = reps[v_hi];
  out.has_bound = true;
  // Matched normal proxy so variance consumers (CIs, routing surfaces)
  // see a dispersion consistent with the typed bound.
  const double half = (out.bound_hi - out.bound_lo) / (2.0 * kZ);
  out.estimate.variance = half * half;
  out.route.expected_variance = out.estimate.variance;
  out.route.summary_variance = out.estimate.variance;
  return out;
}

Result<QueryResult> TopKFromMarginal(const std::vector<QueryEstimate>& cells,
                                     size_t k) {
  if (k == 0) {
    return Status::InvalidArgument("top-k needs k >= 1");
  }
  if (cells.empty()) {
    return Status::InvalidArgument("top-k over an empty domain");
  }
  std::vector<size_t> order(cells.size());
  std::iota(order.begin(), order.end(), size_t{0});
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    if (cells[a].expectation != cells[b].expectation) {
      return cells[a].expectation > cells[b].expectation;
    }
    return a < b;
  });
  QueryResult out;
  const size_t take = std::min(k, cells.size());
  out.cells.reserve(take);
  for (size_t i = 0; i < take; ++i) {
    GroupCell cell;
    cell.code = static_cast<Code>(order[i]);
    cell.estimate = cells[order[i]];
    out.cells.push_back(cell);
  }
  out.estimate = out.cells.front().estimate;
  out.route.expected_variance = out.estimate.variance;
  out.route.summary_variance = out.estimate.variance;
  return out;
}

}  // namespace entropydb
