#ifndef ENTROPYDB_MAXENT_GRADIENT_SOLVER_H_
#define ENTROPYDB_MAXENT_GRADIENT_SOLVER_H_

#include "common/result.h"
#include "maxent/polynomial.h"
#include "maxent/solver.h"
#include "maxent/variable_registry.h"

namespace entropydb {

/// Options for the baseline gradient solver.
struct GradientSolverOptions {
  size_t max_iterations = 500;
  double tolerance = 1e-6;
  /// Initial step size on theta = ln(alpha); backtracked on dual decrease.
  double step = 0.5;
  /// Multiplicative backoff when a step does not improve the dual.
  double backoff = 0.5;
  bool record_trace = false;
};

/// \brief Baseline solver: full-gradient ascent on the dual Psi (Eq 11) in
/// the natural parameters theta_j = ln(alpha_j), with backtracking line
/// search.
///
/// Sec 2 of the paper notes the MaxEnt model "can be solved by reducing it
/// to a convex optimization problem of a dual function, which can be
/// solved using Gradient Descent. However, even this is difficult given the
/// size of our model" — their remedy is the coordinate mirror-descent of
/// Algorithm 1 (our MaxEntSolver). This class implements the gradient
/// baseline so the claim is measurable: see bench_solver and the
/// solver-comparison tests. The gradient in theta-space is
/// d(Psi)/d(theta_j) = s_j - E[<c_j, I>], evaluated with the same batched
/// derivative machinery the fast solver uses.
///
/// Zero-target variables are pinned to zero exactly as in MaxEntSolver.
class GradientMaxEntSolver {
 public:
  GradientMaxEntSolver(const VariableRegistry& reg,
                       const CompressedPolynomial& poly,
                       GradientSolverOptions opts = {})
      : reg_(reg), poly_(poly), opts_(opts) {}

  /// Runs gradient ascent until max_j |s_j - E_j| / n < tolerance or the
  /// iteration cap. Reuses SolverReport for comparability.
  Result<SolverReport> Solve(ModelState* state) const;

 private:
  /// Dual value Psi = sum_j s_j ln(alpha_j) - n ln(P), skipping pinned
  /// variables (their contribution is a constant -inf offset that never
  /// changes; the paper's overcomplete dual is defined on the support).
  double Dual(const ModelState& state, double p_value) const;

  const VariableRegistry& reg_;
  const CompressedPolynomial& poly_;
  GradientSolverOptions opts_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_GRADIENT_SOLVER_H_
