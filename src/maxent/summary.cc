#include "maxent/summary.h"

#include <cinttypes>
#include <cstdio>
#include <sstream>

#include "common/str_util.h"
#include "query/exact_evaluator.h"

namespace entropydb {

Result<std::shared_ptr<EntropySummary>> EntropySummary::Build(
    const Table& table, std::vector<MultiDimStatistic> mds,
    SummaryOptions opts) {
  const size_t m = table.num_attributes();
  ExactEvaluator eval(table);

  std::vector<uint32_t> sizes(m);
  std::vector<std::vector<double>> targets(m);
  std::vector<std::string> names(m);
  for (AttrId a = 0; a < m; ++a) {
    sizes[a] = table.domain(a).size();
    names[a] = table.schema().attribute(a).name;
    auto hist = eval.Histogram1D(a);
    targets[a].assign(hist.begin(), hist.end());
  }
  ASSIGN_OR_RETURN(VariableRegistry reg,
                   VariableRegistry::Create(
                       std::move(sizes), std::move(targets), std::move(mds),
                       static_cast<double>(table.num_rows())));
  return FromRegistry(std::move(reg), opts, std::move(names),
                      table.domains());
}

Result<std::shared_ptr<EntropySummary>> EntropySummary::FromRegistry(
    VariableRegistry reg, SummaryOptions opts,
    std::vector<std::string> attr_names, std::vector<Domain> domains) {
  ASSIGN_OR_RETURN(CompressedPolynomial poly,
                   CompressedPolynomial::Build(reg, opts.polynomial));
  ModelState state = ModelState::InitialState(reg);
  MaxEntSolver solver(reg, poly, opts.solver);
  ASSIGN_OR_RETURN(SolverReport report, solver.Solve(&state));
  if (attr_names.empty()) {
    attr_names.resize(reg.num_attributes());
    for (size_t a = 0; a < attr_names.size(); ++a) {
      attr_names[a] = "A" + std::to_string(a);
    }
  }
  return std::shared_ptr<EntropySummary>(
      new EntropySummary(std::move(reg), std::move(poly), std::move(state),
                         std::move(report), std::move(attr_names),
                         std::move(domains)));
}

namespace {
void WriteDoubles(std::ostream& out, const std::vector<double>& v) {
  char buf[32];
  for (size_t i = 0; i < v.size(); ++i) {
    std::snprintf(buf, sizeof(buf), "%.17g", v[i]);
    if (i > 0) out << ' ';
    out << buf;
  }
  out << '\n';
}

Result<std::vector<double>> ReadDoubles(std::istream& in, size_t count) {
  std::vector<double> v(count);
  for (size_t i = 0; i < count; ++i) {
    if (!(in >> v[i])) return Status::Corruption("truncated double array");
  }
  return v;
}
}  // namespace

Status EntropySummary::Save(const std::string& path, Env* env) const {
  // The payload is composed in memory and handed to the Env in one
  // checksummed, synced write: stream state cannot be silently dropped,
  // and FaultInjectionEnv can account for every byte.
  std::ostringstream out;
  out << "ENTROPYDB_SUMMARY_V2\n";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", reg_.n());
  out << "n " << buf << "\n";
  out << "attrs " << reg_.num_attributes() << "\n";
  for (AttrId a = 0; a < reg_.num_attributes(); ++a) {
    out << attr_names_[a] << ' ' << reg_.domain_size(a) << '\n';
    WriteDoubles(out, reg_.one_d_targets()[a]);
    WriteDoubles(out, state_.alpha[a]);
  }
  out << "mds " << reg_.num_multi_dim() << "\n";
  for (uint32_t j = 0; j < reg_.num_multi_dim(); ++j) {
    const auto& s = reg_.multi_dim(j);
    out << s.attrs.size();
    for (size_t i = 0; i < s.attrs.size(); ++i) {
      out << ' ' << s.attrs[i] << ' ' << s.ranges[i].lo << ' '
          << s.ranges[i].hi;
    }
    std::snprintf(buf, sizeof(buf), "%.17g", s.target);
    out << ' ' << buf;
    std::snprintf(buf, sizeof(buf), "%.17g", state_.delta[j]);
    out << ' ' << buf << '\n';
  }
  out << "domains " << domains_.size() << "\n";
  for (const Domain& d : domains_) {
    if (d.is_categorical()) {
      out << "cat " << d.size() << '\n';
      for (Code v = 0; v < d.size(); ++v) out << d.LabelFor(v) << '\n';
    } else {
      std::snprintf(buf, sizeof(buf), "%.17g", d.bin_lo());
      out << "bin " << buf;
      std::snprintf(buf, sizeof(buf), "%.17g", d.bin_hi());
      out << ' ' << buf << ' ' << d.size() << '\n';
    }
  }
  if (!out.good()) {
    return Status::Internal("summary serialization failure: " + path);
  }
  return WriteChecksummedFile(env, path, out.str());
}

Result<std::shared_ptr<EntropySummary>> EntropySummary::Load(
    const std::string& path, SummaryOptions opts, Env* env) {
  bool had_footer = false;
  ASSIGN_OR_RETURN(std::string payload,
                   ReadChecksummedFile(env, path, opts.verify_checksums,
                                       &had_footer));
  std::istringstream in(payload);
  std::string token;
  if (!(in >> token) ||
      (token != "ENTROPYDB_SUMMARY_V1" && token != "ENTROPYDB_SUMMARY_V2")) {
    return Status::Corruption("bad summary header in " + path);
  }
  // v2 is the checksummed era: a v2 file without a verifiable footer lost
  // its tail. v1 predates checksums and loads unverified (warn — the
  // next Save rewrites it as v2).
  if (token == "ENTROPYDB_SUMMARY_V2" && !had_footer) {
    return Status::Corruption("missing checksum footer in " + path);
  }
  if (!had_footer) {
    std::fprintf(stderr,
                 "entropydb: warning: %s has no checksum footer "
                 "(legacy format, loaded unverified)\n",
                 path.c_str());
  }
  double n = 0.0;
  size_t m = 0;
  if (!(in >> token >> n) || token != "n") {
    return Status::Corruption("bad n record");
  }
  if (!(in >> token >> m) || token != "attrs") {
    return Status::Corruption("bad attrs record");
  }
  std::vector<std::string> names(m);
  std::vector<uint32_t> sizes(m);
  std::vector<std::vector<double>> targets(m);
  std::vector<std::vector<double>> alphas(m);
  for (size_t a = 0; a < m; ++a) {
    if (!(in >> names[a] >> sizes[a])) {
      return Status::Corruption("bad attribute record");
    }
    ASSIGN_OR_RETURN(targets[a], ReadDoubles(in, sizes[a]));
    ASSIGN_OR_RETURN(alphas[a], ReadDoubles(in, sizes[a]));
  }
  size_t k = 0;
  if (!(in >> token >> k) || token != "mds") {
    return Status::Corruption("bad mds record");
  }
  std::vector<MultiDimStatistic> mds(k);
  std::vector<double> deltas(k);
  for (size_t j = 0; j < k; ++j) {
    size_t nattrs = 0;
    if (!(in >> nattrs)) return Status::Corruption("bad statistic arity");
    mds[j].attrs.resize(nattrs);
    mds[j].ranges.resize(nattrs);
    for (size_t i = 0; i < nattrs; ++i) {
      if (!(in >> mds[j].attrs[i] >> mds[j].ranges[i].lo >>
            mds[j].ranges[i].hi)) {
        return Status::Corruption("bad statistic rectangle");
      }
    }
    if (!(in >> mds[j].target >> deltas[j])) {
      return Status::Corruption("bad statistic values");
    }
  }

  // Optional domains section (older files may omit it).
  std::vector<Domain> domains;
  size_t num_domains = 0;
  if (in >> token && token == "domains" && (in >> num_domains) &&
      num_domains > 0) {
    if (num_domains != m) {
      return Status::Corruption("domain count mismatch");
    }
    domains.reserve(m);
    for (size_t a = 0; a < m; ++a) {
      std::string kind;
      if (!(in >> kind)) return Status::Corruption("truncated domain");
      if (kind == "cat") {
        size_t count = 0;
        if (!(in >> count)) return Status::Corruption("bad domain header");
        std::string line;
        std::getline(in, line);  // consume the rest of the header line
        std::vector<std::string> labels(count);
        for (auto& l : labels) {
          if (!std::getline(in, l)) {
            return Status::Corruption("truncated labels");
          }
        }
        domains.push_back(Domain::Categorical(std::move(labels)));
      } else if (kind == "bin") {
        double lo = 0, hi = 0;
        uint32_t buckets = 0;
        if (!(in >> lo >> hi >> buckets)) {
          return Status::Corruption("bad binned domain");
        }
        domains.push_back(Domain::Binned(lo, hi, buckets));
      } else {
        return Status::Corruption("unknown domain kind: " + kind);
      }
      if (domains.back().size() != sizes[a]) {
        return Status::Corruption("domain size mismatch on attribute " +
                                  std::to_string(a));
      }
    }
  }

  ASSIGN_OR_RETURN(VariableRegistry reg,
                   VariableRegistry::Create(std::move(sizes),
                                            std::move(targets),
                                            std::move(mds), n));
  ASSIGN_OR_RETURN(CompressedPolynomial poly,
                   CompressedPolynomial::Build(reg, opts.polynomial));
  ModelState state;
  state.alpha = std::move(alphas);
  state.delta = std::move(deltas);
  SolverReport report;  // solved offline; report intentionally empty
  auto summary = std::shared_ptr<EntropySummary>(
      new EntropySummary(std::move(reg), std::move(poly), std::move(state),
                         std::move(report), std::move(names),
                         std::move(domains)));
  // The answerer warmed its workspace pool above (the shared factor cache
  // is built eagerly), so the solved-state sanity check is free: corrupt
  // or truncated parameters surface here rather than as
  // FailedPrecondition on the first query.
  if (!(summary->answerer_->FullPolynomialValue() > 0.0)) {
    return Status::Corruption(
        "summary parameters evaluate to a non-positive polynomial: " + path);
  }
  return summary;
}

}  // namespace entropydb
