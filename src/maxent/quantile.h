#ifndef ENTROPYDB_MAXENT_QUANTILE_H_
#define ENTROPYDB_MAXENT_QUANTILE_H_

#include <vector>

#include "common/result.h"
#include "query/aggregate.h"

namespace entropydb {

/// \brief Order statistics from a summary's group-by marginal — pure
/// marginal algebra over the per-value counts AnswerGroupByAttribute
/// already computes, so quantiles and top-k work uniformly over single
/// summaries, routed stores, and sharded stores (whose marginals merge
/// additively). Derivations in docs/ESTIMATORS.md "Quantiles and top-k".

/// The q-quantile of attribute values under a filter, by inverting the
/// estimated CDF: with per-value counts c_v (ascending code order, codes
/// ARE value order for both categorical and bucketed-numeric domains) and
/// C = sum c_v, the estimate is reps[v*] for the smallest v* whose
/// cumulative count reaches q C.
///
/// The typed error bound comes from the same inversion at shifted targets:
/// the cumulative count at the quantile is a Binomial(n, p) mass with
/// sd = sqrt(n p (1 - p)), p = q C / n, so re-inverting at q C -+ z sd
/// (z = 1.96) yields a value-space interval [bound_lo, bound_hi]. The
/// variance field carries the matched normal proxy ((hi - lo) / 2z)^2 so
/// downstream variance consumers keep working.
///
/// `reps` holds one value representative per code (BucketWeights); `n` is
/// the relation cardinality the counts were estimated against. Fails with
/// kInvalidArgument for q outside (0, 1) or a reps/cells size mismatch,
/// and kFailedPrecondition when no mass matches the filter (C <= 0).
Result<QueryResult> QuantileFromMarginal(const std::vector<QueryEstimate>& cells,
                                         const std::vector<double>& reps,
                                         double q, double n);

/// The k largest estimated group-by cells, ordered by descending
/// expectation (ties broken by ascending code, keeping the order
/// deterministic). Each reported cell keeps its own Binomial variance as
/// the per-cell error bound; the headline estimate is the largest cell.
/// k is clamped to the domain size; k == 0 is kInvalidArgument.
Result<QueryResult> TopKFromMarginal(const std::vector<QueryEstimate>& cells,
                                     size_t k);

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_QUANTILE_H_
