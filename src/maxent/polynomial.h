#ifndef ENTROPYDB_MAXENT_POLYNOMIAL_H_
#define ENTROPYDB_MAXENT_POLYNOMIAL_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/prefix_sum.h"
#include "common/result.h"
#include "maxent/mask.h"
#include "maxent/variable_registry.h"

namespace entropydb {

/// Knobs for polynomial construction.
struct PolynomialOptions {
  /// Hard cap on the number of compressed groups; Build fails with
  /// ResourceExhausted beyond it (the paper's compression degrades past the
  /// point where gathering "all possible multi-dimensional statistics" makes
  /// the compressed form larger than the SOP polynomial, Sec 4.1).
  size_t max_groups = 4'000'000;
};

/// \brief The compressed MaxEnt polynomial P of Theorem 4.1.
///
/// Internally stores the flattened form obtained by substituting
/// delta_j = 1 + d_j for every multi-dimensional variable:
///
///   P = prod_{free i} T_i * prod_{components c} P_c
///   P_c = sum over compatible stat sets S (incl. the empty set) of
///         prod_{i in attrs(c)} IntervalSum_i(rect(S)) * prod_{j in S} d_j
///
/// where T_i = sum_v alpha_{i,v} and IntervalSum is taken over the
/// intersection rectangle of S (full domain on unconstrained attributes).
/// Compatible = non-empty rectangle intersection; by 1-D Helly it suffices
/// to check intervals pairwise, and compatible sets are enumerated exactly
/// once by ordered DFS. Attributes not mentioned by any multi-dimensional
/// statistic stay fully factorized ("free"), and statistics on disconnected
/// attribute groups never cross-multiply — this connected-component
/// factorization is what keeps the group count near
/// O(B_a * R * sum_i N_i) (Theorem 4.2).
///
/// The polynomial is multilinear: every variable (1-D alpha or
/// multi-dimensional delta) has degree one, which the solver exploits.
class CompressedPolynomial {
 public:
  /// Builds the compressed structure for the registry's statistics.
  static Result<CompressedPolynomial> Build(const VariableRegistry& reg,
                                            PolynomialOptions opts = {});

  /// \brief Everything produced by one evaluation pass: P itself plus the
  /// factor caches the derivative and solver paths reuse.
  struct EvalContext {
    /// Per attribute: prefix sums of (masked) alpha values.
    std::vector<PrefixSum> prefix;
    /// Per attribute: T_i under the mask.
    std::vector<double> attr_total;
    /// Per component: P_c under the mask.
    std::vector<double> comp_value;
    /// Product of T_i over free attributes.
    double free_product = 1.0;
    /// P (the full product).
    double value = 0.0;
  };

  /// Evaluates P with some 1-D variables zeroed (Sec 4.2 optimized query
  /// answering). O(sum_i N_i + total group factors).
  EvalContext Evaluate(const ModelState& state, const QueryMask& mask) const;

  /// Evaluates P with no mask.
  EvalContext EvaluateUnmasked(const ModelState& state) const;

  /// dP/dalpha_{a,v} for every v of attribute `a`, in one batched pass over
  /// the groups (difference-array trick). `ctx` must come from `state`.
  /// Because P is linear in the whole alpha family of an attribute
  /// (overcompleteness, Eq 7), the result does not depend on that family's
  /// current values.
  std::vector<double> AlphaDerivatives(const ModelState& state,
                                       const EvalContext& ctx,
                                       AttrId a) const;

  /// dP/ddelta_j for one multi-dimensional statistic.
  double DeltaDerivative(const ModelState& state, const EvalContext& ctx,
                         uint32_t j) const;

  /// dP_c/ddelta_j restricted to j's component (no outer factors).
  double DeltaDerivativeLocal(const ModelState& state, const EvalContext& ctx,
                              uint32_t j) const;

  /// Product of all factors of P except component `comp`'s value.
  double OuterProduct(const EvalContext& ctx, int comp) const;

  /// Component index of attribute `a`, or -1 when the attribute is free.
  int ComponentOfAttr(AttrId a) const { return attr_component_[a]; }
  /// Component index of multi-dim statistic `j`.
  int ComponentOfDelta(uint32_t j) const { return delta_component_[j]; }

  size_t NumComponents() const { return components_.size(); }
  /// Total number of non-empty compatible statistic sets (the paper's
  /// "summands"), excluding the per-component base terms.
  size_t NumGroups() const;
  /// Scalar-factor count of the compressed representation — the "size"
  /// measure of Theorem 4.2 (counts interval factors and delta factors).
  size_t CompressedSize() const;
  /// Monomial count of the uncompressed SOP polynomial: |Tup| = prod N_i.
  double UncompressedTermCount() const;
  /// Approximate heap footprint of the compressed structure in bytes.
  size_t MemoryBytes() const;

  /// Largest number of statistics in any compatible set (max |S|).
  size_t MaxSetSize() const;

 private:
  struct Component {
    std::vector<AttrId> attrs;      ///< sorted attribute ids
    std::vector<uint32_t> stats;    ///< global multi-dim stat ids, sorted
    /// Flat rectangles: group g spans rects[g*attrs.size() .. +attrs.size()).
    std::vector<Interval> rects;
    /// Flat stat-id lists with offsets (global ids).
    std::vector<uint32_t> stats_flat;
    std::vector<uint32_t> stats_offset;  ///< size num_groups()+1
    /// Per global stat id (local order of `stats`): groups containing it.
    std::vector<std::vector<uint32_t>> stat_groups;

    size_t num_groups() const { return stats_offset.size() - 1; }
  };

  /// Recursively extends a compatible set with higher-indexed statistics.
  static Status EnumerateGroups(const VariableRegistry& reg, Component* comp,
                                size_t max_groups);

  /// Product over the group's interval factors, skipping attribute position
  /// `skip_pos` (pass SIZE_MAX to include all), times the group's delta
  /// factors (skipping global stat `skip_stat`, pass UINT32_MAX to keep all).
  double GroupProduct(const Component& comp, size_t g,
                      const EvalContext& ctx, const ModelState& state,
                      size_t skip_pos, uint32_t skip_stat) const;

  std::vector<uint32_t> domain_sizes_;
  std::vector<AttrId> free_attrs_;
  std::vector<Component> components_;
  std::vector<int> attr_component_;    ///< per attribute; -1 = free
  std::vector<int> delta_component_;   ///< per multi-dim stat
  /// Per component, per attr position: local position lookup by attribute.
  std::vector<std::unordered_map<AttrId, size_t>> attr_pos_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_POLYNOMIAL_H_
