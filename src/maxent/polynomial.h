#ifndef ENTROPYDB_MAXENT_POLYNOMIAL_H_
#define ENTROPYDB_MAXENT_POLYNOMIAL_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/prefix_sum.h"
#include "common/result.h"
#include "maxent/mask.h"
#include "maxent/variable_registry.h"

namespace entropydb {

class EvalWorkspace;

/// Knobs for polynomial construction.
struct PolynomialOptions {
  /// Hard cap on the number of compressed groups; Build fails with
  /// ResourceExhausted beyond it (the paper's compression degrades past the
  /// point where gathering "all possible multi-dimensional statistics" makes
  /// the compressed form larger than the SOP polynomial, Sec 4.1).
  size_t max_groups = 4'000'000;
  /// Spread evaluation / derivative sweeps across connected components on
  /// the shared thread pool once the group count reaches this threshold.
  /// Components are independent factors, so the fan-out is deterministic.
  /// SIZE_MAX disables parallelism.
  size_t parallel_min_groups = 16'384;
};

/// \brief The compressed MaxEnt polynomial P of Theorem 4.1.
///
/// Internally stores the flattened form obtained by substituting
/// delta_j = 1 + d_j for every multi-dimensional variable:
///
///   P = prod_{free i} T_i * prod_{components c} P_c
///   P_c = sum over compatible stat sets S (incl. the empty set) of
///         prod_{i in attrs(c)} IntervalSum_i(rect(S)) * prod_{j in S} d_j
///
/// where T_i = sum_v alpha_{i,v} and IntervalSum is taken over the
/// intersection rectangle of S (full domain on unconstrained attributes).
/// Compatible = non-empty rectangle intersection; by 1-D Helly it suffices
/// to check intervals pairwise, and compatible sets are enumerated exactly
/// once by ordered DFS. Attributes not mentioned by any multi-dimensional
/// statistic stay fully factorized ("free"), and statistics on disconnected
/// attribute groups never cross-multiply — this connected-component
/// factorization is what keeps the group count near
/// O(B_a * R * sum_i N_i) (Theorem 4.2).
///
/// The polynomial is multilinear: every variable (1-D alpha or
/// multi-dimensional delta) has degree one, which the solver exploits.
///
/// Two evaluation tiers exist (see docs/PERFORMANCE.md):
///  - the EvalContext tier: self-contained full evaluations, used by the
///    solvers and tests, with RefreshAttr for incremental maintenance; and
///  - the EvalWorkspace tier: cached unmasked factors for the query path,
///    where a masked evaluation touches only what the mask constrains.
class ComponentSweep;

class CompressedPolynomial {
 public:
  /// Builds the compressed structure for the registry's statistics.
  static Result<CompressedPolynomial> Build(const VariableRegistry& reg,
                                            PolynomialOptions opts = {});

  /// \brief Everything produced by one evaluation pass: P itself plus the
  /// factor caches the derivative and solver paths reuse.
  struct EvalContext {
    /// Per attribute: prefix sums of (masked) alpha values.
    std::vector<PrefixSum> prefix;
    /// Per attribute: T_i under the mask.
    std::vector<double> attr_total;
    /// Per component: P_c under the mask.
    std::vector<double> comp_value;
    /// Product of T_i over free attributes.
    double free_product = 1.0;
    /// P (the full product).
    double value = 0.0;
  };

  /// \brief Every first-order derivative of P at once, produced by a single
  /// prefix/suffix-cofactor sweep over the groups (AllDerivatives).
  struct DerivativeSet {
    /// alpha[a][v] = dP/dalpha_{a,v}.
    std::vector<std::vector<double>> alpha;
    /// delta[j] = dP/ddelta_j.
    std::vector<double> delta;
    /// delta_local[j] = dP_c/ddelta_j restricted to j's component.
    std::vector<double> delta_local;
  };

  /// \brief Compact result of an incremental masked evaluation. Unlike
  /// EvalContext it carries no per-attribute prefix sums — those stay cached
  /// inside the EvalWorkspace, so producing one is O(constrained domains +
  /// groups of the touched components) instead of O(sum_i N_i + all groups).
  struct MaskedEval {
    double value = 0.0;
    /// Product of effective totals over free attributes.
    double free_product = 1.0;
    /// Per component: P_c under the mask (cached value when untouched).
    std::vector<double> comp_value;
  };

  /// Evaluates P with some 1-D variables zeroed (Sec 4.2 optimized query
  /// answering). O(sum_i N_i + total group factors).
  EvalContext Evaluate(const ModelState& state, const QueryMask& mask) const;

  /// Evaluates P with no mask.
  EvalContext EvaluateUnmasked(const ModelState& state) const;

  /// Rebuilds the parts of `ctx` that depend on attribute `a`'s alphas —
  /// prefix sums, attribute total, the component (or free-attribute) product
  /// it feeds, and P — after the caller changed them. O(N_a + groups of
  /// a's component) versus a full re-evaluation's O(sum_i N_i + all
  /// groups); this is what makes a whole Gauss-Seidel sweep one evaluation.
  void RefreshAttr(const ModelState& state, AttrId a, EvalContext* ctx) const;

  /// dP/dalpha_{a,v} for every v of attribute `a`, in one batched pass over
  /// the groups (difference-array trick). `ctx` must come from `state`.
  /// Because P is linear in the whole alpha family of an attribute
  /// (overcompleteness, Eq 7), the result does not depend on that family's
  /// current values.
  std::vector<double> AlphaDerivatives(const ModelState& state,
                                       const EvalContext& ctx,
                                       AttrId a) const;

  /// \brief All alpha and delta derivatives in ONE sweep over the groups.
  ///
  /// Each group's factor list (interval factors, then delta factors) is
  /// walked once with running prefix products and a running suffix product;
  /// the cofactor of factor i is prefix[i] * suffix[i+1], with no division,
  /// so zero factors are exact. Total cost O(sum_g width_g + sum_i N_i) —
  /// the per-attribute loop this replaces paid the group walk once per
  /// attribute. Used by the gradient solver and the convergence metric.
  DerivativeSet AllDerivatives(const ModelState& state,
                               const EvalContext& ctx) const;

  /// dP/ddelta_j for one multi-dimensional statistic.
  double DeltaDerivative(const ModelState& state, const EvalContext& ctx,
                         uint32_t j) const;

  /// dP_c/ddelta_j restricted to j's component (no outer factors).
  double DeltaDerivativeLocal(const ModelState& state, const EvalContext& ctx,
                              uint32_t j) const;

  // ------------------------------------------------------------------
  // Fused Gauss-Seidel support (the solver's inner loop).
  // ------------------------------------------------------------------

  /// Attribute order that groups families by connected component (free
  /// attributes first). Sweeping in this order lets consecutive families
  /// share the fused refresh below without cross-component fixups.
  const std::vector<AttrId>& FamilyOrder() const { return family_order_; }

  /// Per group of component `c`: product of the (delta_j - 1) factors.
  /// Fixed for the whole alpha phase of a sweep; computed once per sweep.
  std::vector<double> ComponentDeltaProducts(int c,
                                             const ModelState& state) const;

  /// Family walk for a FREE attribute `a`: refreshes ctx->free_product /
  /// ctx->value from the current attribute totals and returns the (uniform)
  /// cofactors dP/dalpha_{a,v}. Component attributes are driven by
  /// ComponentSweep instead.
  std::vector<double> FreeFamilyCofactorsAndRefresh(AttrId a,
                                                    EvalContext* ctx) const;


  /// Per component, per group: the product of the group's interval factors
  /// only (no delta factors) under `ctx`. The solver derives these from
  /// ComponentSweep's running prefix instead; this direct recomputation is
  /// the reference implementation the equivalence tests validate that
  /// prefix (and DeltaDerivativeLocalCached) against.
  std::vector<std::vector<double>> GroupRangeSumProducts(
      const EvalContext& ctx) const;

  /// DeltaDerivativeLocal against cached interval products for j's
  /// component (from GroupRangeSumProducts or ComponentSweep; delta factors
  /// are read live from `state`).
  double DeltaDerivativeLocalCached(const ModelState& state,
                                    const std::vector<double>& rs_prod,
                                    uint32_t j) const;

  /// Product of all factors of P except component `comp`'s value.
  double OuterProduct(const EvalContext& ctx, int comp) const;

  // ------------------------------------------------------------------
  // Workspace tier: cached factors for the interactive query path.
  // ------------------------------------------------------------------

  /// Fills (or revalidates) `ws` for `state`: the unmasked EvalContext plus
  /// per-group interval-factor and delta-factor products. Subsequent masked
  /// evaluations against the same state reuse all of it; the caller must
  /// Invalidate() the workspace after mutating the state.
  const EvalContext& PrepareWorkspace(const ModelState& state,
                                      EvalWorkspace* ws) const;

  /// \brief Incremental masked evaluation (the Sec 4.2 oracle, cached).
  ///
  /// Only the attributes the mask constrains get fresh prefix sums, and only
  /// the components containing them get their groups re-walked — untouched
  /// components reuse the cached unmasked value, and every delta-factor
  /// product comes from the workspace cache. The common interactive query
  /// constrains 1-3 attributes of many, making this far cheaper than
  /// Evaluate. Leaves per-attribute masked state in `ws` for the
  /// *AlphaDerivatives / PointOverrideValue follow-ups below.
  MaskedEval MaskedEvaluate(const ModelState& state, const QueryMask& mask,
                            EvalWorkspace* ws) const;

  /// Per-value dP[mask]/dalpha_{a,v} via one cofactor pass over `a`'s
  /// component. `eval` must come from a MaskedEvaluate of the same mask on
  /// `ws`, with attribute `a` unconstrained (the group-by convention).
  std::vector<double> MaskedAlphaDerivatives(const ModelState& state,
                                             const MaskedEval& eval, AttrId a,
                                             EvalWorkspace* ws) const;

  /// P under `eval`'s mask with each attrs[i] pinned to the single code
  /// codes[i] (overriding the mask on those attributes) — the group-by-keys
  /// fast path: O(groups of the touched components) per key, no prefix
  /// rebuilds. `eval` must come from a MaskedEvaluate of the same mask on
  /// `ws`.
  double PointOverrideValue(const ModelState& state, const MaskedEval& eval,
                            const std::vector<AttrId>& attrs,
                            const std::vector<Code>& codes,
                            EvalWorkspace* ws) const;

  /// Component index of attribute `a`, or -1 when the attribute is free.
  int ComponentOfAttr(AttrId a) const { return attr_component_[a]; }
  /// Component index of multi-dim statistic `j`.
  int ComponentOfDelta(uint32_t j) const { return delta_component_[j]; }

  size_t NumComponents() const { return components_.size(); }
  /// Total number of non-empty compatible statistic sets (the paper's
  /// "summands"), excluding the per-component base terms.
  size_t NumGroups() const;
  /// Scalar-factor count of the compressed representation — the "size"
  /// measure of Theorem 4.2 (counts interval factors and delta factors).
  size_t CompressedSize() const;
  /// Monomial count of the uncompressed SOP polynomial: |Tup| = prod N_i.
  double UncompressedTermCount() const;
  /// Approximate heap footprint of the compressed structure in bytes.
  size_t MemoryBytes() const;

  /// Largest number of statistics in any compatible set (max |S|).
  size_t MaxSetSize() const;

 private:
  friend class EvalWorkspace;
  friend class ComponentSweep;

  struct Component {
    std::vector<AttrId> attrs;      ///< sorted attribute ids
    std::vector<uint32_t> stats;    ///< global multi-dim stat ids, sorted
    /// Flat rectangles: group g spans rects[g*attrs.size() .. +attrs.size()).
    std::vector<Interval> rects;
    /// Flat stat-id lists with offsets (global ids).
    std::vector<uint32_t> stats_flat;
    std::vector<uint32_t> stats_offset;  ///< size num_groups()+1
    /// Per global stat id (local order of `stats`): groups containing it.
    std::vector<std::vector<uint32_t>> stat_groups;

    size_t num_groups() const { return stats_offset.size() - 1; }
  };

  /// Recursively extends a compatible set with higher-indexed statistics.
  Status EnumerateGroups(const VariableRegistry& reg, Component* comp,
                         size_t max_groups);

  /// Product over the group's delta factors (skipping global stat
  /// `skip_stat`, pass UINT32_MAX to keep all) times the group's interval
  /// factors, skipping attribute position `skip_pos` (pass SIZE_MAX to
  /// include all). Delta factors are multiplied first: they are cheap and
  /// frequently zero (pinned or neutral deltas), so the zero short-circuit
  /// fires before any prefix-sum lookups.
  double GroupProduct(const Component& comp, size_t g,
                      const EvalContext& ctx, const ModelState& state,
                      size_t skip_pos, uint32_t skip_stat) const;

  /// P_c for component `c` under `ctx`'s prefix sums / totals.
  double ComponentValue(const Component& comp, const EvalContext& ctx,
                        const ModelState& state) const;

  /// True when component fan-out is worthwhile for this polynomial.
  bool UseParallelComponents() const;

  std::vector<uint32_t> domain_sizes_;
  std::vector<AttrId> free_attrs_;
  std::vector<Component> components_;
  std::vector<int> attr_component_;    ///< per attribute; -1 = free
  std::vector<int> delta_component_;   ///< per multi-dim stat
  /// Per multi-dim stat: its local index within its component's `stats`
  /// (precomputed at build time; replaces binary searches on hot paths).
  std::vector<uint32_t> delta_local_;
  /// Per attribute: local position within its component's `attrs`
  /// (meaningless for free attributes).
  std::vector<size_t> attr_local_;
  /// Free attributes first, then each component's attributes (FamilyOrder).
  std::vector<AttrId> family_order_;
  size_t parallel_min_groups_ = SIZE_MAX;
  size_t num_groups_ = 0;
};

/// \brief Drives one component's alpha phase of a Gauss-Seidel sweep with
/// a single prefix/suffix-cofactor pass.
///
/// The solver updates families in increasing local position order, so a
/// group's cofactor at position p factorizes as
///
///   (updated columns < p, accumulated as a running prefix product) *
///   (untouched columns > p, from ONE backward suffix pass per sweep) *
///   (the group's delta product, frozen for the whole alpha phase)
///
/// making every family walk one multiply per group instead of a fresh
/// O(width) product — the sweep's total group work is O(groups * width)
/// for ALL families together. The interval-factor matrix persists across
/// sweeps (only updated columns are rewritten), and after the last family
/// the running prefix IS the per-group interval product the delta phase
/// needs, for free.
class ComponentSweep {
 public:
  ComponentSweep(const CompressedPolynomial& poly, int c)
      : poly_(&poly), c_(c) {}

  /// Starts a sweep: refreshes the delta products and the suffix products
  /// (factors carry over from the previous sweep; built on first use).
  void BeginSweep(const ModelState& state,
                  const CompressedPolynomial::EvalContext& ctx);

  /// Full cofactors dP/dalpha_{a,v} of the next family (families must be
  /// visited in increasing local position order). Also refreshes the
  /// component's value and P in `ctx`.
  std::vector<double> FamilyCofactors(AttrId a,
                                      CompressedPolynomial::EvalContext* ctx);

  /// Folds family `a` into the running prefix after its update completed.
  /// `alphas_changed` says whether ctx->prefix[a] was rebuilt (otherwise
  /// the cached column is reused).
  void Advance(AttrId a, bool alphas_changed,
               const CompressedPolynomial::EvalContext& ctx);

  /// Per-group interval products — valid once every family has advanced;
  /// feeds DeltaDerivativeLocalCached in the delta phase.
  const std::vector<double>& RangeSumProducts() const { return prefix_run_; }

  /// P_c from the finished products (base term from ctx's totals).
  double ComponentValue(
      const CompressedPolynomial::EvalContext& ctx) const;

 private:
  const CompressedPolynomial* poly_;
  int c_;
  bool factors_built_ = false;
  /// Flat [g * nattrs + i]: interval factors; persists across sweeps.
  std::vector<double> factors_;
  /// Per group: product of (delta_j - 1); refreshed each BeginSweep.
  std::vector<double> delta_prod_;
  /// Flat [g * (nattrs + 1) + i]: product of factors at positions >= i.
  std::vector<double> suffix_;
  /// Per group: product of already-advanced columns.
  std::vector<double> prefix_run_;
};

/// \brief Reusable scratch + cache for the workspace evaluation tier.
///
/// A workspace is two halves with very different sharing rules:
///
///  - an immutable FactorCache — the unmasked EvalContext plus per-group
///    interval-factor, skip-cofactor, and delta-factor products. Building it
///    is the O(all groups) warm-up cost; once built it is never written
///    again, so any number of workspaces may share ONE cache by shared_ptr
///    (ShareCacheWith). This is what makes a pool of per-thread workspaces
///    cheap: only the first one pays the warm-up.
///  - private masked scratch — the per-attribute masked prefix sums and
///    touched-component flags of the most recent MaskedEvaluate. This half
///    is mutated by every query, which is why a single workspace is NOT safe
///    for concurrent use; give each query thread its own (see
///    maxent/workspace_pool.h).
///
/// Bound to one (polynomial, state) pair at a time: PrepareWorkspace fills
/// it, Invalidate() drops it (call after mutating the model state).
class EvalWorkspace {
 public:
  EvalWorkspace() = default;

  /// Drops every cached product; the next use rebuilds from scratch.
  void Invalidate() {
    cache_.reset();
    scratch_ready_ = false;
  }
  bool valid() const { return cache_ != nullptr; }

  /// The cached unmasked context (PrepareWorkspace must have run).
  const CompressedPolynomial::EvalContext& unmasked() const {
    return cache_->unmasked;
  }

  /// Adopts `other`'s warmed immutable factor cache (a shared_ptr copy, so
  /// O(1)); this workspace then only pays for its private scratch on first
  /// use. Both workspaces must serve the same (polynomial, state) pair —
  /// identical caches are also what keeps results bitwise-stable across
  /// whichever pool member answers a query.
  void ShareCacheWith(const EvalWorkspace& other) {
    cache_ = other.cache_;
    scratch_ready_ = false;
  }

 private:
  friend class CompressedPolynomial;

  /// The shared immutable half; write-once inside PrepareWorkspace.
  struct FactorCache {
    CompressedPolynomial::EvalContext unmasked;
    /// Per component, flat [g * nattrs + i]: group g's unmasked interval
    /// factor at attribute position i.
    std::vector<std::vector<double>> rs_factor;
    /// Per component, flat [g * nattrs + i]: delta product * product of the
    /// OTHER positions' unmasked interval factors — the skip-position
    /// cofactor. A component with exactly one constrained attribute is then
    /// one fused multiply-add per group.
    std::vector<std::vector<double>> skip_cof;
    /// Per component, per group: product of the (delta_j - 1) factors.
    std::vector<std::vector<double>> delta_prod;
  };

  std::shared_ptr<const FactorCache> cache_;
  bool scratch_ready_ = false;

  // --- private scratch: state of the most recent MaskedEvaluate ---
  std::vector<uint8_t> attr_masked_;     ///< per attribute: constrained?
  std::vector<AttrId> constrained_;      ///< the constrained attributes
  std::vector<PrefixSum> masked_prefix_; ///< built only for constrained ones
  std::vector<double> eff_total_;        ///< per attribute: T_i under mask
  std::vector<double> buf_;              ///< masked-alpha scratch
  std::vector<uint8_t> comp_scratch_;    ///< per component: touched flags
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_POLYNOMIAL_H_
