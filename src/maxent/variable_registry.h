#ifndef ENTROPYDB_MAXENT_VARIABLE_REGISTRY_H_
#define ENTROPYDB_MAXENT_VARIABLE_REGISTRY_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "stats/statistic.h"
#include "storage/schema.h"

namespace entropydb {

/// \brief The full set of MaxEnt model variables and their target statistics.
///
/// Per the paper (Sec 3.1):
///  - for every attribute A_i and every active-domain value v there is one
///    1-D variable alpha_{i,v} with target s_{i,v} = |sigma_{A_i=v}(I)|
///    (a complete, overcomplete family per attribute), and
///  - for every multi-dimensional statistic j there is one variable delta_j
///    with target s_j.
class VariableRegistry {
 public:
  /// \param domain_sizes  N_i per attribute.
  /// \param one_d_targets s_{i,v} per attribute/value; shape must match.
  /// \param mds           multi-dimensional statistics (validated).
  /// \param n             relation cardinality.
  static Result<VariableRegistry> Create(
      std::vector<uint32_t> domain_sizes,
      std::vector<std::vector<double>> one_d_targets,
      std::vector<MultiDimStatistic> mds, double n);

  size_t num_attributes() const { return domain_sizes_.size(); }
  uint32_t domain_size(AttrId a) const { return domain_sizes_[a]; }
  const std::vector<uint32_t>& domain_sizes() const { return domain_sizes_; }

  double n() const { return n_; }

  /// Target of 1-D statistic (A_a = v).
  double OneDTarget(AttrId a, Code v) const { return one_d_targets_[a][v]; }
  const std::vector<std::vector<double>>& one_d_targets() const {
    return one_d_targets_;
  }

  size_t num_multi_dim() const { return mds_.size(); }
  const MultiDimStatistic& multi_dim(size_t j) const { return mds_[j]; }
  const std::vector<MultiDimStatistic>& multi_dims() const { return mds_; }

  /// Total variable count (for reporting).
  size_t TotalVariables() const {
    size_t t = mds_.size();
    for (auto n : domain_sizes_) t += n;
    return t;
  }

 private:
  std::vector<uint32_t> domain_sizes_;
  std::vector<std::vector<double>> one_d_targets_;
  std::vector<MultiDimStatistic> mds_;
  double n_ = 0.0;
};

/// \brief Mutable model parameters: current values of every variable.
struct ModelState {
  /// alpha[a][v], one per attribute/value.
  std::vector<std::vector<double>> alpha;
  /// delta[j], one per multi-dimensional statistic.
  std::vector<double> delta;

  /// Initializes alpha to the 1-D-only closed form s_{i,v}/n (exact MaxEnt
  /// solution when no multi-dim statistics exist) and delta to the neutral 1
  /// (or 0 for zero-count statistics, which the solver then never updates).
  static ModelState InitialState(const VariableRegistry& reg);
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_VARIABLE_REGISTRY_H_
