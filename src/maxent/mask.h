#ifndef ENTROPYDB_MAXENT_MASK_H_
#define ENTROPYDB_MAXENT_MASK_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "query/counting_query.h"
#include "storage/domain.h"

namespace entropydb {

/// \brief The variable-zeroing mask of the optimized query answering method
/// (Sec 4.2).
///
/// For a query defined by per-attribute predicates rho_i, the paper's result
/// is E[<q,I>] = n/P * P[alpha_j = 0 for every 1-D variable j excluded by
/// rho_i]. A QueryMask records, per attribute, which codes remain allowed;
/// `std::nullopt` means the attribute is untouched (rho_i = TRUE), which the
/// evaluator exploits by reusing unmasked prefix sums.
class QueryMask {
 public:
  /// All-pass mask over `m` attributes.
  explicit QueryMask(size_t m) : allowed_(m) {}

  /// Builds the mask for a conjunctive counting query.
  static QueryMask FromQuery(const CountingQuery& q,
                             const std::vector<uint32_t>& domain_sizes) {
    QueryMask mask(q.num_attributes());
    for (AttrId a = 0; a < q.num_attributes(); ++a) {
      const AttrPredicate& p = q.predicate(a);
      if (p.is_any()) continue;
      std::vector<uint8_t> allow(domain_sizes[a], 0);
      for (Code v = 0; v < domain_sizes[a]; ++v) {
        allow[v] = p.Matches(v) ? 1 : 0;
      }
      mask.allowed_[a] = std::move(allow);
    }
    return mask;
  }

  size_t num_attributes() const { return allowed_.size(); }

  /// True when the attribute has no restriction.
  bool IsAny(AttrId a) const { return !allowed_[a].has_value(); }

  /// True when code `v` of attribute `a` survives the mask.
  bool Allows(AttrId a, Code v) const {
    return !allowed_[a].has_value() || (*allowed_[a])[v] != 0;
  }

  /// Restricts attribute `a` to exactly the codes in `allow` (1 = keep).
  void Restrict(AttrId a, std::vector<uint8_t> allow) {
    allowed_[a] = std::move(allow);
  }

 private:
  std::vector<std::optional<std::vector<uint8_t>>> allowed_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_MASK_H_
