#ifndef ENTROPYDB_MAXENT_SUMMARY_H_
#define ENTROPYDB_MAXENT_SUMMARY_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/result.h"
#include "maxent/answerer.h"
#include "maxent/polynomial.h"
#include "maxent/solver.h"
#include "maxent/variable_registry.h"
#include "storage/table.h"

namespace entropydb {

/// Build-time knobs for a summary (the struct is also threaded through
/// every Load path, so it carries the open-time knobs too).
struct SummaryOptions {
  SolverOptions solver;
  PolynomialOptions polynomial;
  /// Verify the CRC32C footer of every artifact read during a load
  /// (summaries, samples, manifests). On by default; bench_durability
  /// turns it off to measure the checksum overhead on open. Artifacts
  /// from pre-checksum format versions load either way (with a stderr
  /// warning), but a PRESENT footer that mismatches is kCorruption.
  bool verify_checksums = true;
};

/// \brief The EntropyDB data summary: the compressed MaxEnt polynomial with
/// solved parameters, ready to answer linear counting queries.
///
/// This is the system's primary public entry point:
///
///   auto summary = EntropySummary::Build(*table, stats);
///   auto est = summary->Answer(query);
///   est->expectation;   // approximate COUNT(*)
///
/// Building extracts the complete 1-D statistics from the table, compresses
/// the polynomial (Theorem 4.1) and fits the model (Algorithm 1). The
/// summary afterwards never touches the base data — its size is governed by
/// the statistic budget, not the relation (Sec 4.1).
///
/// Construction (including Load) eagerly warms the query answerer's
/// workspace pool — the unmasked polynomial value plus per-group factor
/// caches, computed once and shared immutably by every pooled workspace —
/// so the first query is as fast as every later one; see
/// docs/PERFORMANCE.md for the evaluation engine's cost model. Queries are
/// safe to issue concurrently from any number of threads and scale with
/// cores: each claims a pooled workspace lock-free (see
/// maxent/workspace_pool.h), and estimates are bitwise-stable regardless
/// of interleaving. For serving several summaries behind one endpoint, see
/// the engine layer (engine/source_store.h, engine/query_router.h).
class EntropySummary {
 public:
  /// Builds a summary of `table` given the chosen multi-dimensional
  /// statistics (possibly empty for a 1-D-only summary).
  static Result<std::shared_ptr<EntropySummary>> Build(
      const Table& table, std::vector<MultiDimStatistic> mds,
      SummaryOptions opts = {});

  /// Builds from an explicit registry (targets already known) — the path
  /// used by deserialization and by tests.
  static Result<std::shared_ptr<EntropySummary>> FromRegistry(
      VariableRegistry reg, SummaryOptions opts = {},
      std::vector<std::string> attr_names = {},
      std::vector<Domain> domains = {});

  /// Approximate COUNT(*) with variance for a conjunctive query.
  Result<QueryEstimate> Answer(const CountingQuery& q) const {
    return answerer_->Answer(q);
  }

  /// The unified aggregate surface (COUNT/SUM/AVG; see
  /// QueryAnswerer::Answer(const AggregateQuery&) for the moment model
  /// every result carries).
  Result<QueryResult> Answer(const AggregateQuery& q) const {
    return answerer_->Answer(q);
  }

  /// Point group-by estimates (see QueryAnswerer::AnswerGroupBy).
  Result<std::map<std::vector<Code>, QueryEstimate>> AnswerGroupBy(
      const std::vector<AttrId>& attrs,
      const std::vector<std::vector<Code>>& keys,
      const CountingQuery& base) const {
    return answerer_->AnswerGroupBy(attrs, keys, base);
  }

  /// Estimates for every value of one attribute in a single batched pass
  /// (see QueryAnswerer::AnswerGroupByAttribute).
  Result<std::vector<QueryEstimate>> AnswerGroupByAttribute(
      AttrId a, const CountingQuery& base) const {
    return answerer_->AnswerGroupByAttribute(a, base);
  }

  double n() const { return reg_.n(); }
  size_t num_attributes() const { return reg_.num_attributes(); }
  /// The warmed query answerer (e.g. to read FullPolynomialValue, or to
  /// construct additional per-thread answerers against state()).
  const QueryAnswerer& answerer() const { return *answerer_; }
  const VariableRegistry& registry() const { return reg_; }
  const CompressedPolynomial& polynomial() const { return poly_; }
  const ModelState& state() const { return state_; }
  const SolverReport& solver_report() const { return report_; }
  const std::vector<std::string>& attr_names() const { return attr_names_; }

  /// Per-attribute active-domain descriptors, carried from the source table
  /// (empty when built from a bare registry). When present they are
  /// serialized with the summary so raw-value queries — "origin = 'S3'",
  /// "distance BETWEEN 100 AND 500" — can be answered from the summary file
  /// alone (see query/parser.h and the entropydb_query tool).
  const std::vector<Domain>& domains() const { return domains_; }
  bool has_domains() const { return !domains_.empty(); }

  /// Serializes the summary (statistics + solved parameters) to a text
  /// file with a CRC32C footer (format v2), synced to stable storage
  /// before returning; Load restores it without re-solving. All I/O goes
  /// through `env` (Env::Default() in production; FaultInjectionEnv in
  /// the crash-safety suites).
  Status Save(const std::string& path, Env* env = Env::Default()) const;
  /// Restores a saved summary. v2 files must carry a valid checksum
  /// footer (kCorruption otherwise); v1 (pre-checksum) files load with a
  /// warning. opts.verify_checksums = false skips the CRC verification.
  static Result<std::shared_ptr<EntropySummary>> Load(
      const std::string& path, SummaryOptions opts = {},
      Env* env = Env::Default());

 private:
  EntropySummary(VariableRegistry reg, CompressedPolynomial poly,
                 ModelState state, SolverReport report,
                 std::vector<std::string> attr_names,
                 std::vector<Domain> domains)
      : reg_(std::move(reg)),
        poly_(std::move(poly)),
        state_(std::move(state)),
        report_(std::move(report)),
        attr_names_(std::move(attr_names)),
        domains_(std::move(domains)) {
    answerer_ = std::make_unique<QueryAnswerer>(reg_, poly_, state_);
  }

  VariableRegistry reg_;
  CompressedPolynomial poly_;
  ModelState state_;
  SolverReport report_;
  std::vector<std::string> attr_names_;
  std::vector<Domain> domains_;
  std::unique_ptr<QueryAnswerer> answerer_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_SUMMARY_H_
