#ifndef ENTROPYDB_MAXENT_JOIN_FUSION_H_
#define ENTROPYDB_MAXENT_JOIN_FUSION_H_

#include <vector>

#include "common/result.h"
#include "query/aggregate.h"

namespace entropydb {

/// \brief Fusing two independently built summaries' models on a shared
/// join attribute — the cross-relation estimate the paper's single-relation
/// summaries cannot answer alone (docs/ESTIMATORS.md "Join fusion").
///
/// Both relations expose the same primitive: the per-value marginal of the
/// join attribute under that relation's own filter, a_j = E[count(R where
/// filter_R and J = j)] and b_j symmetrically. Because the two models were
/// fit on disjoint relations they are independent random variables, so the
/// equi-join cardinality
///
///   |R filter_R JOIN_J S filter_S|  ~  sum_j a_j b_j
///
/// has a first-order delta-method variance that splits into one term per
/// side, each propagating that side's multinomial cell covariances
/// (Cov(a_j, a_k) = -n_R p_j p_k, Var a_j = n_R p_j (1 - p_j)) through the
/// fixed other side:
///
///   Var ~= n_R [ sum_j p_j b_j^2 - (sum_j p_j b_j)^2 ]
///        + n_S [ sum_j q_j a_j^2 - (sum_j q_j a_j)^2 ],
///   p_j = a_j / n_R,  q_j = b_j / n_S.
///
/// The bracketed factors are weighted population variances, so each term is
/// nonnegative up to rounding (clamped at 0). Nothing here touches a model:
/// the fusion is pure marginal algebra, reusable over ANY marginal source.

/// One side's contribution to a fused join estimate.
struct JoinSideMarginal {
  /// The relation's cardinality n (the model's normalization mass).
  double n = 0.0;
  /// mass[j] = expected count of rows matching the side's filter with
  /// join-attribute code j; one entry per code of the join attribute.
  std::vector<double> mass;
};

/// Fused equi-join COUNT estimate with the two-sided delta variance above.
/// The sides' `mass` vectors must have equal length (the shared join
/// domain, matched positionally).
Result<QueryResult> FuseJoinCount(const JoinSideMarginal& left,
                                  const JoinSideMarginal& right);

/// Fused equi-join SUM of a left-side attribute: `left_grid[j][v]` is the
/// expected count of left rows with join code j AND aggregated-attribute
/// code v (under the left filter), `weights[v]` the summed value of code v.
/// The estimate is sum_j s_j b_j with s_j = sum_v w_v c_jv; the variance
/// propagates the left multinomial over (j, v) cells through the fixed
/// right marginal and vice versa:
///
///   Var ~= n_R [ sum_jv p_jv (w_v b_j)^2 - (sum_jv p_jv w_v b_j)^2 ]
///        + n_S [ sum_j  q_j  s_j^2       - (sum_j  q_j  s_j)^2 ].
Result<QueryResult> FuseJoinSum(double left_n,
                                const std::vector<std::vector<double>>& left_grid,
                                const std::vector<double>& weights,
                                const JoinSideMarginal& right);

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_JOIN_FUSION_H_
