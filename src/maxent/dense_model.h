#ifndef ENTROPYDB_MAXENT_DENSE_MODEL_H_
#define ENTROPYDB_MAXENT_DENSE_MODEL_H_

#include <vector>

#include "common/result.h"
#include "maxent/mask.h"
#include "maxent/variable_registry.h"
#include "query/linear_query.h"

namespace entropydb {

/// Minimal report for the naive dense solver (kept distinct from
/// SolverReport to avoid a dependency on solver.h).
struct DenseSolveReport {
  size_t iterations = 0;
  double final_error = 0.0;
  bool converged = false;
};

/// \brief Reference implementation of the MaxEnt polynomial that explicitly
/// enumerates the tuple space Tup (Eq 5 in its naive sum-of-products form).
///
/// Exponential in the schema width — strictly a correctness oracle for unit
/// and property tests of the compressed representation, the solver, and the
/// optimized query answering path. Production code must never touch this.
class DenseMaxEntModel {
 public:
  /// Fails when |Tup| exceeds `max_tuples` (default 2^22).
  static Result<DenseMaxEntModel> Create(const VariableRegistry& reg,
                                         uint64_t max_tuples = 1ULL << 22);

  /// P evaluated by full enumeration under a mask.
  double Evaluate(const ModelState& state, const QueryMask& mask) const;

  double EvaluateUnmasked(const ModelState& state) const {
    return Evaluate(state, QueryMask(reg_->num_attributes()));
  }

  /// dP/dalpha_{a,v} by enumeration (cofactor sum).
  double AlphaDerivative(const ModelState& state, AttrId a, Code v) const;

  /// dP/ddelta_j by enumeration.
  double DeltaDerivative(const ModelState& state, uint32_t j) const;

  /// E[<q,I>] = n * P[mask]/P for a counting query, by enumeration.
  double CountEstimate(const ModelState& state, const CountingQuery& q) const;

  /// Naive coordinate solver (Algorithm 1 with dense derivatives); used to
  /// cross-check the optimized solver on small instances.
  DenseSolveReport SolveNaive(ModelState* state, size_t max_iterations = 200,
                              double tolerance = 1e-9) const;

  /// Model probability of a single tuple.
  double TupleProbability(const ModelState& state,
                          const std::vector<Code>& tuple) const;

  const TupleSpace& space() const { return space_; }

 private:
  explicit DenseMaxEntModel(const VariableRegistry& reg)
      : reg_(&reg), space_(reg.domain_sizes()) {}

  /// Monomial weight of the encoded tuple (product of its alpha and delta
  /// variables), optionally skipping one variable to obtain a cofactor:
  /// `skip_attr` >= 0 omits that attribute's alpha factor; `skip_stat` >= 0
  /// omits that statistic's delta factor.
  double Weight(const ModelState& state, const std::vector<Code>& tuple,
                int skip_attr, int skip_stat) const;

  const VariableRegistry* reg_;
  TupleSpace space_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_DENSE_MODEL_H_
