#ifndef ENTROPYDB_MAXENT_BUDGET_ADVISOR_H_
#define ENTROPYDB_MAXENT_BUDGET_ADVISOR_H_

#include <vector>

#include "common/result.h"
#include "stats/pair_selector.h"
#include "stats/statistic.h"
#include "storage/table.h"

namespace entropydb {

/// One evaluated budget split.
struct BudgetCandidate {
  size_t ba = 0;            ///< number of attribute pairs ("breadth")
  size_t bs = 0;            ///< statistics per pair ("depth")
  std::vector<ScoredPair> pairs;
  double heavy_error = 0.0;  ///< avg symmetric error on heavy hitters
  double f_measure = 0.0;    ///< rare-vs-nonexistent F
  double score = 0.0;        ///< (1 - heavy_error) + f_measure
};

/// Advisor configuration.
struct AdvisorOptions {
  /// Ba values to evaluate; each gets bs = total_budget / ba.
  std::vector<size_t> candidate_ba = {1, 2, 3};
  /// Attributes to exclude from pairing (e.g. near-uniform ones).
  std::vector<AttrId> exclude;
  /// Evaluation workload size per template.
  size_t num_heavy = 40;
  size_t num_light = 40;
  size_t num_nonexistent = 80;
  uint64_t seed = 97;
};

/// \brief Automates the Sec 4.3 open question: "given a budget B, which
/// Ba attribute pairs do we collect statistics on and which Bs statistics
/// per pair?" (the paper fixes Ba by hand and calls automation future
/// work).
///
/// For each candidate Ba the advisor picks pairs by attribute cover,
/// builds a COMPOSITE summary with bs = B / Ba, scores it on an
/// auto-generated heavy/light/nonexistent workload over the covered
/// attribute pairs, and returns every candidate with the best one first
/// (score = (1 - heavy_error) + F). This directly mirrors the Fig 8
/// breadth-vs-depth trade-off.
class BudgetAdvisor {
 public:
  /// Evaluates all candidate splits of `total_budget`. The best candidate
  /// is `result.front()`.
  static Result<std::vector<BudgetCandidate>> Advise(
      const Table& table, size_t total_budget,
      const AdvisorOptions& options = {});
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_BUDGET_ADVISOR_H_
