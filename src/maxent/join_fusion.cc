#include "maxent/join_fusion.h"

#include <algorithm>

namespace entropydb {

namespace {

/// n * weighted population variance of `value` under the cell distribution
/// p_j = mass_j / n — the one-side delta term. Degenerates to 0 for n <= 0
/// (an empty side contributes no randomness).
double SideVariance(double n, const std::vector<double>& mass,
                    const std::vector<double>& value) {
  if (!(n > 0.0)) return 0.0;
  double mean = 0.0, mean_sq = 0.0;
  for (size_t j = 0; j < mass.size(); ++j) {
    const double p = mass[j] / n;
    mean += p * value[j];
    mean_sq += p * value[j] * value[j];
  }
  return std::max(0.0, n * (mean_sq - mean * mean));
}

}  // namespace

Result<QueryResult> FuseJoinCount(const JoinSideMarginal& left,
                                  const JoinSideMarginal& right) {
  if (left.mass.size() != right.mass.size()) {
    return Status::InvalidArgument(
        "join fusion requires equal join-attribute domains");
  }
  QueryResult out;
  for (size_t j = 0; j < left.mass.size(); ++j) {
    out.estimate.expectation += left.mass[j] * right.mass[j];
  }
  out.estimate.variance = SideVariance(left.n, left.mass, right.mass) +
                          SideVariance(right.n, right.mass, left.mass);
  // The count leg repeats the estimate, as everywhere else.
  out.count = out.estimate;
  out.route.expected_variance = out.estimate.variance;
  out.route.summary_variance = out.estimate.variance;
  return out;
}

Result<QueryResult> FuseJoinSum(
    double left_n, const std::vector<std::vector<double>>& left_grid,
    const std::vector<double>& weights, const JoinSideMarginal& right) {
  if (left_grid.size() != right.mass.size()) {
    return Status::InvalidArgument(
        "join fusion requires equal join-attribute domains");
  }
  // s_j = sum_v w_v c_jv: the left side's expected weighted mass per join
  // code — the quantity the fixed right marginal multiplies.
  std::vector<double> s(left_grid.size(), 0.0);
  for (size_t j = 0; j < left_grid.size(); ++j) {
    if (left_grid[j].size() != weights.size()) {
      return Status::InvalidArgument(
          "join grid row width must match the weight vector");
    }
    for (size_t v = 0; v < weights.size(); ++v) {
      s[j] += weights[v] * left_grid[j][v];
    }
  }
  QueryResult out;
  for (size_t j = 0; j < s.size(); ++j) {
    out.estimate.expectation += s[j] * right.mass[j];
  }
  // Left term: the multinomial runs over the FLAT (j, v) cells, each seen
  // through the fixed right mass b_j and its value weight w_v.
  double var_l = 0.0;
  if (left_n > 0.0) {
    double mean = 0.0, mean_sq = 0.0;
    for (size_t j = 0; j < left_grid.size(); ++j) {
      for (size_t v = 0; v < weights.size(); ++v) {
        const double p = left_grid[j][v] / left_n;
        const double value = weights[v] * right.mass[j];
        mean += p * value;
        mean_sq += p * value * value;
      }
    }
    var_l = std::max(0.0, left_n * (mean_sq - mean * mean));
  }
  out.estimate.variance = var_l + SideVariance(right.n, right.mass, s);
  out.sum = out.estimate;
  out.route.expected_variance = out.estimate.variance;
  out.route.summary_variance = out.estimate.variance;
  return out;
}

}  // namespace entropydb
