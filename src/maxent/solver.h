#ifndef ENTROPYDB_MAXENT_SOLVER_H_
#define ENTROPYDB_MAXENT_SOLVER_H_

#include <vector>

#include "common/result.h"
#include "maxent/polynomial.h"
#include "maxent/variable_registry.h"

namespace entropydb {

/// Solver configuration (paper Sec 3.3 / Sec 6.1: "30 iterations ... or
/// until the error was below 1e-6").
struct SolverOptions {
  /// Maximum number of full coordinate sweeps.
  size_t max_iterations = 30;
  /// Convergence threshold on max_j |s_j - E[<c_j,I>]| / n.
  double tolerance = 1e-6;
  /// Record the per-iteration error trace in the report.
  bool record_trace = true;
};

/// What the solver did, for logging and the experiment write-ups.
struct SolverReport {
  size_t iterations = 0;
  double final_error = 0.0;
  bool converged = false;
  /// Max normalized statistic error after each sweep (when recorded).
  std::vector<double> error_trace;
  double wall_seconds = 0.0;
};

/// \brief Fits the MaxEnt model parameters by coordinate-wise mirror descent
/// (Algorithm 1 of the paper).
///
/// Each update solves d(Psi)/d(alpha_j) = 0 exactly while holding every
/// other variable fixed:
///
///     alpha_j <- s_j (P - alpha_j P_alpha_j) / ((n - s_j) P_alpha_j)
///
/// Because P is linear in each variable (and, by overcompleteness, the
/// cofactor P_alpha_j of a 1-D variable is independent of the variable's
/// whole per-attribute family), one batched derivative pass per attribute
/// yields an exact Gauss-Seidel sweep with O(1) incremental maintenance of
/// P between updates. Every sweep is an exact coordinate ascent on the
/// concave dual Psi (Eq 11), so the iteration is monotone.
///
/// Variables whose target statistic is zero are pinned to zero and never
/// updated — the ZERO-cell optimization the paper notes in Sec 4.3.
class MaxEntSolver {
 public:
  MaxEntSolver(const VariableRegistry& reg, const CompressedPolynomial& poly,
               SolverOptions opts = {})
      : reg_(reg), poly_(poly), opts_(opts) {}

  /// Runs sweeps until convergence or the iteration cap; `state` is updated
  /// in place. Fails with FailedPrecondition if P becomes non-positive
  /// (which indicates inconsistent statistics).
  Result<SolverReport> Solve(ModelState* state) const;

  /// Max_j |s_j - E[<c_j, I>]| / n under `state` — the convergence metric.
  double MaxStatisticError(const ModelState& state) const;

 private:
  /// One full sweep over all 1-D families then all multi-dim statistics.
  /// `ctx` must be current for `state` on entry and is maintained
  /// incrementally (fused cofactor/refresh passes); it is current again on
  /// exit, so Solve evaluates the polynomial exactly once up front.
  /// Returns the max normalized error *observed before each update* so the
  /// loop can stop when all statistics already match.
  Result<double> Sweep(ModelState* state,
                       CompressedPolynomial::EvalContext* ctx,
                       std::vector<ComponentSweep>* sweeps) const;

  const VariableRegistry& reg_;
  const CompressedPolynomial& poly_;
  SolverOptions opts_;
};

}  // namespace entropydb

#endif  // ENTROPYDB_MAXENT_SOLVER_H_
