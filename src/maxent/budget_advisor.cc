#include "maxent/budget_advisor.h"

#include <algorithm>
#include <cmath>

#include "maxent/summary.h"
#include "stats/selector.h"
#include "workload/metrics.h"
#include "workload/query_workload.h"

namespace entropydb {

Result<std::vector<BudgetCandidate>> BudgetAdvisor::Advise(
    const Table& table, size_t total_budget, const AdvisorOptions& options) {
  if (total_budget == 0) {
    return Status::InvalidArgument("total budget must be positive");
  }
  auto ranked = PairSelector::RankPairs(table, options.exclude);
  if (ranked.empty()) {
    return Status::FailedPrecondition("table has fewer than two attributes");
  }

  StatisticSelector selector(SelectionHeuristic::kComposite);
  std::vector<BudgetCandidate> out;

  for (size_t ba : options.candidate_ba) {
    if (ba == 0) continue;
    BudgetCandidate cand;
    cand.ba = ba;
    cand.bs = std::max<size_t>(1, total_budget / ba);
    cand.pairs =
        PairSelector::Choose(ranked, ba, PairStrategy::kAttributeCover);
    if (cand.pairs.empty()) continue;

    std::vector<MultiDimStatistic> stats;
    for (const auto& p : cand.pairs) {
      auto s = selector.Select(table, p.a, p.b, cand.bs);
      stats.insert(stats.end(), s.begin(), s.end());
    }
    ASSIGN_OR_RETURN(auto summary, EntropySummary::Build(table, stats));

    // Score on the covered pairs' own point workloads (heavy accuracy and
    // rare-vs-nonexistent F), averaged over pairs.
    WorkloadConfig wcfg;
    wcfg.num_heavy = options.num_heavy;
    wcfg.num_light = options.num_light;
    wcfg.num_nonexistent = options.num_nonexistent;
    wcfg.seed = options.seed;
    double err_sum = 0.0, f_sum = 0.0;
    size_t templates = 0;
    for (const auto& p : cand.pairs) {
      ASSIGN_OR_RETURN(auto w,
                       SelectWorkload(table, {p.a, p.b}, wcfg));
      std::vector<double> truths, ests, light_est, null_est;
      for (const auto& pt : w.heavy) {
        auto q = PointQuery(table.num_attributes(), w.attrs, pt.key);
        ASSIGN_OR_RETURN(auto est, summary->Answer(q));
        truths.push_back(pt.true_count);
        ests.push_back(est.RoundedCount());
      }
      for (const auto& pt : w.light) {
        auto q = PointQuery(table.num_attributes(), w.attrs, pt.key);
        ASSIGN_OR_RETURN(auto est, summary->Answer(q));
        light_est.push_back(est.expectation);
      }
      for (const auto& pt : w.nonexistent) {
        auto q = PointQuery(table.num_attributes(), w.attrs, pt.key);
        ASSIGN_OR_RETURN(auto est, summary->Answer(q));
        null_est.push_back(est.expectation);
      }
      err_sum += AverageError(truths, ests);
      f_sum += ComputeFMeasure(light_est, null_est).f;
      ++templates;
    }
    if (templates == 0) continue;
    cand.heavy_error = err_sum / static_cast<double>(templates);
    cand.f_measure = f_sum / static_cast<double>(templates);
    cand.score = (1.0 - cand.heavy_error) + cand.f_measure;
    out.push_back(std::move(cand));
  }

  if (out.empty()) {
    return Status::FailedPrecondition("no viable budget split found");
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const BudgetCandidate& x, const BudgetCandidate& y) {
                     return x.score > y.score;
                   });
  return out;
}

}  // namespace entropydb
